#pragma once

#include <string>

#include "core_util/rng.hpp"
#include "netlist/netlist.hpp"
#include "rtl/module.hpp"

namespace moss::sim {

/// Result of a randomized RTL-vs-netlist co-simulation.
struct EquivalenceResult {
  bool equivalent = true;
  std::uint64_t cycles_checked = 0;
  std::string first_mismatch;  ///< human-readable description, if any
};

/// Co-simulate the RTL golden model (rtl::Evaluator) against the gate-level
/// netlist for `cycles` random-stimulus cycles and compare all outputs each
/// cycle. This is the ground-truth for the FEP task and the acceptance test
/// for synthesis. The netlist's bit-blasted ports must follow synthesize()'s
/// naming ("port" or "port[i]").
EquivalenceResult check_equivalence(const rtl::Module& m,
                                    const netlist::Netlist& nl,
                                    std::uint64_t cycles, Rng& rng);

}  // namespace moss::sim
