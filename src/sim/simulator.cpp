#include "sim/simulator.hpp"

#include "core_util/check.hpp"

namespace moss::sim {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  MOSS_CHECK(nl.finalized(), "simulator needs a finalized netlist");
  values_.assign(nl.num_nodes(), 0);
  flop_state_.assign(nl.num_nodes(), 0);
  transitions_.assign(nl.num_nodes(), 0);
  ones_.assign(nl.num_nodes(), 0);
}

void Simulator::reset_state() {
  std::fill(flop_state_.begin(), flop_state_.end(), 0);
  std::fill(values_.begin(), values_.end(), 0);
}

void Simulator::step(const std::vector<std::uint8_t>& pi_values) {
  const Netlist& nl = *nl_;
  MOSS_CHECK(pi_values.size() == nl.inputs().size(),
             "simulator: wrong number of PI values");

  std::vector<std::uint8_t> next(values_.size(), 0);

  // Drive PIs.
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    next[static_cast<std::size_t>(nl.inputs()[i])] = pi_values[i] & 1u;
  }
  // Combinational settle in topological order (flops output held state).
  for (const NodeId id : nl.topo_order()) {
    if (id == stuck_node_) {
      next[static_cast<std::size_t>(id)] = stuck_value_;
      continue;
    }
    const netlist::Node& n = nl.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryInput:
        break;  // already driven
      case NodeKind::kPrimaryOutput:
        next[static_cast<std::size_t>(id)] =
            next[static_cast<std::size_t>(n.fanin[0])];
        break;
      case NodeKind::kCell: {
        const cell::CellType& t = nl.library().type(n.type);
        if (t.is_flop()) {
          next[static_cast<std::size_t>(id)] =
              flop_state_[static_cast<std::size_t>(id)];
        } else {  // tie or combinational
          std::uint32_t in = 0;
          for (std::size_t p = 0; p < n.fanin.size(); ++p) {
            in |= static_cast<std::uint32_t>(
                      next[static_cast<std::size_t>(n.fanin[p])])
                  << p;
          }
          next[static_cast<std::size_t>(id)] = t.eval(in) ? 1 : 0;
        }
        break;
      }
    }
  }

  // Count transitions against the previous settled values (skip cycle 0,
  // where everything "transitions" from the arbitrary power-on state).
  if (cycles_ > 0) {
    for (std::size_t i = 0; i < next.size(); ++i) {
      transitions_[i] += (next[i] != values_[i]) ? 1u : 0u;
    }
  }
  for (std::size_t i = 0; i < next.size(); ++i) ones_[i] += next[i];

  // Clock edge: flops capture.
  for (const NodeId id : nl.flops()) {
    const netlist::Node& n = nl.node(id);
    const cell::CellType& t = nl.library().type(n.type);
    const auto pin = [&](const char* name) -> std::uint8_t {
      const int p = t.pin_index(name);
      MOSS_CHECK(p >= 0, "missing flop pin");
      return next[static_cast<std::size_t>(n.fanin[static_cast<std::size_t>(p)])];
    };
    std::uint8_t q = flop_state_[static_cast<std::size_t>(id)];
    if (t.has_reset && pin("R")) {
      q = t.reset_value ? 1 : 0;
    } else if (t.has_enable && !pin("E")) {
      // hold
    } else {
      q = pin("D");
    }
    flop_state_[static_cast<std::size_t>(id)] = q;
  }

  values_ = std::move(next);
  ++cycles_;
}

std::vector<std::uint8_t> Simulator::output_values() const {
  std::vector<std::uint8_t> out;
  out.reserve(nl_->outputs().size());
  for (const NodeId id : nl_->outputs()) {
    out.push_back(values_[static_cast<std::size_t>(id)]);
  }
  return out;
}

double Simulator::toggle_rate(netlist::NodeId id) const {
  if (cycles_ <= 1) return 0.0;
  return static_cast<double>(transitions_[static_cast<std::size_t>(id)]) /
         static_cast<double>(cycles_ - 1);
}

std::vector<double> Simulator::toggle_rates() const {
  std::vector<double> out(values_.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = toggle_rate(static_cast<NodeId>(i));
  }
  return out;
}

double Simulator::one_rate(netlist::NodeId id) const {
  if (cycles_ == 0) return 0.0;
  return static_cast<double>(ones_[static_cast<std::size_t>(id)]) /
         static_cast<double>(cycles_);
}

std::vector<double> Simulator::one_rates() const {
  std::vector<double> out(values_.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = one_rate(static_cast<netlist::NodeId>(i));
  }
  return out;
}

void Simulator::set_stuck_at(netlist::NodeId id, std::uint8_t value) {
  MOSS_CHECK(id >= 0 && static_cast<std::size_t>(id) < values_.size(),
             "stuck-at node out of range");
  MOSS_CHECK(nl_->node(id).kind != netlist::NodeKind::kPrimaryOutput,
             "inject faults on driving nodes, not POs");
  stuck_node_ = id;
  stuck_value_ = value & 1u;
}

void Simulator::clear_stuck_at() { stuck_node_ = netlist::kInvalidNode; }

void Simulator::clear_activity() {
  std::fill(transitions_.begin(), transitions_.end(), 0);
  std::fill(ones_.begin(), ones_.end(), 0);
  cycles_ = 0;
}

ActivityReport random_activity(const netlist::Netlist& nl,
                               std::uint64_t cycles, Rng& rng,
                               double input_one_prob) {
  Simulator sim(nl);
  // Locate reset-like inputs to assert during warm-up.
  std::vector<bool> is_reset(nl.inputs().size(), false);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const std::string& n = nl.node(nl.inputs()[i]).name;
    is_reset[i] = (n == "rst" || n == "reset" || n == "rst_n");
  }
  std::vector<std::uint8_t> pis(nl.inputs().size(), 0);

  // Warm-up with reset asserted (not counted in activity).
  for (int c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      pis[i] = is_reset[i] ? 1 : (rng.bernoulli(input_one_prob) ? 1 : 0);
    }
    sim.step(pis);
  }
  sim.clear_activity();

  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      // Occasional mid-run reset pulses, as a real testbench would apply.
      pis[i] = is_reset[i] ? (rng.bernoulli(0.002) ? 1 : 0)
                           : (rng.bernoulli(input_one_prob) ? 1 : 0);
    }
    sim.step(pis);
  }

  ActivityReport rep;
  rep.cycles = cycles;
  rep.toggle = sim.toggle_rates();
  rep.one_prob = sim.one_rates();
  return rep;
}

}  // namespace moss::sim
