#include "sim/vcd.hpp"

#include "core_util/check.hpp"

namespace moss::sim {

using netlist::NodeId;
using netlist::NodeKind;

VcdWriter::VcdWriter(std::ostream& out, const netlist::Netlist& nl,
                     Options opts)
    : out_(&out), nl_(&nl), opts_(opts) {
  MOSS_CHECK(nl.finalized(), "VCD writer needs a finalized netlist");
}

void VcdWriter::add_signal(NodeId id) {
  MOSS_CHECK(!header_written_, "add signals before the first sample");
  signals_.push_back(id);
}

void VcdWriter::add_ports() {
  for (const NodeId id : nl_->inputs()) add_signal(id);
  for (const NodeId id : nl_->outputs()) add_signal(id);
}

void VcdWriter::add_all() {
  for (std::size_t i = 0; i < nl_->num_nodes(); ++i) {
    add_signal(static_cast<NodeId>(i));
  }
}

std::string VcdWriter::id_code(std::size_t index) const {
  // Printable identifier characters per the VCD grammar: '!' .. '~'.
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return code;
}

namespace {

/// VCD identifiers may not contain spaces; netlist names are already
/// space-free, but escape the bracket form for wide-port bits.
std::string vcd_name(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (c == '[' ? '_' : c == ']' ? '\0' : c);
  }
  std::string cleaned;
  for (const char c : out) {
    if (c != '\0') cleaned += c;
  }
  return cleaned;
}

}  // namespace

void VcdWriter::write_header() {
  MOSS_CHECK(!header_written_, "header already written");
  MOSS_CHECK(!signals_.empty(), "no signals selected");
  auto& os = *out_;
  os << "$date MOSS cycle simulator $end\n";
  os << "$version moss::sim::VcdWriter $end\n";
  os << "$timescale " << opts_.timescale << " $end\n";
  os << "$scope module " << nl_->name() << " $end\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    os << "$var wire 1 " << id_code(i) << " "
       << vcd_name(nl_->node(signals_[i]).name) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  last_.assign(signals_.size(), 0xFF);  // force first dump
  header_written_ = true;
}

void VcdWriter::sample(const Simulator& sim) {
  if (!header_written_) write_header();
  auto& os = *out_;
  os << '#'
     << static_cast<std::uint64_t>(static_cast<double>(sample_count_) *
                                   opts_.cycle_ps)
     << '\n';
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const std::uint8_t v = sim.value(signals_[i]);
    if (v != last_[i]) {
      os << static_cast<char>('0' + v) << id_code(i) << '\n';
      last_[i] = v;
    }
  }
  ++sample_count_;
}

void VcdWriter::finish() {
  if (!header_written_) return;
  *out_ << '#'
        << static_cast<std::uint64_t>(static_cast<double>(sample_count_) *
                                      opts_.cycle_ps)
        << '\n';
}

}  // namespace moss::sim
