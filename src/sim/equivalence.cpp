#include "sim/equivalence.hpp"

#include "core_util/check.hpp"
#include "core_util/strings.hpp"
#include "rtl/eval.hpp"
#include "sim/simulator.hpp"

namespace moss::sim {

using netlist::kInvalidNode;
using netlist::NodeId;

namespace {

std::string bit_name(const std::string& base, int width, int i) {
  return width == 1 ? base : base + "[" + std::to_string(i) + "]";
}

}  // namespace

EquivalenceResult check_equivalence(const rtl::Module& m,
                                    const netlist::Netlist& nl,
                                    std::uint64_t cycles, Rng& rng) {
  rtl::Evaluator golden(m);
  Simulator gate(nl);

  // Map RTL ports to netlist bit nodes.
  struct PortBits {
    int width;
    std::vector<std::size_t> pi_index;  // index into nl.inputs() order
  };
  std::vector<PortBits> in_map;
  std::vector<std::size_t> pi_of_node(nl.num_nodes(), 0);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    pi_of_node[static_cast<std::size_t>(nl.inputs()[i])] = i;
  }
  for (const rtl::Port& p : m.inputs) {
    PortBits pb;
    pb.width = p.width;
    for (int i = 0; i < p.width; ++i) {
      const NodeId n = nl.find(bit_name(p.name, p.width, i));
      MOSS_CHECK(n != kInvalidNode,
                 "netlist is missing input bit " + bit_name(p.name, p.width, i));
      pb.pi_index.push_back(pi_of_node[static_cast<std::size_t>(n)]);
    }
    in_map.push_back(std::move(pb));
  }
  struct OutBits {
    std::string name;
    std::vector<NodeId> nodes;  // kInvalidNode if the output bit was optimized
  };
  std::vector<OutBits> out_map;
  for (const rtl::Port& p : m.outputs) {
    OutBits ob;
    ob.name = p.name;
    for (int i = 0; i < p.width; ++i) {
      ob.nodes.push_back(nl.find(bit_name(p.name, p.width, i)));
    }
    out_map.push_back(std::move(ob));
  }

  EquivalenceResult res;
  std::vector<std::uint64_t> rtl_in(m.inputs.size(), 0);
  std::vector<std::uint8_t> pis(nl.inputs().size(), 0);

  for (std::uint64_t cyc = 0; cyc < cycles; ++cyc) {
    // Random stimulus; force reset on the first two cycles to align the
    // gate-level power-on state (flops at 0) with the RTL reset state.
    for (std::size_t p = 0; p < m.inputs.size(); ++p) {
      std::uint64_t v = rng() & rtl::width_mask(m.inputs[p].width);
      if (cyc < 2 && m.inputs[p].name == m.reset_port) v = 1;
      rtl_in[p] = v;
      for (int i = 0; i < in_map[p].width; ++i) {
        pis[in_map[p].pi_index[static_cast<std::size_t>(i)]] =
            static_cast<std::uint8_t>((v >> i) & 1ull);
      }
    }
    golden.step(rtl_in);
    gate.step(pis);

    for (std::size_t o = 0; o < m.outputs.size(); ++o) {
      const std::uint64_t want = golden.outputs()[o];
      for (std::size_t i = 0; i < out_map[o].nodes.size(); ++i) {
        const NodeId node = out_map[o].nodes[i];
        MOSS_CHECK(node != kInvalidNode,
                   "netlist is missing output bit " + out_map[o].name);
        const std::uint8_t got = gate.value(node);
        if (got != (((want >> i) & 1ull) ? 1 : 0)) {
          res.equivalent = false;
          res.cycles_checked = cyc + 1;
          res.first_mismatch = strprintf(
              "cycle %llu: output %s bit %zu: rtl=%llu gate=%u",
              static_cast<unsigned long long>(cyc),
              out_map[o].name.c_str(), i,
              static_cast<unsigned long long>((want >> i) & 1ull), got);
          return res;
        }
      }
    }
  }
  res.cycles_checked = cycles;
  return res;
}

}  // namespace moss::sim
