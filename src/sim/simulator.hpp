#pragma once

#include <cstdint>
#include <vector>

#include "core_util/rng.hpp"
#include "netlist/netlist.hpp"

namespace moss::sim {

/// Cycle-based 2-value gate-level simulator (the VCS stand-in). Evaluates
/// the finalized netlist in topological order once per clock cycle and
/// counts output transitions per node to produce toggle rates.
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl);

  /// Power-on: flops go to 0 (reset-style initialization happens by driving
  /// the reset input pattern, exactly like an RTL testbench would).
  void reset_state();

  /// Evaluate one cycle: combinational settle with `pi_values` (bit per
  /// primary input, in netlist input order), then clock edge (flops load).
  void step(const std::vector<std::uint8_t>& pi_values);

  /// Value of any node after the latest step's combinational settle.
  std::uint8_t value(netlist::NodeId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  /// Primary output values after the latest step.
  std::vector<std::uint8_t> output_values() const;

  std::uint64_t cycles() const { return cycles_; }
  /// Transitions of a node's output since construction/clear_activity().
  std::uint64_t transitions(netlist::NodeId id) const {
    return transitions_[static_cast<std::size_t>(id)];
  }
  /// Toggle rate = transitions / cycles (0 if no cycles yet).
  double toggle_rate(netlist::NodeId id) const;
  /// Toggle rates for all nodes.
  std::vector<double> toggle_rates() const;
  /// Fraction of cycles a node's output was logic 1 ("signal probability",
  /// the supervision behind the paper's probability loss).
  double one_rate(netlist::NodeId id) const;
  std::vector<double> one_rates() const;

  void clear_activity();

  /// Force a node's output net to a constant (stuck-at fault injection).
  /// Applies during combinational settle, so the fault propagates.
  void set_stuck_at(netlist::NodeId id, std::uint8_t value);
  void clear_stuck_at();

 private:
  const netlist::Netlist* nl_;
  std::vector<std::uint8_t> values_;       ///< current settled values
  std::vector<std::uint8_t> flop_state_;   ///< Q of each flop node (by id)
  std::vector<std::uint64_t> transitions_;
  std::vector<std::uint64_t> ones_;
  std::uint64_t cycles_ = 0;
  netlist::NodeId stuck_node_ = netlist::kInvalidNode;
  std::uint8_t stuck_value_ = 0;
};

/// Result of a random-stimulus activity run.
struct ActivityReport {
  std::uint64_t cycles = 0;
  /// per-node toggle rate, indexed by NodeId
  std::vector<double> toggle;
  /// per-node probability of logic 1, indexed by NodeId
  std::vector<double> one_prob;
};

/// Drive the netlist with random primary inputs for `cycles` cycles
/// (asserting any input literally named "rst"/"reset" for the first few
/// cycles) and report per-node toggle rates. `input_one_prob` is the
/// probability of a 1 on each PI each cycle.
ActivityReport random_activity(const netlist::Netlist& nl, std::uint64_t cycles,
                               Rng& rng, double input_one_prob = 0.5);

}  // namespace moss::sim
