#pragma once

#include <istream>
#include <ostream>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace moss::sim {

/// SAIF-style activity interchange: persist per-net switching activity
/// (toggle counts and time-at-1) so power analysis can run without
/// re-simulating — the handshake real flows do between the simulator and
/// the power tool.
///
/// Format (line-oriented, human-readable):
///   MOSSACT v1 <design> <cycles>
///   <net-name> <transitions> <ones>
///   ...
void write_activity(std::ostream& out, const netlist::Netlist& nl,
                    const Simulator& sim);

/// Parse an activity file back into per-node toggle/one rates (indexed by
/// NodeId). Nets missing from the file get zero activity; unknown net
/// names are an error (stale file). The design name must match.
struct ActivityFile {
  std::uint64_t cycles = 0;
  std::vector<double> toggle;
  std::vector<double> one_prob;
};

ActivityFile read_activity(std::istream& in, const netlist::Netlist& nl);

}  // namespace moss::sim
