#include "sim/fault.hpp"

#include "core_util/check.hpp"
#include "sim/simulator.hpp"

namespace moss::sim {

using netlist::NodeId;
using netlist::NodeKind;

std::vector<Fault> enumerate_faults(const netlist::Netlist& nl) {
  std::vector<Fault> out;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const netlist::Node& n = nl.node(id);
    if (n.kind == NodeKind::kPrimaryOutput) continue;
    if (n.kind == NodeKind::kCell && nl.library().type(n.type).is_tie()) {
      continue;  // constant nets: only the opposite polarity is a fault
    }
    out.push_back(Fault{id, false});
    out.push_back(Fault{id, true});
  }
  return out;
}

FaultCampaign simulate_faults(const netlist::Netlist& nl,
                              const std::vector<Fault>& faults,
                              std::uint64_t cycles, Rng& rng) {
  MOSS_CHECK(nl.finalized(), "fault simulation needs a finalized netlist");
  FaultCampaign campaign;
  campaign.results.reserve(faults.size());

  // Pre-generate shared stimulus so every fault sees the same test.
  std::vector<bool> is_reset(nl.inputs().size(), false);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const std::string& n = nl.node(nl.inputs()[i]).name;
    is_reset[i] = (n == "rst" || n == "reset" || n == "rst_n");
  }
  std::vector<std::vector<std::uint8_t>> stimulus(cycles);
  for (std::uint64_t c = 0; c < cycles; ++c) {
    stimulus[c].resize(nl.inputs().size());
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      // Reset for two cycles, then random with rare reset pulses.
      stimulus[c][i] = is_reset[i]
                           ? (c < 2 ? 1 : (rng.bernoulli(0.01) ? 1 : 0))
                           : (rng.bernoulli(0.5) ? 1 : 0);
    }
  }

  // Golden trace of primary outputs.
  std::vector<std::vector<std::uint8_t>> golden(cycles);
  {
    Simulator good(nl);
    for (std::uint64_t c = 0; c < cycles; ++c) {
      good.step(stimulus[c]);
      golden[c] = good.output_values();
    }
  }

  for (const Fault& f : faults) {
    Simulator faulty(nl);
    faulty.set_stuck_at(f.node, f.stuck_value ? 1 : 0);
    FaultResult res;
    res.fault = f;
    for (std::uint64_t c = 0; c < cycles; ++c) {
      faulty.step(stimulus[c]);
      if (faulty.output_values() != golden[c]) {
        res.detected = true;
        res.first_detect_cycle = c;
        break;
      }
    }
    if (res.detected) ++campaign.detected;
    campaign.results.push_back(res);
  }
  campaign.coverage =
      faults.empty() ? 0.0
                     : static_cast<double>(campaign.detected) /
                           static_cast<double>(faults.size());
  return campaign;
}

}  // namespace moss::sim
