#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace moss::sim {

/// Value-Change-Dump writer: records selected netlist signals from a
/// Simulator into the standard VCD format (viewable with GTKWave & co.),
/// so the cycle simulator doubles as a real debugging tool.
///
/// Usage:
///   VcdWriter vcd(out, nl, {"clk period ps"});
///   vcd.add_signal(node_id);            // or add_ports()
///   loop { sim.step(pis); vcd.sample(sim); }
///   vcd.finish();
class VcdWriter {
 public:
  struct Options {
    std::string timescale = "1ps";
    double cycle_ps = 1000.0;  ///< timestamp advance per sample
  };

  VcdWriter(std::ostream& out, const netlist::Netlist& nl, Options opts);
  VcdWriter(std::ostream& out, const netlist::Netlist& nl)
      : VcdWriter(out, nl, Options{}) {}

  /// Track a node's output value under its netlist name.
  void add_signal(netlist::NodeId id);
  /// Track all primary inputs and outputs.
  void add_ports();
  /// Track everything (ports, flops and gates) — small designs only.
  void add_all();

  /// Write the header (automatic on first sample()).
  void write_header();
  /// Record the current simulator values; emits only changed signals.
  void sample(const Simulator& sim);
  /// Final timestamp.
  void finish();

 private:
  std::string id_code(std::size_t index) const;

  std::ostream* out_;
  const netlist::Netlist* nl_;
  Options opts_;
  std::vector<netlist::NodeId> signals_;
  std::vector<std::uint8_t> last_;
  bool header_written_ = false;
  std::uint64_t sample_count_ = 0;
};

}  // namespace moss::sim
