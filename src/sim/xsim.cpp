#include "sim/xsim.hpp"

#include "core_util/check.hpp"

namespace moss::sim {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

namespace {

/// Conservative 3-valued evaluation of a cell: enumerate all resolutions of
/// the X inputs; if every resolution yields the same output, that value is
/// known, otherwise X. Cells have at most 6 inputs, so at most 64 rows.
XValue eval_cell(const cell::CellType& t, const std::vector<XValue>& ins) {
  std::uint32_t base = 0;
  std::vector<int> x_pins;
  for (int p = 0; p < t.num_inputs; ++p) {
    switch (ins[static_cast<std::size_t>(p)]) {
      case XValue::k1:
        base |= 1u << p;
        break;
      case XValue::k0:
        break;
      case XValue::kX:
        x_pins.push_back(p);
        break;
    }
  }
  const std::uint32_t combos = 1u << x_pins.size();
  bool first = t.eval(base);
  for (std::uint32_t c = 1; c < combos; ++c) {
    std::uint32_t row = base;
    for (std::size_t k = 0; k < x_pins.size(); ++k) {
      if ((c >> k) & 1u) row |= 1u << x_pins[k];
    }
    if (t.eval(row) != first) return XValue::kX;
  }
  return first ? XValue::k1 : XValue::k0;
}

}  // namespace

XSimulator::XSimulator(const Netlist& nl) : nl_(&nl) {
  MOSS_CHECK(nl.finalized(), "X simulator needs a finalized netlist");
  values_.assign(nl.num_nodes(), XValue::kX);
  flop_state_.assign(nl.num_nodes(), XValue::kX);  // power-on unknown
}

void XSimulator::step(const std::vector<XValue>& pi_values) {
  const Netlist& nl = *nl_;
  MOSS_CHECK(pi_values.size() == nl.inputs().size(),
             "X simulator: wrong number of PI values");
  std::vector<XValue> next(values_.size(), XValue::kX);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    next[static_cast<std::size_t>(nl.inputs()[i])] = pi_values[i];
  }
  for (const NodeId id : nl.topo_order()) {
    const netlist::Node& n = nl.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryInput:
        break;
      case NodeKind::kPrimaryOutput:
        next[static_cast<std::size_t>(id)] =
            next[static_cast<std::size_t>(n.fanin[0])];
        break;
      case NodeKind::kCell: {
        const cell::CellType& t = nl.library().type(n.type);
        if (t.is_flop()) {
          next[static_cast<std::size_t>(id)] =
              flop_state_[static_cast<std::size_t>(id)];
        } else {
          std::vector<XValue> ins(n.fanin.size());
          for (std::size_t p = 0; p < n.fanin.size(); ++p) {
            ins[p] = next[static_cast<std::size_t>(n.fanin[p])];
          }
          next[static_cast<std::size_t>(id)] = eval_cell(t, ins);
        }
        break;
      }
    }
  }

  // Clock edge with 3-valued reset/enable semantics.
  for (const NodeId id : nl.flops()) {
    const netlist::Node& n = nl.node(id);
    const cell::CellType& t = nl.library().type(n.type);
    const auto pin = [&](const char* name) {
      const int p = t.pin_index(name);
      MOSS_CHECK(p >= 0, "missing flop pin");
      return next[static_cast<std::size_t>(
          n.fanin[static_cast<std::size_t>(p)])];
    };
    const XValue q = flop_state_[static_cast<std::size_t>(id)];
    const XValue d = pin("D");
    XValue captured = d;
    if (t.has_enable) {
      const XValue e = pin("E");
      if (e == XValue::k0) captured = q;
      else if (e == XValue::kX) captured = (d == q) ? d : XValue::kX;
    }
    if (t.has_reset) {
      const XValue rv = t.reset_value ? XValue::k1 : XValue::k0;
      const XValue r = pin("R");
      if (r == XValue::k1) captured = rv;
      else if (r == XValue::kX) captured = (captured == rv) ? rv : XValue::kX;
    }
    flop_state_[static_cast<std::size_t>(id)] = captured;
  }
  values_ = std::move(next);
}

std::size_t XSimulator::unknown_flops() const {
  std::size_t n = 0;
  for (const NodeId f : nl_->flops()) {
    if (flop_state_[static_cast<std::size_t>(f)] == XValue::kX) ++n;
  }
  return n;
}

std::vector<std::string> XSimulator::unknown_flop_names() const {
  std::vector<std::string> out;
  for (const NodeId f : nl_->flops()) {
    if (flop_state_[static_cast<std::size_t>(f)] == XValue::kX) {
      out.push_back(nl_->node(f).name);
    }
  }
  return out;
}

ResetCoverage analyze_reset(const Netlist& nl, int reset_cycles) {
  XSimulator sim(nl);
  std::vector<XValue> pis(nl.inputs().size(), XValue::kX);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const std::string& n = nl.node(nl.inputs()[i]).name;
    if (n == "rst" || n == "reset" || n == "rst_n") pis[i] = XValue::k1;
  }
  for (int c = 0; c < reset_cycles; ++c) sim.step(pis);

  ResetCoverage cov;
  cov.total_flops = nl.flops().size();
  cov.uninitialized = sim.unknown_flop_names();
  cov.initialized = cov.total_flops - cov.uninitialized.size();
  cov.coverage = cov.total_flops == 0
                     ? 1.0
                     : static_cast<double>(cov.initialized) /
                           static_cast<double>(cov.total_flops);
  return cov;
}

}  // namespace moss::sim
