#pragma once

#include <vector>

#include "core_util/rng.hpp"
#include "netlist/netlist.hpp"

namespace moss::sim {

/// A stuck-at fault on a node's output net.
struct Fault {
  netlist::NodeId node = netlist::kInvalidNode;
  bool stuck_value = false;  ///< stuck-at-0 or stuck-at-1
};

/// Fault-simulation result for one fault.
struct FaultResult {
  Fault fault;
  bool detected = false;
  std::uint64_t first_detect_cycle = 0;
};

/// Summary of a fault-simulation campaign.
struct FaultCampaign {
  std::vector<FaultResult> results;
  std::size_t detected = 0;
  double coverage = 0.0;  ///< detected / total
};

/// Enumerate the standard stuck-at fault universe: both polarities on every
/// cell output and primary input.
std::vector<Fault> enumerate_faults(const netlist::Netlist& nl);

/// Serial fault simulation: for each fault, run the faulty circuit against
/// the good circuit under the same random stimulus for up to `cycles`
/// cycles; a fault is detected when any primary output diverges. This is
/// the classic test-coverage measurement (and doubles as failure-injection
/// testing for the simulator itself).
FaultCampaign simulate_faults(const netlist::Netlist& nl,
                              const std::vector<Fault>& faults,
                              std::uint64_t cycles, Rng& rng);

}  // namespace moss::sim
