#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace moss::sim {

/// Three-valued logic level: 0, 1 or unknown.
enum class XValue : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

/// Three-valued (0/1/X) cycle simulator: flops power on X, and X propagates
/// conservatively through every cell (the output is X unless all
/// resolutions of the X inputs agree). The classic tool for answering "does
/// my reset sequence actually initialize the design?" — which a two-valued
/// simulator silently gets wrong by powering flops on at 0.
class XSimulator {
 public:
  explicit XSimulator(const netlist::Netlist& nl);

  /// One cycle; X in `pi_values` marks undriven inputs.
  void step(const std::vector<XValue>& pi_values);

  XValue value(netlist::NodeId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  /// Number of flops whose state is still X.
  std::size_t unknown_flops() const;
  /// Names of flops still at X.
  std::vector<std::string> unknown_flop_names() const;

 private:
  const netlist::Netlist* nl_;
  std::vector<XValue> values_;
  std::vector<XValue> flop_state_;
};

/// Reset-coverage analysis: drive the reset input(s) active and all other
/// inputs X for `reset_cycles` cycles; report which flops are still X
/// (i.e. not initialized by the reset sequence alone).
struct ResetCoverage {
  std::size_t total_flops = 0;
  std::size_t initialized = 0;
  std::vector<std::string> uninitialized;  ///< flop names still X
  double coverage = 0.0;
};

ResetCoverage analyze_reset(const netlist::Netlist& nl,
                            int reset_cycles = 4);

}  // namespace moss::sim
