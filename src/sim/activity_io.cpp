#include "sim/activity_io.hpp"

#include <sstream>

#include "core_util/check.hpp"

namespace moss::sim {

using netlist::NodeId;
using netlist::NodeKind;

void write_activity(std::ostream& out, const netlist::Netlist& nl,
                    const Simulator& sim) {
  MOSS_CHECK(sim.cycles() > 0, "no activity recorded yet");
  out << "MOSSACT v1 " << nl.name() << ' ' << sim.cycles() << '\n';
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const auto& n = nl.node(id);
    if (n.kind == NodeKind::kPrimaryOutput) continue;  // mirrors its driver
    const auto ones = static_cast<std::uint64_t>(
        sim.one_rate(id) * static_cast<double>(sim.cycles()) + 0.5);
    out << n.name << ' ' << sim.transitions(id) << ' ' << ones << '\n';
  }
  MOSS_CHECK(out.good(), "activity write failed");
}

ActivityFile read_activity(std::istream& in, const netlist::Netlist& nl) {
  std::string magic, version, design;
  std::uint64_t cycles = 0;
  in >> magic >> version >> design >> cycles;
  MOSS_CHECK(in.good() && magic == "MOSSACT" && version == "v1",
             "not a MOSSACT v1 activity file");
  MOSS_CHECK(design == nl.name(),
             "activity file is for design '" + design + "', netlist is '" +
                 nl.name() + "'");
  MOSS_CHECK(cycles > 1, "activity file has no cycles");

  ActivityFile act;
  act.cycles = cycles;
  act.toggle.assign(nl.num_nodes(), 0.0);
  act.one_prob.assign(nl.num_nodes(), 0.0);

  std::string name;
  std::uint64_t transitions = 0, ones = 0;
  while (in >> name >> transitions >> ones) {
    const NodeId id = nl.find(name);
    MOSS_CHECK(id != netlist::kInvalidNode,
               "activity file names unknown net '" + name + "'");
    act.toggle[static_cast<std::size_t>(id)] =
        static_cast<double>(transitions) / static_cast<double>(cycles - 1);
    act.one_prob[static_cast<std::size_t>(id)] =
        static_cast<double>(ones) / static_cast<double>(cycles);
  }
  // Primary outputs mirror their drivers.
  for (const NodeId o : nl.outputs()) {
    const NodeId d = nl.node(o).fanin[0];
    act.toggle[static_cast<std::size_t>(o)] =
        act.toggle[static_cast<std::size_t>(d)];
    act.one_prob[static_cast<std::size_t>(o)] =
        act.one_prob[static_cast<std::size_t>(d)];
  }
  return act;
}

}  // namespace moss::sim
