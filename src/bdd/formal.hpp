#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"

namespace moss::bdd {

/// Outcome of a formal check.
struct FormalResult {
  enum class Status {
    kEquivalent,     ///< proven equal for all input/state assignments
    kNotEquivalent,  ///< a distinguishing assignment exists
    kResourceLimit,  ///< BDD blow-up; fall back to simulation
  };
  Status status = Status::kResourceLimit;
  std::string detail;  ///< mismatching signal, or limit note
  /// For kNotEquivalent: an assignment (over a's PIs then flops, in order)
  /// that distinguishes the two circuits.
  std::vector<bool> counterexample;
};

/// Formal combinational equivalence of two netlists synthesized from the
/// same design: primary inputs correspond by name, flops by rtl_register
/// provenance (falling back to instance name). The sequential boundary is
/// cut — flop outputs become free variables — and every primary output and
/// effective flop next-state function (R ? reset : (E ? D : Q)) must match,
/// which for identical reset states implies sequential equivalence.
FormalResult check_equivalence_formal(const netlist::Netlist& a,
                                      const netlist::Netlist& b,
                                      std::size_t max_nodes = 1u << 20);

/// Exact signal probability of every node under independent inputs:
/// P(PI = 1) = input_one_prob, flop outputs treated as free variables with
/// probability 0.5 (the combinational view). Returns one probability per
/// NodeId. Throws Manager::ResourceLimit on blow-up.
std::vector<double> exact_one_probability(const netlist::Netlist& nl,
                                          double input_one_prob = 0.5,
                                          std::size_t max_nodes = 1u << 20);

}  // namespace moss::bdd
