#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core_util/check.hpp"

namespace moss::bdd {

/// Node reference within a Manager. 0 and 1 are the terminal constants.
using Ref = std::uint32_t;
inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

/// Reduced Ordered Binary Decision Diagram manager with unique and computed
/// tables — the classic formal backbone for combinational equivalence and
/// exact signal probability. Complemented edges are not used; reduction
/// (no redundant nodes, full sharing) makes equivalence a pointer compare.
///
/// Variable order is fixed at construction time (index = order position).
class Manager {
 public:
  /// `num_vars` variables, ordered by index. `max_nodes` bounds growth;
  /// exceeding it throws ResourceLimit (callers degrade gracefully).
  explicit Manager(std::size_t num_vars, std::size_t max_nodes = 1u << 20);

  class ResourceLimit : public Error {
   public:
    using Error::Error;
  };

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  Ref var(std::size_t index);         ///< the function x_index
  Ref nvar(std::size_t index);        ///< ¬x_index
  Ref not_(Ref f);
  Ref and_(Ref f, Ref g);
  Ref or_(Ref f, Ref g);
  Ref xor_(Ref f, Ref g);
  Ref ite(Ref f, Ref g, Ref h);       ///< if-then-else, the core operator

  bool is_const(Ref f) const { return f <= kTrue; }

  /// Evaluate under a complete assignment (bit i = variable i).
  bool eval(Ref f, const std::vector<bool>& assignment) const;

  /// Exact probability that f = 1 when each variable independently has
  /// P(x_i = 1) = p[i].
  double probability(Ref f, const std::vector<double>& p) const;

  /// Number of satisfying assignments over all num_vars() variables.
  double sat_count(Ref f) const;

  /// A satisfying assignment if one exists.
  std::optional<std::vector<bool>> any_sat(Ref f) const;

 private:
  struct Node {
    std::uint32_t var;  ///< variable index; terminals use num_vars()
    Ref lo;             ///< cofactor var=0
    Ref hi;             ///< cofactor var=1
  };

  Ref make(std::uint32_t var, Ref lo, Ref hi);

  std::size_t num_vars_;
  std::size_t max_nodes_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Ref> unique_;
  mutable std::unordered_map<std::uint64_t, Ref> ite_cache_;
};

}  // namespace moss::bdd
