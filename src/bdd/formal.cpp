#include "bdd/formal.hpp"

#include <map>

namespace moss::bdd {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

namespace {

/// Shared variable space for one or two netlists: PIs by name, then flops
/// by provenance key.
struct VarSpace {
  std::map<std::string, std::size_t> pi_vars;
  std::map<std::string, std::size_t> flop_vars;
  std::size_t count = 0;

  std::size_t pi(const std::string& name) {
    const auto it = pi_vars.find(name);
    if (it != pi_vars.end()) return it->second;
    pi_vars.emplace(name, count);
    return count++;
  }
  std::size_t flop(const std::string& key) {
    const auto it = flop_vars.find(key);
    if (it != flop_vars.end()) return it->second;
    flop_vars.emplace(key, count);
    return count++;
  }
};

std::string flop_key(const Netlist& nl, NodeId f) {
  const auto& n = nl.node(f);
  return n.rtl_register.empty() ? n.name : n.rtl_register;
}

/// Build BDDs for all node outputs of `nl` over the shared variable space.
std::vector<Ref> build_functions(Manager& mgr, const Netlist& nl,
                                 VarSpace& vars) {
  std::vector<Ref> fn(nl.num_nodes(), kFalse);
  for (const NodeId id : nl.topo_order()) {
    const auto& n = nl.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryInput:
        fn[static_cast<std::size_t>(id)] = mgr.var(vars.pi(n.name));
        break;
      case NodeKind::kPrimaryOutput:
        fn[static_cast<std::size_t>(id)] =
            fn[static_cast<std::size_t>(n.fanin[0])];
        break;
      case NodeKind::kCell: {
        const cell::CellType& t = nl.library().type(n.type);
        if (t.is_flop()) {
          fn[static_cast<std::size_t>(id)] =
              mgr.var(vars.flop(flop_key(nl, id)));
          break;
        }
        if (t.is_tie()) {
          fn[static_cast<std::size_t>(id)] = t.eval(0) ? kTrue : kFalse;
          break;
        }
        // Shannon-expand the truth table over the fanin BDDs.
        const std::uint32_t rows = 1u << t.num_inputs;
        Ref acc = kFalse;
        for (std::uint32_t row = 0; row < rows; ++row) {
          if (!t.eval(row)) continue;
          Ref minterm = kTrue;
          for (int p = 0; p < t.num_inputs; ++p) {
            const Ref in = fn[static_cast<std::size_t>(
                n.fanin[static_cast<std::size_t>(p)])];
            minterm = mgr.and_(minterm,
                               ((row >> p) & 1u) ? in : mgr.not_(in));
          }
          acc = mgr.or_(acc, minterm);
        }
        fn[static_cast<std::size_t>(id)] = acc;
        break;
      }
    }
  }
  return fn;
}

/// Effective next-state function of a flop: R ? reset : (E ? D : Q).
Ref flop_next(Manager& mgr, const Netlist& nl, NodeId f,
              const std::vector<Ref>& fn, Ref q_var) {
  const auto& n = nl.node(f);
  const cell::CellType& t = nl.library().type(n.type);
  const auto pin = [&](const char* name) {
    const int p = t.pin_index(name);
    MOSS_CHECK(p >= 0, "missing flop pin");
    return fn[static_cast<std::size_t>(n.fanin[static_cast<std::size_t>(p)])];
  };
  Ref next = pin("D");
  if (t.has_enable) next = mgr.ite(pin("E"), next, q_var);
  if (t.has_reset) {
    next = mgr.ite(pin("R"), t.reset_value ? kTrue : kFalse, next);
  }
  return next;
}

}  // namespace

FormalResult check_equivalence_formal(const Netlist& a, const Netlist& b,
                                      std::size_t max_nodes) {
  FormalResult res;

  // Interface correspondence first.
  VarSpace vars;
  for (const NodeId id : a.inputs()) vars.pi(a.node(id).name);
  for (const NodeId id : a.flops()) vars.flop(flop_key(a, id));
  const std::size_t a_vars = vars.count;
  for (const NodeId id : b.inputs()) vars.pi(b.node(id).name);
  for (const NodeId id : b.flops()) vars.flop(flop_key(b, id));
  if (vars.count != a_vars || a.inputs().size() != b.inputs().size() ||
      a.flops().size() != b.flops().size() ||
      a.outputs().size() != b.outputs().size()) {
    res.status = FormalResult::Status::kNotEquivalent;
    res.detail = "interface mismatch (ports or state elements differ)";
    return res;
  }

  try {
    Manager mgr(vars.count, max_nodes);
    const std::vector<Ref> fa = build_functions(mgr, a, vars);
    const std::vector<Ref> fb = build_functions(mgr, b, vars);

    const auto report_diff = [&](const std::string& what, Ref x, Ref y) {
      res.status = FormalResult::Status::kNotEquivalent;
      res.detail = what;
      const Ref miter = mgr.xor_(x, y);
      if (const auto sat = mgr.any_sat(miter)) res.counterexample = *sat;
    };

    // Primary outputs by name.
    for (const NodeId oa : a.outputs()) {
      const NodeId ob = b.find(a.node(oa).name);
      if (ob == netlist::kInvalidNode ||
          b.node(ob).kind != NodeKind::kPrimaryOutput) {
        res.status = FormalResult::Status::kNotEquivalent;
        res.detail = "output '" + a.node(oa).name + "' missing in b";
        return res;
      }
      const Ref x = fa[static_cast<std::size_t>(oa)];
      const Ref y = fb[static_cast<std::size_t>(ob)];
      if (x != y) {
        report_diff("output '" + a.node(oa).name + "' differs", x, y);
        return res;
      }
    }

    // Flop next-state functions by provenance key.
    std::map<std::string, NodeId> b_flops;
    for (const NodeId f : b.flops()) b_flops.emplace(flop_key(b, f), f);
    for (const NodeId f : a.flops()) {
      const auto key = flop_key(a, f);
      const auto it = b_flops.find(key);
      if (it == b_flops.end()) {
        res.status = FormalResult::Status::kNotEquivalent;
        res.detail = "state element '" + key + "' missing in b";
        return res;
      }
      const Ref q = mgr.var(vars.flop(key));
      const Ref x = flop_next(mgr, a, f, fa, q);
      const Ref y = flop_next(mgr, b, it->second, fb, q);
      if (x != y) {
        report_diff("next-state of '" + key + "' differs", x, y);
        return res;
      }
    }

    res.status = FormalResult::Status::kEquivalent;
    res.detail = "all " + std::to_string(a.outputs().size()) +
                 " outputs and " + std::to_string(a.flops().size()) +
                 " state elements proven equal";
    return res;
  } catch (const Manager::ResourceLimit& e) {
    res.status = FormalResult::Status::kResourceLimit;
    res.detail = e.what();
    return res;
  }
}

std::vector<double> exact_one_probability(const Netlist& nl,
                                          double input_one_prob,
                                          std::size_t max_nodes) {
  VarSpace vars;
  for (const NodeId id : nl.inputs()) vars.pi(nl.node(id).name);
  for (const NodeId id : nl.flops()) vars.flop(flop_key(nl, id));
  Manager mgr(vars.count, max_nodes);
  const std::vector<Ref> fn = build_functions(mgr, nl, vars);

  std::vector<double> p(vars.count, 0.5);
  for (const auto& [name, v] : vars.pi_vars) p[v] = input_one_prob;

  std::vector<double> out(nl.num_nodes(), 0.0);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    out[i] = mgr.probability(fn[i], p);
  }
  return out;
}

}  // namespace moss::bdd
