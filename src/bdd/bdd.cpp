#include "bdd/bdd.hpp"

#include <algorithm>
#include <functional>

namespace moss::bdd {

namespace {

/// Exact (collision-free) packing of (var, lo, hi) / (f, g, h): each field
/// fits in 21 bits because the manager caps nodes at 2^21 − 1. The unique
/// and ITE tables require exact keys — a collision would merge distinct
/// functions.
std::uint64_t triple_key(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return (static_cast<std::uint64_t>(a) << 42) |
         (static_cast<std::uint64_t>(b) << 21) | c;
}

}  // namespace

Manager::Manager(std::size_t num_vars, std::size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(max_nodes) {
  MOSS_CHECK(num_vars < (1u << 21) && max_nodes < (1u << 21),
             "Manager fields must fit 21 bits (exact table keys)");
  // Terminals: var index = num_vars (below every variable).
  nodes_.push_back(Node{static_cast<std::uint32_t>(num_vars), kFalse, kFalse});
  nodes_.push_back(Node{static_cast<std::uint32_t>(num_vars), kTrue, kTrue});
}

Ref Manager::make(std::uint32_t var, Ref lo, Ref hi) {
  if (lo == hi) return lo;  // redundant test
  const std::uint64_t key = triple_key(var, lo, hi);
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= max_nodes_) {
    throw ResourceLimit("BDD node limit (" + std::to_string(max_nodes_) +
                        ") exceeded");
  }
  nodes_.push_back(Node{var, lo, hi});
  const Ref r = static_cast<Ref>(nodes_.size() - 1);
  unique_.emplace(key, r);
  return r;
}

Ref Manager::var(std::size_t index) {
  MOSS_CHECK(index < num_vars_, "variable index out of range");
  return make(static_cast<std::uint32_t>(index), kFalse, kTrue);
}

Ref Manager::nvar(std::size_t index) {
  MOSS_CHECK(index < num_vars_, "variable index out of range");
  return make(static_cast<std::uint32_t>(index), kTrue, kFalse);
}

Ref Manager::not_(Ref f) { return ite(f, kFalse, kTrue); }
Ref Manager::and_(Ref f, Ref g) { return ite(f, g, kFalse); }
Ref Manager::or_(Ref f, Ref g) { return ite(f, kTrue, g); }
Ref Manager::xor_(Ref f, Ref g) { return ite(f, not_(g), g); }

Ref Manager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = triple_key(f, g, h);
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  // Split on the top variable of f, g, h.
  const std::uint32_t v =
      std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  const auto cofactor = [&](Ref r, bool hi) {
    return nodes_[r].var == v ? (hi ? nodes_[r].hi : nodes_[r].lo) : r;
  };
  const Ref lo = ite(cofactor(f, false), cofactor(g, false),
                     cofactor(h, false));
  const Ref hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const Ref r = make(v, lo, hi);
  ite_cache_.emplace(key, r);
  return r;
}

bool Manager::eval(Ref f, const std::vector<bool>& assignment) const {
  MOSS_CHECK(assignment.size() == num_vars_, "assignment size mismatch");
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

double Manager::probability(Ref f, const std::vector<double>& p) const {
  MOSS_CHECK(p.size() == num_vars_, "probability vector size mismatch");
  std::unordered_map<Ref, double> memo;
  const std::function<double(Ref)> walk = [&](Ref r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    const auto it = memo.find(r);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[r];
    const double val =
        p[n.var] * walk(n.hi) + (1.0 - p[n.var]) * walk(n.lo);
    memo.emplace(r, val);
    return val;
  };
  return walk(f);
}

double Manager::sat_count(Ref f) const {
  const std::vector<double> half(num_vars_, 0.5);
  double scale = 1.0;
  for (std::size_t i = 0; i < num_vars_; ++i) scale *= 2.0;
  return probability(f, half) * scale;
}

std::optional<std::vector<bool>> Manager::any_sat(Ref f) const {
  if (f == kFalse) return std::nullopt;
  std::vector<bool> assignment(num_vars_, false);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      assignment[n.var] = true;
      f = n.hi;
    } else {
      assignment[n.var] = false;
      f = n.lo;
    }
  }
  return assignment;
}

}  // namespace moss::bdd
