#pragma once

#include <string>

#include "rtl/module.hpp"

namespace moss::rtl {

/// Emit a Module as synthesizable Verilog text. This text is the RTL
/// modality fed to the language model (and can be parsed back by
/// rtl::parse_verilog, giving a lossless-up-to-structure round trip).
///
/// Restrictions: bit/part selects must apply directly to named symbols
/// (the builder API and generators satisfy this); all literals are printed
/// with explicit sizes.
std::string to_verilog(const Module& m);

/// Render a single expression as Verilog (for prompts and debugging).
std::string expr_to_string(const Module& m, ExprId id);

}  // namespace moss::rtl
