#pragma once

#include <string>
#include <string_view>

#include "rtl/module.hpp"

namespace moss::rtl {

/// Error raised on malformed input, with line information in the message.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Parse a synthesizable Verilog subset into a Module. Supported grammar
/// (everything rtl::to_verilog emits, plus modest hand-written flexibility):
///
///   module NAME ( port_decl, ... );
///     input [W-1:0] a;  output [W-1:0] y;   // also inline in port list
///     wire [W-1:0] w;   reg [W-1:0] r;
///     assign w = expr;  assign y = expr;
///     always @(posedge clk) begin
///       r <= expr;
///       if (rst) r <= 8'd0; else r <= expr;
///       if (rst) r <= 8'd0; else if (en) r <= expr;
///       if (en) r <= expr;
///     end
///   endmodule
///
/// Expressions: sized literals (8'd255, 4'b1010, 8'hFF), identifiers,
/// bit/part selects on identifiers, concatenation {a, b}, replication
/// {4{x}}, unary ~ - & | ^, binary & | ^ + - * << >> == != < <= > >=,
/// ternary ?:, parentheses. Verilog precedence. All literals must be sized;
/// binary operands must have equal widths (shift amounts excepted).
///
/// The 1-bit input named "clk" is treated as the implicit clock and is not
/// added to Module::inputs.
Module parse_verilog(std::string_view text);

}  // namespace moss::rtl
