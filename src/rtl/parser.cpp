#include "rtl/parser.hpp"

#include <cctype>
#include <optional>

#include "core_util/strings.hpp"

namespace moss::rtl {

namespace {

enum class Tok : std::uint8_t {
  kIdent,
  kNumber,       // unsized decimal
  kSizedNumber,  // W'dNNN etc.
  kPunct,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;          // ident or punct spelling
  std::uint64_t value = 0;   // numbers
  int width = 0;             // sized numbers
  int line = 0;
  int col = 0;               // 1-based column of the token start
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_space_and_comments();
      if (pos_ >= s_.size()) break;
      out.push_back(next());
    }
    Token end;
    end.line = line_;
    end.col = column();
    out.push_back(end);
    return out;
  }

 private:
  int column() const { return static_cast<int>(pos_ - line_start_) + 1; }

  [[noreturn]] void err(const std::string& msg) const {
    throw ParseError("verilog parse error at line " + std::to_string(line_) +
                     ", col " + std::to_string(column()) + ": " + msg);
  }

  void skip_space_and_comments() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '/') {
        while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < s_.size() &&
               !(s_[pos_] == '*' && s_[pos_ + 1] == '/')) {
          if (s_[pos_] == '\n') {
            ++line_;
            line_start_ = pos_ + 1;
          }
          ++pos_;
        }
        if (pos_ + 1 >= s_.size()) err("unterminated block comment");
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  Token next() {
    const char c = s_[pos_];
    Token t;
    t.line = line_;
    t.col = column();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t e = pos_;
      while (e < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[e])) ||
                               s_[e] == '_')) {
        ++e;
      }
      t.kind = Tok::kIdent;
      t.text = std::string(s_.substr(pos_, e - pos_));
      pos_ = e;
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = pos_;
      std::uint64_t v = 0;
      while (e < s_.size() && std::isdigit(static_cast<unsigned char>(s_[e]))) {
        v = v * 10 + static_cast<std::uint64_t>(s_[e] - '0');
        ++e;
      }
      if (e < s_.size() && s_[e] == '\'') {
        // sized literal: WIDTH ' BASE DIGITS
        ++e;
        if (e >= s_.size()) err("truncated sized literal");
        const char base = static_cast<char>(
            std::tolower(static_cast<unsigned char>(s_[e])));
        ++e;
        int radix = 0;
        if (base == 'd') radix = 10;
        else if (base == 'b') radix = 2;
        else if (base == 'h') radix = 16;
        else err(std::string("unsupported literal base '") + base + "'");
        std::uint64_t lv = 0;
        bool any = false;
        while (e < s_.size()) {
          const char d = static_cast<char>(
              std::tolower(static_cast<unsigned char>(s_[e])));
          int dv;
          if (d >= '0' && d <= '9') dv = d - '0';
          else if (d >= 'a' && d <= 'f') dv = 10 + (d - 'a');
          else if (d == '_') { ++e; continue; }
          else break;
          if (dv >= radix) break;
          lv = lv * static_cast<std::uint64_t>(radix) +
               static_cast<std::uint64_t>(dv);
          any = true;
          ++e;
        }
        if (!any) err("sized literal with no digits");
        if (v < 1 || v > 64) err("literal width must be 1..64");
        t.kind = Tok::kSizedNumber;
        t.width = static_cast<int>(v);
        t.value = lv & width_mask(t.width);
        pos_ = e;
        return t;
      }
      t.kind = Tok::kNumber;
      t.value = v;
      pos_ = e;
      return t;
    }
    // punctuation, longest-match first
    static const char* kTwo[] = {"<=", ">=", "==", "!=", "<<", ">>"};
    for (const char* p : kTwo) {
      if (s_.substr(pos_, 2) == p) {
        t.kind = Tok::kPunct;
        t.text = p;
        pos_ += 2;
        return t;
      }
    }
    static const std::string kOne = "()[]{}<>,;:=@?~^&|+-*/";
    if (kOne.find(c) != std::string::npos) {
      t.kind = Tok::kPunct;
      t.text = std::string(1, c);
      ++pos_;
      return t;
    }
    err(std::string("unexpected character '") + c + "'");
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;
  int line_ = 1;
};

const char* symbol_kind_name(SymbolKind k) {
  switch (k) {
    case SymbolKind::kInput: return "an input";
    case SymbolKind::kWire: return "a wire";
    case SymbolKind::kRegister: return "a register";
  }
  return "unknown";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : toks_(Lexer(text).run()) {}

  Module run() {
    collect_declarations();
    parse_bodies();
    m_.validate();
    return std::move(m_);
  }

 private:
  [[noreturn]] void err(const std::string& msg) const {
    throw ParseError("verilog parse error at line " +
                     std::to_string(peek().line) + ", col " +
                     std::to_string(peek().col) + ": " + msg);
  }

  const Token& peek(int k = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(k);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& take() {
    const Token& t = peek();
    if (t.kind != Tok::kEnd) ++pos_;
    return t;
  }
  bool at_punct(const char* p) const {
    return peek().kind == Tok::kPunct && peek().text == p;
  }
  bool at_ident(const char* w) const {
    return peek().kind == Tok::kIdent && peek().text == w;
  }
  void expect_punct(const char* p) {
    if (!at_punct(p)) err(std::string("expected '") + p + "', got '" +
                          peek().text + "'");
    ++pos_;
  }
  std::string expect_ident() {
    if (peek().kind != Tok::kIdent) {
      const Token& t = peek();
      err("expected identifier, got " +
          (t.kind == Tok::kEnd
               ? std::string("end of input")
               : t.kind == Tok::kPunct ? "'" + t.text + "'"
                                       : "number " + std::to_string(t.value)));
    }
    return take().text;
  }

  /// Parse optional `[hi:lo]`; returns width (lo must be 0).
  int parse_range() {
    if (!at_punct("[")) return 1;
    ++pos_;
    if (peek().kind != Tok::kNumber) err("expected constant range bound");
    const int hi = static_cast<int>(take().value);
    expect_punct(":");
    if (peek().kind != Tok::kNumber) err("expected constant range bound");
    const int lo = static_cast<int>(take().value);
    expect_punct("]");
    if (lo != 0) err("declarations must use [N:0] ranges");
    return hi + 1;
  }

  // ---- pass 1: declarations ----------------------------------------------
  void collect_declarations() {
    pos_ = 0;
    if (!at_ident("module")) err("expected 'module'");
    ++pos_;
    m_.name = expect_ident();
    // Truncated/hostile input must fail here with a position, not slide
    // through the permissive declaration scan and "parse" an empty module.
    // `module foo;` (portless) is legal Verilog and stays accepted.
    if (!at_punct("(") && !at_punct(";")) {
      err("expected '(' or ';' after module name");
    }
    bool closed = false;
    while (peek().kind != Tok::kEnd) {
      if (at_ident("endmodule")) {
        closed = true;
        ++pos_;
      } else if (at_ident("input") || at_ident("output") || at_ident("wire") ||
          at_ident("reg")) {
        const std::string kind = take().text;
        const int width = parse_range();
        while (true) {
          const std::string name = expect_ident();
          declare(kind, name, width);
          // `input a, b;` — continue only when a bare identifier follows.
          if (at_punct(",") && peek(1).kind == Tok::kIdent &&
              !is_decl_keyword(peek(1).text)) {
            ++pos_;
            continue;
          }
          break;
        }
      } else {
        ++pos_;
      }
    }
    if (!closed) err("missing 'endmodule'");
  }

  static bool is_decl_keyword(const std::string& s) {
    return s == "input" || s == "output" || s == "wire" || s == "reg";
  }

  void declare(const std::string& kind, const std::string& name, int width) {
    if (kind == "input") {
      if (name == "clk" && width == 1) return;  // implicit clock
      m_.add_input(name, width);
      if ((name == "rst" || name == "reset" || name == "rst_n") &&
          width == 1 && !saw_reset_) {
        m_.reset_port = name;
        saw_reset_ = true;
      }
    } else if (kind == "output") {
      m_.declare_output(name, width);
    } else if (kind == "wire") {
      m_.declare_wire(name, width);
    } else {  // reg
      m_.add_reg(name, width, /*has_reset=*/false);
    }
  }

  // ---- pass 2: bodies -----------------------------------------------------
  void parse_bodies() {
    pos_ = 0;
    while (peek().kind != Tok::kEnd) {
      if (at_ident("assign")) {
        ++pos_;
        parse_assign();
      } else if (at_ident("always")) {
        ++pos_;
        parse_always();
      } else {
        ++pos_;
      }
    }
  }

  void parse_assign() {
    const std::string name = expect_ident();
    expect_punct("=");
    const ExprId e = parse_expr();
    expect_punct(";");
    const Symbol* s = m_.find_symbol(name);
    if (s && s->kind == SymbolKind::kWire) {
      m_.set_wire_expr(name, e);
      return;
    }
    // Must be an output.
    for (const Port& p : m_.outputs) {
      if (p.name == name) {
        m_.assign_output(name, p.width, e);
        return;
      }
    }
    err("assign target '" + name + "' is not a wire or output");
  }

  void parse_always() {
    expect_punct("@");
    expect_punct("(");
    if (!at_ident("posedge")) err("only posedge-clocked always supported");
    ++pos_;
    const std::string clk = expect_ident();
    if (clk != "clk") err("clock must be named 'clk'");
    expect_punct(")");
    const bool block = at_ident("begin");
    if (block) ++pos_;
    if (block) {
      while (!at_ident("end")) {
        if (peek().kind == Tok::kEnd) err("unterminated always block");
        parse_seq_statement();
      }
      ++pos_;  // end
    } else {
      parse_seq_statement();
    }
  }

  struct Nba {
    std::string reg;
    ExprId value;
  };

  Nba parse_nba() {
    const std::string name = expect_ident();
    const Symbol* s = m_.find_symbol(name);
    if (!s) {
      err("nonblocking assignment to undeclared symbol '" + name + "'");
    }
    if (s->kind != SymbolKind::kRegister) {
      err("nonblocking assignment to '" + name + "', which is " +
          symbol_kind_name(s->kind) + " (expected a register)");
    }
    expect_punct("<=");
    const ExprId v = parse_expr();
    expect_punct(";");
    if (m_.arena.at(v).width != s->width) {
      err("register '" + name + "': assigned width mismatch");
    }
    return Nba{name, v};
  }

  Register& reg_of(const std::string& name) {
    const Symbol* s = m_.find_symbol(name);
    if (!s) err("'" + name + "' is not declared");
    if (s->kind != SymbolKind::kRegister) {
      err("'" + name + "' is " + symbol_kind_name(s->kind) +
          ", not a register");
    }
    return m_.regs[static_cast<std::size_t>(s->index)];
  }

  void parse_seq_statement() {
    if (at_ident("case")) {
      parse_case_statement();
      return;
    }
    if (!at_ident("if")) {
      const Nba a = parse_nba();
      m_.set_next(a.reg, a.value);
      return;
    }
    ++pos_;  // if
    expect_punct("(");
    const ExprId cond1 = parse_expr();
    expect_punct(")");
    const bool is_reset = is_reset_ref(cond1);
    const Nba a1 = parse_nba();

    if (!at_ident("else")) {
      if (is_reset) {
        // `if (rst) r <= C;` — reset with hold otherwise.
        set_reset(a1);
        m_.set_next(a1.reg, m_.arena.var(a1.reg, reg_of(a1.reg).width));
      } else {
        // `if (en) r <= x;` — enabled update.
        m_.set_next(a1.reg, a1.value, cond1);
      }
      return;
    }
    ++pos_;  // else

    if (at_ident("if")) {
      // `if (rst) r <= C; else if (en) r <= x;`
      if (!is_reset) err("nested if-chains only supported after a reset arm");
      ++pos_;
      expect_punct("(");
      const ExprId en = parse_expr();
      expect_punct(")");
      const Nba a2 = parse_nba();
      if (a2.reg != a1.reg) err("if-chain arms assign different registers");
      set_reset(a1);
      m_.set_next(a1.reg, a2.value, en);
      return;
    }

    const Nba a2 = parse_nba();
    if (a2.reg != a1.reg) err("if/else arms assign different registers");
    if (is_reset) {
      // `if (rst) r <= C; else r <= x;`
      set_reset(a1);
      m_.set_next(a1.reg, a2.value);
    } else {
      // `if (c) r <= x; else r <= y;`  ->  r <= c ? x : y
      m_.set_next(a1.reg, m_.arena.mux(cond1, a1.value, a2.value));
    }
  }

  /// `case (sel) C0: r <= e0; ... default: r <= ed; endcase` — all arms
  /// must assign the same register; a missing default means hold. Lowers to
  /// a chain of equality-muxes (priority order is irrelevant for constant,
  /// distinct case labels).
  void parse_case_statement() {
    ++pos_;  // case
    expect_punct("(");
    const ExprId sel = parse_expr();
    expect_punct(")");
    struct Arm {
      ExprId match;  // kInvalidExpr for default
      Nba assign;
    };
    std::vector<Arm> arms;
    std::string target;
    bool has_default = false;
    while (!at_ident("endcase")) {
      if (peek().kind == Tok::kEnd) err("unterminated case statement");
      ExprId match = kInvalidExpr;
      if (at_ident("default")) {
        ++pos_;
        has_default = true;
      } else {
        if (peek().kind != Tok::kSizedNumber) {
          err("case labels must be sized literals");
        }
        const Token& t = take();
        if (t.width != m_.arena.at(sel).width) {
          err("case label width must match the selector");
        }
        match = m_.arena.constant(t.width, t.value);
      }
      expect_punct(":");
      Arm arm{match, parse_nba()};
      if (target.empty()) {
        target = arm.assign.reg;
      } else if (arm.assign.reg != target) {
        err("case arms must all assign the same register");
      }
      arms.push_back(std::move(arm));
    }
    ++pos_;  // endcase
    if (arms.empty()) err("empty case statement");

    // Fold from the fallback value backwards.
    const Symbol* s = m_.find_symbol(target);
    ExprId value = m_.arena.var(target, s->width);  // hold by default
    if (has_default) {
      for (const Arm& a : arms) {
        if (a.match == kInvalidExpr) value = a.assign.value;
      }
    }
    for (auto it = arms.rbegin(); it != arms.rend(); ++it) {
      if (it->match == kInvalidExpr) continue;
      value = m_.arena.mux(m_.arena.binary(ExprOp::kEq, sel, it->match),
                           it->assign.value, value);
    }
    m_.set_next(target, value);
  }

  bool is_reset_ref(ExprId e) const {
    const Expr& x = m_.arena.at(e);
    return x.op == ExprOp::kVar && x.var == m_.reset_port && saw_reset_;
  }

  void set_reset(const Nba& arm) {
    const Expr& v = m_.arena.at(arm.value);
    if (v.op != ExprOp::kConst) err("reset value must be a constant literal");
    Register& r = reg_of(arm.reg);
    r.has_reset = true;
    r.reset_value = v.value;
  }

  // ---- expressions (Verilog precedence, lowest first) ---------------------
  ExprId parse_expr() { return parse_ternary(); }

  ExprId parse_ternary() {
    const ExprId c = parse_bor();
    if (!at_punct("?")) return c;
    ++pos_;
    const ExprId t = parse_ternary();
    expect_punct(":");
    const ExprId f = parse_ternary();
    return m_.arena.mux(c, t, f);
  }

  ExprId parse_bor() {
    ExprId a = parse_bxor();
    while (at_punct("|")) {
      ++pos_;
      a = m_.arena.binary(ExprOp::kOr, a, parse_bxor());
    }
    return a;
  }

  ExprId parse_bxor() {
    ExprId a = parse_band();
    while (at_punct("^")) {
      ++pos_;
      a = m_.arena.binary(ExprOp::kXor, a, parse_band());
    }
    return a;
  }

  ExprId parse_band() {
    ExprId a = parse_equality();
    while (at_punct("&")) {
      ++pos_;
      a = m_.arena.binary(ExprOp::kAnd, a, parse_equality());
    }
    return a;
  }

  ExprId parse_equality() {
    ExprId a = parse_relational();
    while (at_punct("==") || at_punct("!=")) {
      const bool eq = take().text == "==";
      a = m_.arena.binary(eq ? ExprOp::kEq : ExprOp::kNe, a,
                          parse_relational());
    }
    return a;
  }

  ExprId parse_relational() {
    ExprId a = parse_shift();
    while (at_punct("<") || at_punct("<=") || at_punct(">") || at_punct(">=")) {
      const std::string op = take().text;
      const ExprId b = parse_shift();
      if (op == "<") a = m_.arena.binary(ExprOp::kLt, a, b);
      else if (op == "<=") a = m_.arena.binary(ExprOp::kLe, a, b);
      else if (op == ">") a = m_.arena.binary(ExprOp::kLt, b, a);
      else a = m_.arena.binary(ExprOp::kLe, b, a);
    }
    return a;
  }

  ExprId parse_shift() {
    ExprId a = parse_additive();
    while (at_punct("<<") || at_punct(">>")) {
      const bool left = take().text == "<<";
      a = m_.arena.binary(left ? ExprOp::kShl : ExprOp::kShr, a,
                          parse_additive());
    }
    return a;
  }

  ExprId parse_additive() {
    ExprId a = parse_mul();
    while (at_punct("+") || at_punct("-")) {
      const bool add = take().text == "+";
      a = m_.arena.binary(add ? ExprOp::kAdd : ExprOp::kSub, a, parse_mul());
    }
    return a;
  }

  ExprId parse_mul() {
    ExprId a = parse_unary();
    while (at_punct("*")) {
      ++pos_;
      a = m_.arena.binary(ExprOp::kMul, a, parse_unary());
    }
    return a;
  }

  ExprId parse_unary() {
    if (at_punct("~")) {
      ++pos_;
      return m_.arena.unary(ExprOp::kNot, parse_unary());
    }
    if (at_punct("-")) {
      ++pos_;
      return m_.arena.unary(ExprOp::kNeg, parse_unary());
    }
    if (at_punct("&")) {
      ++pos_;
      return m_.arena.unary(ExprOp::kRedAnd, parse_unary());
    }
    if (at_punct("|")) {
      ++pos_;
      return m_.arena.unary(ExprOp::kRedOr, parse_unary());
    }
    if (at_punct("^")) {
      ++pos_;
      return m_.arena.unary(ExprOp::kRedXor, parse_unary());
    }
    return parse_primary();
  }

  ExprId parse_primary() {
    if (at_punct("(")) {
      ++pos_;
      const ExprId e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (at_punct("{")) return parse_concat();
    if (peek().kind == Tok::kSizedNumber) {
      const Token& t = take();
      return m_.arena.constant(t.width, t.value);
    }
    if (peek().kind == Tok::kNumber) err("unsized literal in expression");
    if (peek().kind == Tok::kIdent) {
      const std::string name = take().text;
      const Symbol* s = m_.find_symbol(name);
      if (!s) err("unknown symbol '" + name + "'");
      ExprId v = m_.arena.var(name, s->width);
      if (at_punct("[")) {
        ++pos_;
        if (peek().kind != Tok::kNumber) err("expected constant bit index");
        const int hi = static_cast<int>(take().value);
        if (at_punct(":")) {
          ++pos_;
          if (peek().kind != Tok::kNumber) err("expected constant low index");
          const int lo = static_cast<int>(take().value);
          expect_punct("]");
          return m_.arena.slice(v, hi, lo);
        }
        expect_punct("]");
        return m_.arena.bit(v, hi);
      }
      return v;
    }
    err("expected expression");
  }

  ExprId parse_concat() {
    expect_punct("{");
    // Replication `{k{expr}}`?
    if (peek().kind == Tok::kNumber && peek(1).kind == Tok::kPunct &&
        peek(1).text == "{") {
      const int k = static_cast<int>(take().value);
      if (k < 1) err("replication count must be >= 1");
      expect_punct("{");
      const ExprId e = parse_expr();
      expect_punct("}");
      expect_punct("}");
      std::vector<ExprId> parts(static_cast<std::size_t>(k), e);
      return m_.arena.concat(std::move(parts));
    }
    std::vector<ExprId> parts;
    parts.push_back(parse_expr());
    while (at_punct(",")) {
      ++pos_;
      parts.push_back(parse_expr());
    }
    expect_punct("}");
    return parts.size() == 1 ? parts[0] : m_.arena.concat(std::move(parts));
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  Module m_;
  bool saw_reset_ = false;
};

}  // namespace

Module parse_verilog(std::string_view text) { return Parser(text).run(); }

}  // namespace moss::rtl
