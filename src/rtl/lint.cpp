#include "rtl/lint.hpp"

#include <set>

namespace moss::rtl {

namespace {

void collect_vars(const Module& m, ExprId root, std::set<std::string>& out) {
  if (root == kInvalidExpr) return;
  std::vector<ExprId> stack{root};
  while (!stack.empty()) {
    const Expr& e = m.arena.at(stack.back());
    stack.pop_back();
    if (e.op == ExprOp::kVar) out.insert(e.var);
    for (const ExprId a : e.args) stack.push_back(a);
  }
}

}  // namespace

std::vector<LintIssue> lint(const Module& m) {
  m.validate();
  std::vector<LintIssue> issues;

  // Who reads what — per consumer kind, excluding self-reads of registers.
  std::set<std::string> read_anywhere;
  std::set<std::string> read_outside_self;  // for registers
  for (const Wire& w : m.wires) {
    std::set<std::string> deps;
    collect_vars(m, w.expr, deps);
    read_anywhere.insert(deps.begin(), deps.end());
    read_outside_self.insert(deps.begin(), deps.end());
  }
  for (const Register& r : m.regs) {
    std::set<std::string> deps;
    collect_vars(m, r.next, deps);
    collect_vars(m, r.enable, deps);
    read_anywhere.insert(deps.begin(), deps.end());
    for (const std::string& d : deps) {
      if (d != r.name) read_outside_self.insert(d);
    }
  }
  for (const auto& [name, e] : m.output_assigns) {
    std::set<std::string> deps;
    collect_vars(m, e, deps);
    read_anywhere.insert(deps.begin(), deps.end());
    read_outside_self.insert(deps.begin(), deps.end());
  }

  for (const Port& p : m.inputs) {
    if (p.name == m.reset_port) continue;  // consumed implicitly
    if (!read_anywhere.count(p.name)) {
      issues.push_back({LintIssue::Kind::kUnusedInput, p.name,
                        "input '" + p.name + "' is never read"});
    }
  }
  for (const Wire& w : m.wires) {
    if (!read_anywhere.count(w.name)) {
      issues.push_back({LintIssue::Kind::kUnreadWire, w.name,
                        "wire '" + w.name + "' is never read"});
    }
  }
  for (const Register& r : m.regs) {
    if (!read_outside_self.count(r.name)) {
      issues.push_back(
          {LintIssue::Kind::kUnreadRegister, r.name,
           "register '" + r.name +
               "' is read by nothing outside its own update"});
    }
    if (r.next != kInvalidExpr &&
        m.arena.at(r.next).op == ExprOp::kConst) {
      issues.push_back({LintIssue::Kind::kConstantRegister, r.name,
                        "register '" + r.name +
                            "' always loads a constant"});
    }
  }
  if (m.outputs.empty()) {
    issues.push_back({LintIssue::Kind::kNoOutputs, "",
                      "module '" + m.name + "' has no outputs"});
  }
  return issues;
}

std::string to_string(const std::vector<LintIssue>& issues) {
  std::string out;
  for (const LintIssue& i : issues) {
    out += "warning: " + i.message + "\n";
  }
  return out;
}

}  // namespace moss::rtl
