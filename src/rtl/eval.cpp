#include "rtl/eval.hpp"

namespace moss::rtl {

Evaluator::Evaluator(const Module& m) : m_(&m) {
  m.validate();
  wire_order_ = m.wire_topo_order();
  // Power-on state is all-zero, matching a gate-level netlist before the
  // reset pulse; testbenches assert the reset input to reach reset values.
  reg_values_.assign(m.regs.size(), 0);
  outputs_.assign(m.outputs.size(), 0);
}

void Evaluator::reset() {
  for (std::size_t i = 0; i < m_->regs.size(); ++i) {
    const Register& r = m_->regs[i];
    reg_values_[i] = r.has_reset ? r.reset_value : 0;
  }
}

Evaluator::Env Evaluator::make_env(
    const std::vector<std::uint64_t>& input_values) const {
  MOSS_CHECK(input_values.size() == m_->inputs.size(),
             "evaluator: wrong number of input values");
  Env env;
  env.inputs = &input_values;
  env.wires.assign(m_->wires.size(), 0);
  for (const int wi : wire_order_) {
    env.wires[static_cast<std::size_t>(wi)] =
        eval(m_->wires[static_cast<std::size_t>(wi)].expr, env);
  }
  return env;
}

void Evaluator::step(const std::vector<std::uint64_t>& input_values) {
  const Env env = make_env(input_values);

  for (std::size_t i = 0; i < m_->outputs.size(); ++i) {
    // output_assigns is aligned with outputs by validate()'s invariant that
    // each output has exactly one assignment; look it up by name to be safe.
    for (const auto& [name, e] : m_->output_assigns) {
      if (name == m_->outputs[i].name) {
        outputs_[i] = eval(e, env);
        break;
      }
    }
  }

  // Compute all next-state values against the pre-edge state, then commit.
  std::vector<std::uint64_t> next = reg_values_;
  const Symbol* rst_sym = m_->find_symbol(m_->reset_port);
  const bool rst =
      rst_sym && rst_sym->kind == SymbolKind::kInput &&
      ((*env.inputs)[static_cast<std::size_t>(rst_sym->index)] & 1ull) != 0;
  for (std::size_t i = 0; i < m_->regs.size(); ++i) {
    const Register& r = m_->regs[i];
    if (r.has_reset && rst) {
      next[i] = r.reset_value;
      continue;
    }
    if (r.enable != kInvalidExpr && (eval(r.enable, env) & 1ull) == 0) {
      continue;  // hold
    }
    next[i] = eval(r.next, env) & width_mask(r.width);
  }
  reg_values_ = std::move(next);
}

std::vector<std::uint64_t> Evaluator::outputs_now(
    const std::vector<std::uint64_t>& input_values) const {
  const Env env = make_env(input_values);
  std::vector<std::uint64_t> out(m_->outputs.size(), 0);
  for (std::size_t i = 0; i < m_->outputs.size(); ++i) {
    for (const auto& [name, e] : m_->output_assigns) {
      if (name == m_->outputs[i].name) {
        out[i] = eval(e, env);
        break;
      }
    }
  }
  return out;
}

std::uint64_t Evaluator::eval(ExprId id, const Env& env) const {
  const Expr& e = m_->arena.at(id);
  const std::uint64_t mask = width_mask(e.width);
  switch (e.op) {
    case ExprOp::kConst:
      return e.value;
    case ExprOp::kVar: {
      const Symbol* s = m_->find_symbol(e.var);
      MOSS_CHECK(s != nullptr, "unresolved symbol " + e.var);
      switch (s->kind) {
        case SymbolKind::kInput:
          return (*env.inputs)[static_cast<std::size_t>(s->index)] &
                 width_mask(s->width);
        case SymbolKind::kWire:
          return env.wires[static_cast<std::size_t>(s->index)];
        case SymbolKind::kRegister:
          return reg_values_[static_cast<std::size_t>(s->index)];
      }
      return 0;
    }
    case ExprOp::kNot:
      return ~eval(e.args[0], env) & mask;
    case ExprOp::kNeg:
      return (~eval(e.args[0], env) + 1ull) & mask;
    case ExprOp::kRedAnd: {
      const Expr& a = m_->arena.at(e.args[0]);
      return eval(e.args[0], env) == width_mask(a.width) ? 1ull : 0ull;
    }
    case ExprOp::kRedOr:
      return eval(e.args[0], env) != 0 ? 1ull : 0ull;
    case ExprOp::kRedXor: {
      std::uint64_t v = eval(e.args[0], env);
      v ^= v >> 32;
      v ^= v >> 16;
      v ^= v >> 8;
      v ^= v >> 4;
      v ^= v >> 2;
      v ^= v >> 1;
      return v & 1ull;
    }
    case ExprOp::kAnd:
      return eval(e.args[0], env) & eval(e.args[1], env);
    case ExprOp::kOr:
      return eval(e.args[0], env) | eval(e.args[1], env);
    case ExprOp::kXor:
      return eval(e.args[0], env) ^ eval(e.args[1], env);
    case ExprOp::kAdd:
      return (eval(e.args[0], env) + eval(e.args[1], env)) & mask;
    case ExprOp::kSub:
      return (eval(e.args[0], env) - eval(e.args[1], env)) & mask;
    case ExprOp::kMul:
      return (eval(e.args[0], env) * eval(e.args[1], env)) & mask;
    case ExprOp::kShl: {
      const std::uint64_t sh = eval(e.args[1], env);
      return sh >= 64 ? 0 : (eval(e.args[0], env) << sh) & mask;
    }
    case ExprOp::kShr: {
      const std::uint64_t sh = eval(e.args[1], env);
      return sh >= 64 ? 0 : (eval(e.args[0], env) >> sh);
    }
    case ExprOp::kEq:
      return eval(e.args[0], env) == eval(e.args[1], env) ? 1ull : 0ull;
    case ExprOp::kNe:
      return eval(e.args[0], env) != eval(e.args[1], env) ? 1ull : 0ull;
    case ExprOp::kLt:
      return eval(e.args[0], env) < eval(e.args[1], env) ? 1ull : 0ull;
    case ExprOp::kLe:
      return eval(e.args[0], env) <= eval(e.args[1], env) ? 1ull : 0ull;
    case ExprOp::kMux:
      return (eval(e.args[0], env) & 1ull) ? eval(e.args[1], env)
                                           : eval(e.args[2], env);
    case ExprOp::kBit:
      return (eval(e.args[0], env) >> e.lo) & 1ull;
    case ExprOp::kSlice:
      return (eval(e.args[0], env) >> e.lo) & mask;
    case ExprOp::kConcat: {
      std::uint64_t v = 0;
      for (const ExprId a : e.args) {  // MSB first
        const Expr& part = m_->arena.at(a);
        v = (v << part.width) | eval(a, env);
      }
      return v & mask;
    }
    case ExprOp::kZext:
      return eval(e.args[0], env);
    case ExprOp::kSext: {
      const Expr& a = m_->arena.at(e.args[0]);
      std::uint64_t v = eval(e.args[0], env);
      const std::uint64_t sign = (v >> (a.width - 1)) & 1ull;
      if (sign) v |= mask & ~width_mask(a.width);
      return v;
    }
  }
  fail("unreachable expression op");
}

}  // namespace moss::rtl
