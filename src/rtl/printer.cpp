#include "rtl/printer.hpp"

#include "core_util/strings.hpp"

namespace moss::rtl {

namespace {

/// Verilog operator precedence (higher binds tighter).
int precedence(ExprOp op) {
  switch (op) {
    case ExprOp::kMux:
      return 1;
    case ExprOp::kOr:
      return 2;
    case ExprOp::kXor:
      return 3;
    case ExprOp::kAnd:
      return 4;
    case ExprOp::kEq:
    case ExprOp::kNe:
      return 5;
    case ExprOp::kLt:
    case ExprOp::kLe:
      return 6;
    case ExprOp::kShl:
    case ExprOp::kShr:
      return 7;
    case ExprOp::kAdd:
    case ExprOp::kSub:
      return 8;
    case ExprOp::kMul:
      return 9;
    case ExprOp::kNot:
    case ExprOp::kNeg:
    case ExprOp::kRedAnd:
    case ExprOp::kRedOr:
    case ExprOp::kRedXor:
      return 10;
    default:
      return 11;  // primary
  }
}

const char* op_token(ExprOp op) {
  switch (op) {
    case ExprOp::kAnd:
      return "&";
    case ExprOp::kOr:
      return "|";
    case ExprOp::kXor:
      return "^";
    case ExprOp::kAdd:
      return "+";
    case ExprOp::kSub:
      return "-";
    case ExprOp::kMul:
      return "*";
    case ExprOp::kShl:
      return "<<";
    case ExprOp::kShr:
      return ">>";
    case ExprOp::kEq:
      return "==";
    case ExprOp::kNe:
      return "!=";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    default:
      return "?";
  }
}

class Printer {
 public:
  explicit Printer(const Module& m) : m_(m) {}

  std::string expr(ExprId id, int parent_prec) const {
    const Expr& e = m_.arena.at(id);
    const int prec = precedence(e.op);
    std::string s;
    switch (e.op) {
      case ExprOp::kConst:
        s = strprintf("%d'd%llu", e.width,
                      static_cast<unsigned long long>(e.value));
        break;
      case ExprOp::kVar:
        s = e.var;
        break;
      case ExprOp::kNot:
        s = "~" + expr(e.args[0], prec);
        break;
      case ExprOp::kNeg:
        s = "-" + expr(e.args[0], prec);
        break;
      case ExprOp::kRedAnd:
        s = "&" + expr(e.args[0], prec);
        break;
      case ExprOp::kRedOr:
        s = "|" + expr(e.args[0], prec);
        break;
      case ExprOp::kRedXor:
        s = "^" + expr(e.args[0], prec);
        break;
      case ExprOp::kAnd:
      case ExprOp::kOr:
      case ExprOp::kXor:
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
      case ExprOp::kShl:
      case ExprOp::kShr:
      case ExprOp::kEq:
      case ExprOp::kNe:
      case ExprOp::kLt:
      case ExprOp::kLe:
        // Print left-associatively; give the right child a higher bar so
        // chains like a - b - c re-parse with the same shape.
        s = expr(e.args[0], prec - 1) + " " + op_token(e.op) + " " +
            expr(e.args[1], prec);
        break;
      case ExprOp::kMux:
        s = expr(e.args[0], prec) + " ? " + expr(e.args[1], prec) + " : " +
            expr(e.args[2], prec - 1);
        break;
      case ExprOp::kBit: {
        const Expr& a = m_.arena.at(e.args[0]);
        MOSS_CHECK(a.op == ExprOp::kVar,
                   "printer: bit-select must apply to a named symbol");
        s = a.var + strprintf("[%d]", e.lo);
        break;
      }
      case ExprOp::kSlice: {
        const Expr& a = m_.arena.at(e.args[0]);
        MOSS_CHECK(a.op == ExprOp::kVar,
                   "printer: part-select must apply to a named symbol");
        s = a.var + strprintf("[%d:%d]", e.hi, e.lo);
        break;
      }
      case ExprOp::kConcat: {
        std::vector<std::string> parts;
        parts.reserve(e.args.size());
        for (const ExprId a : e.args) parts.push_back(expr(a, 0));
        s = "{" + join(parts, ", ") + "}";
        break;
      }
      case ExprOp::kZext: {
        const Expr& a = m_.arena.at(e.args[0]);
        const int k = e.width - a.width;
        s = strprintf("{%d'd0, ", k) + expr(e.args[0], 0) + "}";
        break;
      }
      case ExprOp::kSext: {
        const Expr& a = m_.arena.at(e.args[0]);
        MOSS_CHECK(a.op == ExprOp::kVar,
                   "printer: sign-extension must apply to a named symbol");
        const int k = e.width - a.width;
        s = strprintf("{{%d{%s[%d]}}, %s}", k, a.var.c_str(), a.width - 1,
                      a.var.c_str());
        break;
      }
    }
    if (prec < parent_prec && prec <= 10) s = "(" + s + ")";
    return s;
  }

 private:
  const Module& m_;
};

std::string range_decl(int width) {
  return width == 1 ? "" : strprintf("[%d:0] ", width - 1);
}

std::string const_literal(int width, std::uint64_t value) {
  return strprintf("%d'd%llu", width, static_cast<unsigned long long>(value));
}

}  // namespace

std::string expr_to_string(const Module& m, ExprId id) {
  return Printer(m).expr(id, 0);
}

std::string to_verilog(const Module& m) {
  const Printer pr(m);
  std::string out;
  out += "module " + m.name + " (\n";
  std::vector<std::string> ports;
  if (!m.regs.empty()) ports.push_back("  input clk");
  for (const Port& p : m.inputs) {
    ports.push_back("  input " + range_decl(p.width) + p.name);
  }
  for (const Port& p : m.outputs) {
    ports.push_back("  output " + range_decl(p.width) + p.name);
  }
  out += join(ports, ",\n");
  out += "\n);\n";

  for (const Wire& w : m.wires) {
    out += "  wire " + range_decl(w.width) + w.name + ";\n";
  }
  for (const Register& r : m.regs) {
    out += "  reg " + range_decl(r.width) + r.name + ";\n";
  }
  out += "\n";
  for (const Wire& w : m.wires) {
    out += "  assign " + w.name + " = " + pr.expr(w.expr, 0) + ";\n";
  }

  if (!m.regs.empty()) {
    out += "\n  always @(posedge clk) begin\n";
    for (const Register& r : m.regs) {
      const std::string next = pr.expr(r.next, 0);
      if (r.has_reset && r.enable != kInvalidExpr) {
        out += "    if (" + m.reset_port + ") " + r.name + " <= " +
               const_literal(r.width, r.reset_value) + ";\n";
        out += "    else if (" + pr.expr(r.enable, 0) + ") " + r.name +
               " <= " + next + ";\n";
      } else if (r.has_reset) {
        out += "    if (" + m.reset_port + ") " + r.name + " <= " +
               const_literal(r.width, r.reset_value) + ";\n";
        out += "    else " + r.name + " <= " + next + ";\n";
      } else if (r.enable != kInvalidExpr) {
        out += "    if (" + pr.expr(r.enable, 0) + ") " + r.name + " <= " +
               next + ";\n";
      } else {
        out += "    " + r.name + " <= " + next + ";\n";
      }
    }
    out += "  end\n";
  }

  out += "\n";
  for (const auto& [name, e] : m.output_assigns) {
    out += "  assign " + name + " = " + pr.expr(e, 0) + ";\n";
  }
  out += "endmodule\n";
  return out;
}

}  // namespace moss::rtl
