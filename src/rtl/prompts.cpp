#include "rtl/prompts.hpp"

#include <functional>
#include <set>

#include "core_util/strings.hpp"
#include "rtl/printer.hpp"

namespace moss::rtl {

namespace {

/// Collect the names of all symbols referenced by an expression tree.
std::set<std::string> referenced_symbols(const Module& m, ExprId root) {
  std::set<std::string> out;
  std::vector<ExprId> stack{root};
  while (!stack.empty()) {
    const Expr& e = m.arena.at(stack.back());
    stack.pop_back();
    if (e.op == ExprOp::kVar) out.insert(e.var);
    for (const ExprId a : e.args) stack.push_back(a);
  }
  return out;
}

bool contains_op(const Module& m, ExprId root, ExprOp op) {
  std::vector<ExprId> stack{root};
  while (!stack.empty()) {
    const Expr& e = m.arena.at(stack.back());
    stack.pop_back();
    if (e.op == op) return true;
    for (const ExprId a : e.args) stack.push_back(a);
  }
  return false;
}

}  // namespace

std::string infer_register_role(const Module& m, const Register& r) {
  if (!r.role_hint.empty()) return r.role_hint;
  if (r.next == kInvalidExpr) return "state register";
  const auto deps = referenced_symbols(m, r.next);
  const bool self = deps.count(r.name) > 0;
  const Expr& top = m.arena.at(r.next);

  if (self && top.op == ExprOp::kConcat) return "shift register stage";
  if (self && top.op == ExprOp::kAdd) {
    // `r + const` is a counter; `r + something` an accumulator.
    const Expr& rhs = m.arena.at(top.args[1]);
    const Expr& lhs = m.arena.at(top.args[0]);
    if (rhs.op == ExprOp::kConst || lhs.op == ExprOp::kConst) return "counter";
    return "accumulator";
  }
  if (self && contains_op(m, r.next, ExprOp::kAdd)) return "accumulator";
  if (self && contains_op(m, r.next, ExprOp::kXor) && r.width >= 3) {
    return "linear feedback shift register";
  }
  if (!self && top.op == ExprOp::kMux) return "selected data register";
  if (!self && top.op == ExprOp::kVar) return "pipeline register";
  if (!self && contains_op(m, r.next, ExprOp::kMul)) {
    return "product register";
  }
  if (r.width == 1 && self && contains_op(m, r.next, ExprOp::kOr)) {
    return "sticky status flag";
  }
  if (r.width == 1) return "control flag";
  return "data register";
}

std::vector<RegisterPrompt> register_prompts(const Module& m) {
  // Precompute consumers: which wires / registers / outputs read each reg.
  std::vector<RegisterPrompt> out;
  out.reserve(m.regs.size());

  const auto consumers_of = [&](const std::string& reg) {
    std::vector<std::string> users;
    for (const Wire& w : m.wires) {
      if (w.expr != kInvalidExpr && referenced_symbols(m, w.expr).count(reg)) {
        users.push_back("wire " + w.name);
      }
    }
    for (const Register& r2 : m.regs) {
      if (r2.next != kInvalidExpr &&
          referenced_symbols(m, r2.next).count(reg)) {
        users.push_back(r2.name == reg ? "itself" : "register " + r2.name);
      }
    }
    for (const auto& [name, e] : m.output_assigns) {
      if (referenced_symbols(m, e).count(reg)) {
        users.push_back("output " + name);
      }
    }
    return users;
  };

  for (const Register& r : m.regs) {
    std::string t;
    t += "In module '" + m.name + "', register '" + r.name + "' is " +
         std::to_string(r.width) + (r.width == 1 ? " bit" : " bits") +
         " wide. ";
    t += "Role: " + infer_register_role(m, r) + ". ";
    if (r.next != kInvalidExpr) {
      t += "Next value: " + expr_to_string(m, r.next) + ". ";
      auto deps = referenced_symbols(m, r.next);
      deps.erase(r.name);
      if (!deps.empty()) {
        std::vector<std::string> dv(deps.begin(), deps.end());
        t += "Depends on: " + join(dv, ", ") + ". ";
      }
    }
    if (r.has_reset) {
      t += strprintf("Synchronously reset to %llu when '%s' is high. ",
                     static_cast<unsigned long long>(r.reset_value),
                     m.reset_port.c_str());
    }
    if (r.enable != kInvalidExpr) {
      t += "Updates only when enable condition (" +
           expr_to_string(m, r.enable) + ") holds, otherwise keeps its "
           "value. ";
    }
    const auto users = consumers_of(r.name);
    if (!users.empty()) {
      t += "Consumed by: " + join(users, ", ") + ".";
    } else {
      t += "Not consumed downstream.";
    }
    out.push_back(RegisterPrompt{r.name, std::move(t)});
  }
  return out;
}

std::string module_prompt(const Module& m) {
  std::string t;
  t += "Module '" + m.name + "': " + std::to_string(m.inputs.size()) +
       " inputs, " + std::to_string(m.outputs.size()) + " outputs, " +
       std::to_string(m.regs.size()) + " registers (" +
       std::to_string(m.total_reg_bits()) + " state bits). ";
  std::vector<std::string> roles;
  for (const Register& r : m.regs) {
    roles.push_back(r.name + ": " + infer_register_role(m, r));
  }
  if (!roles.empty()) t += "Register roles — " + join(roles, "; ") + ". ";
  t += "RTL source follows.\n";
  t += to_verilog(m);
  return t;
}

}  // namespace moss::rtl
