#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/module.hpp"

namespace moss::rtl {

/// Word-level cycle-accurate evaluator of an RTL Module. This is the golden
/// functional model: synthesis correctness and RTL↔netlist functional
/// equivalence (the FEP task's ground truth) are defined against it.
class Evaluator {
 public:
  explicit Evaluator(const Module& m);

  /// Jump all registers to their reset values (registers without reset go
  /// to 0). The constructor instead powers on at all-zero, matching the
  /// gate-level simulator; drive the reset input to initialize properly.
  void reset();

  /// Advance one clock cycle with the given input values (by input port
  /// order; values are masked to port width). Wires/outputs are evaluated
  /// with the *pre-edge* register state, then registers commit.
  void step(const std::vector<std::uint64_t>& input_values);

  /// Output values as of the most recent step() (post-edge wires are not
  /// re-evaluated; call outputs_now() for combinational outputs of the
  /// current state and inputs).
  const std::vector<std::uint64_t>& outputs() const { return outputs_; }

  /// Current register values (by module register order).
  const std::vector<std::uint64_t>& state() const { return reg_values_; }

  /// Evaluate outputs for the current state and the given inputs, without
  /// advancing the clock.
  std::vector<std::uint64_t> outputs_now(
      const std::vector<std::uint64_t>& input_values) const;

 private:
  struct Env {
    const std::vector<std::uint64_t>* inputs;
    std::vector<std::uint64_t> wires;
  };

  std::uint64_t eval(ExprId id, const Env& env) const;
  Env make_env(const std::vector<std::uint64_t>& input_values) const;

  const Module* m_;
  std::vector<int> wire_order_;
  std::vector<std::uint64_t> reg_values_;
  std::vector<std::uint64_t> outputs_;
};

}  // namespace moss::rtl
