#include "rtl/module.hpp"

#include <algorithm>
#include <functional>

namespace moss::rtl {

void Module::declare(const std::string& n, SymbolKind kind, int width,
                     int index) {
  MOSS_CHECK(!n.empty(), "empty symbol name");
  MOSS_CHECK(symbols_.find(n) == symbols_.end(), "duplicate symbol: " + n);
  symbols_.emplace(n, Symbol{kind, width, index});
}

ExprId Module::add_input(const std::string& n, int width) {
  declare(n, SymbolKind::kInput, width, static_cast<int>(inputs.size()));
  inputs.push_back(Port{n, width});
  return arena.var(n, width);
}

ExprId Module::add_wire(const std::string& n, int width, ExprId expr) {
  MOSS_CHECK(arena.at(expr).width == width,
             "wire " + n + ": width mismatch with expression");
  declare(n, SymbolKind::kWire, width, static_cast<int>(wires.size()));
  wires.push_back(Wire{n, width, expr});
  return arena.var(n, width);
}

ExprId Module::add_reg(const std::string& n, int width, bool has_reset,
                       std::uint64_t reset_value) {
  declare(n, SymbolKind::kRegister, width, static_cast<int>(regs.size()));
  Register r;
  r.name = n;
  r.width = width;
  r.has_reset = has_reset;
  r.reset_value = reset_value & width_mask(width);
  regs.push_back(std::move(r));
  return arena.var(n, width);
}

void Module::set_next(const std::string& reg, ExprId next, ExprId enable) {
  const Symbol* s = find_symbol(reg);
  MOSS_CHECK(s && s->kind == SymbolKind::kRegister, "not a register: " + reg);
  Register& r = regs[static_cast<std::size_t>(s->index)];
  MOSS_CHECK(arena.at(next).width == r.width,
             "register " + reg + ": next-value width mismatch");
  if (enable != kInvalidExpr) {
    MOSS_CHECK(arena.at(enable).width == 1,
               "register " + reg + ": enable must be 1 bit");
  }
  r.next = next;
  r.enable = enable;
}

void Module::set_role(const std::string& reg, std::string role_hint) {
  const Symbol* s = find_symbol(reg);
  MOSS_CHECK(s && s->kind == SymbolKind::kRegister, "not a register: " + reg);
  regs[static_cast<std::size_t>(s->index)].role_hint = std::move(role_hint);
}

void Module::assign_output(const std::string& n, int width, ExprId expr) {
  MOSS_CHECK(arena.at(expr).width == width,
             "output " + n + ": width mismatch with expression");
  for (const auto& [existing, _] : output_assigns) {
    MOSS_CHECK(existing != n, "output assigned twice: " + n);
  }
  // The port may have been declared already (parser path) or not (builder
  // path).
  bool declared = false;
  for (const Port& p : outputs) {
    if (p.name == n) {
      MOSS_CHECK(p.width == width, "output " + n + ": redeclared width");
      declared = true;
      break;
    }
  }
  if (!declared) outputs.push_back(Port{n, width});
  output_assigns.emplace_back(n, expr);
}

ExprId Module::declare_wire(const std::string& n, int width) {
  declare(n, SymbolKind::kWire, width, static_cast<int>(wires.size()));
  wires.push_back(Wire{n, width, kInvalidExpr});
  return arena.var(n, width);
}

void Module::set_wire_expr(const std::string& n, ExprId expr) {
  const Symbol* s = find_symbol(n);
  MOSS_CHECK(s && s->kind == SymbolKind::kWire, "not a wire: " + n);
  Wire& w = wires[static_cast<std::size_t>(s->index)];
  MOSS_CHECK(w.expr == kInvalidExpr, "wire assigned twice: " + n);
  MOSS_CHECK(arena.at(expr).width == w.width,
             "wire " + n + ": width mismatch with expression");
  w.expr = expr;
}

void Module::declare_output(const std::string& n, int width) {
  for (const Port& p : outputs) {
    MOSS_CHECK(p.name != n, "output declared twice: " + n);
  }
  outputs.push_back(Port{n, width});
}

const Symbol* Module::find_symbol(const std::string& n) const {
  const auto it = symbols_.find(n);
  return it == symbols_.end() ? nullptr : &it->second;
}

bool Module::has_input(const std::string& n) const {
  const Symbol* s = find_symbol(n);
  return s && s->kind == SymbolKind::kInput;
}

int Module::total_reg_bits() const {
  int bits = 0;
  for (const Register& r : regs) bits += r.width;
  return bits;
}

namespace {

/// Walk an expression, invoking `visit` on every kVar node.
void for_each_var(const ExprArena& arena, ExprId root,
                  const std::function<void(const Expr&)>& visit) {
  std::vector<ExprId> stack{root};
  while (!stack.empty()) {
    const ExprId id = stack.back();
    stack.pop_back();
    const Expr& e = arena.at(id);
    if (e.op == ExprOp::kVar) visit(e);
    for (const ExprId a : e.args) stack.push_back(a);
  }
}

}  // namespace

void Module::validate() const {
  const auto check_expr = [&](ExprId root, const std::string& where) {
    for_each_var(arena, root, [&](const Expr& e) {
      const Symbol* s = find_symbol(e.var);
      MOSS_CHECK(s != nullptr, where + ": unresolved symbol " + e.var);
      MOSS_CHECK(s->width == e.width,
                 where + ": symbol " + e.var + " declared " +
                     std::to_string(s->width) + " bits, referenced as " +
                     std::to_string(e.width));
    });
  };

  for (const Wire& w : wires) {
    MOSS_CHECK(w.expr != kInvalidExpr, "wire " + w.name + " never assigned");
    check_expr(w.expr, "wire " + w.name);
  }
  for (const Register& r : regs) {
    MOSS_CHECK(r.next != kInvalidExpr,
               "register " + r.name + " has no next-value assignment");
    MOSS_CHECK(arena.at(r.next).width == r.width,
               "register " + r.name + ": next width mismatch");
    check_expr(r.next, "register " + r.name);
    if (r.enable != kInvalidExpr) check_expr(r.enable, "enable of " + r.name);
    if (r.has_reset) {
      const Symbol* s = find_symbol(reset_port);
      MOSS_CHECK(s && s->kind == SymbolKind::kInput && s->width == 1,
                 "module uses synchronous reset but has no 1-bit input '" +
                     reset_port + "'");
    }
  }
  MOSS_CHECK(output_assigns.size() == outputs.size(),
             "every output needs exactly one assignment");
  for (const auto& [n, e] : output_assigns) {
    check_expr(e, "output " + n);
  }
  (void)wire_topo_order();  // throws on combinational wire cycles
}

std::vector<int> Module::wire_topo_order() const {
  // Dependencies: wire -> wires referenced by its expression.
  const int n = static_cast<int>(wires.size());
  std::vector<std::vector<int>> deps(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for_each_var(arena, wires[static_cast<std::size_t>(i)].expr,
                 [&](const Expr& e) {
                   const Symbol* s = find_symbol(e.var);
                   if (s && s->kind == SymbolKind::kWire) {
                     deps[static_cast<std::size_t>(i)].push_back(s->index);
                   }
                 });
  }
  std::vector<int> state(static_cast<std::size_t>(n), 0);  // 0 new 1 open 2 done
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  const std::function<void(int)> dfs = [&](int i) {
    if (state[static_cast<std::size_t>(i)] == 2) return;
    MOSS_CHECK(state[static_cast<std::size_t>(i)] != 1,
               "combinational cycle through wire " +
                   wires[static_cast<std::size_t>(i)].name);
    state[static_cast<std::size_t>(i)] = 1;
    for (const int d : deps[static_cast<std::size_t>(i)]) dfs(d);
    state[static_cast<std::size_t>(i)] = 2;
    order.push_back(i);
  };
  for (int i = 0; i < n; ++i) dfs(i);
  return order;
}

}  // namespace moss::rtl
