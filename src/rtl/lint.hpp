#pragma once

#include <string>
#include <vector>

#include "rtl/module.hpp"

namespace moss::rtl {

/// A lint finding on an RTL module.
struct LintIssue {
  enum class Kind {
    kUnusedInput,      ///< input port read by nothing
    kUnreadRegister,   ///< register consumed only by itself (or nothing)
    kUnreadWire,       ///< wire referenced by nothing
    kConstantRegister, ///< next-value is a constant (state never varies
                       ///< after the first cycle)
    kNoOutputs,        ///< module drives nothing
  };
  Kind kind;
  std::string symbol;   ///< offending symbol ("" for module-level issues)
  std::string message;  ///< human-readable description
};

/// Static checks a synthesis front-end would warn about. The module must
/// validate() cleanly first. Findings are ordered by declaration order.
std::vector<LintIssue> lint(const Module& m);

/// Render issues as "warning: ..." lines.
std::string to_string(const std::vector<LintIssue>& issues);

}  // namespace moss::rtl
