#pragma once

#include <string>
#include <vector>

#include "rtl/module.hpp"

namespace moss::rtl {

/// The "Register Description Prompt" of the paper (Fig. 3a): for each RTL
/// register, a textual description of its context and functionality that the
/// language model encodes; the resulting embedding is overlaid onto the
/// netlist DFFs implementing that register.
struct RegisterPrompt {
  std::string register_name;
  std::string text;
};

/// Build one prompt per register of the module. The prompt includes the
/// module name, register width, reset/enable behaviour, its next-value
/// expression, which signals it depends on, which wires/registers/outputs
/// consume it, and an inferred functional role.
std::vector<RegisterPrompt> register_prompts(const Module& m);

/// Global functionality text for the whole module: a structural summary
/// followed by the full RTL source. Encoded by the LM to produce the global
/// RTL embedding used for RNC/RNM alignment.
std::string module_prompt(const Module& m);

/// Heuristic functional role of a register ("counter", "shift register",
/// "accumulator", ...), derived from the shape of its next-value expression.
/// Used when the generator did not set an explicit role hint.
std::string infer_register_role(const Module& m, const Register& r);

}  // namespace moss::rtl
