#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/expr.hpp"

namespace moss::rtl {

/// A module port or declared net.
struct Port {
  std::string name;
  int width = 1;
};

/// A named combinational net: `assign name = expr;`.
struct Wire {
  std::string name;
  int width = 1;
  ExprId expr = kInvalidExpr;
};

/// One RTL register (a whole vector, not a bit). Semantics per clock edge:
///   if (has_reset && rst)  q <= reset_value;
///   else if (enable != kInvalidExpr && !enable)  q <= q;
///   else  q <= next;
/// `rst` is the module input named by Module::reset_port.
struct Register {
  std::string name;
  int width = 1;
  bool has_reset = false;
  std::uint64_t reset_value = 0;
  ExprId enable = kInvalidExpr;  ///< 1-bit expression, optional
  ExprId next = kInvalidExpr;

  /// Optional short role hint emitted into the register description prompt
  /// (e.g. "accumulator", "shift stage"). Generators set this.
  std::string role_hint;
};

/// Symbol kinds visible inside expressions.
enum class SymbolKind : std::uint8_t { kInput, kWire, kRegister };

struct Symbol {
  SymbolKind kind;
  int width;
  int index;  ///< index into the corresponding Module vector
};

/// A synthesizable RTL module: the textual/functional modality of MOSS.
/// All registers share one implicit clock `clk`; synchronous reset uses the
/// input named `reset_port` (when any register has_reset).
class Module {
 public:
  std::string name = "top";
  std::string reset_port = "rst";

  ExprArena arena;
  std::vector<Port> inputs;
  std::vector<Port> outputs;
  std::vector<Wire> wires;
  std::vector<Register> regs;
  /// output port name -> driving expression
  std::vector<std::pair<std::string, ExprId>> output_assigns;

  // -- Construction helpers ------------------------------------------------
  ExprId add_input(const std::string& n, int width);
  /// Declares the wire and returns a kVar expression referring to it.
  ExprId add_wire(const std::string& n, int width, ExprId expr);
  /// Declares the register and returns a kVar expression for its Q value.
  /// Set `next` later via set_next() (allows feedback through the var).
  ExprId add_reg(const std::string& n, int width, bool has_reset = true,
                 std::uint64_t reset_value = 0);
  void set_next(const std::string& reg, ExprId next,
                ExprId enable = kInvalidExpr);
  void set_role(const std::string& reg, std::string role_hint);
  void assign_output(const std::string& n, int width, ExprId expr);

  // Declare-then-define API (used by the parser's two-pass flow).
  /// Declare a wire without a driving expression yet; returns its var.
  ExprId declare_wire(const std::string& n, int width);
  void set_wire_expr(const std::string& n, ExprId expr);
  /// Declare an output port without an assignment yet.
  void declare_output(const std::string& n, int width);

  // -- Queries --------------------------------------------------------------
  const Symbol* find_symbol(const std::string& n) const;
  bool has_input(const std::string& n) const;

  /// Total register bits (== DFF count after synthesis, pre-optimization).
  int total_reg_bits() const;

  /// Full validation: every var resolves with matching width, every register
  /// has a next expression of its width, enables are 1 bit, outputs are
  /// assigned exactly once, wire dependencies are acyclic.
  void validate() const;

  /// Wire evaluation order (wires may reference other wires; this is the
  /// topological order of those dependencies). Computed by validate(); also
  /// available directly.
  std::vector<int> wire_topo_order() const;

 private:
  void declare(const std::string& n, SymbolKind kind, int width, int index);
  std::unordered_map<std::string, Symbol> symbols_;
};

}  // namespace moss::rtl
