#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core_util/check.hpp"

namespace moss::rtl {

/// Expression id inside an ExprArena.
using ExprId = std::int32_t;
inline constexpr ExprId kInvalidExpr = -1;

/// Word-level RTL operators (a pragmatic synthesizable Verilog subset).
enum class ExprOp : std::uint8_t {
  kConst,   ///< literal, `value` holds the bits
  kVar,     ///< reference to an input / wire / register by name
  kNot,     ///< ~a (bitwise)
  kNeg,     ///< -a (two's complement)
  kRedAnd,  ///< &a  -> 1 bit
  kRedOr,   ///< |a  -> 1 bit
  kRedXor,  ///< ^a  -> 1 bit
  kAnd,     ///< a & b
  kOr,      ///< a | b
  kXor,     ///< a ^ b
  kAdd,     ///< a + b  (mod 2^w)
  kSub,     ///< a - b  (mod 2^w)
  kMul,     ///< a * b  (mod 2^w; pre-extend operands for widening mul)
  kShl,     ///< a << b (b is an expression; result width = width(a))
  kShr,     ///< a >> b (logical)
  kEq,      ///< a == b -> 1 bit
  kNe,      ///< a != b -> 1 bit
  kLt,      ///< a <  b (unsigned) -> 1 bit
  kLe,      ///< a <= b (unsigned) -> 1 bit
  kMux,     ///< args {sel, t, f}: sel ? t : f
  kBit,     ///< a[lo] -> 1 bit
  kSlice,   ///< a[hi:lo]
  kConcat,  ///< {args...} MSB-first
  kZext,    ///< zero-extend a to `width`
  kSext,    ///< sign-extend a to `width`
};

/// One expression node. Nodes are immutable once created and live in an
/// ExprArena owned by the Module; sharing (DAG) is allowed and encouraged.
struct Expr {
  ExprOp op = ExprOp::kConst;
  int width = 1;              ///< result width in bits (1..64)
  std::uint64_t value = 0;    ///< kConst
  std::string var;            ///< kVar: symbol name
  std::vector<ExprId> args;   ///< operands
  int lo = 0;                 ///< kBit (bit index) / kSlice (low bit)
  int hi = 0;                 ///< kSlice (high bit)
};

/// Mask with the low `w` bits set.
inline std::uint64_t width_mask(int w) {
  return w >= 64 ? ~0ull : ((1ull << w) - 1ull);
}

/// Arena of expression nodes plus a typed builder API that validates widths
/// at construction time, so a Module can never hold an ill-formed tree.
class ExprArena {
 public:
  const Expr& at(ExprId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  std::size_t size() const { return nodes_.size(); }

  ExprId constant(int width, std::uint64_t value) {
    check_width(width);
    Expr e;
    e.op = ExprOp::kConst;
    e.width = width;
    e.value = value & width_mask(width);
    return push(std::move(e));
  }

  ExprId var(const std::string& name, int width) {
    check_width(width);
    MOSS_CHECK(!name.empty(), "variable reference needs a name");
    Expr e;
    e.op = ExprOp::kVar;
    e.width = width;
    e.var = name;
    return push(std::move(e));
  }

  ExprId unary(ExprOp op, ExprId a) {
    const int aw = at(a).width;
    Expr e;
    e.op = op;
    e.args = {a};
    switch (op) {
      case ExprOp::kNot:
      case ExprOp::kNeg:
        e.width = aw;
        break;
      case ExprOp::kRedAnd:
      case ExprOp::kRedOr:
      case ExprOp::kRedXor:
        e.width = 1;
        break;
      default:
        fail("not a unary op");
    }
    return push(std::move(e));
  }

  ExprId binary(ExprOp op, ExprId a, ExprId b) {
    const int aw = at(a).width;
    const int bw = at(b).width;
    Expr e;
    e.op = op;
    e.args = {a, b};
    switch (op) {
      case ExprOp::kAnd:
      case ExprOp::kOr:
      case ExprOp::kXor:
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
        MOSS_CHECK(aw == bw, "operand width mismatch (" +
                                 std::to_string(aw) + " vs " +
                                 std::to_string(bw) + ")");
        e.width = aw;
        break;
      case ExprOp::kShl:
      case ExprOp::kShr:
        e.width = aw;
        break;
      case ExprOp::kEq:
      case ExprOp::kNe:
      case ExprOp::kLt:
      case ExprOp::kLe:
        MOSS_CHECK(aw == bw, "comparison width mismatch");
        e.width = 1;
        break;
      default:
        fail("not a binary op");
    }
    return push(std::move(e));
  }

  ExprId mux(ExprId sel, ExprId t, ExprId f) {
    MOSS_CHECK(at(sel).width == 1, "mux select must be 1 bit");
    MOSS_CHECK(at(t).width == at(f).width, "mux arm width mismatch");
    Expr e;
    e.op = ExprOp::kMux;
    e.width = at(t).width;
    e.args = {sel, t, f};
    return push(std::move(e));
  }

  ExprId bit(ExprId a, int index) {
    MOSS_CHECK(index >= 0 && index < at(a).width, "bit index out of range");
    Expr e;
    e.op = ExprOp::kBit;
    e.width = 1;
    e.args = {a};
    e.lo = index;
    return push(std::move(e));
  }

  ExprId slice(ExprId a, int hi, int lo) {
    MOSS_CHECK(lo >= 0 && hi >= lo && hi < at(a).width,
               "slice range out of bounds");
    Expr e;
    e.op = ExprOp::kSlice;
    e.width = hi - lo + 1;
    e.args = {a};
    e.hi = hi;
    e.lo = lo;
    return push(std::move(e));
  }

  ExprId concat(std::vector<ExprId> parts_msb_first) {
    MOSS_CHECK(!parts_msb_first.empty(), "empty concat");
    int w = 0;
    for (const ExprId p : parts_msb_first) w += at(p).width;
    check_width(w);
    Expr e;
    e.op = ExprOp::kConcat;
    e.width = w;
    e.args = std::move(parts_msb_first);
    return push(std::move(e));
  }

  ExprId zext(ExprId a, int width) {
    MOSS_CHECK(width >= at(a).width, "zext must not narrow");
    check_width(width);
    if (width == at(a).width) return a;
    Expr e;
    e.op = ExprOp::kZext;
    e.width = width;
    e.args = {a};
    return push(std::move(e));
  }

  ExprId sext(ExprId a, int width) {
    MOSS_CHECK(width >= at(a).width, "sext must not narrow");
    check_width(width);
    if (width == at(a).width) return a;
    Expr e;
    e.op = ExprOp::kSext;
    e.width = width;
    e.args = {a};
    return push(std::move(e));
  }

 private:
  static void check_width(int w) {
    MOSS_CHECK(w >= 1 && w <= 64, "widths must be 1..64 bits");
  }
  ExprId push(Expr e) {
    nodes_.push_back(std::move(e));
    return static_cast<ExprId>(nodes_.size() - 1);
  }
  std::vector<Expr> nodes_;
};

}  // namespace moss::rtl
