#include "baseline/deepseq.hpp"

#include <algorithm>

#include "aig/aig_sim.hpp"
#include "core_util/strings.hpp"
#include "power/power.hpp"

namespace moss::baseline {

using aig::Aig;
using aig::AigKind;
using aig::Lit;
using core::CircuitBatch;
using tensor::Tensor;

namespace {

constexpr std::size_t kAigFeatureDim = 9;

/// Simulate the AIG with random stimulus (reset-aware, like
/// sim::random_activity) and return per-node toggle and one rates.
void aig_activity(const Aig& g, const netlist::Netlist& nl,
                  std::uint64_t cycles, Rng& rng,
                  std::vector<float>& toggle, std::vector<float>& one_prob) {
  aig::AigSimulator sim(g);
  std::vector<bool> is_reset(nl.inputs().size(), false);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const std::string& n = nl.node(nl.inputs()[i]).name;
    is_reset[i] = (n == "rst" || n == "reset" || n == "rst_n");
  }
  std::vector<std::uint8_t> pis(g.pis().size(), 0);
  std::vector<std::uint8_t> prev(g.num_nodes(), 0);
  std::vector<std::uint64_t> trans(g.num_nodes(), 0);
  std::vector<std::uint64_t> ones(g.num_nodes(), 0);

  const auto snapshot = [&](std::vector<std::uint8_t>& out) {
    for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
      out[i] = sim.value(aig::make_lit(i, false));
    }
  };

  for (int warm = 0; warm < 4; ++warm) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      pis[i] = is_reset[i] ? 1 : (rng.bernoulli(0.5) ? 1 : 0);
    }
    sim.step(pis);
  }
  snapshot(prev);
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      pis[i] = is_reset[i] ? (rng.bernoulli(0.002) ? 1 : 0)
                           : (rng.bernoulli(0.5) ? 1 : 0);
    }
    sim.step(pis);
    std::vector<std::uint8_t> cur(g.num_nodes());
    snapshot(cur);
    for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
      trans[i] += (cur[i] != prev[i]) ? 1u : 0u;
      ones[i] += cur[i];
    }
    prev = std::move(cur);
  }
  toggle.resize(g.num_nodes());
  one_prob.resize(g.num_nodes());
  for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
    toggle[i] = cycles ? static_cast<float>(trans[i]) / cycles : 0.0f;
    one_prob[i] = cycles ? static_cast<float>(ones[i]) / cycles : 0.0f;
  }
}

}  // namespace

std::size_t aig_feature_dim() { return kAigFeatureDim; }

AigBatch build_aig_batch(const data::LabeledCircuit& lc, std::uint64_t seed,
                         std::uint64_t sim_cycles) {
  AigBatch out;
  out.mapping.conv = aig::from_netlist(lc.netlist);
  const Aig& g = out.mapping.conv.aig;
  const std::size_t N = g.num_nodes();

  // --- features: kind one-hot + fanin inversion flags + fanout stat -------
  Tensor features = Tensor::zeros(N, kAigFeatureDim);
  const std::vector<int> aig_levels = g.levels();
  std::vector<int> fanout(N, 0);
  for (std::uint32_t i = 0; i < N; ++i) {
    if (g.node(i).kind == AigKind::kAnd) {
      ++fanout[aig::lit_node(g.node(i).fanin0)];
      ++fanout[aig::lit_node(g.node(i).fanin1)];
    } else if (g.node(i).kind == AigKind::kLatch) {
      ++fanout[aig::lit_node(g.node(i).fanin0)];
    }
  }
  for (std::uint32_t i = 0; i < N; ++i) {
    float* row = features.data().data() + i * kAigFeatureDim;
    const aig::AigNode& n = g.node(i);
    row[static_cast<std::size_t>(n.kind)] = 1.0f;  // 4-way one-hot
    if (n.kind == AigKind::kAnd) {
      row[4] = aig::lit_compl(n.fanin0) ? 1.0f : 0.0f;
      row[5] = aig::lit_compl(n.fanin1) ? 1.0f : 0.0f;
    } else if (n.kind == AigKind::kLatch) {
      row[4] = aig::lit_compl(n.fanin0) ? 1.0f : 0.0f;
    }
    row[6] = static_cast<float>(fanout[i]) / 8.0f;
    row[7] = 1.0f;  // bias feature
    row[8] = static_cast<float>(aig_levels[i]) / 20.0f;  // AIG depth
  }

  // --- graph schedule: AND levels forward, latches turnaround --------------
  gnn::GraphBuilder gb(N, 1);
  gb.set_features(std::move(features));
  const std::vector<int>& levels = aig_levels;
  std::vector<std::vector<int>> by_level;
  for (std::uint32_t i = 0; i < N; ++i) {
    const aig::AigNode& n = g.node(i);
    if (n.kind == AigKind::kAnd) {
      // pos encodes pin and complementation: pin*2 + compl.
      gb.set_fanins(static_cast<int>(i),
                    {{static_cast<int>(aig::lit_node(n.fanin0)),
                      aig::lit_compl(n.fanin0) ? 1 : 0},
                     {static_cast<int>(aig::lit_node(n.fanin1)),
                      2 + (aig::lit_compl(n.fanin1) ? 1 : 0)}});
      const auto lvl = static_cast<std::size_t>(levels[i]);
      if (by_level.size() <= lvl) by_level.resize(lvl + 1);
      by_level[lvl].push_back(static_cast<int>(i));
    } else if (n.kind == AigKind::kLatch) {
      gb.set_fanins(static_cast<int>(i),
                    {{static_cast<int>(aig::lit_node(n.fanin0)),
                      4 + (aig::lit_compl(n.fanin0) ? 1 : 0)}});
    }
  }
  for (std::size_t l = 1; l < by_level.size(); ++l) {
    if (!by_level[l].empty()) gb.schedule_forward(by_level[l]);
  }
  std::vector<int> latch_rows;
  for (const std::uint32_t l : g.latches()) {
    latch_rows.push_back(static_cast<int>(l));
  }
  if (!latch_rows.empty()) gb.schedule_turnaround(latch_rows);
  out.batch.graph = gb.build();

  // --- supervision: AIG-level activity + latch arrivals ---------------------
  Rng rng(seed ^ fnv1a64(lc.netlist.name()));
  std::vector<float> toggle, one_prob;
  aig_activity(g, lc.netlist, sim_cycles, rng, toggle, one_prob);
  for (std::uint32_t i = 0; i < N; ++i) {
    out.batch.cell_rows.push_back(static_cast<int>(i));
    out.batch.toggle.push_back(toggle[i]);
    out.batch.one_prob.push_back(one_prob[i]);
  }
  out.batch.flop_rows = latch_rows;
  for (std::size_t fi = 0; fi < lc.netlist.flops().size(); ++fi) {
    out.batch.flop_arrival_norm.push_back(
        static_cast<float>(lc.flop_arrival[fi] / core::kArrivalScale));
  }
  out.batch.name = lc.netlist.name();
  out.batch.num_cells = lc.netlist.num_cells();
  out.batch.power_uw = lc.power_uw;

  // --- netlist cell -> AIG row mapping -------------------------------------
  // Arrival supervision exists only where a netlist cell has an AIG image
  // (the paper's criticism made concrete: cell-level labels map onto the
  // AIG lossily — strash-merged cells alias conflicting labels, inverters
  // vanish, AIG-internal nodes get no label at all).
  for (std::size_t i = 0; i < lc.netlist.num_nodes(); ++i) {
    const auto id = static_cast<netlist::NodeId>(i);
    if (lc.netlist.node(id).kind != netlist::NodeKind::kCell) continue;
    const int row = static_cast<int>(
        aig::lit_node(out.mapping.conv.node_lit[i]));
    out.mapping.net_cell_ids.push_back(id);
    out.mapping.net_cell_to_aig_row.push_back(row);
    out.batch.arrival_rows.push_back(row);
    out.batch.arrival_norm.push_back(
        static_cast<float>(lc.arrival[i] / core::kArrivalScale));
  }
  return out;
}

DeepSeqModel::DeepSeqModel(const DeepSeqConfig& cfg)
    : cfg_(cfg), gnn_([&] {
        gnn::GnnConfig g;
        g.feature_dim = kAigFeatureDim;
        g.hidden = cfg.hidden;
        g.num_aggregators = 1;
        g.rounds = cfg.rounds;
        g.attention = cfg.attention;
        Rng rng(cfg.seed);
        return gnn::TwoPhaseGnn(g, rng, params_, "deepseq");
      }()) {
  Rng rng(cfg.seed ^ 0x1234);
  const std::size_t head_in = cfg.hidden + kAigFeatureDim;
  prob_head_ = tensor::Linear(head_in, 1, rng, params_, "prob_head");
  toggle_head_ = tensor::Linear(head_in, 1, rng, params_, "toggle_head");
  arrival_head_ =
      tensor::Mlp(head_in, cfg.hidden, 1, rng, params_, "arrival_head");
}

Tensor DeepSeqModel::node_embeddings(const CircuitBatch& batch) const {
  return gnn_.run(batch.graph);
}

namespace {

Tensor head_input(const CircuitBatch& batch, const Tensor& node_h,
                  const std::vector<int>& rows) {
  return tensor::concat_cols(tensor::gather_rows(node_h, rows),
                             tensor::gather_rows(batch.graph.features, rows));
}

}  // namespace

core::LocalPredictions DeepSeqModel::predict_local(
    const CircuitBatch& batch, const Tensor& node_h) const {
  core::LocalPredictions out;
  const Tensor rows = head_input(batch, node_h, batch.cell_rows);
  out.one_prob = tensor::sigmoid(prob_head_(rows));
  out.toggle = tensor::sigmoid(toggle_head_(rows));
  if (!batch.arrival_rows.empty()) {
    out.arrival = predict_arrival(batch, node_h, batch.arrival_rows);
  }
  return out;
}

Tensor DeepSeqModel::predict_arrival(const CircuitBatch& batch,
                                     const Tensor& node_h,
                                     const std::vector<int>& rows) const {
  return tensor::softplus(arrival_head_(head_input(batch, node_h, rows)));
}

core::TaskAccuracy evaluate_baseline(const DeepSeqModel& model,
                                     const AigBatch& ab,
                                     const data::LabeledCircuit& lc) {
  const Tensor h = model.node_embeddings(ab.batch);
  const core::LocalPredictions pred = model.predict_local(ab.batch, h);

  // cell_rows == all AIG rows in order, so AIG row == prediction row.
  core::TaskAccuracy acc;
  {
    std::vector<double> p, t;
    for (std::size_t k = 0; k < ab.mapping.net_cell_ids.size(); ++k) {
      const auto row =
          static_cast<std::size_t>(ab.mapping.net_cell_to_aig_row[k]);
      p.push_back(static_cast<double>(pred.toggle.at(row, 0)));
      t.push_back(lc.toggle[static_cast<std::size_t>(
          ab.mapping.net_cell_ids[k])]);
    }
    acc.trp = core::accuracy_from_errors(p, t, 0.08);
  }
  if (!ab.batch.flop_rows.empty()) {
    const Tensor flop_pred =
        model.predict_arrival(ab.batch, h, ab.batch.flop_rows);
    std::vector<double> p, t;
    for (std::size_t i = 0; i < lc.flop_arrival.size(); ++i) {
      p.push_back(static_cast<double>(flop_pred.at(i, 0)) *
                  core::kArrivalScale);
      t.push_back(lc.flop_arrival[i]);
    }
    acc.atp = core::accuracy_from_errors(p, t, 60.0);
  } else {
    acc.atp = 1.0;
  }
  {
    std::vector<double> rates(lc.netlist.num_nodes(), 0.0);
    for (std::size_t k = 0; k < ab.mapping.net_cell_ids.size(); ++k) {
      const auto row =
          static_cast<std::size_t>(ab.mapping.net_cell_to_aig_row[k]);
      rates[static_cast<std::size_t>(ab.mapping.net_cell_ids[k])] =
          static_cast<double>(pred.toggle.at(row, 0));
    }
    const double p = power::analyze_power(lc.netlist, rates).total_uw;
    acc.pp = core::accuracy_from_errors({p}, {lc.power_uw}, 1.0);
  }
  return acc;
}

}  // namespace moss::baseline
