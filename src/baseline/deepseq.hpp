#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "core/evaluate.hpp"
#include "core/features.hpp"
#include "core/trainer.hpp"
#include "gnn/two_phase_gnn.hpp"

namespace moss::baseline {

/// DeepSeq2-style baseline: a two-phase asynchronous GNN over the
/// And-Inverter Graph (not the standard-cell netlist), with one uniform
/// aggregator, no LM features and no global alignment — embodying the
/// design the paper compares against (and criticizes: AIG-level models
/// cannot see standard-cell identity or loads, so cell-level labels such as
/// timing are distorted).
struct DeepSeqConfig {
  std::size_t hidden = 32;
  int rounds = 2;
  bool attention = true;
  std::uint64_t seed = 2;
};

/// Bookkeeping to map netlist-level labels and predictions onto AIG nodes.
struct AigMapping {
  aig::AigConversion conv;
  /// For each netlist cell row (core::CircuitBatch::cell_rows order used at
  /// eval): the AIG graph row realizing that cell's function.
  std::vector<int> net_cell_to_aig_row;
  std::vector<int> net_cell_ids;  ///< netlist NodeIds, aligned with above
};

/// Build a core::CircuitBatch over the AIG graph (so the shared trainer
/// applies), plus the netlist↔AIG mapping for evaluation. Supervision is
/// collected by simulating the AIG itself (DeepSeq-style node-level
/// supervision); latch arrival labels are the netlist flop arrivals mapped
/// 1:1 onto latches.
struct AigBatch {
  core::CircuitBatch batch;
  AigMapping mapping;
};

AigBatch build_aig_batch(const data::LabeledCircuit& lc, std::uint64_t seed,
                         std::uint64_t sim_cycles = 2000);

/// The baseline model. Exposes the same surface as core::MossModel's local
/// part, so core::pretrain_model<> trains it.
class DeepSeqModel {
 public:
  explicit DeepSeqModel(const DeepSeqConfig& cfg);

  tensor::ParameterSet& params() { return params_; }
  tensor::Tensor node_embeddings(const core::CircuitBatch& batch) const;
  core::LocalPredictions predict_local(const core::CircuitBatch& batch,
                                       const tensor::Tensor& node_h) const;
  tensor::Tensor predict_arrival(const core::CircuitBatch& batch,
                                 const tensor::Tensor& node_h,
                                 const std::vector<int>& rows) const;

 private:
  DeepSeqConfig cfg_;
  tensor::ParameterSet params_;
  gnn::TwoPhaseGnn gnn_;
  tensor::Linear prob_head_;
  tensor::Linear toggle_head_;
  tensor::Mlp arrival_head_;
};

/// Feature width of the AIG graphs built by build_aig_batch.
std::size_t aig_feature_dim();

/// Evaluate the baseline at the *standard-cell* level: per-cell toggle read
/// from each cell's AIG image; per-flop arrival read from its latch; power
/// derived from predicted toggles — the same metrics as MOSS (Table I).
core::TaskAccuracy evaluate_baseline(const DeepSeqModel& model,
                                     const AigBatch& ab,
                                     const data::LabeledCircuit& lc);

}  // namespace moss::baseline
