#include "data/stats.hpp"

#include <algorithm>

#include "core_util/check.hpp"
#include "core_util/strings.hpp"

namespace moss::data {

DatasetStats compute_stats(const std::vector<LabeledCircuit>& dataset) {
  DatasetStats s;
  s.circuits = dataset.size();
  if (dataset.empty()) return s;
  s.min_cells = dataset[0].netlist.num_cells();
  double toggle_sum = 0.0;
  std::size_t toggle_count = 0;
  for (const LabeledCircuit& lc : dataset) {
    ++s.per_family[lc.spec.family];
    const std::size_t cells = lc.netlist.num_cells();
    s.min_cells = std::min(s.min_cells, cells);
    s.max_cells = std::max(s.max_cells, cells);
    s.total_cells += cells;
    s.total_flops += lc.netlist.flops().size();
    for (std::size_t i = 0; i < lc.netlist.num_nodes(); ++i) {
      if (lc.netlist.node(static_cast<netlist::NodeId>(i)).kind ==
          netlist::NodeKind::kCell) {
        toggle_sum += lc.toggle[i];
        ++toggle_count;
      }
    }
    for (const double at : lc.flop_arrival) {
      s.max_arrival_ps = std::max(s.max_arrival_ps, at);
    }
    s.mean_power_uw += lc.power_uw;
  }
  s.mean_cells =
      static_cast<double>(s.total_cells) / static_cast<double>(s.circuits);
  s.mean_toggle = toggle_count ? toggle_sum / static_cast<double>(toggle_count)
                               : 0.0;
  s.mean_power_uw /= static_cast<double>(s.circuits);
  return s;
}

std::string to_string(const DatasetStats& s) {
  std::string out;
  out += strprintf("dataset: %zu circuits, %zu cells total (%zu..%zu, mean "
                   "%.0f), %zu flops\n",
                   s.circuits, s.total_cells, s.min_cells, s.max_cells,
                   s.mean_cells, s.total_flops);
  out += strprintf("labels: mean toggle %.3f, max arrival %.0f ps, mean "
                   "power %.1f uW\n",
                   s.mean_toggle, s.max_arrival_ps, s.mean_power_uw);
  out += "families:";
  for (const auto& [fam, count] : s.per_family) {
    out += strprintf(" %s=%zu", fam.c_str(), count);
  }
  out += "\n";
  return out;
}

Split split_dataset(const std::vector<LabeledCircuit>& dataset,
                    double test_fraction, std::uint64_t salt) {
  MOSS_CHECK(test_fraction >= 0.0 && test_fraction <= 1.0,
             "test_fraction must be in [0, 1]");
  Split split;
  // Scale into [0, 2^64). Casting a double >= 2^64 to uint64 is UB, so
  // saturate the top end explicitly.
  const double scaled = test_fraction * 18446744073709551616.0;  // 2^64
  const std::uint64_t threshold =
      scaled >= 18446744073709551615.0
          ? ~0ull
          : static_cast<std::uint64_t>(scaled);
  for (const LabeledCircuit& lc : dataset) {
    const std::uint64_t h = fnv1a64(lc.netlist.name()) ^ salt;
    // A second mix so that salt actually permutes the assignment.
    std::uint64_t z = h + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    (z <= threshold ? split.test : split.train).push_back(&lc);
  }
  return split;
}

}  // namespace moss::data
