#include "data/mutate.hpp"

#include <algorithm>

#include "core_util/error.hpp"

namespace moss::data {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

const char* to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kStuckAt0: return "stuck_at_0";
    case MutationKind::kStuckAt1: return "stuck_at_1";
    case MutationKind::kGateTypeFlip: return "gate_type_flip";
    case MutationKind::kSwapFanins: return "swap_fanins";
  }
  return "?";
}

namespace {

/// Does the cell function distinguish pins a and b? True iff swapping the
/// two input bits changes the output for some assignment.
bool pins_asymmetric(const cell::CellType& t, int a, int b) {
  const std::uint32_t rows = 1u << t.num_inputs;
  for (std::uint32_t row = 0; row < rows; ++row) {
    const std::uint32_t bit_a = (row >> a) & 1u;
    const std::uint32_t bit_b = (row >> b) & 1u;
    if (bit_a == bit_b) continue;
    std::uint32_t swapped = row;
    swapped &= ~((1u << a) | (1u << b));
    swapped |= bit_a << b;
    swapped |= bit_b << a;
    if (t.eval(row) != t.eval(swapped)) return true;
  }
  return false;
}

}  // namespace

std::vector<Mutation> enumerate_mutations(const Netlist& nl) {
  MOSS_CHECK(nl.finalized(), "enumerate_mutations needs a finalized netlist");
  const cell::CellLibrary& lib = nl.library();
  std::vector<Mutation> out;
  for (NodeId id = 0; id < static_cast<NodeId>(nl.num_nodes()); ++id) {
    const netlist::Node& n = nl.node(id);
    if (n.kind != NodeKind::kCell) continue;
    const cell::CellType& t = lib.type(n.type);
    if (!t.is_comb()) continue;

    out.push_back({MutationKind::kStuckAt0, n.name,
                   t.name + " output tied low", cell::kInvalidCellType, 0, 0});
    out.push_back({MutationKind::kStuckAt1, n.name,
                   t.name + " output tied high", cell::kInvalidCellType, 0, 0});

    for (cell::CellTypeId alt = 0;
         alt < static_cast<cell::CellTypeId>(lib.size()); ++alt) {
      if (alt == n.type) continue;
      const cell::CellType& at = lib.type(alt);
      if (!at.is_comb() || at.num_inputs != t.num_inputs ||
          at.truth_table == t.truth_table) {
        continue;
      }
      out.push_back({MutationKind::kGateTypeFlip, n.name,
                     t.name + "->" + at.name, alt, 0, 0});
    }

    for (int a = 0; a < t.num_inputs; ++a) {
      for (int b = a + 1; b < t.num_inputs; ++b) {
        if (n.fanin[static_cast<std::size_t>(a)] ==
            n.fanin[static_cast<std::size_t>(b)]) {
          continue;
        }
        if (!pins_asymmetric(t, a, b)) continue;
        out.push_back({MutationKind::kSwapFanins, n.name,
                       t.name + " pins " + t.pin_names[static_cast<std::size_t>(a)] +
                           "<->" + t.pin_names[static_cast<std::size_t>(b)],
                       cell::kInvalidCellType, a, b});
      }
    }
  }
  return out;
}

std::vector<Mutation> sample_mutations(const Netlist& nl, std::size_t count,
                                       Rng& rng) {
  std::vector<Mutation> all = enumerate_mutations(nl);
  if (all.size() <= count) return all;
  // Partial Fisher–Yates: draw `count` without replacement, order by draw.
  std::vector<Mutation> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.index(all.size() - i);
    std::swap(all[i], all[j]);
    out.push_back(all[i]);
  }
  return out;
}

Netlist apply_mutation(const Netlist& nl, const Mutation& mut,
                       const std::string& name_suffix) {
  MOSS_CHECK(nl.finalized(), "apply_mutation needs a finalized netlist");
  const cell::CellLibrary& lib = nl.library();
  const NodeId target = nl.find(mut.node);
  if (target == netlist::kInvalidNode ||
      nl.node(target).kind != NodeKind::kCell ||
      !lib.type(nl.node(target).type).is_comb()) {
    throw ContextError("mutation target is not a combinational cell",
                       {{"node", mut.node}, {"kind", to_string(mut.kind)}});
  }

  const cell::CellTypeId tie0 = lib.find("TIE0");
  const cell::CellTypeId tie1 = lib.find("TIE1");

  Netlist out(lib, nl.name() + name_suffix);
  // Pass 1: recreate every node (same order -> same ids) with placeholder
  // fanins; the mutation rewrites the target's type/arity here.
  for (NodeId id = 0; id < static_cast<NodeId>(nl.num_nodes()); ++id) {
    const netlist::Node& n = nl.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryInput:
        out.add_input(n.name);
        break;
      case NodeKind::kPrimaryOutput:
        out.add_output(n.name);
        break;
      case NodeKind::kCell: {
        cell::CellTypeId type = n.type;
        if (id == target) {
          switch (mut.kind) {
            case MutationKind::kStuckAt0:
              MOSS_CHECK(tie0 != cell::kInvalidCellType, "library lacks TIE0");
              type = tie0;
              break;
            case MutationKind::kStuckAt1:
              MOSS_CHECK(tie1 != cell::kInvalidCellType, "library lacks TIE1");
              type = tie1;
              break;
            case MutationKind::kGateTypeFlip: {
              const cell::CellType& t = lib.type(n.type);
              const cell::CellType& at = lib.type(mut.new_type);
              if (!at.is_comb() || at.num_inputs != t.num_inputs) {
                throw ContextError(
                    "gate flip replacement has mismatched arity",
                    {{"node", mut.node}, {"new_type", at.name}});
              }
              type = mut.new_type;
              break;
            }
            case MutationKind::kSwapFanins:
              break;  // fanins handled in pass 2
          }
        }
        const auto pins =
            static_cast<std::size_t>(lib.type(type).num_inputs);
        const NodeId nid = out.add_cell(
            type, n.name,
            std::vector<NodeId>(pins, netlist::kInvalidNode));
        if (lib.type(type).is_flop() && !n.rtl_register.empty()) {
          out.set_rtl_register(nid, n.rtl_register);
        }
        break;
      }
    }
  }
  // Pass 2: connect fanins (ids carried over unchanged).
  for (NodeId id = 0; id < static_cast<NodeId>(nl.num_nodes()); ++id) {
    const netlist::Node& n = nl.node(id);
    if (id == target &&
        (mut.kind == MutationKind::kStuckAt0 ||
         mut.kind == MutationKind::kStuckAt1)) {
      continue;  // tie cell has no pins
    }
    std::vector<NodeId> fanin = n.fanin;
    if (id == target && mut.kind == MutationKind::kSwapFanins) {
      const auto a = static_cast<std::size_t>(mut.pin_a);
      const auto b = static_cast<std::size_t>(mut.pin_b);
      if (a >= fanin.size() || b >= fanin.size()) {
        throw ContextError("swap pins out of range",
                           {{"node", mut.node}});
      }
      std::swap(fanin[a], fanin[b]);
    }
    for (std::size_t p = 0; p < fanin.size(); ++p) {
      out.connect(id, static_cast<int>(p), fanin[p]);
    }
  }
  out.finalize();
  return out;
}

}  // namespace moss::data
