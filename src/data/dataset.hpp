#pragma once

#include <string>
#include <vector>

#include "data/generators.hpp"
#include "netlist/netlist.hpp"
#include "rtl/prompts.hpp"

namespace moss::data {

/// Where a circuit's functional-equivalence label came from. Generator
/// labels are an article of faith (the RTL and netlist are equivalent
/// because synthesis says so); oracle labels are SAT-proven.
enum class FepLabelSource : std::uint8_t {
  kGenerator,     ///< assumed equivalent (oracle off, or typed UNKNOWN)
  kOracleProven,  ///< sat::EquivOracle proved RTL ≡ netlist
  kOracleRefuted, ///< oracle found a counterexample (labeling flow bug,
                  ///< or a deliberately inequivalent mutant)
};
const char* to_string(FepLabelSource s);

/// One fully labeled circuit: both modalities plus all ground-truth labels
/// the tasks train against (collected with the in-repo EDA flow standing in
/// for DC / VCS / PrimePower).
struct LabeledCircuit {
  DesignSpec spec;
  rtl::Module module;         ///< RTL modality (golden functional model)
  netlist::Netlist netlist;   ///< structural modality (synthesized)

  /// FEP ground truth: does the netlist implement the RTL? True for every
  /// normally-labeled circuit; false for mutant netlists labeled via
  /// label_netlist (no RTL modality) or oracle-refuted pairs.
  bool fep_equivalent = true;
  FepLabelSource fep_label_source = FepLabelSource::kGenerator;
  std::string fep_label_detail;  ///< e.g. UNKNOWN reason, cex output name

  // Ground truth labels.
  std::vector<double> toggle;        ///< per node (by NodeId)
  std::vector<double> one_prob;      ///< per node (by NodeId)
  /// Per-node arrival time (ps, by NodeId): output arrival for
  /// combinational cells, D-pin data arrival for flops (the ATP label).
  std::vector<double> arrival;
  std::vector<double> flop_arrival;  ///< per flop, netlist flop order (ps)
  double power_uw = 0.0;

  // Texts for the language model.
  std::string module_text;                      ///< module prompt (global)
  std::vector<rtl::RegisterPrompt> reg_prompts; ///< per RTL register
};

struct DatasetConfig {
  std::uint64_t sim_cycles = 4000;  ///< paper uses 60k; configurable
  double input_one_prob = 0.5;
  std::uint64_t seed = 7;
  /// Worker threads for build_dataset. Labeling is embarrassingly parallel:
  /// each circuit draws from its own Rng (seeded from `seed` and the
  /// netlist name), so the labels are identical at any thread count.
  std::size_t threads = 1;

  /// Prove each RTL↔netlist pair with sat::EquivOracle instead of trusting
  /// the generator. The module folds against its own synthesis in the
  /// shared-strash miter, so the common case costs no solver work; a typed
  /// UNKNOWN keeps the generator label (recorded in fep_label_detail).
  bool oracle_labels = true;
  std::uint64_t oracle_conflict_budget = 50000;
  int oracle_max_frames = 8;
};

/// Generate, synthesize and label one circuit.
LabeledCircuit label_circuit(const DesignSpec& spec,
                             const cell::CellLibrary& lib,
                             const DatasetConfig& cfg);

/// Synthesize and label an existing RTL module (e.g. parsed from user
/// Verilog) through the same flow.
LabeledCircuit label_module(rtl::Module m, const cell::CellLibrary& lib,
                            const DatasetConfig& cfg);

/// Label a bare netlist with no RTL modality (e.g. a mined or mutated
/// variant): sim/STA/power labels are collected as usual, module_text and
/// reg_prompts stay empty, and fep_equivalent is false — the netlist does
/// NOT implement any golden RTL, which is exactly what makes it a hard
/// negative for FEP training.
LabeledCircuit label_netlist(netlist::Netlist nl, const DatasetConfig& cfg);

/// Label a whole corpus.
std::vector<LabeledCircuit> build_dataset(const std::vector<DesignSpec>& specs,
                                          const cell::CellLibrary& lib,
                                          const DatasetConfig& cfg);

}  // namespace moss::data
