#pragma once

#include <string>
#include <vector>

#include "data/generators.hpp"
#include "netlist/netlist.hpp"
#include "rtl/prompts.hpp"

namespace moss::data {

/// One fully labeled circuit: both modalities plus all ground-truth labels
/// the tasks train against (collected with the in-repo EDA flow standing in
/// for DC / VCS / PrimePower).
struct LabeledCircuit {
  DesignSpec spec;
  rtl::Module module;         ///< RTL modality (golden functional model)
  netlist::Netlist netlist;   ///< structural modality (synthesized)

  // Ground truth labels.
  std::vector<double> toggle;        ///< per node (by NodeId)
  std::vector<double> one_prob;      ///< per node (by NodeId)
  /// Per-node arrival time (ps, by NodeId): output arrival for
  /// combinational cells, D-pin data arrival for flops (the ATP label).
  std::vector<double> arrival;
  std::vector<double> flop_arrival;  ///< per flop, netlist flop order (ps)
  double power_uw = 0.0;

  // Texts for the language model.
  std::string module_text;                      ///< module prompt (global)
  std::vector<rtl::RegisterPrompt> reg_prompts; ///< per RTL register
};

struct DatasetConfig {
  std::uint64_t sim_cycles = 4000;  ///< paper uses 60k; configurable
  double input_one_prob = 0.5;
  std::uint64_t seed = 7;
  /// Worker threads for build_dataset. Labeling is embarrassingly parallel:
  /// each circuit draws from its own Rng (seeded from `seed` and the
  /// netlist name), so the labels are identical at any thread count.
  std::size_t threads = 1;
};

/// Generate, synthesize and label one circuit.
LabeledCircuit label_circuit(const DesignSpec& spec,
                             const cell::CellLibrary& lib,
                             const DatasetConfig& cfg);

/// Synthesize and label an existing RTL module (e.g. parsed from user
/// Verilog) through the same flow.
LabeledCircuit label_module(rtl::Module m, const cell::CellLibrary& lib,
                            const DatasetConfig& cfg);

/// Label a whole corpus.
std::vector<LabeledCircuit> build_dataset(const std::vector<DesignSpec>& specs,
                                          const cell::CellLibrary& lib,
                                          const DatasetConfig& cfg);

}  // namespace moss::data
