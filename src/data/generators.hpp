#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core_util/rng.hpp"
#include "rtl/module.hpp"

namespace moss::data {

/// Specification of one generated design. `size_hint` scales widths/depths
/// (1 = smallest); `seed` adds structural variation within a family, so one
/// family yields many distinct circuits — standing in for the paper's
/// 31,701 collected RTL designs.
struct DesignSpec {
  std::string family;
  int size_hint = 1;
  std::uint64_t seed = 0;
  std::string name;  ///< module name; defaults to family_sizeN_seedM
};

/// All registered family names.
std::vector<std::string> families();

/// Generate the RTL for a spec. Throws on unknown family.
rtl::Module generate(const DesignSpec& spec);

/// The eight Table-I circuits (family + size tuned so synthesized cell
/// counts land near the paper's: 278..4144 cells).
std::vector<DesignSpec> table1_specs();

/// A training corpus: `count` specs cycling through all families with
/// varied sizes and seeds.
std::vector<DesignSpec> corpus_specs(std::size_t count, std::uint64_t seed,
                                     int min_size = 1, int max_size = 4);

}  // namespace moss::data
