#pragma once

#include <map>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace moss::data {

/// Aggregate statistics of a labeled dataset — the sanity report generated
/// before training (family mix, size distribution, label ranges).
struct DatasetStats {
  std::size_t circuits = 0;
  std::map<std::string, std::size_t> per_family;
  std::size_t min_cells = 0;
  std::size_t max_cells = 0;
  double mean_cells = 0.0;
  std::size_t total_cells = 0;
  std::size_t total_flops = 0;
  double mean_toggle = 0.0;       ///< over all cells of all circuits
  double max_arrival_ps = 0.0;
  double mean_power_uw = 0.0;
};

DatasetStats compute_stats(const std::vector<LabeledCircuit>& dataset);

/// Human-readable rendering of the stats.
std::string to_string(const DatasetStats& stats);

/// Deterministically split a dataset into train/test by hashing circuit
/// names (stable across runs and insertion order).
struct Split {
  std::vector<const LabeledCircuit*> train;
  std::vector<const LabeledCircuit*> test;
};
Split split_dataset(const std::vector<LabeledCircuit>& dataset,
                    double test_fraction, std::uint64_t salt = 0);

}  // namespace moss::data
