#include "data/dataset.hpp"

#include "core_util/strings.hpp"
#include "core_util/thread_pool.hpp"
#include "power/power.hpp"
#include "rtl/printer.hpp"
#include "sat/oracle.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

namespace moss::data {

const char* to_string(FepLabelSource s) {
  switch (s) {
    case FepLabelSource::kGenerator: return "generator";
    case FepLabelSource::kOracleProven: return "oracle_proven";
    case FepLabelSource::kOracleRefuted: return "oracle_refuted";
  }
  return "?";
}

namespace {

/// Runs sim/STA/power on lc.netlist and fills the shared label fields.
/// Identical Rng discipline for RTL-backed and bare-netlist circuits.
void collect_labels(LabeledCircuit& lc, const DatasetConfig& cfg) {
  Rng rng(cfg.seed ^ fnv1a64(lc.netlist.name()));
  const sim::ActivityReport act =
      sim::random_activity(lc.netlist, cfg.sim_cycles, rng,
                           cfg.input_one_prob);
  lc.toggle = act.toggle;
  lc.one_prob = act.one_prob;

  const sta::TimingAnalysis ta(lc.netlist);
  lc.flop_arrival = ta.all_flop_arrivals();
  lc.arrival = ta.arrivals();
  for (std::size_t fi = 0; fi < lc.netlist.flops().size(); ++fi) {
    lc.arrival[static_cast<std::size_t>(lc.netlist.flops()[fi])] =
        lc.flop_arrival[fi];
  }

  lc.power_uw = power::analyze_power(lc.netlist, lc.toggle).total_uw;
}

/// Upgrade the generator's assumed-equivalent FEP label to an oracle-proven
/// one. A typed UNKNOWN keeps the generator label; a refutation would mean
/// the synthesis flow itself is wrong, so it is recorded (and loud in
/// fep_label_detail) rather than silently trusted.
void prove_fep_label(LabeledCircuit& lc, const DatasetConfig& cfg) {
  if (!cfg.oracle_labels) return;
  sat::OracleConfig ocfg;
  ocfg.seed = cfg.seed;
  ocfg.conflict_budget = cfg.oracle_conflict_budget;
  ocfg.max_frames = cfg.oracle_max_frames;
  const sat::EquivOracle oracle(ocfg);
  const sat::OracleResult res = oracle.check(lc.module, lc.netlist);
  switch (res.verdict) {
    case sat::Verdict::kEquivalent:
      lc.fep_equivalent = true;
      lc.fep_label_source = FepLabelSource::kOracleProven;
      lc.fep_label_detail = res.proven_by_cut ? "proven (inductive cut)"
                                              : "proven";
      break;
    case sat::Verdict::kNotEquivalent:
      lc.fep_equivalent = false;
      lc.fep_label_source = FepLabelSource::kOracleRefuted;
      lc.fep_label_detail =
          "counterexample at output '" + res.cex.mismatch_output + "'";
      break;
    case sat::Verdict::kUnknown:
      // Keep the generator label, but say why the proof fell through.
      lc.fep_label_detail =
          std::string("oracle unknown: ") + to_string(res.unknown_reason);
      break;
  }
}

}  // namespace

LabeledCircuit label_circuit(const DesignSpec& spec,
                             const cell::CellLibrary& lib,
                             const DatasetConfig& cfg) {
  LabeledCircuit lc = label_module(generate(spec), lib, cfg);
  lc.spec = spec;
  return lc;
}

LabeledCircuit label_module(rtl::Module m, const cell::CellLibrary& lib,
                            const DatasetConfig& cfg) {
  LabeledCircuit lc{.spec = DesignSpec{"custom", 1, cfg.seed, m.name},
                    .module = std::move(m),
                    .netlist = netlist::Netlist(lib)};
  lc.netlist = synth::synthesize(lc.module, lib);
  collect_labels(lc, cfg);
  prove_fep_label(lc, cfg);

  lc.module_text = rtl::module_prompt(lc.module);
  lc.reg_prompts = rtl::register_prompts(lc.module);
  return lc;
}

LabeledCircuit label_netlist(netlist::Netlist nl, const DatasetConfig& cfg) {
  LabeledCircuit lc{.spec = DesignSpec{"netlist", 1, cfg.seed, nl.name()},
                    .netlist = std::move(nl)};
  collect_labels(lc, cfg);
  lc.fep_equivalent = false;
  lc.fep_label_source = FepLabelSource::kOracleRefuted;
  lc.fep_label_detail = "no RTL modality";
  return lc;
}

std::vector<LabeledCircuit> build_dataset(const std::vector<DesignSpec>& specs,
                                          const cell::CellLibrary& lib,
                                          const DatasetConfig& cfg) {
  ThreadPool pool(cfg.threads == 0 ? 0 : cfg.threads);
  return pool.parallel_map(specs.size(), [&](std::size_t i) {
    return label_circuit(specs[i], lib, cfg);
  });
}

}  // namespace moss::data
