#include "data/dataset.hpp"

#include "core_util/strings.hpp"
#include "core_util/thread_pool.hpp"
#include "power/power.hpp"
#include "rtl/printer.hpp"
#include "sim/simulator.hpp"
#include "sta/sta.hpp"
#include "synth/synthesize.hpp"

namespace moss::data {

LabeledCircuit label_circuit(const DesignSpec& spec,
                             const cell::CellLibrary& lib,
                             const DatasetConfig& cfg) {
  LabeledCircuit lc = label_module(generate(spec), lib, cfg);
  lc.spec = spec;
  return lc;
}

LabeledCircuit label_module(rtl::Module m, const cell::CellLibrary& lib,
                            const DatasetConfig& cfg) {
  LabeledCircuit lc{.spec = DesignSpec{"custom", 1, cfg.seed, m.name},
                    .module = std::move(m),
                    .netlist = netlist::Netlist(lib)};
  lc.netlist = synth::synthesize(lc.module, lib);

  Rng rng(cfg.seed ^ fnv1a64(lc.netlist.name()));
  const sim::ActivityReport act =
      sim::random_activity(lc.netlist, cfg.sim_cycles, rng,
                           cfg.input_one_prob);
  lc.toggle = act.toggle;
  lc.one_prob = act.one_prob;

  const sta::TimingAnalysis ta(lc.netlist);
  lc.flop_arrival = ta.all_flop_arrivals();
  lc.arrival = ta.arrivals();
  for (std::size_t fi = 0; fi < lc.netlist.flops().size(); ++fi) {
    lc.arrival[static_cast<std::size_t>(lc.netlist.flops()[fi])] =
        lc.flop_arrival[fi];
  }

  lc.power_uw = power::analyze_power(lc.netlist, lc.toggle).total_uw;

  lc.module_text = rtl::module_prompt(lc.module);
  lc.reg_prompts = rtl::register_prompts(lc.module);
  return lc;
}

std::vector<LabeledCircuit> build_dataset(const std::vector<DesignSpec>& specs,
                                          const cell::CellLibrary& lib,
                                          const DatasetConfig& cfg) {
  ThreadPool pool(cfg.threads == 0 ? 0 : cfg.threads);
  return pool.parallel_map(specs.size(), [&](std::size_t i) {
    return label_circuit(specs[i], lib, cfg);
  });
}

}  // namespace moss::data
