#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core_util/rng.hpp"
#include "netlist/netlist.hpp"

namespace moss::data {

/// Single-site netlist mutations used to manufacture plausible-but-wrong
/// circuits: the hard-negative candidates the SAT oracle then sorts into
/// proven-inequivalent (keep) and accidentally-equivalent (drop).
enum class MutationKind : std::uint8_t {
  kStuckAt0,      ///< replace a cell's output with constant 0 (TIE0)
  kStuckAt1,      ///< replace a cell's output with constant 1 (TIE1)
  kGateTypeFlip,  ///< swap the cell for a same-arity type (AND2 -> OR2, ...)
  kSwapFanins,    ///< exchange two input pins the function distinguishes
};
const char* to_string(MutationKind kind);

struct Mutation {
  MutationKind kind = MutationKind::kStuckAt0;
  std::string node;    ///< target cell instance name
  std::string detail;  ///< human-readable description, e.g. "XOR2->XNOR2"
  cell::CellTypeId new_type = cell::kInvalidCellType;  ///< kGateTypeFlip
  int pin_a = 0, pin_b = 0;                            ///< kSwapFanins
};

/// Every structurally valid single-site mutation of `nl`, in deterministic
/// order (cells by node id; gate-flip alternatives by cell-type id; pin
/// pairs lexicographic). Only combinational cells are mutated; fanin swaps
/// are emitted only for pin pairs the truth table actually distinguishes
/// and distinct drivers, so candidates are rarely trivially equivalent.
std::vector<Mutation> enumerate_mutations(const netlist::Netlist& nl);

/// Seeded sample (without replacement) of up to `count` mutations.
std::vector<Mutation> sample_mutations(const netlist::Netlist& nl,
                                       std::size_t count, Rng& rng);

/// Apply a mutation, producing a fresh finalized netlist named
/// `nl.name() + name_suffix` with identical node ids. Throws ContextError
/// if the target cell no longer matches the mutation.
netlist::Netlist apply_mutation(const netlist::Netlist& nl,
                                const Mutation& mut,
                                const std::string& name_suffix);

}  // namespace moss::data
