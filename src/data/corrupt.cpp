#include "data/corrupt.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core_util/rng.hpp"
#include "core_util/strings.hpp"
#include "rtl/printer.hpp"

namespace moss::data {

using rtl::Expr;
using rtl::ExprId;
using rtl::ExprOp;
using rtl::Module;

const char* to_string(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kSwapOperands: return "swap_operands";
    case CorruptionKind::kStuckConstant: return "stuck_constant";
    case CorruptionKind::kDropReset: return "drop_reset";
    case CorruptionKind::kInvertReset: return "invert_reset";
    case CorruptionKind::kWidthOffByOne: return "width_off_by_one";
  }
  return "?";
}

bool corruption_kind_from_string(const std::string& s, CorruptionKind* out) {
  for (const CorruptionKind k : all_corruption_kinds()) {
    if (s == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::vector<CorruptionKind> all_corruption_kinds() {
  return {CorruptionKind::kSwapOperands, CorruptionKind::kStuckConstant,
          CorruptionKind::kDropReset, CorruptionKind::kInvertReset,
          CorruptionKind::kWidthOffByOne};
}

namespace {

/// One eligible corruption site, identified stably by its position in the
/// deterministic enumeration (reset sites by register index, width sites by
/// declaration, expression sites by root + preorder ordinal).
struct Site {
  CorruptionKind kind = CorruptionKind::kSwapOperands;
  int reg = -1;             ///< kDropReset / kInvertReset
  std::string symbol;       ///< kWidthOffByOne (decl) / kStuckConstant (var)
  int width = 0;            ///< symbol width at the site
  int root = -1;            ///< expression sites: root index
  int ord = -1;             ///< expression sites: preorder ordinal in root
  std::string root_label;   ///< "wire acc", "next q", "output y", ...
  ExprOp op = ExprOp::kConst;  ///< kSwapOperands: the operator swapped
};

/// Expression roots of a module in fixed order: wires, then per register
/// enable/next, then output assigns. Site ordinals are preorder positions
/// within one root, so they survive unrelated edits elsewhere.
struct Root {
  std::string label;
  ExprId expr;
};

std::vector<Root> roots_of(const Module& m) {
  std::vector<Root> roots;
  for (const rtl::Wire& w : m.wires) {
    roots.push_back({"wire " + w.name, w.expr});
  }
  for (const rtl::Register& r : m.regs) {
    if (r.enable != rtl::kInvalidExpr) {
      roots.push_back({"enable " + r.name, r.enable});
    }
    roots.push_back({"next " + r.name, r.next});
  }
  for (const auto& [name, e] : m.output_assigns) {
    roots.push_back({"output " + name, e});
  }
  return roots;
}

const char* swap_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kSub: return "-";
    case ExprOp::kShl: return "<<";
    case ExprOp::kShr: return ">>";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kMux: return "?:";
    default: return "?";
  }
}

bool pass_enabled(const CorruptConfig& cfg, CorruptionKind k) {
  if (cfg.passes.empty()) return true;
  return std::find(cfg.passes.begin(), cfg.passes.end(), k) !=
         cfg.passes.end();
}

/// Symbols that appear under a sign-extension anywhere in the module: the
/// printer emits sext as a replication of the symbol's top bit, so widening
/// such a symbol would change which bit replicates. They sit out the
/// width pass.
void collect_sext_vars(const Module& m, ExprId id,
                       std::set<std::string>* out) {
  const Expr& e = m.arena.at(id);
  if (e.op == ExprOp::kSext) {
    const Expr& a = m.arena.at(e.args[0]);
    if (a.op == ExprOp::kVar) out->insert(a.var);
  }
  for (const ExprId a : e.args) collect_sext_vars(m, a, out);
}

/// Preorder site enumeration over one root. Must mirror the rebuild
/// traversal exactly so ordinals line up; kBit/kSlice/kSext consume their
/// named-symbol child's ordinal without descending (the rebuild handles
/// those children inline).
void enumerate_expr(const Module& m, ExprId id, ExprOp parent, int root,
                    const std::string& root_label, int* ord,
                    const CorruptConfig& cfg, std::vector<Site>* sites) {
  const Expr& e = m.arena.at(id);
  const int my = (*ord)++;

  if (pass_enabled(cfg, CorruptionKind::kSwapOperands)) {
    const bool swappable_binary =
        (e.op == ExprOp::kSub || e.op == ExprOp::kLt ||
         e.op == ExprOp::kLe ||
         ((e.op == ExprOp::kShl || e.op == ExprOp::kShr) &&
          m.arena.at(e.args[0]).width == m.arena.at(e.args[1]).width));
    if (swappable_binary &&
        rtl::expr_to_string(m, e.args[0]) !=
            rtl::expr_to_string(m, e.args[1])) {
      Site s;
      s.kind = CorruptionKind::kSwapOperands;
      s.root = root;
      s.ord = my;
      s.root_label = root_label;
      s.op = e.op;
      sites->push_back(std::move(s));
    }
    if (e.op == ExprOp::kMux &&
        rtl::expr_to_string(m, e.args[1]) !=
            rtl::expr_to_string(m, e.args[2])) {
      Site s;
      s.kind = CorruptionKind::kSwapOperands;
      s.root = root;
      s.ord = my;
      s.root_label = root_label;
      s.op = ExprOp::kMux;
      sites->push_back(std::move(s));
    }
  }

  if (e.op == ExprOp::kVar && pass_enabled(cfg, CorruptionKind::kStuckConstant)
      && parent != ExprOp::kBit && parent != ExprOp::kSlice &&
      parent != ExprOp::kSext) {
    Site s;
    s.kind = CorruptionKind::kStuckConstant;
    s.symbol = e.var;
    s.width = e.width;
    s.root = root;
    s.ord = my;
    s.root_label = root_label;
    sites->push_back(std::move(s));
  }

  // Mirror the rebuild: named-symbol children of bit/slice/sext are consumed
  // inline (one ordinal, no recursion, no sites of their own).
  if ((e.op == ExprOp::kBit || e.op == ExprOp::kSlice ||
       e.op == ExprOp::kSext) &&
      m.arena.at(e.args[0]).op == ExprOp::kVar) {
    ++(*ord);
    return;
  }
  for (const ExprId a : e.args) {
    enumerate_expr(m, a, e.op, root, root_label, ord, cfg, sites);
  }
}

std::vector<Site> enumerate_sites(const Module& m, const CorruptConfig& cfg) {
  std::vector<Site> sites;

  for (std::size_t i = 0; i < m.regs.size(); ++i) {
    const rtl::Register& r = m.regs[i];
    if (!r.has_reset) continue;
    if (pass_enabled(cfg, CorruptionKind::kDropReset)) {
      Site s;
      s.kind = CorruptionKind::kDropReset;
      s.reg = static_cast<int>(i);
      s.symbol = r.name;
      s.width = r.width;
      sites.push_back(std::move(s));
    }
    if (pass_enabled(cfg, CorruptionKind::kInvertReset)) {
      Site s;
      s.kind = CorruptionKind::kInvertReset;
      s.reg = static_cast<int>(i);
      s.symbol = r.name;
      s.width = r.width;
      sites.push_back(std::move(s));
    }
  }

  if (pass_enabled(cfg, CorruptionKind::kWidthOffByOne)) {
    std::set<std::string> sext_vars;
    for (const Root& r : roots_of(m)) collect_sext_vars(m, r.expr, &sext_vars);
    const auto width_site = [&](const std::string& name, int width) {
      if (width < 2 || width > 63) return;
      if (sext_vars.count(name) != 0) return;
      Site s;
      s.kind = CorruptionKind::kWidthOffByOne;
      s.symbol = name;
      s.width = width;
      sites.push_back(std::move(s));
    };
    for (const rtl::Wire& w : m.wires) width_site(w.name, w.width);
    for (const rtl::Register& r : m.regs) width_site(r.name, r.width);
  }

  const std::vector<Root> roots = roots_of(m);
  for (std::size_t ri = 0; ri < roots.size(); ++ri) {
    int ord = 0;
    enumerate_expr(m, roots[ri].expr, ExprOp::kConst, static_cast<int>(ri),
                   roots[ri].label, &ord, cfg, &sites);
  }
  return sites;
}

/// All actions of one corruption run, pre-resolved so the rebuild is a pure
/// deterministic rewrite.
struct Actions {
  std::set<int> drop_reset;            ///< register indices
  std::set<int> invert_reset;          ///< register indices
  std::set<std::string> widen;         ///< symbols growing by one bit
  std::map<std::pair<int, int>, bool> swap;  ///< (root, ord) -> present
  std::map<std::pair<int, int>, std::uint64_t> stuck;  ///< (root, ord) -> v
};

/// Rebuilds `m` into a fresh module with `act` applied. Traversal order
/// matches enumerate_expr exactly (shared ordinal discipline).
class Rewriter {
 public:
  Rewriter(const Module& m, const Actions& act) : m_(m), act_(act) {
    out_.name = m.name;
    out_.reset_port = m.reset_port;
    for (const rtl::Port& p : m.inputs) out_.add_input(p.name, p.width);
    for (const rtl::Wire& w : m.wires) {
      out_.declare_wire(w.name, new_width(w.name, w.width));
    }
    for (const rtl::Register& r : m.regs) {
      const bool dropped = act.drop_reset.count(reg_index(r.name)) != 0;
      std::uint64_t reset = r.reset_value;
      if (act.invert_reset.count(reg_index(r.name)) != 0) {
        reset = (~reset) & rtl::width_mask(r.width);
      }
      out_.add_reg(r.name, new_width(r.name, r.width),
                   r.has_reset && !dropped, reset);
      out_.set_role(r.name, r.role_hint);
    }
  }

  Module take() {
    int root = 0;
    for (const rtl::Wire& w : m_.wires) {
      int ord = 0;
      ExprId e = rebuild(w.expr, root, &ord);
      if (act_.widen.count(w.name) != 0) {
        e = out_.arena.zext(e, w.width + 1);
      }
      out_.set_wire_expr(w.name, e);
      ++root;
    }
    for (const rtl::Register& r : m_.regs) {
      ExprId enable = rtl::kInvalidExpr;
      if (r.enable != rtl::kInvalidExpr) {
        int ord = 0;
        enable = rebuild(r.enable, root, &ord);
        ++root;
      }
      int ord = 0;
      ExprId next = rebuild(r.next, root, &ord);
      if (act_.widen.count(r.name) != 0) {
        next = out_.arena.zext(next, r.width + 1);
      }
      out_.set_next(r.name, next, enable);
      ++root;
    }
    for (const auto& [name, e] : m_.output_assigns) {
      int ord = 0;
      const ExprId rebuilt = rebuild(e, root, &ord);
      out_.assign_output(name, out_port_width(name), rebuilt);
      ++root;
    }
    out_.validate();
    return std::move(out_);
  }

 private:
  int reg_index(const std::string& name) const {
    for (std::size_t i = 0; i < m_.regs.size(); ++i) {
      if (m_.regs[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  int out_port_width(const std::string& name) const {
    for (const rtl::Port& p : m_.outputs) {
      if (p.name == name) return p.width;
    }
    return 1;
  }

  int new_width(const std::string& name, int width) const {
    return act_.widen.count(name) != 0 ? width + 1 : width;
  }

  /// Read of a named symbol, shifted down one bit position when the symbol
  /// was widened (name[w:1] — the off-by-one part-select).
  ExprId read_var(const std::string& name, int width) {
    if (act_.widen.count(name) == 0) return out_.arena.var(name, width);
    const ExprId v = out_.arena.var(name, width + 1);
    return out_.arena.slice(v, width, 1);
  }

  ExprId rebuild(ExprId id, int root, int* ord) {
    const Expr& e = m_.arena.at(id);
    const int my = (*ord)++;
    const std::pair<int, int> key{root, my};

    if (const auto it = act_.stuck.find(key); it != act_.stuck.end()) {
      // Eligibility restricted this to kVar nodes outside bit/slice/sext.
      return out_.arena.constant(e.width, it->second);
    }
    const bool swapped = act_.swap.count(key) != 0;

    switch (e.op) {
      case ExprOp::kConst:
        return out_.arena.constant(e.width, e.value);
      case ExprOp::kVar:
        return read_var(e.var, e.width);
      case ExprOp::kBit:
      case ExprOp::kSlice:
      case ExprOp::kSext: {
        const Expr& a = m_.arena.at(e.args[0]);
        if (a.op == ExprOp::kVar) {
          ++(*ord);  // the child's ordinal, consumed inline
          const bool widened = act_.widen.count(a.var) != 0;
          const ExprId v =
              out_.arena.var(a.var, widened ? a.width + 1 : a.width);
          const int shift = widened ? 1 : 0;
          if (e.op == ExprOp::kBit) return out_.arena.bit(v, e.lo + shift);
          if (e.op == ExprOp::kSlice) {
            return out_.arena.slice(v, e.hi + shift, e.lo + shift);
          }
          return out_.arena.sext(v, e.width);  // sext vars are never widened
        }
        const ExprId c = rebuild(e.args[0], root, ord);
        if (e.op == ExprOp::kBit) return out_.arena.bit(c, e.lo);
        if (e.op == ExprOp::kSlice) return out_.arena.slice(c, e.hi, e.lo);
        return out_.arena.sext(c, e.width);
      }
      case ExprOp::kZext:
        return out_.arena.zext(rebuild(e.args[0], root, ord), e.width);
      case ExprOp::kNot:
      case ExprOp::kNeg:
      case ExprOp::kRedAnd:
      case ExprOp::kRedOr:
      case ExprOp::kRedXor:
        return out_.arena.unary(e.op, rebuild(e.args[0], root, ord));
      case ExprOp::kMux: {
        const ExprId s = rebuild(e.args[0], root, ord);
        const ExprId t = rebuild(e.args[1], root, ord);
        const ExprId f = rebuild(e.args[2], root, ord);
        return swapped ? out_.arena.mux(s, f, t) : out_.arena.mux(s, t, f);
      }
      case ExprOp::kConcat: {
        std::vector<ExprId> parts;
        parts.reserve(e.args.size());
        for (const ExprId a : e.args) {
          parts.push_back(rebuild(a, root, ord));
        }
        return out_.arena.concat(std::move(parts));
      }
      default: {  // binary operators
        const ExprId a = rebuild(e.args[0], root, ord);
        const ExprId b = rebuild(e.args[1], root, ord);
        return swapped ? out_.arena.binary(e.op, b, a)
                       : out_.arena.binary(e.op, a, b);
      }
    }
  }

  const Module& m_;
  const Actions& act_;
  Module out_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::size_t count_corruption_sites(const Module& m,
                                   const CorruptConfig& cfg) {
  return enumerate_sites(m, cfg).size();
}

CorruptedRtl corrupt_module(const Module& m, const CorruptConfig& cfg) {
  const std::vector<Site> sites = enumerate_sites(m, cfg);
  const std::size_t severity = std::min<std::size_t>(
      sites.size(), static_cast<std::size_t>(std::max(cfg.severity, 0)));
  if (severity == 0) return {m, {}};

  // Select sites without replacement; the stream depends only on
  // (seed, module name), never on thread count or call order.
  const std::uint64_t base = cfg.seed ^ fnv1a64(m.name);
  std::vector<std::size_t> idx(sites.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Rng sel(base);
  sel.shuffle(idx);
  idx.resize(severity);
  std::sort(idx.begin(), idx.end());  // apply in enumeration order

  Actions act;
  std::vector<Corruption> applied;
  for (const std::size_t si : idx) {
    const Site& s = sites[si];
    // Per-site randomness is keyed by the site's enumeration index, so one
    // site's choices never shift another's.
    Rng site_rng(base ^ (0x9e3779b97f4a7c15ull * (si + 1)));
    Corruption c;
    c.kind = s.kind;
    switch (s.kind) {
      case CorruptionKind::kDropReset: {
        const rtl::Register& r = m.regs[static_cast<std::size_t>(s.reg)];
        act.drop_reset.insert(s.reg);
        c.target = s.symbol;
        c.site = "reg " + s.symbol;
        c.detail = strprintf("reset branch removed (was %d'd%llu)", r.width,
                             static_cast<unsigned long long>(r.reset_value));
        break;
      }
      case CorruptionKind::kInvertReset: {
        const rtl::Register& r = m.regs[static_cast<std::size_t>(s.reg)];
        const std::uint64_t inv =
            (~r.reset_value) & rtl::width_mask(r.width);
        act.invert_reset.insert(s.reg);
        c.target = s.symbol;
        c.site = "reg " + s.symbol;
        c.detail = strprintf(
            "reset value %d'd%llu -> %d'd%llu", r.width,
            static_cast<unsigned long long>(r.reset_value), r.width,
            static_cast<unsigned long long>(inv));
        break;
      }
      case CorruptionKind::kWidthOffByOne:
        act.widen.insert(s.symbol);
        c.target = s.symbol;
        c.site = "decl " + s.symbol;
        c.detail = strprintf("width %d -> %d, reads shifted to [%d:1]",
                             s.width, s.width + 1, s.width);
        break;
      case CorruptionKind::kSwapOperands:
        act.swap[{s.root, s.ord}] = true;
        c.target = s.root_label;
        c.site = strprintf("%s#%d", s.root_label.c_str(), s.ord);
        c.detail = s.op == ExprOp::kMux
                       ? std::string("mux arms exchanged")
                       : strprintf("operands of '%s' exchanged",
                                   swap_op_name(s.op));
        break;
      case CorruptionKind::kStuckConstant: {
        const std::uint64_t value =
            (site_rng() & 1) != 0 ? 0 : rtl::width_mask(s.width);
        act.stuck[{s.root, s.ord}] = value;
        c.target = s.symbol;
        c.site = strprintf("%s#%d", s.root_label.c_str(), s.ord);
        c.detail = strprintf("use of '%s' stuck at %d'd%llu",
                             s.symbol.c_str(), s.width,
                             static_cast<unsigned long long>(value));
        break;
      }
    }
    applied.push_back(std::move(c));
  }

  Rewriter rw(m, act);
  return {rw.take(), std::move(applied)};
}

std::string provenance_json(const std::string& design, std::uint64_t seed,
                            int severity,
                            const std::vector<Corruption>& applied) {
  std::string out = "{\"design\":\"" + json_escape(design) + "\"";
  out += strprintf(",\"seed\":%llu,\"severity\":%d,\"applied\":[",
                   static_cast<unsigned long long>(seed), severity);
  for (std::size_t i = 0; i < applied.size(); ++i) {
    const Corruption& c = applied[i];
    if (i != 0) out += ",";
    out += "{\"kind\":\"";
    out += to_string(c.kind);
    out += "\",\"target\":\"" + json_escape(c.target) + "\",\"site\":\"" +
           json_escape(c.site) + "\",\"detail\":\"" + json_escape(c.detail) +
           "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace moss::data
