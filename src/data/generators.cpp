#include "data/generators.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "core_util/check.hpp"
#include "core_util/strings.hpp"

namespace moss::data {

using rtl::ExprId;
using rtl::ExprOp;
using rtl::Module;

namespace {

/// Convenience wrapper over rtl::Module for generators: fresh wire names,
/// expression helpers that respect the printer's "selects apply to named
/// symbols" rule by materializing wires where needed.
class Mod {
 public:
  explicit Mod(std::string name) { m.name = std::move(name); }

  Module m;

  ExprId in(const std::string& n, int w) { return m.add_input(n, w); }
  ExprId reg(const std::string& n, int w, std::uint64_t rv = 0) {
    return m.add_reg(n, w, /*has_reset=*/true, rv);
  }
  void next(const std::string& r, ExprId e, ExprId en = rtl::kInvalidExpr) {
    m.set_next(r, e, en);
  }
  void out(const std::string& n, ExprId e) {
    m.assign_output(n, m.arena.at(e).width, e);
  }
  ExprId wire(ExprId e, const std::string& base = "w") {
    const std::string n = base + std::to_string(counter_++);
    return m.add_wire(n, m.arena.at(e).width, e);
  }
  /// Ensure `e` is a named symbol (needed before bit/part selects).
  ExprId named(ExprId e) {
    return m.arena.at(e).op == ExprOp::kVar ? e : wire(e);
  }

  ExprId c(int w, std::uint64_t v) { return m.arena.constant(w, v); }
  ExprId bit(ExprId e, int i) { return m.arena.bit(named(e), i); }
  ExprId slice(ExprId e, int hi, int lo) {
    return m.arena.slice(named(e), hi, lo);
  }
  ExprId cat(std::vector<ExprId> msb_first) {
    return m.arena.concat(std::move(msb_first));
  }
  ExprId zext(ExprId e, int w) { return m.arena.zext(e, w); }
  ExprId sext(ExprId e, int w) { return m.arena.sext(named(e), w); }

  ExprId band(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kAnd, a, b); }
  ExprId bor(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kOr, a, b); }
  ExprId bxor(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kXor, a, b); }
  ExprId bnot(ExprId a) { return m.arena.unary(ExprOp::kNot, a); }
  ExprId add(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kAdd, a, b); }
  ExprId sub(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kSub, a, b); }
  ExprId mul(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kMul, a, b); }
  ExprId eq(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kEq, a, b); }
  ExprId ne(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kNe, a, b); }
  ExprId lt(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kLt, a, b); }
  ExprId le(ExprId a, ExprId b) { return m.arena.binary(ExprOp::kLe, a, b); }
  ExprId mux(ExprId s, ExprId t, ExprId f) { return m.arena.mux(s, t, f); }
  ExprId redxor(ExprId a) { return m.arena.unary(ExprOp::kRedXor, a); }
  ExprId redor(ExprId a) { return m.arena.unary(ExprOp::kRedOr, a); }
  ExprId redand(ExprId a) { return m.arena.unary(ExprOp::kRedAnd, a); }

  /// Rotate left by k (constant).
  ExprId rotl(ExprId e, int k) {
    const int w = m.arena.at(e).width;
    k %= w;
    if (k == 0) return e;
    const ExprId v = named(e);
    return cat({m.arena.slice(v, w - k - 1, 0), m.arena.slice(v, w - 1, w - k)});
  }

  /// Balanced mux tree selecting options[sel].
  ExprId mux_tree(ExprId sel, const std::vector<ExprId>& options) {
    MOSS_CHECK(!options.empty(), "mux_tree of nothing");
    std::vector<ExprId> cur = options;
    int bit_idx = 0;
    const ExprId sel_v = named(sel);
    while (cur.size() > 1) {
      const ExprId s = m.arena.bit(sel_v, bit_idx++);
      std::vector<ExprId> nextv;
      for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
        nextv.push_back(mux(s, cur[i + 1], cur[i]));
      }
      if (cur.size() % 2) nextv.push_back(cur.back());
      cur = std::move(nextv);
    }
    return cur[0];
  }

 private:
  std::size_t counter_ = 0;
};

std::string default_name(const DesignSpec& s) {
  return !s.name.empty()
             ? s.name
             : s.family + "_s" + std::to_string(s.size_hint) + "_" +
                   std::to_string(s.seed % 1000);
}

// ---------------------------------------------------------------------------
// Families
// ---------------------------------------------------------------------------

/// N W-bit inputs; a compare tree selects the maximum, registered with its
/// index. (Table I: max_selector)
Module gen_max_selector(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int n = std::clamp(2 + spec.size_hint + static_cast<int>(rng.uniform_int(0, 1)), 2, 12);
  const int w = std::clamp(6 + 2 * spec.size_hint, 4, 32);
  const int iw = 4;  // index width

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  std::vector<ExprId> vals, idxs;
  for (int i = 0; i < n; ++i) {
    vals.push_back(b.in("in" + std::to_string(i), w));
    idxs.push_back(b.c(iw, static_cast<std::uint64_t>(i)));
  }
  // Pairwise tournament.
  while (vals.size() > 1) {
    std::vector<ExprId> nv, ni;
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
      const ExprId gt = b.wire(b.lt(vals[i], vals[i + 1]), "cmp");
      nv.push_back(b.wire(b.mux(gt, vals[i + 1], vals[i]), "maxv"));
      ni.push_back(b.wire(b.mux(gt, idxs[i + 1], idxs[i]), "maxi"));
    }
    if (vals.size() % 2) {
      nv.push_back(vals.back());
      ni.push_back(idxs.back());
    }
    vals = std::move(nv);
    idxs = std::move(ni);
  }
  const ExprId rv = b.reg("max_val", w);
  const ExprId ri = b.reg("max_idx", iw);
  b.m.set_role("max_val", "maximum-value capture register");
  b.m.set_role("max_idx", "argmax index register");
  b.next("max_val", vals[0], en);
  b.next("max_idx", idxs[0], en);
  b.out("val", rv);
  b.out("idx", ri);
  return std::move(b.m);
}

/// Deep register pipeline with light combinational work per stage.
/// (Table I: pipeline_reg)
Module gen_pipeline_reg(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int depth = std::clamp(3 + 2 * spec.size_hint, 2, 24);
  const int w = std::clamp(8 + 2 * spec.size_hint, 8, 48);

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  ExprId cur = b.in("din", w);
  for (int s = 0; s < depth; ++s) {
    const std::string rn = "stage" + std::to_string(s);
    const ExprId q = b.reg(rn, w);
    b.m.set_role(rn, "pipeline register");
    ExprId nxt;
    switch (rng.index(4)) {
      case 0:
        nxt = b.bxor(cur, b.rotl(cur, 1 + static_cast<int>(rng.index(3))));
        break;
      case 1:
        nxt = b.add(cur, b.c(w, rng() & rtl::width_mask(w)));
        break;
      case 2:
        nxt = b.band(b.rotl(cur, 1), b.bnot(cur));
        break;
      default:
        nxt = b.bor(cur, b.rotl(cur, 2));
        break;
    }
    b.next(rn, nxt, en);
    cur = q;
  }
  b.out("dout", cur);
  return std::move(b.m);
}

/// LFSR-based PRBS generator with an output scrambling network.
/// (Table I: prbs_generator)
Module gen_prbs_generator(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int l = std::clamp(10 + 8 * spec.size_hint, 8, 48);
  const int outw = std::clamp(4 + 6 * spec.size_hint, 4, 48);
  const int scramble_terms = 2 + 3 * spec.size_hint;

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  const ExprId seed_in = b.in("seed", l);
  const ExprId load = b.in("load", 1);

  const ExprId lfsr = b.reg("lfsr", l, 1);  // reset to nonzero
  b.m.set_role("lfsr", "linear feedback shift register");
  // Feedback: xor of 3-4 taps.
  const int num_taps = 3 + static_cast<int>(rng.index(2));
  ExprId fb = b.bit(lfsr, l - 1);
  for (int t = 0; t < num_taps - 1; ++t) {
    fb = b.bxor(fb, b.bit(lfsr, static_cast<int>(rng.index(static_cast<std::size_t>(l - 1)))));
  }
  const ExprId shifted = b.cat({b.slice(lfsr, l - 2, 0), b.wire(fb, "fb")});
  b.next("lfsr", b.mux(load, seed_in, shifted), en);

  // Scramble: each output bit = parity of a random subset of LFSR bits.
  std::vector<ExprId> obits;
  for (int o = 0; o < outw; ++o) {
    ExprId p = b.bit(lfsr, static_cast<int>(rng.index(static_cast<std::size_t>(l))));
    const int terms = scramble_terms + static_cast<int>(rng.index(3));
    for (int t = 0; t < terms; ++t) {
      p = b.bxor(p, b.bit(lfsr, static_cast<int>(rng.index(static_cast<std::size_t>(l)))));
    }
    obits.push_back(b.wire(p, "scr"));
  }
  std::vector<ExprId> msb_first(obits.rbegin(), obits.rend());
  const ExprId word = b.cat(std::move(msb_first));
  const ExprId oreg = b.reg("prbs_out", outw);
  b.m.set_role("prbs_out", "scrambled output register");
  b.next("prbs_out", word, en);
  b.out("dout", oreg);
  b.out("raw", lfsr);
  return std::move(b.m);
}

/// Word-wide multi-stage shift register with enable, parallel load and a
/// selectable tap. (Table I: shift_reg_24)
Module gen_shift_reg(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int stages = std::clamp(4 + 3 * spec.size_hint, 3, 32);
  const int w = std::clamp(4 + 2 * spec.size_hint, 2, 24);
  const int sw = 5;  // tap select width

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  const ExprId din = b.in("din", w);
  const ExprId tap_sel = b.in("tap", sw);
  (void)rng;

  ExprId cur = din;
  std::vector<ExprId> taps;
  for (int s = 0; s < stages; ++s) {
    const std::string rn = "sh" + std::to_string(s);
    const ExprId q = b.reg(rn, w);
    b.m.set_role(rn, "shift register stage");
    b.next(rn, cur, en);
    cur = q;
    taps.push_back(q);
  }
  b.out("dout", cur);
  b.out("tap_out", b.mux_tree(tap_sel, taps));
  // Parity across the whole register chain.
  ExprId par = b.redxor(taps[0]);
  for (std::size_t i = 1; i < taps.size(); ++i) {
    par = b.bxor(par, b.redxor(taps[i]));
  }
  b.out("parity", par);
  return std::move(b.m);
}

/// Sticky error flags, saturating error counter, last-error capture and a
/// threshold alarm. (Table I: error_logger)
Module gen_error_logger(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int wc = std::clamp(4 + 2 * spec.size_hint, 4, 16);   // code width
  const int cnt_w = std::clamp(6 + 2 * spec.size_hint, 6, 24);
  const int classes = std::clamp(2 + 2 * spec.size_hint, 2, 16);
  const int history = std::clamp(1 + spec.size_hint, 1, 8);

  b.in("rst", 1);
  const ExprId valid = b.in("err_valid", 1);
  const ExprId code = b.in("err_code", wc);
  const ExprId clear = b.in("clear", 1);
  const ExprId thresh = b.in("threshold", cnt_w);
  const ExprId class_sel = b.in("class_sel", 4);

  const ExprId count = b.reg("err_count", cnt_w);
  b.m.set_role("err_count", "saturating error counter");
  const ExprId maxed = b.wire(b.redand(count), "sat");
  const ExprId inc = b.add(count, b.zext(b.bnot(maxed), cnt_w));
  b.next("err_count",
         b.mux(clear, b.c(cnt_w, 0), b.mux(valid, inc, count)));

  const ExprId last = b.reg("last_code", wc);
  b.m.set_role("last_code", "last error code capture");
  b.next("last_code", code, valid);

  // Shift-register history of the most recent error codes.
  ExprId prev = last;
  for (int h = 0; h < history; ++h) {
    const std::string hn = "hist" + std::to_string(h);
    const ExprId hq = b.reg(hn, wc);
    b.m.set_role(hn, "error-code history stage");
    b.next(hn, prev, valid);
    prev = hq;
  }

  // Per-class sticky flags and saturating class counters. Class decode
  // compares the low code bits.
  std::vector<ExprId> flags;
  std::vector<ExprId> class_counts;
  const int class_cnt_w = std::clamp(3 + spec.size_hint, 3, 12);
  for (int c = 0; c < classes; ++c) {
    const int sel_bits = std::min(wc, 3);
    const ExprId hit = b.wire(
        b.band(valid,
               b.eq(b.slice(code, sel_bits - 1, 0),
                    b.c(sel_bits, static_cast<std::uint64_t>(c) &
                                      rtl::width_mask(sel_bits)))),
        "hit");

    const std::string rn = "sticky" + std::to_string(c);
    const ExprId f = b.reg(rn, 1);
    b.m.set_role(rn, "sticky status flag");
    b.next(rn, b.mux(clear, b.c(1, 0), b.bor(f, hit)));
    flags.push_back(f);

    const std::string cn = "class_cnt" + std::to_string(c);
    const ExprId cc = b.reg(cn, class_cnt_w);
    b.m.set_role(cn, "per-class saturating error counter");
    const ExprId cmax = b.wire(b.redand(cc), "cmax");
    const ExprId cinc =
        b.add(cc, b.zext(b.band(hit, b.bnot(cmax)), class_cnt_w));
    b.next(cn, b.mux(clear, b.c(class_cnt_w, 0), cinc));
    class_counts.push_back(cc);
  }
  (void)rng;

  const ExprId alarm = b.reg("alarm", 1);
  b.m.set_role("alarm", "threshold alarm flag");
  b.next("alarm", b.mux(clear, b.c(1, 0), b.bor(alarm, b.lt(thresh, count))));

  b.out("count", count);
  b.out("last", last);
  b.out("hist_o", prev);
  b.out("alarm_o", alarm);
  b.out("class_cnt_o", b.mux_tree(class_sel, class_counts));
  std::vector<ExprId> msb_first(flags.rbegin(), flags.rend());
  b.out("flags", classes == 1 ? flags[0] : b.cat(std::move(msb_first)));
  return std::move(b.m);
}

/// Signed multiply-accumulate with clear and enable. (Table I: signed_mac)
Module gen_signed_mac(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int wa = std::clamp(4 + 2 * spec.size_hint, 4, 16);
  const int wb = std::clamp(4 + 2 * spec.size_hint, 4, 16);
  const int wacc = std::min(wa + wb + 4, 48);
  (void)rng;

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  const ExprId clear = b.in("clear", 1);
  const ExprId a = b.in("a", wa);
  const ExprId bb = b.in("b", wb);

  const ExprId ax = b.sext(a, wacc);
  const ExprId bx = b.sext(bb, wacc);
  const ExprId prod = b.wire(b.mul(ax, bx), "prod");

  const ExprId acc = b.reg("acc", wacc);
  b.m.set_role("acc", "signed multiply-accumulate register");
  b.next("acc", b.mux(clear, b.c(wacc, 0), b.add(acc, prod)), en);

  const ExprId ovf = b.reg("ovf_sticky", 1);
  b.m.set_role("ovf_sticky", "overflow sticky flag");
  // Crude overflow detect: sign of acc and prod agree but sum's sign flips.
  const ExprId sum = b.wire(b.add(acc, prod), "sum");
  const ExprId same_sign =
      b.eq(b.bit(acc, wacc - 1), b.bit(prod, wacc - 1));
  const ExprId flipped = b.ne(b.bit(sum, wacc - 1), b.bit(acc, wacc - 1));
  b.next("ovf_sticky",
         b.mux(clear, b.c(1, 0), b.bor(ovf, b.band(same_sign, flipped))));

  b.out("acc_o", acc);
  b.out("ovf", ovf);
  return std::move(b.m);
}

/// Wishbone-style registered data mux: N sources selected by decoded
/// address, with byte enables and parity. (Table I: wb_data_mux)
Module gen_wb_data_mux(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int n = std::clamp(2 + 2 * spec.size_hint, 2, 16);
  const int w = std::clamp(8 + 8 * spec.size_hint, 8, 48);
  const int aw = 4;
  (void)rng;

  b.in("rst", 1);
  const ExprId stb = b.in("stb", 1);
  const ExprId addr = b.in("addr", aw);
  const int bytes = std::max(1, w / 8);
  const ExprId be = b.in("be", bytes);

  std::vector<ExprId> srcs;
  for (int i = 0; i < n; ++i) {
    srcs.push_back(b.in("src" + std::to_string(i), w));
  }
  const ExprId selected = b.wire(b.mux_tree(addr, srcs), "sel");

  // Byte-enable masking.
  std::vector<ExprId> mask_bits;
  for (int bit = w - 1; bit >= 0; --bit) {
    mask_bits.push_back(b.bit(be, std::min(bit / 8, bytes - 1)));
  }
  const ExprId mask = b.cat(std::move(mask_bits));
  const ExprId masked = b.band(selected, mask);

  const ExprId dreg = b.reg("dat_r", w);
  b.m.set_role("dat_r", "registered read-data mux output");
  b.next("dat_r", masked, stb);

  const ExprId vreg = b.reg("ack", 1);
  b.m.set_role("ack", "acknowledge flag");
  b.next("ack", stb);

  const ExprId preg = b.reg("parity", 1);
  b.m.set_role("parity", "data parity register");
  b.next("parity", b.redxor(masked), stb);

  // Running checksum over returned data (rotate-xor-add), and per-source
  // parity status flags — the kind of bus-health logic real interconnect
  // wrappers carry.
  const ExprId csum = b.reg("checksum", w);
  b.m.set_role("checksum", "running read-data checksum");
  b.next("checksum", b.add(b.rotl(csum, 3), masked), stb);

  std::vector<ExprId> perr;
  for (int i = 0; i < n; ++i) {
    const std::string pn = "src_par" + std::to_string(i);
    const ExprId pf = b.reg(pn, 1);
    b.m.set_role(pn, "per-source parity flag");
    b.next(pn, b.redxor(srcs[static_cast<std::size_t>(i)]), stb);
    perr.push_back(pf);
  }
  std::vector<ExprId> perr_msb(perr.rbegin(), perr.rend());

  b.out("dat_o", dreg);
  b.out("ack_o", vreg);
  b.out("par_o", preg);
  b.out("csum_o", csum);
  b.out("perr_o", n == 1 ? perr[0] : b.cat(std::move(perr_msb)));
  return std::move(b.m);
}

/// Widening multiplier with registered product; signed at larger sizes
/// (sign-extended operands keep every partial-product row full-width, as a
/// production multiplier netlist would be). (Table I: mult_16x32_to_48)
Module gen_mult(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int wa = std::clamp(4 + 3 * spec.size_hint, 4, 16);
  const int wb = std::clamp(8 + 6 * spec.size_hint, 4, 32);
  const int wo = std::min(wa + wb, 48);
  const bool is_signed = spec.size_hint >= 4;
  (void)rng;

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  const ExprId a = b.in("a", wa);
  const ExprId bb = b.in("b", wb);

  const ExprId prod = is_signed
                          ? b.mul(b.sext(a, wo), b.sext(bb, wo))
                          : b.mul(b.zext(a, wo), b.zext(bb, wo));
  const ExprId preg = b.reg("p", wo);
  b.m.set_role("p", "product register");
  b.next("p", prod, en);
  b.out("p_o", preg);
  return std::move(b.m);
}

/// Gray-code counter with binary shadow and parity outputs.
Module gen_gray_counter(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int w = std::clamp(4 + 2 * spec.size_hint, 4, 32);
  (void)rng;

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  const ExprId bin = b.reg("bin", w);
  b.m.set_role("bin", "binary counter");
  b.next("bin", b.add(bin, b.c(w, 1)), en);
  const ExprId gray = b.bxor(bin, b.cat({b.c(1, 0), b.slice(bin, w - 1, 1)}));
  const ExprId greg = b.reg("gray", w);
  b.m.set_role("gray", "gray-code shadow register");
  b.next("gray", gray, en);
  b.out("gray_o", greg);
  b.out("parity", b.redxor(greg));
  b.out("wrap", b.redand(bin));
  return std::move(b.m);
}

/// Registered ALU: op-selected arithmetic/logic with flags.
Module gen_alu(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int w = std::clamp(8 + 4 * spec.size_hint, 8, 48);
  (void)rng;

  b.in("rst", 1);
  const ExprId op = b.in("op", 3);
  const ExprId a = b.in("a", w);
  const ExprId bb = b.in("b", w);

  std::vector<ExprId> results{
      b.add(a, bb),
      b.sub(a, bb),
      b.band(a, bb),
      b.bor(a, bb),
      b.bxor(a, bb),
      b.bnot(a),
      b.mux(b.lt(a, bb), bb, a),                  // max
      b.rotl(a, 1),
  };
  const ExprId res = b.wire(b.mux_tree(op, results), "res");

  const ExprId rr = b.reg("result", w);
  b.m.set_role("result", "ALU result register");
  b.next("result", res);
  const ExprId zf = b.reg("zero_flag", 1);
  b.m.set_role("zero_flag", "zero flag");
  b.next("zero_flag", b.eq(res, b.c(w, 0)));
  const ExprId nf = b.reg("neg_flag", 1);
  b.m.set_role("neg_flag", "sign flag");
  b.next("neg_flag", b.bit(res, w - 1));

  b.out("y", rr);
  b.out("zf", zf);
  b.out("nf", nf);
  return std::move(b.m);
}

/// Parallel CRC update over a data word (serial LFSR unrolled).
Module gen_crc(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int crc_w = spec.size_hint >= 3 ? 32 : 16;
  const int data_w = std::clamp(4 + 4 * spec.size_hint, 4, 32);
  const std::uint64_t poly =
      crc_w == 32 ? 0x04C11DB7ull : 0x1021ull;  // CRC-32 / CCITT
  (void)rng;

  b.in("rst", 1);
  const ExprId en = b.in("en", 1);
  const ExprId init = b.in("init", 1);
  const ExprId data = b.in("data", data_w);

  const ExprId crc = b.reg("crc", crc_w, rtl::width_mask(crc_w));
  b.m.set_role("crc", "cyclic redundancy check register");

  // Unroll the serial CRC over all data bits symbolically.
  std::vector<ExprId> state(static_cast<std::size_t>(crc_w));
  for (int i = 0; i < crc_w; ++i) state[static_cast<std::size_t>(i)] = b.bit(crc, i);
  for (int k = data_w - 1; k >= 0; --k) {
    const ExprId fb = b.wire(
        b.bxor(state[static_cast<std::size_t>(crc_w - 1)], b.bit(data, k)),
        "fb");
    std::vector<ExprId> ns(static_cast<std::size_t>(crc_w));
    for (int i = 0; i < crc_w; ++i) {
      ExprId v = i == 0 ? fb : state[static_cast<std::size_t>(i - 1)];
      if (i > 0 && ((poly >> i) & 1ull)) v = b.bxor(v, fb);
      ns[static_cast<std::size_t>(i)] = v;
    }
    state = std::move(ns);
  }
  std::vector<ExprId> msb_first(state.rbegin(), state.rend());
  const ExprId next_crc = b.cat(std::move(msb_first));
  b.next("crc",
         b.mux(init, b.c(crc_w, rtl::width_mask(crc_w)), next_crc), en);
  b.out("crc_o", crc);
  b.out("match", b.eq(crc, b.c(crc_w, 0)));
  return std::move(b.m);
}

/// One-hot control FSM with input-dependent transitions and decoded outputs.
Module gen_ctrl_fsm(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int states = std::clamp(3 + spec.size_hint, 3, 10);
  const int dw = std::clamp(4 + 2 * spec.size_hint, 4, 16);

  b.in("rst", 1);
  const ExprId go = b.in("go", 1);
  const ExprId stop = b.in("stop", 1);
  const ExprId dat = b.in("dat", dw);

  const ExprId st = b.reg("state", states, 1);  // one-hot, reset to S0
  b.m.set_role("state", "one-hot FSM state register");

  const ExprId cond = b.wire(b.redxor(dat), "cond");
  std::vector<ExprId> next_bits(static_cast<std::size_t>(states));
  // S0 leaves on go; each Si advances on cond (else holds); any state
  // returns to S0 on stop.
  for (int s = 0; s < states; ++s) {
    ExprId setter;
    if (s == 0) {
      setter = b.bor(b.band(b.bit(st, 0), b.bnot(go)),
                     b.band(b.bit(st, states - 1), cond));
      setter = b.bor(setter, stop);
    } else {
      const ExprId from_prev = b.band(b.bit(st, s - 1),
                                      s == 1 ? go : cond);
      const ExprId hold = b.band(b.bit(st, s),
                                 s == states - 1 ? b.bnot(cond) : b.bnot(cond));
      setter = b.band(b.bor(from_prev, hold), b.bnot(stop));
    }
    next_bits[static_cast<std::size_t>(s)] = b.wire(setter, "ns");
  }
  std::vector<ExprId> msb_first(next_bits.rbegin(), next_bits.rend());
  b.next("state", b.cat(std::move(msb_first)));

  // A data register written in a specific state.
  const ExprId cap = b.reg("captured", dw);
  b.m.set_role("captured", "state-gated capture register");
  b.next("captured", dat, b.bit(st, states / 2));

  const ExprId busy = b.reg("busy", 1);
  b.m.set_role("busy", "busy flag");
  b.next("busy", b.bnot(b.bit(st, 0)));
  (void)rng;

  b.out("state_o", st);
  b.out("cap_o", cap);
  b.out("busy_o", busy);
  return std::move(b.m);
}

/// Round-robin arbiter with request masking and grant registers.
Module gen_arbiter(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int n = std::clamp(3 + spec.size_hint, 2, 12);
  (void)rng;

  b.in("rst", 1);
  const ExprId req = b.in("req", n);
  const ExprId en = b.in("en", 1);

  const ExprId grant = b.reg("grant", n);
  b.m.set_role("grant", "one-hot grant register");
  const ExprId last = b.reg("last", n, 1);
  b.m.set_role("last", "round-robin pointer register");

  // Priority chain starting after `last` (simplified rotate-by-1 scheme).
  const ExprId rot_req = b.bxor(req, b.band(req, last));  // mask last winner
  std::vector<ExprId> gbits;
  ExprId taken = b.c(1, 0);
  for (int i = 0; i < n; ++i) {
    const ExprId r = b.bit(rot_req, i);
    const ExprId g = b.wire(b.band(r, b.bnot(taken)), "g");
    gbits.push_back(g);
    if (i + 1 < n) taken = b.wire(b.bor(taken, r), "t");
  }
  std::vector<ExprId> msb_first(gbits.rbegin(), gbits.rend());
  const ExprId new_grant = b.wire(b.cat(std::move(msb_first)), "ng");
  b.next("grant", new_grant, en);
  b.next("last", b.mux(b.redor(new_grant), new_grant, last), en);

  const ExprId any = b.reg("any_grant", 1);
  b.m.set_role("any_grant", "grant-valid flag");
  b.next("any_grant", b.redor(new_grant), en);

  b.out("grant_o", grant);
  b.out("valid", any);
  return std::move(b.m);
}

/// FIFO control logic (pointers, occupancy, full/empty) without the RAM.
Module gen_fifo_ctrl(const DesignSpec& spec, Rng& rng) {
  Mod b(default_name(spec));
  const int aw = std::clamp(2 + spec.size_hint, 3, 10);
  (void)rng;

  b.in("rst", 1);
  const ExprId push = b.in("push", 1);
  const ExprId pop = b.in("pop", 1);

  const ExprId wp = b.reg("wptr", aw);
  b.m.set_role("wptr", "write pointer");
  const ExprId rp = b.reg("rptr", aw);
  b.m.set_role("rptr", "read pointer");
  const ExprId occ = b.reg("occupancy", aw + 1);
  b.m.set_role("occupancy", "occupancy counter");

  const ExprId full = b.wire(b.eq(occ, b.c(aw + 1, 1ull << aw)), "fullw");
  const ExprId empty = b.wire(b.eq(occ, b.c(aw + 1, 0)), "emptyw");
  const ExprId do_push = b.wire(b.band(push, b.bnot(full)), "dp");
  const ExprId do_pop = b.wire(b.band(pop, b.bnot(empty)), "dq");

  b.next("wptr", b.add(wp, b.zext(do_push, aw)));
  b.next("rptr", b.add(rp, b.zext(do_pop, aw)));
  b.next("occupancy",
         b.add(b.sub(occ, b.zext(do_pop, aw + 1)), b.zext(do_push, aw + 1)));

  const ExprId ovf = b.reg("overflow", 1);
  b.m.set_role("overflow", "overflow sticky flag");
  b.next("overflow", b.bor(ovf, b.band(push, full)));

  b.out("full_o", full);
  b.out("empty_o", empty);
  b.out("occ_o", occ);
  b.out("ovf_o", ovf);
  // RAM address ports (the controller's raison d'être).
  b.out("waddr", wp);
  b.out("raddr", rp);
  return std::move(b.m);
}

using GenFn = Module (*)(const DesignSpec&, Rng&);

const std::vector<std::pair<std::string, GenFn>>& registry() {
  static const std::vector<std::pair<std::string, GenFn>> kFamilies{
      {"max_selector", gen_max_selector},
      {"pipeline_reg", gen_pipeline_reg},
      {"prbs_generator", gen_prbs_generator},
      {"shift_reg", gen_shift_reg},
      {"error_logger", gen_error_logger},
      {"signed_mac", gen_signed_mac},
      {"wb_data_mux", gen_wb_data_mux},
      {"mult", gen_mult},
      {"gray_counter", gen_gray_counter},
      {"alu", gen_alu},
      {"crc", gen_crc},
      {"ctrl_fsm", gen_ctrl_fsm},
      {"arbiter", gen_arbiter},
      {"fifo_ctrl", gen_fifo_ctrl},
  };
  return kFamilies;
}

}  // namespace

std::vector<std::string> families() {
  std::vector<std::string> out;
  for (const auto& [name, fn] : registry()) out.push_back(name);
  return out;
}

Module generate(const DesignSpec& spec) {
  for (const auto& [name, fn] : registry()) {
    if (name == spec.family) {
      Rng rng(spec.seed ^ fnv1a64(spec.family) ^
              (static_cast<std::uint64_t>(spec.size_hint) << 32));
      Module m = fn(spec, rng);
      m.validate();
      return m;
    }
  }
  fail("unknown design family: " + spec.family);
}

std::vector<DesignSpec> table1_specs() {
  // size_hint values tuned so synthesized cell counts approximate Table I
  // (278..4144 in the paper) and keep the same row ordering by size.
  return {
      {"max_selector", 4, 101, "max_selector"},
      {"pipeline_reg", 4, 102, "pipeline_reg"},
      {"prbs_generator", 4, 103, "prbs_generator"},
      {"shift_reg", 5, 104, "shift_reg_24"},
      {"error_logger", 5, 105, "error_logger"},
      {"signed_mac", 4, 106, "signed_mac"},
      {"wb_data_mux", 6, 107, "wb_data_mux"},
      {"mult", 4, 108, "mult_16x32_to_48"},
  };
}

std::vector<DesignSpec> corpus_specs(std::size_t count, std::uint64_t seed,
                                     int min_size, int max_size) {
  std::vector<DesignSpec> out;
  Rng rng(seed);
  const auto fams = families();
  for (std::size_t i = 0; i < count; ++i) {
    DesignSpec s;
    s.family = fams[i % fams.size()];
    s.size_hint =
        static_cast<int>(rng.uniform_int(min_size, max_size));
    s.seed = rng();
    s.name = s.family + "_c" + std::to_string(i);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace moss::data
