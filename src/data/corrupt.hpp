#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/module.hpp"

namespace moss::data {

/// RTL-level imperfection passes: seeded, composable mutations on a parsed
/// module that stay syntactically valid (the output always re-parses with no
/// diagnostic) but go semantically wrong — the "valid but buggy" RTL a
/// public-facing alignment service actually receives. The netlist-level
/// analogue is data::Mutation (mutate.hpp); these operate one level up, on
/// the code modality itself, so the corrupted view keeps the surface
/// statistics of real RTL.
enum class CorruptionKind : std::uint8_t {
  /// Exchange the operands of a non-commutative operator (a-b -> b-a,
  /// a<<b -> b<<a, a<b -> b<a) or the arms of a mux (sel?t:f -> sel?f:t).
  kSwapOperands,
  /// Replace one use of a named signal with a same-width constant
  /// (all-zeros or all-ones), leaving every other use intact.
  kStuckConstant,
  /// Remove a register's synchronous reset branch entirely.
  kDropReset,
  /// Bitwise-invert a register's reset value.
  kInvertReset,
  /// Off-by-one width bug: grow a wire/register by one bit and shift every
  /// read of it up by one position (reads become name[w:1]), the classic
  /// mis-sized-declaration/mis-indexed-part-select pattern.
  kWidthOffByOne,
};

const char* to_string(CorruptionKind kind);
/// Parse the to_string form ("swap_operands", ...). Returns false (and
/// leaves `out` untouched) for unknown names.
bool corruption_kind_from_string(const std::string& s, CorruptionKind* out);
/// All passes, in enum order (the default pass set).
std::vector<CorruptionKind> all_corruption_kinds();

/// Provenance of one applied corruption: which pass, where, and what it did.
/// Byte-stable for a fixed (module, config) — the corpus exporter writes
/// these verbatim.
struct Corruption {
  CorruptionKind kind = CorruptionKind::kSwapOperands;
  std::string target;  ///< affected symbol (register/wire) or root name
  std::string site;    ///< stable site id, e.g. "wire acc#3" (preorder pos)
  std::string detail;  ///< human-readable description of the wrongness
};

struct CorruptConfig {
  std::uint64_t seed = 1;
  /// Number of corruption sites to apply (clamped to the available sites).
  /// Higher severity = more simultaneous bugs.
  int severity = 1;
  /// Which passes may fire; empty = all of them.
  std::vector<CorruptionKind> passes;
};

struct CorruptedRtl {
  rtl::Module module;
  std::vector<Corruption> applied;
};

/// Number of eligible corruption sites in `m` under `cfg.passes` — the
/// ceiling of any severity schedule.
std::size_t count_corruption_sites(const rtl::Module& m,
                                   const CorruptConfig& cfg);

/// Apply `cfg.severity` corruptions to a copy of `m`. Site selection and
/// every per-site choice are deterministic in (cfg.seed, module name, site):
/// two calls with equal inputs produce byte-identical Verilog and
/// provenance. The result always validates and re-parses; `applied` may be
/// shorter than `severity` when the module has fewer eligible sites (and
/// empty when it has none, in which case the module is returned unchanged).
CorruptedRtl corrupt_module(const rtl::Module& m, const CorruptConfig& cfg);

/// One-line JSON provenance record with stable field order:
/// {"design":...,"seed":...,"severity":...,"applied":[{...},...]}
std::string provenance_json(const std::string& design, std::uint64_t seed,
                            int severity,
                            const std::vector<Corruption>& applied);

}  // namespace moss::data
