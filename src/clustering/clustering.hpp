#pragma once

#include <cstddef>
#include <vector>

namespace moss::clustering {

/// A point set: N rows of equal dimension.
using Points = std::vector<std::vector<float>>;

/// Labels: one cluster id per point (>= 0), or kNoise for DBSCAN outliers.
inline constexpr int kNoise = -1;

struct DbscanConfig {
  double eps = 0.5;
  std::size_t min_pts = 2;
  /// Worker threads for the O(n²) neighbor computation. The result is
  /// identical at any value: neighbor lists are computed per point and the
  /// cluster expansion itself runs serially in index order.
  std::size_t threads = 1;
};

/// Classic DBSCAN with Euclidean distance. Deterministic: points are
/// scanned in index order; a border point in range of several cores keeps
/// the first cluster that claims it. Returns per-point labels; noise stays
/// kNoise.
std::vector<int> dbscan(const Points& pts, const DbscanConfig& cfg);

/// Suggest an eps for dbscan as a quantile of the non-zero pairwise
/// distance distribution (MOSS "detects clusters of varying density
/// without specifying the number in advance" — this keeps it parameter-free
/// for the caller). `threads` parallelizes the pairwise sweep; the result
/// is independent of it.
double suggest_eps(const Points& pts, double quantile = 0.25,
                   std::size_t threads = 1);

/// Average-linkage agglomerative clustering down to `target` clusters.
/// Starting labels may be provided (e.g. DBSCAN output with noise as
/// singletons); merging proceeds on cluster-mean distances.
std::vector<int> agglomerate(const Points& pts, std::size_t target,
                             const std::vector<int>& initial_labels = {});

/// MOSS's adaptive grouping (Fig. 5): DBSCAN over the LM-derived embeddings
/// finds natural functional groups; hierarchical clustering then refines to
/// at most `max_clusters` (merging over-fragmented groups, folding noise
/// into singletons first). Labels are compacted to 0..G-1.
std::vector<int> adaptive_clusters(const Points& pts,
                                   std::size_t max_clusters,
                                   std::size_t threads = 1);

/// Number of distinct non-negative labels.
std::size_t num_clusters(const std::vector<int>& labels);

}  // namespace moss::clustering
