#include "clustering/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_map>

#include "core_util/check.hpp"
#include "core_util/thread_pool.hpp"

namespace moss::clustering {

namespace {

double dist(const std::vector<float>& a, const std::vector<float>& b) {
  MOSS_CHECK(a.size() == b.size(), "clustering: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace

std::vector<int> dbscan(const Points& pts, const DbscanConfig& cfg) {
  const std::size_t n = pts.size();
  std::vector<int> labels(n, kNoise);
  std::vector<char> visited(n, 0);

  // Neighbor lists are the O(n²·d) hot spot; compute them all up front, one
  // point per task, so the expansion below is pure index chasing.
  ThreadPool pool(cfg.threads == 0 ? 0 : cfg.threads);
  const std::vector<std::vector<std::size_t>> nbrs =
      pool.parallel_map(n, [&](std::size_t i) {
        std::vector<std::size_t> out;
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i && dist(pts[i], pts[j]) <= cfg.eps) out.push_back(j);
        }
        return out;
      });

  // Serial cluster expansion in index order (deterministic). A border point
  // already claimed by an earlier cluster keeps that label: only kNoise
  // points are relabeled, and a visited point is never expanded twice.
  std::vector<char> queued(n, 0);
  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = 1;
    if (nbrs[i].size() + 1 < cfg.min_pts) continue;  // noise (claimable later)
    const int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<std::size_t> frontier;
    for (const std::size_t j : nbrs[i]) {
      if (!queued[j]) {
        queued[j] = 1;
        frontier.push_back(j);
      }
    }
    while (!frontier.empty()) {
      const std::size_t j = frontier.front();
      frontier.pop_front();
      queued[j] = 0;
      if (labels[j] == kNoise) labels[j] = cluster;  // border or core point
      if (visited[j]) continue;
      visited[j] = 1;
      if (nbrs[j].size() + 1 >= cfg.min_pts) {  // core: expand
        for (const std::size_t k : nbrs[j]) {
          if (!queued[k] && !visited[k]) {
            queued[k] = 1;
            frontier.push_back(k);
          }
        }
      }
    }
  }
  return labels;
}

double suggest_eps(const Points& pts, double quantile, std::size_t threads) {
  const std::size_t n = pts.size();
  ThreadPool pool(threads == 0 ? 0 : threads);
  // Per-anchor partial sweeps (j > i), concatenated in index order so the
  // pre-sort contents are reproducible regardless of thread count.
  const std::vector<std::vector<double>> partial =
      pool.parallel_map(n, [&](std::size_t i) {
        std::vector<double> out;
        for (std::size_t j = i + 1; j < n; ++j) {
          const double d = dist(pts[i], pts[j]);
          if (d > 1e-12) out.push_back(d);
        }
        return out;
      });
  std::vector<double> dists;
  for (const auto& part : partial) {
    dists.insert(dists.end(), part.begin(), part.end());
  }
  if (dists.empty()) return 1.0;
  std::sort(dists.begin(), dists.end());
  const std::size_t k = std::min(
      dists.size() - 1,
      static_cast<std::size_t>(quantile * static_cast<double>(dists.size())));
  return dists[k];
}

std::vector<int> agglomerate(const Points& pts, std::size_t target,
                             const std::vector<int>& initial_labels) {
  const std::size_t n = pts.size();
  MOSS_CHECK(target >= 1, "agglomerate: target must be >= 1");
  std::vector<int> labels(n);
  if (initial_labels.empty()) {
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i);
  } else {
    MOSS_CHECK(initial_labels.size() == n, "agglomerate: label size mismatch");
    labels = initial_labels;
    // Noise becomes singleton clusters.
    int next = 0;
    for (const int l : labels) next = std::max(next, l + 1);
    for (int& l : labels) {
      if (l == kNoise) l = next++;
    }
  }

  // Build cluster means and sizes.
  struct Cluster {
    std::vector<double> sum;
    std::size_t count = 0;
    bool alive = false;
  };
  std::unordered_map<int, Cluster> clusters;
  const std::size_t dim = n ? pts[0].size() : 0;
  for (std::size_t i = 0; i < n; ++i) {
    Cluster& c = clusters[labels[i]];
    if (c.sum.empty()) c.sum.assign(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) c.sum[d] += pts[i][d];
    ++c.count;
    c.alive = true;
  }

  const auto mean_dist = [&](const Cluster& a, const Cluster& b) {
    double s = 0.0;
    for (std::size_t d = 0; d < a.sum.size(); ++d) {
      const double da = a.sum[d] / static_cast<double>(a.count);
      const double db = b.sum[d] / static_cast<double>(b.count);
      s += (da - db) * (da - db);
    }
    return std::sqrt(s);
  };

  while (true) {
    std::vector<int> ids;
    for (const auto& [id, c] : clusters) {
      if (c.alive) ids.push_back(id);
    }
    if (ids.size() <= target) break;
    std::sort(ids.begin(), ids.end());  // determinism
    double best = std::numeric_limits<double>::max();
    int ba = -1, bb = -1;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        const double d = mean_dist(clusters[ids[i]], clusters[ids[j]]);
        if (d < best) {
          best = d;
          ba = ids[i];
          bb = ids[j];
        }
      }
    }
    // Merge bb into ba.
    Cluster& a = clusters[ba];
    Cluster& b = clusters[bb];
    for (std::size_t d = 0; d < a.sum.size(); ++d) a.sum[d] += b.sum[d];
    a.count += b.count;
    b.alive = false;
    for (int& l : labels) {
      if (l == bb) l = ba;
    }
  }

  // Compact labels to 0..G-1 (ordered by first occurrence).
  std::unordered_map<int, int> remap;
  int next = 0;
  for (int& l : labels) {
    const auto it = remap.find(l);
    if (it == remap.end()) {
      remap.emplace(l, next);
      l = next++;
    } else {
      l = it->second;
    }
  }
  return labels;
}

std::vector<int> adaptive_clusters(const Points& pts,
                                   std::size_t max_clusters,
                                   std::size_t threads) {
  if (pts.empty()) return {};
  DbscanConfig cfg;
  cfg.eps = suggest_eps(pts, 0.25, threads);
  cfg.min_pts = 2;
  cfg.threads = threads;
  const std::vector<int> coarse = dbscan(pts, cfg);
  return agglomerate(pts, max_clusters, coarse);
}

std::size_t num_clusters(const std::vector<int>& labels) {
  std::vector<int> seen;
  for (const int l : labels) {
    if (l >= 0 && std::find(seen.begin(), seen.end(), l) == seen.end()) {
      seen.push_back(l);
    }
  }
  return seen.size();
}

}  // namespace moss::clustering
