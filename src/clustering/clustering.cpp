#include "clustering/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <unordered_map>

#include "core_util/check.hpp"

namespace moss::clustering {

namespace {

double dist(const std::vector<float>& a, const std::vector<float>& b) {
  MOSS_CHECK(a.size() == b.size(), "clustering: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace

std::vector<int> dbscan(const Points& pts, const DbscanConfig& cfg) {
  const std::size_t n = pts.size();
  std::vector<int> labels(n, kNoise);
  std::vector<char> visited(n, 0);

  const auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && dist(pts[i], pts[j]) <= cfg.eps) out.push_back(j);
    }
    return out;
  };

  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = 1;
    auto nb = neighbors(i);
    if (nb.size() + 1 < cfg.min_pts) continue;  // noise (may be claimed later)
    const int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<std::size_t> frontier(nb.begin(), nb.end());
    while (!frontier.empty()) {
      const std::size_t j = frontier.front();
      frontier.pop_front();
      if (labels[j] == kNoise) labels[j] = cluster;  // border point
      if (visited[j]) continue;
      visited[j] = 1;
      labels[j] = cluster;
      auto nb_j = neighbors(j);
      if (nb_j.size() + 1 >= cfg.min_pts) {
        for (const std::size_t k : nb_j) frontier.push_back(k);
      }
    }
  }
  return labels;
}

double suggest_eps(const Points& pts, double quantile) {
  std::vector<double> dists;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double d = dist(pts[i], pts[j]);
      if (d > 1e-12) dists.push_back(d);
    }
  }
  if (dists.empty()) return 1.0;
  std::sort(dists.begin(), dists.end());
  const std::size_t k = std::min(
      dists.size() - 1,
      static_cast<std::size_t>(quantile * static_cast<double>(dists.size())));
  return dists[k];
}

std::vector<int> agglomerate(const Points& pts, std::size_t target,
                             const std::vector<int>& initial_labels) {
  const std::size_t n = pts.size();
  MOSS_CHECK(target >= 1, "agglomerate: target must be >= 1");
  std::vector<int> labels(n);
  if (initial_labels.empty()) {
    for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i);
  } else {
    MOSS_CHECK(initial_labels.size() == n, "agglomerate: label size mismatch");
    labels = initial_labels;
    // Noise becomes singleton clusters.
    int next = 0;
    for (const int l : labels) next = std::max(next, l + 1);
    for (int& l : labels) {
      if (l == kNoise) l = next++;
    }
  }

  // Build cluster means and sizes.
  struct Cluster {
    std::vector<double> sum;
    std::size_t count = 0;
    bool alive = false;
  };
  std::unordered_map<int, Cluster> clusters;
  const std::size_t dim = n ? pts[0].size() : 0;
  for (std::size_t i = 0; i < n; ++i) {
    Cluster& c = clusters[labels[i]];
    if (c.sum.empty()) c.sum.assign(dim, 0.0);
    for (std::size_t d = 0; d < dim; ++d) c.sum[d] += pts[i][d];
    ++c.count;
    c.alive = true;
  }

  const auto mean_dist = [&](const Cluster& a, const Cluster& b) {
    double s = 0.0;
    for (std::size_t d = 0; d < a.sum.size(); ++d) {
      const double da = a.sum[d] / static_cast<double>(a.count);
      const double db = b.sum[d] / static_cast<double>(b.count);
      s += (da - db) * (da - db);
    }
    return std::sqrt(s);
  };

  while (true) {
    std::vector<int> ids;
    for (const auto& [id, c] : clusters) {
      if (c.alive) ids.push_back(id);
    }
    if (ids.size() <= target) break;
    std::sort(ids.begin(), ids.end());  // determinism
    double best = std::numeric_limits<double>::max();
    int ba = -1, bb = -1;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        const double d = mean_dist(clusters[ids[i]], clusters[ids[j]]);
        if (d < best) {
          best = d;
          ba = ids[i];
          bb = ids[j];
        }
      }
    }
    // Merge bb into ba.
    Cluster& a = clusters[ba];
    Cluster& b = clusters[bb];
    for (std::size_t d = 0; d < a.sum.size(); ++d) a.sum[d] += b.sum[d];
    a.count += b.count;
    b.alive = false;
    for (int& l : labels) {
      if (l == bb) l = ba;
    }
  }

  // Compact labels to 0..G-1 (ordered by first occurrence).
  std::unordered_map<int, int> remap;
  int next = 0;
  for (int& l : labels) {
    const auto it = remap.find(l);
    if (it == remap.end()) {
      remap.emplace(l, next);
      l = next++;
    } else {
      l = it->second;
    }
  }
  return labels;
}

std::vector<int> adaptive_clusters(const Points& pts,
                                   std::size_t max_clusters) {
  if (pts.empty()) return {};
  DbscanConfig cfg;
  cfg.eps = suggest_eps(pts);
  cfg.min_pts = 2;
  const std::vector<int> coarse = dbscan(pts, cfg);
  return agglomerate(pts, max_clusters, coarse);
}

std::size_t num_clusters(const std::vector<int>& labels) {
  std::vector<int> seen;
  for (const int l : labels) {
    if (l >= 0 && std::find(seen.begin(), seen.end(), l) == seen.end()) {
      seen.push_back(l);
    }
  }
  return seen.size();
}

}  // namespace moss::clustering
