#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace moss::netlist {

/// Emit a finalized netlist as structural (gate-level) Verilog: one
/// instance per cell with named pin connections, plus the implicit clock
/// wired to every flop — the hand-off format real flows exchange.
///
/// Example output fragment:
///   module top (input clk, input a, output y);
///     wire n_u3_inv;
///     INV u3_inv (.A(a), .Y(n_u3_inv));
///     DFF r_q (.D(n_u3_inv), .CK(clk), .Q(n_r_q));
///     assign y = n_r_q;
///   endmodule
std::string to_structural_verilog(const Netlist& nl);

}  // namespace moss::netlist
