#include "netlist/netlist.hpp"

#include <algorithm>
#include <deque>

#include "core_util/check.hpp"

namespace moss::netlist {

NodeId Netlist::add_input(const std::string& name) {
  MOSS_CHECK(!finalized_, "netlist already finalized");
  MOSS_CHECK(by_name_.find(name) == by_name_.end(),
             "duplicate node name: " + name);
  Node n;
  n.kind = NodeKind::kPrimaryInput;
  n.name = name;
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  inputs_.push_back(id);
  by_name_.emplace(name, id);
  return id;
}

NodeId Netlist::add_output(const std::string& name, NodeId driver) {
  MOSS_CHECK(!finalized_, "netlist already finalized");
  MOSS_CHECK(by_name_.find(name) == by_name_.end(),
             "duplicate node name: " + name);
  Node n;
  n.kind = NodeKind::kPrimaryOutput;
  n.name = name;
  n.fanin.push_back(driver);
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  outputs_.push_back(id);
  by_name_.emplace(name, id);
  return id;
}

NodeId Netlist::add_cell(cell::CellTypeId type, const std::string& name,
                         std::vector<NodeId> fanins) {
  MOSS_CHECK(!finalized_, "netlist already finalized");
  MOSS_CHECK(by_name_.find(name) == by_name_.end(),
             "duplicate node name: " + name);
  const cell::CellType& t = lib_->type(type);
  MOSS_CHECK(fanins.size() == static_cast<std::size_t>(t.num_inputs),
             "cell " + name + " (" + t.name + "): expected " +
                 std::to_string(t.num_inputs) + " fanins, got " +
                 std::to_string(fanins.size()));
  Node n;
  n.kind = NodeKind::kCell;
  n.type = type;
  n.name = name;
  n.fanin = std::move(fanins);
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  by_name_.emplace(name, id);
  ++num_cells_;
  if (t.is_flop()) flops_.push_back(id);
  return id;
}

NodeId Netlist::add_cell(const std::string& type_name, const std::string& name,
                         std::vector<NodeId> fanins) {
  const cell::CellTypeId t = lib_->find(type_name);
  MOSS_CHECK(t != cell::kInvalidCellType, "unknown cell type " + type_name);
  return add_cell(t, name, std::move(fanins));
}

void Netlist::connect(NodeId sink, int pin, NodeId driver) {
  MOSS_CHECK(!finalized_, "netlist already finalized");
  Node& n = mut(sink);
  MOSS_CHECK(pin >= 0 && static_cast<std::size_t>(pin) < n.fanin.size(),
             "pin index out of range on " + n.name);
  n.fanin[static_cast<std::size_t>(pin)] = driver;
}

void Netlist::set_rtl_register(NodeId flop, std::string register_bit) {
  Node& n = mut(flop);
  MOSS_CHECK(n.kind == NodeKind::kCell && lib_->type(n.type).is_flop(),
             "set_rtl_register on non-flop node " + n.name);
  n.rtl_register = std::move(register_bit);
}

void Netlist::finalize() {
  MOSS_CHECK(!finalized_, "finalize() called twice");

  // Validate connectivity and build fanout lists.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (std::size_t p = 0; p < n.fanin.size(); ++p) {
      MOSS_CHECK(n.fanin[p] != kInvalidNode,
                 "unconnected pin " + std::to_string(p) + " on " + n.name);
      MOSS_CHECK(n.fanin[p] >= 0 &&
                     static_cast<std::size_t>(n.fanin[p]) < nodes_.size(),
                 "fanin id out of range on " + n.name);
      MOSS_CHECK(nodes_[static_cast<std::size_t>(n.fanin[p])].kind !=
                     NodeKind::kPrimaryOutput,
                 "primary output cannot drive " + n.name);
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const NodeId d : nodes_[i].fanin) {
      nodes_[static_cast<std::size_t>(d)].fanout.push_back(
          static_cast<NodeId>(i));
    }
  }
  for (Node& n : nodes_) {
    std::sort(n.fanout.begin(), n.fanout.end());
    n.fanout.erase(std::unique(n.fanout.begin(), n.fanout.end()),
                   n.fanout.end());
  }

  // Kahn levelization of the combinational graph. Sources: PIs, tie cells
  // and flop outputs (a flop's Q is a new value each cycle, so its input
  // pins do not contribute to combinational depth).
  topo_.clear();
  topo_.reserve(nodes_.size());
  std::vector<int> pending(nodes_.size(), 0);
  std::deque<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const bool source =
        n.kind == NodeKind::kPrimaryInput ||
        (n.kind == NodeKind::kCell &&
         (lib_->type(n.type).is_flop() || lib_->type(n.type).is_tie()));
    if (source) {
      ready.push_back(static_cast<NodeId>(i));
      pending[i] = 0;
    } else {
      pending[i] = static_cast<int>(n.fanin.size());
      if (pending[i] == 0) ready.push_back(static_cast<NodeId>(i));
    }
  }
  max_level_ = 0;
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    topo_.push_back(id);
    Node& n = mut(id);
    const bool source =
        n.kind == NodeKind::kPrimaryInput ||
        (n.kind == NodeKind::kCell &&
         (lib_->type(n.type).is_flop() || lib_->type(n.type).is_tie()));
    if (source) {
      n.level = 0;
    } else if (n.kind == NodeKind::kPrimaryOutput) {
      // Ports don't add logic depth: a PO sits at its driver's level.
      n.level = nodes_[static_cast<std::size_t>(n.fanin[0])].level;
    } else {
      std::int32_t lvl = 0;
      for (const NodeId d : n.fanin) {
        lvl = std::max(lvl, nodes_[static_cast<std::size_t>(d)].level + 1);
      }
      n.level = lvl;
      max_level_ = std::max(max_level_, lvl);
    }
    for (const NodeId s : n.fanout) {
      const Node& sink = nodes_[static_cast<std::size_t>(s)];
      const bool sink_source =
          sink.kind == NodeKind::kCell &&
          (lib_->type(sink.type).is_flop() || lib_->type(sink.type).is_tie());
      if (sink_source) continue;  // flops were already enqueued as sources
      // A node with multiple pins fed by `id` decrements once per pin.
      int arcs = 0;
      for (const NodeId d : sink.fanin) {
        if (d == id) ++arcs;
      }
      pending[static_cast<std::size_t>(s)] -= arcs;
      if (pending[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  MOSS_CHECK(topo_.size() == nodes_.size(),
             "combinational cycle detected in netlist " + name_);
  finalized_ = true;
}

bool Netlist::is_flop(NodeId id) const {
  const Node& n = node(id);
  return n.kind == NodeKind::kCell && lib_->type(n.type).is_flop();
}

bool Netlist::is_comb_cell(NodeId id) const {
  const Node& n = node(id);
  return n.kind == NodeKind::kCell && lib_->type(n.type).is_comb();
}

const cell::CellType& Netlist::type_of(NodeId id) const {
  const Node& n = node(id);
  MOSS_CHECK(n.kind == NodeKind::kCell, "node " + n.name + " is a port");
  return lib_->type(n.type);
}

double Netlist::output_load(NodeId id) const {
  const Node& n = node(id);
  double load = 0.0;
  for (const NodeId s : n.fanout) {
    const Node& sink = node(s);
    if (sink.kind == NodeKind::kPrimaryOutput) {
      load += 4.0;  // assumed external pin load, fF
      continue;
    }
    const cell::CellType& t = lib_->type(sink.type);
    for (std::size_t p = 0; p < sink.fanin.size(); ++p) {
      if (sink.fanin[p] == id) load += t.pin_cap[p];
    }
  }
  // Simple wire-load model: 0.8 fF per fanout branch.
  load += 0.8 * static_cast<double>(n.fanout.size());
  return load;
}

double Netlist::total_area() const {
  double a = 0.0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kCell) a += lib_->type(n.type).area;
  }
  return a;
}

NodeId Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidNode : it->second;
}

NetlistStats stats(const Netlist& nl) {
  NetlistStats s;
  s.cells = nl.num_cells();
  s.flops = nl.flops().size();
  s.comb = nl.num_comb_cells();
  s.inputs = nl.inputs().size();
  s.outputs = nl.outputs().size();
  s.levels = nl.max_level();
  s.area = nl.total_area();
  return s;
}

}  // namespace moss::netlist
