#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/library.hpp"

namespace moss::netlist {

/// Node identifier within a Netlist (primary ports and cell instances share
/// one id space, so the netlist is directly usable as a graph).
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

enum class NodeKind : std::uint8_t {
  kPrimaryInput,
  kPrimaryOutput,
  kCell,
};

/// One node of the gate-level netlist graph. Every cell has exactly one
/// output net, so "node" and "net driver" coincide; edges are (driver,
/// sink-pin) pairs recoverable from the ordered `fanin` list.
struct Node {
  NodeKind kind = NodeKind::kCell;
  cell::CellTypeId type = cell::kInvalidCellType;  ///< kCell only
  std::string name;

  /// Ordered by sink pin index (pin k of the cell is driven by fanin[k]).
  /// Primary outputs have exactly one fanin; primary inputs none.
  std::vector<NodeId> fanin;
  /// Derived on finalize(): every node this node drives (deduplicated).
  std::vector<NodeId> fanout;

  /// For flop cells: the RTL register bit this DFF implements (e.g.
  /// "count[3]"). Provenance used by the RrNdM register-to-DFF alignment.
  std::string rtl_register;

  /// Combinational level: 0 for PIs/ties/flops (cycle sources), otherwise
  /// 1 + max(level of fanins). Set by finalize().
  std::int32_t level = 0;
};

/// Gate-level netlist over a standard-cell library: the structural modality
/// MOSS models with its GNN. Build with the add_* calls, then finalize()
/// to derive fanouts/levels and validate invariants.
class Netlist {
 public:
  explicit Netlist(const cell::CellLibrary& lib, std::string name = "top")
      : lib_(&lib), name_(std::move(name)) {}

  NodeId add_input(const std::string& name);
  NodeId add_output(const std::string& name, NodeId driver = kInvalidNode);
  /// Fanins may contain kInvalidNode placeholders patched later via connect().
  NodeId add_cell(cell::CellTypeId type, const std::string& name,
                  std::vector<NodeId> fanins);
  NodeId add_cell(const std::string& type_name, const std::string& name,
                  std::vector<NodeId> fanins);

  /// Set pin `pin` of node `sink` to be driven by `driver`.
  void connect(NodeId sink, int pin, NodeId driver);
  /// Record flop provenance (RTL register bit name).
  void set_rtl_register(NodeId flop, std::string register_bit);

  /// Derive fanout lists and levels; verifies that every pin is connected,
  /// pin counts match the cell types, and the combinational logic is acyclic
  /// (cycles through flops are fine — flops break them).
  void finalize();
  bool finalized() const { return finalized_; }

  // -- Queries ------------------------------------------------------------
  const cell::CellLibrary& library() const { return *lib_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& flops() const { return flops_; }

  /// Cell instances only (excludes primary ports).
  std::size_t num_cells() const { return num_cells_; }
  /// Combinational cell instances.
  std::size_t num_comb_cells() const { return num_cells_ - flops_.size(); }

  bool is_flop(NodeId id) const;
  bool is_comb_cell(NodeId id) const;
  const cell::CellType& type_of(NodeId id) const;

  /// Nodes in topological order for one combinational phase: PIs, ties and
  /// flops first (level 0), then combinational cells by ascending level.
  /// Available after finalize().
  const std::vector<NodeId>& topo_order() const { return topo_; }
  std::int32_t max_level() const { return max_level_; }

  /// Estimated capacitive load (fF) seen by a node's output: sum of driven
  /// pin caps plus a per-fanout wire estimate. Available after finalize().
  double output_load(NodeId id) const;

  /// Total cell area.
  double total_area() const;

  NodeId find(const std::string& name) const;

 private:
  Node& mut(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }

  const cell::CellLibrary* lib_;
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> flops_;
  std::vector<NodeId> topo_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::size_t num_cells_ = 0;
  std::int32_t max_level_ = 0;
  bool finalized_ = false;
};

/// Summary statistics used by dataset reports and benches.
struct NetlistStats {
  std::size_t cells = 0;
  std::size_t flops = 0;
  std::size_t comb = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::int32_t levels = 0;
  double area = 0.0;
};

NetlistStats stats(const Netlist& nl);

}  // namespace moss::netlist
