#include "netlist/writer.hpp"

#include "core_util/check.hpp"
#include "core_util/strings.hpp"

namespace moss::netlist {

namespace {

/// Bracketed bit names ("a[3]") become escaped identifiers in structural
/// Verilog; emit the simple escaped form "\a[3] " which all tools accept.
std::string net_name(const std::string& name) {
  if (name.find('[') == std::string::npos) return name;
  return "\\" + name + " ";
}

}  // namespace

std::string to_structural_verilog(const Netlist& nl) {
  MOSS_CHECK(nl.finalized(), "structural writer needs a finalized netlist");
  std::string out;
  out += "module " + nl.name() + " (\n";
  std::vector<std::string> ports;
  if (!nl.flops().empty()) ports.push_back("  input clk");
  for (const NodeId id : nl.inputs()) {
    ports.push_back("  input " + net_name(nl.node(id).name));
  }
  for (const NodeId id : nl.outputs()) {
    ports.push_back("  output " + net_name(nl.node(id).name));
  }
  out += join(ports, ",\n");
  out += "\n);\n";

  // One wire per cell output.
  for (const Node& n : nl.nodes()) {
    if (n.kind == NodeKind::kCell) {
      out += "  wire " + net_name("n_" + n.name) + ";\n";
    }
  }

  const auto driver_net = [&](NodeId id) {
    const Node& n = nl.node(id);
    return n.kind == NodeKind::kPrimaryInput ? net_name(n.name)
                                             : net_name("n_" + n.name);
  };

  for (const Node& n : nl.nodes()) {
    if (n.kind != NodeKind::kCell) continue;
    const cell::CellType& t = nl.library().type(n.type);
    out += "  " + t.name + " " + net_name(n.name) + " (";
    std::vector<std::string> pins;
    for (std::size_t p = 0; p < n.fanin.size(); ++p) {
      pins.push_back("." + t.pin_names[p] + "(" + driver_net(n.fanin[p]) +
                     ")");
    }
    if (t.is_flop()) pins.push_back(".CK(clk)");
    pins.push_back(".Y(" + net_name("n_" + n.name) + ")");
    out += join(pins, ", ");
    out += ");\n";
  }

  for (const NodeId id : nl.outputs()) {
    out += "  assign " + net_name(nl.node(id).name) + " = " +
           driver_net(nl.node(id).fanin[0]) + ";\n";
  }
  out += "endmodule\n";
  return out;
}

}  // namespace moss::netlist
