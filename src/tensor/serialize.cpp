#include "tensor/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

#include "core_util/check.hpp"
#include "core_util/crc32.hpp"
#include "core_util/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace moss::tensor {

namespace {

constexpr char kMagicV0[8] = {'M', 'O', 'S', 'S', 'C', 'K', 'P', 'T'};
constexpr char kMagicV1[8] = {'M', 'O', 'S', 'S', 'C', 'K', 'P', '1'};

/// Upper bounds that turn a corrupted length field into an immediate
/// structured error instead of a multi-gigabyte allocation.
constexpr std::uint64_t kMaxSections = 1u << 20;
constexpr std::uint64_t kMaxNameLen = 1u << 12;

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::string slurp(std::istream& in) {
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

}  // namespace

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

void ByteWriter::u32(std::uint32_t v) { put_u32(buf_, v); }
void ByteWriter::u64(std::uint64_t v) { put_u64(buf_, v); }

void ByteWriter::f32(float v) {
  char raw[4];
  std::memcpy(raw, &v, 4);
  buf_.append(raw, 4);
}

void ByteWriter::f64(double v) {
  char raw[8];
  std::memcpy(raw, &v, 8);
  buf_.append(raw, 8);
}

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

void ByteWriter::f32s(const std::vector<float>& v) {
  u64(v.size());
  bytes(v.data(), v.size() * sizeof(float));
}

void ByteWriter::f64s(const std::vector<double>& v) {
  u64(v.size());
  bytes(v.data(), v.size() * sizeof(double));
}

void ByteWriter::u64s(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void ByteWriter::bytes(const void* p, std::size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

const char* ByteReader::need(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ctx_.fail("checkpoint section truncated (need " + std::to_string(n) +
              " bytes, " + std::to_string(data_.size() - pos_) + " left)");
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint32_t ByteReader::u32() {
  const char* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

float ByteReader::f32() {
  float v;
  std::memcpy(&v, need(4), 4);
  return v;
}

double ByteReader::f64() {
  double v;
  std::memcpy(&v, need(8), 8);
  return v;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > kMaxNameLen) ctx_.fail("unreasonable string length in checkpoint");
  const char* p = need(static_cast<std::size_t>(n));
  return std::string(p, static_cast<std::size_t>(n));
}

std::vector<float> ByteReader::f32s() {
  const std::uint64_t n = u64();
  if (n * sizeof(float) > remaining()) {
    ctx_.fail("float array length exceeds section size");
  }
  std::vector<float> v(static_cast<std::size_t>(n));
  std::memcpy(v.data(), need(v.size() * sizeof(float)),
              v.size() * sizeof(float));
  return v;
}

std::vector<double> ByteReader::f64s() {
  const std::uint64_t n = u64();
  if (n * sizeof(double) > remaining()) {
    ctx_.fail("double array length exceeds section size");
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  std::memcpy(v.data(), need(v.size() * sizeof(double)),
              v.size() * sizeof(double));
  return v;
}

std::vector<std::uint64_t> ByteReader::u64s() {
  const std::uint64_t n = u64();
  if (n * 8 > remaining()) ctx_.fail("u64 array length exceeds section size");
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = u64();
  return v;
}

void ByteReader::expect_end() const {
  if (pos_ != data_.size()) {
    ErrorContext c = ctx_;
    c.fail("trailing bytes in checkpoint section (" +
           std::to_string(data_.size() - pos_) + " unread)");
  }
}

// ---------------------------------------------------------------------------
// CheckpointFile
// ---------------------------------------------------------------------------

void CheckpointFile::set(const std::string& name, std::string payload) {
  for (auto& s : sections_) {
    if (s.first == name) {
      s.second = std::move(payload);
      return;
    }
  }
  sections_.emplace_back(name, std::move(payload));
}

bool CheckpointFile::has(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.first == name) return true;
  }
  return false;
}

const std::string& CheckpointFile::get(const std::string& name,
                                       const ErrorContext& ctx) const {
  for (const auto& s : sections_) {
    if (s.first == name) return s.second;
  }
  ErrorContext c = ctx;
  c.add("section", name);
  c.fail("checkpoint section missing");
}

void CheckpointFile::write(std::ostream& out) const {
  out.write(kMagicV1, sizeof kMagicV1);
  std::string header;
  put_u32(header, kCheckpointVersion);
  put_u32(header, static_cast<std::uint32_t>(sections_.size()));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const auto& [name, payload] : sections_) {
    MOSS_FAULT_POINT("serialize.write_section");
    std::string head;
    put_u64(head, name.size());
    head += name;
    put_u64(head, payload.size());
    put_u32(head, crc32(payload));
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  if (!out.good()) {
    throw ContextError("checkpoint write failed (stream error)");
  }
}

CheckpointFile CheckpointFile::read(std::istream& in, ErrorContext ctx) {
  return read_string(slurp(in), std::move(ctx));
}

CheckpointFile CheckpointFile::read_string(std::string_view bytes,
                                           ErrorContext ctx) {
  ErrorContext hdr = ctx;
  hdr.add("section", "header");
  hdr.check(bytes.size() >= sizeof kMagicV1 + 8, "checkpoint truncated");
  hdr.check(std::memcmp(bytes.data(), kMagicV1, sizeof kMagicV1) == 0,
            "not a MOSS checkpoint (bad magic)");
  ByteReader header(bytes.substr(8), hdr);
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion) {
    ErrorContext c = hdr;
    c.fail("unsupported checkpoint format version " +
           std::to_string(version) + " (expected " +
           std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint32_t count = header.u32();
  hdr.check(count <= kMaxSections, "unreasonable checkpoint section count");

  CheckpointFile ckpt;
  std::size_t pos = 8 + 8;  // magic + version/count
  for (std::uint32_t i = 0; i < count; ++i) {
    ErrorContext sec = ctx;
    sec.add("section", "#" + std::to_string(i));
    ByteReader head(bytes.substr(pos), sec);
    const std::string name = head.str();
    sec.set("section", name.empty() ? "#" + std::to_string(i) : name);
    ByteReader sized(bytes.substr(pos + 8 + name.size()), sec);
    const std::uint64_t payload_len = sized.u64();
    const std::uint32_t stored_crc = sized.u32();
    const std::size_t payload_at = pos + 8 + name.size() + 8 + 4;
    sec.check(payload_at + payload_len <= bytes.size(),
              "checkpoint section truncated (payload of " +
                  std::to_string(payload_len) + " bytes extends past end)");
    const std::string_view payload = bytes.substr(payload_at,
                                                  payload_len);
    if (crc32(payload) != stored_crc) {
      sec.fail("checkpoint section crc mismatch (corrupt payload)");
    }
    sec.check(!ckpt.has(name), "duplicate checkpoint section");
    ckpt.set(name, std::string(payload));
    pos = payload_at + payload_len;
  }
  if (pos != bytes.size()) {
    ErrorContext c = ctx;
    c.add("section", "trailer");
    c.fail("trailing bytes after last checkpoint section (" +
           std::to_string(bytes.size() - pos) + " unread)");
  }
  return ckpt;
}

// ---------------------------------------------------------------------------
// ParameterSet <-> sections
// ---------------------------------------------------------------------------

void params_to_checkpoint(CheckpointFile& ckpt, const ParameterSet& params) {
  ByteWriter manifest;
  manifest.u64(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& t = params.tensors()[i];
    manifest.str(params.names()[i]);
    manifest.u64(t.rows());
    manifest.u64(t.cols());
  }
  ckpt.set("manifest", manifest.take());
  for (std::size_t i = 0; i < params.size(); ++i) {
    ByteWriter w;
    w.f32s(params.tensors()[i].data());
    ckpt.set("param:" + params.names()[i], w.take());
  }
}

void params_from_checkpoint(const CheckpointFile& ckpt, ParameterSet& params,
                            const ErrorContext& ctx) {
  ErrorContext mctx = ctx;
  mctx.add("section", "manifest");
  ByteReader manifest(ckpt.get("manifest", ctx), mctx);
  const std::uint64_t count = manifest.u64();
  mctx.check(count == params.size(),
             "checkpoint has " + std::to_string(count) +
                 " parameters, model has " + std::to_string(params.size()));

  // Validate the whole manifest and stage every payload before writing a
  // single float into the destination set.
  std::vector<std::vector<float>> staged(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::string name = manifest.str();
    const std::uint64_t rows = manifest.u64();
    const std::uint64_t cols = manifest.u64();
    ErrorContext pctx = mctx;
    pctx.add("param", name);
    pctx.check(name == params.names()[i],
               "checkpoint parameter order mismatch: expected '" +
                   params.names()[i] + "'");
    const Tensor& t = params.tensors()[i];
    pctx.check(rows == t.rows() && cols == t.cols(),
               "checkpoint shape mismatch: stored " + std::to_string(rows) +
                   "x" + std::to_string(cols) + ", model needs " +
                   std::to_string(t.rows()) + "x" +
                   std::to_string(t.cols()));
    ErrorContext sctx = ctx;
    sctx.add("section", "param:" + name);
    sctx.add("param", name);
    ByteReader pr(ckpt.get("param:" + name, sctx), sctx);
    staged[i] = pr.f32s();
    pr.expect_end();
    sctx.check(staged[i].size() == t.size(),
               "checkpoint data size mismatch: " +
                   std::to_string(staged[i].size()) + " floats for a " +
                   std::to_string(t.rows()) + "x" +
                   std::to_string(t.cols()) + " tensor");
  }
  manifest.expect_end();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params.tensors()[i].data() = std::move(staged[i]);
  }
}

void adam_to_checkpoint(CheckpointFile& ckpt, const Adam::Snapshot& snap) {
  ByteWriter w;
  w.u64(static_cast<std::uint64_t>(snap.t));
  w.u64(snap.m.size());
  for (std::size_t i = 0; i < snap.m.size(); ++i) {
    w.f32s(snap.m[i]);
    w.f32s(snap.v[i]);
  }
  ckpt.set("adam", w.take());
}

Adam::Snapshot adam_from_checkpoint(const CheckpointFile& ckpt,
                                    const ErrorContext& ctx) {
  ErrorContext actx = ctx;
  actx.add("section", "adam");
  ByteReader r(ckpt.get("adam", ctx), actx);
  Adam::Snapshot snap;
  snap.t = static_cast<std::int64_t>(r.u64());
  const std::uint64_t n = r.u64();
  actx.check(n <= kMaxSections, "unreasonable optimizer moment count");
  snap.m.resize(static_cast<std::size_t>(n));
  snap.v.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    snap.m[i] = r.f32s();
    snap.v[i] = r.f32s();
  }
  r.expect_end();
  return snap;
}

// ---------------------------------------------------------------------------
// Stream-level parameter checkpointing (v1 write, v0/v1 read)
// ---------------------------------------------------------------------------

void save_parameters(std::ostream& out, const ParameterSet& params) {
  CheckpointFile ckpt;
  params_to_checkpoint(ckpt, params);
  ckpt.write(out);
}

namespace {

/// Legacy v0 loader: magic | u64 count | per param: u64 name_len, name,
/// u64 rows, u64 cols, f32 data. No checksums — but every read is bounds-
/// checked and all data is staged before committing, so a truncated or
/// malformed v0 file raises instead of leaving params partially written.
void load_parameters_v0(std::string_view body, ParameterSet& params,
                        const ErrorContext& ctx) {
  ErrorContext v0 = ctx;
  v0.add("section", "v0");
  ByteReader r(body, v0);
  const std::uint64_t count = r.u64();
  v0.check(count == params.size(),
           "checkpoint has " + std::to_string(count) +
               " parameters, model has " + std::to_string(params.size()));
  std::vector<std::vector<float>> staged(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::string name = r.str();
    ErrorContext pctx = v0;
    pctx.add("param", name);
    pctx.check(name == params.names()[i],
               "checkpoint parameter order mismatch: expected '" +
                   params.names()[i] + "'");
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    Tensor& t = params.tensors()[i];
    pctx.check(rows == t.rows() && cols == t.cols(),
               "checkpoint shape mismatch");
    std::vector<float> data(t.size());
    if (r.remaining() < data.size() * sizeof(float)) {
      pctx.fail("checkpoint truncated in parameter data");
    }
    for (auto& f : data) f = r.f32();
    staged[i] = std::move(data);
  }
  r.expect_end();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params.tensors()[i].data() = std::move(staged[i]);
  }
}

void load_parameters_impl(std::istream& in, ParameterSet& params,
                          const ErrorContext& ctx) {
  const std::string bytes = slurp(in);
  if (bytes.size() >= 8 &&
      std::memcmp(bytes.data(), kMagicV0, sizeof kMagicV0) == 0) {
    load_parameters_v0(std::string_view(bytes).substr(8), params, ctx);
    return;
  }
  const CheckpointFile ckpt =
      CheckpointFile::read_string(bytes, ctx);
  params_from_checkpoint(ckpt, params, ctx);
}

}  // namespace

void load_parameters(std::istream& in, ParameterSet& params) {
  load_parameters_impl(in, params, ErrorContext{});
}

// ---------------------------------------------------------------------------
// Crash-safe file I/O
// ---------------------------------------------------------------------------

namespace {

#if defined(__unix__) || defined(__APPLE__)
void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
  if (fd < 0) return;  // fsync is best-effort hardening, not correctness
  ::fsync(fd);
  ::close(fd);
}
#else
void fsync_path(const std::string&, bool) {}
#endif

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash + 1);
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& producer) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw ContextError("cannot open checkpoint temp file for writing",
                         {{"file", tmp}});
    }
    try {
      producer(out);
    } catch (const ContextError& e) {
      // Torn temp files are expected on failure; the real file is intact.
      out.close();
      if (!e.context_value("file").empty()) throw;
      auto ctx = e.context();
      ctx.emplace_back("file", tmp);
      throw ContextError(e.message(), std::move(ctx));
    }
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      throw ContextError("short write to checkpoint temp file",
                         {{"file", tmp}});
    }
  }
  fsync_path(tmp, /*directory=*/false);
  MOSS_FAULT_POINT("serialize.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ContextError("atomic rename of checkpoint failed",
                       {{"file", path}});
  }
  fsync_path(parent_dir(path), /*directory=*/true);
}

void save_parameters_file(const std::string& path,
                          const ParameterSet& params) {
  CheckpointFile ckpt;
  params_to_checkpoint(ckpt, params);
  write_checkpoint_file(path, ckpt);
}

void load_parameters_file(const std::string& path, ParameterSet& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw ContextError("cannot open checkpoint", {{"file", path}});
  }
  ErrorContext ctx;
  ctx.add("file", path);
  load_parameters_impl(in, params, ctx);
}

void write_checkpoint_file(const std::string& path,
                           const CheckpointFile& ckpt) {
  atomic_write_file(path, [&](std::ostream& out) { ckpt.write(out); });
}

CheckpointFile read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw ContextError("cannot open checkpoint", {{"file", path}});
  }
  ErrorContext ctx;
  ctx.add("file", path);
  return CheckpointFile::read(in, ctx);
}

void FileBlob::reset() {
#if defined(__unix__) || defined(__APPLE__)
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
  map_ = nullptr;
  map_size_ = 0;
  owned_.clear();
}

FileBlob::~FileBlob() { reset(); }

FileBlob::FileBlob(FileBlob&& other) noexcept
    : map_(other.map_),
      map_size_(other.map_size_),
      owned_(std::move(other.owned_)) {
  other.map_ = nullptr;
  other.map_size_ = 0;
}

FileBlob& FileBlob::operator=(FileBlob&& other) noexcept {
  if (this != &other) {
    reset();
    map_ = other.map_;
    map_size_ = other.map_size_;
    owned_ = std::move(other.owned_);
    other.map_ = nullptr;
    other.map_size_ = 0;
  }
  return *this;
}

FileBlob FileBlob::read(const std::string& path, const ErrorContext& ctx,
                        bool use_mmap) {
  FileBlob blob;
#if defined(__unix__) || defined(__APPLE__)
  if (use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      ErrorContext c = ctx;
      c.set("file", path);
      c.fail("cannot open file");
    }
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      if (st.st_size == 0) {
        // Zero-length mmap is an error on POSIX; an empty blob is not.
        ::close(fd);
        return blob;
      }
      void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
      if (p != MAP_FAILED) {
        // The mapping holds its own reference to the file; the descriptor
        // is no longer needed.
        ::close(fd);
        blob.map_ = p;
        blob.map_size_ = static_cast<std::size_t>(st.st_size);
        return blob;
      }
    }
    // Mapping refused (pipe, special file, filesystem without mmap):
    // fall back to the copying path below.
    ::close(fd);
  }
#else
  (void)use_mmap;
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    ErrorContext c = ctx;
    c.set("file", path);
    c.fail("cannot open file");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  blob.owned_ = std::move(buf).str();
  return blob;
}

}  // namespace moss::tensor
