#include "tensor/serialize.hpp"

#include <cstring>
#include <fstream>

#include "core_util/check.hpp"

namespace moss::tensor {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'S', 'S', 'C', 'K', 'P', 'T'};

void write_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 8);
}

std::uint64_t read_u64(std::istream& in) {
  char buf[8];
  in.read(buf, 8);
  MOSS_CHECK(in.good(), "checkpoint truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void save_parameters(std::ostream& out, const ParameterSet& params) {
  out.write(kMagic, sizeof kMagic);
  write_u64(out, params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::string& name = params.names()[i];
    const Tensor& t = params.tensors()[i];
    write_u64(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(out, t.rows());
    write_u64(out, t.cols());
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  MOSS_CHECK(out.good(), "checkpoint write failed");
}

void load_parameters(std::istream& in, ParameterSet& params) {
  char magic[8];
  in.read(magic, sizeof magic);
  MOSS_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
             "not a MOSS checkpoint");
  const std::uint64_t count = read_u64(in);
  MOSS_CHECK(count == params.size(),
             "checkpoint has " + std::to_string(count) +
                 " parameters, model has " + std::to_string(params.size()));
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    MOSS_CHECK(name == params.names()[i],
               "checkpoint parameter order mismatch: expected '" +
                   params.names()[i] + "', found '" + name + "'");
    const std::uint64_t rows = read_u64(in);
    const std::uint64_t cols = read_u64(in);
    Tensor& t = params.tensors()[i];
    MOSS_CHECK(rows == t.rows() && cols == t.cols(),
               "checkpoint shape mismatch for " + name);
    in.read(reinterpret_cast<char*>(t.data().data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    MOSS_CHECK(in.good(), "checkpoint truncated in " + name);
  }
}

void save_parameters_file(const std::string& path,
                          const ParameterSet& params) {
  std::ofstream out(path, std::ios::binary);
  MOSS_CHECK(out.is_open(), "cannot open " + path + " for writing");
  save_parameters(out, params);
}

void load_parameters_file(const std::string& path, ParameterSet& params) {
  std::ifstream in(path, std::ios::binary);
  MOSS_CHECK(in.is_open(), "cannot open " + path);
  load_parameters(in, params);
}

}  // namespace moss::tensor
