#include "tensor/nn.hpp"

#include <cmath>

#include "core_util/check.hpp"

namespace moss::tensor {

void Adam::restore(const Snapshot& s) {
  MOSS_CHECK(s.m.size() == m_.size() && s.v.size() == v_.size(),
             "Adam::restore: moment count mismatch");
  for (std::size_t i = 0; i < m_.size(); ++i) {
    MOSS_CHECK(s.m[i].size() == m_[i].size() && s.v[i].size() == v_[i].size(),
               "Adam::restore: moment shape mismatch at parameter " +
                   std::to_string(i));
  }
  t_ = s.t;
  m_ = s.m;
  v_ = s.v;
}

void Adam::step(float clip) {
  ++t_;
  auto& tensors = params_->tensors();

  if (clip > 0.0f) {
    double norm_sq = 0.0;
    for (Tensor& p : tensors) {
      for (const float g : p.grad()) norm_sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > clip) {
      const float s = static_cast<float>(clip / norm);
      for (Tensor& p : tensors) {
        for (float& g : p.grad()) g *= s;
      }
    }
  }

  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    Tensor& p = tensors[i];
    auto& g = p.grad();
    auto& d = p.data();
    for (std::size_t j = 0; j < d.size(); ++j) {
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g[j];
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      d[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace moss::tensor
