// Blocked/SIMD compute kernels behind the moss::tensor autograd ops.
//
// This translation unit is compiled with extra flags (see
// src/tensor/CMakeLists.txt): -fopenmp-simd activates the `omp simd`
// pragmas, -march=native (option MOSS_NATIVE_KERNELS) widens the vectors,
// and -ffp-contract=off pins results: without it the compiler may contract
// a*b+c into fma(a,b,c), which rounds once instead of twice and would break
// the bit-exactness contract against the naive references.

#include "tensor/kernels.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "core_util/check.hpp"
#include "core_util/thread_pool.hpp"

namespace moss::tensor::kernels {

// ---------------------------------------------------------------------------
// ScratchArena
// ---------------------------------------------------------------------------

namespace detail {

namespace {
constexpr std::size_t kMaxCachedBuffers = 256;
constexpr std::size_t kMaxCachedBytes = std::size_t{256} << 20;
}  // namespace

namespace {
/// Class c holds buffers with capacity in [2^c, 2^(c+1)); a request of n
/// elements is served from any class >= ceil(log2(n)), found in O(1) via
/// the nonempty bitmask. A buffer handed out is therefore never more than
/// 4x the request (smallest nonempty class first), and nothing is ever
/// moved or scanned.
std::size_t class_of_capacity(std::size_t cap) {
  return static_cast<std::size_t>(std::bit_width(cap)) - 1;
}
std::size_t class_of_request(std::size_t n) {
  return n <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(n - 1));
}
}  // namespace

std::vector<float> BufferPool::acquire(std::size_t n) {
  if (n == 0) return {};
  std::vector<float> v;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t c = class_of_request(n);
    const std::uint64_t mask = c < kClasses ? nonempty_ >> c : 0;
    if (mask != 0) {
      const std::size_t cls =
          c + static_cast<std::size_t>(std::countr_zero(mask));
      auto& bucket = free_[cls];
      v = std::move(bucket.back());
      bucket.pop_back();
      if (bucket.empty()) nonempty_ &= ~(std::uint64_t{1} << cls);
      --count_;
      bytes_ -= v.capacity() * sizeof(float);
    }
  }
  v.assign(n, 0.0f);
  return v;
}

void BufferPool::release(std::vector<float>&& v) {
  if (v.capacity() == 0) return;
  std::vector<float> local = std::move(v);
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t cls = class_of_capacity(local.capacity());
  if (closed_ || cls >= kClasses || count_ >= kMaxCachedBuffers ||
      bytes_ + local.capacity() * sizeof(float) > kMaxCachedBytes) {
    return;  // dropped; frees on scope exit
  }
  bytes_ += local.capacity() * sizeof(float);
  ++count_;
  free_[cls].push_back(std::move(local));
  nonempty_ |= std::uint64_t{1} << cls;
}

void BufferPool::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  for (auto& bucket : free_) bucket.clear();
  nonempty_ = 0;
  count_ = 0;
  bytes_ = 0;
}

std::size_t BufferPool::cached_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::size_t BufferPool::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace detail

namespace {

thread_local std::shared_ptr<detail::BufferPool> tl_pool;

/// Per-thread fallback pool for kernel-internal scratch (transposes, fused
/// gradient staging) when no arena Scope is active.
const std::shared_ptr<detail::BufferPool>& fallback_pool() {
  thread_local std::shared_ptr<detail::BufferPool> pool =
      std::make_shared<detail::BufferPool>();
  return pool;
}

/// RAII zeroed scratch buffer from the active arena (or the thread-local
/// fallback), returned on destruction.
class Scratch {
 public:
  explicit Scratch(std::size_t n)
      : pool_(tl_pool ? tl_pool : fallback_pool()), v_(pool_->acquire(n)) {}
  ~Scratch() { pool_->release(std::move(v_)); }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  float* data() { return v_.data(); }

 private:
  std::shared_ptr<detail::BufferPool> pool_;
  std::vector<float> v_;
};

}  // namespace

ScratchArena::Scope::Scope(ScratchArena& arena) : prev_(std::move(tl_pool)) {
  tl_pool = arena.pool_;
}

ScratchArena::Scope::~Scope() { tl_pool = std::move(prev_); }

const std::shared_ptr<detail::BufferPool>& ScratchArena::current() {
  return tl_pool;
}

// ---------------------------------------------------------------------------
// Threading
// ---------------------------------------------------------------------------

namespace {

std::mutex g_run_mu;     // one threaded kernel region at a time
std::mutex g_config_mu;  // guards g_threads / g_pool
std::size_t g_threads = 0;  // 0 = read MOSS_KERNEL_THREADS on first use
std::unique_ptr<ThreadPool> g_pool;

std::size_t env_threads() {
  if (const char* e = std::getenv("MOSS_KERNEL_THREADS")) {
    const int v = std::atoi(e);
    if (v > 0) return static_cast<std::size_t>(v);
    if (v == 0 && e[0] == '0') return ThreadPool::hardware_threads();
  }
  return 1;
}

ThreadPool& shared_pool(std::size_t t) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  if (!g_pool || g_pool->size() != t) {
    g_pool = std::make_unique<ThreadPool>(t);
  }
  return *g_pool;
}

/// Rows per worker below which fan-out costs more than it saves.
constexpr std::size_t kMinRowsPerWorker = 64;

/// Run fn(lo, hi) over a partition of [0, M). `big` gates the threaded
/// path; each row belongs to exactly one invocation, so any partition is
/// bit-identical to fn(0, M). Contended or nested calls degrade to serial.
template <typename Fn>
void for_row_range(std::size_t M, bool big, Fn&& fn) {
  const std::size_t t = threads();
  if (big && t > 1 && M >= 2 * kMinRowsPerWorker) {
    std::unique_lock<std::mutex> lk(g_run_mu, std::try_to_lock);
    if (lk.owns_lock()) {
      const std::size_t parts =
          std::min(t, std::max<std::size_t>(1, M / kMinRowsPerWorker));
      if (parts > 1) {
        const std::size_t len = (M + parts - 1) / parts;
        shared_pool(t).parallel_for(0, parts, [&](std::size_t c) {
          const std::size_t lo = c * len;
          const std::size_t hi = std::min(lo + len, M);
          if (lo < hi) fn(lo, hi);
        });
        return;
      }
    }
  }
  fn(0, M);
}

}  // namespace

void set_threads(std::size_t n) {
  // Taking the run lock first keeps a live parallel_for from racing the
  // pool swap.
  std::lock_guard<std::mutex> run(g_run_mu);
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_threads = n == 0 ? ThreadPool::hardware_threads() : n;
  if (g_pool && g_pool->size() != g_threads) g_pool.reset();
}

std::size_t threads() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  if (g_threads == 0) g_threads = env_threads();
  return g_threads;
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

namespace {

/// K-tile: one tile of a 40-wide float row plus the accumulators stays
/// well inside L1 at these panel sizes; tiling also bounds the C reload
/// traffic for the large-K (concat) shapes.
constexpr std::size_t kKc = 256;

/// MR×NR register tile: C is loaded once, the k loop runs the serial
/// per-element chain in increasing k, and the store writes it back — the
/// exact accumulation order of the naive loop. The omp simd vectorizes
/// across j (independent output elements), never across k.
template <std::size_t MR, std::size_t NR>
inline void micro_tile(const float* const* __restrict a_rows, std::size_t k0,
                       std::size_t k1, const float* __restrict B,
                       std::size_t N, std::size_t n0,
                       float* const* __restrict c_rows) {
  float acc[MR][NR];
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t j = 0; j < NR; ++j) acc[i][j] = c_rows[i][n0 + j];
  for (std::size_t k = k0; k < k1; ++k) {
    const float* __restrict brow = B + k * N + n0;
    for (std::size_t i = 0; i < MR; ++i) {
      const float av = a_rows[i][k];
#pragma omp simd
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t j = 0; j < NR; ++j) c_rows[i][n0 + j] = acc[i][j];
}

/// One MR-row block across all of N: 16-wide panels, then 8/4/1 remainders
/// (still register-tiled, so N=40 or N=33 stays vectorized).
template <std::size_t MR>
inline void row_panel(const float* const* a_rows, std::size_t k0,
                      std::size_t k1, const float* B, std::size_t N,
                      float* const* c_rows) {
  std::size_t n = 0;
  for (; n + 16 <= N; n += 16) micro_tile<MR, 16>(a_rows, k0, k1, B, N, n, c_rows);
  if (n + 8 <= N) {
    micro_tile<MR, 8>(a_rows, k0, k1, B, N, n, c_rows);
    n += 8;
  }
  if (n + 4 <= N) {
    micro_tile<MR, 4>(a_rows, k0, k1, B, N, n, c_rows);
    n += 4;
  }
  for (; n < N; ++n) micro_tile<MR, 1>(a_rows, k0, k1, B, N, n, c_rows);
}

void gemm_range(std::size_t m0, std::size_t m1, std::size_t K, std::size_t N,
                const float* A, const int* a_idx, const float* B, float* C) {
  const auto arow = [&](std::size_t m) {
    return A + (a_idx ? static_cast<std::size_t>(a_idx[m]) : m) * K;
  };
  for (std::size_t k0 = 0; k0 < K; k0 += kKc) {
    const std::size_t k1 = std::min(k0 + kKc, K);
    std::size_t m = m0;
    for (; m + 4 <= m1; m += 4) {
      const float* ar[4] = {arow(m), arow(m + 1), arow(m + 2), arow(m + 3)};
      float* cr[4] = {C + m * N, C + (m + 1) * N, C + (m + 2) * N,
                      C + (m + 3) * N};
      row_panel<4>(ar, k0, k1, B, N, cr);
    }
    const std::size_t rem = m1 - m;
    if (rem == 3) {
      const float* ar[3] = {arow(m), arow(m + 1), arow(m + 2)};
      float* cr[3] = {C + m * N, C + (m + 1) * N, C + (m + 2) * N};
      row_panel<3>(ar, k0, k1, B, N, cr);
    } else if (rem == 2) {
      const float* ar[2] = {arow(m), arow(m + 1)};
      float* cr[2] = {C + m * N, C + (m + 1) * N};
      row_panel<2>(ar, k0, k1, B, N, cr);
    } else if (rem == 1) {
      const float* ar[1] = {arow(m)};
      float* cr[1] = {C + m * N};
      row_panel<1>(ar, k0, k1, B, N, cr);
    }
  }
}

/// dst[c*R + r] = src[r*C + c] (R×C -> C×R), tiled for cache.
void transpose_into(std::size_t R, std::size_t C, const float* src,
                    float* dst) {
  constexpr std::size_t kB = 32;
  for (std::size_t r0 = 0; r0 < R; r0 += kB) {
    const std::size_t r1 = std::min(r0 + kB, R);
    for (std::size_t c0 = 0; c0 < C; c0 += kB) {
      const std::size_t c1 = std::min(c0 + kB, C);
      for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = c0; c < c1; ++c) dst[c * R + r] = src[r * C + c];
    }
  }
}

/// dst[k*M + m] = A[a_idx?[m]*K + k]: transpose of the (gathered) A.
void gather_transpose_into(std::size_t M, std::size_t K, const float* A,
                           const int* a_idx, float* dst) {
  constexpr std::size_t kB = 32;
  for (std::size_t m0 = 0; m0 < M; m0 += kB) {
    const std::size_t m1 = std::min(m0 + kB, M);
    for (std::size_t k0 = 0; k0 < K; k0 += kB) {
      const std::size_t k1 = std::min(k0 + kB, K);
      for (std::size_t m = m0; m < m1; ++m) {
        const float* src =
            A + (a_idx ? static_cast<std::size_t>(a_idx[m]) : m) * K;
        for (std::size_t k = k0; k < k1; ++k) dst[k * M + m] = src[k];
      }
    }
  }
}

}  // namespace

void gemm(std::size_t M, std::size_t K, std::size_t N, const float* A,
          const float* B, float* C, const int* a_idx) {
  if (M == 0 || K == 0 || N == 0) return;
  const bool big = M * K * N >= (std::size_t{1} << 20);
  for_row_range(M, big, [&](std::size_t lo, std::size_t hi) {
    gemm_range(lo, hi, K, N, A, a_idx, B, C);
  });
}

void gemm_naive(std::size_t M, std::size_t K, std::size_t N, const float* A,
                const float* B, float* C, const int* a_idx) {
  if (M == 0 || K == 0 || N == 0) return;
  for (std::size_t m = 0; m < M; ++m) {
    const float* arow =
        A + (a_idx ? static_cast<std::size_t>(a_idx[m]) : m) * K;
    float* orow = C + m * N;
    for (std::size_t k = 0; k < K; ++k) {
      const float av = arow[k];
      const float* brow = B + k * N;
      for (std::size_t n = 0; n < N; ++n) orow[n] += av * brow[n];
    }
  }
}

void gemm_dA(std::size_t M, std::size_t K, std::size_t N, const float* G,
             const float* B, float* dA) {
  if (M == 0 || K == 0 || N == 0) return;
  // dA = G·Bᵀ as a standard gemm against Bᵀ. The naive backward computes a
  // fresh dot per element and adds it once, so gemm into zeroed scratch
  // (same chain as the fresh dot) then one add — gemm'ing straight into dA
  // would fold prior contents into the chain and change the rounding.
  Scratch bt(N * K);
  transpose_into(K, N, B, bt.data());
  Scratch acc(M * K);
  gemm(M, N, K, G, bt.data(), acc.data());
  const float* s = acc.data();
  const std::size_t total = M * K;
#pragma omp simd
  for (std::size_t i = 0; i < total; ++i) dA[i] += s[i];
}

void gemm_dA_naive(std::size_t M, std::size_t K, std::size_t N,
                   const float* G, const float* B, float* dA) {
  if (M == 0 || K == 0 || N == 0) return;
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t k = 0; k < K; ++k) {
      float acc = 0.0f;
      const float* grow = G + m * N;
      const float* brow = B + k * N;
      for (std::size_t n = 0; n < N; ++n) acc += grow[n] * brow[n];
      dA[m * K + k] += acc;
    }
  }
}

void gemm_dB(std::size_t M, std::size_t K, std::size_t N, const float* A,
             const float* G, float* dB, const int* a_idx) {
  if (M == 0 || K == 0 || N == 0) return;
  // dB += Aᵀ·G. The naive backward accumulates directly into dB in
  // increasing m order; gemm(K, M, N) over the transposed A runs the same
  // chain (m is the inner dimension), so no staging buffer is needed.
  Scratch at(K * M);
  gather_transpose_into(M, K, A, a_idx, at.data());
  gemm(K, M, N, at.data(), G, dB);
}

void gemm_dB_naive(std::size_t M, std::size_t K, std::size_t N,
                   const float* A, const float* G, float* dB,
                   const int* a_idx) {
  if (M == 0 || K == 0 || N == 0) return;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t m = 0; m < M; ++m) {
      const float av =
          A[(a_idx ? static_cast<std::size_t>(a_idx[m]) : m) * K + k];
      const float* grow = G + m * N;
      float* drow = dB + k * N;
      for (std::size_t n = 0; n < N; ++n) drow[n] += av * grow[n];
    }
  }
}

void rows_weighted_sum(const float* table, std::size_t D, const int* ids,
                       const float* w, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* __restrict trow =
        table + static_cast<std::size_t>(ids[i]) * D;
    const float wv = w ? w[i] : 1.0f;
#pragma omp simd
    for (std::size_t d = 0; d < D; ++d) out[d] += trow[d] * wv;
  }
}

// ---------------------------------------------------------------------------
// Fused autograd ops
// ---------------------------------------------------------------------------

Tensor matmul_bias_tanh(const Tensor& x, const Tensor& w, const Tensor& addend,
                        const Tensor& bias) {
  MOSS_CHECK(x.cols() == w.rows(), "matmul_bias_tanh: inner dim mismatch");
  const std::size_t M = x.rows(), K = x.cols(), N = w.cols();
  if (addend.defined()) {
    MOSS_CHECK(addend.rows() == M && addend.cols() == N,
               "matmul_bias_tanh: addend shape mismatch");
  }
  if (bias.defined()) {
    MOSS_CHECK(bias.rows() == 1 && bias.cols() == N,
               "matmul_bias_tanh: bias must be 1×N");
  }
  std::vector<Tensor> parents{x, w};
  if (addend.defined()) parents.push_back(addend);
  if (bias.defined()) parents.push_back(bias);
  Tensor out = Tensor::make(M, N, std::move(parents));

  float* O = out.data().data();
  gemm(M, K, N, x.data().data(), w.data().data(), O);
  const float* ad = addend.defined() ? addend.data().data() : nullptr;
  const float* bv = bias.defined() ? bias.data().data() : nullptr;
  for (std::size_t m = 0; m < M; ++m) {
    float* orow = O + m * N;
    for (std::size_t n = 0; n < N; ++n) {
      float v = orow[n];
      if (ad) v += ad[m * N + n];
      if (bv) v += bv[n];
      orow[n] = std::tanh(v);
    }
  }

  Tensor tx = x, tw = w, tad = addend, tb = bias;
  out.impl()->backward_fn = [tx, tw, tad, tb, M, K,
                             N](Tensor::Impl& self) mutable {
    const float* G = self.grad.data();
    const std::size_t total = M * N;
    // gg = G ⊙ (1 − y²): what the composed tanh node would have handed to
    // the add chain (the add nodes pass gradients through untouched).
    Scratch ggs(total);
    float* gg = ggs.data();
    for (std::size_t i = 0; i < total; ++i) {
      const float y = self.data[i];
      gg[i] = G[i] * (1.0f - y * y);
    }
    if (tb.defined() && tb.requires_grad()) {
      auto& g = tb.grad();
      for (std::size_t m = 0; m < M; ++m) {
        const float* row = gg + m * N;
        for (std::size_t n = 0; n < N; ++n) g[n] += row[n];
      }
    }
    if (tad.defined() && tad.requires_grad()) {
      auto& g = tad.grad();
      for (std::size_t i = 0; i < total; ++i) g[i] += gg[i];
    }
    if (tx.requires_grad()) {
      gemm_dA(M, K, N, gg, tw.data().data(), tx.grad().data());
    }
    if (tw.requires_grad()) {
      gemm_dB(M, K, N, tx.data().data(), gg, tw.grad().data());
    }
  };
  return out;
}

Tensor gather_matmul(const Tensor& x, const std::vector<int>& idx,
                     const Tensor& w) {
  MOSS_CHECK(x.cols() == w.rows(), "gather_matmul: inner dim mismatch");
  const std::size_t E = idx.size(), K = x.cols(), N = w.cols();
  for (const int i : idx) {
    MOSS_CHECK(i >= 0 && static_cast<std::size_t>(i) < x.rows(),
               "gather_matmul: index out of range");
  }
  Tensor out = Tensor::make(E, N, {x, w});
  gemm(E, K, N, x.data().data(), w.data().data(), out.data().data(),
       idx.data());

  Tensor tx = x, tw = w;
  out.impl()->backward_fn = [tx, tw, idx, E, K, N](Tensor::Impl& self) mutable {
    const float* G = self.grad.data();
    if (tx.requires_grad()) {
      // The composed pair stages dGathered (fresh dots) in the gather
      // node's grad, then scatter-adds it into x in edge order; do the
      // same through scratch.
      Scratch dgs(E * K);
      gemm_dA(E, K, N, G, tw.data().data(), dgs.data());
      const float* d = dgs.data();
      auto& g = tx.grad();
      for (std::size_t e = 0; e < E; ++e) {
        float* grow = g.data() + static_cast<std::size_t>(idx[e]) * K;
        const float* srow = d + e * K;
        for (std::size_t k = 0; k < K; ++k) grow[k] += srow[k];
      }
    }
    if (tw.requires_grad()) {
      gemm_dB(E, K, N, tx.data().data(), G, tw.grad().data(), idx.data());
    }
  };
  return out;
}

Tensor pack_rows(const std::vector<const Tensor*>& parts) {
  MOSS_CHECK(!parts.empty(), "pack_rows: no parts");
  MOSS_CHECK(parts[0] != nullptr && parts[0]->defined(),
             "pack_rows: undefined part");
  const std::size_t C = parts[0]->cols();
  std::size_t R = 0;
  for (const Tensor* p : parts) {
    MOSS_CHECK(p != nullptr && p->defined(), "pack_rows: undefined part");
    MOSS_CHECK(p->cols() == C, "pack_rows: column count mismatch");
    R += p->rows();
  }
  Tensor out = Tensor::make(R, C, {});
  float* dst = out.data().data();
  for (const Tensor* p : parts) {
    std::memcpy(dst, p->data().data(), p->size() * sizeof(float));
    dst += p->size();
  }
  return out;
}

Tensor slice_rows(const Tensor& x, std::size_t begin, std::size_t count) {
  MOSS_CHECK(x.defined(), "slice_rows: undefined tensor");
  MOSS_CHECK(begin + count <= x.rows(), "slice_rows: range out of bounds");
  const std::size_t C = x.cols();
  Tensor out = Tensor::make(count, C, {});
  std::memcpy(out.data().data(), x.data().data() + begin * C,
              count * C * sizeof(float));
  return out;
}

}  // namespace moss::tensor::kernels
