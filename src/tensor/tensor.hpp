#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core_util/rng.hpp"

namespace moss::tensor {

namespace kernels::detail {
class BufferPool;  // see tensor/kernels.hpp
}  // namespace kernels::detail

/// Dense 2-D float tensor with reverse-mode autograd (the PyTorch stand-in
/// all MOSS models train on). Value-semantics handle onto a shared node in
/// the autograd tape; building an op records a backward closure, and
/// Tensor::backward() on a scalar runs the tape in reverse topological
/// order, accumulating into each leaf's grad buffer.
///
/// Vectors are 1×C or N×1 tensors; scalars are 1×1.
class Tensor {
 public:
  Tensor() = default;

  static Tensor zeros(std::size_t rows, std::size_t cols,
                      bool requires_grad = false);
  static Tensor full(std::size_t rows, std::size_t cols, float value,
                     bool requires_grad = false);
  static Tensor from(std::vector<float> values, std::size_t rows,
                     std::size_t cols, bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  /// Gaussian init (mean 0) — used for parameter matrices.
  static Tensor randn(std::size_t rows, std::size_t cols, Rng& rng,
                      float stddev, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  std::size_t rows() const;
  std::size_t cols() const;
  std::size_t size() const { return rows() * cols(); }
  bool requires_grad() const;

  float at(std::size_t r, std::size_t c) const;
  float& at(std::size_t r, std::size_t c);
  float item() const;  ///< value of a 1×1 tensor

  const std::vector<float>& data() const;
  std::vector<float>& data();
  /// Gradient buffer (allocated zero on first use). Tensor is a
  /// reference-semantics handle (like torch.Tensor), so gradient access is
  /// allowed through const handles — backward closures rely on this.
  std::vector<float>& grad() const;
  void zero_grad();

  /// Run reverse-mode autodiff from this scalar.
  void backward();

  /// Detach from the tape: same storage, no history.
  Tensor detach() const;

  // internal — used by op implementations
  struct Impl;
  const std::shared_ptr<Impl>& impl() const { return impl_; }
  static Tensor make(std::size_t rows, std::size_t cols,
                     std::vector<Tensor> parents);
  /// Tape node sharing the data buffer of `storage` (in-place ops): same
  /// shape, no data of its own. Reads and writes go through buf().
  static Tensor make_alias(const Tensor& storage, std::vector<Tensor> parents);

 private:
  std::shared_ptr<Impl> impl_;
};

struct Tensor::Impl {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> data;
  std::vector<float> grad;
  bool requires_grad = false;
  /// In-place op marker: backward_fn must run even when no gradient reached
  /// this node, because it also restores the shared buffer to its
  /// forward-time state for the nodes upstream.
  bool inplace = false;
  std::vector<Tensor> parents;
  /// Storage owner when this node is an in-place view (data stays empty);
  /// flattened, so chains of in-place ops stay one hop deep.
  std::shared_ptr<Impl> alias;
  /// Recycling pool the data/grad buffers return to on destruction (set by
  /// Tensor::make under an active kernels::ScratchArena::Scope).
  std::shared_ptr<kernels::detail::BufferPool> pool;
  std::function<void(Impl&)> backward_fn;  ///< reads self.grad, writes parents

  ~Impl();  // returns buffers to `pool`

  /// The value buffer: own data, or the storage owner's for in-place views.
  std::vector<float>& buf() { return alias ? alias->data : data; }
  const std::vector<float>& buf() const { return alias ? alias->data : data; }

  /// Gradient buffer sized rows*cols (not data.size(): in-place views own
  /// no data), zeroed on first use.
  std::vector<float>& ensure_grad();
};

/// RAII scope that redirects *leaf* gradient accumulation on the current
/// thread into private buffers — the worker-local gradient buffers behind
/// data-parallel training.
///
/// While a GradSandbox is active, Tensor::grad() on a leaf that requires
/// grad (i.e. a trainable parameter — no parents, no tape history) returns
/// a buffer owned by the sandbox instead of the parameter's shared grad
/// vector. Intermediate tape nodes are created per forward pass and stay
/// thread-private, so with one sandbox per worker, several threads can run
/// backward() against the same parameters concurrently without touching
/// shared state. The caller then reduces the collected buffers into the
/// real parameter grads in a fixed order, keeping the result bit-identical
/// to the serial schedule.
///
/// Sandboxes nest (the innermost wins) and must be destroyed on the thread
/// that created them.
class GradSandbox {
 public:
  using Buffers = std::unordered_map<const Tensor::Impl*, std::vector<float>>;

  GradSandbox();
  ~GradSandbox();
  GradSandbox(const GradSandbox&) = delete;
  GradSandbox& operator=(const GradSandbox&) = delete;

  /// Private buffer for a leaf impl, zero-initialized on first use.
  std::vector<float>& buffer_for(Tensor::Impl& impl);
  /// Collected buffer for `t`, or nullptr if no gradient reached it.
  const std::vector<float>* find(const Tensor& t) const;
  /// Move the collected buffers out (the sandbox continues empty).
  Buffers take() { return std::move(buffers_); }

  /// Innermost sandbox active on this thread, or nullptr.
  static GradSandbox* current();

 private:
  Buffers buffers_;
  GradSandbox* prev_ = nullptr;
};

/// Accumulate sandbox-collected gradients into the real grad buffers of the
/// tensors in `params` (in `params` order): grad += scale * buffer. Tensors
/// without a collected buffer are skipped. Call without an active sandbox.
void accumulate_grads(std::vector<Tensor>& params,
                      const GradSandbox::Buffers& buffers, float scale = 1.0f);

// ---------------------------------------------------------------------------
// Elementwise & scalar ops
// ---------------------------------------------------------------------------

/// a + b. b may also be a 1×C row vector broadcast over a's rows.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  ///< elementwise (same shape)
/// Row-scale: out[r,c] = a[r,c] * v[r,0] (v is N×1). Used to weight
/// per-edge messages by attention coefficients.
Tensor mul_colvec(const Tensor& a, const Tensor& v);
Tensor scale(const Tensor& a, float s);
/// a * s where s is a learnable 1×1 tensor.
Tensor scale_by(const Tensor& a, const Tensor& s);
Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float slope = 0.01f);
/// log(1 + e^x): smooth nonnegative activation whose gradient never dies —
/// use instead of relu at an output layer.
Tensor softplus(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor exp_t(const Tensor& a);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }

// ---------------------------------------------------------------------------
// Linear algebra & shape ops
// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);
Tensor concat_cols(const Tensor& a, const Tensor& b);
Tensor concat_rows(const std::vector<Tensor>& parts);
/// Select rows by index (differentiable scatter-add on backward).
Tensor gather_rows(const Tensor& x, const std::vector<int>& idx);
/// Functional row update: copy of `base` with base[idx[i]] replaced by
/// rows[i]. Indices must be unique. Gradient flows to the surviving rows of
/// `base` and to `rows` — the core primitive of level-asynchronous GNN
/// updates.
Tensor scatter_rows(const Tensor& base, const std::vector<int>& idx,
                    const Tensor& rows);
/// In-place scatter_rows: the returned tensor shares `base`'s buffer and
/// only the touched rows are written (O(|idx|·C) instead of O(V·C)), with
/// identical values and gradients. The overwritten rows are saved and
/// restored during this node's backward, so earlier tape nodes that read
/// the buffer in their backward see it in its forward-time state (reverse
/// topological order guarantees the restores replay newest-first). Contract:
/// after calling this, `base` (and any other view of the buffer) must only
/// be read through the returned tensor's tape — the GNN propagation loop,
/// which rebinds h each step, satisfies this by construction.
Tensor scatter_rows_(const Tensor& base, const std::vector<int>& idx,
                     const Tensor& rows);
/// Sum rows into segments: out[s] = Σ_{i: seg[i]==s} x[i].
Tensor segment_sum(const Tensor& x, const std::vector<int>& seg,
                   std::size_t num_segments);
/// Per-segment softmax over an N×1 score column.
Tensor segment_softmax(const Tensor& scores, const std::vector<int>& seg,
                       std::size_t num_segments);
Tensor softmax_rows(const Tensor& a);
/// Mean over all rows -> 1×C.
Tensor mean_rows(const Tensor& a);
Tensor sum_all(const Tensor& a);
Tensor mean_all(const Tensor& a);
/// Row-wise L2 normalization (as in CLIP-style alignment).
Tensor l2_normalize_rows(const Tensor& a, float eps = 1e-8f);

// ---------------------------------------------------------------------------
// Losses (all return 1×1 scalars)
// ---------------------------------------------------------------------------

/// Smooth-L1 (Huber, delta=1) between same-shape tensors, mean-reduced.
Tensor smooth_l1_loss(const Tensor& pred, const Tensor& target);
Tensor mse_loss(const Tensor& pred, const Tensor& target);
/// Cross entropy over rows of logits (N×C) with integer labels (size N).
Tensor cross_entropy_rows(const Tensor& logits, const std::vector<int>& labels);
/// Binary cross entropy with logits (elementwise, mean-reduced).
Tensor bce_with_logits(const Tensor& logits, const Tensor& targets);

}  // namespace moss::tensor
