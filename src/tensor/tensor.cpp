#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core_util/check.hpp"
#include "tensor/kernels.hpp"

namespace moss::tensor {

namespace {

Tensor::Impl& deref(const std::shared_ptr<Tensor::Impl>& p) {
  MOSS_CHECK(p != nullptr, "use of an undefined Tensor");
  return *p;
}

}  // namespace

Tensor::Impl::~Impl() {
  if (pool) {
    pool->release(std::move(data));
    pool->release(std::move(grad));
  }
}

std::vector<float>& Tensor::Impl::ensure_grad() {
  if (grad.empty()) {
    const std::size_t n = rows * cols;
    if (pool) {
      grad = pool->acquire(n);
    } else {
      grad.assign(n, 0.0f);
    }
  }
  return grad;
}

Tensor Tensor::make(std::size_t rows, std::size_t cols,
                    std::vector<Tensor> parents) {
  Tensor t;
  t.impl_ = std::make_shared<Impl>();
  t.impl_->rows = rows;
  t.impl_->cols = cols;
  if (const auto& pool = kernels::ScratchArena::current()) {
    t.impl_->pool = pool;
    t.impl_->data = pool->acquire(rows * cols);
  } else {
    t.impl_->data.assign(rows * cols, 0.0f);
  }
  bool rg = false;
  for (const Tensor& p : parents) rg = rg || p.requires_grad();
  t.impl_->requires_grad = rg;
  t.impl_->parents = std::move(parents);
  return t;
}

Tensor Tensor::make_alias(const Tensor& storage, std::vector<Tensor> parents) {
  const std::shared_ptr<Impl>& owner = storage.impl();
  MOSS_CHECK(owner != nullptr, "make_alias of an undefined Tensor");
  Tensor t;
  t.impl_ = std::make_shared<Impl>();
  t.impl_->rows = owner->rows;
  t.impl_->cols = owner->cols;
  t.impl_->alias = owner->alias ? owner->alias : owner;
  if (const auto& pool = kernels::ScratchArena::current()) {
    t.impl_->pool = pool;  // recycles the grad buffer; data stays empty
  }
  bool rg = false;
  for (const Tensor& p : parents) rg = rg || p.requires_grad();
  t.impl_->requires_grad = rg;
  t.impl_->parents = std::move(parents);
  return t;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols, bool requires_grad) {
  Tensor t = make(rows, cols, {});
  t.impl_->requires_grad = requires_grad;
  return t;
}

Tensor Tensor::full(std::size_t rows, std::size_t cols, float value,
                    bool requires_grad) {
  Tensor t = zeros(rows, cols, requires_grad);
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::from(std::vector<float> values, std::size_t rows,
                    std::size_t cols, bool requires_grad) {
  MOSS_CHECK(values.size() == rows * cols, "from(): size mismatch");
  Tensor t = zeros(rows, cols, requires_grad);
  if (t.impl_->pool) t.impl_->pool->release(std::move(t.impl_->data));
  t.impl_->data = std::move(values);
  return t;
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return from({value}, 1, 1, requires_grad);
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols, Rng& rng,
                     float stddev, bool requires_grad) {
  Tensor t = zeros(rows, cols, requires_grad);
  for (float& v : t.impl_->data) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

std::size_t Tensor::rows() const { return deref(impl_).rows; }
std::size_t Tensor::cols() const { return deref(impl_).cols; }
bool Tensor::requires_grad() const { return deref(impl_).requires_grad; }

float Tensor::at(std::size_t r, std::size_t c) const {
  const Impl& i = deref(impl_);
  MOSS_CHECK(r < i.rows && c < i.cols, "tensor index out of range");
  return i.buf()[r * i.cols + c];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  Impl& i = deref(impl_);
  MOSS_CHECK(r < i.rows && c < i.cols, "tensor index out of range");
  return i.buf()[r * i.cols + c];
}

float Tensor::item() const {
  const Impl& i = deref(impl_);
  MOSS_CHECK(i.rows == 1 && i.cols == 1, "item() needs a 1x1 tensor");
  return i.buf()[0];
}

const std::vector<float>& Tensor::data() const { return deref(impl_).buf(); }
std::vector<float>& Tensor::data() { return deref(impl_).buf(); }

std::vector<float>& Tensor::grad() const {
  Impl& i = deref(impl_);
  // Leaves with grad are trainable parameters, the only tape nodes shared
  // across threads; an active sandbox owns their gradient on this thread.
  if (GradSandbox* sb = GradSandbox::current();
      sb != nullptr && i.requires_grad && i.parents.empty()) {
    return sb->buffer_for(i);
  }
  return i.ensure_grad();
}

namespace {

thread_local GradSandbox* tl_sandbox = nullptr;

}  // namespace

GradSandbox::GradSandbox() : prev_(tl_sandbox) { tl_sandbox = this; }

GradSandbox::~GradSandbox() { tl_sandbox = prev_; }

GradSandbox* GradSandbox::current() { return tl_sandbox; }

std::vector<float>& GradSandbox::buffer_for(Tensor::Impl& impl) {
  std::vector<float>& buf = buffers_[&impl];
  if (buf.empty()) buf.assign(impl.rows * impl.cols, 0.0f);
  return buf;
}

const std::vector<float>* GradSandbox::find(const Tensor& t) const {
  const auto it = buffers_.find(t.impl().get());
  return it == buffers_.end() ? nullptr : &it->second;
}

void accumulate_grads(std::vector<Tensor>& params,
                      const GradSandbox::Buffers& buffers, float scale) {
  for (Tensor& p : params) {
    const auto it = buffers.find(p.impl().get());
    if (it == buffers.end()) continue;
    auto& g = p.grad();
    const std::vector<float>& src = it->second;
    MOSS_CHECK(src.size() == g.size(), "accumulate_grads: size mismatch");
    if (scale == 1.0f) {
      for (std::size_t i = 0; i < g.size(); ++i) g[i] += src[i];
    } else {
      for (std::size_t i = 0; i < g.size(); ++i) g[i] += src[i] * scale;
    }
  }
}

void Tensor::zero_grad() {
  Impl& i = deref(impl_);
  std::fill(i.grad.begin(), i.grad.end(), 0.0f);
}

Tensor Tensor::detach() const {
  const Impl& i = deref(impl_);
  return Tensor::from(i.buf(), i.rows, i.cols, false);
}

void Tensor::backward() {
  Impl& root = deref(impl_);
  MOSS_CHECK(root.rows == 1 && root.cols == 1,
             "backward() starts from a scalar loss");
  // Topological order via iterative DFS.
  std::vector<Impl*> topo;
  std::unordered_set<Impl*> visited;
  struct Frame {
    Impl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack{{&root, 0}};
  visited.insert(&root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Impl* p = f.node->parents[f.next_parent].impl().get();
      ++f.next_parent;
      if (p && !visited.count(p)) {
        visited.insert(p);
        stack.push_back(Frame{p, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  root.ensure_grad()[0] = 1.0f;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Impl* n = *it;
    // In-place nodes run unconditionally: their backward also restores the
    // shared buffer for the nodes upstream of them.
    if (n->backward_fn && (n->inplace || !n->grad.empty())) n->backward_fn(*n);
  }
}

// ---------------------------------------------------------------------------
// Op helpers
// ---------------------------------------------------------------------------

namespace {

/// Accumulate src into the grad buffer of `t` (no-op if !requires_grad).
void accumulate(const Tensor& t, const float* src, std::size_t n) {
  if (!t.requires_grad()) return;
  auto& g = t.grad();
  for (std::size_t i = 0; i < n; ++i) g[i] += src[i];
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  if (a.rows() == b.rows() && a.cols() == b.cols()) {
    Tensor out = Tensor::make(a.rows(), a.cols(), {a, b});
    const auto& av = a.data();
    const auto& bv = b.data();
    auto& ov = out.data();
    for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] + bv[i];
    out.impl()->backward_fn = [a, b](Tensor::Impl& self) mutable {
      accumulate(a, self.grad.data(), self.grad.size());
      accumulate(b, self.grad.data(), self.grad.size());
    };
    return out;
  }
  // Row-vector broadcast: b is 1×C.
  MOSS_CHECK(b.rows() == 1 && b.cols() == a.cols(),
             "add: shapes incompatible");
  Tensor out = Tensor::make(a.rows(), a.cols(), {a, b});
  const std::size_t C = a.cols();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      out.data()[r * C + c] = a.data()[r * C + c] + b.data()[c];
    }
  }
  out.impl()->backward_fn = [a, b, C](Tensor::Impl& self) mutable {
    accumulate(a, self.grad.data(), self.grad.size());
    if (b.requires_grad()) {
      auto& g = b.grad();
      for (std::size_t r = 0; r < self.rows; ++r) {
        for (std::size_t c = 0; c < C; ++c) g[c] += self.grad[r * C + c];
      }
    }
  };
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  MOSS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "sub: shape mismatch");
  Tensor out = Tensor::make(a.rows(), a.cols(), {a, b});
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = a.data()[i] - b.data()[i];
  }
  out.impl()->backward_fn = [a, b](Tensor::Impl& self) mutable {
    accumulate(a, self.grad.data(), self.grad.size());
    if (b.requires_grad()) {
      auto& g = b.grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        g[i] -= self.grad[i];
      }
    }
  };
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  MOSS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "mul: shape mismatch");
  Tensor out = Tensor::make(a.rows(), a.cols(), {a, b});
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
  out.impl()->backward_fn = [a, b](Tensor::Impl& self) mutable {
    if (a.requires_grad()) {
      auto& g = a.grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        g[i] += self.grad[i] * b.data()[i];
      }
    }
    if (b.requires_grad()) {
      auto& g = b.grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        g[i] += self.grad[i] * a.data()[i];
      }
    }
  };
  return out;
}

Tensor mul_colvec(const Tensor& a, const Tensor& v) {
  MOSS_CHECK(v.rows() == a.rows() && v.cols() == 1,
             "mul_colvec: v must be N×1");
  const std::size_t R = a.rows(), C = a.cols();
  Tensor out = Tensor::make(R, C, {a, v});
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      out.data()[r * C + c] = a.data()[r * C + c] * v.data()[r];
    }
  }
  Tensor ta = a, tv = v;
  out.impl()->backward_fn = [ta, tv, R, C](Tensor::Impl& self) mutable {
    if (ta.requires_grad()) {
      auto& g = ta.grad();
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t c = 0; c < C; ++c) {
          g[r * C + c] += self.grad[r * C + c] * tv.data()[r];
        }
      }
    }
    if (tv.requires_grad()) {
      auto& g = tv.grad();
      for (std::size_t r = 0; r < R; ++r) {
        float acc = 0.0f;
        for (std::size_t c = 0; c < C; ++c) {
          acc += self.grad[r * C + c] * ta.data()[r * C + c];
        }
        g[r] += acc;
      }
    }
  };
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = Tensor::make(a.rows(), a.cols(), {a});
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = a.data()[i] * s;
  }
  out.impl()->backward_fn = [a, s](Tensor::Impl& self) mutable {
    if (a.requires_grad()) {
      auto& g = a.grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        g[i] += self.grad[i] * s;
      }
    }
  };
  return out;
}

Tensor scale_by(const Tensor& a, const Tensor& s) {
  MOSS_CHECK(s.rows() == 1 && s.cols() == 1, "scale_by: s must be 1x1");
  Tensor out = Tensor::make(a.rows(), a.cols(), {a, s});
  const float sv = s.data()[0];
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = a.data()[i] * sv;
  }
  out.impl()->backward_fn = [a, s, sv](Tensor::Impl& self) mutable {
    if (a.requires_grad()) {
      auto& g = a.grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        g[i] += self.grad[i] * sv;
      }
    }
    if (s.requires_grad()) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        acc += self.grad[i] * a.data()[i];
      }
      s.grad()[0] += acc;
    }
  };
  return out;
}

namespace {

template <typename Fwd, typename Dfn>
Tensor unary_elementwise(const Tensor& a, Fwd fwd, Dfn dfn) {
  Tensor out = Tensor::make(a.rows(), a.cols(), {a});
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    out.data()[i] = fwd(a.data()[i]);
  }
  out.impl()->backward_fn = [a, dfn](Tensor::Impl& self) mutable {
    if (!a.requires_grad()) return;
    auto& g = a.grad();
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      // dfn receives (input, output)
      g[i] += self.grad[i] * dfn(a.data()[i], self.data[i]);
    }
  };
  return out;
}

}  // namespace

Tensor relu(const Tensor& a) {
  return unary_elementwise(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor leaky_relu(const Tensor& a, float slope) {
  return unary_elementwise(
      a, [slope](float x) { return x > 0 ? x : slope * x; },
      [slope](float x, float) { return x > 0 ? 1.0f : slope; });
}

Tensor softplus(const Tensor& a) {
  return unary_elementwise(
      a,
      [](float x) {
        // numerically stable: max(x,0) + log1p(exp(-|x|))
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::abs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor tanh_t(const Tensor& a) {
  return unary_elementwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_elementwise(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor exp_t(const Tensor& a) {
  return unary_elementwise(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  MOSS_CHECK(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  Tensor out = Tensor::make(M, N, {a, b});
  // Blocked kernels (tensor/kernels.hpp), bit-identical to the reference
  // triple loop. The historical `av == 0.0f` fast path is gone on purpose:
  // it silently ate IEEE propagation (0·NaN must stay NaN), letting a
  // poisoned activation masquerade as a clean zero.
  kernels::gemm(M, K, N, a.data().data(), b.data().data(),
                out.data().data());
  out.impl()->backward_fn = [a, b, M, K, N](Tensor::Impl& self) mutable {
    const float* G = self.grad.data();
    if (a.requires_grad()) {  // dA = G · Bᵀ
      kernels::gemm_dA(M, K, N, G, b.data().data(), a.grad().data());
    }
    if (b.requires_grad()) {  // dB = Aᵀ · G
      kernels::gemm_dB(M, K, N, a.data().data(), G, b.grad().data());
    }
  };
  return out;
}

Tensor transpose(const Tensor& a) {
  const std::size_t R = a.rows(), C = a.cols();
  Tensor out = Tensor::make(C, R, {a});
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      out.data()[c * R + r] = a.data()[r * C + c];
    }
  }
  out.impl()->backward_fn = [a, R, C](Tensor::Impl& self) mutable {
    if (!a.requires_grad()) return;
    auto& g = a.grad();
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        g[r * C + c] += self.grad[c * R + r];
      }
    }
  };
  return out;
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  MOSS_CHECK(a.rows() == b.rows(), "concat_cols: row count mismatch");
  const std::size_t R = a.rows(), CA = a.cols(), CB = b.cols();
  Tensor out = Tensor::make(R, CA + CB, {a, b});
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < CA; ++c) {
      out.data()[r * (CA + CB) + c] = a.data()[r * CA + c];
    }
    for (std::size_t c = 0; c < CB; ++c) {
      out.data()[r * (CA + CB) + CA + c] = b.data()[r * CB + c];
    }
  }
  out.impl()->backward_fn = [a, b, R, CA, CB](Tensor::Impl& self) mutable {
    if (a.requires_grad()) {
      auto& g = a.grad();
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t c = 0; c < CA; ++c) {
          g[r * CA + c] += self.grad[r * (CA + CB) + c];
        }
      }
    }
    if (b.requires_grad()) {
      auto& g = b.grad();
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t c = 0; c < CB; ++c) {
          g[r * CB + c] += self.grad[r * (CA + CB) + CA + c];
        }
      }
    }
  };
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  MOSS_CHECK(!parts.empty(), "concat_rows of nothing");
  const std::size_t C = parts[0].cols();
  std::size_t R = 0;
  for (const Tensor& p : parts) {
    MOSS_CHECK(p.cols() == C, "concat_rows: column mismatch");
    R += p.rows();
  }
  Tensor out = Tensor::make(R, C, parts);
  std::size_t row = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data().begin(), p.data().end(),
              out.data().begin() + static_cast<std::ptrdiff_t>(row * C));
    row += p.rows();
  }
  out.impl()->backward_fn = [parts, C](Tensor::Impl& self) {
    std::size_t row = 0;
    for (Tensor p : parts) {
      const std::size_t n = p.rows() * C;
      if (p.requires_grad()) {
        auto& g = p.grad();
        for (std::size_t i = 0; i < n; ++i) g[i] += self.grad[row * C + i];
      }
      row += p.rows();
    }
  };
  return out;
}

Tensor gather_rows(const Tensor& x, const std::vector<int>& idx) {
  const std::size_t C = x.cols();
  Tensor out = Tensor::make(idx.size(), C, {x});
  for (std::size_t r = 0; r < idx.size(); ++r) {
    MOSS_CHECK(idx[r] >= 0 && static_cast<std::size_t>(idx[r]) < x.rows(),
               "gather_rows: index out of range");
    std::copy_n(x.data().begin() + static_cast<std::ptrdiff_t>(
                                       static_cast<std::size_t>(idx[r]) * C),
                C, out.data().begin() + static_cast<std::ptrdiff_t>(r * C));
  }
  out.impl()->backward_fn = [x, idx, C](Tensor::Impl& self) mutable {
    if (!x.requires_grad()) return;
    auto& g = x.grad();
    for (std::size_t r = 0; r < idx.size(); ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        g[static_cast<std::size_t>(idx[r]) * C + c] += self.grad[r * C + c];
      }
    }
  };
  return out;
}

Tensor scatter_rows(const Tensor& base, const std::vector<int>& idx,
                    const Tensor& rows) {
  MOSS_CHECK(rows.rows() == idx.size(), "scatter_rows: one index per row");
  MOSS_CHECK(rows.cols() == base.cols(), "scatter_rows: column mismatch");
  const std::size_t C = base.cols();
  Tensor out = Tensor::make(base.rows(), C, {base, rows});
  out.data() = base.data();
  std::vector<char> replaced(base.rows(), 0);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    MOSS_CHECK(idx[r] >= 0 && static_cast<std::size_t>(idx[r]) < base.rows(),
               "scatter_rows: index out of range");
    MOSS_CHECK(!replaced[static_cast<std::size_t>(idx[r])],
               "scatter_rows: duplicate index");
    replaced[static_cast<std::size_t>(idx[r])] = 1;
    std::copy_n(rows.data().begin() + static_cast<std::ptrdiff_t>(r * C), C,
                out.data().begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(idx[r]) * C));
  }
  Tensor b = base, rw = rows;
  out.impl()->backward_fn = [b, rw, idx, C,
                             replaced](Tensor::Impl& self) mutable {
    if (b.requires_grad()) {
      auto& g = b.grad();
      for (std::size_t r = 0; r < b.rows(); ++r) {
        if (replaced[r]) continue;
        for (std::size_t c = 0; c < C; ++c) {
          g[r * C + c] += self.grad[r * C + c];
        }
      }
    }
    if (rw.requires_grad()) {
      auto& g = rw.grad();
      for (std::size_t r = 0; r < idx.size(); ++r) {
        for (std::size_t c = 0; c < C; ++c) {
          g[r * C + c] +=
              self.grad[static_cast<std::size_t>(idx[r]) * C + c];
        }
      }
    }
  };
  return out;
}

Tensor scatter_rows_(const Tensor& base, const std::vector<int>& idx,
                     const Tensor& rows) {
  MOSS_CHECK(rows.rows() == idx.size(), "scatter_rows_: one index per row");
  MOSS_CHECK(rows.cols() == base.cols(), "scatter_rows_: column mismatch");
  const std::size_t C = base.cols();
  Tensor out = Tensor::make_alias(base, {base, rows});
  std::vector<float>& buf = out.impl()->buf();
  std::vector<char> replaced(base.rows(), 0);
  // Save the rows being overwritten; backward puts them back so every node
  // upstream sees the buffer exactly as it was at its own forward time.
  std::vector<float> saved(idx.size() * C);
  const std::vector<float>& rv = rows.data();
  for (std::size_t r = 0; r < idx.size(); ++r) {
    MOSS_CHECK(idx[r] >= 0 && static_cast<std::size_t>(idx[r]) < base.rows(),
               "scatter_rows_: index out of range");
    const std::size_t dst = static_cast<std::size_t>(idx[r]);
    MOSS_CHECK(!replaced[dst], "scatter_rows_: duplicate index");
    replaced[dst] = 1;
    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(dst * C), C,
                saved.begin() + static_cast<std::ptrdiff_t>(r * C));
    std::copy_n(rv.begin() + static_cast<std::ptrdiff_t>(r * C), C,
                buf.begin() + static_cast<std::ptrdiff_t>(dst * C));
  }
  out.impl()->inplace = true;
  Tensor b = base, rw = rows;
  out.impl()->backward_fn = [b, rw, idx, C, replaced,
                             saved = std::move(saved)](
                                Tensor::Impl& self) mutable {
    // Same gradient routing as the functional scatter_rows.
    if (!self.grad.empty()) {
      if (b.requires_grad()) {
        auto& g = b.grad();
        for (std::size_t r = 0; r < b.rows(); ++r) {
          if (replaced[r]) continue;
          for (std::size_t c = 0; c < C; ++c) {
            g[r * C + c] += self.grad[r * C + c];
          }
        }
      }
      if (rw.requires_grad()) {
        auto& g = rw.grad();
        for (std::size_t r = 0; r < idx.size(); ++r) {
          for (std::size_t c = 0; c < C; ++c) {
            g[r * C + c] +=
                self.grad[static_cast<std::size_t>(idx[r]) * C + c];
          }
        }
      }
    }
    // Undo this step's writes (reverse topological order runs these
    // restores newest-first, rewinding the buffer step by step).
    std::vector<float>& buf = self.buf();
    for (std::size_t r = 0; r < idx.size(); ++r) {
      std::copy_n(saved.begin() + static_cast<std::ptrdiff_t>(r * C), C,
                  buf.begin() +
                      static_cast<std::ptrdiff_t>(
                          static_cast<std::size_t>(idx[r]) * C));
    }
  };
  return out;
}

Tensor segment_sum(const Tensor& x, const std::vector<int>& seg,
                   std::size_t num_segments) {
  MOSS_CHECK(seg.size() == x.rows(), "segment_sum: one segment id per row");
  const std::size_t C = x.cols();
  Tensor out = Tensor::make(num_segments, C, {x});
  for (std::size_t r = 0; r < seg.size(); ++r) {
    MOSS_CHECK(seg[r] >= 0 && static_cast<std::size_t>(seg[r]) < num_segments,
               "segment_sum: segment id out of range");
    for (std::size_t c = 0; c < C; ++c) {
      out.data()[static_cast<std::size_t>(seg[r]) * C + c] +=
          x.data()[r * C + c];
    }
  }
  out.impl()->backward_fn = [x, seg, C](Tensor::Impl& self) mutable {
    if (!x.requires_grad()) return;
    auto& g = x.grad();
    for (std::size_t r = 0; r < seg.size(); ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        g[r * C + c] += self.grad[static_cast<std::size_t>(seg[r]) * C + c];
      }
    }
  };
  return out;
}

Tensor segment_softmax(const Tensor& scores, const std::vector<int>& seg,
                       std::size_t num_segments) {
  MOSS_CHECK(scores.cols() == 1, "segment_softmax expects an N×1 column");
  MOSS_CHECK(seg.size() == scores.rows(), "segment ids size mismatch");
  const std::size_t N = scores.rows();
  Tensor out = Tensor::make(N, 1, {scores});
  // max per segment for numerical stability
  std::vector<float> seg_max(num_segments, -1e30f);
  for (std::size_t i = 0; i < N; ++i) {
    seg_max[static_cast<std::size_t>(seg[i])] =
        std::max(seg_max[static_cast<std::size_t>(seg[i])], scores.data()[i]);
  }
  std::vector<float> seg_sum(num_segments, 0.0f);
  for (std::size_t i = 0; i < N; ++i) {
    const float e =
        std::exp(scores.data()[i] - seg_max[static_cast<std::size_t>(seg[i])]);
    out.data()[i] = e;
    seg_sum[static_cast<std::size_t>(seg[i])] += e;
  }
  for (std::size_t i = 0; i < N; ++i) {
    out.data()[i] /= std::max(seg_sum[static_cast<std::size_t>(seg[i])],
                              1e-20f);
  }
  Tensor s = scores;
  out.impl()->backward_fn = [s, seg, num_segments](Tensor::Impl& self) mutable {
    if (!s.requires_grad()) return;
    // d/ds_i = y_i (g_i - Σ_j∈seg y_j g_j)
    std::vector<float> seg_dot(num_segments, 0.0f);
    for (std::size_t i = 0; i < self.rows; ++i) {
      seg_dot[static_cast<std::size_t>(seg[i])] +=
          self.data[i] * self.grad[i];
    }
    auto& g = s.grad();
    for (std::size_t i = 0; i < self.rows; ++i) {
      g[i] += self.data[i] *
              (self.grad[i] - seg_dot[static_cast<std::size_t>(seg[i])]);
    }
  };
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  const std::size_t R = a.rows(), C = a.cols();
  Tensor out = Tensor::make(R, C, {a});
  for (std::size_t r = 0; r < R; ++r) {
    float mx = -1e30f;
    for (std::size_t c = 0; c < C; ++c) mx = std::max(mx, a.at(r, c));
    float sum = 0.0f;
    for (std::size_t c = 0; c < C; ++c) {
      const float e = std::exp(a.at(r, c) - mx);
      out.data()[r * C + c] = e;
      sum += e;
    }
    for (std::size_t c = 0; c < C; ++c) out.data()[r * C + c] /= sum;
  }
  Tensor in = a;
  out.impl()->backward_fn = [in, R, C](Tensor::Impl& self) mutable {
    if (!in.requires_grad()) return;
    auto& g = in.grad();
    for (std::size_t r = 0; r < R; ++r) {
      float dot = 0.0f;
      for (std::size_t c = 0; c < C; ++c) {
        dot += self.data[r * C + c] * self.grad[r * C + c];
      }
      for (std::size_t c = 0; c < C; ++c) {
        g[r * C + c] += self.data[r * C + c] * (self.grad[r * C + c] - dot);
      }
    }
  };
  return out;
}

Tensor mean_rows(const Tensor& a) {
  const std::size_t R = a.rows(), C = a.cols();
  Tensor out = Tensor::make(1, C, {a});
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) out.data()[c] += a.data()[r * C + c];
  }
  const float inv = 1.0f / static_cast<float>(R);
  for (std::size_t c = 0; c < C; ++c) out.data()[c] *= inv;
  Tensor in = a;
  out.impl()->backward_fn = [in, R, C, inv](Tensor::Impl& self) mutable {
    if (!in.requires_grad()) return;
    auto& g = in.grad();
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t c = 0; c < C; ++c) g[r * C + c] += self.grad[c] * inv;
    }
  };
  return out;
}

Tensor sum_all(const Tensor& a) {
  Tensor out = Tensor::make(1, 1, {a});
  float s = 0.0f;
  for (const float v : a.data()) s += v;
  out.data()[0] = s;
  Tensor in = a;
  out.impl()->backward_fn = [in](Tensor::Impl& self) mutable {
    if (!in.requires_grad()) return;
    auto& g = in.grad();
    for (float& v : g) v += self.grad[0];
  };
  return out;
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0f / static_cast<float>(a.size()));
}

Tensor l2_normalize_rows(const Tensor& a, float eps) {
  const std::size_t R = a.rows(), C = a.cols();
  Tensor out = Tensor::make(R, C, {a});
  std::vector<float> norms(R, 0.0f);
  for (std::size_t r = 0; r < R; ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < C; ++c) {
      s += a.data()[r * C + c] * a.data()[r * C + c];
    }
    norms[r] = std::sqrt(s) + eps;
    for (std::size_t c = 0; c < C; ++c) {
      out.data()[r * C + c] = a.data()[r * C + c] / norms[r];
    }
  }
  Tensor in = a;
  out.impl()->backward_fn = [in, R, C, norms](Tensor::Impl& self) mutable {
    if (!in.requires_grad()) return;
    auto& g = in.grad();
    for (std::size_t r = 0; r < R; ++r) {
      float dot = 0.0f;  // y · grad
      for (std::size_t c = 0; c < C; ++c) {
        dot += self.data[r * C + c] * self.grad[r * C + c];
      }
      for (std::size_t c = 0; c < C; ++c) {
        g[r * C + c] +=
            (self.grad[r * C + c] - self.data[r * C + c] * dot) / norms[r];
      }
    }
  };
  return out;
}

Tensor smooth_l1_loss(const Tensor& pred, const Tensor& target) {
  MOSS_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols(),
             "smooth_l1: shape mismatch");
  Tensor out = Tensor::make(1, 1, {pred, target});
  const std::size_t n = pred.size();
  float total = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred.data()[i] - target.data()[i];
    total += std::abs(d) < 1.0f ? 0.5f * d * d : std::abs(d) - 0.5f;
  }
  out.data()[0] = total / static_cast<float>(n);
  Tensor p = pred, t = target;
  out.impl()->backward_fn = [p, t, n](Tensor::Impl& self) mutable {
    const float go = self.grad[0] / static_cast<float>(n);
    const auto d_of = [&](std::size_t i) {
      const float d = p.data()[i] - t.data()[i];
      return std::abs(d) < 1.0f ? d : (d > 0 ? 1.0f : -1.0f);
    };
    if (p.requires_grad()) {
      auto& g = p.grad();
      for (std::size_t i = 0; i < n; ++i) g[i] += go * d_of(i);
    }
    if (t.requires_grad()) {
      auto& g = t.grad();
      for (std::size_t i = 0; i < n; ++i) g[i] -= go * d_of(i);
    }
  };
  return out;
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  MOSS_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols(),
             "mse: shape mismatch");
  Tensor out = Tensor::make(1, 1, {pred, target});
  const std::size_t n = pred.size();
  float total = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred.data()[i] - target.data()[i];
    total += d * d;
  }
  out.data()[0] = total / static_cast<float>(n);
  Tensor p = pred, t = target;
  out.impl()->backward_fn = [p, t, n](Tensor::Impl& self) mutable {
    const float go = 2.0f * self.grad[0] / static_cast<float>(n);
    if (p.requires_grad()) {
      auto& g = p.grad();
      for (std::size_t i = 0; i < n; ++i) {
        g[i] += go * (p.data()[i] - t.data()[i]);
      }
    }
    if (t.requires_grad()) {
      auto& g = t.grad();
      for (std::size_t i = 0; i < n; ++i) {
        g[i] -= go * (p.data()[i] - t.data()[i]);
      }
    }
  };
  return out;
}

Tensor cross_entropy_rows(const Tensor& logits,
                          const std::vector<int>& labels) {
  MOSS_CHECK(labels.size() == logits.rows(), "cross_entropy: one label/row");
  const std::size_t R = logits.rows(), C = logits.cols();
  // Compute softmax probabilities (saved for backward).
  Tensor out = Tensor::make(1, 1, {logits});
  std::vector<float> probs(R * C);
  float loss = 0.0f;
  for (std::size_t r = 0; r < R; ++r) {
    MOSS_CHECK(labels[r] >= 0 && static_cast<std::size_t>(labels[r]) < C,
               "cross_entropy: label out of range");
    float mx = -1e30f;
    for (std::size_t c = 0; c < C; ++c) {
      mx = std::max(mx, logits.data()[r * C + c]);
    }
    float sum = 0.0f;
    for (std::size_t c = 0; c < C; ++c) {
      probs[r * C + c] = std::exp(logits.data()[r * C + c] - mx);
      sum += probs[r * C + c];
    }
    for (std::size_t c = 0; c < C; ++c) probs[r * C + c] /= sum;
    loss -= std::log(std::max(
        probs[r * C + static_cast<std::size_t>(labels[r])], 1e-12f));
  }
  out.data()[0] = loss / static_cast<float>(R);
  Tensor in = logits;
  out.impl()->backward_fn = [in, labels, probs, R, C](
                                Tensor::Impl& self) mutable {
    if (!in.requires_grad()) return;
    const float go = self.grad[0] / static_cast<float>(R);
    auto& g = in.grad();
    for (std::size_t r = 0; r < R; ++r) {
      for (std::size_t c = 0; c < C; ++c) {
        const float y =
            c == static_cast<std::size_t>(labels[r]) ? 1.0f : 0.0f;
        g[r * C + c] += go * (probs[r * C + c] - y);
      }
    }
  };
  return out;
}

Tensor bce_with_logits(const Tensor& logits, const Tensor& targets) {
  MOSS_CHECK(logits.rows() == targets.rows() &&
                 logits.cols() == targets.cols(),
             "bce: shape mismatch");
  Tensor out = Tensor::make(1, 1, {logits, targets});
  const std::size_t n = logits.size();
  float loss = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = logits.data()[i];
    const float t = targets.data()[i];
    // log(1+exp(-|x|)) + max(x,0) - x*t  (numerically stable)
    loss += std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0f) - x * t;
  }
  out.data()[0] = loss / static_cast<float>(n);
  Tensor l = logits, t = targets;
  out.impl()->backward_fn = [l, t, n](Tensor::Impl& self) mutable {
    if (!l.requires_grad()) return;
    const float go = self.grad[0] / static_cast<float>(n);
    auto& g = l.grad();
    for (std::size_t i = 0; i < n; ++i) {
      const float sig = 1.0f / (1.0f + std::exp(-l.data()[i]));
      g[i] += go * (sig - t.data()[i]);
    }
  };
  return out;
}

}  // namespace moss::tensor
