#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.hpp"

namespace moss::tensor::kernels {

// ---------------------------------------------------------------------------
// Raw GEMM kernels (float32, row-major)
// ---------------------------------------------------------------------------
//
// Contract: every blocked kernel is bit-identical to its *_naive reference at
// any thread count. The per-element reduction over the inner dimension is a
// single serial float chain in increasing index order — blocking only changes
// *which* independent output elements are in flight together, never the
// order of adds within one element — and the kernel translation unit is built
// with -ffp-contract=off so no FMA contraction can reassociate it either.

/// C[m,n] (+)= Σ_k A[m,k]·B[k,n]; accumulation continues from C's current
/// contents. `a_idx` (optional) makes logical row m read physical row
/// a_idx[m] of A — the fused gather_rows form (A then has any row count
/// covering the indices).
void gemm(std::size_t M, std::size_t K, std::size_t N, const float* A,
          const float* B, float* C, const int* a_idx = nullptr);
/// Reference triple loop with identical semantics (no zero-skip: 0·NaN
/// propagates, matching IEEE).
void gemm_naive(std::size_t M, std::size_t K, std::size_t N, const float* A,
                const float* B, float* C, const int* a_idx = nullptr);

/// dA[m,k] += Σ_n G[m,n]·B[k,n]  (dA += G·Bᵀ): each element is a fresh dot
/// in increasing n order, added into dA once — exactly the autograd matmul
/// backward for the left operand.
void gemm_dA(std::size_t M, std::size_t K, std::size_t N, const float* G,
             const float* B, float* dA);
void gemm_dA_naive(std::size_t M, std::size_t K, std::size_t N, const float* G,
                   const float* B, float* dA);

/// dB[k,n] += Σ_m A[m,k]·G[m,n]  (dB += Aᵀ·G), accumulating into dB in
/// increasing m order — the autograd matmul backward for the right operand.
/// `a_idx` selects rows of A as in gemm (gather_matmul backward).
void gemm_dB(std::size_t M, std::size_t K, std::size_t N, const float* A,
             const float* G, float* dB, const int* a_idx = nullptr);
void gemm_dB_naive(std::size_t M, std::size_t K, std::size_t N, const float* A,
                   const float* G, float* dB, const int* a_idx = nullptr);

/// out[d] += Σ_i w[i]·table[ids[i], d] in increasing i order (w == nullptr
/// means unit weights) — the LM bag-of-tokens pooling kernel.
void rows_weighted_sum(const float* table, std::size_t D, const int* ids,
                       const float* w, std::size_t n, float* out);

// ---------------------------------------------------------------------------
// Threading
// ---------------------------------------------------------------------------
//
// Large-M GEMMs are row-partitioned over a lazily created moss::ThreadPool.
// Each output row is owned by exactly one worker and a row's reduction chain
// does not depend on the partition, so results are bit-identical at any
// thread count. Default is 1 (serial) unless MOSS_KERNEL_THREADS is set;
// nested use from inside another pool's worker degrades to serial.

/// Set the kernel worker count (0 = hardware concurrency). Thread-safe, but
/// callers should quiesce in-flight kernels first (benches do).
void set_threads(std::size_t n);
std::size_t threads();

// ---------------------------------------------------------------------------
// ScratchArena — reusable buffer pool behind Tensor::make
// ---------------------------------------------------------------------------

namespace detail {

/// Mutex-guarded freelist of float buffers. acquire() returns a zeroed
/// vector of exactly n elements, reusing a cached allocation when one fits;
/// release() caches the allocation for reuse (dropped once the pool is
/// closed or over budget). Safe to use from any thread.
///
/// Buffers are binned by power-of-two capacity class with a nonempty-class
/// bitmask, making both operations O(1) with no per-operation heap traffic.
/// This matters: the pool fronts *every* tensor allocation while a Scope is
/// active, so even a binary-searched flat freelist (memmove on insert)
/// showed up as a multi-x throughput loss on allocation-dense serve paths.
class BufferPool {
 public:
  std::vector<float> acquire(std::size_t n);
  void release(std::vector<float>&& v);
  /// Stop caching and drop what is cached (late releases are then freed
  /// normally). Called by ~ScratchArena so escaped tensors stay valid.
  void close();

  std::size_t cached_buffers() const;
  std::size_t cached_bytes() const;

 private:
  static constexpr std::size_t kClasses = 48;  // capacities up to 2^47
  mutable std::mutex mu_;
  std::array<std::vector<std::vector<float>>, kClasses> free_;
  std::uint64_t nonempty_ = 0;  ///< bit c set iff free_[c] has a buffer
  std::size_t count_ = 0;
  std::size_t bytes_ = 0;
  bool closed_ = false;
};

}  // namespace detail

/// Recycles tensor data/grad allocations across forward/backward passes.
///
/// While a Scope is active on a thread, Tensor::make acquires buffers from
/// the arena's pool and each Impl returns them on destruction, so
/// steady-state training and inference stop calling the allocator. Tensors
/// may outlive the Scope — and even the arena — safely: each Impl holds a
/// shared_ptr to the pool, and a destroyed arena closes its pool so late
/// releases simply free.
///
/// One arena can back many threads at once (the pool is mutex'd); activation
/// is per-thread via Scope, which nests like GradSandbox.
class ScratchArena {
 public:
  ScratchArena() : pool_(std::make_shared<detail::BufferPool>()) {}
  ~ScratchArena() { pool_->close(); }
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// RAII activation on the current thread (innermost wins).
  class Scope {
   public:
    explicit Scope(ScratchArena& arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::shared_ptr<detail::BufferPool> prev_;
  };

  /// Pool active on this thread (empty shared_ptr when none).
  static const std::shared_ptr<detail::BufferPool>& current();

  std::size_t cached_buffers() const { return pool_->cached_buffers(); }
  std::size_t cached_bytes() const { return pool_->cached_bytes(); }

 private:
  std::shared_ptr<detail::BufferPool> pool_;
};

// ---------------------------------------------------------------------------
// Fused autograd ops
// ---------------------------------------------------------------------------

/// tanh(x·W [+ addend] [+ bias]) without materializing the intermediates.
/// `addend` (optional, M×N) and `bias` (optional, 1×N row-broadcast) may be
/// undefined Tensors. Forward and all gradients are bit-identical to the
/// composed tanh_t(add(add(matmul(x, w), addend), bias)). The non-GRU
/// aggregator update and the GNN input projection route through this.
Tensor matmul_bias_tanh(const Tensor& x, const Tensor& w, const Tensor& addend,
                        const Tensor& bias);

/// gather_rows(x, idx)·W without materializing the gathered rows: the GEMM
/// reads x through the row indices. Bit-identical (forward and gradients) to
/// matmul(gather_rows(x, idx), w). The per-edge message transform routes
/// through this.
Tensor gather_matmul(const Tensor& x, const std::vector<int>& idx,
                     const Tensor& w);

// ---------------------------------------------------------------------------
// Row pack / split (cross-request fused batching)
// ---------------------------------------------------------------------------

/// Stack row-major matrices vertically into one (Σ rows)×cols matrix by
/// strided row copy. Every part must share the column count. Each output
/// row is byte-identical to its source row, and the result is a detached
/// leaf (no tape node): the fused serve path packs inference-only feature
/// matrices and detaches everything it derives from them.
Tensor pack_rows(const std::vector<const Tensor*>& parts);

/// Rows [begin, begin + count) of x as a fresh detached matrix (byte-exact
/// row copies) — the per-request split of a fused batch result.
Tensor slice_rows(const Tensor& x, std::size_t begin, std::size_t count);

}  // namespace moss::tensor::kernels
