#pragma once

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core_util/error.hpp"
#include "tensor/nn.hpp"

namespace moss::tensor {

/// Checkpoint container format (v1):
///
///   magic "MOSSCKP1" | u32 format_version | u32 section_count
///   per section: u64 name_len, name, u64 payload_bytes, u32 crc32, payload
///
/// All integers little-endian; floats raw IEEE-754. Every section carries
/// its byte count and a CRC32 of its payload, so truncation, bit-flips and
/// torn writes are detected at load time with an error naming the failing
/// section. The legacy v0 format (magic "MOSSCKPT", no version, no
/// checksums) is still read by load_parameters.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Little-endian append-only buffer used to build section payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);
  /// u64 length + raw bytes.
  void str(std::string_view s);
  /// u64 count + raw floats.
  void f32s(const std::vector<float>& v);
  /// u64 count + raw doubles.
  void f64s(const std::vector<double>& v);
  /// u64 count + u64 values.
  void u64s(const std::vector<std::uint64_t>& v);
  void bytes(const void* p, std::size_t n);

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a section payload. Overruns and malformed
/// lengths raise ContextError carrying the reader's context frames (file,
/// section, …) — never a silent short read.
class ByteReader {
 public:
  ByteReader(std::string_view data, ErrorContext ctx)
      : data_(data), ctx_(std::move(ctx)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();
  std::string str();
  std::vector<float> f32s();
  std::vector<double> f64s();
  std::vector<std::uint64_t> u64s();

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Fail unless the payload was consumed exactly.
  void expect_end() const;
  const ErrorContext& context() const { return ctx_; }

 private:
  const char* need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  ErrorContext ctx_;
};

/// An ordered set of named, checksummed sections — the v1 checkpoint
/// container. Readers verify per-section byte counts and CRC32 before any
/// payload is interpreted.
class CheckpointFile {
 public:
  /// Add or replace a section (insertion order is preserved on write).
  void set(const std::string& name, std::string payload);
  bool has(const std::string& name) const;
  /// Payload of `name`; fails with a structured error naming the missing
  /// section otherwise.
  const std::string& get(const std::string& name,
                         const ErrorContext& ctx) const;
  const std::vector<std::pair<std::string, std::string>>& sections() const {
    return sections_;
  }

  void write(std::ostream& out) const;
  /// Parse and integrity-check an entire v1 stream. `ctx` frames (e.g.
  /// file=path) prefix every error raised.
  static CheckpointFile read(std::istream& in, ErrorContext ctx);
  static CheckpointFile read_string(std::string_view bytes, ErrorContext ctx);

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Serialize a ParameterSet as v1 sections ("manifest" + one "param:<name>"
/// section per tensor) into / out of a CheckpointFile. Loading validates
/// the manifest (count, names, shapes) and stages all data before touching
/// the destination — a failed load never leaves `params` partially
/// overwritten.
void params_to_checkpoint(CheckpointFile& ckpt, const ParameterSet& params);
void params_from_checkpoint(const CheckpointFile& ckpt, ParameterSet& params,
                            const ErrorContext& ctx);

/// Adam optimizer state as an "adam" section.
void adam_to_checkpoint(CheckpointFile& ckpt, const Adam::Snapshot& snap);
Adam::Snapshot adam_from_checkpoint(const CheckpointFile& ckpt,
                                    const ErrorContext& ctx);

/// Stream-level parameter checkpointing (v1 on write; v0 or v1 on read).
void save_parameters(std::ostream& out, const ParameterSet& params);
void load_parameters(std::istream& in, ParameterSet& params);

/// Crash-safe file write: `producer` streams into `path + ".tmp"`, which is
/// flushed, fsync'd and atomically renamed over `path`. A crash (or
/// injected fault) at any point leaves the previous `path` intact.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& producer);

/// File-path wrappers. Saving is atomic (see atomic_write_file); loading
/// errors carry a file=… context frame.
void save_parameters_file(const std::string& path, const ParameterSet& params);
void load_parameters_file(const std::string& path, ParameterSet& params);

/// Atomic write / integrity-checked read of a whole CheckpointFile.
void write_checkpoint_file(const std::string& path, const CheckpointFile& ckpt);
CheckpointFile read_checkpoint_file(const std::string& path);

/// A file's bytes, either mmap'd read-only (zero-copy, demand-paged — the
/// kernel reads only the pages a deserializer actually touches) or slurped
/// into an owned buffer. `view()` is valid for the blob's lifetime either
/// way, so deserializers that take a string_view (plan::deserialize,
/// cluster::unframe) work over both backings unchanged.
///
/// Movable, not copyable. On non-POSIX builds — or when mmap fails for any
/// reason (network filesystems, exotic mounts) — read() silently falls back
/// to the owned-buffer path; `use_mmap` is a hint, not a contract.
class FileBlob {
 public:
  FileBlob() = default;
  ~FileBlob();
  FileBlob(FileBlob&& other) noexcept;
  FileBlob& operator=(FileBlob&& other) noexcept;
  FileBlob(const FileBlob&) = delete;
  FileBlob& operator=(const FileBlob&) = delete;

  /// Read `path`. With `use_mmap` the file is mapped read-only when the
  /// platform allows; otherwise (and on any mapping failure) the bytes are
  /// copied into an owned buffer. Missing/unreadable files fail with a
  /// ContextError carrying `ctx`'s frames.
  static FileBlob read(const std::string& path, const ErrorContext& ctx,
                       bool use_mmap = false);

  std::string_view view() const {
    return map_ != nullptr ? std::string_view(static_cast<const char*>(map_),
                                              map_size_)
                           : std::string_view(owned_);
  }
  bool mapped() const { return map_ != nullptr; }

 private:
  void reset();

  void* map_ = nullptr;       ///< non-null iff mmap backing
  std::size_t map_size_ = 0;  ///< mapped length (may be 0 for empty files)
  std::string owned_;         ///< fallback backing
};

}  // namespace moss::tensor
