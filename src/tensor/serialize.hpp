#pragma once

#include <istream>
#include <ostream>

#include "tensor/nn.hpp"

namespace moss::tensor {

/// Binary checkpoint format for a ParameterSet:
///   magic "MOSSCKPT" | u64 count | per param: u64 name_len, name,
///   u64 rows, u64 cols, f32 data[rows*cols]
/// Loading requires the destination set to have identical names/shapes
/// (construct the same model first, then restore).
void save_parameters(std::ostream& out, const ParameterSet& params);
void load_parameters(std::istream& in, ParameterSet& params);

/// Convenience file-path wrappers.
void save_parameters_file(const std::string& path,
                          const ParameterSet& params);
void load_parameters_file(const std::string& path, ParameterSet& params);

}  // namespace moss::tensor
