#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace moss::tensor {

/// A named trainable parameter set. Modules register their parameters here
/// so the optimizer can iterate them.
class ParameterSet {
 public:
  Tensor& add(const std::string& name, Tensor t) {
    names_.push_back(name);
    params_.push_back(std::move(t));
    return params_.back();
  }
  std::size_t size() const { return params_.size(); }
  std::vector<Tensor>& tensors() { return params_; }
  const std::vector<Tensor>& tensors() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }

  std::size_t num_scalars() const {
    std::size_t n = 0;
    for (const Tensor& p : params_) n += p.size();
    return n;
  }

  void zero_grad() {
    for (Tensor& p : params_) p.zero_grad();
  }

 private:
  std::vector<std::string> names_;
  std::vector<Tensor> params_;
};

/// Fully connected layer y = x·W + b with Xavier-style init.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, Rng& rng, ParameterSet& params,
         const std::string& name, bool bias = true) {
    const float std = std::sqrt(2.0f / static_cast<float>(in + out));
    w_ = params.add(name + ".w", Tensor::randn(in, out, rng, std, true));
    if (bias) b_ = params.add(name + ".b", Tensor::zeros(1, out, true));
  }

  Tensor operator()(const Tensor& x) const {
    Tensor y = matmul(x, w_);
    if (b_.defined()) y = add(y, b_);
    return y;
  }

  const Tensor& weight() const { return w_; }
  /// Bias row (undefined Tensor when constructed with bias=false) — exposed
  /// so fused kernels can consume the layer without going through the
  /// composed matmul+add.
  const Tensor& bias() const { return b_; }

 private:
  Tensor w_;
  Tensor b_;
};

/// Two-layer MLP with a nonlinearity, as used by the RNM matching head and
/// the task prediction heads.
class Mlp {
 public:
  Mlp() = default;
  Mlp(std::size_t in, std::size_t hidden, std::size_t out, Rng& rng,
      ParameterSet& params, const std::string& name)
      : l1_(in, hidden, rng, params, name + ".l1"),
        l2_(hidden, out, rng, params, name + ".l2") {}

  Tensor operator()(const Tensor& x) const { return l2_(relu(l1_(x))); }

 private:
  Linear l1_;
  Linear l2_;
};

/// Adam optimizer (the paper trains with Adam, lr 6e-4).
class Adam {
 public:
  explicit Adam(ParameterSet& params, float lr = 6e-4f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f)
      : params_(&params), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params.tensors()[i].size(), 0.0f);
      v_[i].assign(params.tensors()[i].size(), 0.0f);
    }
  }

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Apply one update from the accumulated gradients, then the caller
  /// typically calls params.zero_grad(). Gradients are clipped to a global
  /// norm of `clip` first (0 disables clipping).
  void step(float clip = 5.0f);

  /// Serializable optimizer state (step count + first/second moments) for
  /// checkpoint/resume. restore() requires moment shapes matching the
  /// parameter set the optimizer was built on.
  struct Snapshot {
    std::int64_t t = 0;
    std::vector<std::vector<float>> m, v;
  };
  Snapshot snapshot() const { return Snapshot{t_, m_, v_}; }
  void restore(const Snapshot& s);

 private:
  ParameterSet* params_;
  float lr_, beta1_, beta2_, eps_;
  std::vector<std::vector<float>> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace moss::tensor
