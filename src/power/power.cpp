#include "power/power.hpp"

#include "core_util/check.hpp"

namespace moss::power {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

PowerReport analyze_power(const Netlist& nl,
                          const std::vector<double>& toggle_rates,
                          PowerOptions opts) {
  MOSS_CHECK(toggle_rates.size() == nl.num_nodes(),
             "toggle rates must be indexed by NodeId");
  PowerReport rep;
  rep.cell_power_uw.assign(nl.num_nodes(), 0.0);

  const double f_hz = opts.clock_ghz * 1e9;
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const netlist::Node& n = nl.node(id);
    if (n.kind != NodeKind::kCell) continue;
    const cell::CellType& t = nl.library().type(n.type);

    // Energies in femtojoules; C in fF, V in volts -> fJ = fF·V².
    const double e_switch =
        t.internal_energy_fj + 0.5 * nl.output_load(id) * opts.vdd * opts.vdd;
    // fJ * Hz = 1e-15 J/s -> W; report µW (1e6), net factor 1e-9.
    double dyn_uw = toggle_rates[i] * f_hz * e_switch * 1e-9;
    if (t.is_flop()) {
      // Clock-tree pin power: the flop's clock pin toggles twice per cycle
      // regardless of data activity.
      dyn_uw += 2.0 * f_hz * 0.35 * t.internal_energy_fj * 1e-9;
    }
    const double leak_uw = t.leakage_nw * 1e-3;
    rep.cell_power_uw[i] = dyn_uw + leak_uw;
    rep.dynamic_uw += dyn_uw;
    rep.leakage_uw += leak_uw;
  }
  rep.total_uw = rep.dynamic_uw + rep.leakage_uw;
  return rep;
}

}  // namespace moss::power
