#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace moss::power {

/// Operating point for power evaluation.
struct PowerOptions {
  double vdd = 0.9;            ///< volts
  double clock_ghz = 1.0;      ///< toggle rates are per cycle of this clock
};

/// Per-cell and total power (the PrimePower stand-in). Dynamic power uses
/// toggle rates measured by the simulator:
///   P_dyn(cell) = rate · f · (E_internal + ½ · C_load · Vdd²)
/// plus per-cell leakage. Units: microwatts.
struct PowerReport {
  std::vector<double> cell_power_uw;  ///< indexed by NodeId (0 for ports)
  double dynamic_uw = 0.0;
  double leakage_uw = 0.0;
  double total_uw = 0.0;
};

/// Compute the power report given per-node toggle rates (indexed by NodeId,
/// as produced by sim::random_activity / Simulator::toggle_rates()).
PowerReport analyze_power(const netlist::Netlist& nl,
                          const std::vector<double>& toggle_rates,
                          PowerOptions opts = {});

}  // namespace moss::power
