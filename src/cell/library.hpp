#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/celltype.hpp"

namespace moss::cell {

/// A standard-cell library: an indexed registry of CellType definitions.
/// Stands in for a Liberty (.lib) file; synthesis maps onto it and STA/power
/// read timing/energy data from it.
class CellLibrary {
 public:
  /// Register a cell type; returns its id. Name must be unique.
  CellTypeId add(CellType type);

  const CellType& type(CellTypeId id) const { return types_.at(static_cast<std::size_t>(id)); }
  CellTypeId find(const std::string& name) const;
  const CellType& by_name(const std::string& name) const;
  bool contains(const std::string& name) const { return find(name) != kInvalidCellType; }

  std::size_t size() const { return types_.size(); }
  const std::vector<CellType>& types() const { return types_; }

  /// Ids of all flop cell types in the library.
  std::vector<CellTypeId> flop_types() const;
  /// Ids of all combinational cell types.
  std::vector<CellTypeId> comb_types() const;

 private:
  std::vector<CellType> types_;
  std::unordered_map<std::string, CellTypeId> by_name_;
};

/// Build the default ~40-cell library used throughout the repo: inverters,
/// buffers, NAND/NOR/AND/OR (2-4 inputs), XOR/XNOR, AOI/OAI complex gates,
/// MUX2, majority/adder cells, tie cells and four DFF variants, each with
/// linear-NLDM timing, power data and an English description.
const CellLibrary& standard_library();

/// Truth-table helper: build the packed table for an n-input function.
std::uint64_t make_truth_table(int num_inputs,
                               const std::function<bool(std::uint32_t)>& fn);

}  // namespace moss::cell
