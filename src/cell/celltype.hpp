#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace moss::cell {

/// Broad functional class of a standard cell.
enum class CellClass : std::uint8_t {
  kCombinational,  ///< pure boolean function of its inputs
  kFlop,           ///< D-type flip-flop variant (sequential anchor point)
  kTie,            ///< constant driver (tie-high / tie-low)
};

/// Identifier of a cell type within a CellLibrary.
using CellTypeId = std::int32_t;
inline constexpr CellTypeId kInvalidCellType = -1;

/// One standard cell: boolean function, NLDM-style timing, power and a
/// natural-language description (consumed by the moss::lm encoder, standing
/// in for the Liberty description the paper feeds the LLM).
///
/// Combinational functions with up to 6 inputs are stored as a truth table
/// packed into a 64-bit word: bit i holds the output for the input
/// assignment whose bit k is input pin k's value.
struct CellType {
  std::string name;
  CellClass klass = CellClass::kCombinational;
  int num_inputs = 0;
  std::uint64_t truth_table = 0;  ///< combinational only

  // Flop behaviour (klass == kFlop). Semantics per cycle:
  //   if (reset asserted)      state <- reset_value     (synchronous)
  //   else if (enable low)     state <- state
  //   else                     state <- D
  bool has_enable = false;
  bool has_reset = false;
  bool reset_value = false;

  // Timing (linear NLDM approximation):
  //   delay(pin -> out) = intrinsic_delay[pin] + drive_res * C_load
  // Units: picoseconds and femtofarads (drive_res in ps/fF).
  std::vector<double> intrinsic_delay;
  double drive_res = 0.0;
  std::vector<double> pin_cap;  ///< input pin capacitance, fF
  double max_load = 120.0;      ///< fF, synthesis buffering threshold

  // Power.
  double leakage_nw = 0.0;         ///< static leakage, nW
  double internal_energy_fj = 0.0; ///< energy per output toggle, fJ

  double area = 1.0;  ///< normalized area units

  /// English description of structure + function, the text the language
  /// model encodes for this cell ("cell description prompt").
  std::string description;

  /// Names of input pins, e.g. {"A","B"} or {"D","E","R"}.
  std::vector<std::string> pin_names;

  bool is_flop() const { return klass == CellClass::kFlop; }
  bool is_tie() const { return klass == CellClass::kTie; }
  bool is_comb() const { return klass == CellClass::kCombinational; }

  /// Evaluate the combinational function. `inputs` bit k = pin k value.
  bool eval(std::uint32_t inputs) const {
    return (truth_table >> inputs) & 1u;
  }

  /// Index of a named pin, or -1.
  int pin_index(const std::string& pin) const {
    for (std::size_t i = 0; i < pin_names.size(); ++i) {
      if (pin_names[i] == pin) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace moss::cell
