#include "cell/library.hpp"

#include <cmath>

#include "core_util/check.hpp"

namespace moss::cell {

CellTypeId CellLibrary::add(CellType type) {
  MOSS_CHECK(!type.name.empty(), "cell type needs a name");
  MOSS_CHECK(by_name_.find(type.name) == by_name_.end(),
             "duplicate cell type name: " + type.name);
  MOSS_CHECK(type.num_inputs >= 0 && type.num_inputs <= 6,
             "cell " + type.name + ": inputs must be 0..6");
  MOSS_CHECK(static_cast<int>(type.pin_names.size()) == type.num_inputs,
             "cell " + type.name + ": pin_names/num_inputs mismatch");
  MOSS_CHECK(static_cast<int>(type.intrinsic_delay.size()) == type.num_inputs,
             "cell " + type.name + ": intrinsic_delay per input pin");
  MOSS_CHECK(static_cast<int>(type.pin_cap.size()) == type.num_inputs,
             "cell " + type.name + ": pin_cap per input pin");
  const auto id = static_cast<CellTypeId>(types_.size());
  by_name_.emplace(type.name, id);
  types_.push_back(std::move(type));
  return id;
}

CellTypeId CellLibrary::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidCellType : it->second;
}

const CellType& CellLibrary::by_name(const std::string& name) const {
  const CellTypeId id = find(name);
  MOSS_CHECK(id != kInvalidCellType, "unknown cell type: " + name);
  return types_[static_cast<std::size_t>(id)];
}

std::vector<CellTypeId> CellLibrary::flop_types() const {
  std::vector<CellTypeId> out;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].is_flop()) out.push_back(static_cast<CellTypeId>(i));
  }
  return out;
}

std::vector<CellTypeId> CellLibrary::comb_types() const {
  std::vector<CellTypeId> out;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].is_comb()) out.push_back(static_cast<CellTypeId>(i));
  }
  return out;
}

std::uint64_t make_truth_table(
    int num_inputs, const std::function<bool(std::uint32_t)>& fn) {
  MOSS_CHECK(num_inputs >= 0 && num_inputs <= 6, "0..6 inputs supported");
  std::uint64_t table = 0;
  const std::uint32_t rows = 1u << num_inputs;
  for (std::uint32_t row = 0; row < rows; ++row) {
    if (fn(row)) table |= (1ull << row);
  }
  return table;
}

namespace {

std::vector<std::string> default_pins(int n) {
  static const char* kNames[] = {"A", "B", "C", "D", "E", "F"};
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.emplace_back(kNames[i]);
  return out;
}

/// Factory for a combinational cell with pin-count-scaled default timing.
/// `speed` scales delay (1.0 = typical inverting stage); `drive` scales the
/// output resistance (bigger cells drive larger loads faster).
CellType comb(std::string name, int n,
              const std::function<bool(std::uint32_t)>& fn, double speed,
              double drive, double area, std::string description) {
  CellType t;
  t.name = std::move(name);
  t.klass = CellClass::kCombinational;
  t.num_inputs = n;
  t.truth_table = make_truth_table(n, fn);
  t.pin_names = default_pins(n);
  t.intrinsic_delay.assign(static_cast<std::size_t>(n), 0.0);
  // Later pins of a CMOS stack are slightly faster (closer to the output
  // node); this asymmetry is what the positional edge encoding must learn.
  for (int i = 0; i < n; ++i) {
    t.intrinsic_delay[static_cast<std::size_t>(i)] =
        speed * (22.0 + 4.0 * (n - 1) - 2.5 * i);
  }
  t.drive_res = 1.9 / drive;  // ps per fF
  t.pin_cap.assign(static_cast<std::size_t>(n), 1.6 + 0.25 * n);
  t.max_load = 90.0 * drive;
  t.leakage_nw = 2.1 * area;
  t.internal_energy_fj = 0.9 + 0.55 * area;
  t.area = area;
  t.description = std::move(description);
  return t;
}

bool bit(std::uint32_t v, int i) { return (v >> i) & 1u; }

CellType flop(std::string name, bool enable, bool reset, bool reset_value,
              std::string description) {
  CellType t;
  t.name = std::move(name);
  t.klass = CellClass::kFlop;
  t.pin_names = {"D"};
  if (enable) t.pin_names.push_back("E");
  if (reset) t.pin_names.push_back("R");
  t.num_inputs = static_cast<int>(t.pin_names.size());
  t.has_enable = enable;
  t.has_reset = reset;
  t.reset_value = reset_value;
  // Clock-to-Q intrinsic; listed per input pin for uniformity (input pins of
  // a flop do not create combinational arcs — STA treats flops as path
  // endpoints/startpoints).
  t.intrinsic_delay.assign(static_cast<std::size_t>(t.num_inputs), 78.0);
  t.drive_res = 1.6;
  t.pin_cap.assign(static_cast<std::size_t>(t.num_inputs), 2.2);
  t.max_load = 110.0;
  t.leakage_nw = 9.5;
  t.internal_energy_fj = 4.2;  // includes internal clock toggling
  t.area = 6.0;
  t.description = std::move(description);
  return t;
}

CellType tie(std::string name, bool value) {
  CellType t;
  t.name = std::move(name);
  t.klass = CellClass::kTie;
  t.num_inputs = 0;
  t.truth_table = value ? 1u : 0u;
  t.drive_res = 2.5;
  t.leakage_nw = 0.4;
  t.internal_energy_fj = 0.0;
  t.area = 0.5;
  t.description = value
      ? "Tie-high cell: constantly drives logic one; no switching activity."
      : "Tie-low cell: constantly drives logic zero; no switching activity.";
  return t;
}

CellLibrary build_standard_library() {
  CellLibrary lib;

  lib.add(tie("TIE0", false));
  lib.add(tie("TIE1", true));

  lib.add(comb("INV", 1, [](std::uint32_t v) { return !bit(v, 0); }, 0.72,
               1.0, 0.8,
               "Inverter: single-stage inverting gate, output is the logical "
               "complement of input A. Fastest cell in the library, used for "
               "logic inversion and signal restoration."));
  lib.add(comb("INVX4", 1, [](std::uint32_t v) { return !bit(v, 0); }, 0.78,
               3.2, 2.2,
               "High-drive inverter: inverting gate with 4x drive strength "
               "for driving large fanout or long wires with low delay."));
  lib.add(comb("BUF", 1, [](std::uint32_t v) { return bit(v, 0); }, 1.35, 1.4,
               1.2,
               "Buffer: non-inverting two-stage driver, output equals input "
               "A. Used to repair slew and split heavy fanout."));
  lib.add(comb("BUFX4", 1, [](std::uint32_t v) { return bit(v, 0); }, 1.4,
               3.6, 2.8,
               "High-drive buffer: non-inverting driver with 4x drive "
               "strength for clock-like or high-fanout nets."));

  const auto nand_fn = [](int n) {
    return [n](std::uint32_t v) {
      for (int i = 0; i < n; ++i) {
        if (!bit(v, i)) return true;
      }
      return false;
    };
  };
  const auto nor_fn = [](int n) {
    return [n](std::uint32_t v) {
      for (int i = 0; i < n; ++i) {
        if (bit(v, i)) return false;
      }
      return true;
    };
  };
  const auto and_fn = [](int n) {
    return [n](std::uint32_t v) {
      for (int i = 0; i < n; ++i) {
        if (!bit(v, i)) return false;
      }
      return true;
    };
  };
  const auto or_fn = [](int n) {
    return [n](std::uint32_t v) {
      for (int i = 0; i < n; ++i) {
        if (bit(v, i)) return true;
      }
      return false;
    };
  };

  for (int n = 2; n <= 4; ++n) {
    const std::string sn = std::to_string(n);
    lib.add(comb("NAND" + sn, n, nand_fn(n), 0.85, 1.0, 0.9 + 0.35 * n,
                 sn + "-input NAND gate: inverting gate whose output is low "
                 "only when all " + sn + " inputs are high. Primitive "
                 "inverting CMOS stage with series NMOS stack."));
    lib.add(comb("NOR" + sn, n, nor_fn(n), 0.95, 0.9, 0.9 + 0.35 * n,
                 sn + "-input NOR gate: inverting gate whose output is high "
                 "only when all " + sn + " inputs are low. Series PMOS stack "
                 "makes it slightly slower than NAND."));
    lib.add(comb("AND" + sn, n, and_fn(n), 1.45, 1.2, 1.3 + 0.4 * n,
                 sn + "-input AND gate: output is high only when all " + sn +
                 " inputs are high. Non-inverting, built as NAND plus "
                 "inverter."));
    lib.add(comb("OR" + sn, n, or_fn(n), 1.5, 1.2, 1.3 + 0.4 * n,
                 sn + "-input OR gate: output is high when any of the " + sn +
                 " inputs is high. Non-inverting, built as NOR plus "
                 "inverter."));
  }

  lib.add(comb("XOR2", 2,
               [](std::uint32_t v) { return bit(v, 0) != bit(v, 1); }, 1.75,
               0.9, 2.6,
               "2-input XOR gate: output is high when exactly one input is "
               "high. Parity / sum logic; both inputs always control the "
               "output, giving high switching activity."));
  lib.add(comb("XNOR2", 2,
               [](std::uint32_t v) { return bit(v, 0) == bit(v, 1); }, 1.75,
               0.9, 2.6,
               "2-input XNOR gate: output is high when both inputs are "
               "equal. Equality comparison / inverted parity logic."));
  lib.add(comb("XOR3", 3,
               [](std::uint32_t v) {
                 return (bit(v, 0) ^ bit(v, 1) ^ bit(v, 2)) != 0;
               },
               2.3, 0.85, 4.1,
               "3-input XOR gate: odd-parity function of three inputs, the "
               "sum output of a full adder."));

  lib.add(comb("MAJ3", 3,
               [](std::uint32_t v) {
                 const int s = bit(v, 0) + bit(v, 1) + bit(v, 2);
                 return s >= 2;
               },
               1.6, 1.0, 3.4,
               "3-input majority gate: output is high when at least two of "
               "the three inputs are high; the carry output of a full "
               "adder."));

  lib.add(comb("AOI21", 3,
               [](std::uint32_t v) {
                 return !((bit(v, 0) && bit(v, 1)) || bit(v, 2));
               },
               0.95, 0.9, 1.9,
               "AND-OR-invert 2-1 gate: output = NOT((A AND B) OR C). "
               "Single-stage complex gate merging an AND into a NOR."));
  lib.add(comb("AOI22", 4,
               [](std::uint32_t v) {
                 return !((bit(v, 0) && bit(v, 1)) ||
                          (bit(v, 2) && bit(v, 3)));
               },
               1.0, 0.85, 2.3,
               "AND-OR-invert 2-2 gate: output = NOT((A AND B) OR (C AND "
               "D)). Merges two AND terms into an inverting OR, common in "
               "mux and compare logic."));
  lib.add(comb("OAI21", 3,
               [](std::uint32_t v) {
                 return !((bit(v, 0) || bit(v, 1)) && bit(v, 2));
               },
               0.95, 0.9, 1.9,
               "OR-AND-invert 2-1 gate: output = NOT((A OR B) AND C). "
               "Single-stage complex gate merging an OR into a NAND."));
  lib.add(comb("OAI22", 4,
               [](std::uint32_t v) {
                 return !((bit(v, 0) || bit(v, 1)) &&
                          (bit(v, 2) || bit(v, 3)));
               },
               1.0, 0.85, 2.3,
               "OR-AND-invert 2-2 gate: output = NOT((A OR B) AND (C OR "
               "D)). Dual of AOI22, used for inverted sum-of-products."));

  // MUX2: pins A (select=0 data), B (select=1 data), S (select).
  {
    CellType t = comb("MUX2", 3,
                      [](std::uint32_t v) {
                        return bit(v, 2) ? bit(v, 1) : bit(v, 0);
                      },
                      1.55, 1.0, 3.0,
                      "2-to-1 multiplexer: output follows data input A when "
                      "select S is low and data input B when S is high. Core "
                      "cell of datapath steering and register enables.");
    t.pin_names = {"A", "B", "S"};
    // Select pin has a distinct (slower) arc — positional encoding target.
    t.intrinsic_delay = {26.0, 24.0, 34.0};
    lib.add(std::move(t));
  }

  lib.add(flop("DFF", false, false, false,
               "Positive-edge-triggered D flip-flop: on each clock edge the "
               "register captures data input D and holds it for one cycle. "
               "Sequential state element; the anchor point dividing "
               "combinational stages."));
  lib.add(flop("DFFR", false, true, false,
               "D flip-flop with synchronous reset: when reset R is asserted "
               "the register clears to zero on the clock edge, otherwise it "
               "captures data input D. State element with initialization."));
  lib.add(flop("DFFE", true, false, false,
               "D flip-flop with clock enable: the register captures data "
               "input D only when enable E is high, otherwise it holds its "
               "previous state. Used for stallable pipeline registers."));
  lib.add(flop("DFFRE", true, true, false,
               "D flip-flop with clock enable and synchronous reset: clears "
               "to zero when R is asserted, captures D when E is high, holds "
               "otherwise. General-purpose control/status register bit."));

  return lib;
}

}  // namespace

const CellLibrary& standard_library() {
  static const CellLibrary lib = build_standard_library();
  return lib;
}

}  // namespace moss::cell
