#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace moss::sta {

/// Configuration of the timing model.
struct StaOptions {
  double input_arrival_ps = 0.0;  ///< arrival time at primary inputs
  double input_drive_res = 1.2;   ///< ps/fF drive of the external driver
  double clock_period_ps = 0.0;   ///< 0 = auto (worst arrival + margin)
  double setup_margin_ps = 20.0;  ///< flop setup time for slack analysis

  /// Second-parameter NLDM mode: propagate transition times and derate each
  /// arc by the input slew —
  ///   slew_out = slew_intrinsic + 2·R_drive·C_load
  ///   delay   += slew_sensitivity · slew_in
  /// Off by default (the labels the models learn use the slew-less model).
  bool slew_aware = false;
  double input_slew_ps = 25.0;       ///< transition time at primary inputs
  double slew_sensitivity = 0.15;    ///< delay penalty per ps of input slew
};

/// One step of a critical path, endpoint first.
struct PathStep {
  netlist::NodeId node;
  double arrival_ps;
};

/// Static timing analysis over a finalized standard-cell netlist — the
/// PrimeTime/DC stand-in that produces the arrival-time labels MOSS learns.
///
/// Linear NLDM model: delay(pin->out) = intrinsic[pin] + drive_res * C_load.
/// Flops are cycle sources: Q arrival = clk-to-q + drive · load. The
/// "arrival time of a DFF" (the paper's per-DFF label) is the arrival of the
/// signal at its D pin.
class TimingAnalysis {
 public:
  explicit TimingAnalysis(const netlist::Netlist& nl, StaOptions opts = {});

  /// Arrival time at a node's output, ps.
  double arrival(netlist::NodeId id) const {
    return arrival_[static_cast<std::size_t>(id)];
  }
  const std::vector<double>& arrivals() const { return arrival_; }

  /// Transition time (slew) at a node's output, ps. Zero unless
  /// options.slew_aware.
  double slew(netlist::NodeId id) const {
    return slew_[static_cast<std::size_t>(id)];
  }

  /// Arrival at a flop's D pin (max over required data input).
  double flop_data_arrival(netlist::NodeId flop) const;
  /// Per-flop data arrival times in netlist flop order.
  std::vector<double> all_flop_arrivals() const;

  /// Worst data arrival over flop D pins and primary outputs — the minimum
  /// usable clock period (ignoring setup margin).
  double worst_arrival() const { return worst_; }

  /// Critical path to the given endpoint (a flop or primary output),
  /// endpoint first, walking back to a cycle source.
  std::vector<PathStep> critical_path(netlist::NodeId endpoint) const;

  /// Endpoint (flop D pin or PO) with the worst arrival.
  netlist::NodeId worst_endpoint() const { return worst_endpoint_; }

  // -- Required times and slack ---------------------------------------------
  /// Effective clock period used for slack: options.clock_period_ps, or
  /// worst arrival + setup margin when auto.
  double clock_period() const { return period_; }
  /// Slack of an endpoint (flop: period − setup − data arrival;
  /// PO: period − arrival). Negative = violated.
  double endpoint_slack(netlist::NodeId endpoint) const;
  /// All endpoints (flop D pins then POs) sorted by ascending slack.
  struct EndpointSlack {
    netlist::NodeId node;
    double arrival_ps;
    double slack_ps;
  };
  std::vector<EndpointSlack> slacks() const;
  /// Number of endpoints with negative slack at the current period.
  std::size_t violations() const;

  /// PrimeTime-style text report of the `n` worst paths.
  std::string report_timing(std::size_t n = 3) const;

 private:
  const netlist::Netlist* nl_;
  StaOptions opts_;
  std::vector<double> arrival_;
  std::vector<double> slew_;
  /// fanin index (into node.fanin) realizing each node's arrival
  std::vector<int> crit_pin_;
  double worst_ = 0.0;
  double period_ = 0.0;
  netlist::NodeId worst_endpoint_ = netlist::kInvalidNode;
};

}  // namespace moss::sta
