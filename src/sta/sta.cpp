#include "sta/sta.hpp"

#include <algorithm>
#include <string>

#include "core_util/check.hpp"

namespace moss::sta {

using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

TimingAnalysis::TimingAnalysis(const Netlist& nl, StaOptions opts)
    : nl_(&nl), opts_(opts) {
  MOSS_CHECK(nl.finalized(), "STA needs a finalized netlist");
  arrival_.assign(nl.num_nodes(), 0.0);
  slew_.assign(nl.num_nodes(), 0.0);
  crit_pin_.assign(nl.num_nodes(), -1);

  // In slew-aware mode each arc's delay gets a derating proportional to the
  // driving net's transition time (the second NLDM axis).
  const auto arc_derate = [&](NodeId driver) {
    return opts_.slew_aware
               ? opts_.slew_sensitivity * slew_[static_cast<std::size_t>(driver)]
               : 0.0;
  };
  const auto output_slew = [&](const cell::CellType& t, double load) {
    return opts_.slew_aware ? 8.0 + 2.0 * t.drive_res * load : 0.0;
  };

  for (const NodeId id : nl.topo_order()) {
    const netlist::Node& n = nl.node(id);
    double at = 0.0;
    double sl = 0.0;
    switch (n.kind) {
      case NodeKind::kPrimaryInput:
        at = opts_.input_arrival_ps +
             opts_.input_drive_res * nl.output_load(id);
        sl = opts_.slew_aware ? opts_.input_slew_ps : 0.0;
        break;
      case NodeKind::kPrimaryOutput:
        at = arrival_[static_cast<std::size_t>(n.fanin[0])];
        sl = slew_[static_cast<std::size_t>(n.fanin[0])];
        crit_pin_[static_cast<std::size_t>(id)] = 0;
        break;
      case NodeKind::kCell: {
        const cell::CellType& t = nl.library().type(n.type);
        const double load_delay = t.drive_res * nl.output_load(id);
        if (t.is_flop()) {
          // Launch: clock edge at 0, clk->q then drive the load. (D-pin
          // arrival of the *previous* cycle is an endpoint, not part of the
          // launch path.)
          at = t.intrinsic_delay.empty() ? load_delay
                                         : t.intrinsic_delay[0] + load_delay;
          sl = output_slew(t, nl.output_load(id));
        } else if (t.is_tie()) {
          at = 0.0;  // constants are always there
        } else {
          for (std::size_t p = 0; p < n.fanin.size(); ++p) {
            const double cand =
                arrival_[static_cast<std::size_t>(n.fanin[p])] +
                t.intrinsic_delay[p] + load_delay + arc_derate(n.fanin[p]);
            if (crit_pin_[static_cast<std::size_t>(id)] < 0 || cand > at) {
              at = cand;
              crit_pin_[static_cast<std::size_t>(id)] = static_cast<int>(p);
            }
          }
          sl = output_slew(t, nl.output_load(id));
        }
        break;
      }
    }
    arrival_[static_cast<std::size_t>(id)] = at;
    slew_[static_cast<std::size_t>(id)] = sl;
  }

  // Endpoints: flop D pins and primary outputs.
  worst_ = 0.0;
  worst_endpoint_ = kInvalidNode;
  for (const NodeId f : nl.flops()) {
    const double at = flop_data_arrival(f);
    if (worst_endpoint_ == kInvalidNode || at > worst_) {
      worst_ = at;
      worst_endpoint_ = f;
    }
  }
  for (const NodeId o : nl.outputs()) {
    const double at = arrival_[static_cast<std::size_t>(o)];
    if (worst_endpoint_ == kInvalidNode || at > worst_) {
      worst_ = at;
      worst_endpoint_ = o;
    }
  }
  period_ = opts_.clock_period_ps > 0.0
                ? opts_.clock_period_ps
                : worst_ + opts_.setup_margin_ps;
}

double TimingAnalysis::endpoint_slack(NodeId endpoint) const {
  if (nl_->is_flop(endpoint)) {
    return period_ - opts_.setup_margin_ps - flop_data_arrival(endpoint);
  }
  const netlist::Node& n = nl_->node(endpoint);
  MOSS_CHECK(n.kind == NodeKind::kPrimaryOutput,
             "endpoint must be a flop or primary output: " + n.name);
  return period_ - arrival_[static_cast<std::size_t>(endpoint)];
}

std::vector<TimingAnalysis::EndpointSlack> TimingAnalysis::slacks() const {
  std::vector<EndpointSlack> out;
  for (const NodeId f : nl_->flops()) {
    out.push_back(EndpointSlack{f, flop_data_arrival(f), endpoint_slack(f)});
  }
  for (const NodeId o : nl_->outputs()) {
    out.push_back(EndpointSlack{o, arrival_[static_cast<std::size_t>(o)],
                                endpoint_slack(o)});
  }
  std::sort(out.begin(), out.end(),
            [](const EndpointSlack& a, const EndpointSlack& b) {
              return a.slack_ps < b.slack_ps;
            });
  return out;
}

std::size_t TimingAnalysis::violations() const {
  std::size_t n = 0;
  for (const auto& s : slacks()) {
    if (s.slack_ps < 0) ++n;
  }
  return n;
}

std::string TimingAnalysis::report_timing(std::size_t n) const {
  std::string out;
  out += "Timing report for '" + nl_->name() + "'\n";
  out += "  clock period: " + std::to_string(period_) + " ps, setup " +
         std::to_string(opts_.setup_margin_ps) + " ps\n";
  const auto eps = slacks();
  for (std::size_t k = 0; k < std::min(n, eps.size()); ++k) {
    const auto& ep = eps[k];
    out += "\nPath " + std::to_string(k + 1) + ": endpoint " +
           nl_->node(ep.node).name +
           (ep.slack_ps < 0 ? "  (VIOLATED)" : "") + "\n";
    out += "  arrival " + std::to_string(ep.arrival_ps) + " ps, slack " +
           std::to_string(ep.slack_ps) + " ps\n";
    for (const PathStep& step : critical_path(ep.node)) {
      const netlist::Node& node = nl_->node(step.node);
      const char* type =
          node.kind == NodeKind::kCell
              ? nl_->library().type(node.type).name.c_str()
              : (node.kind == NodeKind::kPrimaryInput ? "PI" : "PO");
      out += "    " + node.name + " (" + type + ") @ " +
             std::to_string(step.arrival_ps) + " ps\n";
    }
  }
  return out;
}

double TimingAnalysis::flop_data_arrival(NodeId flop) const {
  const netlist::Node& n = nl_->node(flop);
  MOSS_CHECK(nl_->is_flop(flop), "not a flop: " + n.name);
  const cell::CellType& t = nl_->library().type(n.type);
  const int d = t.pin_index("D");
  MOSS_CHECK(d >= 0, "flop cell type '" + t.name + "' has no D pin (node " +
                         n.name + ")");
  return arrival_[static_cast<std::size_t>(
      n.fanin[static_cast<std::size_t>(d)])];
}

std::vector<double> TimingAnalysis::all_flop_arrivals() const {
  std::vector<double> out;
  out.reserve(nl_->flops().size());
  for (const NodeId f : nl_->flops()) out.push_back(flop_data_arrival(f));
  return out;
}

std::vector<PathStep> TimingAnalysis::critical_path(NodeId endpoint) const {
  std::vector<PathStep> path;
  NodeId cur = endpoint;
  if (nl_->is_flop(endpoint)) {
    path.push_back(PathStep{endpoint, flop_data_arrival(endpoint)});
    const cell::CellType& t = nl_->library().type(nl_->node(endpoint).type);
    cur = nl_->node(endpoint).fanin[static_cast<std::size_t>(
        t.pin_index("D"))];
  }
  while (cur != kInvalidNode) {
    path.push_back(PathStep{cur, arrival_[static_cast<std::size_t>(cur)]});
    const netlist::Node& n = nl_->node(cur);
    if (n.kind == NodeKind::kPrimaryOutput) {
      cur = n.fanin[0];
      continue;
    }
    const int pin = crit_pin_[static_cast<std::size_t>(cur)];
    if (n.kind != NodeKind::kCell || nl_->is_flop(cur) || pin < 0) break;
    cur = n.fanin[static_cast<std::size_t>(pin)];
  }
  return path;
}

}  // namespace moss::sta
