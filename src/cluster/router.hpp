#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/client.hpp"
#include "cluster/ring.hpp"
#include "serve/protocol.hpp"
#include "serve/resilience.hpp"

namespace moss::cluster {

/// One shard endpoint as the router sees it. request() speaks whole
/// protocol exchanges (one request line in, one framed response out) and
/// throws *transient* ContextErrors for transport failures — a shard that
/// answered "ERR ..." is alive and its answer is final; a shard that could
/// not answer at all is a failover candidate.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string request(const std::string& line) = 0;
  virtual const std::string& name() const = 0;
};

/// Production backend: a moss_serve worker process behind a Unix socket.
class SocketBackend : public Backend {
 public:
  SocketBackend(std::string name, std::string socket_path,
                int timeout_ms = 5000)
      : name_(std::move(name)), client_(std::move(socket_path), timeout_ms) {}

  std::string request(const std::string& line) override {
    return client_.request(line);
  }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  LineClient client_;
};

/// In-process backend over a ProtocolHandler — the same code path as a
/// worker process minus the socket, which makes router behavior (routing,
/// failover, health) unit-testable and benchable without fork/exec.
class LocalBackend : public Backend {
 public:
  LocalBackend(std::string name, serve::InferenceEngine& engine,
               serve::ProtocolConfig cfg)
      : name_(std::move(name)), handler_(engine, std::move(cfg)) {}

  std::string request(const std::string& line) override {
    return handler_.handle_line(line);
  }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  serve::ProtocolHandler handler_;
};

struct RouterConfig {
  /// Failover targets beyond the primary owner: each design key is served
  /// by its owner, then by up to `replicas` next-distinct ring shards when
  /// the owner is down.
  std::size_t replicas = 1;
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0;
  /// Transport-level retry against ONE backend before failing over.
  /// Deliberately tighter than the serve-side policy: the replica is the
  /// real retry.
  serve::RetryConfig retry{.max_attempts = 2,
                           .base_backoff_ms = 5.0,
                           .max_backoff_ms = 50.0};
  /// Per-backend breaker; an open breaker skips the shard without paying
  /// its connect timeout, and half-open probes notice the respawn.
  serve::BreakerConfig breaker{.enabled = true,
                               .failure_threshold = 3,
                               .open_cooldown_ms = 500};
};

struct RouterStats {
  std::uint64_t requests = 0;
  std::uint64_t failovers = 0;         ///< served by a non-primary replica
  std::uint64_t shard_down_errors = 0; ///< every owner unreachable
  std::uint64_t retries = 0;           ///< transport retries performed
};

/// Stateless-per-request shard router: consistent-hashes each design onto
/// its owner shard (so repeat traffic for a design always lands on the same
/// warm cache) and fails over along the ring when the owner is down.
///
///   ATP/TRP/EMBED/RANK <design>  → owner shard, then replicas; when every
///                                  owner is unreachable the caller gets a
///                                  typed single line
///                                  "ERR shard_down shard=<primary> ..."
///                                  — never an exception, never a hang.
///   OWNER <design>               → the design's primary shard (ring
///                                  lookup only — for operators and chaos
///                                  harnesses deciding which shard to kill)
///   FLUSH                        → broadcast: every shard persists its
///                                  cache segments now
///   HEALTH                       → fleet roll-up across all backends
///   METRICS                      → router stats + per-shard breaker states
///   HELP / QUIT                  → answered locally
///
/// Per-backend state (mutex, CircuitBreaker, RetryBudget) mirrors the
/// PR-4 registry slots: the breaker is not internally locked, so every
/// touch happens under the slot mutex. Thread-safe: concurrent routes to
/// different shards proceed in parallel; a shard's exchanges serialize.
class Router {
 public:
  Router(std::vector<std::unique_ptr<Backend>> backends, RouterConfig cfg);

  /// Handle one request line; never throws. Sets `quit` on QUIT.
  std::string route(const std::string& line, bool* quit = nullptr);

  /// Fleet health: DOWN when no backend answers, DEGRADED while any
  /// breaker is non-closed (a shard is dead or being probed), else the
  /// worst state any live shard reports.
  serve::HealthState health();

  RouterStats stats() const;
  std::size_t backend_count() const { return slots_.size(); }
  /// Breaker state of backend `i` (diagnostics / tests).
  serve::BreakerState breaker_state(std::size_t i) const;

  /// Ring key for a design token — exposed so tests/benches can predict
  /// placement.
  static std::uint64_t design_key(const std::string& token);

 private:
  struct Slot {
    std::unique_ptr<Backend> backend;
    mutable std::mutex mu;
    serve::CircuitBreaker breaker;
    serve::RetryBudget budget;
    explicit Slot(std::unique_ptr<Backend> b, const RouterConfig& cfg)
        : backend(std::move(b)), breaker(cfg.breaker) {}
  };

  /// One guarded exchange with slot `i`: breaker gate, transport retry,
  /// outcome recording. Throws transient ContextError when unavailable.
  std::string exchange(std::size_t i, const std::string& line);
  std::string handle_health();
  std::string handle_metrics();
  std::string handle_flush();

  RouterConfig cfg_;
  std::vector<std::unique_ptr<Slot>> slots_;
  HashRing ring_;

  mutable std::mutex stats_mu_;
  RouterStats stats_;
  std::uint64_t token_seq_ = 0;  ///< retry-jitter token source
};

}  // namespace moss::cluster
