#include "cluster/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core_util/error.hpp"

namespace moss::cluster {

namespace {
[[noreturn]] void fail_transient(const std::string& path,
                                 const std::string& reason,
                                 const std::string& msg) {
  ErrorContext ctx;
  ctx.add("socket", path).add("reason", reason).transient().fail(msg);
}
}  // namespace

LineClient::LineClient(std::string socket_path, int timeout_ms)
    : path_(std::move(socket_path)), timeout_ms_(timeout_ms) {}

LineClient::~LineClient() { close(); }

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void LineClient::connect_locked() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    ErrorContext ctx;
    ctx.add("socket", path_)
        .add("reason", "bad_request")
        .fail("socket path too long for sockaddr_un");
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    fail_transient(path_, "connect_failed",
                   std::string("socket(): ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    fail_transient(path_, "connect_failed",
                   std::string("connect(): ") + std::strerror(err));
  }
  fd_ = fd;
  buf_.clear();
}

std::string LineClient::read_line() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms_);
    if (pr == 0) {
      close();
      fail_transient(path_, "recv_timeout", "shard response timed out");
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      fail_transient(path_, "recv_timeout",
                     std::string("poll(): ") + std::strerror(err));
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      close();
      fail_transient(path_, "connection_closed",
                     "shard closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      fail_transient(path_, "connection_closed",
                     std::string("read(): ") + std::strerror(err));
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string LineClient::request(const std::string& line) {
  if (fd_ < 0) connect_locked();
  std::string wire = line;
  wire.push_back('\n');
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      fail_transient(path_, "send_failed",
                     std::string("send(): ") + std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string response = read_line();
  // Block commands (METRICS, HELP) stream lines until a lone ".".
  if (response == "OK METRICS" || response == "OK HELP") {
    for (;;) {
      const std::string part = read_line();
      if (part == ".") break;
      response.push_back('\n');
      response += part;
    }
  }
  return response;
}

}  // namespace moss::cluster
