#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace moss::cluster {

/// Command line for one supervised shard. argv[0] is the executable path;
/// no shell is involved (fork + execv, arguments passed verbatim).
struct ShardSpec {
  std::string name;
  std::vector<std::string> argv;
};

struct SupervisorConfig {
  /// Dirty-exit respawns allowed per shard before it is given up on.
  /// A clean exit (status 0 — the shard drained and flushed its cache in
  /// response to SIGTERM) is final and never respawned.
  int max_restarts = 8;
  /// Exponential restart backoff: first respawn after base, doubling to cap.
  int backoff_base_ms = 100;
  int backoff_cap_ms = 5000;
  /// SIGTERM→SIGKILL grace on shutdown().
  int shutdown_grace_ms = 3000;
};

/// Lifecycle of one supervised shard, as reported by status().
enum class ShardState : std::uint8_t {
  kStarting = 0,   ///< spawned, not yet confirmed by the caller
  kRunning = 1,
  kBackoff = 2,    ///< died dirty; respawn timer pending
  kExited = 3,     ///< exited clean (status 0); will not be respawned
  kGaveUp = 4,     ///< max_restarts dirty exits; supervision abandoned
};

const char* to_string(ShardState s);

struct ShardStatus {
  std::string name;
  ShardState state = ShardState::kStarting;
  pid_t pid = -1;          ///< -1 when not running
  int restarts = 0;        ///< dirty respawns performed so far
  int last_exit_status = 0;///< raw waitpid status of the last death
};

/// Fork/exec process supervisor for a fleet of moss_serve shards: the
/// "kill -9 a shard and the cluster heals" half of moss_cluster.
///
/// A monitor thread reaps children with waitpid(WNOHANG), woken by a
/// SIGCHLD self-pipe (no polling loop, no signal-unsafe work in the
/// handler). Deaths are classified by exit status: status 0 is a clean,
/// operator-intended shutdown and is honored; anything else — crash,
/// SIGKILL, nonzero exit — triggers a respawn after bounded exponential
/// backoff, up to max_restarts, after which the shard is marked gave_up
/// (the router keeps serving its keys from replicas).
///
/// One Supervisor per process: SIGCHLD disposition is process-global, so
/// the self-pipe is installed by the first instance and shared.
class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig cfg = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawn one shard and start supervising it. Returns its index.
  std::size_t add_shard(ShardSpec spec);

  /// Begin monitoring (idempotent). add_shard may be called before or
  /// after.
  void start();

  /// SIGTERM every live shard, wait up to shutdown_grace_ms for clean
  /// exits, SIGKILL stragglers, stop monitoring. Idempotent; the
  /// destructor calls it.
  void shutdown();

  std::vector<ShardStatus> status() const;
  /// Live (running) shard count right now.
  std::size_t running_count() const;
  /// pid of shard `i`, -1 when not running. For chaos tests to SIGKILL.
  pid_t pid_of(std::size_t i) const;

 private:
  struct Shard {
    ShardSpec spec;
    ShardState state = ShardState::kStarting;
    pid_t pid = -1;
    int restarts = 0;
    int last_exit_status = 0;
    std::chrono::steady_clock::time_point respawn_at{};
  };

  void monitor_loop();
  void spawn_locked(Shard& s);
  void reap_locked();

  SupervisorConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
  std::thread monitor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace moss::cluster
