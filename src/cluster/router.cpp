#include "cluster/router.hpp"

#include <algorithm>
#include <sstream>

#include "core_util/error.hpp"
#include "core_util/hash.hpp"
#include "serve/cache.hpp"

namespace moss::cluster {

namespace {

std::string first_token(const std::string& line) {
  std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  std::size_t e = line.find_first_of(" \t", b);
  return line.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

std::string rest_after_token(const std::string& line) {
  std::size_t b = line.find_first_not_of(" \t");
  if (b == std::string::npos) return {};
  std::size_t e = line.find_first_of(" \t", b);
  if (e == std::string::npos) return {};
  b = line.find_first_not_of(" \t", e);
  if (b == std::string::npos) return {};
  std::size_t last = line.find_last_not_of(" \t\r");
  return line.substr(b, last - b + 1);
}

constexpr const char* kRouterHelp =
    "ATP <design>      per-DFF arrival times (routed to the design's shard)\n"
    "TRP <design>      per-cell toggle rates + power\n"
    "EMBED <design>    netlist + RTL embeddings\n"
    "RANK <design>     rank registered pool against the design's RTL\n"
    "OWNER <design>    which shard the design's keys live on (no traffic)\n"
    "FLUSH             broadcast: every shard persists its cache segments\n"
    "METRICS           router stats + per-shard breaker states\n"
    "HEALTH            fleet health roll-up\n"
    "HELP              this text\n"
    "QUIT              close the stream\n"
    ".";

}  // namespace

Router::Router(std::vector<std::unique_ptr<Backend>> backends,
               RouterConfig cfg)
    : cfg_(cfg), ring_(cfg.vnodes, cfg.ring_seed) {
  for (auto& b : backends) {
    slots_.push_back(std::make_unique<Slot>(std::move(b), cfg_));
    ring_.add_shard(static_cast<std::uint32_t>(slots_.size() - 1));
  }
}

std::uint64_t Router::design_key(const std::string& token) {
  // Canonicalize so "adder:8" and " adder:8 " (or a path with stray
  // whitespace) land on the same shard — the same normalization the shards'
  // own cache keys use for RTL text.
  return HashBuilder()
      .mix(std::string_view("MOSSROUTE"))
      .mix(serve::canonical_rtl(token))
      .digest();
}

std::string Router::exchange(std::size_t i, const std::string& line) {
  Slot& slot = *slots_[i];
  const std::lock_guard<std::mutex> lock(slot.mu);
  bool probe = false;
  if (!slot.breaker.allow(&probe)) {
    ErrorContext ctx;
    ctx.add("shard", slot.backend->name())
        .add("reason", "breaker_open")
        .transient()
        .fail("shard breaker is open");
  }
  std::uint64_t token;
  {
    const std::lock_guard<std::mutex> slock(stats_mu_);
    token = ++token_seq_;
  }
  std::uint64_t retries = 0;
  try {
    std::string response = serve::with_retry(
        cfg_.retry, &slot.budget, token,
        [&] { return slot.backend->request(line); }, &retries);
    slot.breaker.record(true, false, probe);
    if (retries > 0) {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.retries += retries;
    }
    return response;
  } catch (const std::exception& e) {
    slot.breaker.record(false, serve::is_transient(e), probe);
    if (retries > 0) {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.retries += retries;
    }
    throw;
  }
}

std::string Router::route(const std::string& line, bool* quit) {
  if (quit != nullptr) *quit = false;
  const std::string cmd = first_token(line);
  if (cmd.empty()) return "ERR bad_request empty line";
  if (cmd == "QUIT") {
    if (quit != nullptr) *quit = true;
    return "OK BYE";
  }
  if (cmd == "HELP") return std::string("OK HELP\n") + kRouterHelp;
  if (cmd == "HEALTH") return handle_health();
  if (cmd == "METRICS") return handle_metrics();
  if (cmd == "FLUSH") return handle_flush();
  if (cmd != "ATP" && cmd != "TRP" && cmd != "EMBED" && cmd != "RANK" &&
      cmd != "OWNER") {
    return "ERR bad_request unknown command '" + cmd + "' (try HELP)";
  }
  const std::string design = rest_after_token(line);
  if (design.empty()) return "ERR bad_request " + cmd + " needs a design";
  if (cmd == "OWNER") {
    // Placement lookup for operators and chaos harnesses (which shard to
    // kill to hit this design) — answered from the ring, no shard traffic.
    try {
      const std::uint32_t owner = ring_.owner(design_key(design));
      return "OK OWNER shard=" + slots_[owner]->backend->name();
    } catch (const std::exception&) {
      return "ERR shard_down shard=none no shards configured";
    }
  }

  {
    const std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.requests;
  }
  const std::vector<std::uint32_t> owners =
      ring_.owners(design_key(design), 1 + cfg_.replicas);
  std::string last_error;
  for (std::size_t oi = 0; oi < owners.size(); ++oi) {
    try {
      std::string response = exchange(owners[oi], line);
      if (oi > 0) {
        const std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.failovers;
      }
      return response;
    } catch (const std::exception& e) {
      // Transport failure — the shard never answered. Its breaker has the
      // report; move clockwise to the replica.
      last_error = e.what();
    }
  }
  {
    const std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.shard_down_errors;
  }
  std::string msg = last_error.empty() ? "no shards configured" : last_error;
  std::replace(msg.begin(), msg.end(), '\n', ' ');
  return "ERR shard_down shard=" +
         (owners.empty() ? std::string("none")
                         : slots_[owners[0]]->backend->name()) +
         " " + msg;
}

serve::HealthState Router::health() {
  std::size_t up = 0;
  serve::HealthState worst = serve::HealthState::kOk;
  bool any_breaker_open = false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (breaker_state(i) != serve::BreakerState::kClosed) {
      any_breaker_open = true;
    }
    try {
      const std::string r = exchange(i, "HEALTH");
      if (r.rfind("OK HEALTH", 0) == 0) {
        ++up;
        // Parse the shard's own "state=..." field into the roll-up.
        const std::size_t pos = r.find("state=");
        if (pos != std::string::npos) {
          const std::string state = r.substr(pos + 6, r.find(' ', pos) - pos - 6);
          serve::HealthState s = serve::HealthState::kOk;
          if (state == "degraded") s = serve::HealthState::kDegraded;
          if (state == "overloaded") s = serve::HealthState::kOverloaded;
          if (state == "down") s = serve::HealthState::kDown;
          worst = std::max(worst, s);
        }
      }
    } catch (const std::exception&) {
      // Unreachable shard: reflected below via up==0 / breaker state.
    }
  }
  if (up == 0) return serve::HealthState::kDown;
  if (up < slots_.size() || any_breaker_open) {
    worst = std::max(worst, serve::HealthState::kDegraded);
  }
  return worst;
}

std::string Router::handle_health() {
  std::size_t up = 0, down = 0;
  std::string shard_states;
  serve::HealthState worst = serve::HealthState::kOk;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    bool reachable = false;
    std::string state = "unreachable";
    try {
      const std::string r = exchange(i, "HEALTH");
      if (r.rfind("OK HEALTH", 0) == 0) {
        reachable = true;
        const std::size_t pos = r.find("state=");
        if (pos != std::string::npos) {
          state = r.substr(pos + 6, r.find(' ', pos) - pos - 6);
          serve::HealthState s = serve::HealthState::kOk;
          if (state == "degraded") s = serve::HealthState::kDegraded;
          if (state == "overloaded") s = serve::HealthState::kOverloaded;
          if (state == "down") s = serve::HealthState::kDown;
          worst = std::max(worst, s);
        }
      }
    } catch (const std::exception&) {
    }
    reachable ? ++up : ++down;
    shard_states += " " + slots_[i]->backend->name() + "=" + state;
  }
  serve::HealthState fleet = worst;
  if (up == 0) {
    fleet = serve::HealthState::kDown;
  } else if (down > 0) {
    fleet = std::max(fleet, serve::HealthState::kDegraded);
  }
  std::ostringstream out;
  out << "OK HEALTH state=" << serve::to_string(fleet) << " shards="
      << slots_.size() << " up=" << up << " down=" << down << shard_states;
  return out.str();
}

std::string Router::handle_flush() {
  // Broadcast: ask every reachable shard to persist its cache segments now,
  // so a later SIGKILL costs at most the entries since this flush. One line
  // per shard outcome; unreachable shards are reported, not fatal.
  std::size_t flushed = 0;
  std::string per_shard;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    std::string outcome;
    try {
      std::string r = exchange(i, "FLUSH");
      std::replace(r.begin(), r.end(), '\n', ' ');
      if (r.rfind("OK FLUSH", 0) == 0) {
        ++flushed;
        outcome = r.size() > 9 ? r.substr(9) : std::string("ok");
      } else {
        outcome = r;
      }
    } catch (const std::exception&) {
      outcome = "unreachable";
    }
    per_shard += " " + slots_[i]->backend->name() + "=[" + outcome + "]";
  }
  return "OK FLUSH flushed=" + std::to_string(flushed) + "/" +
         std::to_string(slots_.size()) + per_shard;
}

std::string Router::handle_metrics() {
  RouterStats s = stats();
  std::ostringstream out;
  out << "OK METRICS\n"
      << "router_requests " << s.requests << "\n"
      << "router_failovers " << s.failovers << "\n"
      << "router_shard_down_errors " << s.shard_down_errors << "\n"
      << "router_transport_retries " << s.retries << "\n";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    out << "router_breaker{shard=\"" << slots_[i]->backend->name() << "\"} "
        << serve::to_string(breaker_state(i)) << "\n";
  }
  out << ".";
  return out.str();
}

RouterStats Router::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

serve::BreakerState Router::breaker_state(std::size_t i) const {
  const Slot& slot = *slots_[i];
  const std::lock_guard<std::mutex> lock(slot.mu);
  return slot.breaker.state();
}

}  // namespace moss::cluster
