#include "cluster/segment.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "core_util/crc32.hpp"
#include "tensor/serialize.hpp"

namespace moss::cluster {

namespace {

// Shared MOSSSEG1/MOSSMFT1 header: magic | u32 version | u32 reserved |
// u64 payload_bytes | u32 payload_crc32 | payload.
std::string frame(const char magic[8], const std::string& payload) {
  tensor::ByteWriter w;
  w.bytes(magic, 8);
  w.u32(kSegmentVersion);
  w.u32(0);  // reserved
  w.u64(payload.size());
  w.u32(crc32(payload));
  std::string out = w.take();
  out += payload;
  return out;
}

// Validate a framed blob and return its payload view. One pass, fail-typed:
// the caller's ctx (file=…) prefixes every error.
std::string_view unframe(const char magic[8], std::string_view blob,
                         const ErrorContext& ctx) {
  ctx.check(blob.size() >= kSegmentHeaderBytes, "truncated header");
  if (std::memcmp(blob.data(), magic, 8) != 0) {
    ErrorContext c2 = ctx;
    c2.add("reason", "bad_magic").fail("unrecognized file magic");
  }
  tensor::ByteReader r(blob.substr(8, kSegmentHeaderBytes - 8), ctx);
  const std::uint32_t version = r.u32();
  r.u32();  // reserved
  const std::uint64_t payload_bytes = r.u64();
  const std::uint32_t expect_crc = r.u32();
  if (version != kSegmentVersion) {
    ErrorContext c2 = ctx;
    c2.add("reason", "bad_version")
        .add("version", std::to_string(version))
        .fail("unsupported format version");
  }
  if (blob.size() - kSegmentHeaderBytes != payload_bytes) {
    ErrorContext c2 = ctx;
    c2.add("reason", "truncated")
        .add("expected_bytes", std::to_string(payload_bytes))
        .add("actual_bytes",
             std::to_string(blob.size() - kSegmentHeaderBytes))
        .fail("payload size mismatch");
  }
  const std::string_view payload = blob.substr(kSegmentHeaderBytes);
  if (crc32(payload) != expect_crc) {
    ErrorContext c2 = ctx;
    c2.add("reason", "crc_mismatch").fail("payload checksum mismatch");
  }
  return payload;
}

void ensure_dir(const std::string& dir, const ErrorContext& ctx) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    ctx.check(S_ISDIR(st.st_mode), "cache path exists but is not a directory");
    return;
  }
  // mkdir -p: cache dirs are routinely nested (<cache_root>/shardN) and the
  // root may not exist yet on a shard's first flush.
  for (std::size_t slash = dir.find('/', 1); slash != std::string::npos;
       slash = dir.find('/', slash + 1)) {
    const std::string parent = dir.substr(0, slash);
    if (parent.empty()) continue;
    ctx.check(::mkdir(parent.c_str(), 0755) == 0 || errno == EEXIST,
              std::string("mkdir failed: ") + std::strerror(errno));
  }
  ctx.check(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST,
            std::string("mkdir failed: ") + std::strerror(errno));
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool has_suffix(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> list_segment_files(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* e = ::readdir(d)) {
    if (has_suffix(e->d_name, ".mossseg")) names.emplace_back(e->d_name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

struct ManifestRecord {
  std::string filename;
  std::uint32_t crc = 0;
};

std::string serialize_manifest(std::uint64_t fingerprint,
                               const std::vector<ManifestRecord>& segs) {
  tensor::ByteWriter w;
  w.u64(fingerprint);
  w.u64(segs.size());
  for (const ManifestRecord& s : segs) {
    w.str(s.filename);
    w.u32(s.crc);
  }
  return frame(kManifestMagic, w.take());
}

std::vector<ManifestRecord> deserialize_manifest(std::string_view blob,
                                                 ErrorContext ctx) {
  const std::string_view payload = unframe(kManifestMagic, blob, ctx);
  tensor::ByteReader r(payload, ctx);
  r.u64();  // fingerprint — segments each carry (and enforce) their own
  const std::uint64_t n = r.u64();
  std::vector<ManifestRecord> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ManifestRecord rec;
    rec.filename = r.str();
    rec.crc = r.u32();
    ctx.check(!rec.filename.empty() &&
                  rec.filename.find('/') == std::string::npos,
              "manifest entry escapes the cache directory");
    out.push_back(std::move(rec));
  }
  r.expect_end();
  return out;
}

}  // namespace

std::string serialize_segment(std::uint64_t model_fingerprint,
                              const std::vector<SegmentEntry>& entries) {
  tensor::ByteWriter w;
  w.u64(model_fingerprint);
  w.u64(entries.size());
  for (const SegmentEntry& e : entries) {
    w.u64(e.key);
    w.u32(static_cast<std::uint32_t>(e.value.rows()));
    w.u32(static_cast<std::uint32_t>(e.value.cols()));
    const std::vector<float>& d = e.value.data();
    w.bytes(d.data(), d.size() * sizeof(float));
  }
  return frame(kSegmentMagic, w.take());
}

std::vector<SegmentEntry> deserialize_segment(
    std::string_view blob, std::uint64_t expect_fingerprint,
    ErrorContext ctx) {
  const std::string_view payload = unframe(kSegmentMagic, blob, ctx);
  tensor::ByteReader r(payload, ctx);
  const std::uint64_t fingerprint = r.u64();
  if (expect_fingerprint != 0 && fingerprint != expect_fingerprint) {
    ErrorContext c2 = ctx;
    c2.add("reason", "model_mismatch")
        .add("segment_fingerprint", hex16(fingerprint))
        .add("expected_fingerprint", hex16(expect_fingerprint))
        .fail("segment was written by a different model");
  }
  const std::uint64_t n = r.u64();
  std::vector<SegmentEntry> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SegmentEntry e;
    e.key = r.u64();
    const std::uint32_t rows = r.u32();
    const std::uint32_t cols = r.u32();
    // CRC already passed, so an absurd shape here means a serializer bug,
    // not line noise — still fail typed rather than allocate petabytes.
    if (rows == 0 || cols == 0 ||
        static_cast<std::uint64_t>(rows) * cols * sizeof(float) >
            r.remaining()) {
      ErrorContext c2 = ctx;
      c2.add("reason", "bad_entry")
          .add("entry", std::to_string(i))
          .fail("entry shape inconsistent with payload size");
    }
    std::vector<float> data(static_cast<std::size_t>(rows) * cols);
    for (float& f : data) f = r.f32();
    e.value = tensor::Tensor::from(std::move(data), rows, cols);
    out.push_back(std::move(e));
  }
  r.expect_end();
  return out;
}

SaveReport save_cache(const std::string& dir,
                      const serve::EmbeddingCache& cache,
                      std::uint64_t model_fingerprint,
                      std::size_t max_segment_bytes) {
  ErrorContext ctx;
  ctx.add("dir", dir);
  ensure_dir(dir, ctx);

  const auto entries = cache.export_entries();
  SaveReport report;
  std::vector<ManifestRecord> manifest;
  std::unordered_set<std::string> live;

  // Pack coldest-first entries into bounded segments. Order inside and
  // across segments preserves export order, so a manifest-order reload
  // rebuilds the same relative LRU recency.
  std::vector<SegmentEntry> batch;
  std::size_t batch_bytes = 0;
  const auto flush = [&](std::vector<SegmentEntry>& seg) {
    if (seg.empty()) return;
    const std::string blob = serialize_segment(model_fingerprint, seg);
    const std::string_view payload(blob.data() + kSegmentHeaderBytes,
                                   blob.size() - kSegmentHeaderBytes);
    const std::uint32_t crc = crc32(payload);
    // Content-addressed name: same entries → same file, and a concurrent
    // generation can never collide with different content.
    const std::string name = "seg_" + hex16((static_cast<std::uint64_t>(crc)
                                             << 32) |
                                            (payload.size() & 0xFFFFFFFFu)) +
                             ".mossseg";
    if (live.insert(name).second) {
      tensor::atomic_write_file(dir + "/" + name,
                                [&](std::ostream& out) { out << blob; });
      manifest.push_back({name, crc});
      ++report.segments;
      report.bytes += payload.size();
    }
    report.entries += seg.size();
    seg.clear();
  };

  for (const auto& [key, value] : entries) {
    const std::size_t bytes = value.size() * sizeof(float) + 24;
    if (!batch.empty() && batch_bytes + bytes > max_segment_bytes) {
      flush(batch);
      batch_bytes = 0;
    }
    batch.push_back({key, value});
    batch_bytes += bytes;
  }
  flush(batch);

  // Manifest last: its rename is the atomic switch to the new generation.
  const std::string manifest_blob =
      serialize_manifest(model_fingerprint, manifest);
  tensor::atomic_write_file(dir + "/" + kManifestName, [&](std::ostream& out) {
    out << manifest_blob;
  });

  // GC segments from previous generations (not listed any more).
  for (const std::string& name : list_segment_files(dir)) {
    if (live.count(name) == 0) {
      if (::remove((dir + "/" + name).c_str()) == 0) ++report.removed;
    }
  }
  return report;
}

LoadReport load_cache(const std::string& dir, serve::EmbeddingCache& cache,
                      std::uint64_t model_fingerprint, bool use_mmap) {
  LoadReport report;
  const auto note_rejection = [&](const std::exception& e) {
    ++report.segments_rejected;
    if (report.first_error.empty()) report.first_error = e.what();
  };

  // Prefer the manifest's generation + order; fall back to a directory scan
  // (sorted) when it is missing or damaged — each segment still validates
  // itself, so the fallback can only be as warm as the files allow. An
  // absent manifest (fresh boot, empty dir) is a normal cold start, not an
  // error.
  std::vector<std::string> names;
  {
    const std::string manifest_path = dir + "/" + kManifestName;
    struct stat st;
    if (::stat(manifest_path.c_str(), &st) == 0) {
      ErrorContext ctx;
      ctx.add("file", manifest_path);
      try {
        const tensor::FileBlob blob =
            tensor::FileBlob::read(manifest_path, ctx, use_mmap);
        for (ManifestRecord& rec : deserialize_manifest(blob.view(), ctx)) {
          names.push_back(std::move(rec.filename));
        }
      } catch (const std::exception& e) {
        if (report.first_error.empty()) report.first_error = e.what();
        names = list_segment_files(dir);
      }
    } else {
      names = list_segment_files(dir);
    }
  }

  for (const std::string& name : names) {
    const std::string path = dir + "/" + name;
    ErrorContext ctx;
    ctx.add("file", path);
    try {
      // Segments are CRC-checked and copied entry-by-entry into the cache,
      // so the mmap backing only lives for this scope; the page cache still
      // saves the up-front full-file read for segments that fail early.
      const tensor::FileBlob blob = tensor::FileBlob::read(path, ctx, use_mmap);
      const std::vector<SegmentEntry> entries =
          deserialize_segment(blob.view(), model_fingerprint, ctx);
      for (const SegmentEntry& e : entries) {
        cache.put(e.key, e.value);
        ++report.entries;
      }
      ++report.segments_loaded;
    } catch (const std::exception& e) {
      // Skip-and-count: a damaged segment costs its own entries, nothing
      // else. The shard serves cold for those keys instead of crashing.
      note_rejection(e);
    }
  }
  return report;
}

}  // namespace moss::cluster
