#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core_util/error.hpp"
#include "serve/cache.hpp"

namespace moss::cluster {

/// Persistent, content-addressed on-disk embedding cache: the warm-restart
/// half of moss::cluster. A shard's EmbeddingCache is snapshotted into
/// segment files so a killed-and-respawned process starts warm (~9,200 QPS
/// FEP-rank) instead of cold (~102 QPS, see results/bench_serve.json).
///
/// Segment file format (MOSSSEG1 v1), little-endian throughout:
///
///   magic "MOSSSEG1" | u32 format_version | u32 reserved(0)
///   u64 payload_bytes | u32 payload_crc32 | payload
///   payload: u64 model_fingerprint | u64 entry_count
///            per entry: u64 key | u32 rows | u32 cols | rows*cols f32
///
/// Manifest file format (MOSSMFT1 v1), same header discipline:
///
///   magic "MOSSMFT1" | u32 format_version | u32 reserved(0)
///   u64 payload_bytes | u32 payload_crc32 | payload
///   payload: u64 model_fingerprint | u64 segment_count
///            per segment: str filename | u32 payload_crc32
///
/// Write discipline is MOSSCKP1's: every file goes through
/// tensor::atomic_write_file (tmp + fsync + rename), segments first, the
/// manifest last — so the manifest rename is the atomic generation switch
/// and a crash at any point leaves the previous generation fully loadable.
/// Segment files are content-addressed (named by their payload CRC + size),
/// so a half-written generation can never clobber a live segment. Loads
/// follow MOSSPLN1's one-read style: slurp the file, verify magic / version
/// / size / CRC over the whole payload, then slice entries out with a
/// bounds-checked reader — any mismatch raises a typed ContextError
/// (reason=bad_magic / bad_version / truncated / crc_mismatch /
/// model_mismatch / bad_entry) naming the file.
inline constexpr char kSegmentMagic[8] = {'M', 'O', 'S', 'S',
                                          'S', 'E', 'G', '1'};
inline constexpr char kManifestMagic[8] = {'M', 'O', 'S', 'S',
                                           'M', 'F', 'T', '1'};
inline constexpr std::uint32_t kSegmentVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 8 + 4 + 4 + 8 + 4;
/// Manifest basename inside a cache directory.
inline constexpr const char* kManifestName = "MANIFEST.mossmft";

/// One embedding row as it travels through a segment.
struct SegmentEntry {
  std::uint64_t key = 0;
  tensor::Tensor value;
};

/// What save_cache wrote (echoed for logs/metrics).
struct SaveReport {
  std::size_t segments = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;        ///< total payload bytes across segments
  std::size_t removed = 0;      ///< stale segment files garbage-collected
};

/// What load_cache managed to restore. Corrupt or mismatched segments are
/// counted and skipped — a damaged cache directory degrades to a (partly)
/// cold start, it never takes the shard down.
struct LoadReport {
  std::size_t segments_loaded = 0;
  std::size_t segments_rejected = 0;  ///< failed validation, skipped
  std::size_t entries = 0;            ///< entries inserted into the cache
  /// First rejection's rendered error (empty when none) — surfaced so
  /// operators see *why* a restart came up colder than expected.
  std::string first_error;
};

/// Serialize entries into one segment blob (header + payload).
std::string serialize_segment(std::uint64_t model_fingerprint,
                              const std::vector<SegmentEntry>& entries);

/// Parse + integrity-check one segment blob. `expect_fingerprint` of 0
/// accepts any model; otherwise a mismatch fails typed
/// (reason=model_mismatch) — embeddings from different parameters must
/// never warm a cache keyed for this model. `ctx` frames (file=…) prefix
/// every error.
std::vector<SegmentEntry> deserialize_segment(
    std::string_view blob, std::uint64_t expect_fingerprint,
    ErrorContext ctx);

/// Snapshot `cache` into `dir` as a fresh segment generation:
/// content-addressed segment files of at most `max_segment_bytes` payload
/// each, then the manifest, all atomically; finally GC any *.mossseg not in
/// the new manifest. Creates `dir` if needed. Entries bigger than
/// max_segment_bytes get a segment of their own.
SaveReport save_cache(const std::string& dir,
                      const serve::EmbeddingCache& cache,
                      std::uint64_t model_fingerprint,
                      std::size_t max_segment_bytes = 4u << 20);

/// Restore a cache directory written by save_cache: read the manifest (fall
/// back to every *.mossseg in the directory, sorted, when the manifest is
/// missing or unreadable), load each segment, and put() every entry whose
/// segment validates. Per-segment failures are skipped and counted;
/// load_cache itself only throws on programmer error (never on bad data).
/// With `use_mmap` segment files are mapped read-only instead of slurped
/// (falls back to the one-read path when mapping is unavailable); the
/// restored cache is identical either way.
LoadReport load_cache(const std::string& dir, serve::EmbeddingCache& cache,
                      std::uint64_t model_fingerprint, bool use_mmap = false);

}  // namespace moss::cluster
