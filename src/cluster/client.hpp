#pragma once

#include <string>

namespace moss::cluster {

/// Blocking line-protocol client for one `moss_serve` Unix socket.
///
/// request() writes one protocol line and reads the response: a single
/// "OK ..."/"ERR ..." line, or — for the block commands (METRICS, HELP) —
/// everything up to the lone "." terminator, newline-joined. Every failure
/// mode a dead or wedged shard can produce (connect refused, send on a
/// closed socket, read timeout, EOF mid-response) raises a *transient*
/// ContextError with reason=connect_failed / send_failed / recv_timeout /
/// connection_closed and the socket path — exactly the shape the router's
/// breaker/retry policies key off.
///
/// The connection is lazy and sticky: first request() connects, later ones
/// reuse the socket, and any failure closes it so the next request
/// reconnects from scratch (a respawned shard gets picked up without any
/// router-side plumbing). Not thread-safe; the router serializes per
/// backend.
class LineClient {
 public:
  explicit LineClient(std::string socket_path, int timeout_ms = 5000);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Send `line` (newline appended) and return the full response without
  /// its trailing newline / "." terminator line.
  std::string request(const std::string& line);

  bool connected() const { return fd_ >= 0; }
  void close();
  const std::string& socket_path() const { return path_; }

 private:
  void connect_locked();
  /// One response line (without '\n'), from the buffer or the socket.
  std::string read_line();

  std::string path_;
  int timeout_ms_;
  int fd_ = -1;
  std::string buf_;  ///< bytes received past the last returned line
};

}  // namespace moss::cluster
