#include "cluster/ring.hpp"

#include <algorithm>

#include "core_util/error.hpp"
#include "core_util/hash.hpp"

namespace moss::cluster {

namespace {
std::uint64_t point_hash(std::uint64_t seed, std::uint32_t shard,
                         std::size_t vnode) {
  return HashBuilder()
      .mix(std::string_view("MOSSRING"))
      .mix(seed)
      .mix(static_cast<std::uint64_t>(shard))
      .mix(static_cast<std::uint64_t>(vnode))
      .digest();
}
}  // namespace

HashRing::HashRing(std::size_t vnodes, std::uint64_t seed)
    : vnodes_(std::max<std::size_t>(1, vnodes)), seed_(seed) {}

void HashRing::add_shard(std::uint32_t shard) {
  if (has_shard(shard)) return;
  shard_ids_.insert(
      std::lower_bound(shard_ids_.begin(), shard_ids_.end(), shard), shard);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    points_.push_back({point_hash(seed_, shard, v), shard});
  }
  // Ties (two points with equal hash) resolve by shard id so insertion
  // order never changes placement.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

void HashRing::remove_shard(std::uint32_t shard) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard](const Point& p) {
                                 return p.shard == shard;
                               }),
                points_.end());
  const auto it =
      std::lower_bound(shard_ids_.begin(), shard_ids_.end(), shard);
  if (it != shard_ids_.end() && *it == shard) shard_ids_.erase(it);
}

bool HashRing::has_shard(std::uint32_t shard) const {
  return std::binary_search(shard_ids_.begin(), shard_ids_.end(), shard);
}

std::uint32_t HashRing::owner(std::uint64_t key) const {
  if (points_.empty()) {
    ErrorContext ctx;
    ctx.add("reason", "empty_ring").fail("hash ring has no shards");
  }
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->shard;
}

std::vector<std::uint32_t> HashRing::owners(std::uint64_t key,
                                            std::size_t n) const {
  std::vector<std::uint32_t> out;
  if (points_.empty() || n == 0) return out;
  n = std::min(n, shard_ids_.size());
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  if (it == points_.end()) it = points_.begin();
  for (std::size_t steps = 0; steps < points_.size() && out.size() < n;
       ++steps) {
    const std::uint32_t shard = it->shard;
    if (std::find(out.begin(), out.end(), shard) == out.end()) {
      out.push_back(shard);
    }
    ++it;
    if (it == points_.end()) it = points_.begin();
  }
  return out;
}

}  // namespace moss::cluster
