#include "cluster/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core_util/error.hpp"

namespace moss::cluster {

const char* to_string(ShardState s) {
  switch (s) {
    case ShardState::kStarting: return "starting";
    case ShardState::kRunning: return "running";
    case ShardState::kBackoff: return "backoff";
    case ShardState::kExited: return "exited";
    case ShardState::kGaveUp: return "gave_up";
  }
  return "unknown";
}

namespace {

// SIGCHLD self-pipe: the handler does the only async-signal-safe thing —
// one write — and the monitor thread's poll() wakes to reap. Process-global
// because signal dispositions are.
int g_sigchld_pipe[2] = {-1, -1};

void sigchld_handler(int) {
  const char b = 1;
  // Best-effort: a full pipe still wakes the reader eventually.
  [[maybe_unused]] ssize_t n = ::write(g_sigchld_pipe[1], &b, 1);
}

void install_sigchld_once() {
  static bool installed = false;
  if (installed) return;
  if (::pipe(g_sigchld_pipe) != 0) {
    ErrorContext ctx;
    ctx.add("reason", "spawn_failed")
        .fail(std::string("pipe(): ") + std::strerror(errno));
  }
  for (int fd : {g_sigchld_pipe[0], g_sigchld_pipe[1]}) {
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  struct sigaction sa{};
  sa.sa_handler = sigchld_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART here (unlike the shard's SIGTERM handling): the monitor
  // owns the self-pipe, nothing else should see EINTR for SIGCHLD.
  sa.sa_flags = SA_RESTART | SA_NOCLDSTOP;
  ::sigaction(SIGCHLD, &sa, nullptr);
  installed = true;
}

// Signal the shard's whole process group; fall back to the direct child
// if the group is already gone (or setpgid lost its race).
void signal_shard(pid_t pid, int sig) {
  if (::kill(-pid, sig) != 0) ::kill(pid, sig);
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig cfg) : cfg_(cfg) {
  install_sigchld_once();
}

Supervisor::~Supervisor() { shutdown(); }

void Supervisor::spawn_locked(Shard& s) {
  std::vector<char*> argv;
  argv.reserve(s.spec.argv.size() + 1);
  for (std::string& a : s.spec.argv) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    // Treat like a dirty death: backoff and try again rather than abort
    // the whole fleet over a transient EAGAIN.
    s.state = ShardState::kBackoff;
    s.respawn_at = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(cfg_.backoff_cap_ms);
    return;
  }
  if (pid == 0) {
    // Child: own process group so shutdown can signal the shard's whole
    // tree (a /bin/sh wrapper would otherwise die and orphan its
    // grandchildren, which keep our inherited fds open), then reset
    // dispositions the parent installed and exec.
    ::setpgid(0, 0);
    ::signal(SIGCHLD, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::execv(argv[0], argv.data());
    // Exec failed — exit dirty so the supervisor counts it.
    ::_exit(127);
  }
  // Both sides call setpgid to close the fork/exec race; whoever runs
  // second gets a harmless EACCES/ESRCH.
  ::setpgid(pid, pid);
  s.pid = pid;
  s.state = ShardState::kRunning;
}

std::size_t Supervisor::add_shard(ShardSpec spec) {
  if (spec.argv.empty()) {
    ErrorContext ctx;
    ctx.add("shard", spec.name)
        .add("reason", "bad_request")
        .fail("shard spec has no argv");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(Shard{std::move(spec)});
  spawn_locked(shards_.back());
  return shards_.size() - 1;
}

void Supervisor::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::reap_locked() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    for (Shard& s : shards_) {
      if (s.pid != pid) continue;
      s.pid = -1;
      s.last_exit_status = status;
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (clean) {
        // The shard drained, flushed its cache segments and exited 0 on
        // purpose — honoring that is what makes `kill -TERM` an operator
        // tool rather than a respawn trigger.
        s.state = ShardState::kExited;
      } else if (s.restarts >= cfg_.max_restarts) {
        s.state = ShardState::kGaveUp;
      } else {
        int ms = cfg_.backoff_base_ms;
        for (int i = 0; i < s.restarts && ms < cfg_.backoff_cap_ms; ++i) {
          ms *= 2;
        }
        if (ms > cfg_.backoff_cap_ms) ms = cfg_.backoff_cap_ms;
        s.state = ShardState::kBackoff;
        s.respawn_at =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
        ++s.restarts;
      }
      break;
    }
  }
}

void Supervisor::monitor_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Wake on SIGCHLD, or after a bounded nap to service respawn timers.
    pollfd pfd{g_sigchld_pipe[0], POLLIN, 0};
    ::poll(&pfd, 1, 50);
    if (pfd.revents & POLLIN) {
      char drain[64];
      while (::read(g_sigchld_pipe[0], drain, sizeof(drain)) > 0) {
      }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    reap_locked();
    const auto now = std::chrono::steady_clock::now();
    for (Shard& s : shards_) {
      if (s.state == ShardState::kBackoff && now >= s.respawn_at) {
        spawn_locked(s);
      }
    }
  }
}

void Supervisor::shutdown() {
  // Stop the monitor FIRST so a shard dying dirty mid-shutdown can't be
  // respawned under us; this shutdown loop does its own reaping.
  stopping_.store(true, std::memory_order_relaxed);
  if (monitor_.joinable()) monitor_.join();

  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (Shard& s : shards_) {
      if (s.pid > 0) signal_shard(s.pid, SIGTERM);
    }
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.shutdown_grace_ms);
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      reap_locked();
      bool any_live = false;
      for (const Shard& s : shards_) any_live = any_live || s.pid > 0;
      if (!any_live) {
        // Nothing is coming back: fold pending-respawn states to exited so
        // status() reads truthfully after shutdown.
        for (Shard& s : shards_) {
          if (s.state == ShardState::kBackoff) s.state = ShardState::kExited;
        }
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        for (Shard& s : shards_) {
          if (s.pid > 0) signal_shard(s.pid, SIGKILL);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
    stopping_.store(false, std::memory_order_relaxed);
  }
}

std::vector<ShardStatus> Supervisor::status() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const Shard& s : shards_) {
    out.push_back({s.spec.name, s.state, s.pid, s.restarts,
                   s.last_exit_status});
  }
  return out;
}

std::size_t Supervisor::running_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.pid > 0 ? 1 : 0;
  return n;
}

pid_t Supervisor::pid_of(std::size_t i) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return i < shards_.size() ? shards_[i].pid : -1;
}

}  // namespace moss::cluster
