#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace moss::cluster {

/// Consistent hash ring mapping request keys onto shard indices.
///
/// Each shard contributes `vnodes` virtual points (FNV-1a of
/// "MOSSRING" | seed | shard | vnode via HashBuilder — no std::hash, so the
/// ring is bit-identical across processes and platforms; the router in the
/// launcher and a router rebuilt after a crash agree on every placement).
/// owner(key) is the first point clockwise of the key; owners(key, n) keeps
/// walking to collect n *distinct* shards — the replica set the router
/// fails over across when the primary is down.
///
/// Adding or removing one shard moves only ~1/N of the key space, so a
/// fleet resize invalidates only that slice of each shard's warm cache.
class HashRing {
 public:
  /// An empty ring is valid (owner() fails); add_shard() populates it.
  explicit HashRing(std::size_t vnodes = 64, std::uint64_t seed = 0);

  void add_shard(std::uint32_t shard);
  void remove_shard(std::uint32_t shard);
  bool has_shard(std::uint32_t shard) const;
  std::size_t shard_count() const { return shard_ids_.size(); }
  const std::vector<std::uint32_t>& shards() const { return shard_ids_; }

  /// Shard owning `key`. Fails (ContextError reason=empty_ring) on an
  /// empty ring.
  std::uint32_t owner(std::uint64_t key) const;
  /// Up to `n` distinct shards in ring order starting at key's owner:
  /// owners(key, n)[0] == owner(key), the rest are the failover replicas.
  std::vector<std::uint32_t> owners(std::uint64_t key, std::size_t n) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::size_t vnodes_;
  std::uint64_t seed_;
  std::vector<Point> points_;  ///< sorted by hash
  std::vector<std::uint32_t> shard_ids_;  ///< sorted
};

}  // namespace moss::cluster
