#pragma once

#include "aig/aig.hpp"

namespace moss::aig {

/// Result of rebuilding an AIG through an optimization pass: the new graph
/// plus, for every old node, the literal realizing it in the new graph.
struct RebuiltAig {
  Aig aig;
  std::vector<Lit> old_to_new;  ///< indexed by old node id
};

/// Depth-balance the AIG (the classic `balance` pass): every maximal
/// single-fanout AND tree is collected into its leaf set and rebuilt as a
/// balanced tree ordered by leaf depth, minimizing the rebuilt tree's
/// depth. Functionally equivalent by construction; structural hashing in
/// the rebuilt graph also re-shares merged subtrees.
RebuiltAig balance(const Aig& src);

/// Maximum AND depth of the graph (levels() maximum).
int depth(const Aig& g);

}  // namespace moss::aig
