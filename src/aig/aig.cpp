#include "aig/aig.hpp"

#include <algorithm>

#include "core_util/check.hpp"

namespace moss::aig {

std::uint32_t Aig::add_pi() {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(AigNode{AigKind::kPi, 0, 0});
  pis_.push_back(id);
  return id;
}

Lit Aig::and2(Lit a, Lit b) {
  // Constant folding and trivial cases.
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;

  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  const auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;

  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(AigNode{AigKind::kAnd, a, b});
  ++num_ands_;
  const Lit out = make_lit(id, false);
  strash_.emplace(key, out);
  return out;
}

Lit Aig::xor2(Lit a, Lit b) {
  // a^b = !(!(a&!b) & !(!a&b))
  return lit_not(and2(lit_not(and2(a, lit_not(b))),
                      lit_not(and2(lit_not(a), b))));
}

Lit Aig::mux(Lit sel, Lit t, Lit f) {
  return lit_not(and2(lit_not(and2(sel, t)), lit_not(and2(lit_not(sel), f))));
}

std::uint32_t Aig::add_latch() {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(AigNode{AigKind::kLatch, 0, 0});
  latches_.push_back(id);
  return id;
}

void Aig::set_latch_next(std::uint32_t latch, Lit next) {
  MOSS_CHECK(latch < nodes_.size() && nodes_[latch].kind == AigKind::kLatch,
             "not a latch");
  nodes_[latch].fanin0 = next;
}

std::vector<int> Aig::levels() const {
  std::vector<int> lvl(nodes_.size(), 0);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == AigKind::kAnd) {
      lvl[i] = 1 + std::max(lvl[lit_node(nodes_[i].fanin0)],
                            lvl[lit_node(nodes_[i].fanin1)]);
    }
  }
  return lvl;
}

namespace {

/// Build an AIG literal for a truth table over already-computed input
/// literals, by Shannon expansion on the highest variable.
Lit tt_to_aig(Aig& g, std::uint64_t table, const std::vector<Lit>& ins,
              int num_vars) {
  if (num_vars == 0) return (table & 1ull) ? kLitTrue : kLitFalse;
  const int v = num_vars - 1;
  const std::uint32_t half = 1u << v;
  // Split rows by variable v.
  std::uint64_t lo = 0, hi = 0;
  for (std::uint32_t row = 0; row < (1u << num_vars); ++row) {
    const bool bit = (table >> row) & 1ull;
    if (!bit) continue;
    if (row & half) {
      hi |= 1ull << (row & (half - 1));
    } else {
      lo |= 1ull << (row & (half - 1));
    }
  }
  const Lit f0 = tt_to_aig(g, lo, ins, v);
  const Lit f1 = tt_to_aig(g, hi, ins, v);
  if (f0 == f1) return f0;
  return g.mux(ins[static_cast<std::size_t>(v)], f1, f0);
}

}  // namespace

AigConversion from_netlist(const netlist::Netlist& nl) {
  MOSS_CHECK(nl.finalized(), "AIG conversion needs a finalized netlist");
  AigConversion conv;
  Aig& g = conv.aig;
  conv.node_lit.assign(nl.num_nodes(), kLitFalse);

  using netlist::NodeId;
  using netlist::NodeKind;

  // PIs and latches first so feedback resolves.
  for (const NodeId id : nl.inputs()) {
    conv.node_lit[static_cast<std::size_t>(id)] = make_lit(g.add_pi(), false);
  }
  for (const NodeId id : nl.flops()) {
    conv.node_lit[static_cast<std::size_t>(id)] =
        make_lit(g.add_latch(), false);
  }

  for (const NodeId id : nl.topo_order()) {
    const netlist::Node& n = nl.node(id);
    if (n.kind == NodeKind::kPrimaryInput) continue;
    if (n.kind == NodeKind::kPrimaryOutput) {
      conv.node_lit[static_cast<std::size_t>(id)] =
          conv.node_lit[static_cast<std::size_t>(n.fanin[0])];
      continue;
    }
    const cell::CellType& t = nl.library().type(n.type);
    if (t.is_flop()) continue;  // handled below
    std::vector<Lit> ins;
    ins.reserve(n.fanin.size());
    for (const NodeId f : n.fanin) {
      ins.push_back(conv.node_lit[static_cast<std::size_t>(f)]);
    }
    conv.node_lit[static_cast<std::size_t>(id)] =
        tt_to_aig(g, t.truth_table, ins, t.num_inputs);
  }

  // Latch next-state functions, with enable/reset semantics folded in:
  //   next = R ? reset_value : (E ? D : Q)
  for (const NodeId id : nl.flops()) {
    const netlist::Node& n = nl.node(id);
    const cell::CellType& t = nl.library().type(n.type);
    const Lit q = conv.node_lit[static_cast<std::size_t>(id)];
    const auto pin_lit = [&](const char* name) {
      const int p = t.pin_index(name);
      MOSS_CHECK(p >= 0, "missing flop pin");
      return conv.node_lit[static_cast<std::size_t>(
          n.fanin[static_cast<std::size_t>(p)])];
    };
    Lit next = pin_lit("D");
    if (t.has_enable) next = g.mux(pin_lit("E"), next, q);
    if (t.has_reset) {
      next = g.mux(pin_lit("R"), t.reset_value ? kLitTrue : kLitFalse, next);
    }
    g.set_latch_next(lit_node(q), next);
  }

  for (const NodeId id : nl.outputs()) {
    g.add_po(conv.node_lit[static_cast<std::size_t>(id)]);
  }
  return conv;
}

}  // namespace moss::aig
