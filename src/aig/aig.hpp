#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace moss::aig {

/// Literal: 2*node + complement. Node 0 is constant false, so literal 0 is
/// false and literal 1 is true.
using Lit = std::uint32_t;
inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;

inline Lit make_lit(std::uint32_t node, bool complemented) {
  return (node << 1) | (complemented ? 1u : 0u);
}
inline std::uint32_t lit_node(Lit l) { return l >> 1; }
inline bool lit_compl(Lit l) { return (l & 1u) != 0; }
inline Lit lit_not(Lit l) { return l ^ 1u; }

enum class AigKind : std::uint8_t { kConst0, kPi, kAnd, kLatch };

struct AigNode {
  AigKind kind = AigKind::kConst0;
  Lit fanin0 = 0;  ///< kAnd both; kLatch: next-state literal
  Lit fanin1 = 0;
};

/// And-Inverter Graph with latches — the representation DeepSeq-style
/// baselines learn on. Nodes have uniform function (2-input AND) with
/// complemented edges; latches are the sequential elements.
class Aig {
 public:
  Aig() { nodes_.push_back(AigNode{AigKind::kConst0, 0, 0}); }

  std::uint32_t add_pi();
  /// Structurally hashed AND with constant folding and trivial identities.
  Lit and2(Lit a, Lit b);
  Lit or2(Lit a, Lit b) { return lit_not(and2(lit_not(a), lit_not(b))); }
  Lit xor2(Lit a, Lit b);
  Lit mux(Lit sel, Lit t, Lit f);
  /// Create a latch (its next-state literal is set later via set_latch_next
  /// so feedback can reference the latch output).
  std::uint32_t add_latch();
  void set_latch_next(std::uint32_t latch, Lit next);
  void add_po(Lit l) { pos_.push_back(l); }

  std::size_t num_nodes() const { return nodes_.size(); }
  const AigNode& node(std::uint32_t id) const { return nodes_[id]; }
  const std::vector<std::uint32_t>& pis() const { return pis_; }
  const std::vector<std::uint32_t>& latches() const { return latches_; }
  const std::vector<Lit>& pos() const { return pos_; }
  std::size_t num_ands() const { return num_ands_; }

  /// AND nodes in creation order are already topological (fanins precede).
  /// Levels: PIs/latches/const at 0, ANDs at 1+max(fanin levels).
  std::vector<int> levels() const;

 private:
  std::vector<AigNode> nodes_;
  std::vector<std::uint32_t> pis_;
  std::vector<std::uint32_t> latches_;
  std::vector<Lit> pos_;
  std::unordered_map<std::uint64_t, Lit> strash_;
  std::size_t num_ands_ = 0;
};

/// Conversion result: the AIG plus, for every netlist node, the literal
/// realizing its output function (used to map cell-level labels onto AIG
/// nodes for the baseline — with the inevitable distortion the paper
/// criticizes: inverters vanish, complex cells shatter into several ANDs).
struct AigConversion {
  Aig aig;
  std::vector<Lit> node_lit;  ///< indexed by netlist NodeId
};

AigConversion from_netlist(const netlist::Netlist& nl);

}  // namespace moss::aig
