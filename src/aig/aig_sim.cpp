#include "aig/aig_sim.hpp"

#include "core_util/check.hpp"

namespace moss::aig {

void AigSimulator::step(const std::vector<std::uint8_t>& pi_values) {
  const Aig& g = *g_;
  MOSS_CHECK(pi_values.size() == g.pis().size(), "AIG sim: PI count mismatch");
  for (std::size_t i = 0; i < g.pis().size(); ++i) {
    values_[g.pis()[i]] = pi_values[i] & 1u;
  }
  for (const std::uint32_t l : g.latches()) values_[l] = latch_state_[l];
  // Creation order is topological for AND nodes.
  for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).kind != AigKind::kAnd) continue;
    values_[i] = static_cast<std::uint8_t>(value(g.node(i).fanin0) &
                                           value(g.node(i).fanin1));
  }
  for (const std::uint32_t l : g.latches()) {
    latch_state_[l] = value(g.node(l).fanin0);
  }
}

std::vector<std::uint8_t> AigSimulator::output_values() const {
  std::vector<std::uint8_t> out;
  out.reserve(g_->pos().size());
  for (const Lit l : g_->pos()) out.push_back(value(l));
  return out;
}

}  // namespace moss::aig
