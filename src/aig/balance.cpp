#include "aig/balance.hpp"

#include <algorithm>

#include "core_util/check.hpp"

namespace moss::aig {

int depth(const Aig& g) {
  int d = 0;
  for (const int l : g.levels()) d = std::max(d, l);
  return d;
}

namespace {

/// Number of AND/latch consumers of each node (POs and latch next-state
/// references count too — a node feeding anything outside one AND tree
/// must stay a tree boundary).
std::vector<int> fanout_counts(const Aig& g) {
  std::vector<int> out(g.num_nodes(), 0);
  for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
    const AigNode& n = g.node(i);
    if (n.kind == AigKind::kAnd) {
      ++out[lit_node(n.fanin0)];
      ++out[lit_node(n.fanin1)];
    } else if (n.kind == AigKind::kLatch) {
      ++out[lit_node(n.fanin0)];
    }
  }
  for (const Lit l : g.pos()) ++out[lit_node(l)];
  return out;
}

struct Balancer {
  const Aig& src;
  Aig& dst;
  const std::vector<int>& fanout;
  std::vector<Lit>& map;  // old node -> new lit (for uncomplemented node)
  std::vector<int> new_level;  // level per new node, maintained incrementally

  int level_of(Lit l) {
    const std::uint32_t n = lit_node(l);
    if (n >= new_level.size()) new_level.resize(dst.num_nodes(), 0);
    return new_level[n];
  }

  Lit make_and(Lit a, Lit b) {
    const Lit r = dst.and2(a, b);
    if (new_level.size() < dst.num_nodes()) {
      new_level.resize(dst.num_nodes(), 0);
    }
    // For AND nodes level = 1 + max(children); constants/PIs stay 0.
    if (dst.node(lit_node(r)).kind == AigKind::kAnd) {
      new_level[lit_node(r)] =
          1 + std::max(level_of(dst.node(lit_node(r)).fanin0),
                       level_of(dst.node(lit_node(r)).fanin1));
    }
    return r;
  }

  Lit lit_of(Lit old_lit) const {
    const Lit base = map[lit_node(old_lit)];
    return lit_compl(old_lit) ? lit_not(base) : base;
  }

  /// Collect the leaves of the maximal AND tree rooted at old node `root`:
  /// descend through uncomplemented, single-fanout AND children.
  void collect_leaves(Lit old_lit, Lit root_node_check,
                      std::vector<Lit>& leaves) const {
    const std::uint32_t node = lit_node(old_lit);
    const AigNode& n = src.node(node);
    const bool absorbable =
        !lit_compl(old_lit) && n.kind == AigKind::kAnd &&
        fanout[node] == 1 && make_lit(node, false) != root_node_check;
    if (!absorbable) {
      leaves.push_back(old_lit);
      return;
    }
    collect_leaves(n.fanin0, root_node_check, leaves);
    collect_leaves(n.fanin1, root_node_check, leaves);
  }

  /// Build a balanced AND over already-mapped leaves, pairing the two
  /// shallowest operands first (Huffman-style on depth).
  Lit build_balanced(std::vector<Lit> new_leaves) {
    MOSS_CHECK(!new_leaves.empty(), "balance: empty leaf set");
    while (new_leaves.size() > 1) {
      // Sort descending by level; combine the two shallowest (back).
      std::sort(new_leaves.begin(), new_leaves.end(), [&](Lit a, Lit b) {
        return level_of(a) > level_of(b);
      });
      const Lit x = new_leaves.back();
      new_leaves.pop_back();
      const Lit y = new_leaves.back();
      new_leaves.pop_back();
      new_leaves.push_back(make_and(x, y));
    }
    return new_leaves[0];
  }
};

}  // namespace

RebuiltAig balance(const Aig& src) {
  RebuiltAig out;
  out.old_to_new.assign(src.num_nodes(), kLitFalse);
  const std::vector<int> fanout = fanout_counts(src);
  Balancer bal{src, out.aig, fanout, out.old_to_new};

  // PIs and latches keep their order.
  for (const std::uint32_t p : src.pis()) {
    out.old_to_new[p] = make_lit(out.aig.add_pi(), false);
  }
  for (const std::uint32_t l : src.latches()) {
    out.old_to_new[l] = make_lit(out.aig.add_latch(), false);
  }

  // AND nodes in creation (topological) order. Nodes absorbed into a
  // parent's leaf set never get queried via map (their only consumer
  // rebuilds from the leaves), but mapping them anyway is harmless and
  // keeps old_to_new total.
  for (std::uint32_t i = 0; i < src.num_nodes(); ++i) {
    if (src.node(i).kind != AigKind::kAnd) continue;
    std::vector<Lit> leaves;
    const Lit root = make_lit(i, false);
    bal.collect_leaves(src.node(i).fanin0, root, leaves);
    bal.collect_leaves(src.node(i).fanin1, root, leaves);
    std::vector<Lit> new_leaves;
    new_leaves.reserve(leaves.size());
    for (const Lit l : leaves) new_leaves.push_back(bal.lit_of(l));
    out.old_to_new[i] = bal.build_balanced(std::move(new_leaves));
  }

  for (const std::uint32_t l : src.latches()) {
    out.aig.set_latch_next(lit_node(out.old_to_new[l]),
                           bal.lit_of(src.node(l).fanin0));
  }
  for (const Lit po : src.pos()) out.aig.add_po(bal.lit_of(po));
  return out;
}

}  // namespace moss::aig
