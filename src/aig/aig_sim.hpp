#pragma once

#include <vector>

#include "aig/aig.hpp"

namespace moss::aig {

/// Cycle-based AIG simulator (verifies netlist→AIG conversion and provides
/// AIG-level activity for the baseline's supervision).
class AigSimulator {
 public:
  explicit AigSimulator(const Aig& g)
      : g_(&g), values_(g.num_nodes(), 0), latch_state_(g.num_nodes(), 0) {}

  void step(const std::vector<std::uint8_t>& pi_values);

  std::uint8_t value(Lit l) const {
    const std::uint8_t v = values_[lit_node(l)];
    return lit_compl(l) ? static_cast<std::uint8_t>(1 - v) : v;
  }
  std::vector<std::uint8_t> output_values() const;

 private:
  const Aig* g_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> latch_state_;
};

}  // namespace moss::aig
