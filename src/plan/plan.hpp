#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cell/library.hpp"
#include "core/features.hpp"
#include "core_util/error.hpp"
#include "gnn/two_phase_gnn.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace moss::plan {

/// Plan blob container format (v1):
///
///   magic "MOSSPLN1" | u32 format_version | u32 reserved(0)
///   u64 payload_bytes | u32 payload_crc32 | payload
///
/// Little-endian throughout, following the MOSSCKP1 discipline: writes go
/// through tensor::atomic_write_file (tmp + fsync + rename), loads do one
/// read, verify the CRC32 over the whole payload, then slice the flat
/// arrays out — no pointer fixup, no per-node allocation.
inline constexpr char kPlanMagic[8] = {'M', 'O', 'S', 'S', 'P', 'L', 'N', '1'};
inline constexpr std::uint32_t kPlanVersion = 1;
inline constexpr std::size_t kPlanHeaderBytes = 8 + 4 + 4 + 8 + 4;

/// Coarse node classification, precomputed so hot loops (simulation, STA,
/// cone walks) never consult the cell library to branch.
enum class NodeClass : std::uint8_t {
  kInput = 0,   ///< primary input
  kOutput = 1,  ///< primary output (excluded from the GNN)
  kComb = 2,    ///< combinational cell
  kFlop = 3,    ///< sequential cell (DFF)
  kTie = 4,     ///< constant driver
};

/// A finalized netlist + cluster assignment + GNN schedule lowered into one
/// flat CSR/SoA structure ("execution plan"). Everything the hot consumers
/// walk — adjacency, per-level ranges, the two-phase update schedule, node
/// features, label rows — lives in contiguous arrays indexed by NodeId, so
/// iteration is cache-friendly and the whole plan round-trips through a
/// single CRC-checked blob.
///
/// Invariants (established by compile(), re-checked on load):
///   - all per-node arrays have length num_nodes(); offsets are monotone
///     with offset[0] == 0 and offset[N] == pool size
///   - `topo` is the netlist's finalize() order verbatim, so a topo walk
///     replays sim/STA op-for-op
///   - the schedule arrays are the gnn::Graph steps flattened in order, so
///     to_batch() reconstructs a batch whose content hash equals
///     `batch_hash`
struct ExecutionPlan {
  // --- identity ------------------------------------------------------------
  std::string name;
  std::string module_text;
  std::uint32_t num_clusters = 1;  ///< aggregator count (ports included)
  std::uint32_t feature_dim = 0;   ///< F; 0 = structure-only plan
  std::uint32_t prompt_dim = 0;    ///< register-prompt embedding width
  std::uint64_t batch_hash = 0;    ///< core::batch_content_hash of the source
  std::uint64_t num_cells = 0;
  double power_uw = 0.0;

  // --- structure (indexed by NodeId) --------------------------------------
  std::vector<std::uint8_t> node_class;     ///< NodeClass per node
  std::vector<std::int32_t> cell_type;      ///< CellTypeId; -1 for ports
  std::vector<std::int32_t> cluster;        ///< aggregator id; -1 for POs
  std::vector<std::int32_t> level;          ///< combinational level
  std::vector<std::int64_t> fanin_offset;   ///< N+1; CSR into `fanin`
  std::vector<std::int32_t> fanin;          ///< pin-ordered driver ids
  std::vector<std::int64_t> fanout_offset;  ///< N+1; CSR into `fanout`
  std::vector<std::int32_t> fanout;
  std::vector<double> output_load;          ///< precomputed pin-cap sums
  std::vector<std::int32_t> topo;           ///< finalize() topo order
  /// Per-level ranges over combinational cells: level l (0-based) owns
  /// level_nodes[level_offset[l] .. level_offset[l+1]), ids ascending —
  /// the same order build_batch schedules forward steps in.
  std::vector<std::int64_t> level_offset;
  std::vector<std::int32_t> level_nodes;
  std::vector<std::int32_t> inputs, outputs, flops;
  /// Per `flops` entry: fanin indices of the D/E/R pins (-1 when the cell
  /// type has no such pin), so the clock-edge loop skips pin-name lookups.
  std::vector<std::int32_t> flop_pin_d, flop_pin_e, flop_pin_r;

  // --- two-phase schedule (gnn::Graph steps, flattened) --------------------
  std::vector<std::int64_t> fwd_step_offset;   ///< Sf+1 ranges over groups
  std::vector<std::int64_t> turn_step_offset;  ///< St+1, continues after fwd
  std::vector<std::int32_t> group_cluster;     ///< G
  std::vector<std::int64_t> group_node_offset; ///< G+1 into sched_nodes
  std::vector<std::int64_t> group_edge_offset; ///< G+1 into edge pools
  std::vector<std::int32_t> sched_nodes;
  std::vector<std::int32_t> edge_src, edge_dst, edge_dst_local, edge_pos;
  std::vector<std::int32_t> readout;

  // --- features / rows / labels (CircuitBatch mirror) ----------------------
  std::vector<float> features;  ///< N×F row-major
  std::vector<std::int32_t> cell_rows, arrival_rows, flop_rows;
  std::vector<float> toggle, one_prob, arrival_norm, flop_arrival_norm;
  std::vector<float> reg_prompt_emb;  ///< |flops|×prompt_dim row-major

  // --- hash-consed cones ----------------------------------------------------
  /// Structural hash of each node's combinational fan-in cone (its h0
  /// identity for leaves). Equal hashes ⇒ bit-identical final embeddings
  /// under a rounds==1 model — the keying contract of the cone cache.
  /// 0 for primary outputs (not part of the GNN).
  std::vector<std::uint64_t> cone_hash;
  /// Dense cone ids: cone_id[i] == cone_id[j] iff cone_hash[i] ==
  /// cone_hash[j]; assigned first-seen in ascending NodeId order. -1 for
  /// primary outputs. unique_cones counts distinct ids.
  std::vector<std::int32_t> cone_id;
  std::uint32_t unique_cones = 0;

  std::size_t num_nodes() const { return node_class.size(); }
  NodeClass klass(std::int32_t id) const {
    return static_cast<NodeClass>(node_class[static_cast<std::size_t>(id)]);
  }
};

/// Lower a finalized netlist + its model-ready batch into a plan. The
/// schedule/features/labels are copied from the batch verbatim, so
/// to_batch(compile(nl, batch)) hashes to core::content_hash(batch).
ExecutionPlan compile(const netlist::Netlist& nl,
                      const core::CircuitBatch& batch);

/// Convenience: build_batch + compile in one step.
ExecutionPlan compile(const data::LabeledCircuit& lc,
                      const lm::TextEncoder& enc,
                      const core::FeatureConfig& cfg);

/// Structure-only plan (no schedule, features or labels): enough for
/// PlanSimulator and arrival_times. All nodes share cluster 0.
ExecutionPlan compile_structure(const netlist::Netlist& nl);

/// Materialize the model-ready batch back from a plan (one allocation pass;
/// no netlist, encoder or clustering needed). The result's content_hash is
/// the plan's batch_hash.
core::CircuitBatch to_batch(const ExecutionPlan& plan);

/// Blob I/O. serialize() renders header+payload; deserialize() verifies
/// magic/version/size/CRC and re-checks structural invariants, failing with
/// ContextError frames (file=…, reason=…) on any mismatch. save() writes
/// through tensor::atomic_write_file so a crash or injected fault never
/// corrupts an existing plan.
std::string serialize(const ExecutionPlan& plan);
ExecutionPlan deserialize(std::string_view blob, ErrorContext ctx);
void save(const ExecutionPlan& plan, const std::string& path);
/// With `use_mmap` the MOSSPLN1 blob is mapped read-only instead of slurped
/// (one page-cache walk instead of a full copy; falls back to the one-read
/// path when mapping is unavailable). The result is identical either way —
/// deserialization copies what it keeps.
ExecutionPlan load(const std::string& path, bool use_mmap = false);

/// Nodes of `next` whose cone hash does not occur anywhere in `prev` — the
/// cones an incremental edit dirtied (everything else can reuse cached
/// embeddings). Primary outputs are never reported.
std::vector<std::int32_t> dirty_cones(const ExecutionPlan& prev,
                                      const ExecutionPlan& next);

/// Forward closure of `seeds` over the fanout CSR (seeds included), sorted
/// ascending: the nodes whose cached state a change to `seeds` invalidates.
std::vector<std::int32_t> invalidation_set(const ExecutionPlan& plan,
                                           const std::vector<std::int32_t>& seeds);

/// Storage interface for per-cone embedding rows (1×hidden). Implementations
/// must be content-addressed per model: a row stored under a cone hash must
/// have been produced by the same parameters that will consume it (the serve
/// layer mixes the session uid into the underlying cache key).
class ConeRowCache {
 public:
  virtual ~ConeRowCache() = default;
  virtual std::optional<tensor::Tensor> get(std::uint64_t cone_hash) = 0;
  virtual void put(std::uint64_t cone_hash, const tensor::Tensor& row) = 0;
};

struct ConeStats {
  std::size_t scheduled = 0;  ///< nodes the schedule updates
  std::size_t reused = 0;     ///< rows served from the cone cache
  std::size_t computed = 0;   ///< rows propagated and stored
};

/// Node embeddings with hash-consed cone reuse: bit-identical to
/// gnn.run(batch.graph) (asserted in tests), but every scheduled node whose
/// cone hash is already cached skips propagation — shared subcircuits across
/// requests (and unchanged cones across incremental edits) cost one cache
/// row copy instead of a GEMM. Inference-only: the returned tensor carries
/// no gradient graph.
///
/// Sound only for a single two-phase round with at most one turnaround step
/// (then a node's final embedding is a pure function of its fan-in cone);
/// any other schedule falls back to the full gnn.run().
tensor::Tensor hashcons_node_embeddings(const gnn::TwoPhaseGnn& gnn,
                                        const ExecutionPlan& plan,
                                        const core::CircuitBatch& batch,
                                        ConeRowCache& cache,
                                        ConeStats* stats = nullptr);

/// Cycle simulator over the flat plan: bit-identical to sim::Simulator on
/// the source netlist (same topo order, same eval, same clock-edge pin
/// semantics), but walking CSR arrays instead of pointer-chasing nodes.
class PlanSimulator {
 public:
  PlanSimulator(const ExecutionPlan& plan, const cell::CellLibrary& lib);

  void reset_state();
  /// One cycle: combinational settle with `pi_values` (bit per primary
  /// input, plan input order), then clock edge.
  void step(const std::vector<std::uint8_t>& pi_values);

  std::uint8_t value(std::int32_t id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  std::vector<std::uint8_t> output_values() const;
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t transitions(std::int32_t id) const {
    return transitions_[static_cast<std::size_t>(id)];
  }
  double toggle_rate(std::int32_t id) const;
  std::vector<double> toggle_rates() const;
  double one_rate(std::int32_t id) const;
  std::vector<double> one_rates() const;
  void clear_activity();

 private:
  const ExecutionPlan* plan_;
  const cell::CellLibrary* lib_;
  std::vector<std::uint8_t> values_;
  std::vector<std::uint8_t> flop_state_;
  std::vector<std::uint64_t> transitions_;
  std::vector<std::uint64_t> ones_;
  std::uint64_t cycles_ = 0;
};

/// Per-node arrival times over the flat plan — the same linear NLDM model
/// (and, when opts.slew_aware, the same slew derating) as sta::TimingAnalysis,
/// evaluated in the identical stored topo order so results match exactly.
std::vector<double> arrival_times(const ExecutionPlan& plan,
                                  const cell::CellLibrary& lib,
                                  const sta::StaOptions& opts = {});

}  // namespace moss::plan
