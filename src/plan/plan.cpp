#include "plan/plan.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "core_util/check.hpp"
#include "core_util/crc32.hpp"
#include "core_util/hash.hpp"
#include "tensor/serialize.hpp"

namespace moss::plan {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;
using tensor::Tensor;

namespace {

/// Seed mixed into every cone hash, versioned so a change to the hashing
/// scheme can never collide with rows cached under the old scheme.
constexpr std::uint64_t kConeTag = 0x434F4E4531ull;  // "CONE1"

NodeClass classify(const Netlist& nl, NodeId id) {
  const netlist::Node& n = nl.node(id);
  switch (n.kind) {
    case NodeKind::kPrimaryInput: return NodeClass::kInput;
    case NodeKind::kPrimaryOutput: return NodeClass::kOutput;
    case NodeKind::kCell: {
      const cell::CellType& t = nl.library().type(n.type);
      if (t.is_flop()) return NodeClass::kFlop;
      if (t.is_tie()) return NodeClass::kTie;
      return NodeClass::kComb;
    }
  }
  MOSS_CHECK(false, "unreachable node kind");
  return NodeClass::kComb;
}

/// Fill cone_hash / cone_id / unique_cones from the plan's structure (and
/// the netlist, for register names). Two passes over the stored topo order:
/// combinational cones first (fanins are always earlier in topo), then
/// flops (whose D/E/R drivers may be later in topo but are settled by the
/// end of pass one).
///
/// The hash captures exactly what a node's final embedding depends on under
/// one two-phase round: its own h0 identity (class, cell type, aggregator
/// cluster, full feature row — the row matters because fanout/load features
/// depend on context outside the cone) plus, for updated nodes, the
/// forward-phase value of each fanin in pin order. A fanin contributes its
/// cone hash when combinational (updated before being read) and its h0 leaf
/// hash otherwise (PIs, ties and flops all hold h0 through the forward
/// phase, and the single turnaround step reads pre-step state).
void compute_cones(ExecutionPlan& p, const Netlist& nl) {
  const std::size_t N = p.num_nodes();
  const std::size_t F = p.feature_dim;
  std::vector<std::uint64_t> leaf(N, 0);
  p.cone_hash.assign(N, 0);
  for (std::size_t i = 0; i < N; ++i) {
    HashBuilder b;
    b.mix(kConeTag);
    b.mix(static_cast<std::uint64_t>(p.node_class[i]));
    b.mix(static_cast<std::int64_t>(p.cell_type[i]));
    b.mix(static_cast<std::int64_t>(p.cluster[i]));
    if (F > 0) {
      b.mix_bytes(p.features.data() + i * F, F * sizeof(float));
    }
    if (p.klass(static_cast<std::int32_t>(i)) == NodeClass::kFlop) {
      b.mix(std::string_view(nl.node(static_cast<NodeId>(i)).rtl_register));
    }
    leaf[i] = b.digest();
  }
  const auto fwd_of = [&](std::int32_t f) {
    // Forward-phase value identity of a fanin: combinational nodes are
    // updated in level order before being read; everything else is h0.
    return p.klass(f) == NodeClass::kComb
               ? p.cone_hash[static_cast<std::size_t>(f)]
               : leaf[static_cast<std::size_t>(f)];
  };
  const auto cone_of = [&](std::int32_t id) {
    HashBuilder b;
    b.mix(leaf[static_cast<std::size_t>(id)]);
    const auto lo = p.fanin_offset[static_cast<std::size_t>(id)];
    const auto hi = p.fanin_offset[static_cast<std::size_t>(id) + 1];
    for (auto e = lo; e < hi; ++e) {
      b.mix(fwd_of(p.fanin[static_cast<std::size_t>(e)]));
    }
    return b.digest();
  };
  for (const std::int32_t id : p.topo) {
    switch (p.klass(id)) {
      case NodeClass::kInput:
      case NodeClass::kTie:
        p.cone_hash[static_cast<std::size_t>(id)] =
            leaf[static_cast<std::size_t>(id)];
        break;
      case NodeClass::kComb:
        p.cone_hash[static_cast<std::size_t>(id)] = cone_of(id);
        break;
      case NodeClass::kOutput:
      case NodeClass::kFlop:
        break;  // POs excluded; flops need pass two
    }
  }
  for (const std::int32_t f : p.flops) {
    p.cone_hash[static_cast<std::size_t>(f)] = cone_of(f);
  }

  // Dense interning, first-seen in ascending id order (klee-mc's
  // fast-unique-table idea: structural hash -> one canonical id).
  p.cone_id.assign(N, -1);
  std::unordered_map<std::uint64_t, std::int32_t> interned;
  interned.reserve(N);
  for (std::size_t i = 0; i < N; ++i) {
    if (p.klass(static_cast<std::int32_t>(i)) == NodeClass::kOutput) continue;
    const auto [it, fresh] = interned.emplace(
        p.cone_hash[i], static_cast<std::int32_t>(interned.size()));
    p.cone_id[i] = it->second;
    (void)fresh;
  }
  p.unique_cones = static_cast<std::uint32_t>(interned.size());
}

void fill_structure(ExecutionPlan& p, const Netlist& nl) {
  const std::size_t N = nl.num_nodes();
  p.node_class.resize(N);
  p.cell_type.assign(N, -1);
  p.level.resize(N);
  p.output_load.resize(N);
  p.fanin_offset.assign(N + 1, 0);
  p.fanout_offset.assign(N + 1, 0);
  for (std::size_t i = 0; i < N; ++i) {
    const auto id = static_cast<NodeId>(i);
    const netlist::Node& n = nl.node(id);
    p.node_class[i] = static_cast<std::uint8_t>(classify(nl, id));
    if (n.kind == NodeKind::kCell) {
      p.cell_type[i] = static_cast<std::int32_t>(n.type);
    }
    p.level[i] = n.level;
    p.output_load[i] = nl.output_load(id);
    p.fanin_offset[i + 1] =
        p.fanin_offset[i] + static_cast<std::int64_t>(n.fanin.size());
    p.fanout_offset[i + 1] =
        p.fanout_offset[i] + static_cast<std::int64_t>(n.fanout.size());
  }
  p.fanin.reserve(static_cast<std::size_t>(p.fanin_offset[N]));
  p.fanout.reserve(static_cast<std::size_t>(p.fanout_offset[N]));
  for (std::size_t i = 0; i < N; ++i) {
    const netlist::Node& n = nl.node(static_cast<NodeId>(i));
    p.fanin.insert(p.fanin.end(), n.fanin.begin(), n.fanin.end());
    p.fanout.insert(p.fanout.end(), n.fanout.begin(), n.fanout.end());
  }
  p.topo.assign(nl.topo_order().begin(), nl.topo_order().end());
  p.inputs.assign(nl.inputs().begin(), nl.inputs().end());
  p.outputs.assign(nl.outputs().begin(), nl.outputs().end());
  p.flops.assign(nl.flops().begin(), nl.flops().end());

  // Per-level combinational ranges (ids ascending within a level — the
  // order build_batch schedules forward steps in).
  std::vector<std::vector<std::int32_t>> by_level;
  for (std::size_t i = 0; i < N; ++i) {
    if (p.klass(static_cast<std::int32_t>(i)) != NodeClass::kComb) continue;
    const auto lvl = static_cast<std::size_t>(p.level[i]);
    if (by_level.size() <= lvl) by_level.resize(lvl + 1);
    by_level[lvl].push_back(static_cast<std::int32_t>(i));
  }
  p.level_offset.assign(1, 0);
  p.level_nodes.clear();
  for (const auto& lvl : by_level) {
    p.level_nodes.insert(p.level_nodes.end(), lvl.begin(), lvl.end());
    p.level_offset.push_back(static_cast<std::int64_t>(p.level_nodes.size()));
  }

  // Precomputed flop control-pin indices (-1 when the cell has no pin).
  p.flop_pin_d.clear();
  p.flop_pin_e.clear();
  p.flop_pin_r.clear();
  for (const std::int32_t f : p.flops) {
    const cell::CellType& t =
        nl.library().type(nl.node(static_cast<NodeId>(f)).type);
    p.flop_pin_d.push_back(t.pin_index("D"));
    p.flop_pin_e.push_back(t.pin_index("E"));
    p.flop_pin_r.push_back(t.pin_index("R"));
  }
}

void flatten_steps(ExecutionPlan& p,
                   const std::vector<gnn::UpdateStep>& steps,
                   std::vector<std::int64_t>& step_offset) {
  for (const gnn::UpdateStep& st : steps) {
    for (const gnn::UpdateGroup& g : st.groups) {
      p.group_cluster.push_back(g.cluster);
      p.sched_nodes.insert(p.sched_nodes.end(), g.nodes.begin(),
                           g.nodes.end());
      p.edge_src.insert(p.edge_src.end(), g.edge_src.begin(),
                        g.edge_src.end());
      p.edge_dst.insert(p.edge_dst.end(), g.edge_dst.begin(),
                        g.edge_dst.end());
      p.edge_dst_local.insert(p.edge_dst_local.end(),
                              g.edge_dst_local.begin(),
                              g.edge_dst_local.end());
      p.edge_pos.insert(p.edge_pos.end(), g.edge_pos.begin(),
                        g.edge_pos.end());
      p.group_node_offset.push_back(
          static_cast<std::int64_t>(p.sched_nodes.size()));
      p.group_edge_offset.push_back(
          static_cast<std::int64_t>(p.edge_src.size()));
    }
    step_offset.push_back(static_cast<std::int64_t>(p.group_cluster.size()));
  }
}

void check_csr(const ErrorContext& ctx, const std::vector<std::int64_t>& off,
               std::size_t rows, std::size_t pool, const char* what) {
  ctx.check(off.size() == rows + 1 && off.front() == 0 &&
                off.back() == static_cast<std::int64_t>(pool) &&
                std::is_sorted(off.begin(), off.end()),
            std::string("plan ") + what + " offsets are malformed");
}

void check_ids(const ErrorContext& ctx, const std::vector<std::int32_t>& ids,
               std::size_t n, const char* what) {
  for (const std::int32_t v : ids) {
    ctx.check(v >= 0 && static_cast<std::size_t>(v) < n,
              std::string("plan ") + what + " id out of range");
  }
}

void validate(const ExecutionPlan& p, const ErrorContext& ctx) {
  const std::size_t N = p.num_nodes();
  ctx.check(p.cell_type.size() == N && p.cluster.size() == N &&
                p.level.size() == N && p.output_load.size() == N &&
                p.topo.size() == N && p.cone_hash.size() == N &&
                p.cone_id.size() == N,
            "plan per-node array sizes disagree");
  for (const std::uint8_t c : p.node_class) {
    ctx.check(c <= static_cast<std::uint8_t>(NodeClass::kTie),
              "plan node class out of range");
  }
  check_csr(ctx, p.fanin_offset, N, p.fanin.size(), "fanin");
  check_csr(ctx, p.fanout_offset, N, p.fanout.size(), "fanout");
  check_ids(ctx, p.fanin, N, "fanin");
  check_ids(ctx, p.fanout, N, "fanout");
  check_ids(ctx, p.inputs, N, "input");
  check_ids(ctx, p.outputs, N, "output");
  check_ids(ctx, p.flops, N, "flop");
  check_ids(ctx, p.level_nodes, N, "level");
  check_ids(ctx, p.sched_nodes, N, "schedule");
  check_ids(ctx, p.readout, N, "readout");
  {
    std::vector<char> seen(N, 0);
    for (const std::int32_t v : p.topo) {
      ctx.check(v >= 0 && static_cast<std::size_t>(v) < N &&
                    !seen[static_cast<std::size_t>(v)],
                "plan topo order is not a permutation");
      seen[static_cast<std::size_t>(v)] = 1;
    }
  }
  ctx.check(!p.level_offset.empty() && p.level_offset.front() == 0 &&
                p.level_offset.back() ==
                    static_cast<std::int64_t>(p.level_nodes.size()) &&
                std::is_sorted(p.level_offset.begin(), p.level_offset.end()),
            "plan level ranges are malformed");
  ctx.check(p.flop_pin_d.size() == p.flops.size() &&
                p.flop_pin_e.size() == p.flops.size() &&
                p.flop_pin_r.size() == p.flops.size(),
            "plan flop pin arrays disagree with flop count");

  const std::size_t G = p.group_cluster.size();
  check_csr(ctx, p.group_node_offset, G, p.sched_nodes.size(),
            "schedule group node");
  check_csr(ctx, p.group_edge_offset, G, p.edge_src.size(),
            "schedule group edge");
  ctx.check(p.edge_dst.size() == p.edge_src.size() &&
                p.edge_dst_local.size() == p.edge_src.size() &&
                p.edge_pos.size() == p.edge_src.size(),
            "plan edge pools disagree");
  ctx.check(!p.fwd_step_offset.empty() && !p.turn_step_offset.empty() &&
                p.fwd_step_offset.front() == 0 &&
                p.fwd_step_offset.back() == p.turn_step_offset.front() &&
                p.turn_step_offset.back() == static_cast<std::int64_t>(G) &&
                std::is_sorted(p.fwd_step_offset.begin(),
                               p.fwd_step_offset.end()) &&
                std::is_sorted(p.turn_step_offset.begin(),
                               p.turn_step_offset.end()),
            "plan step ranges are malformed");

  ctx.check(p.features.size() == N * p.feature_dim,
            "plan feature block size mismatch");
  ctx.check(p.toggle.size() == p.cell_rows.size() &&
                p.one_prob.size() == p.cell_rows.size() &&
                p.arrival_norm.size() == p.arrival_rows.size() &&
                p.flop_arrival_norm.size() == p.flop_rows.size(),
            "plan label rows disagree");
  check_ids(ctx, p.cell_rows, N, "cell row");
  check_ids(ctx, p.arrival_rows, N, "arrival row");
  check_ids(ctx, p.flop_rows, N, "flop row");
  ctx.check(p.reg_prompt_emb.size() == p.flop_rows.size() * p.prompt_dim,
            "plan register-prompt block size mismatch");
}

}  // namespace

ExecutionPlan compile(const Netlist& nl, const core::CircuitBatch& batch) {
  MOSS_CHECK(nl.finalized(), "plan compilation needs a finalized netlist");
  MOSS_CHECK(batch.graph.num_nodes == nl.num_nodes(),
             "batch/netlist node count mismatch");
  const std::size_t N = nl.num_nodes();

  ExecutionPlan p;
  p.name = batch.name;
  p.module_text = batch.module_text;
  p.num_clusters = static_cast<std::uint32_t>(batch.graph.num_clusters);
  p.feature_dim = batch.graph.features.defined()
                      ? static_cast<std::uint32_t>(batch.graph.features.cols())
                      : 0;
  p.num_cells = batch.num_cells;
  p.power_uw = batch.power_uw;
  p.batch_hash = core::content_hash(batch);

  fill_structure(p, nl);

  // Cluster assignment: ports and ties share the last aggregator (the
  // build_batch convention); every scheduled node carries its group's
  // cluster; POs are outside the GNN.
  p.cluster.assign(N, -1);
  for (std::size_t i = 0; i < N; ++i) {
    const NodeClass c = p.klass(static_cast<std::int32_t>(i));
    if (c == NodeClass::kInput || c == NodeClass::kTie) {
      p.cluster[i] = static_cast<std::int32_t>(p.num_clusters) - 1;
    }
  }
  const auto claim_clusters = [&](const std::vector<gnn::UpdateStep>& steps) {
    for (const gnn::UpdateStep& st : steps) {
      for (const gnn::UpdateGroup& g : st.groups) {
        for (const int v : g.nodes) {
          p.cluster[static_cast<std::size_t>(v)] = g.cluster;
        }
      }
    }
  };
  claim_clusters(batch.graph.forward_steps);
  claim_clusters(batch.graph.turnaround_steps);

  // Schedule, flattened in step order (forward groups first).
  p.group_node_offset.assign(1, 0);
  p.group_edge_offset.assign(1, 0);
  p.fwd_step_offset.assign(1, 0);
  flatten_steps(p, batch.graph.forward_steps, p.fwd_step_offset);
  p.turn_step_offset.assign(
      1, static_cast<std::int64_t>(p.group_cluster.size()));
  flatten_steps(p, batch.graph.turnaround_steps, p.turn_step_offset);
  p.readout.assign(batch.graph.readout_nodes.begin(),
                   batch.graph.readout_nodes.end());

  // Features, rows, labels — batch copies, so to_batch round-trips.
  if (p.feature_dim > 0) p.features = batch.graph.features.data();
  p.cell_rows.assign(batch.cell_rows.begin(), batch.cell_rows.end());
  p.arrival_rows.assign(batch.arrival_rows.begin(), batch.arrival_rows.end());
  p.flop_rows.assign(batch.flop_rows.begin(), batch.flop_rows.end());
  p.toggle = batch.toggle;
  p.one_prob = batch.one_prob;
  p.arrival_norm = batch.arrival_norm;
  p.flop_arrival_norm = batch.flop_arrival_norm;
  if (batch.reg_prompt_emb.defined()) {
    p.prompt_dim = static_cast<std::uint32_t>(batch.reg_prompt_emb.cols());
    p.reg_prompt_emb = batch.reg_prompt_emb.data();
  }

  compute_cones(p, nl);

  ErrorContext ctx;
  ctx.add("plan", p.name);
  validate(p, ctx);
  return p;
}

ExecutionPlan compile(const data::LabeledCircuit& lc,
                      const lm::TextEncoder& enc,
                      const core::FeatureConfig& cfg) {
  return compile(lc.netlist, core::build_batch(lc, enc, cfg));
}

ExecutionPlan compile_structure(const Netlist& nl) {
  MOSS_CHECK(nl.finalized(), "plan compilation needs a finalized netlist");
  ExecutionPlan p;
  p.name = nl.name();
  p.num_cells = nl.num_cells();
  fill_structure(p, nl);
  p.cluster.assign(nl.num_nodes(), 0);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    if (p.klass(static_cast<std::int32_t>(i)) == NodeClass::kOutput) {
      p.cluster[i] = -1;
    }
  }
  p.fwd_step_offset.assign(1, 0);
  p.turn_step_offset.assign(1, 0);
  p.group_node_offset.assign(1, 0);
  p.group_edge_offset.assign(1, 0);
  compute_cones(p, nl);
  ErrorContext ctx;
  ctx.add("plan", p.name);
  validate(p, ctx);
  return p;
}

core::CircuitBatch to_batch(const ExecutionPlan& p) {
  const std::size_t N = p.num_nodes();
  core::CircuitBatch b;
  b.name = p.name;
  b.module_text = p.module_text;
  b.num_cells = static_cast<std::size_t>(p.num_cells);
  b.power_uw = p.power_uw;

  gnn::Graph g;
  g.num_nodes = N;
  g.num_clusters = p.num_clusters;
  if (p.feature_dim > 0) {
    g.features = Tensor::from(p.features, N, p.feature_dim);
  }
  const auto rebuild = [&](const std::vector<std::int64_t>& step_off) {
    std::vector<gnn::UpdateStep> steps;
    steps.reserve(step_off.size() - 1);
    for (std::size_t s = 0; s + 1 < step_off.size(); ++s) {
      gnn::UpdateStep st;
      for (auto gi = step_off[s]; gi < step_off[s + 1]; ++gi) {
        const auto i = static_cast<std::size_t>(gi);
        gnn::UpdateGroup grp;
        grp.cluster = p.group_cluster[i];
        const auto nb = p.group_node_offset[i], ne = p.group_node_offset[i + 1];
        const auto eb = p.group_edge_offset[i], ee = p.group_edge_offset[i + 1];
        grp.nodes.assign(p.sched_nodes.begin() + nb, p.sched_nodes.begin() + ne);
        grp.edge_src.assign(p.edge_src.begin() + eb, p.edge_src.begin() + ee);
        grp.edge_dst.assign(p.edge_dst.begin() + eb, p.edge_dst.begin() + ee);
        grp.edge_dst_local.assign(p.edge_dst_local.begin() + eb,
                                  p.edge_dst_local.begin() + ee);
        grp.edge_pos.assign(p.edge_pos.begin() + eb, p.edge_pos.begin() + ee);
        st.groups.push_back(std::move(grp));
      }
      steps.push_back(std::move(st));
    }
    return steps;
  };
  g.forward_steps = rebuild(p.fwd_step_offset);
  g.turnaround_steps = rebuild(p.turn_step_offset);
  g.readout_nodes.assign(p.readout.begin(), p.readout.end());
  b.graph = std::move(g);

  b.cell_rows.assign(p.cell_rows.begin(), p.cell_rows.end());
  b.arrival_rows.assign(p.arrival_rows.begin(), p.arrival_rows.end());
  b.flop_rows.assign(p.flop_rows.begin(), p.flop_rows.end());
  b.toggle = p.toggle;
  b.one_prob = p.one_prob;
  b.arrival_norm = p.arrival_norm;
  b.flop_arrival_norm = p.flop_arrival_norm;
  if (p.prompt_dim > 0) {
    b.reg_prompt_emb =
        Tensor::from(p.reg_prompt_emb, p.flop_rows.size(), p.prompt_dim);
  }
  b.content_hash = p.batch_hash;
  return b;
}

// ---------------------------------------------------------------------------
// Blob serialization
// ---------------------------------------------------------------------------

namespace {

void w_bytes_arr(tensor::ByteWriter& w, const void* data, std::size_t count,
                 std::size_t elem) {
  w.u64(count);
  if (count > 0) w.bytes(data, count * elem);
}
void w_u8s(tensor::ByteWriter& w, const std::vector<std::uint8_t>& v) {
  w_bytes_arr(w, v.data(), v.size(), 1);
}
void w_i32s(tensor::ByteWriter& w, const std::vector<std::int32_t>& v) {
  w_bytes_arr(w, v.data(), v.size(), sizeof(std::int32_t));
}
void w_i64s(tensor::ByteWriter& w, const std::vector<std::int64_t>& v) {
  w_bytes_arr(w, v.data(), v.size(), sizeof(std::int64_t));
}

/// Bounds-checked flat reader over the plan payload. Errors carry the
/// caller's context frames (file=…), mirroring tensor::ByteReader.
class PlanReader {
 public:
  PlanReader(std::string_view data, const ErrorContext& ctx)
      : data_(data), ctx_(ctx) {}

  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  double f64() { return fixed<double>(); }
  std::string str() {
    const std::uint64_t n = u64();
    ctx_.check(n <= remaining(), "plan payload truncated in string");
    return std::string(need(static_cast<std::size_t>(n)),
                       static_cast<std::size_t>(n));
  }
  template <typename T>
  std::vector<T> arr() {
    const std::uint64_t n = u64();
    ctx_.check(n <= remaining() / sizeof(T),
               "plan array length exceeds payload");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), need(v.size() * sizeof(T)), v.size() * sizeof(T));
    }
    return v;
  }
  std::size_t remaining() const { return data_.size() - pos_; }
  void expect_end() const {
    ctx_.check(pos_ == data_.size(), "plan payload has trailing bytes");
  }

 private:
  template <typename T>
  T fixed() {
    T v;
    std::memcpy(&v, need(sizeof(T)), sizeof(T));
    return v;
  }
  const char* need(std::size_t n) {
    ctx_.check(n <= remaining(), "plan payload truncated");
    const char* at = data_.data() + pos_;
    pos_ += n;
    return at;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  const ErrorContext& ctx_;
};

std::string render_payload(const ExecutionPlan& p) {
  tensor::ByteWriter w;
  w.u64(p.num_nodes());
  w.str(p.name);
  w.str(p.module_text);
  w.u32(p.num_clusters);
  w.u32(p.feature_dim);
  w.u32(p.prompt_dim);
  w.u64(p.batch_hash);
  w.u64(p.num_cells);
  w.f64(p.power_uw);
  w_u8s(w, p.node_class);
  w_i32s(w, p.cell_type);
  w_i32s(w, p.cluster);
  w_i32s(w, p.level);
  w_i64s(w, p.fanin_offset);
  w_i32s(w, p.fanin);
  w_i64s(w, p.fanout_offset);
  w_i32s(w, p.fanout);
  w.f64s(p.output_load);
  w_i32s(w, p.topo);
  w_i64s(w, p.level_offset);
  w_i32s(w, p.level_nodes);
  w_i32s(w, p.inputs);
  w_i32s(w, p.outputs);
  w_i32s(w, p.flops);
  w_i32s(w, p.flop_pin_d);
  w_i32s(w, p.flop_pin_e);
  w_i32s(w, p.flop_pin_r);
  w_i64s(w, p.fwd_step_offset);
  w_i64s(w, p.turn_step_offset);
  w_i32s(w, p.group_cluster);
  w_i64s(w, p.group_node_offset);
  w_i64s(w, p.group_edge_offset);
  w_i32s(w, p.sched_nodes);
  w_i32s(w, p.edge_src);
  w_i32s(w, p.edge_dst);
  w_i32s(w, p.edge_dst_local);
  w_i32s(w, p.edge_pos);
  w_i32s(w, p.readout);
  w.f32s(p.features);
  w_i32s(w, p.cell_rows);
  w_i32s(w, p.arrival_rows);
  w_i32s(w, p.flop_rows);
  w.f32s(p.toggle);
  w.f32s(p.one_prob);
  w.f32s(p.arrival_norm);
  w.f32s(p.flop_arrival_norm);
  w.f32s(p.reg_prompt_emb);
  w.u64s(p.cone_hash);
  w_i32s(w, p.cone_id);
  w.u32(p.unique_cones);
  return w.take();
}

}  // namespace

std::string serialize(const ExecutionPlan& p) {
  const std::string payload = render_payload(p);
  tensor::ByteWriter h;
  h.bytes(kPlanMagic, sizeof(kPlanMagic));
  h.u32(kPlanVersion);
  h.u32(0);  // reserved
  h.u64(payload.size());
  h.u32(crc32(payload.data(), payload.size()));
  return h.take() + payload;
}

ExecutionPlan deserialize(std::string_view blob, ErrorContext ctx) {
  ctx.check(blob.size() >= kPlanHeaderBytes, "plan blob too small");
  ctx.check(std::memcmp(blob.data(), kPlanMagic, sizeof(kPlanMagic)) == 0,
            "bad plan magic");
  std::uint32_t version = 0, reserved = 0, crc = 0;
  std::uint64_t payload_bytes = 0;
  std::memcpy(&version, blob.data() + 8, sizeof(version));
  std::memcpy(&reserved, blob.data() + 12, sizeof(reserved));
  std::memcpy(&payload_bytes, blob.data() + 16, sizeof(payload_bytes));
  std::memcpy(&crc, blob.data() + 24, sizeof(crc));
  ctx.check(reserved == 0, "plan header reserved field must be zero");
  if (version != kPlanVersion) {
    ctx.add("version", std::to_string(version));
    ctx.fail("unsupported plan format version");
  }
  const std::string_view payload = blob.substr(kPlanHeaderBytes);
  ctx.check(payload.size() == payload_bytes, "plan payload size mismatch");
  ctx.check(crc32(payload.data(), payload.size()) == crc,
            "plan payload crc mismatch");

  PlanReader r(payload, ctx);
  ExecutionPlan p;
  const std::uint64_t n = r.u64();
  p.name = r.str();
  p.module_text = r.str();
  p.num_clusters = r.u32();
  p.feature_dim = r.u32();
  p.prompt_dim = r.u32();
  p.batch_hash = r.u64();
  p.num_cells = r.u64();
  p.power_uw = r.f64();
  p.node_class = r.arr<std::uint8_t>();
  p.cell_type = r.arr<std::int32_t>();
  p.cluster = r.arr<std::int32_t>();
  p.level = r.arr<std::int32_t>();
  p.fanin_offset = r.arr<std::int64_t>();
  p.fanin = r.arr<std::int32_t>();
  p.fanout_offset = r.arr<std::int64_t>();
  p.fanout = r.arr<std::int32_t>();
  p.output_load = r.arr<double>();
  p.topo = r.arr<std::int32_t>();
  p.level_offset = r.arr<std::int64_t>();
  p.level_nodes = r.arr<std::int32_t>();
  p.inputs = r.arr<std::int32_t>();
  p.outputs = r.arr<std::int32_t>();
  p.flops = r.arr<std::int32_t>();
  p.flop_pin_d = r.arr<std::int32_t>();
  p.flop_pin_e = r.arr<std::int32_t>();
  p.flop_pin_r = r.arr<std::int32_t>();
  p.fwd_step_offset = r.arr<std::int64_t>();
  p.turn_step_offset = r.arr<std::int64_t>();
  p.group_cluster = r.arr<std::int32_t>();
  p.group_node_offset = r.arr<std::int64_t>();
  p.group_edge_offset = r.arr<std::int64_t>();
  p.sched_nodes = r.arr<std::int32_t>();
  p.edge_src = r.arr<std::int32_t>();
  p.edge_dst = r.arr<std::int32_t>();
  p.edge_dst_local = r.arr<std::int32_t>();
  p.edge_pos = r.arr<std::int32_t>();
  p.readout = r.arr<std::int32_t>();
  p.features = r.arr<float>();
  p.cell_rows = r.arr<std::int32_t>();
  p.arrival_rows = r.arr<std::int32_t>();
  p.flop_rows = r.arr<std::int32_t>();
  p.toggle = r.arr<float>();
  p.one_prob = r.arr<float>();
  p.arrival_norm = r.arr<float>();
  p.flop_arrival_norm = r.arr<float>();
  p.reg_prompt_emb = r.arr<float>();
  p.cone_hash = r.arr<std::uint64_t>();
  p.cone_id = r.arr<std::int32_t>();
  p.unique_cones = r.u32();
  r.expect_end();

  ctx.check(p.num_nodes() == n, "plan node count disagrees with arrays");
  validate(p, ctx);
  return p;
}

void save(const ExecutionPlan& p, const std::string& path) {
  const std::string blob = serialize(p);
  tensor::atomic_write_file(path, [&](std::ostream& out) {
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  });
}

ExecutionPlan load(const std::string& path, bool use_mmap) {
  ErrorContext ctx;
  ctx.add("file", path);
  const tensor::FileBlob blob = tensor::FileBlob::read(path, ctx, use_mmap);
  return deserialize(blob.view(), std::move(ctx));
}

// ---------------------------------------------------------------------------
// Cone table queries
// ---------------------------------------------------------------------------

std::vector<std::int32_t> dirty_cones(const ExecutionPlan& prev,
                                      const ExecutionPlan& next) {
  std::unordered_set<std::uint64_t> known;
  known.reserve(prev.num_nodes());
  for (std::size_t i = 0; i < prev.num_nodes(); ++i) {
    if (prev.klass(static_cast<std::int32_t>(i)) != NodeClass::kOutput) {
      known.insert(prev.cone_hash[i]);
    }
  }
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < next.num_nodes(); ++i) {
    if (next.klass(static_cast<std::int32_t>(i)) == NodeClass::kOutput) {
      continue;
    }
    if (known.find(next.cone_hash[i]) == known.end()) {
      out.push_back(static_cast<std::int32_t>(i));
    }
  }
  return out;
}

std::vector<std::int32_t> invalidation_set(
    const ExecutionPlan& p, const std::vector<std::int32_t>& seeds) {
  std::vector<char> visited(p.num_nodes(), 0);
  std::vector<std::int32_t> stack;
  for (const std::int32_t s : seeds) {
    MOSS_CHECK(s >= 0 && static_cast<std::size_t>(s) < p.num_nodes(),
               "invalidation seed out of range");
    if (!visited[static_cast<std::size_t>(s)]) {
      visited[static_cast<std::size_t>(s)] = 1;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const std::int32_t v = stack.back();
    stack.pop_back();
    const auto lo = p.fanout_offset[static_cast<std::size_t>(v)];
    const auto hi = p.fanout_offset[static_cast<std::size_t>(v) + 1];
    for (auto e = lo; e < hi; ++e) {
      const std::int32_t f = p.fanout[static_cast<std::size_t>(e)];
      if (!visited[static_cast<std::size_t>(f)]) {
        visited[static_cast<std::size_t>(f)] = 1;
        stack.push_back(f);
      }
    }
  }
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < visited.size(); ++i) {
    if (visited[i]) out.push_back(static_cast<std::int32_t>(i));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Hash-consed embedding path
// ---------------------------------------------------------------------------

namespace {

/// Filter a scheduled group to the nodes flagged in `need`. Each kept node
/// retains its full incoming edge set in the original order (make_step
/// emits edges contiguously per node, in node order), so segment softmax
/// and aggregation see exactly the rows they saw in the full step.
gnn::UpdateGroup filter_group(const gnn::UpdateGroup& g,
                              const std::vector<char>& need) {
  gnn::UpdateGroup out;
  out.cluster = g.cluster;
  std::size_t e = 0;
  for (std::size_t l = 0; l < g.nodes.size(); ++l) {
    const std::size_t begin = e;
    while (e < g.edge_dst_local.size() &&
           g.edge_dst_local[e] == static_cast<int>(l)) {
      ++e;
    }
    const int v = g.nodes[l];
    if (!need[static_cast<std::size_t>(v)]) continue;
    const int local = static_cast<int>(out.nodes.size());
    out.nodes.push_back(v);
    for (std::size_t k = begin; k < e; ++k) {
      out.edge_src.push_back(g.edge_src[k]);
      out.edge_dst.push_back(g.edge_dst[k]);
      out.edge_dst_local.push_back(local);
      out.edge_pos.push_back(g.edge_pos[k]);
    }
  }
  return out;
}

gnn::UpdateStep filter_step(const gnn::UpdateStep& step,
                            const std::vector<char>& need) {
  gnn::UpdateStep out;
  for (const gnn::UpdateGroup& g : step.groups) {
    gnn::UpdateGroup f = filter_group(g, need);
    if (!f.nodes.empty()) out.groups.push_back(std::move(f));
  }
  return out;
}

}  // namespace

Tensor hashcons_node_embeddings(const gnn::TwoPhaseGnn& gnn,
                                const ExecutionPlan& plan,
                                const core::CircuitBatch& batch,
                                ConeRowCache& cache, ConeStats* stats) {
  const gnn::Graph& g = batch.graph;
  MOSS_CHECK(plan.num_nodes() == g.num_nodes,
             "plan/batch node count mismatch");
  if (gnn.config().rounds != 1 || g.turnaround_steps.size() > 1) {
    // Cone reuse is only sound for one two-phase round with a single
    // turnaround step — anything else re-reads updated state, so fall back
    // to the full propagation.
    Tensor h = gnn.run(g);
    if (stats != nullptr) *stats = ConeStats{};
    return h;
  }
  const std::size_t hidden = gnn.config().hidden;
  Tensor h = gnn.initial_state(g.features).detach();

  ConeStats st;
  std::vector<char> miss(g.num_nodes, 0);
  std::vector<tensor::Tensor> cached(g.num_nodes);
  const auto probe = [&](const gnn::UpdateStep& step) {
    for (const gnn::UpdateGroup& grp : step.groups) {
      for (const int v : grp.nodes) {
        ++st.scheduled;
        std::optional<Tensor> row =
            cache.get(plan.cone_hash[static_cast<std::size_t>(v)]);
        if (row.has_value() && row->rows() == 1 && row->cols() == hidden) {
          cached[static_cast<std::size_t>(v)] = std::move(*row);
          ++st.reused;
        } else {
          miss[static_cast<std::size_t>(v)] = 1;
        }
      }
    }
  };
  const auto overlay = [&](int v) {
    const Tensor& row = cached[static_cast<std::size_t>(v)];
    std::copy(row.data().begin(), row.data().end(),
              h.data().begin() +
                  static_cast<std::ptrdiff_t>(static_cast<std::size_t>(v) *
                                              hidden));
  };
  const auto store = [&](int v) {
    const float* src = h.data().data() + static_cast<std::size_t>(v) * hidden;
    cache.put(plan.cone_hash[static_cast<std::size_t>(v)],
              Tensor::from(std::vector<float>(src, src + hidden), 1, hidden));
    ++st.computed;
  };

  // Forward phase: probe every scheduled combinational node, overlay hits
  // (their cached rows are final values, and level order guarantees no
  // earlier step reads a later node), then propagate only the misses. Each
  // kept node sees its full fan-in, whose rows are final either way.
  for (const gnn::UpdateStep& step : g.forward_steps) probe(step);
  for (const gnn::UpdateStep& step : g.forward_steps) {
    for (const gnn::UpdateGroup& grp : step.groups) {
      for (const int v : grp.nodes) {
        if (cached[static_cast<std::size_t>(v)].defined()) overlay(v);
      }
    }
  }
  for (const gnn::UpdateStep& step : g.forward_steps) {
    const gnn::UpdateStep f = filter_step(step, miss);
    if (!f.groups.empty()) h = gnn.step(f, std::move(h));
  }
  for (const gnn::UpdateStep& step : g.forward_steps) {
    for (const gnn::UpdateGroup& grp : step.groups) {
      for (const int v : grp.nodes) {
        if (miss[static_cast<std::size_t>(v)]) store(v);
      }
    }
  }

  // Turnaround: every flop (hit or miss) must still hold h0 while the
  // filtered step runs — the single step reads pre-step state — so cached
  // flop rows are overlaid only after the step.
  if (!g.turnaround_steps.empty()) {
    const gnn::UpdateStep& tstep = g.turnaround_steps[0];
    probe(tstep);
    const gnn::UpdateStep f = filter_step(tstep, miss);
    if (!f.groups.empty()) h = gnn.step(f, std::move(h));
    for (const gnn::UpdateGroup& grp : tstep.groups) {
      for (const int v : grp.nodes) {
        if (cached[static_cast<std::size_t>(v)].defined()) {
          overlay(v);
        } else if (miss[static_cast<std::size_t>(v)]) {
          store(v);
        }
      }
    }
  }

  if (stats != nullptr) *stats = st;
  return h;
}

// ---------------------------------------------------------------------------
// Flat consumers: simulation and timing
// ---------------------------------------------------------------------------

PlanSimulator::PlanSimulator(const ExecutionPlan& plan,
                             const cell::CellLibrary& lib)
    : plan_(&plan), lib_(&lib) {
  values_.assign(plan.num_nodes(), 0);
  flop_state_.assign(plan.num_nodes(), 0);
  transitions_.assign(plan.num_nodes(), 0);
  ones_.assign(plan.num_nodes(), 0);
}

void PlanSimulator::reset_state() {
  std::fill(flop_state_.begin(), flop_state_.end(), 0);
  std::fill(values_.begin(), values_.end(), 0);
}

void PlanSimulator::step(const std::vector<std::uint8_t>& pi_values) {
  const ExecutionPlan& p = *plan_;
  MOSS_CHECK(pi_values.size() == p.inputs.size(),
             "plan simulator: wrong number of PI values");

  std::vector<std::uint8_t> next(values_.size(), 0);
  for (std::size_t i = 0; i < p.inputs.size(); ++i) {
    next[static_cast<std::size_t>(p.inputs[i])] = pi_values[i] & 1u;
  }
  for (const std::int32_t id : p.topo) {
    const auto i = static_cast<std::size_t>(id);
    switch (p.klass(id)) {
      case NodeClass::kInput:
        break;  // already driven
      case NodeClass::kOutput:
        next[i] = next[static_cast<std::size_t>(
            p.fanin[static_cast<std::size_t>(p.fanin_offset[i])])];
        break;
      case NodeClass::kFlop:
        next[i] = flop_state_[i];
        break;
      case NodeClass::kTie:
      case NodeClass::kComb: {
        const cell::CellType& t = lib_->type(p.cell_type[i]);
        std::uint32_t in = 0;
        const auto lo = p.fanin_offset[i], hi = p.fanin_offset[i + 1];
        for (auto e = lo; e < hi; ++e) {
          in |= static_cast<std::uint32_t>(
                    next[static_cast<std::size_t>(
                        p.fanin[static_cast<std::size_t>(e)])])
                << (e - lo);
        }
        next[i] = t.eval(in) ? 1 : 0;
        break;
      }
    }
  }

  if (cycles_ > 0) {
    for (std::size_t i = 0; i < next.size(); ++i) {
      transitions_[i] += (next[i] != values_[i]) ? 1u : 0u;
    }
  }
  for (std::size_t i = 0; i < next.size(); ++i) ones_[i] += next[i];

  // Clock edge, precomputed pin indices instead of name lookups.
  for (std::size_t fi = 0; fi < p.flops.size(); ++fi) {
    const auto id = static_cast<std::size_t>(p.flops[fi]);
    const cell::CellType& t = lib_->type(p.cell_type[id]);
    const auto pin = [&](std::int32_t pin_index) -> std::uint8_t {
      MOSS_CHECK(pin_index >= 0, "missing flop pin");
      return next[static_cast<std::size_t>(
          p.fanin[static_cast<std::size_t>(
              p.fanin_offset[id] + pin_index)])];
    };
    std::uint8_t q = flop_state_[id];
    if (t.has_reset && pin(p.flop_pin_r[fi])) {
      q = t.reset_value ? 1 : 0;
    } else if (t.has_enable && !pin(p.flop_pin_e[fi])) {
      // hold
    } else {
      q = pin(p.flop_pin_d[fi]);
    }
    flop_state_[id] = q;
  }

  values_ = std::move(next);
  ++cycles_;
}

std::vector<std::uint8_t> PlanSimulator::output_values() const {
  std::vector<std::uint8_t> out;
  out.reserve(plan_->outputs.size());
  for (const std::int32_t id : plan_->outputs) {
    out.push_back(values_[static_cast<std::size_t>(id)]);
  }
  return out;
}

double PlanSimulator::toggle_rate(std::int32_t id) const {
  if (cycles_ <= 1) return 0.0;
  return static_cast<double>(transitions_[static_cast<std::size_t>(id)]) /
         static_cast<double>(cycles_ - 1);
}

std::vector<double> PlanSimulator::toggle_rates() const {
  std::vector<double> out(values_.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = toggle_rate(static_cast<std::int32_t>(i));
  }
  return out;
}

double PlanSimulator::one_rate(std::int32_t id) const {
  if (cycles_ == 0) return 0.0;
  return static_cast<double>(ones_[static_cast<std::size_t>(id)]) /
         static_cast<double>(cycles_);
}

std::vector<double> PlanSimulator::one_rates() const {
  std::vector<double> out(values_.size(), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = one_rate(static_cast<std::int32_t>(i));
  }
  return out;
}

void PlanSimulator::clear_activity() {
  std::fill(transitions_.begin(), transitions_.end(), 0);
  std::fill(ones_.begin(), ones_.end(), 0);
  cycles_ = 0;
}

std::vector<double> arrival_times(const ExecutionPlan& p,
                                  const cell::CellLibrary& lib,
                                  const sta::StaOptions& opts) {
  std::vector<double> arrival(p.num_nodes(), 0.0);
  std::vector<double> slew(p.num_nodes(), 0.0);
  const auto arc_derate = [&](std::int32_t driver) {
    return opts.slew_aware
               ? opts.slew_sensitivity * slew[static_cast<std::size_t>(driver)]
               : 0.0;
  };
  const auto output_slew = [&](const cell::CellType& t, double load) {
    return opts.slew_aware ? 8.0 + 2.0 * t.drive_res * load : 0.0;
  };
  for (const std::int32_t id : p.topo) {
    const auto i = static_cast<std::size_t>(id);
    double at = 0.0;
    double sl = 0.0;
    switch (p.klass(id)) {
      case NodeClass::kInput:
        at = opts.input_arrival_ps + opts.input_drive_res * p.output_load[i];
        sl = opts.slew_aware ? opts.input_slew_ps : 0.0;
        break;
      case NodeClass::kOutput: {
        const auto d = static_cast<std::size_t>(
            p.fanin[static_cast<std::size_t>(p.fanin_offset[i])]);
        at = arrival[d];
        sl = slew[d];
        break;
      }
      case NodeClass::kFlop: {
        const cell::CellType& t = lib.type(p.cell_type[i]);
        const double load_delay = t.drive_res * p.output_load[i];
        at = t.intrinsic_delay.empty() ? load_delay
                                       : t.intrinsic_delay[0] + load_delay;
        sl = output_slew(t, p.output_load[i]);
        break;
      }
      case NodeClass::kTie:
        at = 0.0;  // constants are always there
        break;
      case NodeClass::kComb: {
        const cell::CellType& t = lib.type(p.cell_type[i]);
        const double load_delay = t.drive_res * p.output_load[i];
        const auto lo = p.fanin_offset[i], hi = p.fanin_offset[i + 1];
        bool first = true;
        for (auto e = lo; e < hi; ++e) {
          const std::int32_t f = p.fanin[static_cast<std::size_t>(e)];
          const double cand = arrival[static_cast<std::size_t>(f)] +
                              t.intrinsic_delay[static_cast<std::size_t>(
                                  e - lo)] +
                              load_delay + arc_derate(f);
          if (first || cand > at) {
            at = cand;
            first = false;
          }
        }
        sl = output_slew(t, p.output_load[i]);
        break;
      }
    }
    arrival[i] = at;
    slew[i] = sl;
  }
  return arrival;
}

}  // namespace moss::plan
