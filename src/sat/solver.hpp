#pragma once

#include <cstdint>
#include <vector>

#include "core_util/rng.hpp"

namespace moss::sat {

/// Solver variable (1-based; 0 is reserved/invalid) and literal. A literal
/// packs variable and sign as 2*var + sign, sign 1 meaning negated — the
/// same scheme moss::aig uses for AND-graph literals, so encodings map 1:1.
using Var = std::uint32_t;
using Lit = std::uint32_t;
inline constexpr Var kInvalidVar = 0;
inline constexpr Lit kLitUndef = 0;

inline Lit mk_lit(Var v, bool neg) { return (v << 1) | (neg ? 1u : 0u); }
inline Var lit_var(Lit l) { return l >> 1; }
inline bool lit_sign(Lit l) { return (l & 1u) != 0; }
inline Lit lit_neg(Lit l) { return l ^ 1u; }

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown };
const char* to_string(SolveStatus s);

struct SolverConfig {
  std::uint64_t seed = 1;      ///< initial decision polarities
  double var_decay = 0.95;     ///< VSIDS activity decay per conflict
  std::uint32_t restart_base = 100;  ///< conflicts per Luby restart unit
};

struct SolverStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
};

/// A small, self-contained CDCL SAT solver: two-watched-literal
/// propagation, VSIDS-style decision heap, first-UIP conflict learning
/// with phase saving, Luby restarts. Fully deterministic for a fixed seed:
/// no wall clock, no pointer-order iteration, ties broken by variable
/// index. Intended for the miter-sized problems the equivalence oracle
/// produces, not industrial CNF; clause deletion is deliberately omitted.
class Solver {
 public:
  explicit Solver(SolverConfig cfg = {});

  /// Allocate a fresh variable (ids start at 1).
  Var new_var();
  std::size_t num_vars() const { return activity_.size() - 1; }

  /// Add a clause over existing variables. Returns false if the database
  /// became trivially unsatisfiable (empty clause after simplification).
  /// Must be called before solve().
  bool add_clause(std::vector<Lit> lits);
  std::size_t num_clauses() const { return clauses_.size(); }

  /// Solve the current database. `conflict_budget` bounds the search
  /// (0 = unlimited); exceeding it yields kUnknown. Callable once per
  /// Solver instance.
  SolveStatus solve(std::uint64_t conflict_budget = 0);

  /// Model access, valid after solve() returned kSat.
  bool model_value(Var v) const { return model_[v] > 0; }
  bool model_value_lit(Lit l) const {
    return lit_sign(l) ? !model_value(lit_var(l)) : model_value(lit_var(l));
  }

  const SolverStats& stats() const { return stats_; }

 private:
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause = 0xffffffffu;

  // -1 false, 0 unassigned, +1 true (for the literal/variable).
  std::int8_t value_var(Var v) const { return assigns_[v]; }
  std::int8_t value_lit(Lit l) const {
    const std::int8_t a = assigns_[lit_var(l)];
    return lit_sign(l) ? static_cast<std::int8_t>(-a) : a;
  }

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void unchecked_enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& learnt, int& bt_level);
  void cancel_until(int level);
  Lit pick_branch();
  void attach_clause(ClauseRef cr);
  void bump_var(Var v);
  void decay_activities();

  // Indexed max-heap over variable activity (ties -> smaller index).
  bool heap_lt(Var a, Var b) const {
    return activity_[a] > activity_[b] ||
           (activity_[a] == activity_[b] && a < b);
  }
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(std::size_t i);
  void heap_down(std::size_t i);

  static std::uint32_t luby(std::uint32_t i);

  SolverConfig cfg_;
  Rng rng_;
  bool ok_ = true;
  bool solved_ = false;

  std::vector<std::vector<Lit>> clauses_;       // problem + learnt
  std::vector<std::vector<ClauseRef>> watches_; // per literal
  std::vector<std::int8_t> assigns_;            // per var
  std::vector<std::uint8_t> polarity_;          // saved phase per var
  std::vector<int> level_;                      // per var
  std::vector<ClauseRef> reason_;               // per var
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_pos_;          // -1 = not in heap

  std::vector<std::uint8_t> seen_;              // analyze() scratch
  std::vector<std::int8_t> model_;
  SolverStats stats_;
};

}  // namespace moss::sat
