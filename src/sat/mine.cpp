#include "sat/mine.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <fstream>

#include "core_util/error.hpp"
#include "netlist/writer.hpp"

namespace moss::sat {

MineReport mine_hard_negatives(const netlist::Netlist& golden,
                               const FepScorer& scorer,
                               const MinerConfig& cfg) {
  MineReport rep;
  Rng rng(cfg.seed);
  const std::vector<data::Mutation> muts =
      data::sample_mutations(golden, cfg.candidates, rng);
  rep.candidates = muts.size();
  rep.original_score = scorer ? scorer(golden) : 0.0f;

  EquivOracle oracle(cfg.oracle);
  for (std::size_t i = 0; i < muts.size(); ++i) {
    const netlist::Netlist mutant = data::apply_mutation(
        golden, muts[i], "__mut" + std::to_string(i));
    const OracleResult r = oracle.check(golden, mutant);
    rep.stats.conflicts += r.stats.conflicts;
    rep.stats.decisions += r.stats.decisions;
    rep.stats.propagations += r.stats.propagations;
    rep.stats.solver_calls += r.stats.solver_calls;
    rep.stats.cnf_vars += r.stats.cnf_vars;
    rep.stats.cnf_clauses += r.stats.cnf_clauses;
    rep.stats.miter_ands += r.stats.miter_ands;
    switch (r.verdict) {
      case Verdict::kEquivalent:
        ++rep.proven_equivalent;
        continue;
      case Verdict::kUnknown:
        ++rep.unknown;
        continue;
      case Verdict::kNotEquivalent:
        break;
    }
    ++rep.proven_inequivalent;

    float score = 0.0f;
    if (scorer) {
      score = scorer(mutant);
      // Head not fooled: it already separates the mutant from the golden
      // design — no training signal in keeping it.
      if (score < rep.original_score - cfg.margin) continue;
    }
    ++rep.fooled_head;

    MinedNegative neg;
    neg.mutation = muts[i];
    neg.name = mutant.name();
    neg.score = score;
    neg.conflicts = r.stats.conflicts;
    neg.cex_frames = static_cast<int>(r.cex.frames.size());
    neg.verilog = netlist::to_structural_verilog(mutant);
    neg.cex = r.cex;
    rep.negatives.push_back(std::move(neg));
  }
  return rep;
}

namespace {

void ensure_dir(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      if (!partial.empty() && partial != "/") {
        ::mkdir(partial.c_str(), 0755);
      }
    }
    if (i < dir.size()) partial.push_back(dir[i]);
  }
  struct stat st {};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw ContextError("cannot create mined-negative directory",
                       {{"dir", dir}});
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::size_t export_mined(const MineReport& rep, const std::string& dir) {
  ensure_dir(dir);
  std::size_t files = 0;

  std::ofstream jsonl(dir + "/mined.jsonl",
                      std::ios::out | std::ios::trunc);
  if (!jsonl) {
    throw ContextError("cannot open mined.jsonl for writing",
                       {{"dir", dir}});
  }
  for (const MinedNegative& neg : rep.negatives) {
    const std::string vpath = dir + "/" + neg.name + ".v";
    std::ofstream vf(vpath, std::ios::out | std::ios::trunc);
    if (!vf) {
      throw ContextError("cannot write mined mutant", {{"file", vpath}});
    }
    vf << neg.verilog;
    vf.close();
    ++files;

    char score_buf[32];
    std::snprintf(score_buf, sizeof(score_buf), "%.9g",
                  static_cast<double>(neg.score));
    jsonl << "{\"name\":\"" << json_escape(neg.name) << "\""
          << ",\"kind\":\"" << data::to_string(neg.mutation.kind) << "\""
          << ",\"node\":\"" << json_escape(neg.mutation.node) << "\""
          << ",\"detail\":\"" << json_escape(neg.mutation.detail) << "\""
          << ",\"score\":" << score_buf
          << ",\"conflicts\":" << neg.conflicts
          << ",\"cex_frames\":" << neg.cex_frames
          << ",\"mismatch_output\":\""
          << json_escape(neg.cex.mismatch_output) << "\""
          << ",\"file\":\"" << json_escape(neg.name) << ".v\"}\n";
  }
  jsonl.close();
  ++files;
  return files;
}

}  // namespace moss::sat
