#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/mutate.hpp"
#include "netlist/netlist.hpp"
#include "sat/oracle.hpp"

namespace moss::sat {

/// FEP-head callback: higher score = the learned head believes the mutant
/// is equivalent to the reference RTL. Supplied by the caller (CLI, tests)
/// so moss::sat stays below moss::core in the dependency stack.
using FepScorer = std::function<float(const netlist::Netlist&)>;

struct MinerConfig {
  std::uint64_t seed = 1;
  std::size_t candidates = 24;  ///< mutations sampled per design
  /// A mutant "fools" the head when score >= original_score - margin.
  float margin = 0.0f;
  OracleConfig oracle;  ///< per-mutant proof budget
};

struct MinedNegative {
  data::Mutation mutation;
  std::string name;      ///< mutant netlist name (golden + __mutN)
  float score = 0.0f;    ///< FEP head score of the mutant (0 w/o scorer)
  std::uint64_t conflicts = 0;  ///< solver work to prove inequivalence
  int cex_frames = 0;           ///< counterexample depth
  std::string verilog;          ///< structural export for retraining
  Counterexample cex;
};

struct MineReport {
  std::size_t candidates = 0;
  std::size_t proven_inequivalent = 0;
  std::size_t proven_equivalent = 0;  ///< mutation was accidentally benign
  std::size_t unknown = 0;
  std::size_t fooled_head = 0;  ///< inequivalent AND scored as equivalent
  float original_score = 0.0f;
  std::vector<MinedNegative> negatives;
  OracleStats stats;  ///< summed over all oracle calls
};

/// Mutate -> prove -> filter. Samples seeded single-site mutations of
/// `golden`, keeps only mutants the oracle proves inequivalent; when a
/// scorer is supplied, further restricts to mutants the FEP head still
/// scores as equivalent (the hard negatives worth retraining on).
/// Deterministic for a fixed config: same mutations, same verdicts, same
/// export bytes.
MineReport mine_hard_negatives(const netlist::Netlist& golden,
                               const FepScorer& scorer,
                               const MinerConfig& cfg);

/// Write `<dir>/<name>.v` per negative plus `<dir>/mined.jsonl` (one
/// stable-field-order record per line). Creates `dir` if needed; returns
/// the number of files written. Byte-identical across runs for a fixed
/// config.
std::size_t export_mined(const MineReport& rep, const std::string& dir);

}  // namespace moss::sat
