#include "sat/solver.hpp"

#include <algorithm>

#include "core_util/check.hpp"

namespace moss::sat {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "SAT";
    case SolveStatus::kUnsat: return "UNSAT";
    case SolveStatus::kUnknown: return "UNKNOWN";
  }
  return "?";
}

Solver::Solver(SolverConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  // Var 0 is reserved so literal 0 stays an "undefined" sentinel.
  watches_.resize(2);
  assigns_.push_back(0);
  polarity_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  watches_.resize(watches_.size() + 2);
  assigns_.push_back(0);
  // Seeded initial phase: makes the seed observable while staying
  // bit-deterministic (one rng draw per variable, in creation order).
  polarity_.push_back(rng_.bernoulli(0.5) ? 1 : 0);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  MOSS_CHECK(!solved_, "add_clause after solve()");
  if (!ok_) return false;
  // Canonicalize: sort by (var, sign), drop duplicates, detect tautology,
  // and strip literals already false at level 0.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> c;
  c.reserve(lits.size());
  for (const Lit l : lits) {
    MOSS_CHECK(lit_var(l) != 0 && lit_var(l) < assigns_.size(),
               "clause literal over unknown variable");
    if (!c.empty()) {
      if (c.back() == l) continue;                 // duplicate
      if (c.back() == lit_neg(l)) return true;     // tautology
    }
    if (value_lit(l) > 0) return true;             // satisfied at level 0
    if (value_lit(l) < 0) continue;                // false at level 0
    c.push_back(l);
  }
  if (c.empty()) {
    ok_ = false;
    return false;
  }
  if (c.size() == 1) {
    unchecked_enqueue(c[0], kNoClause);
    return ok_;
  }
  const auto cr = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back(std::move(c));
  attach_clause(cr);
  return true;
}

void Solver::attach_clause(ClauseRef cr) {
  const auto& c = clauses_[cr];
  watches_[lit_neg(c[0])].push_back(cr);
  watches_[lit_neg(c[1])].push_back(cr);
}

void Solver::unchecked_enqueue(Lit l, ClauseRef reason) {
  const Var v = lit_var(l);
  assigns_[v] = lit_sign(l) ? -1 : 1;
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef confl = kNoClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p];  // clauses watching ¬p (indexed by the true lit)
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const ClauseRef cr = ws[i++];
      auto& c = clauses_[cr];
      const Lit false_lit = lit_neg(p);
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (value_lit(c[0]) > 0) {  // clause already satisfied
        ws[j++] = cr;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value_lit(c[k]) >= 0) {
          std::swap(c[1], c[k]);
          watches_[lit_neg(c[1])].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      ws[j++] = cr;
      if (value_lit(c[0]) < 0) {  // conflict
        confl = cr;
        while (i < ws.size()) ws[j++] = ws[i++];
        break;
      }
      unchecked_enqueue(c[0], cr);
    }
    ws.resize(j);
    if (confl != kNoClause) break;
  }
  return confl;
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt,
                     int& bt_level) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting literal
  int path = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();
  std::vector<Var> to_clear;
  do {
    MOSS_CHECK(confl != kNoClause, "conflict analysis lost its reason");
    const auto& c = clauses_[confl];
    for (std::size_t k = (p == kLitUndef ? 0 : 1); k < c.size(); ++k) {
      const Lit q = c[k];
      const Var v = lit_var(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      to_clear.push_back(v);
      bump_var(v);
      if (level_[v] >= decision_level()) {
        ++path;
      } else {
        learnt.push_back(q);
      }
    }
    while (!seen_[lit_var(trail_[--index])]) {}
    p = trail_[index];
    confl = reason_[lit_var(p)];
    seen_[lit_var(p)] = 0;
    --path;
  } while (path > 0);
  learnt[0] = lit_neg(p);

  if (learnt.size() == 1) {
    bt_level = 0;
  } else {
    // Second-highest decision level goes to watch position 1.
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < learnt.size(); ++k) {
      if (level_[lit_var(learnt[k])] > level_[lit_var(learnt[max_i])]) {
        max_i = k;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[lit_var(learnt[1])];
  }
  for (const Var v : to_clear) seen_[v] = 0;
  stats_.learned_clauses += 1;
  stats_.learned_literals += learnt.size();
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  const std::size_t bound = trail_lim_[static_cast<std::size_t>(level)];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Lit l = trail_[i - 1];
    const Var v = lit_var(l);
    polarity_[v] = lit_sign(l) ? 1 : 0;  // phase saving
    assigns_[v] = 0;
    reason_[v] = kNoClause;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = bound;
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (value_var(v) == 0) {
      return mk_lit(v, polarity_[v] != 0);
    }
  }
  return kLitUndef;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (std::size_t i = 1; i < activity_.size(); ++i) activity_[i] *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) heap_up(static_cast<std::size_t>(heap_pos_[v]));
}

void Solver::decay_activities() { var_inc_ /= cfg_.var_decay; }

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_.size() - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::heap_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_lt(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_down(std::size_t i) {
  const Var v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && heap_lt(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!heap_lt(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::int32_t>(i);
}

std::uint32_t Solver::luby(std::uint32_t x) {
  // Luby sequence 1,1,2,1,1,2,4,... (0-based index).
  std::uint32_t size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return 1u << seq;
}

SolveStatus Solver::solve(std::uint64_t conflict_budget) {
  MOSS_CHECK(!solved_, "Solver instances are single-shot");
  solved_ = true;
  if (!ok_) return SolveStatus::kUnsat;

  std::uint32_t restart_index = 0;
  std::uint64_t restart_limit =
      static_cast<std::uint64_t>(luby(restart_index)) * cfg_.restart_base;
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) return SolveStatus::kUnsat;
      if (conflict_budget != 0 && stats_.conflicts > conflict_budget) {
        cancel_until(0);
        return SolveStatus::kUnknown;
      }
      int bt_level = 0;
      analyze(confl, learnt, bt_level);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], kNoClause);
      } else {
        const auto cr = static_cast<ClauseRef>(clauses_.size());
        clauses_.push_back(learnt);
        attach_clause(cr);
        unchecked_enqueue(learnt[0], cr);
      }
      decay_activities();
      continue;
    }
    if (conflict_budget != 0 && stats_.conflicts >= conflict_budget) {
      cancel_until(0);
      return SolveStatus::kUnknown;
    }
    if (conflicts_since_restart >= restart_limit) {
      ++stats_.restarts;
      conflicts_since_restart = 0;
      restart_limit =
          static_cast<std::uint64_t>(luby(++restart_index)) *
          cfg_.restart_base;
      cancel_until(0);
      continue;
    }
    const Lit next = pick_branch();
    if (next == kLitUndef) {
      model_ = assigns_;
      cancel_until(0);
      return SolveStatus::kSat;
    }
    ++stats_.decisions;
    trail_lim_.push_back(trail_.size());
    unchecked_enqueue(next, kNoClause);
  }
}

}  // namespace moss::sat
