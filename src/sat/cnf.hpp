#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace moss::sat {

/// Mapping from AIG nodes inside an encoded cone to solver variables.
/// Nodes outside the cone have no variable; asking for their literal is a
/// checked error.
class CnfEncoding {
 public:
  /// Solver literal realizing an AIG literal (node must be in the cone).
  Lit lit(aig::Lit al) const;
  bool encoded(aig::Lit al) const {
    const auto n = aig::lit_node(al);
    return n < node_var_.size() && node_var_[n] != kInvalidVar;
  }

  std::size_t cone_nodes() const { return cone_nodes_; }
  std::size_t clauses_added() const { return clauses_added_; }

 private:
  friend CnfEncoding encode_cone(const aig::Aig& g,
                                 const std::vector<aig::Lit>& roots,
                                 Solver& solver);
  std::vector<Var> node_var_;  ///< per AIG node id; kInvalidVar = not encoded
  std::size_t cone_nodes_ = 0;
  std::size_t clauses_added_ = 0;
};

/// Tseitin-encode the transitive fanin cone of `roots` into `solver`:
/// one variable per cone node, three clauses per AND gate
/// (c = a·b  →  (¬c∨a)(¬c∨b)(c∨¬a∨¬b)), a unit-forced variable for the
/// constant node, and free variables for PIs/latches. Variables are
/// allocated in ascending node-id order so the encoding is deterministic.
/// The roots themselves are not asserted — callers add unit clauses via
/// `solver.add_clause({enc.lit(root)})`.
CnfEncoding encode_cone(const aig::Aig& g, const std::vector<aig::Lit>& roots,
                        Solver& solver);

}  // namespace moss::sat
