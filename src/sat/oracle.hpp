#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "rtl/module.hpp"
#include "sat/solver.hpp"

namespace moss::sat {

enum class Verdict : std::uint8_t {
  kEquivalent,     ///< proven: no distinguishing input/state assignment
  kNotEquivalent,  ///< a confirmed counterexample exists
  kUnknown,        ///< bounded resources exhausted before a proof
};
const char* to_string(Verdict v);

enum class UnknownReason : std::uint8_t {
  kNone,            ///< verdict is not kUnknown
  kDepthBound,      ///< BMC found no difference within max_frames
  kConflictBudget,  ///< solver conflict budget exhausted
};
const char* to_string(UnknownReason r);

/// A distinguishing stimulus: per-frame values for the shared primary
/// inputs, applied from the all-zero power-on state. Combinational
/// counterexamples have exactly one frame.
struct Counterexample {
  std::vector<std::string> inputs;  ///< PI names, sorted (stable order)
  std::vector<std::vector<std::uint8_t>> frames;  ///< frames[f][i] = inputs[i]@cycle f
  std::string mismatch_output;  ///< primary output that differs after replay
  bool confirmed = false;  ///< replay through aig::AigSimulator reproduced it
};

struct OracleStats {
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::size_t solver_calls = 0;
  std::size_t cnf_vars = 0;
  std::size_t cnf_clauses = 0;
  std::size_t miter_ands = 0;  ///< AND nodes in the shared miter AIG
};

struct OracleResult {
  Verdict verdict = Verdict::kUnknown;
  UnknownReason unknown_reason = UnknownReason::kConflictBudget;
  std::string detail;
  Counterexample cex;      ///< kNotEquivalent with a functional difference
  int frames_checked = 0;  ///< frames proven difference-free (comb: 1)
  bool proven_by_cut = false;  ///< sequential proof via next-state matching
  OracleStats stats;
};

struct OracleConfig {
  std::uint64_t seed = 1;
  /// Total solver conflicts permitted across all solve calls of one check;
  /// exhausting it yields kUnknown / kConflictBudget.
  std::uint64_t conflict_budget = 200000;
  /// Bounded-model-check unroll depth for sequential pairs whose state
  /// encodings don't line up (or whose cut check is inconclusive).
  int max_frames = 16;
  /// Replay every counterexample through aig::AigSimulator and hard-fail
  /// (MOSS_CHECK) if the solver's model does not reproduce a mismatch.
  bool cross_check = true;
};

/// Miter-based exact equivalence oracle over the AIG module. Both circuits
/// are built into ONE structurally-hashed AIG so shared subfunctions fold
/// before any CNF is emitted — equivalent synthesis variants frequently
/// reduce to a constant-false miter with zero solver work.
///
/// Verdict ladder:
///   1. interface mismatch (PI/PO names, counts)      -> kNotEquivalent
///   2. combinational pair: single-frame miter         -> SAT/UNSAT decide
///   3. sequential, matching state keys: cut check
///      (outputs + effective next-states, shared Q)    -> UNSAT proves
///   4. cut SAT or state keys differ: BMC unrolling
///      from the all-zero power-on state               -> SAT disproves,
///      UNSAT to max_frames                            -> kUnknown/depth
/// Deterministic for a fixed config (seeded solver, index-ordered ties).
class EquivOracle {
 public:
  explicit EquivOracle(OracleConfig cfg = {}) : cfg_(cfg) {}

  OracleResult check(const netlist::Netlist& a,
                     const netlist::Netlist& b) const;
  /// Lowered-RTL-vs-netlist: synthesize `m` against b's library, then
  /// compare netlists.
  OracleResult check(const rtl::Module& m, const netlist::Netlist& b) const;

  const OracleConfig& config() const { return cfg_; }

 private:
  OracleConfig cfg_;
};

}  // namespace moss::sat
