#include "sat/oracle.hpp"

#include <map>

#include "aig/aig.hpp"
#include "aig/aig_sim.hpp"
#include "core_util/check.hpp"
#include "sat/cnf.hpp"
#include "synth/synthesize.hpp"

namespace moss::sat {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kEquivalent: return "EQUIVALENT";
    case Verdict::kNotEquivalent: return "NOT_EQUIVALENT";
    case Verdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

const char* to_string(UnknownReason r) {
  switch (r) {
    case UnknownReason::kNone: return "none";
    case UnknownReason::kDepthBound: return "depth_bound";
    case UnknownReason::kConflictBudget: return "conflict_budget";
  }
  return "?";
}

namespace {

std::string flop_key(const Netlist& nl, NodeId f) {
  const auto& n = nl.node(f);
  return n.rtl_register.empty() ? n.name : n.rtl_register;
}

/// Shannon-expand a cell truth table over AIG fanin literals (mirrors the
/// private tt_to_aig in aig.cpp; shared strash folds duplicates anyway).
aig::Lit tt_to_lit(aig::Aig& g, std::uint64_t table,
                   const std::vector<aig::Lit>& ins, int num_vars) {
  if (num_vars == 0) return (table & 1ull) ? aig::kLitTrue : aig::kLitFalse;
  const int v = num_vars - 1;
  const std::uint32_t half = 1u << v;
  std::uint64_t lo = 0, hi = 0;
  for (std::uint32_t row = 0; row < (1u << num_vars); ++row) {
    if (!((table >> row) & 1ull)) continue;
    if (row & half) {
      hi |= 1ull << (row & (half - 1));
    } else {
      lo |= 1ull << (row & (half - 1));
    }
  }
  const aig::Lit f0 = tt_to_lit(g, lo, ins, v);
  const aig::Lit f1 = tt_to_lit(g, hi, ins, v);
  if (f0 == f1) return f0;
  return g.mux(ins[static_cast<std::size_t>(v)], f1, f0);
}

/// Combinational functions of every node of `nl` built into the shared
/// miter AIG, with primary inputs and flop outputs taken from the supplied
/// literal maps (keyed by PI name / flop key for per-netlist state).
std::vector<aig::Lit> build_frame(
    aig::Aig& g, const Netlist& nl,
    const std::map<std::string, aig::Lit>& pi_lits,
    const std::map<std::string, aig::Lit>& state_lits) {
  std::vector<aig::Lit> fn(nl.num_nodes(), aig::kLitFalse);
  for (const NodeId id : nl.topo_order()) {
    const auto& n = nl.node(id);
    const auto idx = static_cast<std::size_t>(id);
    switch (n.kind) {
      case NodeKind::kPrimaryInput:
        fn[idx] = pi_lits.at(n.name);
        break;
      case NodeKind::kPrimaryOutput:
        fn[idx] = fn[static_cast<std::size_t>(n.fanin[0])];
        break;
      case NodeKind::kCell: {
        const cell::CellType& t = nl.library().type(n.type);
        if (t.is_flop()) {
          fn[idx] = state_lits.at(flop_key(nl, id));
          break;
        }
        if (t.is_tie()) {
          fn[idx] = t.eval(0) ? aig::kLitTrue : aig::kLitFalse;
          break;
        }
        std::vector<aig::Lit> ins;
        ins.reserve(n.fanin.size());
        for (const NodeId f : n.fanin) {
          ins.push_back(fn[static_cast<std::size_t>(f)]);
        }
        fn[idx] = tt_to_lit(g, t.truth_table, ins, t.num_inputs);
        break;
      }
    }
  }
  return fn;
}

/// Effective next-state literal of a flop: R ? reset_value : (E ? D : Q).
aig::Lit flop_next(aig::Aig& g, const Netlist& nl, NodeId f,
                   const std::vector<aig::Lit>& fn, aig::Lit q) {
  const auto& n = nl.node(f);
  const cell::CellType& t = nl.library().type(n.type);
  const auto pin = [&](const char* name) {
    const int p = t.pin_index(name);
    MOSS_CHECK(p >= 0, "missing flop pin");
    return fn[static_cast<std::size_t>(n.fanin[static_cast<std::size_t>(p)])];
  };
  aig::Lit next = pin("D");
  if (t.has_enable) next = g.mux(pin("E"), next, q);
  if (t.has_reset) {
    next = g.mux(pin("R"),
                 t.reset_value ? aig::kLitTrue : aig::kLitFalse, next);
  }
  return next;
}

/// XOR of same-named primary outputs, OR-accumulated into one miter
/// literal. Output name sets were already checked to match.
aig::Lit output_miter(aig::Aig& g, const Netlist& a,
                      const std::vector<aig::Lit>& fa, const Netlist& b,
                      const std::vector<aig::Lit>& fb) {
  aig::Lit diff = aig::kLitFalse;
  for (const NodeId oa : a.outputs()) {
    const NodeId ob = b.find(a.node(oa).name);
    diff = g.or2(diff, g.xor2(fa[static_cast<std::size_t>(oa)],
                              fb[static_cast<std::size_t>(ob)]));
  }
  return diff;
}

struct SolveOutcome {
  SolveStatus status = SolveStatus::kUnknown;
  const Solver* solver = nullptr;
};

/// One solver episode: encode the cone of `root`, assert it, solve under
/// the remaining budget, and fold the solver's work into `stats`.
class MiterSolve {
 public:
  MiterSolve(const aig::Aig& g, aig::Lit root, std::uint64_t seed,
             std::uint64_t budget)
      : solver_(SolverConfig{seed, 0.95, 100}) {
    enc_ = encode_cone(g, {root}, solver_);
    solver_.add_clause({enc_.lit(root)});
    status_ = solver_.solve(budget);
  }

  SolveStatus status() const { return status_; }
  bool model_of(aig::Lit l) const {
    // Literals outside the cone cannot influence the asserted miter; any
    // value works for counterexample extraction — use 0.
    if (!enc_.encoded(l)) return false;
    return solver_.model_value_lit(enc_.lit(l));
  }

  void accumulate(OracleStats& st) const {
    const SolverStats& s = solver_.stats();
    st.conflicts += s.conflicts;
    st.decisions += s.decisions;
    st.propagations += s.propagations;
    st.solver_calls += 1;
    st.cnf_vars += solver_.num_vars();
    st.cnf_clauses += solver_.num_clauses();
  }

 private:
  Solver solver_;
  CnfEncoding enc_;
  SolveStatus status_ = SolveStatus::kUnknown;
};

/// Replay a counterexample through two independent aig::from_netlist
/// simulators and record the first differing output. Returns false when
/// the stimulus does not actually distinguish the circuits.
bool replay_cex(const Netlist& a, const Netlist& b, Counterexample& cex) {
  const aig::AigConversion ca = aig::from_netlist(a);
  const aig::AigConversion cb = aig::from_netlist(b);
  aig::AigSimulator sa(ca.aig);
  aig::AigSimulator sb(cb.aig);

  const auto pi_vector = [&](const Netlist& nl,
                             const std::vector<std::uint8_t>& frame) {
    std::vector<std::uint8_t> v;
    v.reserve(nl.inputs().size());
    for (const NodeId id : nl.inputs()) {
      const auto& name = nl.node(id).name;
      std::uint8_t bit = 0;
      for (std::size_t i = 0; i < cex.inputs.size(); ++i) {
        if (cex.inputs[i] == name) {
          bit = frame[i];
          break;
        }
      }
      v.push_back(bit);
    }
    return v;
  };

  for (const auto& frame : cex.frames) {
    sa.step(pi_vector(a, frame));
    sb.step(pi_vector(b, frame));
  }
  const std::vector<std::uint8_t> oa = sa.output_values();
  const std::vector<std::uint8_t> ob = sb.output_values();
  // output_values() follows PO insertion order = netlist outputs() order.
  std::map<std::string, std::uint8_t> b_out;
  for (std::size_t i = 0; i < b.outputs().size(); ++i) {
    b_out[b.node(b.outputs()[i]).name] = ob[i];
  }
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    const auto& name = a.node(a.outputs()[i]).name;
    if (oa[i] != b_out.at(name)) {
      cex.mismatch_output = name;
      cex.confirmed = true;
      return true;
    }
  }
  return false;
}

}  // namespace

OracleResult EquivOracle::check(const rtl::Module& m,
                                const Netlist& b) const {
  return check(synth::synthesize(m, b.library()), b);
}

OracleResult EquivOracle::check(const Netlist& a, const Netlist& b) const {
  MOSS_CHECK(a.finalized() && b.finalized(),
             "equivalence check needs finalized netlists");
  OracleResult res;

  // ---- 1. Interface correspondence (PI and PO name sets). ---------------
  std::map<std::string, aig::Lit> pi_names;
  for (const NodeId id : a.inputs()) pi_names.emplace(a.node(id).name, 0);
  const std::size_t a_pis = pi_names.size();
  for (const NodeId id : b.inputs()) pi_names.emplace(b.node(id).name, 0);
  if (pi_names.size() != a_pis || a.inputs().size() != b.inputs().size()) {
    res.verdict = Verdict::kNotEquivalent;
    res.unknown_reason = UnknownReason::kNone;
    res.detail = "interface mismatch: primary inputs differ";
    return res;
  }
  if (a.outputs().size() != b.outputs().size()) {
    res.verdict = Verdict::kNotEquivalent;
    res.unknown_reason = UnknownReason::kNone;
    res.detail = "interface mismatch: primary output counts differ";
    return res;
  }
  for (const NodeId oa : a.outputs()) {
    const NodeId ob = b.find(a.node(oa).name);
    if (ob == netlist::kInvalidNode ||
        b.node(ob).kind != NodeKind::kPrimaryOutput) {
      res.verdict = Verdict::kNotEquivalent;
      res.unknown_reason = UnknownReason::kNone;
      res.detail = "output '" + a.node(oa).name + "' missing in b";
      return res;
    }
  }

  const bool sequential = !a.flops().empty() || !b.flops().empty();
  std::uint64_t budget = cfg_.conflict_budget;
  const auto spend = [&](const MiterSolve& ms) {
    ms.accumulate(res.stats);
    const std::uint64_t used = res.stats.conflicts;
    budget = cfg_.conflict_budget > used ? cfg_.conflict_budget - used : 0;
  };

  // Deterministic counterexample input order: sorted PI names.
  Counterexample cex;
  for (const auto& [name, lit] : pi_names) cex.inputs.push_back(name);

  // ---- 2/3. Single-frame miter over the combinational cut. -------------
  // Matching state keys let the cut prove sequential equivalence: flop
  // outputs become shared free variables and every output + effective
  // next-state must agree. Without matching keys we go straight to BMC.
  bool state_keys_match = a.flops().size() == b.flops().size();
  if (state_keys_match) {
    std::map<std::string, NodeId> b_flops;
    for (const NodeId f : b.flops()) b_flops.emplace(flop_key(b, f), f);
    for (const NodeId f : a.flops()) {
      if (b_flops.find(flop_key(a, f)) == b_flops.end()) {
        state_keys_match = false;
        break;
      }
    }
  }

  if (state_keys_match) {
    aig::Aig g;
    std::map<std::string, aig::Lit> pis;
    for (const auto& [name, unused] : pi_names) {
      pis[name] = aig::make_lit(g.add_pi(), false);
    }
    std::map<std::string, aig::Lit> state;
    for (const NodeId f : a.flops()) {
      state[flop_key(a, f)] = aig::make_lit(g.add_pi(), false);
    }
    const std::vector<aig::Lit> fa = build_frame(g, a, pis, state);
    const std::vector<aig::Lit> fb = build_frame(g, b, pis, state);
    aig::Lit miter = output_miter(g, a, fa, b, fb);
    std::map<std::string, NodeId> b_flops;
    for (const NodeId f : b.flops()) b_flops.emplace(flop_key(b, f), f);
    for (const NodeId f : a.flops()) {
      const std::string key = flop_key(a, f);
      const aig::Lit q = state.at(key);
      miter = g.or2(miter, g.xor2(flop_next(g, a, f, fa, q),
                                  flop_next(g, b, b_flops.at(key), fb, q)));
    }
    res.stats.miter_ands += g.num_ands();

    SolveStatus status = SolveStatus::kUnsat;
    if (miter != aig::kLitFalse) {
      if (budget == 0) {
        res.verdict = Verdict::kUnknown;
        res.unknown_reason = UnknownReason::kConflictBudget;
        res.detail = "conflict budget exhausted before the cut check";
        return res;
      }
      MiterSolve ms(g, miter, cfg_.seed, budget);
      spend(ms);
      status = ms.status();
      if (status == SolveStatus::kSat && !sequential) {
        // Combinational: the model is a one-frame counterexample.
        cex.frames.push_back({});
        auto& frame = cex.frames.back();
        for (const auto& name : cex.inputs) {
          frame.push_back(ms.model_of(pis.at(name)) ? 1 : 0);
        }
      }
    }

    if (status == SolveStatus::kUnsat) {
      res.verdict = Verdict::kEquivalent;
      res.unknown_reason = UnknownReason::kNone;
      res.proven_by_cut = sequential;
      res.frames_checked = sequential ? 0 : 1;
      res.detail = sequential
                       ? "outputs and next-state functions proven equal "
                         "over the combinational cut"
                       : "single-frame miter unsatisfiable";
      return res;
    }
    if (status == SolveStatus::kUnknown) {
      res.verdict = Verdict::kUnknown;
      res.unknown_reason = UnknownReason::kConflictBudget;
      res.detail = "conflict budget exhausted on the cut miter";
      return res;
    }
    if (!sequential) {
      if (cfg_.cross_check) {
        MOSS_CHECK(replay_cex(a, b, cex),
                   "SAT model failed aig_sim counterexample replay");
      }
      res.verdict = Verdict::kNotEquivalent;
      res.unknown_reason = UnknownReason::kNone;
      res.cex = std::move(cex);
      res.detail = "combinational counterexample on output '" +
                   res.cex.mismatch_output + "'";
      return res;
    }
    // Sequential cut SAT: the distinguishing state may be unreachable —
    // fall through to bounded unrolling from the power-on state.
  }

  // ---- 4. Time-frame unrolling from the all-zero power-on state. --------
  aig::Aig g;
  std::map<std::string, aig::Lit> state_a, state_b;
  for (const NodeId f : a.flops()) state_a[flop_key(a, f)] = aig::kLitFalse;
  for (const NodeId f : b.flops()) state_b[flop_key(b, f)] = aig::kLitFalse;

  std::vector<std::map<std::string, aig::Lit>> frame_pis;
  for (int frame = 0; frame < cfg_.max_frames; ++frame) {
    frame_pis.push_back({});
    std::map<std::string, aig::Lit>& pis = frame_pis.back();
    for (const auto& [name, unused] : pi_names) {
      pis[name] = aig::make_lit(g.add_pi(), false);
    }
    const std::vector<aig::Lit> fa = build_frame(g, a, pis, state_a);
    const std::vector<aig::Lit> fb = build_frame(g, b, pis, state_b);
    const aig::Lit diff = output_miter(g, a, fa, b, fb);

    if (diff != aig::kLitFalse) {
      if (budget == 0) {
        res.verdict = Verdict::kUnknown;
        res.unknown_reason = UnknownReason::kConflictBudget;
        res.detail = "conflict budget exhausted at frame " +
                     std::to_string(frame);
        res.frames_checked = frame;
        return res;
      }
      MiterSolve ms(g, diff, cfg_.seed + static_cast<std::uint64_t>(frame),
                    budget);
      spend(ms);
      if (ms.status() == SolveStatus::kUnknown) {
        res.verdict = Verdict::kUnknown;
        res.unknown_reason = UnknownReason::kConflictBudget;
        res.detail = "conflict budget exhausted at frame " +
                     std::to_string(frame);
        res.frames_checked = frame;
        return res;
      }
      if (ms.status() == SolveStatus::kSat) {
        for (int f = 0; f <= frame; ++f) {
          cex.frames.push_back({});
          auto& fr = cex.frames.back();
          for (const auto& name : cex.inputs) {
            fr.push_back(ms.model_of(frame_pis[static_cast<std::size_t>(f)]
                                         .at(name))
                             ? 1
                             : 0);
          }
        }
        if (cfg_.cross_check) {
          MOSS_CHECK(replay_cex(a, b, cex),
                     "BMC model failed aig_sim counterexample replay");
        }
        res.verdict = Verdict::kNotEquivalent;
        res.unknown_reason = UnknownReason::kNone;
        res.cex = std::move(cex);
        res.frames_checked = frame;
        res.detail = "sequential counterexample at frame " +
                     std::to_string(frame) + " on output '" +
                     res.cex.mismatch_output + "'";
        return res;
      }
    }
    res.frames_checked = frame + 1;

    // Advance both state vectors through their own next-state functions.
    std::map<std::string, aig::Lit> next_a, next_b;
    for (const NodeId f : a.flops()) {
      const std::string key = flop_key(a, f);
      next_a[key] = flop_next(g, a, f, fa, state_a.at(key));
    }
    for (const NodeId f : b.flops()) {
      const std::string key = flop_key(b, f);
      next_b[key] = flop_next(g, b, f, fb, state_b.at(key));
    }
    state_a = std::move(next_a);
    state_b = std::move(next_b);
  }
  res.stats.miter_ands += g.num_ands();

  res.verdict = Verdict::kUnknown;
  res.unknown_reason = UnknownReason::kDepthBound;
  res.detail = "no difference within " + std::to_string(cfg_.max_frames) +
               " frames (depth-bounded)";
  return res;
}

}  // namespace moss::sat
