#include "sat/cnf.hpp"

#include "core_util/check.hpp"

namespace moss::sat {

Lit CnfEncoding::lit(aig::Lit al) const {
  const std::uint32_t n = aig::lit_node(al);
  MOSS_CHECK(n < node_var_.size() && node_var_[n] != kInvalidVar,
             "AIG node not in the encoded cone");
  return mk_lit(node_var_[n], aig::lit_compl(al));
}

CnfEncoding encode_cone(const aig::Aig& g, const std::vector<aig::Lit>& roots,
                        Solver& solver) {
  CnfEncoding enc;
  enc.node_var_.assign(g.num_nodes(), kInvalidVar);

  // Mark the cone with an explicit DFS stack.
  std::vector<std::uint8_t> in_cone(g.num_nodes(), 0);
  std::vector<std::uint32_t> stack;
  for (const aig::Lit r : roots) {
    const std::uint32_t n = aig::lit_node(r);
    if (!in_cone[n]) {
      in_cone[n] = 1;
      stack.push_back(n);
    }
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    const aig::AigNode& node = g.node(n);
    if (node.kind != aig::AigKind::kAnd) continue;
    for (const aig::Lit f : {node.fanin0, node.fanin1}) {
      const std::uint32_t fn = aig::lit_node(f);
      if (!in_cone[fn]) {
        in_cone[fn] = 1;
        stack.push_back(fn);
      }
    }
  }

  // Allocate variables in ascending node-id order (deterministic), then
  // emit the Tseitin clauses. AND fanins always precede the gate, so
  // variables exist by the time a gate's clauses are written.
  const std::size_t before = solver.num_clauses();
  for (std::uint32_t n = 0; n < g.num_nodes(); ++n) {
    if (!in_cone[n]) continue;
    enc.node_var_[n] = solver.new_var();
    ++enc.cone_nodes_;
  }
  for (std::uint32_t n = 0; n < g.num_nodes(); ++n) {
    if (!in_cone[n]) continue;
    const aig::AigNode& node = g.node(n);
    const Lit c = mk_lit(enc.node_var_[n], false);
    switch (node.kind) {
      case aig::AigKind::kConst0:
        solver.add_clause({lit_neg(c)});
        break;
      case aig::AigKind::kPi:
      case aig::AigKind::kLatch:
        break;  // free variable
      case aig::AigKind::kAnd: {
        const Lit a = enc.lit(node.fanin0);
        const Lit b = enc.lit(node.fanin1);
        solver.add_clause({lit_neg(c), a});
        solver.add_clause({lit_neg(c), b});
        solver.add_clause({c, lit_neg(a), lit_neg(b)});
        break;
      }
    }
  }
  enc.clauses_added_ = solver.num_clauses() - before;
  return enc;
}

}  // namespace moss::sat
