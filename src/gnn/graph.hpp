#pragma once

#include <vector>

#include "core_util/check.hpp"
#include "tensor/tensor.hpp"

namespace moss::gnn {

/// One cluster's share of an update step: the nodes (all in one aggregator
/// cluster) plus their incoming edges. `edge_dst_local` indexes into
/// `nodes`; `edge_src` / `edge_dst` are global node ids.
struct UpdateGroup {
  int cluster = 0;
  std::vector<int> nodes;
  std::vector<int> edge_src;
  std::vector<int> edge_dst;
  std::vector<int> edge_dst_local;
  std::vector<int> edge_pos;  ///< pin position per edge (clamped)
};

/// One asynchronous update step: all groups in a step read the same h and
/// are written back with a single scatter — e.g. one combinational level.
struct UpdateStep {
  std::vector<UpdateGroup> groups;
};

/// A circuit graph prepared for the two-phase asynchronous GNN.
/// `forward_steps` run in order (levelized combinational logic, PIs→DFF.D);
/// `turnaround_steps` then update the DFFs from their input pins, feeding
/// state back for the next round (the paper's Turnaround Propagation).
struct Graph {
  std::size_t num_nodes = 0;
  std::size_t num_clusters = 1;
  tensor::Tensor features;  ///< N×F static node features
  std::vector<UpdateStep> forward_steps;
  std::vector<UpdateStep> turnaround_steps;
  /// Rows to include in the mean-pool readout (typically all cells+PIs).
  std::vector<int> readout_nodes;
};

/// Incrementally assembles a Graph. The caller provides per-node cluster
/// ids and fanin (src, pin) lists, then schedules update sets in execution
/// order; the builder splits each set by cluster.
class GraphBuilder {
 public:
  GraphBuilder(std::size_t num_nodes, std::size_t num_clusters)
      : num_clusters_(num_clusters),
        cluster_(num_nodes, 0),
        fanins_(num_nodes) {
    g_.num_nodes = num_nodes;
    g_.num_clusters = num_clusters;
  }

  void set_cluster(int node, int cluster) {
    MOSS_CHECK(cluster >= 0 &&
                   static_cast<std::size_t>(cluster) < num_clusters_,
               "cluster id out of range");
    cluster_[static_cast<std::size_t>(node)] = cluster;
  }

  void set_fanins(int node, std::vector<std::pair<int, int>> src_pos) {
    fanins_[static_cast<std::size_t>(node)] = std::move(src_pos);
  }

  void set_features(tensor::Tensor f) {
    MOSS_CHECK(f.rows() == g_.num_nodes, "feature row count mismatch");
    g_.features = std::move(f);
  }

  void set_readout(std::vector<int> nodes) {
    g_.readout_nodes = std::move(nodes);
  }

  /// Schedule a forward-phase step updating `nodes` (each must have fanins).
  void schedule_forward(const std::vector<int>& nodes) {
    g_.forward_steps.push_back(make_step(nodes));
  }
  /// Schedule a turnaround-phase step (DFF updates).
  void schedule_turnaround(const std::vector<int>& nodes) {
    g_.turnaround_steps.push_back(make_step(nodes));
  }

  Graph build() {
    if (g_.readout_nodes.empty()) {
      g_.readout_nodes.resize(g_.num_nodes);
      for (std::size_t i = 0; i < g_.num_nodes; ++i) {
        g_.readout_nodes[i] = static_cast<int>(i);
      }
    }
    return std::move(g_);
  }

 private:
  UpdateStep make_step(const std::vector<int>& nodes) const;

  std::size_t num_clusters_;
  std::vector<int> cluster_;
  std::vector<std::vector<std::pair<int, int>>> fanins_;
  Graph g_;
};

}  // namespace moss::gnn
