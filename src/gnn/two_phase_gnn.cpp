#include "gnn/two_phase_gnn.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hpp"

namespace moss::gnn {

using tensor::Tensor;

TwoPhaseGnn::TwoPhaseGnn(const GnnConfig& cfg, Rng& rng,
                         tensor::ParameterSet& params,
                         const std::string& name)
    : cfg_(cfg),
      input_proj_(cfg.feature_dim, cfg.hidden, rng, params, name + ".in") {
  MOSS_CHECK(cfg.feature_dim > 0, "GnnConfig.feature_dim must be set");
  MOSS_CHECK(cfg.num_aggregators >= 1, "need at least one aggregator");
  const float std = 1.0f / std::sqrt(static_cast<float>(cfg.hidden));
  pos_table_ = params.add(
      name + ".pos",
      Tensor::randn(static_cast<std::size_t>(cfg.max_pin_pos), cfg.hidden,
                    rng, std, true));
  aggs_.resize(cfg.num_aggregators);
  for (std::size_t g = 0; g < cfg.num_aggregators; ++g) {
    const std::string p = name + ".agg" + std::to_string(g);
    aggs_[g].w_msg = params.add(
        p + ".w_msg", Tensor::randn(cfg.hidden, cfg.hidden, rng, std, true));
    aggs_[g].w_self = params.add(
        p + ".w_self", Tensor::randn(cfg.hidden, cfg.hidden, rng, std, true));
    aggs_[g].bias = params.add(p + ".b", Tensor::zeros(1, cfg.hidden, true));
    aggs_[g].attn_msg = params.add(
        p + ".a_msg", Tensor::randn(cfg.hidden, 1, rng, std, true));
    aggs_[g].attn_self = params.add(
        p + ".a_self", Tensor::randn(cfg.hidden, 1, rng, std, true));
    if (cfg.gru_update) {
      aggs_[g].w_z = params.add(
          p + ".w_z",
          Tensor::randn(2 * cfg.hidden, cfg.hidden, rng, std, true));
      aggs_[g].w_r = params.add(
          p + ".w_r",
          Tensor::randn(2 * cfg.hidden, cfg.hidden, rng, std, true));
      aggs_[g].w_h = params.add(
          p + ".w_h",
          Tensor::randn(2 * cfg.hidden, cfg.hidden, rng, std, true));
    }
  }
}

Tensor TwoPhaseGnn::apply_step(const UpdateStep& step, Tensor h) const {
  std::vector<int> all_nodes;
  std::vector<Tensor> all_new;
  for (const UpdateGroup& grp : step.groups) {
    MOSS_CHECK(static_cast<std::size_t>(grp.cluster) < aggs_.size(),
               "cluster id exceeds aggregator count");
    const Aggregator& agg = aggs_[static_cast<std::size_t>(grp.cluster)];

    // Per-edge messages: W_msg · h_src + positional encoding of the pin.
    // Pin positions from malformed graphs can be out of range in either
    // direction (e.g. -1 from a failed pin lookup); clamp both ends so the
    // positional-table gather stays in bounds.
    std::vector<int> pos_clamped = grp.edge_pos;
    for (int& p : pos_clamped) {
      p = std::clamp(p, 0, cfg_.max_pin_pos - 1);
    }
    // Fused gather+GEMM: the per-edge source rows are never materialized.
    Tensor msg = tensor::add(
        tensor::kernels::gather_matmul(h, grp.edge_src, agg.w_msg),
        tensor::gather_rows(pos_table_, pos_clamped));

    Tensor weighted;
    if (cfg_.attention) {
      const Tensor dst_h = tensor::gather_rows(h, grp.edge_dst);
      const Tensor score = tensor::leaky_relu(
          tensor::add(tensor::matmul(msg, agg.attn_msg),
                      tensor::matmul(dst_h, agg.attn_self)),
          0.2f);
      const Tensor alpha =
          tensor::segment_softmax(score, grp.edge_dst_local,
                                  grp.nodes.size());
      weighted = tensor::mul_colvec(msg, alpha);
    } else {
      // Mean aggregation: weight each edge by 1/indegree(dst).
      std::vector<float> inv(grp.edge_src.size(), 0.0f);
      std::vector<int> deg(grp.nodes.size(), 0);
      for (const int d : grp.edge_dst_local) ++deg[static_cast<std::size_t>(d)];
      for (std::size_t e = 0; e < inv.size(); ++e) {
        inv[e] = 1.0f / static_cast<float>(
                            deg[static_cast<std::size_t>(
                                grp.edge_dst_local[e])]);
      }
      weighted = tensor::mul_colvec(
          msg, Tensor::from(std::move(inv), grp.edge_src.size(), 1));
    }
    const Tensor aggregated =
        tensor::segment_sum(weighted, grp.edge_dst_local, grp.nodes.size());
    const Tensor self_h = tensor::gather_rows(h, grp.nodes);
    Tensor new_h;
    if (cfg_.gru_update) {
      const Tensor mh = tensor::concat_cols(aggregated, self_h);
      const Tensor z = tensor::sigmoid(tensor::matmul(mh, agg.w_z));
      const Tensor r = tensor::sigmoid(tensor::matmul(mh, agg.w_r));
      const Tensor cand = tensor::tanh_t(tensor::matmul(
          tensor::concat_cols(aggregated, r * self_h), agg.w_h));
      const Tensor ones = Tensor::full(z.rows(), z.cols(), 1.0f);
      new_h = tensor::add((ones - z) * self_h, z * cand);
    } else {
      // Fused matmul+add+bias+tanh; bit-identical to the composed ops.
      new_h = tensor::kernels::matmul_bias_tanh(self_h, agg.w_self,
                                                aggregated, agg.bias);
    }
    all_nodes.insert(all_nodes.end(), grp.nodes.begin(), grp.nodes.end());
    all_new.push_back(new_h);
  }
  if (all_nodes.empty()) return h;
  const Tensor rows =
      all_new.size() == 1 ? all_new[0] : tensor::concat_rows(all_new);
  // In-place scatter: reuses h's buffer instead of cloning N×H floats per
  // step. h is dead after this call (apply_step owns its copy), which is
  // exactly the scatter_rows_ caller contract.
  return tensor::scatter_rows_(h, all_nodes, rows);
}

Tensor TwoPhaseGnn::initial_state(const Tensor& features) const {
  MOSS_CHECK(features.defined(), "graph has no features");
  MOSS_CHECK(features.cols() == cfg_.feature_dim,
             "graph feature width != GnnConfig.feature_dim");
  return tensor::kernels::matmul_bias_tanh(features, input_proj_.weight(),
                                           Tensor{}, input_proj_.bias());
}

Tensor TwoPhaseGnn::step(const UpdateStep& step, Tensor h) const {
  return apply_step(step, std::move(h));
}

Tensor TwoPhaseGnn::run(const Graph& g) const {
  Tensor h = initial_state(g.features);
  for (int round = 0; round < cfg_.rounds; ++round) {
    for (const UpdateStep& step : g.forward_steps) {
      h = apply_step(step, h);
    }
    for (const UpdateStep& step : g.turnaround_steps) {
      h = apply_step(step, h);
    }
  }
  return h;
}

Tensor TwoPhaseGnn::readout(const Graph& g, const Tensor& node_h) const {
  return tensor::mean_rows(tensor::gather_rows(node_h, g.readout_nodes));
}

}  // namespace moss::gnn
