#include "gnn/graph.hpp"

#include <map>

namespace moss::gnn {

UpdateStep GraphBuilder::make_step(const std::vector<int>& nodes) const {
  std::map<int, UpdateGroup> by_cluster;
  for (const int v : nodes) {
    MOSS_CHECK(v >= 0 && static_cast<std::size_t>(v) < g_.num_nodes,
               "scheduled node out of range");
    const auto& fi = fanins_[static_cast<std::size_t>(v)];
    MOSS_CHECK(!fi.empty(), "scheduled node has no fanins");
    UpdateGroup& grp = by_cluster[cluster_[static_cast<std::size_t>(v)]];
    grp.cluster = cluster_[static_cast<std::size_t>(v)];
    const int local = static_cast<int>(grp.nodes.size());
    grp.nodes.push_back(v);
    for (const auto& [src, pos] : fi) {
      grp.edge_src.push_back(src);
      grp.edge_dst.push_back(v);
      grp.edge_dst_local.push_back(local);
      grp.edge_pos.push_back(pos);
    }
  }
  UpdateStep step;
  step.groups.reserve(by_cluster.size());
  for (auto& [c, grp] : by_cluster) step.groups.push_back(std::move(grp));
  return step;
}

}  // namespace moss::gnn
