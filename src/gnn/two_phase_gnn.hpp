#pragma once

#include <string>
#include <vector>

#include "gnn/graph.hpp"
#include "tensor/nn.hpp"

namespace moss::gnn {

struct GnnConfig {
  std::size_t feature_dim = 0;   ///< F (input features)
  std::size_t hidden = 32;       ///< d (node embedding width)
  std::size_t num_aggregators = 1;
  int rounds = 3;                ///< two-phase iterations (paper uses ~10)
  int max_pin_pos = 6;           ///< positional-encoding table size
  bool attention = true;         ///< false = mean aggregation (ablation)
  /// GRU-style node update (as in the DeepSeq/DeepGate series) instead of
  /// the default tanh(W_self·h + agg) update:
  ///   z = σ(W_z·[m;h]), r = σ(W_r·[m;h]), h' = (1−z)⊙h + z⊙tanh(W_h·[m;r⊙h])
  bool gru_update = false;
};

/// The MOSS GNN: clustering-selected attention aggregators + two-phase
/// asynchronous temporal propagation (Fig. 4/5).
///
/// One round = forward phase (combinational levels in order, each level
/// seeing the already-updated previous levels — "asynchronous") followed by
/// turnaround phase (DFF updates from their D/E/R drivers, feeding state
/// back). Each aggregator cluster has its own message/self weights and
/// attention vectors; edges carry trainable positional encodings (pin
/// order), capturing per-pin asymmetry of standard cells.
class TwoPhaseGnn {
 public:
  TwoPhaseGnn(const GnnConfig& cfg, Rng& rng, tensor::ParameterSet& params,
              const std::string& name = "gnn");

  const GnnConfig& config() const { return cfg_; }

  /// Final node embeddings (N×hidden) after `cfg.rounds` two-phase rounds.
  tensor::Tensor run(const Graph& g) const;

  /// h0 = tanh(features·W_in + b_in): the pre-propagation state run()
  /// starts from. Exposed so plan-driven execution (moss::plan) can replay
  /// the schedule outside run() while staying bit-identical.
  tensor::Tensor initial_state(const tensor::Tensor& features) const;

  /// Apply one scheduled update step to `h` (the body of run()'s inner
  /// loops). Node updates are row-independent, so a step filtered to a
  /// subset of its nodes (keeping each kept node's full edge set and edge
  /// order) produces bit-identical rows for the kept nodes — the contract
  /// the hash-consed cone path in moss::plan relies on.
  tensor::Tensor step(const UpdateStep& step, tensor::Tensor h) const;

  /// Mean-pooled graph embedding (1×hidden) over g.readout_nodes.
  tensor::Tensor readout(const Graph& g, const tensor::Tensor& node_h) const;

 private:
  tensor::Tensor apply_step(const UpdateStep& step, tensor::Tensor h) const;

  GnnConfig cfg_;
  tensor::Linear input_proj_;
  tensor::Tensor pos_table_;  ///< max_pin_pos × hidden
  struct Aggregator {
    tensor::Tensor w_msg;   // d×d
    tensor::Tensor w_self;  // d×d
    tensor::Tensor bias;    // 1×d
    tensor::Tensor attn_msg;   // d×1
    tensor::Tensor attn_self;  // d×1
    // GRU gates (only allocated when cfg.gru_update): each 2d×d.
    tensor::Tensor w_z;
    tensor::Tensor w_r;
    tensor::Tensor w_h;
  };
  std::vector<Aggregator> aggs_;
};

}  // namespace moss::gnn
