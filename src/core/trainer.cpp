#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>

namespace moss::core {

using tensor::Tensor;

PretrainReport pretrain(MossModel& model, std::vector<CircuitBatch>& data,
                        const PretrainConfig& cfg) {
  return pretrain_model(model, data, cfg);
}

AlignReport align(MossModel& model, std::vector<CircuitBatch>& data,
                  const AlignConfig& cfg, Rng& rng) {
  AlignReport rep;
  if (!model.config().alignment) return rep;
  MOSS_CHECK(data.size() >= 2, "align: need at least two circuits");
  tensor::Adam opt(model.params(), cfg.lr);
  const std::size_t bs = std::min(cfg.batch_size, data.size());

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double e_total = 0, e_rnc = 0, e_rnm = 0, e_rr = 0;
    std::size_t steps = 0;
    for (std::size_t start = 0; start + bs <= order.size(); start += bs) {
      model.params().zero_grad();

      // Forward every circuit of the minibatch. Local task losses stay in
      // the objective (the paper's L_total sums all task losses), so the
      // alignment phase cannot degrade the pre-trained task heads.
      std::vector<Tensor> n_rows, r_rows;
      Tensor rrndm_total = Tensor::scalar(0.0f);
      Tensor local_total = Tensor::scalar(0.0f);
      int rr_terms = 0;
      for (std::size_t k = 0; k < bs; ++k) {
        CircuitBatch& batch = data[order[start + k]];
        const Tensor h = model.node_embeddings(batch);
        n_rows.push_back(model.netlist_embedding(batch, h));
        r_rows.push_back(model.rtl_embedding(batch.module_text));
        if (!batch.flop_rows.empty()) {
          const Tensor proj = model.dff_projections(batch, h);
          const Tensor target =
              tensor::l2_normalize_rows(batch.reg_prompt_emb);
          rrndm_total =
              tensor::add(rrndm_total, tensor::smooth_l1_loss(proj, target));
          ++rr_terms;
        }
        const LocalPredictions pred = model.predict_local(batch, h);
        Tensor local = tensor::add(
            tensor::smooth_l1_loss(
                pred.one_prob,
                Tensor::from(batch.one_prob, batch.one_prob.size(), 1)),
            detail::toggle_loss(pred.toggle, batch.toggle));
        if (pred.arrival.defined()) {
          local = tensor::add(
              local, tensor::smooth_l1_loss(
                         pred.arrival,
                         Tensor::from(batch.arrival_norm,
                                      batch.arrival_norm.size(), 1)));
        }
        local_total = tensor::add(local_total, local);
      }
      local_total = tensor::scale(local_total, 1.0f / static_cast<float>(bs));
      const Tensor n_e = tensor::concat_rows(n_rows);  // bs × d
      const Tensor r_e = tensor::concat_rows(r_rows);  // bs × d

      // RNC: symmetric InfoNCE with learnable temperature (Fig. 6).
      const Tensor logits = tensor::scale_by(
          tensor::matmul(r_e, tensor::transpose(n_e)),
          tensor::exp_t(model.temperature()));
      std::vector<int> labels(bs);
      for (std::size_t i = 0; i < bs; ++i) labels[i] = static_cast<int>(i);
      const Tensor rnc = tensor::scale(
          tensor::add(tensor::cross_entropy_rows(logits, labels),
                      tensor::cross_entropy_rows(tensor::transpose(logits),
                                                 labels)),
          0.5f);

      // RNM: matching MLP over all pairs vs the identity (smooth-L1, per
      // the paper's pseudocode).
      const Tensor rnm_logit = model.rnm_logits(r_e, n_e);
      std::vector<float> eye(bs * bs, 0.0f);
      for (std::size_t i = 0; i < bs; ++i) eye[i * bs + i] = 1.0f;
      const Tensor rnm = tensor::smooth_l1_loss(
          tensor::sigmoid(rnm_logit), Tensor::from(eye, bs * bs, 1));

      const Tensor rrndm =
          rr_terms > 0
              ? tensor::scale(rrndm_total, 1.0f / static_cast<float>(rr_terms))
              : rrndm_total;

      Tensor loss = tensor::add(tensor::add(tensor::add(rnc, rnm), rrndm),
                                local_total);
      loss.backward();
      opt.step();

      e_total += loss.item();
      e_rnc += rnc.item();
      e_rnm += rnm.item();
      e_rr += rrndm.item();
      ++steps;
    }
    const double n = std::max<std::size_t>(steps, 1);
    rep.total.push_back(e_total / n);
    rep.rnc.push_back(e_rnc / n);
    rep.rnm.push_back(e_rnm / n);
    rep.rrndm.push_back(e_rr / n);
  }
  return rep;
}

}  // namespace moss::core
