#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core_util/thread_pool.hpp"

namespace moss::core {

using tensor::Tensor;

PretrainReport pretrain(MossModel& model, std::vector<CircuitBatch>& data,
                        const PretrainConfig& cfg) {
  return pretrain_model(model, data, cfg);
}

namespace {

/// Partial result of one alignment minibatch: collected leaf gradients plus
/// the scalar loss terms.
struct SpanGrads {
  tensor::GradSandbox::Buffers grads;
  double total = 0, rnc = 0, rnm = 0, rrndm = 0;
};

/// Split [0, n) into contiguous minibatch spans of `bs`. The tail is kept:
/// as its own span when >= 2 circuits remain (RNC needs at least two rows),
/// folded into the previous span for a lone leftover.
std::vector<std::pair<std::size_t, std::size_t>> batch_spans(std::size_t n,
                                                             std::size_t bs) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t s = 0; s < n; s += bs) {
    spans.emplace_back(s, std::min(s + bs, n));
  }
  if (spans.size() > 1 && spans.back().second - spans.back().first < 2) {
    spans[spans.size() - 2].second = spans.back().second;
    spans.pop_back();
  }
  return spans;
}

}  // namespace

AlignReport align(MossModel& model, std::vector<CircuitBatch>& data,
                  const AlignConfig& cfg, Rng& rng) {
  AlignReport rep;
  if (!model.config().alignment) return rep;
  MOSS_CHECK(data.size() >= 2, "align: need at least two circuits");
  MOSS_CHECK(cfg.grad_accum >= 1, "align: grad_accum must be >= 1");
  tensor::Adam opt(model.params(), cfg.lr);
  const std::size_t bs = std::min(cfg.batch_size, data.size());

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto spans = batch_spans(order.size(), bs);
  ThreadPool pool(cfg.threads == 0 ? 0 : cfg.threads);

  // One alignment minibatch (circuits order[span.first, span.second)) run
  // forward + backward with gradients collected in a worker-local sandbox.
  const auto run_span = [&](std::pair<std::size_t, std::size_t> span) {
    const std::size_t bs_k = span.second - span.first;
    tensor::GradSandbox sandbox;

    // Forward every circuit of the minibatch. Local task losses stay in
    // the objective (the paper's L_total sums all task losses), so the
    // alignment phase cannot degrade the pre-trained task heads.
    std::vector<Tensor> n_rows, r_rows;
    Tensor rrndm_total = Tensor::scalar(0.0f);
    Tensor local_total = Tensor::scalar(0.0f);
    int rr_terms = 0;
    for (std::size_t k = 0; k < bs_k; ++k) {
      CircuitBatch& batch = data[order[span.first + k]];
      const Tensor h = model.node_embeddings(batch);
      n_rows.push_back(model.netlist_embedding(batch, h));
      r_rows.push_back(model.rtl_embedding(batch.module_text));
      if (!batch.flop_rows.empty()) {
        const Tensor proj = model.dff_projections(batch, h);
        const Tensor target = tensor::l2_normalize_rows(batch.reg_prompt_emb);
        rrndm_total =
            tensor::add(rrndm_total, tensor::smooth_l1_loss(proj, target));
        ++rr_terms;
      }
      const LocalPredictions pred = model.predict_local(batch, h);
      Tensor local = tensor::add(
          tensor::smooth_l1_loss(
              pred.one_prob,
              Tensor::from(batch.one_prob, batch.one_prob.size(), 1)),
          detail::toggle_loss(pred.toggle, batch.toggle));
      if (pred.arrival.defined()) {
        local = tensor::add(
            local, tensor::smooth_l1_loss(
                       pred.arrival,
                       Tensor::from(batch.arrival_norm,
                                    batch.arrival_norm.size(), 1)));
      }
      local_total = tensor::add(local_total, local);
    }
    local_total = tensor::scale(local_total, 1.0f / static_cast<float>(bs_k));
    const Tensor n_e = tensor::concat_rows(n_rows);  // bs_k × d
    const Tensor r_e = tensor::concat_rows(r_rows);  // bs_k × d

    // RNC: symmetric InfoNCE with learnable temperature (Fig. 6).
    const Tensor logits = tensor::scale_by(
        tensor::matmul(r_e, tensor::transpose(n_e)),
        tensor::exp_t(model.temperature()));
    std::vector<int> labels(bs_k);
    for (std::size_t i = 0; i < bs_k; ++i) labels[i] = static_cast<int>(i);
    const Tensor rnc = tensor::scale(
        tensor::add(tensor::cross_entropy_rows(logits, labels),
                    tensor::cross_entropy_rows(tensor::transpose(logits),
                                               labels)),
        0.5f);

    // RNM: matching MLP over all pairs vs the identity (smooth-L1, per
    // the paper's pseudocode).
    const Tensor rnm_logit = model.rnm_logits(r_e, n_e);
    std::vector<float> eye(bs_k * bs_k, 0.0f);
    for (std::size_t i = 0; i < bs_k; ++i) eye[i * bs_k + i] = 1.0f;
    const Tensor rnm = tensor::smooth_l1_loss(
        tensor::sigmoid(rnm_logit), Tensor::from(eye, bs_k * bs_k, 1));

    const Tensor rrndm =
        rr_terms > 0
            ? tensor::scale(rrndm_total, 1.0f / static_cast<float>(rr_terms))
            : rrndm_total;

    Tensor loss = tensor::add(tensor::add(tensor::add(rnc, rnm), rrndm),
                              local_total);
    loss.backward();

    SpanGrads out;
    out.grads = sandbox.take();
    out.total = loss.item();
    out.rnc = rnc.item();
    out.rnm = rnm.item();
    out.rrndm = rrndm.item();
    return out;
  };

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double e_total = 0, e_rnc = 0, e_rnm = 0, e_rr = 0;
    std::size_t steps = 0, seen = 0;
    for (std::size_t g0 = 0; g0 < spans.size(); g0 += cfg.grad_accum) {
      const std::size_t g1 = std::min(g0 + cfg.grad_accum, spans.size());
      std::vector<SpanGrads> parts = pool.parallel_map(
          g1 - g0, [&](std::size_t k) { return run_span(spans[g0 + k]); });

      // Reduce worker-local gradients in span-index order (fixed float
      // accumulation order regardless of thread count) and step.
      model.params().zero_grad();
      const float scale = 1.0f / static_cast<float>(parts.size());
      for (const SpanGrads& part : parts) {
        tensor::accumulate_grads(model.params().tensors(), part.grads, scale);
      }
      opt.step();

      for (std::size_t k = g0; k < g1; ++k) {
        seen += spans[k].second - spans[k].first;
      }
      for (const SpanGrads& part : parts) {
        e_total += part.total;
        e_rnc += part.rnc;
        e_rnm += part.rnm;
        e_rr += part.rrndm;
        ++steps;
      }
    }
    const double n = std::max<std::size_t>(steps, 1);
    rep.total.push_back(e_total / n);
    rep.rnc.push_back(e_rnc / n);
    rep.rnm.push_back(e_rnm / n);
    rep.rrndm.push_back(e_rr / n);
    rep.circuits_seen.push_back(seen);
  }
  return rep;
}

}  // namespace moss::core
