#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <utility>

#include "core_util/fault.hpp"
#include "core_util/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/serialize.hpp"

namespace moss::core {

using tensor::Tensor;

namespace detail {

bool all_finite(const std::vector<float>& v) {
  for (const float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool grads_finite(const tensor::ParameterSet& params) {
  for (const Tensor& p : params.tensors()) {
    if (!all_finite(p.grad())) return false;
  }
  return true;
}

void fail_bad_steps(const char* phase, int epoch, std::size_t step,
                    std::uint64_t bad_steps, double loss) {
  throw ContextError(
      std::string(phase) +
          ": aborting after too many non-finite optimizer steps",
      {{"phase", phase},
       {"epoch", std::to_string(epoch)},
       {"step", std::to_string(step)},
       {"bad_steps", std::to_string(bad_steps)},
       {"last_loss", std::to_string(loss)}});
}

namespace {

constexpr char kPretrainSection[] = "trainer.pretrain";
constexpr char kAlignSection[] = "trainer.align";

bool file_exists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).is_open();
}

/// Common tail of both snapshot writers: last checkpoint to `path`
/// (atomic), best checkpoint rotated to `<path>.best`.
void write_rotating(const std::string& path,
                    const tensor::CheckpointFile& ckpt, bool best) {
  tensor::write_checkpoint_file(path, ckpt);
  if (best) tensor::write_checkpoint_file(path + ".best", ckpt);
}

}  // namespace

void save_pretrain_checkpoint(const std::string& path,
                              const tensor::ParameterSet& params,
                              const PretrainState& st, bool best) {
  tensor::CheckpointFile ckpt;
  tensor::params_to_checkpoint(ckpt, params);
  tensor::adam_to_checkpoint(ckpt, st.adam);
  tensor::ByteWriter w;
  w.u64(st.next_epoch);
  w.u64(st.bad_steps);
  w.u8(st.has_best ? 1 : 0);
  w.f64(st.best_loss);
  w.f64s(st.ema);
  w.f64s(st.report.total);
  w.f64s(st.report.prob);
  w.f64s(st.report.toggle);
  w.f64s(st.report.arrival);
  ckpt.set(kPretrainSection, w.take());
  write_rotating(path, ckpt, best);
}

bool load_pretrain_checkpoint(const std::string& path,
                              tensor::ParameterSet& params,
                              PretrainState& st) {
  if (!file_exists(path)) return false;
  const tensor::CheckpointFile ckpt = tensor::read_checkpoint_file(path);
  ErrorContext ctx;
  ctx.add("file", path);
  ErrorContext sctx = ctx;
  sctx.add("section", kPretrainSection);
  tensor::ByteReader r(ckpt.get(kPretrainSection, ctx), sctx);
  PretrainState loaded;
  loaded.next_epoch = r.u64();
  loaded.bad_steps = r.u64();
  loaded.has_best = r.u8() != 0;
  loaded.best_loss = r.f64();
  loaded.ema = r.f64s();
  loaded.report.total = r.f64s();
  loaded.report.prob = r.f64s();
  loaded.report.toggle = r.f64s();
  loaded.report.arrival = r.f64s();
  r.expect_end();
  loaded.adam = tensor::adam_from_checkpoint(ckpt, ctx);
  // Params last: only overwrite the model once the rest of the state has
  // parsed cleanly.
  tensor::params_from_checkpoint(ckpt, params, ctx);
  st = std::move(loaded);
  return true;
}

void save_align_checkpoint(const std::string& path,
                           const tensor::ParameterSet& params,
                           const AlignState& st, bool best) {
  tensor::CheckpointFile ckpt;
  tensor::params_to_checkpoint(ckpt, params);
  tensor::adam_to_checkpoint(ckpt, st.adam);
  tensor::ByteWriter w;
  w.u64(st.next_epoch);
  w.u64(st.bad_steps);
  w.u8(st.has_best ? 1 : 0);
  w.f64(st.best_loss);
  w.u64s(st.order);
  w.f64s(st.report.total);
  w.f64s(st.report.rnc);
  w.f64s(st.report.rnm);
  w.f64s(st.report.rrndm);
  w.f64s(st.report.reject);
  std::vector<std::uint64_t> seen(st.report.circuits_seen.begin(),
                                  st.report.circuits_seen.end());
  w.u64s(seen);
  ckpt.set(kAlignSection, w.take());
  tensor::ByteWriter rw;
  for (int i = 0; i < 4; ++i) rw.u64(st.rng.s[i]);
  rw.u8(st.rng.has_cached ? 1 : 0);
  rw.f64(st.rng.cached);
  ckpt.set("rng", rw.take());
  write_rotating(path, ckpt, best);
}

bool load_align_checkpoint(const std::string& path,
                           tensor::ParameterSet& params, AlignState& st) {
  if (!file_exists(path)) return false;
  const tensor::CheckpointFile ckpt = tensor::read_checkpoint_file(path);
  ErrorContext ctx;
  ctx.add("file", path);
  ErrorContext sctx = ctx;
  sctx.add("section", kAlignSection);
  tensor::ByteReader r(ckpt.get(kAlignSection, ctx), sctx);
  AlignState loaded;
  loaded.next_epoch = r.u64();
  loaded.bad_steps = r.u64();
  loaded.has_best = r.u8() != 0;
  loaded.best_loss = r.f64();
  loaded.order = r.u64s();
  loaded.report.total = r.f64s();
  loaded.report.rnc = r.f64s();
  loaded.report.rnm = r.f64s();
  loaded.report.rrndm = r.f64s();
  loaded.report.reject = r.f64s();
  const std::vector<std::uint64_t> seen = r.u64s();
  loaded.report.circuits_seen.assign(seen.begin(), seen.end());
  r.expect_end();
  ErrorContext rctx = ctx;
  rctx.add("section", "rng");
  tensor::ByteReader rr(ckpt.get("rng", ctx), rctx);
  for (int i = 0; i < 4; ++i) loaded.rng.s[i] = rr.u64();
  loaded.rng.has_cached = rr.u8() != 0;
  loaded.rng.cached = rr.f64();
  rr.expect_end();
  loaded.adam = tensor::adam_from_checkpoint(ckpt, ctx);
  tensor::params_from_checkpoint(ckpt, params, ctx);
  st = std::move(loaded);
  return true;
}

}  // namespace detail

PretrainReport pretrain(MossModel& model, std::vector<CircuitBatch>& data,
                        const PretrainConfig& cfg) {
  return pretrain_model(model, data, cfg);
}

namespace {

/// Partial result of one alignment minibatch: collected leaf gradients plus
/// the scalar loss terms.
struct SpanGrads {
  tensor::GradSandbox::Buffers grads;
  double total = 0, rnc = 0, rnm = 0, rrndm = 0, reject = 0;
};

/// Deterministic per-(epoch, circuit) noise stream: participation and view
/// choice are pure functions of the noise seed, never a shared RNG draw, so
/// the schedule is identical at any thread count and grad_accum grouping.
Rng noise_stream(const AlignNoise& noise, int epoch, std::size_t ci) {
  return Rng(noise.seed ^
             (0x9e3779b97f4a7c15ull *
              (static_cast<std::uint64_t>(epoch) + 1)) ^
             (0xbf58476d1ce4e5b9ull * (static_cast<std::uint64_t>(ci) + 1)));
}

/// Split [0, n) into contiguous minibatch spans of `bs`. The tail is kept:
/// as its own span when >= 2 circuits remain (RNC needs at least two rows),
/// folded into the previous span for a lone leftover.
std::vector<std::pair<std::size_t, std::size_t>> batch_spans(std::size_t n,
                                                             std::size_t bs) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t s = 0; s < n; s += bs) {
    spans.emplace_back(s, std::min(s + bs, n));
  }
  if (spans.size() > 1 && spans.back().second - spans.back().first < 2) {
    spans[spans.size() - 2].second = spans.back().second;
    spans.pop_back();
  }
  return spans;
}

}  // namespace

AlignReport align(MossModel& model, std::vector<CircuitBatch>& data,
                  const AlignConfig& cfg, Rng& rng,
                  const std::vector<HardNegative>* negatives) {
  AlignReport rep;
  if (!model.config().alignment) return rep;
  MOSS_CHECK(data.size() >= 2, "align: need at least two circuits");
  MOSS_CHECK(cfg.grad_accum >= 1, "align: grad_accum must be >= 1");
  MOSS_CHECK(!(cfg.resume || cfg.checkpoint_every > 0) ||
                 !cfg.checkpoint_path.empty(),
             "align: checkpoint_path required for checkpointing/resume");
  tensor::Adam opt(model.params(), cfg.lr);
  const std::size_t bs = std::min(cfg.batch_size, data.size());

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  detail::AlignState st;
  int start_epoch = 0;
  if (cfg.resume &&
      detail::load_align_checkpoint(cfg.checkpoint_path, model.params(),
                                    st)) {
    ErrorContext ctx;
    ctx.add("file", cfg.checkpoint_path);
    ctx.check(st.order.size() == data.size(),
              "align checkpoint was written for " +
                  std::to_string(st.order.size()) + " circuits, got " +
                  std::to_string(data.size()));
    opt.restore(st.adam);
    rng.load_state(st.rng);
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::size_t>(st.order[i]);
    }
    rep = st.report;
    start_epoch = static_cast<int>(st.next_epoch);
  }
  std::uint64_t bad_steps = st.bad_steps;

  const auto spans = batch_spans(order.size(), bs);
  ThreadPool pool(cfg.threads == 0 ? 0 : cfg.threads);
  tensor::kernels::ScratchArena arena;

  // One alignment minibatch (circuits order[span.first, span.second)) run
  // forward + backward with gradients collected in a worker-local sandbox.
  const auto run_span = [&](std::pair<std::size_t, std::size_t> span,
                            int epoch) {
    const std::size_t bs_k = span.second - span.first;
    tensor::GradSandbox sandbox;
    // Recycle forward/backward intermediates across minibatches.
    const tensor::kernels::ScratchArena::Scope scratch_scope(arena);

    // Forward every circuit of the minibatch. Local task losses stay in
    // the objective (the paper's L_total sums all task losses), so the
    // alignment phase cannot degrade the pre-trained task heads.
    std::vector<Tensor> n_rows, r_rows;
    Tensor rrndm_total = Tensor::scalar(0.0f);
    Tensor local_total = Tensor::scalar(0.0f);
    int rr_terms = 0;
    for (std::size_t k = 0; k < bs_k; ++k) {
      CircuitBatch& batch = data[order[span.first + k]];
      const Tensor h = model.node_embeddings(batch);
      n_rows.push_back(model.netlist_embedding(batch, h));
      r_rows.push_back(model.rtl_embedding(batch.module_text));
      if (!batch.flop_rows.empty()) {
        const Tensor proj = model.dff_projections(batch, h);
        const Tensor target = tensor::l2_normalize_rows(batch.reg_prompt_emb);
        rrndm_total =
            tensor::add(rrndm_total, tensor::smooth_l1_loss(proj, target));
        ++rr_terms;
      }
      const LocalPredictions pred = model.predict_local(batch, h);
      Tensor local = tensor::add(
          tensor::smooth_l1_loss(
              pred.one_prob,
              Tensor::from(batch.one_prob, batch.one_prob.size(), 1)),
          detail::toggle_loss(pred.toggle, batch.toggle));
      if (pred.arrival.defined()) {
        local = tensor::add(
            local, tensor::smooth_l1_loss(
                       pred.arrival,
                       Tensor::from(batch.arrival_norm,
                                    batch.arrival_norm.size(), 1)));
      }
      local_total = tensor::add(local_total, local);
    }
    local_total = tensor::scale(local_total, 1.0f / static_cast<float>(bs_k));
    const Tensor n_e = tensor::concat_rows(n_rows);  // bs_k × d
    const Tensor r_e = tensor::concat_rows(r_rows);  // bs_k × d

    // Noise-tolerant extras. Corrupted code views of this minibatch's
    // circuits (schedule hashed per (epoch, circuit)) and oracle-proven
    // mutant netlists owned by them. Both are additive and guarded: with
    // noise off and no negatives, the clean path below is op-for-op
    // identical to a build without this feature.
    std::vector<Tensor> c_rows, m_rows;
    if (cfg.noise.enabled) {
      for (std::size_t k = 0; k < bs_k; ++k) {
        const std::size_t ci = order[span.first + k];
        const CircuitBatch& batch = data[ci];
        if (batch.corrupt_texts.empty()) continue;
        Rng draw = noise_stream(cfg.noise, epoch, ci);
        if (!draw.bernoulli(cfg.noise.corrupt_fraction)) continue;
        const std::size_t vi = draw.index(batch.corrupt_texts.size());
        c_rows.push_back(model.rtl_embedding(batch.corrupt_texts[vi]));
      }
    }
    if (negatives != nullptr) {
      for (const HardNegative& neg : *negatives) {
        bool owned = false;
        for (std::size_t k = 0; k < bs_k && !owned; ++k) {
          owned = order[span.first + k] == neg.owner;
        }
        if (!owned) continue;
        const Tensor hm = model.node_embeddings(neg.batch);
        m_rows.push_back(model.netlist_embedding(neg.batch, hm));
      }
    }

    // RNC: symmetric InfoNCE with learnable temperature (Fig. 6).
    const Tensor logits = tensor::scale_by(
        tensor::matmul(r_e, tensor::transpose(n_e)),
        tensor::exp_t(model.temperature()));
    std::vector<int> labels(bs_k);
    for (std::size_t i = 0; i < bs_k; ++i) labels[i] = static_cast<int>(i);
    const Tensor rnc = tensor::scale(
        tensor::add(tensor::cross_entropy_rows(logits, labels),
                    tensor::cross_entropy_rows(tensor::transpose(logits),
                                               labels)),
        0.5f);

    // RNM: matching MLP over all pairs vs the identity (smooth-L1, per
    // the paper's pseudocode).
    const Tensor rnm_logit = model.rnm_logits(r_e, n_e);
    std::vector<float> eye(bs_k * bs_k, 0.0f);
    for (std::size_t i = 0; i < bs_k; ++i) eye[i * bs_k + i] = 1.0f;
    const Tensor rnm = tensor::smooth_l1_loss(
        tensor::sigmoid(rnm_logit), Tensor::from(eye, bs_k * bs_k, 1));

    const Tensor rrndm =
        rr_terms > 0
            ? tensor::scale(rrndm_total, 1.0f / static_cast<float>(rr_terms))
            : rrndm_total;

    Tensor loss = tensor::add(tensor::add(tensor::add(rnc, rnm), rrndm),
                              local_total);

    // Rejection terms: extended-column InfoNCE — the clean pair must beat
    // every mutant netlist (RTL→netlist direction) and every corrupted code
    // view (netlist→RTL direction) — plus RNM targets of zero on each
    // corrupted/mutant pair, which is what trains pair_score (and hence
    // FEP retrieval) to score them below the clean match.
    Tensor reject;
    if (!m_rows.empty() || !c_rows.empty()) {
      Tensor rej = Tensor::scalar(0.0f);
      if (!m_rows.empty()) {
        const Tensor m_e = tensor::concat_rows(m_rows);
        const Tensor cols = tensor::concat_rows({n_e, m_e});
        const Tensor lg =
            tensor::scale_by(tensor::matmul(r_e, tensor::transpose(cols)),
                             tensor::exp_t(model.temperature()));
        rej = tensor::add(rej, tensor::cross_entropy_rows(lg, labels));
        const Tensor rnm_m = model.rnm_logits(r_e, m_e);
        rej = tensor::add(
            rej, tensor::smooth_l1_loss(
                     tensor::sigmoid(rnm_m),
                     Tensor::zeros(bs_k * m_rows.size(), 1)));
      }
      if (!c_rows.empty()) {
        const Tensor c_e = tensor::concat_rows(c_rows);
        const Tensor cols = tensor::concat_rows({r_e, c_e});
        const Tensor lg =
            tensor::scale_by(tensor::matmul(n_e, tensor::transpose(cols)),
                             tensor::exp_t(model.temperature()));
        rej = tensor::add(rej, tensor::cross_entropy_rows(lg, labels));
        const Tensor rnm_c = model.rnm_logits(c_e, n_e);
        rej = tensor::add(
            rej, tensor::smooth_l1_loss(
                     tensor::sigmoid(rnm_c),
                     Tensor::zeros(c_rows.size() * bs_k, 1)));
      }
      reject = tensor::scale(rej, cfg.noise.weight);
      loss = tensor::add(loss, reject);
    }
    loss.backward();

    SpanGrads out;
    out.grads = sandbox.take();
    out.total = loss.item();
    out.rnc = rnc.item();
    out.rnm = rnm.item();
    out.rrndm = rrndm.item();
    out.reject = reject.defined() ? reject.item() : 0.0;
    return out;
  };

  for (int epoch = start_epoch; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double e_total = 0, e_rnc = 0, e_rnm = 0, e_rr = 0, e_rej = 0;
    std::size_t steps = 0, seen = 0;
    for (std::size_t g0 = 0; g0 < spans.size(); g0 += cfg.grad_accum) {
      MOSS_FAULT_POINT("trainer.align.step");
      const std::size_t g1 = std::min(g0 + cfg.grad_accum, spans.size());
      std::vector<SpanGrads> parts =
          pool.parallel_map(g1 - g0, [&](std::size_t k) {
            return run_span(spans[g0 + k], epoch);
          });

      // Reduce worker-local gradients in span-index order (fixed float
      // accumulation order regardless of thread count) and step.
      model.params().zero_grad();
      const float scale = 1.0f / static_cast<float>(parts.size());
      double group_loss = 0;
      for (const SpanGrads& part : parts) {
        tensor::accumulate_grads(model.params().tensors(), part.grads, scale);
        group_loss += part.total;
      }

      // Hardening: skip the step and roll back on non-finite loss or
      // gradients (see PretrainConfig::max_bad_steps).
      if (!std::isfinite(group_loss) ||
          !detail::grads_finite(model.params())) {
        model.params().zero_grad();
        ++bad_steps;
        if (bad_steps > static_cast<std::uint64_t>(
                            std::max(cfg.max_bad_steps, 0))) {
          detail::fail_bad_steps("align", epoch, g0 / cfg.grad_accum,
                                 bad_steps, group_loss);
        }
        continue;
      }
      opt.step();

      for (std::size_t k = g0; k < g1; ++k) {
        seen += spans[k].second - spans[k].first;
      }
      for (const SpanGrads& part : parts) {
        e_total += part.total;
        e_rnc += part.rnc;
        e_rnm += part.rnm;
        e_rr += part.rrndm;
        e_rej += part.reject;
        ++steps;
      }
    }
    const double n = std::max<std::size_t>(steps, 1);
    rep.total.push_back(e_total / n);
    rep.rnc.push_back(e_rnc / n);
    rep.rnm.push_back(e_rnm / n);
    rep.rrndm.push_back(e_rr / n);
    rep.reject.push_back(e_rej / n);
    rep.circuits_seen.push_back(seen);

    if (cfg.checkpoint_every > 0 &&
        ((epoch + 1) % cfg.checkpoint_every == 0 ||
         epoch + 1 == cfg.epochs)) {
      st.next_epoch = static_cast<std::uint64_t>(epoch) + 1;
      st.bad_steps = bad_steps;
      st.order.assign(order.begin(), order.end());
      st.rng = rng.save_state();
      st.report = rep;
      st.adam = opt.snapshot();
      const double loss = rep.total.back();
      const bool is_best = !st.has_best || loss < st.best_loss;
      if (is_best) {
        st.best_loss = loss;
        st.has_best = true;
      }
      detail::save_align_checkpoint(cfg.checkpoint_path, model.params(), st,
                                    is_best);
    }
  }
  rep.bad_steps = static_cast<std::size_t>(bad_steps);
  return rep;
}

}  // namespace moss::core
