#include "core/features.hpp"

#include <algorithm>

#include "clustering/clustering.hpp"
#include "core_util/check.hpp"
#include "core_util/hash.hpp"
#include "data/corrupt.hpp"

namespace moss::core {

using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;
using tensor::Tensor;

namespace {

constexpr std::size_t kStructuralDim = 8;

/// Structural features shared by every variant: pure topology only —
/// node class, degrees, capacitive load, combinational level and input
/// depth. Deliberately *no* per-cell-type data (area, drive, function):
/// in MOSS, all cell identity comes from the LLM embeddings, so the
/// w/o-FAA ablation must genuinely lose it.
void fill_structural(const Netlist& nl, NodeId id, float* out) {
  const netlist::Node& n = nl.node(id);
  const bool is_cell = n.kind == NodeKind::kCell;
  out[0] = n.kind == NodeKind::kPrimaryInput ? 1.0f : 0.0f;
  out[1] = is_cell && nl.library().type(n.type).is_flop() ? 1.0f : 0.0f;
  out[2] = is_cell && nl.library().type(n.type).is_tie() ? 1.0f : 0.0f;
  out[3] = static_cast<float>(n.fanin.size()) / 4.0f;
  out[4] = static_cast<float>(n.fanout.size()) / 8.0f;
  out[5] = static_cast<float>(nl.output_load(id)) / 50.0f;
  out[6] = static_cast<float>(n.level) / 20.0f;
  std::int32_t in_depth = 0;
  for (const netlist::NodeId f : n.fanin) {
    in_depth = std::max(in_depth, nl.node(f).level + 1);
  }
  out[7] = static_cast<float>(in_depth) / 20.0f;
}

std::string register_base(const std::string& register_bit) {
  const auto pos = register_bit.find('[');
  return pos == std::string::npos ? register_bit : register_bit.substr(0, pos);
}

}  // namespace

std::size_t structural_feature_dim() { return kStructuralDim; }

std::size_t feature_dim(const cell::CellLibrary& lib,
                        const lm::TextEncoder& enc, const FeatureConfig& cfg) {
  const std::size_t base = cfg.structural_features ? kStructuralDim : 1;
  if (cfg.lm_features) {
    return base + 2 * enc.dim();  // cell text + register prompt
  }
  return base + (cfg.type_onehot ? lib.size() : 0);
}

std::vector<int> cluster_cell_types(const cell::CellLibrary& lib,
                                    const lm::TextEncoder& enc,
                                    std::size_t max_clusters) {
  clustering::Points pts;
  pts.reserve(lib.size());
  for (const cell::CellType& t : lib.types()) {
    const Tensor e = enc.encode(t.description);
    std::vector<float> p(e.data());
    // Structural coordinates (fan-in, sequential/tie class, drive) join the
    // functional embedding, mirroring the paper's hierarchical refinement.
    p.push_back(static_cast<float>(t.num_inputs));
    p.push_back(t.is_flop() ? 3.0f : 0.0f);
    p.push_back(t.is_tie() ? 3.0f : 0.0f);
    p.push_back(static_cast<float>(t.drive_res));
    pts.push_back(std::move(p));
  }
  return clustering::adaptive_clusters(pts, max_clusters);
}

std::size_t num_aggregators(const cell::CellLibrary& lib,
                            const lm::TextEncoder& enc,
                            const FeatureConfig& cfg) {
  if (!cfg.adaptive_agg) return 2;  // one for cells, one for ports
  const auto labels = cluster_cell_types(lib, enc, cfg.max_clusters);
  return clustering::num_clusters(labels) + 1;  // +1 for ports/PIs
}

CircuitBatch build_batch(const data::LabeledCircuit& lc,
                         const lm::TextEncoder& enc,
                         const FeatureConfig& cfg) {
  const Netlist& nl = lc.netlist;
  const cell::CellLibrary& lib = nl.library();
  const std::size_t N = nl.num_nodes();
  const std::size_t F = feature_dim(lib, enc, cfg);

  CircuitBatch batch;
  batch.name = nl.name();
  batch.num_cells = nl.num_cells();
  batch.module_text = lc.module_text;
  batch.power_uw = lc.power_uw;

  // --- cluster assignment -------------------------------------------------
  std::vector<int> type_cluster;
  std::size_t port_cluster;
  if (cfg.adaptive_agg) {
    type_cluster = cluster_cell_types(lib, enc, cfg.max_clusters);
    port_cluster = clustering::num_clusters(type_cluster);
  } else {
    type_cluster.assign(lib.size(), 0);
    port_cluster = 1;
  }

  // --- register prompt embeddings ------------------------------------------
  std::unordered_map<std::string, Tensor> prompt_emb;
  for (const rtl::RegisterPrompt& p : lc.reg_prompts) {
    prompt_emb.emplace(p.register_name, enc.encode(p.text));
  }

  // --- features -------------------------------------------------------------
  Tensor features = Tensor::zeros(N, F);
  const std::size_t base = cfg.structural_features ? kStructuralDim : 1;
  for (std::size_t i = 0; i < N; ++i) {
    const auto id = static_cast<NodeId>(i);
    float* row = features.data().data() + i * F;
    if (cfg.structural_features) {
      fill_structural(nl, id, row);
    } else {
      row[0] = 1.0f;  // bias only: featureless nodes
    }
    const netlist::Node& n = nl.node(id);
    if (n.kind != NodeKind::kCell) continue;
    const cell::CellType& t = lib.type(n.type);
    if (cfg.lm_features) {
      const Tensor cell_e = enc.encode(t.description);
      std::copy(cell_e.data().begin(), cell_e.data().end(), row + base);
      if (t.is_flop() && !n.rtl_register.empty()) {
        const auto it = prompt_emb.find(register_base(n.rtl_register));
        if (it != prompt_emb.end()) {
          // Overlay the register description embedding (anchor enrichment).
          std::copy(it->second.data().begin(), it->second.data().end(),
                    row + base + enc.dim());
        }
      }
    } else if (cfg.type_onehot) {
      row[base + static_cast<std::size_t>(n.type)] = 1.0f;
    }
  }

  // --- graph schedule --------------------------------------------------------
  gnn::GraphBuilder gb(N, port_cluster + 1);
  gb.set_features(std::move(features));
  std::vector<std::vector<int>> by_level;
  std::vector<int> readout;
  for (std::size_t i = 0; i < N; ++i) {
    const auto id = static_cast<NodeId>(i);
    const netlist::Node& n = nl.node(id);
    if (n.kind == NodeKind::kPrimaryOutput) continue;  // excluded from GNN
    readout.push_back(static_cast<int>(i));
    if (n.kind == NodeKind::kPrimaryInput) {
      gb.set_cluster(static_cast<int>(i), static_cast<int>(port_cluster));
      continue;
    }
    const cell::CellType& t = lib.type(n.type);
    gb.set_cluster(static_cast<int>(i),
                   t.is_tie() ? static_cast<int>(port_cluster)
                              : type_cluster[static_cast<std::size_t>(n.type)]);
    if (t.is_tie()) continue;
    std::vector<std::pair<int, int>> fanins;
    for (std::size_t p = 0; p < n.fanin.size(); ++p) {
      fanins.emplace_back(n.fanin[p], static_cast<int>(p));
    }
    gb.set_fanins(static_cast<int>(i), std::move(fanins));
    if (t.is_comb()) {
      const auto lvl = static_cast<std::size_t>(n.level);
      if (by_level.size() <= lvl) by_level.resize(lvl + 1);
      by_level[lvl].push_back(static_cast<int>(i));
    }
  }
  for (std::size_t l = 1; l < by_level.size(); ++l) {
    if (!by_level[l].empty()) gb.schedule_forward(by_level[l]);
  }
  std::vector<int> flop_nodes;
  for (const NodeId f : nl.flops()) flop_nodes.push_back(f);
  if (!flop_nodes.empty()) gb.schedule_turnaround(flop_nodes);
  gb.set_readout(std::move(readout));
  batch.graph = gb.build();

  // --- rows and labels -------------------------------------------------------
  for (std::size_t i = 0; i < N; ++i) {
    const auto id = static_cast<NodeId>(i);
    if (nl.node(id).kind != NodeKind::kCell) continue;
    batch.cell_rows.push_back(static_cast<int>(i));
    batch.toggle.push_back(static_cast<float>(lc.toggle[i]));
    batch.one_prob.push_back(static_cast<float>(lc.one_prob[i]));
    // Dense arrival supervision: STA's per-node arrival (flops carry their
    // D-pin data arrival, the paper's ATP label).
    batch.arrival_rows.push_back(static_cast<int>(i));
    batch.arrival_norm.push_back(
        static_cast<float>(lc.arrival[i] / kArrivalScale));
  }
  Tensor reg_emb = Tensor::zeros(nl.flops().size(), enc.dim());
  for (std::size_t fi = 0; fi < nl.flops().size(); ++fi) {
    const NodeId f = nl.flops()[fi];
    batch.flop_rows.push_back(f);
    batch.flop_arrival_norm.push_back(
        static_cast<float>(lc.flop_arrival[fi] / kArrivalScale));
    const auto it =
        prompt_emb.find(register_base(nl.node(f).rtl_register));
    if (it != prompt_emb.end()) {
      std::copy(it->second.data().begin(), it->second.data().end(),
                reg_emb.data().begin() +
                    static_cast<std::ptrdiff_t>(fi * enc.dim()));
    }
  }
  batch.reg_prompt_emb = std::move(reg_emb);
  batch.content_hash = batch_content_hash(batch);
  return batch;
}

std::size_t attach_corrupt_views(CircuitBatch& batch,
                                 const data::LabeledCircuit& lc,
                                 std::size_t count, std::uint64_t seed,
                                 int max_severity) {
  std::size_t added = 0;
  const int sev_cycle = std::max(max_severity, 1);
  for (std::size_t i = 0; i < count; ++i) {
    data::CorruptConfig cc;
    cc.seed = seed + i;
    cc.severity = 1 + static_cast<int>(i) % sev_cycle;
    const data::CorruptedRtl corrupted = data::corrupt_module(lc.module, cc);
    if (corrupted.applied.empty()) continue;  // no applicable sites
    batch.corrupt_texts.push_back(rtl::module_prompt(corrupted.module));
    ++added;
  }
  return added;
}

namespace {

void mix_steps(HashBuilder& h, const std::vector<gnn::UpdateStep>& steps) {
  h.mix(static_cast<std::uint64_t>(steps.size()));
  for (const gnn::UpdateStep& step : steps) {
    h.mix(static_cast<std::uint64_t>(step.groups.size()));
    for (const gnn::UpdateGroup& g : step.groups) {
      h.mix(static_cast<std::uint64_t>(g.cluster));
      h.mix(g.nodes);
      h.mix(g.edge_src);
      h.mix(g.edge_dst);
      h.mix(g.edge_dst_local);
      h.mix(g.edge_pos);
    }
  }
}

}  // namespace

std::uint64_t batch_content_hash(const CircuitBatch& batch) {
  HashBuilder h;
  h.mix(static_cast<std::uint64_t>(batch.graph.num_nodes));
  h.mix(static_cast<std::uint64_t>(batch.graph.num_clusters));
  if (batch.graph.features.defined()) {
    h.mix(static_cast<std::uint64_t>(batch.graph.features.cols()));
    h.mix(batch.graph.features.data());
  }
  mix_steps(h, batch.graph.forward_steps);
  mix_steps(h, batch.graph.turnaround_steps);
  h.mix(batch.graph.readout_nodes);
  return h.digest();
}

std::uint64_t content_hash(const CircuitBatch& batch) {
  return batch.content_hash != 0 ? batch.content_hash
                                 : batch_content_hash(batch);
}

}  // namespace moss::core
