#pragma once

#include <vector>

#include "core/model.hpp"

namespace moss::core {

/// Loss curves of the local pre-training phase (Fig. 7): total, probability,
/// toggle and arrival-time losses per epoch.
struct PretrainReport {
  std::vector<double> total;
  std::vector<double> prob;
  std::vector<double> toggle;
  std::vector<double> arrival;
};

struct PretrainConfig {
  int epochs = 20;
  float lr = 6e-4f;  ///< paper: Adam, 6e-4
  /// Worker threads for circuit-level data parallelism. Any value yields
  /// bit-identical results for a fixed grad_accum (per-batch gradients are
  /// kept in worker-local buffers and reduced in batch-index order).
  std::size_t threads = 1;
  /// Circuits whose gradients are averaged per optimizer step. 1 reproduces
  /// the classic per-circuit SGD loop exactly; values > 1 let the group's
  /// forward/backward passes run concurrently across `threads`.
  std::size_t grad_accum = 1;
};

/// Local pre-training (Fig. 7): per-circuit multi-task loss
///   L = λ_p·L_prob + λ_t·L_toggle + λ_a·L_arrival  (smooth-L1 each)
/// with dynamic λ_i ∝ 1/EMA(L_i) so no task dominates (Eq. 2).
PretrainReport pretrain(MossModel& model, std::vector<CircuitBatch>& data,
                        const PretrainConfig& cfg);

/// Generic version of the same loop, shared with the DeepSeq2-style
/// baseline: any model exposing node_embeddings(batch),
/// predict_local(batch, h) and params() can be pre-trained.
template <typename Model>
PretrainReport pretrain_model(Model& model, std::vector<CircuitBatch>& data,
                              const PretrainConfig& cfg);

/// Loss curves of the global multimodal alignment phase (Fig. 8).
struct AlignReport {
  std::vector<double> total;
  std::vector<double> rnc;
  std::vector<double> rnm;
  std::vector<double> rrndm;
  /// Circuits trained per epoch — always data.size(): the tail minibatch is
  /// trained too (as its own batch when >= 2 circuits remain, folded into
  /// the previous batch for a lone leftover).
  std::vector<std::size_t> circuits_seen;
};

struct AlignConfig {
  int epochs = 20;
  std::size_t batch_size = 8;
  float lr = 6e-4f;
  /// Worker threads for minibatch-level data parallelism (bit-identical at
  /// any value; see PretrainConfig::threads).
  std::size_t threads = 1;
  /// Minibatches whose gradients are averaged per optimizer step.
  std::size_t grad_accum = 1;
};

/// Global alignment (Fig. 6/8): RNC (CLIP-style symmetric contrastive),
/// RNM (pairwise matching MLP against the identity matrix, smooth-L1 per
/// the paper's pseudocode) and the local RrNdM register-to-DFF matching
/// loss. No-op (empty report) if the model was built without alignment.
AlignReport align(MossModel& model, std::vector<CircuitBatch>& data,
                  const AlignConfig& cfg, Rng& rng);

}  // namespace moss::core

#include "core/trainer_impl.hpp"  // template definition of pretrain_model
