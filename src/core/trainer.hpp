#pragma once

#include <vector>

#include "core/model.hpp"

namespace moss::core {

/// Loss curves of the local pre-training phase (Fig. 7): total, probability,
/// toggle and arrival-time losses per epoch.
struct PretrainReport {
  std::vector<double> total;
  std::vector<double> prob;
  std::vector<double> toggle;
  std::vector<double> arrival;
  /// Optimizer steps skipped because a loss or gradient went non-finite.
  std::size_t bad_steps = 0;
};

struct PretrainConfig {
  int epochs = 20;
  float lr = 6e-4f;  ///< paper: Adam, 6e-4
  /// Worker threads for circuit-level data parallelism. Any value yields
  /// bit-identical results for a fixed grad_accum (per-batch gradients are
  /// kept in worker-local buffers and reduced in batch-index order).
  std::size_t threads = 1;
  /// Circuits whose gradients are averaged per optimizer step. 1 reproduces
  /// the classic per-circuit SGD loop exactly; values > 1 let the group's
  /// forward/backward passes run concurrently across `threads`.
  std::size_t grad_accum = 1;

  // -- fault tolerance -------------------------------------------------------
  /// Epochs between training-state snapshots (params, optimizer moments,
  /// task-weight EMAs, loss curves). 0 disables checkpointing.
  int checkpoint_every = 0;
  /// Snapshot file for checkpoint_every / resume. Written crash-safely
  /// (temp file + fsync + atomic rename); `<path>.best` additionally
  /// tracks the lowest-loss epoch seen so far.
  std::string checkpoint_path;
  /// Resume from checkpoint_path when it exists (requires the same model,
  /// data and config; the completed run is bit-identical to an
  /// uninterrupted one). Missing file = start from scratch.
  bool resume = false;
  /// Non-finite steps tolerated before a clean abort. A step whose loss or
  /// accumulated gradients are non-finite is skipped (parameters,
  /// optimizer and task weights untouched); once more than max_bad_steps
  /// steps have been skipped, training aborts with a structured error.
  int max_bad_steps = 8;
};

/// Local pre-training (Fig. 7): per-circuit multi-task loss
///   L = λ_p·L_prob + λ_t·L_toggle + λ_a·L_arrival  (smooth-L1 each)
/// with dynamic λ_i ∝ 1/EMA(L_i) so no task dominates (Eq. 2).
PretrainReport pretrain(MossModel& model, std::vector<CircuitBatch>& data,
                        const PretrainConfig& cfg);

/// Generic version of the same loop, shared with the DeepSeq2-style
/// baseline: any model exposing node_embeddings(batch),
/// predict_local(batch, h) and params() can be pre-trained.
template <typename Model>
PretrainReport pretrain_model(Model& model, std::vector<CircuitBatch>& data,
                              const PretrainConfig& cfg);

/// Loss curves of the global multimodal alignment phase (Fig. 8).
struct AlignReport {
  std::vector<double> total;
  std::vector<double> rnc;
  std::vector<double> rnm;
  std::vector<double> rrndm;
  /// Per-epoch mean rejection loss (noise-tolerant training: corrupted RTL
  /// views and mined mutant netlists pushed away from the clean pair).
  /// All-zero when AlignConfig::noise is disabled and no negatives given.
  std::vector<double> reject;
  /// Circuits trained per epoch — data.size() in a healthy run: the tail
  /// minibatch is trained too (as its own batch when >= 2 circuits remain,
  /// folded into the previous batch for a lone leftover). Skipped
  /// non-finite steps subtract their circuits.
  std::vector<std::size_t> circuits_seen;
  /// Optimizer steps skipped because a loss or gradient went non-finite.
  std::size_t bad_steps = 0;
};

/// Noise injection for robust alignment: a fraction of circuits per epoch
/// contribute corrupted code-side views (CircuitBatch::corrupt_texts,
/// produced by the data::corrupt imperfection model) that the contrastive
/// losses learn to REJECT rather than align. Participation is a pure hash
/// of (seed, epoch, circuit index) — never a shared RNG draw — so training
/// stays bit-identical at any thread count.
struct AlignNoise {
  bool enabled = false;
  /// Fraction of circuits contributing a corrupted view each epoch.
  float corrupt_fraction = 0.5f;
  /// Per-sample weight of every rejection loss term.
  float weight = 0.5f;
  std::uint64_t seed = 0xC032;
};

/// An oracle-proven hard negative for one training circuit: a mutant
/// netlist (sat::mine_hard_negatives output, labeled via
/// data::label_netlist) that provably does NOT implement its owner's RTL.
/// During alignment its embedding joins the owner's minibatch as an extra
/// contrastive column and an RNM/FEP pair trained toward "no match".
struct HardNegative {
  std::size_t owner = 0;  ///< index into the training data vector
  CircuitBatch batch;     ///< the mutant netlist (module_text empty)
};

struct AlignConfig {
  int epochs = 20;
  std::size_t batch_size = 8;
  float lr = 6e-4f;
  /// Worker threads for minibatch-level data parallelism (bit-identical at
  /// any value; see PretrainConfig::threads).
  std::size_t threads = 1;
  /// Minibatches whose gradients are averaged per optimizer step.
  std::size_t grad_accum = 1;
  /// Noise-tolerant training (off by default: the clean path is op-for-op
  /// identical to a build without this feature).
  AlignNoise noise;

  // -- fault tolerance (same semantics as PretrainConfig) --------------------
  int checkpoint_every = 0;
  std::string checkpoint_path;
  bool resume = false;
  int max_bad_steps = 8;
};

/// Global alignment (Fig. 6/8): RNC (CLIP-style symmetric contrastive),
/// RNM (pairwise matching MLP against the identity matrix, smooth-L1 per
/// the paper's pseudocode) and the local RrNdM register-to-DFF matching
/// loss. No-op (empty report) if the model was built without alignment.
/// `negatives` (optional) supplies oracle-proven mutant netlists folded in
/// as rejection targets whenever their owner circuit is in the minibatch.
AlignReport align(MossModel& model, std::vector<CircuitBatch>& data,
                  const AlignConfig& cfg, Rng& rng,
                  const std::vector<HardNegative>* negatives = nullptr);

namespace detail {

/// Full pre-training state at an epoch boundary — everything needed to
/// continue `pretrain` bit-identically after a crash.
struct PretrainState {
  std::uint64_t next_epoch = 0;
  std::uint64_t bad_steps = 0;
  double best_loss = 0;
  bool has_best = false;
  std::vector<double> ema;  ///< DynamicWeights EMAs (3 tasks)
  PretrainReport report;    ///< curves for epochs [0, next_epoch)
  tensor::Adam::Snapshot adam;
};

/// Crash-safe snapshot write: params + state to `path` (atomic rename);
/// additionally rotates `<path>.best` when `best` is set.
void save_pretrain_checkpoint(const std::string& path,
                              const tensor::ParameterSet& params,
                              const PretrainState& st, bool best);
/// Restore params + state from `path`. Returns false when the file does
/// not exist (fresh start); corrupt or mismatched files raise ContextError.
bool load_pretrain_checkpoint(const std::string& path,
                              tensor::ParameterSet& params,
                              PretrainState& st);

/// Full alignment state at an epoch boundary (adds the shuffled circuit
/// order and the RNG stream to the pre-training fields).
struct AlignState {
  std::uint64_t next_epoch = 0;
  std::uint64_t bad_steps = 0;
  double best_loss = 0;
  bool has_best = false;
  std::vector<std::uint64_t> order;
  Rng::State rng;
  AlignReport report;
  tensor::Adam::Snapshot adam;
};

void save_align_checkpoint(const std::string& path,
                           const tensor::ParameterSet& params,
                           const AlignState& st, bool best);
bool load_align_checkpoint(const std::string& path,
                           tensor::ParameterSet& params, AlignState& st);

/// True when every element of `v` is finite.
bool all_finite(const std::vector<float>& v);
/// True when every accumulated gradient in `params` is finite.
bool grads_finite(const tensor::ParameterSet& params);

/// Raise the structured too-many-bad-steps abort shared by both loops.
[[noreturn]] void fail_bad_steps(const char* phase, int epoch,
                                 std::size_t step, std::uint64_t bad_steps,
                                 double loss);

}  // namespace detail

}  // namespace moss::core

#include "core/trainer_impl.hpp"  // template definition of pretrain_model
