#pragma once

#include <string>
#include <vector>

#include "core/features.hpp"
#include "gnn/two_phase_gnn.hpp"
#include "lm/encoder.hpp"
#include "tensor/nn.hpp"

namespace moss::core {

/// Full model configuration. The three ablation axes of Table I:
///   features.lm_features (F), features.adaptive_agg (AA), alignment (A).
struct MossConfig {
  FeatureConfig features;
  bool alignment = true;   ///< local-global alignment strategy (RrNdM/RNC/RNM)
  std::size_t hidden = 32;
  int rounds = 2;          ///< two-phase propagation iterations
  bool attention = true;
  /// DeepSeq2-style disentangled embedding space: the hidden vector is
  /// split into function / toggle / structure bands and each task head
  /// reads only its band (function → one_prob + the alignment projection,
  /// toggle → toggle, structure → arrival), so the per-head losses shape
  /// disjoint sub-embeddings instead of one entangled code.
  bool disentangle = false;
  std::uint64_t seed = 1;

  static MossConfig full() { return {}; }
  /// "MOSS disentangled": the DeepSeq2-style ablation.
  static MossConfig disentangled() {
    MossConfig c;
    c.disentangle = true;
    return c;
  }
  /// "MOSS w/o A": no alignment strategy.
  static MossConfig without_alignment() {
    MossConfig c;
    c.alignment = false;
    return c;
  }
  /// "MOSS w/o AA": additionally no adaptive aggregator.
  static MossConfig without_adaptive_agg() {
    MossConfig c = without_alignment();
    c.features.adaptive_agg = false;
    return c;
  }
  /// "MOSS w/o FAA": additionally no LM feature enhancement. Per the
  /// paper, all node identity comes from the LLM, so this variant's nodes
  /// carry no features at all (bias only).
  static MossConfig without_features() {
    MossConfig c = without_adaptive_agg();
    c.features.lm_features = false;
    c.features.structural_features = false;
    return c;
  }
};

/// Per-node local predictions for one circuit.
struct LocalPredictions {
  tensor::Tensor one_prob;  ///< |cell_rows|×1, in (0,1)
  tensor::Tensor toggle;    ///< |cell_rows|×1, in (0,1)
  tensor::Tensor arrival;   ///< |arrival_rows|×1, normalized (kArrivalScale)
};

/// The MOSS model: two-phase GNN over LM-enhanced netlist graphs with local
/// task heads and global alignment components (projection, temperature, RNM
/// matching head).
class MossModel {
 public:
  MossModel(const MossConfig& cfg, const cell::CellLibrary& lib,
            const lm::TextEncoder& enc);

  const MossConfig& config() const { return cfg_; }
  tensor::ParameterSet& params() { return params_; }
  const tensor::ParameterSet& params() const { return params_; }
  /// The underlying GNN, for plan-driven propagation (moss::plan) that
  /// needs initial_state()/step() instead of the packaged forward.
  const gnn::TwoPhaseGnn& gnn() const { return gnn_; }

  /// GNN forward: final node embeddings (num_nodes × hidden).
  tensor::Tensor node_embeddings(const CircuitBatch& batch) const;

  /// Local task heads applied to node embeddings. Heads read the node
  /// embedding concatenated with the node's raw feature row (a skip
  /// connection): raw levels/loads stay unsquashed, so e.g. arrival
  /// extrapolates past the tanh-bounded embedding range.
  LocalPredictions predict_local(const CircuitBatch& batch,
                                 const tensor::Tensor& node_h) const;

  /// Arrival-time head on arbitrary rows (used for per-DFF ATP evaluation).
  tensor::Tensor predict_arrival(const CircuitBatch& batch,
                                 const tensor::Tensor& node_h,
                                 const std::vector<int>& rows) const;

  /// Pooled netlist embedding projected into the LM space (1 × d_lm),
  /// L2-normalized — "N_e" of the pseudocode.
  tensor::Tensor netlist_embedding(const CircuitBatch& batch,
                                   const tensor::Tensor& node_h) const;

  /// L2-normalized RTL embedding "R_e" (frozen LM).
  tensor::Tensor rtl_embedding(const std::string& module_text) const;

  /// Projected DFF embeddings (|flop_rows| × d_lm, L2-normalized) for the
  /// RrNdM register-to-DFF matching loss.
  tensor::Tensor dff_projections(const CircuitBatch& batch,
                                 const tensor::Tensor& node_h) const;

  /// RNM matching logits for all (RTL row i, netlist row j) pairs:
  /// returns (R·N)×1 logits, row-major over i then j.
  tensor::Tensor rnm_logits(const tensor::Tensor& r_e,
                            const tensor::Tensor& n_e) const;

  /// Learnable contrastive temperature (1×1); logits scale by exp(t).
  const tensor::Tensor& temperature() const { return temperature_; }

  /// Pair score used for functional-equivalence prediction: cosine
  /// similarity plus (when alignment heads exist) the RNM logit.
  float pair_score(const tensor::Tensor& r_e, const tensor::Tensor& n_e) const;

  /// Disentangled band widths (function, toggle, structure); all equal to
  /// `hidden` when disentangle is off (every head sees the full vector).
  std::size_t function_band() const { return func_w_; }
  std::size_t toggle_band() const { return tog_w_; }
  std::size_t structure_band() const { return str_w_; }

 private:
  MossConfig cfg_;
  const lm::TextEncoder* enc_;
  tensor::ParameterSet params_;
  gnn::TwoPhaseGnn gnn_;
  tensor::Linear prob_head_;
  tensor::Linear toggle_head_;
  tensor::Mlp arrival_head_;
  tensor::Linear netlist_proj_;  ///< W_n: hidden (or function band) -> d_lm
  tensor::Mlp rnm_head_;         ///< 2·d_lm -> 1
  tensor::Tensor temperature_;
  /// Band layout: [0, func_w_) function, [func_w_, func_w_ + tog_w_)
  /// toggle, the rest structure. With disentangle off, every band spans
  /// the whole hidden vector (func_w_ == tog_w_ == str_w_ == hidden).
  std::size_t func_w_ = 0;
  std::size_t tog_w_ = 0;
  std::size_t str_w_ = 0;
};

}  // namespace moss::core
