#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/trainer.hpp"

namespace moss::core {

/// One-stop configuration for the end-to-end MOSS pipeline.
struct WorkflowConfig {
  MossConfig model;
  data::DatasetConfig dataset;
  lm::EncoderConfig encoder{4096, 24, 0xC0DE};
  lm::FineTuneConfig fine_tune;
  PretrainConfig pretrain;
  AlignConfig align;
  std::uint64_t seed = 1;
  /// Worker threads for design labeling (add_designs) and feature/batch
  /// building. Training threads come from `pretrain.threads` and
  /// `align.threads`. Results are identical at any value.
  std::size_t threads = 1;

  /// Point both training phases at crash-safe snapshot files derived from
  /// `base` (`<base>.pretrain.ckpt` / `<base>.align.ckpt`), snapshotting
  /// every `every` epochs. With `resume`, a later fit() with the same
  /// config picks up from the last snapshot — bit-identical to an
  /// uninterrupted run.
  void enable_checkpointing(const std::string& base, int every = 1,
                            bool resume = true) {
    pretrain.checkpoint_path = base + ".pretrain.ckpt";
    pretrain.checkpoint_every = every;
    pretrain.resume = resume;
    align.checkpoint_path = base + ".align.ckpt";
    align.checkpoint_every = every;
    align.resume = resume;
  }
};

/// High-level facade wiring the whole pipeline:
///
///   MossWorkflow wf(cfg);
///   wf.add_design({"alu", 2, 7, ""});     // generate + label
///   wf.add_module(parse_verilog(src));    // or bring your own RTL
///   wf.fit();                             // fine-tune LM, pretrain, align
///   auto acc = wf.evaluate(0);
///   wf.save_checkpoint("moss.ckpt");
///
/// The model is constructed lazily after the encoder is fine-tuned (the
/// adaptive clustering depends on encoder geometry).
class MossWorkflow {
 public:
  explicit MossWorkflow(WorkflowConfig cfg = {});

  // -- data ------------------------------------------------------------------
  void add_design(const data::DesignSpec& spec);
  /// Generate + label a batch of designs, `cfg.threads` at a time (labels
  /// are per-design deterministic, so the result matches serial add_design
  /// calls in the same order).
  void add_designs(const std::vector<data::DesignSpec>& specs);
  void add_module(rtl::Module m);
  void add_circuit(data::LabeledCircuit lc);
  std::size_t num_circuits() const { return circuits_.size(); }
  const data::LabeledCircuit& circuit(std::size_t i) const {
    return circuits_.at(i);
  }

  // -- training ---------------------------------------------------------------
  /// Fine-tune the encoder on the collected module texts (idempotent —
  /// re-running retrains from the current state).
  lm::FineTuneReport fine_tune_encoder();
  /// Local pre-training; fine-tunes the encoder first if not done yet.
  PretrainReport pretrain_model();
  /// Global alignment (no-op for variants without alignment).
  AlignReport align_model();
  /// fine_tune_encoder + pretrain_model + align_model. With checkpointing
  /// configured (see WorkflowConfig::enable_checkpointing), each phase
  /// snapshots crash-safely and a re-run resumes from the last snapshot:
  /// when an alignment snapshot exists, pre-training (already folded into
  /// it) is skipped entirely.
  void fit();

  // -- inference ---------------------------------------------------------------
  TaskAccuracy evaluate(std::size_t index);
  /// Evaluate a circuit not in the training set.
  TaskAccuracy evaluate(const data::LabeledCircuit& lc);
  /// Retrieval accuracy over the workflow's own circuits.
  double fep();
  /// Per-DFF arrival predictions (ps) for any labeled circuit.
  std::vector<double> predict_flop_arrivals(const data::LabeledCircuit& lc);

  // -- persistence ---------------------------------------------------------------
  void save_checkpoint(const std::string& path);
  /// Requires the same config (model shapes must match).
  void load_checkpoint(const std::string& path);

  lm::TextEncoder& encoder() { return encoder_; }
  MossModel& model();

 private:
  void ensure_model();
  CircuitBatch& batch_for(std::size_t index);
  /// Build every not-yet-built batch, `cfg.threads` at a time, and return
  /// copies of all of them in circuit order.
  std::vector<CircuitBatch> all_batches();

  WorkflowConfig cfg_;
  lm::TextEncoder encoder_;
  std::vector<data::LabeledCircuit> circuits_;
  std::vector<std::optional<CircuitBatch>> batches_;
  std::unique_ptr<MossModel> model_;
  bool encoder_tuned_ = false;
};

}  // namespace moss::core
