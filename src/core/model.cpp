#include "core/model.hpp"

#include <cmath>

namespace moss::core {

using tensor::Tensor;

namespace {

gnn::GnnConfig make_gnn_config(const MossConfig& cfg,
                               const cell::CellLibrary& lib,
                               const lm::TextEncoder& enc) {
  gnn::GnnConfig g;
  g.feature_dim = feature_dim(lib, enc, cfg.features);
  g.hidden = cfg.hidden;
  g.num_aggregators = num_aggregators(lib, enc, cfg.features);
  g.rounds = cfg.rounds;
  g.attention = cfg.attention;
  return g;
}

}  // namespace

MossModel::MossModel(const MossConfig& cfg, const cell::CellLibrary& lib,
                     const lm::TextEncoder& enc)
    : cfg_(cfg), enc_(&enc), gnn_([&] {
        Rng rng(cfg.seed);
        return gnn::TwoPhaseGnn(make_gnn_config(cfg, lib, enc), rng, params_,
                                "gnn");
      }()) {
  Rng rng(cfg.seed ^ 0xabcdef);
  if (cfg.disentangle) {
    MOSS_CHECK(cfg.hidden >= 3,
               "disentangle needs hidden >= 3 (one column per band)");
    tog_w_ = cfg.hidden / 3;
    str_w_ = cfg.hidden / 3;
    func_w_ = cfg.hidden - tog_w_ - str_w_;
  } else {
    func_w_ = tog_w_ = str_w_ = cfg.hidden;
  }
  const std::size_t fdim = feature_dim(lib, enc, cfg.features);
  prob_head_ = tensor::Linear(func_w_ + fdim, 1, rng, params_, "prob_head");
  toggle_head_ =
      tensor::Linear(tog_w_ + fdim, 1, rng, params_, "toggle_head");
  arrival_head_ =
      tensor::Mlp(str_w_ + fdim, cfg.hidden, 1, rng, params_, "arrival_head");
  netlist_proj_ =
      tensor::Linear(func_w_, enc.dim(), rng, params_, "netlist_proj",
                     /*bias=*/false);
  rnm_head_ = tensor::Mlp(2 * enc.dim(), enc.dim(), 1, rng, params_, "rnm");
  temperature_ = params_.add("temperature", Tensor::scalar(1.0f, true));
}

Tensor MossModel::node_embeddings(const CircuitBatch& batch) const {
  return gnn_.run(batch.graph);
}

namespace {

/// Columns [begin, begin + width) of x, differentiable. No column-slice
/// kernel exists, so this composes transpose ∘ gather_rows ∘ transpose;
/// returns x unchanged when the band spans every column (the entangled
/// default stays op-for-op identical).
Tensor slice_cols(const Tensor& x, std::size_t begin, std::size_t width) {
  if (begin == 0 && width == x.cols()) return x;
  std::vector<int> idx(width);
  for (std::size_t i = 0; i < width; ++i) {
    idx[i] = static_cast<int>(begin + i);
  }
  return tensor::transpose(tensor::gather_rows(tensor::transpose(x), idx));
}

/// Head input: node embedding band with a raw-feature skip connection.
Tensor head_input(const CircuitBatch& batch, const Tensor& node_h,
                  const std::vector<int>& rows, std::size_t band_begin,
                  std::size_t band_width) {
  return tensor::concat_cols(
      slice_cols(tensor::gather_rows(node_h, rows), band_begin, band_width),
      tensor::gather_rows(batch.graph.features, rows));
}

}  // namespace

LocalPredictions MossModel::predict_local(const CircuitBatch& batch,
                                          const Tensor& node_h) const {
  LocalPredictions out;
  if (!cfg_.disentangle) {
    const Tensor cell_in =
        head_input(batch, node_h, batch.cell_rows, 0, func_w_);
    out.one_prob = tensor::sigmoid(prob_head_(cell_in));
    out.toggle = tensor::sigmoid(toggle_head_(cell_in));
  } else {
    // Each head reads only its band, so its loss shapes a disjoint
    // sub-embedding (the shared GNN still feels all three gradients).
    out.one_prob = tensor::sigmoid(prob_head_(
        head_input(batch, node_h, batch.cell_rows, 0, func_w_)));
    out.toggle = tensor::sigmoid(toggle_head_(
        head_input(batch, node_h, batch.cell_rows, func_w_, tog_w_)));
  }
  if (!batch.arrival_rows.empty()) {
    out.arrival = predict_arrival(batch, node_h, batch.arrival_rows);
  }
  return out;
}

Tensor MossModel::predict_arrival(const CircuitBatch& batch,
                                  const Tensor& node_h,
                                  const std::vector<int>& rows) const {
  // Arrival times are nonnegative; softplus keeps the head in range
  // without saturating like a sigmoid for deep circuits, and (unlike a relu
  // output) never has a dead gradient.
  const std::size_t str_begin = cfg_.disentangle ? func_w_ + tog_w_ : 0;
  return tensor::softplus(
      arrival_head_(head_input(batch, node_h, rows, str_begin, str_w_)));
}

Tensor MossModel::netlist_embedding(const CircuitBatch& batch,
                                    const Tensor& node_h) const {
  const Tensor pooled = tensor::mean_rows(
      tensor::gather_rows(node_h, batch.graph.readout_nodes));
  // Alignment reads the function band: cross-modal retrieval is about what
  // the circuit computes, not how it toggles or how late it settles.
  return tensor::l2_normalize_rows(
      netlist_proj_(slice_cols(pooled, 0, func_w_)));
}

Tensor MossModel::rtl_embedding(const std::string& module_text) const {
  // Centered embeddings: retrieval needs the boilerplate-free geometry.
  return tensor::l2_normalize_rows(enc_->encode_centered(module_text));
}

Tensor MossModel::dff_projections(const CircuitBatch& batch,
                                  const Tensor& node_h) const {
  MOSS_CHECK(!batch.flop_rows.empty(), "circuit has no flops");
  const Tensor flop_h = tensor::gather_rows(node_h, batch.flop_rows);
  return tensor::l2_normalize_rows(
      netlist_proj_(slice_cols(flop_h, 0, func_w_)));
}

Tensor MossModel::rnm_logits(const Tensor& r_e, const Tensor& n_e) const {
  const std::size_t R = r_e.rows(), N = n_e.rows();
  // Build all (i, j) concatenations via row gathers so gradients flow.
  std::vector<int> ri, nj;
  ri.reserve(R * N);
  nj.reserve(R * N);
  for (std::size_t i = 0; i < R; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      ri.push_back(static_cast<int>(i));
      nj.push_back(static_cast<int>(j));
    }
  }
  const Tensor pairs = tensor::concat_cols(tensor::gather_rows(r_e, ri),
                                           tensor::gather_rows(n_e, nj));
  return rnm_head_(pairs);
}

float MossModel::pair_score(const Tensor& r_e, const Tensor& n_e) const {
  float cosine = 0.0f;
  for (std::size_t i = 0; i < r_e.size(); ++i) {
    cosine += r_e.data()[i] * n_e.data()[i];
  }
  float score = cosine;
  if (cfg_.alignment) {
    score += rnm_logits(r_e, n_e).item();
  }
  return score;
}

}  // namespace moss::core
