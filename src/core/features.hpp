#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "gnn/graph.hpp"
#include "lm/encoder.hpp"

namespace moss::core {

/// Feature construction options (ablation axes of Table I).
struct FeatureConfig {
  /// LM feature enhancement (the "F" in the w/o-FAA ablation): cell nodes
  /// get the LM embedding of their cell description, DFF nodes additionally
  /// get the LM embedding of their register prompt. In MOSS *all* node
  /// identity comes from the LLM (the paper replaces manual labels with LLM
  /// embeddings), so disabling this removes cell identity entirely.
  bool lm_features = true;
  /// Structural features (degrees, level, load). In the paper's w/o-FAA
  /// variant the nodes are left with no features at all (a bias constant);
  /// keeping structural features here is an extra mode for the ablation
  /// bench, which shows how much of the task this substrate's structure
  /// alone already determines.
  bool structural_features = true;
  /// Optional DeepSeq-style cell-type one-hot when lm_features is off
  /// (not part of the paper's w/o-FAA ablation; used by the ablation
  /// bench to quantify how much of the LM feature value is mere identity).
  bool type_onehot = false;
  /// Adaptive aggregator (the extra "A"): DBSCAN+HAC over cell-type
  /// embeddings assigns one aggregator cluster per type. When false, all
  /// nodes share one aggregator.
  bool adaptive_agg = true;
  std::size_t max_clusters = 6;
};

/// A circuit prepared for the model: graph + row bookkeeping + label
/// tensors, all indexed by netlist NodeId (graph row == NodeId).
struct CircuitBatch {
  gnn::Graph graph;
  std::vector<int> cell_rows;  ///< activity-supervised rows (cells)
  /// Rows with arrival-time supervision (for the netlist: all cells;
  /// arrival labels come from STA, per-node — dense supervision).
  std::vector<int> arrival_rows;
  std::vector<int> flop_rows;  ///< netlist flop order (ATP eval + RrNdM)
  /// Per-flop RTL register prompt embedding rows (|flops| × d_lm); the
  /// RrNdM alignment target. Zero rows where no prompt matched.
  tensor::Tensor reg_prompt_emb;
  /// Labels aligned with cell_rows / arrival_rows / flop_rows.
  std::vector<float> toggle;             ///< per cell_rows entry
  std::vector<float> one_prob;           ///< per cell_rows entry
  std::vector<float> arrival_norm;       ///< per arrival_rows entry
  std::vector<float> flop_arrival_norm;  ///< per flop_rows entry
  double power_uw = 0.0;
  std::string module_text;
  /// Corrupted variants of module_text (imperfection-model output), used by
  /// noise-tolerant alignment as rejection targets. Empty unless
  /// attach_corrupt_views was called; not part of content_hash (the model's
  /// node_embeddings never reads them).
  std::vector<std::string> corrupt_texts;
  std::string name;
  std::size_t num_cells = 0;
  /// batch_content_hash(*this), computed once at build time (build_batch,
  /// plan::to_batch). 0 for hand-assembled batches; read it through
  /// content_hash() below, which recomputes on demand.
  std::uint64_t content_hash = 0;
};

/// Arrival-time normalization scale (ps). Predictions are trained on
/// arrival/kArrivalScale.
inline constexpr double kArrivalScale = 1000.0;

/// Assign an aggregator cluster to every cell type in the library by
/// clustering LM description embeddings joined with structural stats
/// (Fig. 5). Returns per-type cluster ids in [0, num_clusters); the number
/// of clusters is num_clusters() of the result.
std::vector<int> cluster_cell_types(const cell::CellLibrary& lib,
                                    const lm::TextEncoder& enc,
                                    std::size_t max_clusters);

/// Build the model-ready batch for one labeled circuit.
CircuitBatch build_batch(const data::LabeledCircuit& lc,
                         const lm::TextEncoder& enc,
                         const FeatureConfig& cfg);

/// Attach up to `count` corrupted RTL views of lc.module to the batch
/// (variant i uses seed `seed + i` and severity `1 + i % max_severity`).
/// Views where the imperfection model finds no applicable site are skipped,
/// so fewer than `count` may be added (zero for module-less circuits).
/// Deterministic in (lc.module, seed). Returns the number attached.
std::size_t attach_corrupt_views(CircuitBatch& batch,
                                 const data::LabeledCircuit& lc,
                                 std::size_t count, std::uint64_t seed,
                                 int max_severity = 3);

/// Feature width produced by build_batch for a given config and library.
std::size_t feature_dim(const cell::CellLibrary& lib,
                        const lm::TextEncoder& enc, const FeatureConfig& cfg);

/// Width of the structural block at the front of every feature row.
std::size_t structural_feature_dim();

/// Number of aggregators build_batch will reference (clusters + 1 for
/// ports/ties), for sizing the GNN.
std::size_t num_aggregators(const cell::CellLibrary& lib,
                            const lm::TextEncoder& enc,
                            const FeatureConfig& cfg);

/// Content address of everything a model forward pass reads from the batch:
/// graph structure (steps, groups, edges, pin positions), node features and
/// readout rows. Two batches with equal hashes produce bit-identical
/// node_embeddings under the same model — the keying contract of the
/// serve-layer embedding cache and of evaluate_fep's memoization.
std::uint64_t batch_content_hash(const CircuitBatch& batch);

/// The batch's precomputed content hash when present, else a fresh
/// batch_content_hash computation — so consumers hash each batch at most
/// once instead of re-walking the graph per use site.
std::uint64_t content_hash(const CircuitBatch& batch);

}  // namespace moss::core
