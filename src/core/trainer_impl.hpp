#pragma once

// Template implementation of the shared pre-training loop; included at the
// bottom of trainer.hpp. Not a public header.

#include <algorithm>
#include <cmath>

#include "core/trainer.hpp"
#include "core_util/fault.hpp"
#include "core_util/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace moss::core {

namespace detail {

/// Dynamic task weights λ_i ∝ 1/EMA(L_i), normalized to sum to the task
/// count — the Eq. 2 balancing strategy.
///
/// A task whose loss is identically zero (e.g. the arrival head is absent
/// for a model variant) must not block warm-up for the others: it counts as
/// observed, is excluded from the inverse-EMA weighting and keeps weight 1
/// (its loss contributes nothing either way).
class DynamicWeights {
 public:
  explicit DynamicWeights(std::size_t n) : ema_(n, -1.0) {}

  void observe(std::size_t i, double loss) {
    ema_[i] = ema_[i] < 0 ? loss : 0.9 * ema_[i] + 0.1 * loss;
  }

  /// Raw EMAs for checkpointing; restore() resumes bit-identically.
  const std::vector<double>& ema() const { return ema_; }
  void restore(std::vector<double> ema) {
    MOSS_CHECK(ema.size() == ema_.size(),
               "DynamicWeights::restore: task count mismatch");
    ema_ = std::move(ema);
  }

  std::vector<float> weights() const {
    std::vector<float> w(ema_.size(), 1.0f);
    for (const double e : ema_) {
      if (e < 0) return w;  // warm-up: uniform until every task observed
    }
    double sum = 0;
    std::size_t active = 0;
    for (std::size_t i = 0; i < ema_.size(); ++i) {
      if (ema_[i] <= 0) continue;  // absent task: keep weight 1
      w[i] = static_cast<float>(1.0 / std::max(ema_[i], 1e-4));
      sum += w[i];
      ++active;
    }
    if (active == 0) return w;
    const float norm = static_cast<float>(static_cast<double>(active) / sum);
    for (std::size_t i = 0; i < ema_.size(); ++i) {
      if (ema_[i] > 0) w[i] *= norm;
    }
    return w;
  }

 private:
  std::vector<double> ema_;
};

inline tensor::Tensor label_column(const std::vector<float>& v) {
  return tensor::Tensor::from(v, v.size(), 1);
}

/// Toggle loss: absolute smooth-L1 plus a relative-error term (deviation
/// scaled by 1/max(t, floor)). The evaluation metric is mean *relative*
/// error, so the relative term optimizes low-toggle cells directly, while
/// the absolute term keeps the high-toggle cells (which dominate power)
/// accurate.
inline tensor::Tensor toggle_loss(const tensor::Tensor& pred,
                                  const std::vector<float>& target,
                                  float rel_floor = 0.08f,
                                  float rel_weight = 0.5f) {
  const tensor::Tensor t = label_column(target);
  std::vector<float> w(target.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0f / std::max(target[i], rel_floor);
  }
  const tensor::Tensor rel = tensor::smooth_l1_loss(
      tensor::mul_colvec(tensor::sub(pred, t),
                         tensor::Tensor::from(w, w.size(), 1)),
      tensor::Tensor::zeros(target.size(), 1));
  return tensor::add(tensor::smooth_l1_loss(pred, t),
                     tensor::scale(rel, rel_weight));
}

/// Per-batch result of a worker's forward/backward: the leaf gradients it
/// collected in its sandbox plus the scalar loss terms.
struct BatchGrads {
  tensor::GradSandbox::Buffers grads;
  double total = 0, prob = 0, toggle = 0, arrival = 0;
};

}  // namespace detail

template <typename Model>
PretrainReport pretrain_model(Model& model, std::vector<CircuitBatch>& data,
                              const PretrainConfig& cfg) {
  MOSS_CHECK(!data.empty(), "pretrain: empty dataset");
  MOSS_CHECK(cfg.grad_accum >= 1, "pretrain: grad_accum must be >= 1");
  MOSS_CHECK(!(cfg.resume || cfg.checkpoint_every > 0) ||
                 !cfg.checkpoint_path.empty(),
             "pretrain: checkpoint_path required for checkpointing/resume");
  tensor::Adam opt(model.params(), cfg.lr);
  detail::DynamicWeights lambdas(3);
  PretrainReport rep;

  detail::PretrainState st;
  int start_epoch = 0;
  if (cfg.resume &&
      detail::load_pretrain_checkpoint(cfg.checkpoint_path, model.params(),
                                       st)) {
    opt.restore(st.adam);
    lambdas.restore(st.ema);
    rep = st.report;
    start_epoch = static_cast<int>(st.next_epoch);
  }
  std::uint64_t bad_steps = st.bad_steps;

  ThreadPool pool(cfg.threads == 0 ? 0 : cfg.threads);
  tensor::kernels::ScratchArena arena;

  // One forward/backward of data[index] under the group's fixed task
  // weights, gradients collected in a worker-local sandbox. Model forward
  // passes only read shared state (parameters, batch tensors), so several
  // workers may run this concurrently.
  const auto run_batch = [&](std::size_t index,
                             const std::vector<float>& w) {
    CircuitBatch& batch = data[index];
    tensor::GradSandbox sandbox;
    // Recycle forward/backward intermediates across batches and epochs.
    const tensor::kernels::ScratchArena::Scope scratch_scope(arena);
    const tensor::Tensor h = model.node_embeddings(batch);
    const LocalPredictions pred = model.predict_local(batch, h);

    const tensor::Tensor l_prob = tensor::smooth_l1_loss(
        pred.one_prob, detail::label_column(batch.one_prob));
    const tensor::Tensor l_tog = detail::toggle_loss(pred.toggle,
                                                     batch.toggle);
    tensor::Tensor l_at = tensor::Tensor::scalar(0.0f);
    if (pred.arrival.defined()) {
      l_at = tensor::smooth_l1_loss(
          pred.arrival, detail::label_column(batch.arrival_norm));
    }
    tensor::Tensor loss = tensor::add(
        tensor::add(tensor::scale(l_prob, w[0]),
                    tensor::scale(l_tog, w[1])),
        tensor::scale(l_at, w[2]));
    loss.backward();

    detail::BatchGrads out;
    out.grads = sandbox.take();
    out.total = loss.item();
    out.prob = l_prob.item();
    out.toggle = l_tog.item();
    out.arrival = l_at.item();
    return out;
  };

  for (int epoch = start_epoch; epoch < cfg.epochs; ++epoch) {
    double e_total = 0, e_prob = 0, e_tog = 0, e_at = 0;
    for (std::size_t g0 = 0; g0 < data.size(); g0 += cfg.grad_accum) {
      MOSS_FAULT_POINT("trainer.pretrain.step");
      const std::size_t g1 = std::min(g0 + cfg.grad_accum, data.size());
      const std::vector<float> w = lambdas.weights();  // fixed for the group
      std::vector<detail::BatchGrads> parts = pool.parallel_map(
          g1 - g0, [&](std::size_t k) { return run_batch(g0 + k, w); });

      // Reduce worker-local gradients in batch-index order — the float
      // accumulation order is fixed regardless of thread count — and step.
      model.params().zero_grad();
      const float scale = 1.0f / static_cast<float>(parts.size());
      double group_loss = 0;
      for (const detail::BatchGrads& part : parts) {
        tensor::accumulate_grads(model.params().tensors(), part.grads, scale);
        group_loss += part.total;
      }

      // Hardening: a non-finite loss or gradient skips the step entirely —
      // parameters, optimizer moments and task-weight EMAs stay at their
      // pre-batch values — and counts toward max_bad_steps.
      if (!std::isfinite(group_loss) ||
          !detail::grads_finite(model.params())) {
        model.params().zero_grad();
        ++bad_steps;
        if (bad_steps > static_cast<std::uint64_t>(
                            std::max(cfg.max_bad_steps, 0))) {
          detail::fail_bad_steps("pretrain", epoch, g0 / cfg.grad_accum,
                                 bad_steps, group_loss);
        }
        continue;
      }
      opt.step();

      for (const detail::BatchGrads& part : parts) {
        lambdas.observe(0, part.prob);
        lambdas.observe(1, part.toggle);
        lambdas.observe(2, part.arrival);
        e_total += part.total;
        e_prob += part.prob;
        e_tog += part.toggle;
        e_at += part.arrival;
      }
    }
    const double n = static_cast<double>(data.size());
    rep.total.push_back(e_total / n);
    rep.prob.push_back(e_prob / n);
    rep.toggle.push_back(e_tog / n);
    rep.arrival.push_back(e_at / n);

    if (cfg.checkpoint_every > 0 &&
        ((epoch + 1) % cfg.checkpoint_every == 0 ||
         epoch + 1 == cfg.epochs)) {
      st.next_epoch = static_cast<std::uint64_t>(epoch) + 1;
      st.bad_steps = bad_steps;
      st.ema = lambdas.ema();
      st.report = rep;
      st.adam = opt.snapshot();
      const double loss = rep.total.back();
      const bool is_best = !st.has_best || loss < st.best_loss;
      if (is_best) {
        st.best_loss = loss;
        st.has_best = true;
      }
      detail::save_pretrain_checkpoint(cfg.checkpoint_path, model.params(),
                                       st, is_best);
    }
  }
  rep.bad_steps = static_cast<std::size_t>(bad_steps);
  return rep;
}

}  // namespace moss::core
