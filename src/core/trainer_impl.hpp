#pragma once

// Template implementation of the shared pre-training loop; included at the
// bottom of trainer.hpp. Not a public header.

#include <algorithm>
#include <cmath>

#include "core/trainer.hpp"

namespace moss::core {

namespace detail {

/// Dynamic task weights λ_i ∝ 1/EMA(L_i), normalized to sum to the task
/// count — the Eq. 2 balancing strategy.
class DynamicWeights {
 public:
  explicit DynamicWeights(std::size_t n) : ema_(n, -1.0) {}

  void observe(std::size_t i, double loss) {
    ema_[i] = ema_[i] < 0 ? loss : 0.9 * ema_[i] + 0.1 * loss;
  }

  std::vector<float> weights() const {
    std::vector<float> w(ema_.size(), 1.0f);
    for (const double e : ema_) {
      if (e <= 0) return w;  // warm-up: uniform until every task observed
    }
    double sum = 0;
    for (std::size_t i = 0; i < ema_.size(); ++i) {
      w[i] = static_cast<float>(1.0 / std::max(ema_[i], 1e-4));
      sum += w[i];
    }
    const float norm = static_cast<float>(static_cast<double>(ema_.size()) / sum);
    for (float& x : w) x *= norm;
    return w;
  }

 private:
  std::vector<double> ema_;
};

inline tensor::Tensor label_column(const std::vector<float>& v) {
  return tensor::Tensor::from(v, v.size(), 1);
}

/// Toggle loss: absolute smooth-L1 plus a relative-error term (deviation
/// scaled by 1/max(t, floor)). The evaluation metric is mean *relative*
/// error, so the relative term optimizes low-toggle cells directly, while
/// the absolute term keeps the high-toggle cells (which dominate power)
/// accurate.
inline tensor::Tensor toggle_loss(const tensor::Tensor& pred,
                                  const std::vector<float>& target,
                                  float rel_floor = 0.08f,
                                  float rel_weight = 0.5f) {
  const tensor::Tensor t = label_column(target);
  std::vector<float> w(target.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0f / std::max(target[i], rel_floor);
  }
  const tensor::Tensor rel = tensor::smooth_l1_loss(
      tensor::mul_colvec(tensor::sub(pred, t),
                         tensor::Tensor::from(w, w.size(), 1)),
      tensor::Tensor::zeros(target.size(), 1));
  return tensor::add(tensor::smooth_l1_loss(pred, t),
                     tensor::scale(rel, rel_weight));
}

}  // namespace detail

template <typename Model>
PretrainReport pretrain_model(Model& model, std::vector<CircuitBatch>& data,
                              const PretrainConfig& cfg) {
  MOSS_CHECK(!data.empty(), "pretrain: empty dataset");
  tensor::Adam opt(model.params(), cfg.lr);
  detail::DynamicWeights lambdas(3);
  PretrainReport rep;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double e_total = 0, e_prob = 0, e_tog = 0, e_at = 0;
    for (CircuitBatch& batch : data) {
      model.params().zero_grad();
      const tensor::Tensor h = model.node_embeddings(batch);
      const LocalPredictions pred = model.predict_local(batch, h);

      const tensor::Tensor l_prob = tensor::smooth_l1_loss(
          pred.one_prob, detail::label_column(batch.one_prob));
      const tensor::Tensor l_tog = detail::toggle_loss(pred.toggle,
                                                       batch.toggle);
      tensor::Tensor l_at = tensor::Tensor::scalar(0.0f);
      if (pred.arrival.defined()) {
        l_at = tensor::smooth_l1_loss(
            pred.arrival, detail::label_column(batch.arrival_norm));
      }
      const auto w = lambdas.weights();
      tensor::Tensor loss = tensor::add(
          tensor::add(tensor::scale(l_prob, w[0]),
                      tensor::scale(l_tog, w[1])),
          tensor::scale(l_at, w[2]));
      loss.backward();
      opt.step();

      lambdas.observe(0, l_prob.item());
      lambdas.observe(1, l_tog.item());
      lambdas.observe(2, l_at.item());
      e_total += loss.item();
      e_prob += l_prob.item();
      e_tog += l_tog.item();
      e_at += l_at.item();
    }
    const double n = static_cast<double>(data.size());
    rep.total.push_back(e_total / n);
    rep.prob.push_back(e_prob / n);
    rep.toggle.push_back(e_tog / n);
    rep.arrival.push_back(e_at / n);
  }
  return rep;
}

}  // namespace moss::core
