#pragma once

#include <vector>

#include "core/model.hpp"

namespace moss::core {

/// Per-circuit task accuracies (paper Eq. 3: accuracy = 1 − mean relative
/// error, clamped to [0, 1]).
struct TaskAccuracy {
  double atp = 0.0;  ///< arrival-time prediction, per DFF
  double trp = 0.0;  ///< toggle-rate prediction, per cell
  double pp = 0.0;   ///< circuit power prediction
};

/// Evaluate ATP/TRP on a batch; PP is derived by running the power model on
/// the predicted toggle rates (so its accuracy is physically consistent
/// with TRP, as in a real flow).
TaskAccuracy evaluate_tasks(const MossModel& model, const CircuitBatch& batch,
                            const data::LabeledCircuit& lc);

/// Functional-equivalence prediction (Table II): for each circuit's RTL,
/// rank all candidate netlists in the pool by pair score; accuracy is the
/// fraction where the true netlist ranks first (retrieval@1 over the pool,
/// the paper's "correctly identifying functionally equivalent pairs").
double evaluate_fep(const MossModel& model,
                    const std::vector<CircuitBatch>& pool);

/// Relative-error helper shared by benches: 1 - mean(|p-t|/max(|t|,floor)).
double accuracy_from_errors(const std::vector<double>& pred,
                            const std::vector<double>& truth, double floor);

/// Robustness: for every circuit with attached corrupt_texts, the CLEAN
/// RTL must outscore every corrupted variant of itself against the
/// circuit's own netlist. Returns the fraction of (circuit, variant)
/// comparisons the clean pair wins. Circuits without corrupt views are
/// skipped; returns 1.0 when nothing is comparable.
double evaluate_corrupt_rejection(const MossModel& model,
                                  const std::vector<CircuitBatch>& pool);

/// One scored detection sample: `score` is pair_score, `positive` marks a
/// genuine RTL↔netlist pair (negatives are mutants / corrupted views).
struct DetectionSample {
  double score = 0.0;
  bool positive = false;
};

/// Rank-based (Mann–Whitney) AUC of separating positives from negatives by
/// score; ties contribute 0.5. Returns 0.5 when either class is empty.
double detection_auc(const std::vector<DetectionSample>& samples);

/// FEP detection AUC over a pool: positives are each circuit's clean
/// (RTL, netlist) pair; negatives are (clean RTL, mutant netlist) pairs —
/// `mutant_owner[k]` gives the pool index whose RTL mutant k is scored
/// against — plus (corrupted RTL, clean netlist) pairs from each pool
/// batch's corrupt_texts.
double evaluate_detection_auc(const MossModel& model,
                              const std::vector<CircuitBatch>& pool,
                              const std::vector<CircuitBatch>& mutants,
                              const std::vector<std::size_t>& mutant_owner);

}  // namespace moss::core
