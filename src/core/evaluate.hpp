#pragma once

#include <vector>

#include "core/model.hpp"

namespace moss::core {

/// Per-circuit task accuracies (paper Eq. 3: accuracy = 1 − mean relative
/// error, clamped to [0, 1]).
struct TaskAccuracy {
  double atp = 0.0;  ///< arrival-time prediction, per DFF
  double trp = 0.0;  ///< toggle-rate prediction, per cell
  double pp = 0.0;   ///< circuit power prediction
};

/// Evaluate ATP/TRP on a batch; PP is derived by running the power model on
/// the predicted toggle rates (so its accuracy is physically consistent
/// with TRP, as in a real flow).
TaskAccuracy evaluate_tasks(const MossModel& model, const CircuitBatch& batch,
                            const data::LabeledCircuit& lc);

/// Functional-equivalence prediction (Table II): for each circuit's RTL,
/// rank all candidate netlists in the pool by pair score; accuracy is the
/// fraction where the true netlist ranks first (retrieval@1 over the pool,
/// the paper's "correctly identifying functionally equivalent pairs").
double evaluate_fep(const MossModel& model,
                    const std::vector<CircuitBatch>& pool);

/// Relative-error helper shared by benches: 1 - mean(|p-t|/max(|t|,floor)).
double accuracy_from_errors(const std::vector<double>& pred,
                            const std::vector<double>& truth, double floor);

}  // namespace moss::core
