#include "core/workflow.hpp"

#include <fstream>

#include "core_util/thread_pool.hpp"
#include "tensor/serialize.hpp"

namespace moss::core {

namespace {

bool file_exists(const std::string& path) {
  return !path.empty() && std::ifstream(path, std::ios::binary).is_open();
}

}  // namespace

MossWorkflow::MossWorkflow(WorkflowConfig cfg)
    : cfg_(std::move(cfg)), encoder_(cfg_.encoder) {}

void MossWorkflow::add_design(const data::DesignSpec& spec) {
  add_circuit(
      data::label_circuit(spec, cell::standard_library(), cfg_.dataset));
}

void MossWorkflow::add_designs(const std::vector<data::DesignSpec>& specs) {
  ThreadPool pool(cfg_.threads == 0 ? 0 : cfg_.threads);
  std::vector<data::LabeledCircuit> labeled =
      pool.parallel_map(specs.size(), [&](std::size_t i) {
        return data::label_circuit(specs[i], cell::standard_library(),
                                   cfg_.dataset);
      });
  for (data::LabeledCircuit& lc : labeled) add_circuit(std::move(lc));
}

void MossWorkflow::add_module(rtl::Module m) {
  add_circuit(data::label_module(std::move(m), cell::standard_library(),
                                 cfg_.dataset));
}

void MossWorkflow::add_circuit(data::LabeledCircuit lc) {
  MOSS_CHECK(model_ == nullptr,
             "add circuits before training begins (features are built "
             "against the fine-tuned encoder)");
  circuits_.push_back(std::move(lc));
  batches_.emplace_back();
}

lm::FineTuneReport MossWorkflow::fine_tune_encoder() {
  MOSS_CHECK(!circuits_.empty(), "no circuits added");
  std::vector<std::string> corpus;
  corpus.reserve(circuits_.size());
  for (const auto& lc : circuits_) corpus.push_back(lc.module_text);
  Rng rng(cfg_.seed ^ 0xF17E);
  const auto report =
      lm::fine_tune(encoder_, corpus, cfg_.fine_tune, rng);
  encoder_tuned_ = true;
  return report;
}

void MossWorkflow::ensure_model() {
  if (model_) return;
  if (!encoder_tuned_) fine_tune_encoder();
  model_ = std::make_unique<MossModel>(cfg_.model, cell::standard_library(),
                                       encoder_);
}

CircuitBatch& MossWorkflow::batch_for(std::size_t index) {
  auto& slot = batches_.at(index);
  if (!slot.has_value()) {
    slot = build_batch(circuits_[index], encoder_, cfg_.model.features);
  }
  return *slot;
}

std::vector<CircuitBatch> MossWorkflow::all_batches() {
  // Feature building is per-circuit deterministic; only the encoder's text
  // cache is shared (and mutex-guarded), so missing batches can be built
  // concurrently.
  ThreadPool pool(cfg_.threads == 0 ? 0 : cfg_.threads);
  pool.parallel_for(0, circuits_.size(), [&](std::size_t i) {
    auto& slot = batches_.at(i);
    if (!slot.has_value()) {
      slot = build_batch(circuits_[i], encoder_, cfg_.model.features);
    }
  });
  std::vector<CircuitBatch> batches;
  batches.reserve(circuits_.size());
  for (std::size_t i = 0; i < circuits_.size(); ++i) {
    batches.push_back(*batches_[i]);
  }
  return batches;
}

PretrainReport MossWorkflow::pretrain_model() {
  ensure_model();
  std::vector<CircuitBatch> batches = all_batches();
  return pretrain(*model_, batches, cfg_.pretrain);
}

AlignReport MossWorkflow::align_model() {
  ensure_model();
  std::vector<CircuitBatch> batches = all_batches();
  Rng rng(cfg_.seed ^ 0xA117);
  return align(*model_, batches, cfg_.align, rng);
}

void MossWorkflow::fit() {
  fine_tune_encoder();
  // An alignment snapshot embeds the fully pre-trained parameters, so when
  // one exists and resume is on, re-running pre-training would only be
  // overwritten — skip straight to align, matching the uninterrupted run.
  const bool resume_at_align = cfg_.align.resume && cfg_.model.alignment &&
                               file_exists(cfg_.align.checkpoint_path);
  if (!resume_at_align) pretrain_model();
  align_model();
}

TaskAccuracy MossWorkflow::evaluate(std::size_t index) {
  ensure_model();
  return evaluate_tasks(*model_, batch_for(index), circuits_[index]);
}

TaskAccuracy MossWorkflow::evaluate(const data::LabeledCircuit& lc) {
  ensure_model();
  const CircuitBatch batch = build_batch(lc, encoder_, cfg_.model.features);
  return evaluate_tasks(*model_, batch, lc);
}

double MossWorkflow::fep() {
  ensure_model();
  const std::vector<CircuitBatch> batches = all_batches();
  return evaluate_fep(*model_, batches);
}

std::vector<double> MossWorkflow::predict_flop_arrivals(
    const data::LabeledCircuit& lc) {
  ensure_model();
  const CircuitBatch batch = build_batch(lc, encoder_, cfg_.model.features);
  const tensor::Tensor h = model_->node_embeddings(batch);
  const tensor::Tensor at =
      model_->predict_arrival(batch, h, batch.flop_rows);
  std::vector<double> out;
  out.reserve(batch.flop_rows.size());
  for (std::size_t i = 0; i < batch.flop_rows.size(); ++i) {
    out.push_back(static_cast<double>(at.at(i, 0)) * kArrivalScale);
  }
  return out;
}

void MossWorkflow::save_checkpoint(const std::string& path) {
  ensure_model();
  tensor::save_parameters_file(path, model_->params());
}

void MossWorkflow::load_checkpoint(const std::string& path) {
  ensure_model();
  tensor::load_parameters_file(path, model_->params());
}

MossModel& MossWorkflow::model() {
  ensure_model();
  return *model_;
}

}  // namespace moss::core
