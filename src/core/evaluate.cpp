#include "core/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "power/power.hpp"

namespace moss::core {

using tensor::Tensor;

double accuracy_from_errors(const std::vector<double>& pred,
                            const std::vector<double>& truth, double floor) {
  MOSS_CHECK(pred.size() == truth.size(), "accuracy: size mismatch");
  if (pred.empty()) return 1.0;
  double err = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    err += std::abs(pred[i] - truth[i]) / std::max(std::abs(truth[i]), floor);
  }
  return std::clamp(1.0 - err / static_cast<double>(pred.size()), 0.0, 1.0);
}

TaskAccuracy evaluate_tasks(const MossModel& model, const CircuitBatch& batch,
                            const data::LabeledCircuit& lc) {
  const Tensor h = model.node_embeddings(batch);
  const LocalPredictions pred = model.predict_local(batch, h);

  TaskAccuracy acc;

  // ATP: per-DFF arrival times, de-normalized.
  if (!batch.flop_rows.empty()) {
    const Tensor flop_pred =
        model.predict_arrival(batch, h, batch.flop_rows);
    std::vector<double> p, t;
    for (std::size_t i = 0; i < batch.flop_rows.size(); ++i) {
      p.push_back(static_cast<double>(flop_pred.at(i, 0)) * kArrivalScale);
      t.push_back(static_cast<double>(batch.flop_arrival_norm[i]) *
                  kArrivalScale);
    }
    acc.atp = accuracy_from_errors(p, t, /*floor=*/60.0);
  } else {
    acc.atp = 1.0;
  }

  // TRP: per-cell toggle rates.
  {
    std::vector<double> p, t;
    for (std::size_t i = 0; i < batch.cell_rows.size(); ++i) {
      p.push_back(static_cast<double>(pred.toggle.at(i, 0)));
      t.push_back(static_cast<double>(batch.toggle[i]));
    }
    acc.trp = accuracy_from_errors(p, t, /*floor=*/0.08);
  }

  // PP: run the power model on predicted rates (ports contribute nothing).
  {
    std::vector<double> rates(lc.netlist.num_nodes(), 0.0);
    for (std::size_t i = 0; i < batch.cell_rows.size(); ++i) {
      rates[static_cast<std::size_t>(batch.cell_rows[i])] =
          static_cast<double>(pred.toggle.at(i, 0));
    }
    const double p = power::analyze_power(lc.netlist, rates).total_uw;
    acc.pp = accuracy_from_errors({p}, {lc.power_uw}, 1.0);
  }
  return acc;
}

double evaluate_fep(const MossModel& model,
                    const std::vector<CircuitBatch>& pool) {
  MOSS_CHECK(pool.size() >= 2, "FEP pool needs at least two circuits");
  // Precompute embeddings, memoized by content: identical RTL texts and
  // identical netlist structures across the pool (common when a pool mixes
  // re-seeded instances of the same design) are embedded exactly once.
  // Both embeddings are pure functions of (model, content), so the memo
  // changes nothing in the result — only the work.
  std::vector<Tensor> n_e, r_e;
  n_e.reserve(pool.size());
  r_e.reserve(pool.size());
  std::unordered_map<std::string, Tensor> rtl_memo;
  std::unordered_map<std::uint64_t, Tensor> netlist_memo;
  for (const CircuitBatch& b : pool) {
    const std::uint64_t bh = batch_content_hash(b);
    const auto nit = netlist_memo.find(bh);
    if (nit != netlist_memo.end()) {
      n_e.push_back(nit->second);
    } else {
      const Tensor h = model.node_embeddings(b);
      const Tensor ne = model.netlist_embedding(b, h).detach();
      netlist_memo.emplace(bh, ne);
      n_e.push_back(ne);
    }
    const auto rit = rtl_memo.find(b.module_text);
    if (rit != rtl_memo.end()) {
      r_e.push_back(rit->second);
    } else {
      const Tensor re = model.rtl_embedding(b.module_text).detach();
      rtl_memo.emplace(b.module_text, re);
      r_e.push_back(re);
    }
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    float best = -1e30f;
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < pool.size(); ++j) {
      const float s = model.pair_score(r_e[i], n_e[j]);
      if (s > best) {
        best = s;
        best_j = j;
      }
    }
    if (best_j == i) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pool.size());
}

double evaluate_corrupt_rejection(const MossModel& model,
                                  const std::vector<CircuitBatch>& pool) {
  std::size_t wins = 0, comparisons = 0;
  for (const CircuitBatch& b : pool) {
    if (b.corrupt_texts.empty()) continue;
    const Tensor h = model.node_embeddings(b);
    const Tensor n_e = model.netlist_embedding(b, h).detach();
    const float clean =
        model.pair_score(model.rtl_embedding(b.module_text).detach(), n_e);
    for (const std::string& text : b.corrupt_texts) {
      const float wrong =
          model.pair_score(model.rtl_embedding(text).detach(), n_e);
      wins += clean > wrong ? 1 : 0;
      ++comparisons;
    }
  }
  return comparisons == 0
             ? 1.0
             : static_cast<double>(wins) / static_cast<double>(comparisons);
}

double detection_auc(const std::vector<DetectionSample>& samples) {
  // Mann–Whitney U: P(score_pos > score_neg) + 0.5·P(tie), computed by
  // rank without any threshold sweep.
  std::size_t pos = 0, neg = 0;
  double u = 0.0;
  for (const DetectionSample& p : samples) {
    if (!p.positive) continue;
    ++pos;
    for (const DetectionSample& n : samples) {
      if (n.positive) continue;
      if (p.score > n.score) {
        u += 1.0;
      } else if (p.score == n.score) {
        u += 0.5;
      }
    }
  }
  for (const DetectionSample& s : samples) neg += s.positive ? 0 : 1;
  if (pos == 0 || neg == 0) return 0.5;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double evaluate_detection_auc(const MossModel& model,
                              const std::vector<CircuitBatch>& pool,
                              const std::vector<CircuitBatch>& mutants,
                              const std::vector<std::size_t>& mutant_owner) {
  MOSS_CHECK(mutants.size() == mutant_owner.size(),
             "detection: one owner index per mutant");
  std::vector<Tensor> n_e, r_e;
  for (const CircuitBatch& b : pool) {
    const Tensor h = model.node_embeddings(b);
    n_e.push_back(model.netlist_embedding(b, h).detach());
    r_e.push_back(model.rtl_embedding(b.module_text).detach());
  }
  std::vector<DetectionSample> samples;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    samples.push_back(
        {static_cast<double>(model.pair_score(r_e[i], n_e[i])), true});
    for (const std::string& text : pool[i].corrupt_texts) {
      const Tensor c_e = model.rtl_embedding(text).detach();
      samples.push_back(
          {static_cast<double>(model.pair_score(c_e, n_e[i])), false});
    }
  }
  for (std::size_t k = 0; k < mutants.size(); ++k) {
    const std::size_t owner = mutant_owner[k];
    MOSS_CHECK(owner < pool.size(), "detection: mutant owner out of range");
    const Tensor h = model.node_embeddings(mutants[k]);
    const Tensor m_e = model.netlist_embedding(mutants[k], h).detach();
    samples.push_back(
        {static_cast<double>(model.pair_score(r_e[owner], m_e)), false});
  }
  return detection_auc(samples);
}

}  // namespace moss::core
