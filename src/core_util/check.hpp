#pragma once

#include <stdexcept>
#include <string>

namespace moss {

/// Error type for precondition/invariant violations in library code.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

}  // namespace moss

/// Precondition / invariant check that stays on in release builds.
/// Library consumers get a typed exception with file:line context instead of
/// UB when they violate an API contract.
#define MOSS_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::moss::fail(std::string(__FILE__) + ":" + std::to_string(__LINE__) + \
                   ": check failed: " #cond " — " + (msg));                 \
    }                                                                       \
  } while (0)
