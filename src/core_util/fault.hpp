#pragma once

#include <algorithm>
#include <cstdint>
#include <streambuf>
#include <string>
#include <vector>

#include "core_util/check.hpp"

namespace moss::testing {

/// Deterministic fault-injection registry.
///
/// Library code marks crash/IO sites with MOSS_FAULT_POINT("site.name");
/// nothing happens unless the site is armed. Arming is either programmatic
/// (arm_fault) or via the environment:
///
///   MOSS_FAULT=trainer.pretrain.step:3,serialize.rename:1
///
/// arms each named site to fire on its n-th hit (1-based, counted across
/// the whole process). A firing site throws InjectedFault, simulating a
/// crash at exactly that point; later hits of the same site do not fire
/// again, so a resumed run in the same process completes normally.
///
/// Chaos mode: a site armed with a probability instead of a hit count
/// (arm_fault_prob, or `site:p0.05` in MOSS_FAULT) fires independently on
/// every hit with that probability, driven by a per-site seeded Rng — the
/// firing sequence is deterministic per site for a given seed. Multi-site
/// probabilistic scripts (arm_chaos) are how the chaos soak harness models
/// a flaky deployment rather than a single crash.
///
/// When no site is armed the per-hit cost is one relaxed atomic load.

/// Thrown by a firing fault point. Derives from moss::Error so generic
/// handlers treat it like any other failure; tests catch it specifically.
class InjectedFault : public Error {
 public:
  using Error::Error;
};

/// Arm `site` to fire on its `nth` hit from now (1-based). Re-arming a
/// site resets its hit counter.
void arm_fault(const std::string& site, std::uint64_t nth = 1);

/// Arm `site` to fire independently on every hit with probability
/// `probability` in [0,1], drawn from a per-site Rng seeded with `seed`.
/// Unlike nth-hit arming the site keeps firing for as long as it stays
/// armed — disarm_all_faults() (or re-arming) ends the chaos.
void arm_fault_prob(const std::string& site, double probability,
                    std::uint64_t seed = 1);

/// One entry of a probabilistic chaos script.
struct ChaosSite {
  std::string site;
  double probability = 0.0;
};

/// Arm every site of a chaos script. Each site gets an independent Rng
/// derived from `seed` and the site name, so adding or removing one site
/// does not change another site's firing sequence.
void arm_chaos(const std::vector<ChaosSite>& script, std::uint64_t seed);

/// Disarm every site and reset all hit counters. Env-armed sites are not
/// re-applied (the environment is read once per process).
void disarm_all_faults();

/// Count a hit of `site`; true exactly when the site is armed and this hit
/// is the armed one. Called by MOSS_FAULT_POINT; tests may call it directly
/// to build custom fault behaviors (short writes, bit flips) instead of a
/// thrown crash.
bool fault_fires(const char* site);

/// Hits recorded for `site` since process start (or the last re-arm/reset).
std::uint64_t fault_hits(const std::string& site);

[[noreturn]] void raise_injected_fault(const char* site);

/// A streambuf that forwards writes to `inner` but fails (short write)
/// after `limit` bytes have been accepted — simulates a disk filling up or
/// a process dying mid-write. Wrap it in a std::ostream; the stream's
/// badbit/failbit engage at the limit like a real failing file.
class ShortWriteBuf : public std::streambuf {
 public:
  ShortWriteBuf(std::streambuf* inner, std::size_t limit)
      : inner_(inner), remaining_(limit) {}

  std::size_t written() const { return written_; }

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return traits_type::not_eof(ch);
    if (remaining_ == 0) return traits_type::eof();
    --remaining_;
    ++written_;
    return inner_->sputc(static_cast<char>(ch));
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    const std::streamsize take =
        std::min<std::streamsize>(n, static_cast<std::streamsize>(remaining_));
    const std::streamsize put = take > 0 ? inner_->sputn(s, take) : 0;
    remaining_ -= static_cast<std::size_t>(put);
    written_ += static_cast<std::size_t>(put);
    return put;  // < n once the limit is reached -> stream sets badbit
  }

 private:
  std::streambuf* inner_;
  std::size_t remaining_;
  std::size_t written_ = 0;
};

}  // namespace moss::testing

/// Crash site marker: throws moss::testing::InjectedFault when armed (see
/// fault.hpp), free otherwise. Place at points where a real deployment
/// could die: optimizer steps, between checkpoint write and rename, …
#define MOSS_FAULT_POINT(site)                     \
  do {                                             \
    if (::moss::testing::fault_fires(site)) {      \
      ::moss::testing::raise_injected_fault(site); \
    }                                              \
  } while (0)
