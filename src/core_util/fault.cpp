#include "core_util/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace moss::testing {

namespace {

struct Site {
  std::uint64_t armed_at = 0;  // 0 = not armed
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// True while at least one site is armed — the fast-path gate that keeps
/// unarmed fault points at one relaxed load.
std::atomic<bool> g_any_armed{false};

void refresh_any_armed_locked(const Registry& r) {
  bool any = false;
  for (const auto& entry : r.sites) {
    if (entry.second.armed_at != 0) {
      any = true;
      break;
    }
  }
  g_any_armed.store(any, std::memory_order_relaxed);
}

/// Parse MOSS_FAULT=site:n[,site:n...] once per process. Malformed entries
/// are ignored (the variable is a test hook, not user input worth dying
/// over).
void arm_from_env_locked(Registry& r) {
  const char* env = std::getenv("MOSS_FAULT");
  if (!env) return;
  const std::string spec(env);
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0) continue;
    const std::string site = entry.substr(0, colon);
    const std::uint64_t nth =
        std::strtoull(entry.c_str() + colon + 1, nullptr, 10);
    if (nth == 0) continue;
    r.sites[site] = Site{nth, 0};
  }
  refresh_any_armed_locked(r);
}

void ensure_env_parsed_locked(Registry& r) {
  static std::once_flag once;
  std::call_once(once, [&r] { arm_from_env_locked(r); });
}

}  // namespace

void arm_fault(const std::string& site, std::uint64_t nth) {
  MOSS_CHECK(nth >= 1, "arm_fault: nth is 1-based");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  r.sites[site] = Site{nth, 0};
  refresh_any_armed_locked(r);
}

void disarm_all_faults() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);  // consume the env so it cannot re-arm later
  r.sites.clear();
  g_any_armed.store(false, std::memory_order_relaxed);
}

bool fault_fires(const char* site) {
  if (!g_any_armed.load(std::memory_order_relaxed)) {
    // Cheap common case. Note the env is parsed lazily: arm the registry
    // the first time any site could fire.
    static std::atomic<bool> env_checked{false};
    if (env_checked.load(std::memory_order_relaxed)) return false;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    ensure_env_parsed_locked(r);
    env_checked.store(true, std::memory_order_relaxed);
    if (!g_any_armed.load(std::memory_order_relaxed)) return false;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end() || it->second.armed_at == 0) return false;
  ++it->second.hits;
  return it->second.hits == it->second.armed_at;
}

std::uint64_t fault_hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

void raise_injected_fault(const char* site) {
  throw InjectedFault(std::string("injected fault at ") + site);
}

}  // namespace moss::testing
