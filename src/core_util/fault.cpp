#include "core_util/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "core_util/hash.hpp"
#include "core_util/rng.hpp"

namespace moss::testing {

namespace {

struct Site {
  std::uint64_t armed_at = 0;  // 0 = not armed (nth-hit mode)
  std::uint64_t hits = 0;
  // Probabilistic (chaos) mode: fire each hit with `probability`, driven by
  // a per-site deterministic stream. Engaged when probability > 0.
  double probability = 0.0;
  Rng rng;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// True while at least one site is armed — the fast-path gate that keeps
/// unarmed fault points at one relaxed load.
std::atomic<bool> g_any_armed{false};

void refresh_any_armed_locked(const Registry& r) {
  bool any = false;
  for (const auto& entry : r.sites) {
    if (entry.second.armed_at != 0 || entry.second.probability > 0.0) {
      any = true;
      break;
    }
  }
  g_any_armed.store(any, std::memory_order_relaxed);
}

Site prob_site(double probability, std::uint64_t seed,
               const std::string& name) {
  Site s;
  s.probability = std::min(1.0, std::max(0.0, probability));
  // Per-site stream: the same seed never makes two sites fire in lockstep.
  s.rng.reseed(seed ^ fnv1a64(name));
  return s;
}

/// Parse MOSS_FAULT=site:n[,site:n...] once per process. A value of `pX`
/// (e.g. crc.check:p0.05) arms the site probabilistically; the optional
/// MOSS_FAULT_SEED env var seeds the chaos streams. Malformed entries are
/// ignored (the variable is a test hook, not user input worth dying over).
void arm_from_env_locked(Registry& r) {
  const char* env = std::getenv("MOSS_FAULT");
  if (!env) return;
  std::uint64_t seed = 1;
  if (const char* s = std::getenv("MOSS_FAULT_SEED")) {
    const std::uint64_t v = std::strtoull(s, nullptr, 10);
    if (v != 0) seed = v;
  }
  const std::string spec(env);
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0) continue;
    const std::string site = entry.substr(0, colon);
    const std::string value = entry.substr(colon + 1);
    if (!value.empty() && value[0] == 'p') {
      const double p = std::strtod(value.c_str() + 1, nullptr);
      if (p > 0.0) r.sites[site] = prob_site(p, seed, site);
      continue;
    }
    const std::uint64_t nth = std::strtoull(value.c_str(), nullptr, 10);
    if (nth == 0) continue;
    r.sites[site] = Site{nth, 0, 0.0, Rng()};
  }
  refresh_any_armed_locked(r);
}

void ensure_env_parsed_locked(Registry& r) {
  static std::once_flag once;
  std::call_once(once, [&r] { arm_from_env_locked(r); });
}

}  // namespace

void arm_fault(const std::string& site, std::uint64_t nth) {
  MOSS_CHECK(nth >= 1, "arm_fault: nth is 1-based");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  r.sites[site] = Site{nth, 0, 0.0, Rng()};
  refresh_any_armed_locked(r);
}

void arm_fault_prob(const std::string& site, double probability,
                    std::uint64_t seed) {
  MOSS_CHECK(probability >= 0.0 && probability <= 1.0,
             "arm_fault_prob: probability must be in [0,1]");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  r.sites[site] = prob_site(probability, seed, site);
  refresh_any_armed_locked(r);
}

void arm_chaos(const std::vector<ChaosSite>& script, std::uint64_t seed) {
  for (const ChaosSite& cs : script) {
    arm_fault_prob(cs.site, cs.probability, seed);
  }
}

void disarm_all_faults() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);  // consume the env so it cannot re-arm later
  r.sites.clear();
  g_any_armed.store(false, std::memory_order_relaxed);
}

bool fault_fires(const char* site) {
  if (!g_any_armed.load(std::memory_order_relaxed)) {
    // Cheap common case. Note the env is parsed lazily: arm the registry
    // the first time any site could fire.
    static std::atomic<bool> env_checked{false};
    if (env_checked.load(std::memory_order_relaxed)) return false;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    ensure_env_parsed_locked(r);
    env_checked.store(true, std::memory_order_relaxed);
    if (!g_any_armed.load(std::memory_order_relaxed)) return false;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  if (s.probability > 0.0) {
    ++s.hits;
    return s.rng.bernoulli(s.probability);
  }
  if (s.armed_at == 0) return false;
  ++s.hits;
  return s.hits == s.armed_at;
}

std::uint64_t fault_hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

void raise_injected_fault(const char* site) {
  throw InjectedFault(std::string("injected fault at ") + site);
}

}  // namespace moss::testing
