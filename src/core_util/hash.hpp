#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace moss {

/// 64-bit FNV-1a. The content-address hash behind the serving-layer
/// embedding cache and the within-call memoization of evaluate_fep: cheap,
/// incremental, and stable across platforms (no dependence on
/// std::hash seeding).
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t seed = kFnvOffset) {
  return fnv1a64(s.data(), s.size(), seed);
}

/// Incremental content hasher. Every mix() call feeds both the value bytes
/// and the value's length, so (["ab","c"]) and (["a","bc"]) hash
/// differently — field boundaries are part of the content address.
class HashBuilder {
 public:
  HashBuilder& mix_bytes(const void* data, std::size_t len) {
    const std::uint64_t n = len;
    h_ = fnv1a64(&n, sizeof(n), h_);
    h_ = fnv1a64(data, len, h_);
    return *this;
  }
  HashBuilder& mix(std::string_view s) { return mix_bytes(s.data(), s.size()); }
  HashBuilder& mix(std::uint64_t v) { return mix_bytes(&v, sizeof(v)); }
  HashBuilder& mix(std::int64_t v) { return mix_bytes(&v, sizeof(v)); }
  HashBuilder& mix(float v) { return mix_bytes(&v, sizeof(v)); }
  HashBuilder& mix(const std::vector<float>& v) {
    return mix_bytes(v.data(), v.size() * sizeof(float));
  }
  HashBuilder& mix(const std::vector<int>& v) {
    return mix_bytes(v.data(), v.size() * sizeof(int));
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

}  // namespace moss
