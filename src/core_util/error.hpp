#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core_util/check.hpp"

namespace moss {

/// Coarse failure taxonomy for resilience policies. Transient errors are
/// worth retrying (overload, injected/flaky session faults, timeouts on the
/// way in); permanent ones are not (malformed requests, unknown names,
/// corrupt inputs) — retrying them only amplifies load.
enum class ErrorClass : std::uint8_t {
  kPermanent = 0,
  kTransient = 1,
};

/// An Error carrying a chain of structured key/value context frames
/// (file, section, parameter, …) in addition to the human-readable message.
/// what() renders the message followed by the chain:
///
///   checkpoint section crc mismatch [file=moss.ckpt, section=param:gnn.w]
///
/// Handlers that want to react to a specific frame (a CLI printing the
/// offending path, a test asserting the failing section) read context()
/// instead of parsing the message.
class ContextError : public Error {
 public:
  using Frame = std::pair<std::string, std::string>;

  ContextError(const std::string& msg, std::vector<Frame> ctx,
               ErrorClass cls = ErrorClass::kPermanent)
      : Error(render(msg, ctx)), msg_(msg), ctx_(std::move(ctx)), cls_(cls) {}

  explicit ContextError(const std::string& msg)
      : ContextError(msg, {}) {}

  /// The message without the rendered context suffix.
  const std::string& message() const { return msg_; }
  const std::vector<Frame>& context() const { return ctx_; }
  ErrorClass error_class() const { return cls_; }
  bool transient() const { return cls_ == ErrorClass::kTransient; }

  /// Value of the first frame with `key`, or "" if absent.
  std::string context_value(const std::string& key) const {
    for (const Frame& f : ctx_) {
      if (f.first == key) return f.second;
    }
    return {};
  }

  static std::string render(const std::string& msg,
                            const std::vector<Frame>& ctx) {
    if (ctx.empty()) return msg;
    std::string out = msg + " [";
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      if (i) out += ", ";
      out += ctx[i].first + "=" + ctx[i].second;
    }
    out += "]";
    return out;
  }

 private:
  std::string msg_;
  std::vector<Frame> ctx_;
  ErrorClass cls_ = ErrorClass::kPermanent;
};

/// Classification of an arbitrary in-flight exception. ContextErrors carry
/// their class explicitly; anything untyped is treated as permanent — only
/// failures a thrower deliberately marked transient are retry candidates
/// (moss::testing::InjectedFault is special-cased by the serve layer, which
/// knows the fault registry).
inline ErrorClass error_class(const std::exception& e) {
  const auto* ce = dynamic_cast<const ContextError*>(&e);
  return ce != nullptr ? ce->error_class() : ErrorClass::kPermanent;
}

/// Builder that accumulates context frames as an operation descends through
/// layers (file → section → parameter), then throws a ContextError carrying
/// the whole chain:
///
///   ErrorContext ctx;
///   ctx.add("file", path);
///   ...
///   ctx.add("section", name);
///   if (bad) ctx.fail("crc mismatch");
class ErrorContext {
 public:
  ErrorContext& add(std::string key, std::string value) {
    frames_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Replace the value of `key` if present, else append the frame.
  ErrorContext& set(const std::string& key, std::string value) {
    for (auto& f : frames_) {
      if (f.first == key) {
        f.second = std::move(value);
        return *this;
      }
    }
    return add(key, std::move(value));
  }

  ErrorContext& drop(const std::string& key) {
    for (std::size_t i = frames_.size(); i > 0; --i) {
      if (frames_[i - 1].first == key) {
        frames_.erase(frames_.begin() + static_cast<std::ptrdiff_t>(i - 1));
      }
    }
    return *this;
  }

  const std::vector<ContextError::Frame>& frames() const { return frames_; }

  /// Mark the eventual failure as transient (retry-worthy): overload,
  /// flaky-dependency and timeout-shaped errors. Permanent is the default.
  ErrorContext& transient() {
    cls_ = ErrorClass::kTransient;
    return *this;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw ContextError(msg, frames_, cls_);
  }

  void check(bool cond, const std::string& msg) const {
    if (!cond) fail(msg);
  }

 private:
  std::vector<ContextError::Frame> frames_;
  ErrorClass cls_ = ErrorClass::kPermanent;
};

}  // namespace moss
