#include "core_util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace moss {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace moss
