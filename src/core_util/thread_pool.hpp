#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace moss {

/// Fixed-size worker pool with deterministic chunked scheduling.
///
/// parallel_for(begin, end, fn) splits the index range into at most size()
/// contiguous chunks and assigns chunk c to worker c statically — no work
/// stealing, no atomic hand-out — so the set of indices each worker runs is
/// a pure function of (range, pool size). Since every index writes only its
/// own output slot, results are bit-identical to the serial loop at any
/// thread count; the determinism contract of the training and clustering
/// paths (see DESIGN.md) builds on this.
///
/// The calling thread executes chunk 0 itself, so ThreadPool(1) spawns no
/// threads and parallel_for degenerates to the plain serial loop. Exceptions
/// thrown by `fn` are captured per chunk and the lowest-chunk one is
/// rethrown on the caller after the whole range finished.
///
/// A pool is cheap enough to construct per training run; hot loops should
/// still reuse one instance across calls to avoid thread churn.
class ThreadPool {
 public:
  /// `threads` = total worker count including the caller; 0 picks
  /// hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers (spawned threads + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(i) for every i in [begin, end). Blocks until done. Safe to call
  /// from inside a worker (runs the nested range serially on that worker).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// parallel_for collecting fn(i) into a vector (slot i written only by
  /// the worker owning index i). The result type need not be
  /// default-constructible.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using T = decltype(fn(std::size_t{0}));
    std::vector<std::optional<T>> slots(n);
    parallel_for(0, n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<T> out;
    out.reserve(n);
    for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  static std::size_t hardware_threads();

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t num_chunks = 0;
  };

  void worker_loop(std::size_t worker);
  /// Run chunk `chunk` of `job`, capturing any exception into errors_.
  void run_chunk(const Job& job, std::size_t chunk) noexcept;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job job_;
  std::uint64_t generation_ = 0;  ///< bumped per parallel_for dispatch
  std::size_t pending_ = 0;       ///< workers still to finish this job
  std::vector<std::exception_ptr> errors_;  ///< one slot per chunk
  bool stop_ = false;
};

}  // namespace moss
