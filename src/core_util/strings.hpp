#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace moss {

/// Split `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Lowercase an ASCII string.
std::string to_lower(std::string_view s);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// FNV-1a 64-bit hash of a string (stable across platforms/runs).
std::uint64_t fnv1a64(std::string_view s);

}  // namespace moss
