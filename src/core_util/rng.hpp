#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace moss {

/// Deterministic, seedable PRNG (xoshiro256**). All stochastic components in
/// the library take an explicit Rng (or a seed) so every experiment is
/// bit-reproducible; nothing reads global entropy.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (caches the second deviate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(uniform_u64(size));
  }

  /// Derive an independent child stream (for parallel-safe determinism).
  Rng fork() { return Rng((*this)()); }

  /// Serializable snapshot of the full generator state (xoshiro words plus
  /// the Box–Muller cache) — restoring it resumes the stream bit-exactly.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached = false;
    double cached = 0.0;
  };

  State save_state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.has_cached = has_cached_;
    st.cached = cached_;
    return st;
  }

  void load_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    has_cached_ = st.has_cached;
    cached_ = st.cached;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace moss
