#include "core_util/thread_pool.hpp"

#include <algorithm>

namespace moss {

namespace {

/// Set while a pool worker (or the caller inside parallel_for) is running a
/// chunk; nested parallel_for calls then execute serially instead of
/// deadlocking on the already-busy pool.
thread_local bool tl_in_parallel_region = false;

}  // namespace

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_chunk(const Job& job, std::size_t chunk) noexcept {
  const std::size_t n = job.end - job.begin;
  const std::size_t len = (n + job.num_chunks - 1) / job.num_chunks;
  const std::size_t lo = job.begin + chunk * len;
  const std::size_t hi = std::min(lo + len, job.end);
  tl_in_parallel_region = true;
  try {
    for (std::size_t i = lo; i < hi; ++i) (*job.fn)(i);
  } catch (...) {
    errors_[chunk] = std::current_exception();
  }
  tl_in_parallel_region = false;
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    // Worker w owns chunk w+1 (the caller runs chunk 0).
    if (worker + 1 < job.num_chunks) run_chunk(job, worker + 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(size(), n);
  if (chunks == 1 || tl_in_parallel_region) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  errors_.assign(chunks, nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = Job{&fn, begin, end, chunks};
    pending_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunk(job_, 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  for (std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace moss
