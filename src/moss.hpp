#pragma once

/// Umbrella header: the public API of the MOSS library.
///
///   #include "moss.hpp"
///
/// brings in the full pipeline — RTL parsing/lint, synthesis, simulation
/// (with VCD dump and fault injection), STA, power, formal equivalence,
/// the language-model encoder, the MOSS model with training/evaluation/
/// checkpointing, the workflow facade, and the DeepSeq2-style baseline.
/// Individual headers can be included instead for faster builds.

#include "baseline/deepseq.hpp"      // IWYU pragma: export
#include "bdd/bdd.hpp"               // IWYU pragma: export
#include "bdd/formal.hpp"            // IWYU pragma: export
#include "cell/library.hpp"          // IWYU pragma: export
#include "cluster/client.hpp"        // IWYU pragma: export
#include "cluster/ring.hpp"          // IWYU pragma: export
#include "cluster/router.hpp"        // IWYU pragma: export
#include "cluster/segment.hpp"       // IWYU pragma: export
#include "cluster/supervisor.hpp"    // IWYU pragma: export
#include "clustering/clustering.hpp" // IWYU pragma: export
#include "core/evaluate.hpp"         // IWYU pragma: export
#include "core/features.hpp"         // IWYU pragma: export
#include "core/model.hpp"            // IWYU pragma: export
#include "core/trainer.hpp"          // IWYU pragma: export
#include "core/workflow.hpp"         // IWYU pragma: export
#include "core_util/rng.hpp"         // IWYU pragma: export
#include "core_util/strings.hpp"     // IWYU pragma: export
#include "data/corrupt.hpp"          // IWYU pragma: export
#include "data/dataset.hpp"          // IWYU pragma: export
#include "data/generators.hpp"       // IWYU pragma: export
#include "data/mutate.hpp"           // IWYU pragma: export
#include "data/stats.hpp"            // IWYU pragma: export
#include "gnn/two_phase_gnn.hpp"     // IWYU pragma: export
#include "lm/encoder.hpp"            // IWYU pragma: export
#include "netlist/netlist.hpp"       // IWYU pragma: export
#include "netlist/writer.hpp"        // IWYU pragma: export
#include "plan/plan.hpp"             // IWYU pragma: export
#include "power/power.hpp"           // IWYU pragma: export
#include "rtl/eval.hpp"              // IWYU pragma: export
#include "rtl/lint.hpp"              // IWYU pragma: export
#include "rtl/parser.hpp"            // IWYU pragma: export
#include "rtl/printer.hpp"           // IWYU pragma: export
#include "rtl/prompts.hpp"           // IWYU pragma: export
#include "sat/mine.hpp"              // IWYU pragma: export
#include "sat/oracle.hpp"            // IWYU pragma: export
#include "sat/solver.hpp"            // IWYU pragma: export
#include "serve/cache.hpp"           // IWYU pragma: export
#include "serve/engine.hpp"          // IWYU pragma: export
#include "serve/metrics.hpp"         // IWYU pragma: export
#include "serve/protocol.hpp"        // IWYU pragma: export
#include "serve/registry.hpp"        // IWYU pragma: export
#include "sim/activity_io.hpp"       // IWYU pragma: export
#include "sim/equivalence.hpp"       // IWYU pragma: export
#include "sim/fault.hpp"             // IWYU pragma: export
#include "sim/simulator.hpp"         // IWYU pragma: export
#include "sim/vcd.hpp"               // IWYU pragma: export
#include "sim/xsim.hpp"              // IWYU pragma: export
#include "sta/sta.hpp"               // IWYU pragma: export
#include "synth/synthesize.hpp"      // IWYU pragma: export
#include "tensor/serialize.hpp"      // IWYU pragma: export
#include "tensor/tensor.hpp"         // IWYU pragma: export
