#include "lm/tokenizer.hpp"

#include <cctype>

#include "core_util/strings.hpp"

namespace moss::lm {

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident(c)) {
      std::size_t e = i;
      while (e < text.size() && is_ident(text[e])) ++e;
      std::string word = to_lower(text.substr(i, e - i));
      // Split a trailing digit run: "s1" -> "s","1"; keeps pure numbers.
      std::size_t d = word.size();
      while (d > 0 && std::isdigit(static_cast<unsigned char>(word[d - 1]))) {
        --d;
      }
      if (d > 0 && d < word.size()) {
        out.push_back(word.substr(0, d));
        out.push_back(word.substr(d));
      } else {
        out.push_back(std::move(word));
      }
      i = e;
      continue;
    }
    // Two-char operators first.
    static const char* kTwo[] = {"<=", ">=", "==", "!=", "<<", ">>"};
    bool matched = false;
    for (const char* p : kTwo) {
      if (text.substr(i, 2) == p) {
        out.emplace_back(p);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    // Single punctuation becomes its own token (skip pure noise).
    if (c != ',' && c != ';' && c != '.') out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

std::vector<int> tokenize(std::string_view text, const TokenizerConfig& cfg) {
  const auto words = tokenize_words(text);
  std::vector<int> ids;
  ids.reserve(words.size());
  for (const std::string& w : words) {
    ids.push_back(static_cast<int>(fnv1a64(w) % cfg.vocab_size));
  }
  return ids;
}

}  // namespace moss::lm
