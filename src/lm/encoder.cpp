#include "lm/encoder.hpp"

#include <cmath>

#include "core_util/check.hpp"
#include "core_util/strings.hpp"
#include "tensor/kernels.hpp"

namespace moss::lm {

using tensor::Tensor;

TextEncoder::TextEncoder(EncoderConfig cfg) : cfg_(cfg) {
  Rng rng(cfg_.seed);
  table_ = Tensor::randn(cfg_.vocab_size, cfg_.dim, rng,
                         1.0f / std::sqrt(static_cast<float>(cfg_.dim)),
                         /*requires_grad=*/false);
}

void TextEncoder::set_token_weights(std::vector<float> w) {
  MOSS_CHECK(w.size() == cfg_.vocab_size,
             "token weights must cover the vocabulary");
  token_weight_ = std::move(w);
  invalidate_cache();
}

Tensor TextEncoder::encode(std::string_view text) const {
  const std::uint64_t key = fnv1a64(text);
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }

  const TokenizerConfig tok_cfg{cfg_.vocab_size};
  const std::vector<int> ids = tokenize(text, tok_cfg);
  Tensor out = Tensor::zeros(1, cfg_.dim);
  if (!ids.empty()) {
    // Vectorized weighted row sum over the embedding table. The kernel's
    // accumulation order matches the loop it replaced, so cached embeddings
    // are bit-identical across the switch.
    float total_w = 0.0f;
    const float* weights = nullptr;
    std::vector<float> ws;
    if (!token_weight_.empty()) {
      ws.resize(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ws[i] = token_weight_[static_cast<std::size_t>(ids[i])];
        total_w += ws[i];
      }
      weights = ws.data();
    } else {
      total_w = static_cast<float>(ids.size());
    }
    tensor::kernels::rows_weighted_sum(table_.data().data(), cfg_.dim,
                                       ids.data(), weights, ids.size(),
                                       out.data().data());
    if (total_w > 0.0f) {
      for (std::size_t d = 0; d < cfg_.dim; ++d) out.data()[d] /= total_w;
    }
  }
  const std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.emplace(key, out);
  return out;
}

Tensor TextEncoder::encode_centered(std::string_view text) const {
  Tensor out = encode(text).detach();
  if (!center_.empty()) {
    for (std::size_t d = 0; d < cfg_.dim; ++d) out.data()[d] -= center_[d];
  }
  return out;
}

void TextEncoder::set_center(std::vector<float> center) {
  MOSS_CHECK(center.size() == cfg_.dim, "center must have encoder dim");
  center_ = std::move(center);
  invalidate_cache();
}

Tensor TextEncoder::encode_batch(const std::vector<std::string>& texts) const {
  MOSS_CHECK(!texts.empty(), "encode_batch of nothing");
  Tensor out = Tensor::zeros(texts.size(), cfg_.dim);
  for (std::size_t i = 0; i < texts.size(); ++i) {
    const Tensor e = encode(texts[i]);
    std::copy(e.data().begin(), e.data().end(),
              out.data().begin() +
                  static_cast<std::ptrdiff_t>(i * cfg_.dim));
  }
  return out;
}

FineTuneReport fine_tune(TextEncoder& enc,
                         const std::vector<std::string>& corpus,
                         const FineTuneConfig& cfg, Rng& rng) {
  const std::size_t V = enc.config().vocab_size;
  const std::size_t D = enc.config().dim;
  const TokenizerConfig tok_cfg{V};

  // Tokenize the whole corpus once; each document is its own window scope.
  std::vector<std::vector<int>> docs;
  docs.reserve(corpus.size());
  for (const std::string& text : corpus) {
    auto ids = tokenize(text, tok_cfg);
    if (ids.size() >= 2) docs.push_back(std::move(ids));
  }
  MOSS_CHECK(!docs.empty(), "fine_tune: corpus has no usable documents");

  // IDF pooling weights: idf(t) = log(1 + N/(1 + df(t))).
  {
    std::vector<std::size_t> df(V, 0);
    for (const auto& doc : docs) {
      std::vector<char> seen(V, 0);
      for (const int id : doc) {
        if (!seen[static_cast<std::size_t>(id)]) {
          seen[static_cast<std::size_t>(id)] = 1;
          ++df[static_cast<std::size_t>(id)];
        }
      }
    }
    std::vector<float> idf(V, 1.0f);
    const double n_docs = static_cast<double>(docs.size());
    for (std::size_t t = 0; t < V; ++t) {
      idf[t] = static_cast<float>(
          std::log(1.0 + n_docs / (1.0 + static_cast<double>(df[t]))));
    }
    enc.set_token_weights(std::move(idf));
  }

  // Separate "context" table (standard SGNS uses two tables; the input
  // table becomes the embedding).
  Rng init_rng(enc.config().seed ^ 0x5eed);
  std::vector<float> ctx(V * D);
  for (float& v : ctx) {
    v = static_cast<float>(init_rng.normal(0.0, 0.01));
  }
  auto& emb = enc.table().data();

  FineTuneReport report;
  const auto sigmoid = [](float x) {
    return 1.0f / (1.0f + std::exp(-x));
  };

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    double loss_sum = 0.0;
    std::size_t pairs = 0;
    // Sample (doc, position, offset) uniformly until budget is spent.
    while (pairs < cfg.max_pairs_per_epoch) {
      const auto& doc = docs[rng.index(docs.size())];
      const std::size_t pos = rng.index(doc.size());
      const int off =
          static_cast<int>(rng.uniform_int(1, cfg.window)) *
          (rng.bernoulli(0.5) ? 1 : -1);
      const std::int64_t cpos = static_cast<std::int64_t>(pos) + off;
      if (cpos < 0 || cpos >= static_cast<std::int64_t>(doc.size())) continue;
      const std::size_t center = static_cast<std::size_t>(doc[pos]);
      const std::size_t context =
          static_cast<std::size_t>(doc[static_cast<std::size_t>(cpos)]);
      ++pairs;

      float* u = emb.data() + center * D;

      // One positive + negatives; SGD on the pairwise logistic loss.
      for (int k = -1; k < cfg.negatives; ++k) {
        const std::size_t c =
            k < 0 ? context : static_cast<std::size_t>(rng.index(V));
        const float label = k < 0 ? 1.0f : 0.0f;
        float* v = ctx.data() + c * D;
        float dot = 0.0f;
        for (std::size_t d = 0; d < D; ++d) dot += u[d] * v[d];
        const float p = sigmoid(dot);
        const float g = cfg.lr * (label - p);
        for (std::size_t d = 0; d < D; ++d) {
          const float ud = u[d];
          u[d] += g * v[d];
          v[d] += g * ud;
        }
        if (k < 0) {
          loss_sum -= std::log(std::max(p, 1e-12f));
        } else {
          loss_sum -= std::log(std::max(1.0f - p, 1e-12f));
        }
      }
    }
    report.epoch_loss.push_back(loss_sum / static_cast<double>(pairs));
  }
  enc.invalidate_cache();

  // Corpus-mean centering vector for encode_centered().
  {
    std::vector<double> mean(D, 0.0);
    for (const std::string& text : corpus) {
      const tensor::Tensor e = enc.encode(text);
      for (std::size_t d = 0; d < D; ++d) mean[d] += e.data()[d];
    }
    std::vector<float> center(D);
    for (std::size_t d = 0; d < D; ++d) {
      center[d] =
          static_cast<float>(mean[d] / static_cast<double>(corpus.size()));
    }
    enc.set_center(std::move(center));
  }
  return report;
}

}  // namespace moss::lm
