#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core_util/rng.hpp"
#include "lm/tokenizer.hpp"
#include "tensor/tensor.hpp"

namespace moss::lm {

/// Configuration of the RTL language model stand-in.
struct EncoderConfig {
  std::size_t vocab_size = 4096;
  std::size_t dim = 32;          ///< embedding dimension d_r
  std::uint64_t seed = 0xC0DE;   ///< init seed (determinism)
};

/// Text encoder standing in for the fine-tuned Yi-Coder LLM of the paper.
/// Architecture: hashed-token embedding table -> mean pooling over tokens.
/// What MOSS consumes from the LLM is exactly this interface: a fixed-size
/// deterministic embedding per text snippet whose geometry reflects
/// functional similarity — which fine_tune() (skip-gram over the RTL
/// corpus) provides.
///
/// encode() results are cached by content hash; the cache is cleared when
/// the table changes (fine-tuning invalidates it).
class TextEncoder {
 public:
  explicit TextEncoder(EncoderConfig cfg = {});

  // Movable despite the cache mutex (each object carries its own mutex;
  // moving while another thread uses the source is a caller error anyway).
  TextEncoder(TextEncoder&& other) noexcept
      : cfg_(std::move(other.cfg_)),
        table_(std::move(other.table_)),
        token_weight_(std::move(other.token_weight_)),
        center_(std::move(other.center_)),
        cache_(std::move(other.cache_)) {}
  TextEncoder& operator=(TextEncoder&& other) noexcept {
    if (this != &other) {
      cfg_ = std::move(other.cfg_);
      table_ = std::move(other.table_);
      token_weight_ = std::move(other.token_weight_);
      center_ = std::move(other.center_);
      cache_ = std::move(other.cache_);
    }
    return *this;
  }

  const EncoderConfig& config() const { return cfg_; }
  std::size_t dim() const { return cfg_.dim; }

  /// Embedding of one text: 1×d, detached (the LLM is frozen downstream).
  tensor::Tensor encode(std::string_view text) const;
  /// Batch encode: N×d.
  tensor::Tensor encode_batch(const std::vector<std::string>& texts) const;
  /// Corpus-mean-centered embedding (see set_center): the variant used for
  /// cross-modal retrieval, where shared boilerplate must not dominate the
  /// angular geometry. Features keep the raw encode() embeddings.
  tensor::Tensor encode_centered(std::string_view text) const;

  /// Trainable embedding table (vocab × d) — exposed for fine-tuning.
  tensor::Tensor& table() { return table_; }
  const tensor::Tensor& table() const { return table_; }
  void invalidate_cache() {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.clear();
  }

  /// Per-token pooling weights (IDF-style). fine_tune() sets these from
  /// corpus statistics so ubiquitous tokens ("module", "assign", "=") stop
  /// dominating the mean pool and text embeddings become discriminative —
  /// the practical effect of fine-tuning a real LM on domain text.
  void set_token_weights(std::vector<float> w);
  const std::vector<float>& token_weights() const { return token_weight_; }

  /// Centering vector used by encode_centered() ("all-but-the-top"
  /// post-processing). fine_tune() sets it to the corpus mean so embeddings
  /// of different designs spread out angularly for retrieval.
  void set_center(std::vector<float> center);
  const std::vector<float>& center() const { return center_; }

 private:
  EncoderConfig cfg_;
  tensor::Tensor table_;
  std::vector<float> token_weight_;  ///< empty = uniform
  std::vector<float> center_;        ///< empty = no centering
  /// encode() is called from parallel batch-building and training workers;
  /// the content-hash cache is the encoder's only mutable state, so it is
  /// guarded by a mutex (the embedding compute itself runs unlocked).
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<std::uint64_t, tensor::Tensor> cache_;
};

/// Skip-gram-with-negative-sampling fine-tuning over an RTL corpus: tokens
/// that co-occur in RTL text (register names with their roles, operators
/// with their operand patterns, cell names with their functions) end up
/// close in embedding space — the property the paper obtains by LoRA
/// fine-tuning the LLM on 31,701 RTL designs.
struct FineTuneConfig {
  int epochs = 3;
  int window = 4;          ///< context window (tokens each side)
  int negatives = 4;       ///< negative samples per positive
  float lr = 0.05f;
  std::size_t max_pairs_per_epoch = 200000;
};

struct FineTuneReport {
  std::vector<double> epoch_loss;
};

FineTuneReport fine_tune(TextEncoder& enc,
                         const std::vector<std::string>& corpus,
                         const FineTuneConfig& cfg, Rng& rng);

}  // namespace moss::lm
