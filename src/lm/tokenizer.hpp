#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace moss::lm {

/// Hashing word tokenizer for RTL text and cell descriptions. Splits on
/// whitespace/punctuation (keeping operators like "<=", "^" as tokens),
/// lowercases, splits trailing digit runs off identifiers ("count3" ->
/// "count", "3") so bit indices and sized literals share tokens, then hashes
/// each token into a fixed vocabulary of buckets.
///
/// Deterministic and dependency-free — the stand-in for the LLM's BPE
/// tokenizer; collisions are rare enough at the default vocab size for the
/// embedding geometry to stay informative.
struct TokenizerConfig {
  std::size_t vocab_size = 4096;
};

/// Split text into string tokens (exposed for tests and corpus statistics).
std::vector<std::string> tokenize_words(std::string_view text);

/// Full pipeline: words -> hashed token ids in [0, vocab_size).
std::vector<int> tokenize(std::string_view text, const TokenizerConfig& cfg);

}  // namespace moss::lm
