#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace moss::synth {

using netlist::Netlist;
using netlist::NodeId;

/// Bit-level construction kit over a Netlist. All combinational primitives
/// constant-fold (through TIE cells), simplify trivial identities
/// (x&x, x^x, mux with equal arms, ...) and structurally hash, so the
/// emitted netlist is already lightly optimized — mirroring what Design
/// Compiler does during elaboration.
///
/// A "word" is a vector of bit NodeIds, LSB first.
class GateBuilder {
 public:
  explicit GateBuilder(Netlist& nl) : nl_(&nl) {}

  Netlist& netlist() { return *nl_; }

  // -- constants ------------------------------------------------------------
  NodeId bit_const(bool v);
  std::vector<NodeId> word_const(int width, std::uint64_t value);
  /// If the node is a tie cell, its constant value.
  std::optional<bool> const_value(NodeId n) const;

  // -- bit primitives ---------------------------------------------------------
  NodeId not_(NodeId a);
  NodeId and2(NodeId a, NodeId b);
  NodeId or2(NodeId a, NodeId b);
  NodeId xor2(NodeId a, NodeId b);
  NodeId xnor2(NodeId a, NodeId b);
  NodeId mux2(NodeId sel, NodeId f, NodeId t);  ///< sel ? t : f
  NodeId xor3(NodeId a, NodeId b, NodeId c);
  NodeId maj3(NodeId a, NodeId b, NodeId c);
  NodeId and_n(std::vector<NodeId> bits);  ///< tree reduction
  NodeId or_n(std::vector<NodeId> bits);
  NodeId xor_n(std::vector<NodeId> bits);

  // -- word operations (widths must match where applicable) ----------------
  std::vector<NodeId> not_word(const std::vector<NodeId>& a);
  std::vector<NodeId> and_word(const std::vector<NodeId>& a,
                               const std::vector<NodeId>& b);
  std::vector<NodeId> or_word(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b);
  std::vector<NodeId> xor_word(const std::vector<NodeId>& a,
                               const std::vector<NodeId>& b);
  /// sel ? t : f, bitwise.
  std::vector<NodeId> mux_word(NodeId sel, const std::vector<NodeId>& f,
                               const std::vector<NodeId>& t);
  /// a + b (+ carry_in), truncated to width(a).
  std::vector<NodeId> add(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& b,
                          NodeId carry_in = netlist::kInvalidNode);
  std::vector<NodeId> sub(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& b);
  std::vector<NodeId> neg(const std::vector<NodeId>& a);
  /// a * b truncated to width(a) (widths must match; pre-extend for
  /// widening multiplication — constant high bits fold away).
  std::vector<NodeId> mul(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& b);
  NodeId eq(const std::vector<NodeId>& a, const std::vector<NodeId>& b);
  /// unsigned a < b
  NodeId ult(const std::vector<NodeId>& a, const std::vector<NodeId>& b);
  /// unsigned a <= b
  NodeId ule(const std::vector<NodeId>& a, const std::vector<NodeId>& b);
  /// Shift by a variable amount (logarithmic barrel shifter).
  std::vector<NodeId> shl(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& amount);
  std::vector<NodeId> shr(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& amount);

  /// Number of cells created so far (excluding ports).
  std::size_t cells_created() const { return nl_->num_cells(); }

 private:
  NodeId emit(const std::string& type, std::vector<NodeId> fanins);
  std::string fresh_name(const std::string& type);

  Netlist* nl_;
  NodeId tie0_ = netlist::kInvalidNode;
  NodeId tie1_ = netlist::kInvalidNode;
  /// structural-hash table: (cell type id, canonical fanins) -> node
  std::map<std::pair<cell::CellTypeId, std::vector<NodeId>>, NodeId> strash_;
  std::size_t name_counter_ = 0;
};

}  // namespace moss::synth
