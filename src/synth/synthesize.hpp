#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "rtl/module.hpp"

namespace moss::synth {

/// Options controlling the synthesis flow (the stand-in for Design Compiler
/// compile_ultra). Each optimization can be toggled off for ablations and
/// for generating "multiple rounds of optimization" dataset variants.
struct SynthOptions {
  bool merge_gate_trees = true;   ///< AND2/OR2 chains -> AND3/AND4/OR3/OR4
  bool fuse_inverters = true;     ///< INV+gate -> NAND/NOR/XNOR/AOI/OAI
  bool sweep_dead_logic = true;   ///< drop cells with no path to any output
  bool insert_buffers = true;     ///< fix max-load violations with BUF trees
  /// Suffix appended to the netlist name (dataset variants).
  std::string name_suffix;
};

/// Synthesize an RTL module into a standard-cell netlist. The result is
/// finalized, functionally equivalent to rtl::Evaluator semantics (verified
/// by tests/synth_test.cpp), and carries per-DFF `rtl_register` provenance
/// ("reg[bit]") used by the register-to-DFF alignment task.
netlist::Netlist synthesize(const rtl::Module& m,
                            const cell::CellLibrary& lib,
                            const SynthOptions& opts = {});

/// Individual rebuild passes (exposed for tests and ablation benches).
/// Each takes a finalized netlist and returns a new finalized netlist.
netlist::Netlist merge_gate_trees(const netlist::Netlist& src);
netlist::Netlist fuse_inverters(const netlist::Netlist& src);
netlist::Netlist sweep_dead_logic(const netlist::Netlist& src);
netlist::Netlist insert_buffers(const netlist::Netlist& src);

}  // namespace moss::synth
