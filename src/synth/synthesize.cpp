#include "synth/synthesize.hpp"

#include <unordered_map>

#include "core_util/check.hpp"
#include "core_util/strings.hpp"
#include "synth/gate_builder.hpp"

namespace moss::synth {

using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;
using netlist::NodeKind;

namespace {

using Word = std::vector<NodeId>;

/// Lowers word-level RTL expressions into gates via a GateBuilder.
class Lowerer {
 public:
  Lowerer(const rtl::Module& m, GateBuilder& gb) : m_(m), gb_(gb) {}

  void define(const std::string& symbol, Word bits) {
    env_.emplace(symbol, std::move(bits));
  }

  const Word& lookup(const std::string& symbol) const {
    const auto it = env_.find(symbol);
    MOSS_CHECK(it != env_.end(), "symbol not lowered yet: " + symbol);
    return it->second;
  }

  Word lower(rtl::ExprId id) {
    const rtl::Expr& e = m_.arena.at(id);
    using rtl::ExprOp;
    switch (e.op) {
      case ExprOp::kConst:
        return gb_.word_const(e.width, e.value);
      case ExprOp::kVar: {
        const Word& w = lookup(e.var);
        MOSS_CHECK(static_cast<int>(w.size()) == e.width,
                   "lowered width mismatch for " + e.var);
        return w;
      }
      case ExprOp::kNot:
        return gb_.not_word(lower(e.args[0]));
      case ExprOp::kNeg:
        return gb_.neg(lower(e.args[0]));
      case ExprOp::kRedAnd:
        return {gb_.and_n(lower(e.args[0]))};
      case ExprOp::kRedOr:
        return {gb_.or_n(lower(e.args[0]))};
      case ExprOp::kRedXor:
        return {gb_.xor_n(lower(e.args[0]))};
      case ExprOp::kAnd:
        return gb_.and_word(lower(e.args[0]), lower(e.args[1]));
      case ExprOp::kOr:
        return gb_.or_word(lower(e.args[0]), lower(e.args[1]));
      case ExprOp::kXor:
        return gb_.xor_word(lower(e.args[0]), lower(e.args[1]));
      case ExprOp::kAdd:
        return gb_.add(lower(e.args[0]), lower(e.args[1]));
      case ExprOp::kSub:
        return gb_.sub(lower(e.args[0]), lower(e.args[1]));
      case ExprOp::kMul:
        return gb_.mul(lower(e.args[0]), lower(e.args[1]));
      case ExprOp::kShl: {
        const Word a = lower(e.args[0]);
        const rtl::Expr& sh = m_.arena.at(e.args[1]);
        if (sh.op == ExprOp::kConst) return const_shift(a, sh.value, true);
        return gb_.shl(a, lower(e.args[1]));
      }
      case ExprOp::kShr: {
        const Word a = lower(e.args[0]);
        const rtl::Expr& sh = m_.arena.at(e.args[1]);
        if (sh.op == ExprOp::kConst) return const_shift(a, sh.value, false);
        return gb_.shr(a, lower(e.args[1]));
      }
      case ExprOp::kEq:
        return {gb_.eq(lower(e.args[0]), lower(e.args[1]))};
      case ExprOp::kNe:
        return {gb_.not_(gb_.eq(lower(e.args[0]), lower(e.args[1])))};
      case ExprOp::kLt:
        return {gb_.ult(lower(e.args[0]), lower(e.args[1]))};
      case ExprOp::kLe:
        return {gb_.ule(lower(e.args[0]), lower(e.args[1]))};
      case ExprOp::kMux: {
        const Word sel = lower(e.args[0]);
        return gb_.mux_word(sel[0], lower(e.args[2]), lower(e.args[1]));
      }
      case ExprOp::kBit: {
        const Word a = lower(e.args[0]);
        return {a[static_cast<std::size_t>(e.lo)]};
      }
      case ExprOp::kSlice: {
        const Word a = lower(e.args[0]);
        return Word(a.begin() + e.lo, a.begin() + e.hi + 1);
      }
      case ExprOp::kConcat: {
        Word out;
        out.reserve(static_cast<std::size_t>(e.width));
        // args are MSB-first; words are LSB-first.
        for (auto it = e.args.rbegin(); it != e.args.rend(); ++it) {
          const Word part = lower(*it);
          out.insert(out.end(), part.begin(), part.end());
        }
        return out;
      }
      case ExprOp::kZext: {
        Word a = lower(e.args[0]);
        while (static_cast<int>(a.size()) < e.width) {
          a.push_back(gb_.bit_const(false));
        }
        return a;
      }
      case ExprOp::kSext: {
        Word a = lower(e.args[0]);
        const NodeId sign = a.back();
        while (static_cast<int>(a.size()) < e.width) a.push_back(sign);
        return a;
      }
    }
    fail("unreachable rtl op in lowering");
  }

 private:
  Word const_shift(const Word& a, std::uint64_t k, bool left) {
    const std::size_t w = a.size();
    Word out(w, gb_.bit_const(false));
    for (std::size_t i = 0; i < w; ++i) {
      if (left) {
        if (i >= k) out[i] = a[i - k];
      } else {
        if (i + k < w) out[i] = a[i + k];
      }
    }
    return out;
  }

  const rtl::Module& m_;
  GateBuilder& gb_;
  std::unordered_map<std::string, Word> env_;
};

std::string bit_name(const std::string& base, int width, int i) {
  return width == 1 ? base : base + "[" + std::to_string(i) + "]";
}

Netlist elaborate(const rtl::Module& m, const cell::CellLibrary& lib) {
  m.validate();
  Netlist nl(lib, m.name);
  GateBuilder gb(nl);
  Lowerer lo(m, gb);

  // Primary inputs, bit-blasted.
  for (const rtl::Port& p : m.inputs) {
    Word bits(static_cast<std::size_t>(p.width));
    for (int i = 0; i < p.width; ++i) {
      bits[static_cast<std::size_t>(i)] =
          nl.add_input(bit_name(p.name, p.width, i));
    }
    lo.define(p.name, std::move(bits));
  }

  // Flops first (with dangling pins) so feedback references resolve.
  struct FlopPlan {
    NodeId node;
    bool fold_reset_high;  ///< reset-to-1 handled in D logic
    bool has_enable_pin;
    bool has_reset_pin;
  };
  std::vector<std::vector<FlopPlan>> flop_plans(m.regs.size());
  for (std::size_t ri = 0; ri < m.regs.size(); ++ri) {
    const rtl::Register& r = m.regs[ri];
    Word q(static_cast<std::size_t>(r.width));
    flop_plans[ri].resize(static_cast<std::size_t>(r.width));
    for (int i = 0; i < r.width; ++i) {
      const bool rv = (r.reset_value >> i) & 1ull;
      const bool use_reset_pin = r.has_reset && !rv;
      const bool fold_reset_high = r.has_reset && rv;
      const bool use_enable_pin = r.enable != rtl::kInvalidExpr;
      std::string type = "DFF";
      if (use_enable_pin && use_reset_pin) type = "DFFRE";
      else if (use_enable_pin) type = "DFFE";
      else if (use_reset_pin) type = "DFFR";
      const cell::CellType& t = lib.by_name(type);
      const NodeId node =
          nl.add_cell(type, r.name + "_reg" +
                                (r.width == 1 ? std::string()
                                              : "[" + std::to_string(i) + "]"),
                      Word(static_cast<std::size_t>(t.num_inputs),
                           kInvalidNode));
      nl.set_rtl_register(node, bit_name(r.name, r.width, i));
      q[static_cast<std::size_t>(i)] = node;
      flop_plans[ri][static_cast<std::size_t>(i)] =
          FlopPlan{node, fold_reset_high, use_enable_pin, use_reset_pin};
    }
    lo.define(r.name, std::move(q));
  }

  // Wires in dependency order.
  for (const int wi : m.wire_topo_order()) {
    const rtl::Wire& w = m.wires[static_cast<std::size_t>(wi)];
    lo.define(w.name, lo.lower(w.expr));
  }

  // Register next-state logic; patch flop pins.
  const rtl::Symbol* rst_sym = m.find_symbol(m.reset_port);
  for (std::size_t ri = 0; ri < m.regs.size(); ++ri) {
    const rtl::Register& r = m.regs[ri];
    const Word next = lo.lower(r.next);
    NodeId en = kInvalidNode;
    if (r.enable != rtl::kInvalidExpr) en = lo.lower(r.enable)[0];
    NodeId rst = kInvalidNode;
    if (r.has_reset) {
      MOSS_CHECK(rst_sym != nullptr, "reset port missing");
      rst = lo.lookup(m.reset_port)[0];
    }
    for (int i = 0; i < r.width; ++i) {
      const FlopPlan& plan = flop_plans[ri][static_cast<std::size_t>(i)];
      NodeId d = next[static_cast<std::size_t>(i)];
      if (plan.fold_reset_high) {
        // reset-to-1: D = rst ? 1 : next. With an enable pin the flop holds
        // when E=0, which would lose the reset, so force E high on reset.
        d = gb.or2(d, rst);
      }
      const cell::CellType& t = nl.type_of(plan.node);
      nl.connect(plan.node, t.pin_index("D"), d);
      if (plan.has_enable_pin) {
        NodeId e = en;
        if (plan.fold_reset_high) e = gb.or2(en, rst);
        nl.connect(plan.node, t.pin_index("E"), e);
      }
      if (plan.has_reset_pin) nl.connect(plan.node, t.pin_index("R"), rst);
    }
  }

  // Primary outputs.
  for (const auto& [name, e] : m.output_assigns) {
    const Word bits = lo.lower(e);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      nl.add_output(bit_name(name, static_cast<int>(bits.size()),
                             static_cast<int>(i)),
                    bits[i]);
    }
  }

  nl.finalize();
  return nl;
}

// ---------------------------------------------------------------------------
// Rebuild machinery shared by the optimization passes.
// ---------------------------------------------------------------------------

/// Copies `src` into a new netlist, letting hooks skip nodes or replace a
/// node's image. Flops are created first with dangling pins (patched at the
/// end), so arbitrary sequential feedback survives the rebuild.
class Rebuilder {
 public:
  explicit Rebuilder(const Netlist& src)
      : src_(src), dst_(src.library(), src.name()) {}

  Netlist& dst() { return dst_; }
  const Netlist& src() const { return src_; }

  NodeId image(NodeId old) const {
    const NodeId img = map_[static_cast<std::size_t>(old)];
    MOSS_CHECK(img != kInvalidNode, "node has no image yet");
    return img;
  }

  /// skip(old) -> true: node is fused into a consumer; no image created.
  /// replace(old) -> kInvalidNode to copy verbatim, else the replacement
  /// image (which the hook created in dst() using image() of fanins).
  template <typename SkipFn, typename ReplaceFn>
  Netlist run(const SkipFn& skip, const ReplaceFn& replace) {
    map_.assign(src_.num_nodes(), kInvalidNode);

    // Ports and flops first.
    for (const NodeId id : src_.inputs()) {
      set(id, dst_.add_input(src_.node(id).name));
    }
    for (const NodeId id : src_.flops()) {
      if (skip(id)) continue;
      const netlist::Node& n = src_.node(id);
      const NodeId img = dst_.add_cell(
          n.type, n.name,
          std::vector<NodeId>(n.fanin.size(), kInvalidNode));
      if (!n.rtl_register.empty()) dst_.set_rtl_register(img, n.rtl_register);
      set(id, img);
    }
    // Combinational cells in topological order.
    for (const NodeId id : src_.topo_order()) {
      const netlist::Node& n = src_.node(id);
      if (n.kind != NodeKind::kCell || src_.is_flop(id)) continue;
      if (skip(id)) continue;
      const NodeId repl = replace(id, *this);
      if (repl != kInvalidNode) {
        set(id, repl);
        continue;
      }
      std::vector<NodeId> fanins;
      fanins.reserve(n.fanin.size());
      for (const NodeId f : n.fanin) fanins.push_back(image(f));
      set(id, dst_.add_cell(n.type, n.name, std::move(fanins)));
    }
    // Patch flop pins.
    for (const NodeId id : src_.flops()) {
      if (skip(id)) continue;
      const netlist::Node& n = src_.node(id);
      for (std::size_t p = 0; p < n.fanin.size(); ++p) {
        dst_.connect(image(id), static_cast<int>(p), image(n.fanin[p]));
      }
    }
    // Outputs.
    for (const NodeId id : src_.outputs()) {
      const netlist::Node& n = src_.node(id);
      dst_.add_output(n.name, image(n.fanin[0]));
    }
    dst_.finalize();
    return std::move(dst_);
  }

  void set(NodeId old, NodeId img) { map_[static_cast<std::size_t>(old)] = img; }

 private:
  const Netlist& src_;
  Netlist dst_;
  std::vector<NodeId> map_;
};

bool is_type(const Netlist& nl, NodeId id, const char* name) {
  const netlist::Node& n = nl.node(id);
  return n.kind == NodeKind::kCell && nl.library().type(n.type).name == name;
}

bool single_fanout(const Netlist& nl, NodeId id) {
  return nl.node(id).fanout.size() == 1;
}

}  // namespace

Netlist merge_gate_trees(const Netlist& src) {
  // Identify AND2(AND2, x) / OR2(OR2, x) chains and widen them. A child is
  // absorbed only if it has a single fanout (its only consumer is the root).
  const std::size_t n = src.num_nodes();
  std::vector<char> fused(n, 0);
  // root -> widened input list (old ids)
  std::unordered_map<NodeId, std::vector<NodeId>> widened;
  std::unordered_map<NodeId, std::string> new_type;

  for (const NodeId id : src.topo_order()) {
    for (const char* base : {"AND2", "OR2"}) {
      if (!is_type(src, id, base)) continue;
      const netlist::Node& root = src.node(id);
      std::vector<NodeId> leaves;
      for (const NodeId f : root.fanin) {
        if (is_type(src, f, base) && single_fanout(src, f) && !fused[static_cast<std::size_t>(f)] &&
            widened.find(f) == widened.end()) {
          // absorb child (only plain, un-widened children)
          for (const NodeId g : src.node(f).fanin) leaves.push_back(g);
          fused[static_cast<std::size_t>(f)] = 1;
        } else {
          leaves.push_back(f);
        }
      }
      if (leaves.size() > 2 && leaves.size() <= 4) {
        widened.emplace(id, std::move(leaves));
        // "AND2"/"OR2" -> "AND"/"OR" + actual arity
        std::string stem(base);
        stem.pop_back();
        new_type.emplace(id, stem + std::to_string(widened.at(id).size()));
      }
      break;
    }
  }

  Rebuilder rb(src);
  return rb.run(
      [&](NodeId id) { return fused[static_cast<std::size_t>(id)] != 0; },
      [&](NodeId id, Rebuilder& r) -> NodeId {
        const auto it = widened.find(id);
        if (it == widened.end()) return kInvalidNode;
        std::vector<NodeId> fanins;
        for (const NodeId f : it->second) fanins.push_back(r.image(f));
        return r.dst().add_cell(new_type.at(id), src.node(id).name + "_w",
                                std::move(fanins));
      });
}

Netlist fuse_inverters(const Netlist& src) {
  // INV(g) patterns -> complex inverting gates. The inner gate must have a
  // single fanout (the INV).
  std::vector<char> fused(src.num_nodes(), 0);
  struct Recipe {
    std::string type;
    std::vector<NodeId> leaves;  // old ids
  };
  std::unordered_map<NodeId, Recipe> recipes;

  const auto inner_ok = [&](NodeId g) {
    return single_fanout(src, g) && !fused[static_cast<std::size_t>(g)];
  };

  for (const NodeId id : src.topo_order()) {
    if (!is_type(src, id, "INV")) continue;
    const NodeId g = src.node(id).fanin[0];
    if (!inner_ok(g)) continue;
    const netlist::Node& gn = src.node(g);
    const auto gf = [&](std::size_t i) { return gn.fanin[i]; };

    Recipe rec;
    if (is_type(src, g, "AND2")) {
      // Check for AOI/OAI shapes one level deeper first.
      const NodeId x = gf(0), y = gf(1);
      if (is_type(src, x, "OR2") && is_type(src, y, "OR2") && inner_ok(x) &&
          inner_ok(y) && x != y) {
        rec = {"OAI22",
               {src.node(x).fanin[0], src.node(x).fanin[1],
                src.node(y).fanin[0], src.node(y).fanin[1]}};
        fused[static_cast<std::size_t>(x)] = 1;
        fused[static_cast<std::size_t>(y)] = 1;
      } else if (is_type(src, x, "OR2") && inner_ok(x)) {
        rec = {"OAI21", {src.node(x).fanin[0], src.node(x).fanin[1], y}};
        fused[static_cast<std::size_t>(x)] = 1;
      } else if (is_type(src, y, "OR2") && inner_ok(y)) {
        rec = {"OAI21", {src.node(y).fanin[0], src.node(y).fanin[1], x}};
        fused[static_cast<std::size_t>(y)] = 1;
      } else {
        rec = {"NAND2", {x, y}};
      }
    } else if (is_type(src, g, "OR2")) {
      const NodeId x = gf(0), y = gf(1);
      if (is_type(src, x, "AND2") && is_type(src, y, "AND2") && inner_ok(x) &&
          inner_ok(y) && x != y) {
        rec = {"AOI22",
               {src.node(x).fanin[0], src.node(x).fanin[1],
                src.node(y).fanin[0], src.node(y).fanin[1]}};
        fused[static_cast<std::size_t>(x)] = 1;
        fused[static_cast<std::size_t>(y)] = 1;
      } else if (is_type(src, x, "AND2") && inner_ok(x)) {
        rec = {"AOI21", {src.node(x).fanin[0], src.node(x).fanin[1], y}};
        fused[static_cast<std::size_t>(x)] = 1;
      } else if (is_type(src, y, "AND2") && inner_ok(y)) {
        rec = {"AOI21", {src.node(y).fanin[0], src.node(y).fanin[1], x}};
        fused[static_cast<std::size_t>(y)] = 1;
      } else {
        rec = {"NOR2", {x, y}};
      }
    } else if (is_type(src, g, "XOR2")) {
      rec = {"XNOR2", {gf(0), gf(1)}};
    } else if (is_type(src, g, "XNOR2")) {
      rec = {"XOR2", {gf(0), gf(1)}};
    } else if (is_type(src, g, "AND3")) {
      rec = {"NAND3", {gf(0), gf(1), gf(2)}};
    } else if (is_type(src, g, "AND4")) {
      rec = {"NAND4", {gf(0), gf(1), gf(2), gf(3)}};
    } else if (is_type(src, g, "OR3")) {
      rec = {"NOR3", {gf(0), gf(1), gf(2)}};
    } else if (is_type(src, g, "OR4")) {
      rec = {"NOR4", {gf(0), gf(1), gf(2), gf(3)}};
    } else {
      continue;
    }
    fused[static_cast<std::size_t>(g)] = 1;
    recipes.emplace(id, std::move(rec));
  }

  Rebuilder rb(src);
  return rb.run(
      [&](NodeId id) { return fused[static_cast<std::size_t>(id)] != 0; },
      [&](NodeId id, Rebuilder& r) -> NodeId {
        const auto it = recipes.find(id);
        if (it == recipes.end()) return kInvalidNode;
        std::vector<NodeId> fanins;
        for (const NodeId f : it->second.leaves) fanins.push_back(r.image(f));
        return r.dst().add_cell(it->second.type, src.node(id).name + "_f",
                                std::move(fanins));
      });
}

Netlist sweep_dead_logic(const Netlist& src) {
  // Keep everything with a path to a primary output. Flops on such paths
  // keep their own fanin cones (including feedback).
  std::vector<char> live(src.num_nodes(), 0);
  std::vector<NodeId> stack;
  for (const NodeId id : src.outputs()) {
    live[static_cast<std::size_t>(id)] = 1;
    stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId f : src.node(id).fanin) {
      if (!live[static_cast<std::size_t>(f)]) {
        live[static_cast<std::size_t>(f)] = 1;
        stack.push_back(f);
      }
    }
  }
  // Primary inputs always survive (ports are part of the interface).
  for (const NodeId id : src.inputs()) live[static_cast<std::size_t>(id)] = 1;

  Rebuilder rb(src);
  return rb.run(
      [&](NodeId id) { return !live[static_cast<std::size_t>(id)]; },
      [](NodeId, Rebuilder&) { return kInvalidNode; });
}

Netlist insert_buffers(const Netlist& src) {
  // For each overloaded driver, plan a buffer bank; consumers are spread
  // round-robin across the buffers.
  struct Bank {
    int num_buffers = 0;
  };
  std::unordered_map<NodeId, Bank> banks;
  for (std::size_t i = 0; i < src.num_nodes(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const netlist::Node& n = src.node(id);
    if (n.kind == NodeKind::kPrimaryOutput) continue;
    double max_load = 140.0;  // assumed PI drive limit
    if (n.kind == NodeKind::kCell) {
      max_load = src.library().type(n.type).max_load;
    }
    const double load = src.output_load(id);
    if (load > max_load && n.fanout.size() > 1) {
      const auto& buf = src.library().by_name("BUFX4");
      const int k = std::min<int>(
          static_cast<int>(n.fanout.size()),
          1 + static_cast<int>(load / buf.max_load));
      banks.emplace(id, Bank{k});
    }
  }
  if (banks.empty()) {
    Rebuilder rb(src);
    return rb.run([](NodeId) { return false; },
                  [](NodeId, Rebuilder&) { return kInvalidNode; });
  }

  // Rebuild manually (the generic hook can't rewrite consumers' fanins).
  Netlist dst(src.library(), src.name());
  std::vector<NodeId> map(src.num_nodes(), kInvalidNode);
  // driver -> its buffer images in dst, and a rotating cursor
  std::unordered_map<NodeId, std::pair<std::vector<NodeId>, std::size_t>>
      buf_images;

  const auto driver_for = [&](NodeId old) -> NodeId {
    const auto it = buf_images.find(old);
    if (it == buf_images.end()) return map[static_cast<std::size_t>(old)];
    auto& [bufs, cursor] = it->second;
    const NodeId b = bufs[cursor % bufs.size()];
    ++cursor;
    return b;
  };
  const auto make_bank = [&](NodeId old) {
    const auto it = banks.find(old);
    if (it == banks.end()) return;
    std::vector<NodeId> bufs;
    for (int k = 0; k < it->second.num_buffers; ++k) {
      bufs.push_back(dst.add_cell(
          "BUFX4", src.node(old).name + "_buf" + std::to_string(k),
          {map[static_cast<std::size_t>(old)]}));
    }
    buf_images.emplace(old, std::make_pair(std::move(bufs), std::size_t{0}));
  };

  for (const NodeId id : src.inputs()) {
    map[static_cast<std::size_t>(id)] = dst.add_input(src.node(id).name);
    make_bank(id);
  }
  for (const NodeId id : src.flops()) {
    const netlist::Node& n = src.node(id);
    map[static_cast<std::size_t>(id)] = dst.add_cell(
        n.type, n.name, std::vector<NodeId>(n.fanin.size(), kInvalidNode));
    if (!n.rtl_register.empty()) {
      dst.set_rtl_register(map[static_cast<std::size_t>(id)], n.rtl_register);
    }
    make_bank(id);
  }
  for (const NodeId id : src.topo_order()) {
    const netlist::Node& n = src.node(id);
    if (n.kind != NodeKind::kCell || src.is_flop(id)) continue;
    std::vector<NodeId> fanins;
    fanins.reserve(n.fanin.size());
    for (const NodeId f : n.fanin) fanins.push_back(driver_for(f));
    map[static_cast<std::size_t>(id)] = dst.add_cell(n.type, n.name,
                                                     std::move(fanins));
    make_bank(id);
  }
  for (const NodeId id : src.flops()) {
    const netlist::Node& n = src.node(id);
    for (std::size_t p = 0; p < n.fanin.size(); ++p) {
      dst.connect(map[static_cast<std::size_t>(id)], static_cast<int>(p),
                  driver_for(n.fanin[p]));
    }
  }
  for (const NodeId id : src.outputs()) {
    dst.add_output(src.node(id).name, driver_for(src.node(id).fanin[0]));
  }
  dst.finalize();
  return dst;
}

Netlist synthesize(const rtl::Module& m, const cell::CellLibrary& lib,
                   const SynthOptions& opts) {
  Netlist nl = elaborate(m, lib);
  if (opts.sweep_dead_logic) nl = sweep_dead_logic(nl);
  if (opts.merge_gate_trees) nl = merge_gate_trees(nl);
  if (opts.fuse_inverters) nl = fuse_inverters(nl);
  if (opts.insert_buffers) nl = insert_buffers(nl);
  if (!opts.name_suffix.empty()) nl.set_name(m.name + opts.name_suffix);
  return nl;
}

}  // namespace moss::synth
