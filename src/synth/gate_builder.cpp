#include "synth/gate_builder.hpp"

#include <algorithm>

#include "core_util/check.hpp"
#include "core_util/strings.hpp"

namespace moss::synth {

using netlist::kInvalidNode;

NodeId GateBuilder::bit_const(bool v) {
  NodeId& tie = v ? tie1_ : tie0_;
  if (tie == kInvalidNode) {
    tie = nl_->add_cell(v ? "TIE1" : "TIE0", fresh_name(v ? "tie1" : "tie0"),
                        {});
  }
  return tie;
}

std::vector<NodeId> GateBuilder::word_const(int width, std::uint64_t value) {
  std::vector<NodeId> out(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out[static_cast<std::size_t>(i)] = bit_const((value >> i) & 1ull);
  }
  return out;
}

std::optional<bool> GateBuilder::const_value(NodeId n) const {
  if (n == tie0_ && n != kInvalidNode) return false;
  if (n == tie1_ && n != kInvalidNode) return true;
  return std::nullopt;
}

std::string GateBuilder::fresh_name(const std::string& type) {
  return "u" + std::to_string(name_counter_++) + "_" + to_lower(type);
}

NodeId GateBuilder::emit(const std::string& type, std::vector<NodeId> fanins) {
  const cell::CellTypeId tid = nl_->library().find(type);
  MOSS_CHECK(tid != cell::kInvalidCellType, "unknown cell " + type);
  // Canonicalize commutative gates for structural hashing.
  const cell::CellType& t = nl_->library().type(tid);
  std::vector<NodeId> canon = fanins;
  const bool commutative = type != "MUX2";
  if (commutative && t.num_inputs > 1) {
    std::sort(canon.begin(), canon.end());
  }
  const auto key = std::make_pair(tid, canon);
  const auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;
  const NodeId id = nl_->add_cell(tid, fresh_name(type), std::move(canon));
  strash_.emplace(key, id);
  return id;
}

NodeId GateBuilder::not_(NodeId a) {
  if (const auto c = const_value(a)) return bit_const(!*c);
  // Double inversion cancels.
  const netlist::Node& n = nl_->node(a);
  if (n.kind == netlist::NodeKind::kCell &&
      nl_->library().type(n.type).name == "INV") {
    return n.fanin[0];
  }
  return emit("INV", {a});
}

NodeId GateBuilder::and2(NodeId a, NodeId b) {
  const auto ca = const_value(a), cb = const_value(b);
  if (ca) return *ca ? b : bit_const(false);
  if (cb) return *cb ? a : bit_const(false);
  if (a == b) return a;
  return emit("AND2", {a, b});
}

NodeId GateBuilder::or2(NodeId a, NodeId b) {
  const auto ca = const_value(a), cb = const_value(b);
  if (ca) return *ca ? bit_const(true) : b;
  if (cb) return *cb ? bit_const(true) : a;
  if (a == b) return a;
  return emit("OR2", {a, b});
}

NodeId GateBuilder::xor2(NodeId a, NodeId b) {
  const auto ca = const_value(a), cb = const_value(b);
  if (ca) return *ca ? not_(b) : b;
  if (cb) return *cb ? not_(a) : a;
  if (a == b) return bit_const(false);
  return emit("XOR2", {a, b});
}

NodeId GateBuilder::xnor2(NodeId a, NodeId b) {
  const auto ca = const_value(a), cb = const_value(b);
  if (ca) return *ca ? b : not_(b);
  if (cb) return *cb ? a : not_(a);
  if (a == b) return bit_const(true);
  return emit("XNOR2", {a, b});
}

NodeId GateBuilder::mux2(NodeId sel, NodeId f, NodeId t) {
  if (const auto cs = const_value(sel)) return *cs ? t : f;
  if (f == t) return f;
  const auto cf = const_value(f), ct = const_value(t);
  if (cf && ct) return *ct ? sel : not_(sel);  // (f,t) = (0,1) or (1,0)
  if (cf) return *cf ? or2(not_(sel), t) : and2(sel, t);
  if (ct) return *ct ? or2(sel, f) : and2(not_(sel), f);
  return emit("MUX2", {f, t, sel});  // pin order A(=sel0), B(=sel1), S
}

NodeId GateBuilder::xor3(NodeId a, NodeId b, NodeId c) {
  if (const_value(a) || const_value(b) || const_value(c) || a == b || b == c ||
      a == c) {
    return xor2(xor2(a, b), c);  // fold via 2-input rules
  }
  return emit("XOR3", {a, b, c});
}

NodeId GateBuilder::maj3(NodeId a, NodeId b, NodeId c) {
  const auto ca = const_value(a), cb = const_value(b), cc = const_value(c);
  if (ca) return *ca ? or2(b, c) : and2(b, c);
  if (cb) return *cb ? or2(a, c) : and2(a, c);
  if (cc) return *cc ? or2(a, b) : and2(a, b);
  if (a == b) return a;
  if (b == c) return b;
  if (a == c) return a;
  return emit("MAJ3", {a, b, c});
}

NodeId GateBuilder::and_n(std::vector<NodeId> bits) {
  MOSS_CHECK(!bits.empty(), "and_n of nothing");
  while (bits.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
      next.push_back(and2(bits[i], bits[i + 1]));
    }
    if (bits.size() % 2) next.push_back(bits.back());
    bits = std::move(next);
  }
  return bits[0];
}

NodeId GateBuilder::or_n(std::vector<NodeId> bits) {
  MOSS_CHECK(!bits.empty(), "or_n of nothing");
  while (bits.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
      next.push_back(or2(bits[i], bits[i + 1]));
    }
    if (bits.size() % 2) next.push_back(bits.back());
    bits = std::move(next);
  }
  return bits[0];
}

NodeId GateBuilder::xor_n(std::vector<NodeId> bits) {
  MOSS_CHECK(!bits.empty(), "xor_n of nothing");
  while (bits.size() > 1) {
    std::vector<NodeId> next;
    std::size_t i = 0;
    for (; i + 2 < bits.size(); i += 3) {
      next.push_back(xor3(bits[i], bits[i + 1], bits[i + 2]));
    }
    if (i + 1 < bits.size()) {
      next.push_back(xor2(bits[i], bits[i + 1]));
    } else if (i < bits.size()) {
      next.push_back(bits[i]);
    }
    bits = std::move(next);
  }
  return bits[0];
}

std::vector<NodeId> GateBuilder::not_word(const std::vector<NodeId>& a) {
  std::vector<NodeId> out;
  out.reserve(a.size());
  for (const NodeId b : a) out.push_back(not_(b));
  return out;
}

std::vector<NodeId> GateBuilder::and_word(const std::vector<NodeId>& a,
                                          const std::vector<NodeId>& b) {
  MOSS_CHECK(a.size() == b.size(), "word width mismatch");
  std::vector<NodeId> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(and2(a[i], b[i]));
  return out;
}

std::vector<NodeId> GateBuilder::or_word(const std::vector<NodeId>& a,
                                         const std::vector<NodeId>& b) {
  MOSS_CHECK(a.size() == b.size(), "word width mismatch");
  std::vector<NodeId> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(or2(a[i], b[i]));
  return out;
}

std::vector<NodeId> GateBuilder::xor_word(const std::vector<NodeId>& a,
                                          const std::vector<NodeId>& b) {
  MOSS_CHECK(a.size() == b.size(), "word width mismatch");
  std::vector<NodeId> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(xor2(a[i], b[i]));
  return out;
}

std::vector<NodeId> GateBuilder::mux_word(NodeId sel,
                                          const std::vector<NodeId>& f,
                                          const std::vector<NodeId>& t) {
  MOSS_CHECK(f.size() == t.size(), "mux arm width mismatch");
  std::vector<NodeId> out;
  out.reserve(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    out.push_back(mux2(sel, f[i], t[i]));
  }
  return out;
}

std::vector<NodeId> GateBuilder::add(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b,
                                     NodeId carry_in) {
  MOSS_CHECK(a.size() == b.size(), "adder width mismatch");
  std::vector<NodeId> out;
  out.reserve(a.size());
  NodeId carry = carry_in == kInvalidNode ? bit_const(false) : carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(xor3(a[i], b[i], carry));
    if (i + 1 < a.size()) carry = maj3(a[i], b[i], carry);
  }
  return out;
}

std::vector<NodeId> GateBuilder::sub(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  return add(a, not_word(b), bit_const(true));
}

std::vector<NodeId> GateBuilder::neg(const std::vector<NodeId>& a) {
  return add(not_word(a), word_const(static_cast<int>(a.size()), 0),
             bit_const(true));
}

std::vector<NodeId> GateBuilder::mul(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  MOSS_CHECK(a.size() == b.size(), "multiplier width mismatch");
  const std::size_t w = a.size();
  // Row accumulation of partial products, truncated to w bits. Constant
  // operand bits (from zext) fold the corresponding gates away entirely.
  std::vector<NodeId> acc = word_const(static_cast<int>(w), 0);
  for (std::size_t i = 0; i < w; ++i) {
    if (const auto cb = const_value(b[i]); cb && !*cb) continue;
    std::vector<NodeId> pp = word_const(static_cast<int>(w), 0);
    for (std::size_t j = 0; j + i < w; ++j) {
      pp[j + i] = and2(a[j], b[i]);
    }
    acc = add(acc, pp);
  }
  return acc;
}

NodeId GateBuilder::eq(const std::vector<NodeId>& a,
                       const std::vector<NodeId>& b) {
  MOSS_CHECK(a.size() == b.size(), "comparator width mismatch");
  std::vector<NodeId> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits.push_back(xnor2(a[i], b[i]));
  }
  return and_n(std::move(bits));
}

NodeId GateBuilder::ult(const std::vector<NodeId>& a,
                        const std::vector<NodeId>& b) {
  MOSS_CHECK(a.size() == b.size(), "comparator width mismatch");
  // Borrow chain of a - b: borrow_out(i) = maj(~a_i, b_i, borrow_in).
  NodeId borrow = bit_const(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    borrow = maj3(not_(a[i]), b[i], borrow);
  }
  return borrow;
}

NodeId GateBuilder::ule(const std::vector<NodeId>& a,
                        const std::vector<NodeId>& b) {
  return not_(ult(b, a));
}

std::vector<NodeId> GateBuilder::shl(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& amount) {
  std::vector<NodeId> cur = a;
  const int w = static_cast<int>(a.size());
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const int k = 1 << s;
    if (k >= w) {
      // Shifting by >= w zeroes everything when this amount bit is set.
      for (int i = 0; i < w; ++i) {
        cur[static_cast<std::size_t>(i)] =
            and2(cur[static_cast<std::size_t>(i)], not_(amount[s]));
      }
      continue;
    }
    std::vector<NodeId> shifted(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      shifted[static_cast<std::size_t>(i)] =
          i >= k ? cur[static_cast<std::size_t>(i - k)] : bit_const(false);
    }
    cur = mux_word(amount[s], cur, shifted);
  }
  return cur;
}

std::vector<NodeId> GateBuilder::shr(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& amount) {
  std::vector<NodeId> cur = a;
  const int w = static_cast<int>(a.size());
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const int k = 1 << s;
    if (k >= w) {
      for (int i = 0; i < w; ++i) {
        cur[static_cast<std::size_t>(i)] =
            and2(cur[static_cast<std::size_t>(i)], not_(amount[s]));
      }
      continue;
    }
    std::vector<NodeId> shifted(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      shifted[static_cast<std::size_t>(i)] =
          i + k < w ? cur[static_cast<std::size_t>(i + k)] : bit_const(false);
    }
    cur = mux_word(amount[s], cur, shifted);
  }
  return cur;
}

}  // namespace moss::synth
