#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "core_util/error.hpp"
#include "core_util/fault.hpp"
#include "core_util/rng.hpp"
#include "serve/metrics.hpp"

namespace moss::serve {

/// Resilience layer for moss::serve: the pure policy objects — admission
/// control with priority shedding, retry with deterministic backoff and a
/// storm-proof retry budget, a circuit-breaker state machine, and the
/// service health roll-up. The engine, registry and protocol wire them
/// together; everything here is independently unit-testable and owns no
/// threads.

/// True when `e` is worth retrying: a ContextError marked transient at its
/// throw site (queue_full, shed, breaker_open, ...) or an injected fault
/// standing in for a flaky model session. Permanent failures (bad_request,
/// unknown_pool, corrupt checkpoint, ...) must not be retried — that only
/// amplifies load on a struggling service.
inline bool is_transient(const std::exception& e) {
  if (error_class(e) == ErrorClass::kTransient) return true;
  return dynamic_cast<const testing::InjectedFault*>(&e) != nullptr;
}

// ---------------------------------------------------------------------------
// Admission control

/// Two-tier request priorities: latency-critical timing/power prediction
/// (ATP, TRP+PP) is shed last; embedding and ranking traffic (EMBED,
/// FEP-rank) is shed first — those answers can also come from the stale
/// cache in degraded mode.
inline bool low_priority(RequestKind kind) {
  return kind == RequestKind::kEmbed || kind == RequestKind::kFepRank;
}

struct AdmissionConfig {
  bool enabled = true;
  /// Shed low-priority kinds once queue depth reaches this fraction of
  /// capacity. High-priority kinds are only ever refused by the hard
  /// queue_full bound.
  double shed_queue_fraction = 0.75;
  /// Also shed low-priority kinds while the worst endpoint p95 exceeds
  /// this (microseconds); 0 disables the latency trigger.
  double shed_p95_us = 0.0;
};

/// Stateless-per-request admission decision in front of the engine queue.
/// MOSS_FAULT site "serve.admission.enqueue" fires inside admit() so chaos
/// scripts can poison the enqueue step itself.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {}

  enum class Decision { kAdmit, kShed };

  Decision admit(RequestKind kind, std::size_t queue_depth,
                 std::size_t queue_capacity, double worst_p95_us) const {
    MOSS_FAULT_POINT("serve.admission.enqueue");
    if (!cfg_.enabled || !low_priority(kind)) return Decision::kAdmit;
    const double util = queue_capacity == 0
                            ? 0.0
                            : static_cast<double>(queue_depth) /
                                  static_cast<double>(queue_capacity);
    if (util >= cfg_.shed_queue_fraction) return Decision::kShed;
    if (cfg_.shed_p95_us > 0.0 && worst_p95_us > cfg_.shed_p95_us) {
      return Decision::kShed;
    }
    return Decision::kAdmit;
  }

  const AdmissionConfig& config() const { return cfg_; }

 private:
  AdmissionConfig cfg_;
};

// ---------------------------------------------------------------------------
// Retry with deterministic backoff and a retry budget

struct RetryConfig {
  /// Total attempts including the first; 1 disables retries.
  int max_attempts = 3;
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
  /// Jitter fraction in [0,1]: each backoff is scaled by a deterministic
  /// uniform draw from [1-jitter, 1], seeded per (seed, request token,
  /// attempt) — identical schedules replay bit-identically.
  double jitter = 0.5;
  std::uint64_t seed = 0x5EED;
};

/// Backoff before retry number `attempt` (1 = first retry) of the request
/// identified by `token`. Pure function of (cfg, token, attempt).
inline double backoff_ms(const RetryConfig& cfg, std::uint64_t token,
                         int attempt) {
  double ms = cfg.base_backoff_ms;
  for (int i = 1; i < attempt; ++i) ms *= 2.0;
  ms = std::min(ms, cfg.max_backoff_ms);
  Rng rng(cfg.seed ^ (token * 0x9E3779B97F4A7C15ull) ^
          static_cast<std::uint64_t>(attempt));
  return ms * (1.0 - cfg.jitter * rng.uniform());
}

/// Token bucket that bounds the fraction of traffic that may be retries.
/// Successes earn `earn_per_success` tokens (capped); each retry spends a
/// whole token. Under a hard outage the bucket drains and retries stop —
/// the classic guard against self-inflicted retry storms.
class RetryBudget {
 public:
  explicit RetryBudget(double cap = 10.0, double earn_per_success = 0.1)
      : cap_(cap), earn_(earn_per_success), tokens_(cap) {}

  void on_success() {
    const std::lock_guard<std::mutex> lock(mu_);
    tokens_ = std::min(cap_, tokens_ + earn_);
  }

  bool try_spend() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return tokens_;
  }

 private:
  double cap_;
  double earn_;
  mutable std::mutex mu_;
  double tokens_;
};

/// Run `fn` with retries: transient failures back off (deterministic
/// jittered exponential) and re-attempt while the budget allows; permanent
/// failures and exhausted attempts rethrow. `token` names the request for
/// jitter derivation; `retries_out` (optional) counts retries performed.
template <typename Fn>
auto with_retry(const RetryConfig& cfg, RetryBudget* budget,
                std::uint64_t token, Fn&& fn, std::uint64_t* retries_out =
                                                  nullptr) {
  for (int attempt = 1;; ++attempt) {
    try {
      auto result = fn();
      if (budget != nullptr) budget->on_success();
      return result;
    } catch (const std::exception& e) {
      if (attempt >= cfg.max_attempts || !is_transient(e)) throw;
      if (budget != nullptr && !budget->try_spend()) throw;
      if (retries_out != nullptr) ++*retries_out;
      const double ms = backoff_ms(cfg, token, attempt);
      if (ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Circuit breaker

struct BreakerConfig {
  bool enabled = true;
  /// Consecutive transient failures that trip the breaker open.
  int failure_threshold = 5;
  /// Time the breaker stays open before letting probe traffic through.
  int open_cooldown_ms = 1000;
  /// Concurrent probes allowed in half-open before it resolves.
  int half_open_probes = 1;
};

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

inline const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

/// Per-session circuit breaker: closed → open after `failure_threshold`
/// consecutive transient failures, open → half-open after the cooldown,
/// half-open → closed on a successful probe (→ open again on a failed one).
/// Not internally locked — the owner (ModelRegistry slot) already holds a
/// mutex around every call.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(BreakerConfig cfg = {}) : cfg_(cfg) {}

  /// May this request use the protected session right now? Transitions
  /// open → half-open when the cooldown has elapsed and hands out probe
  /// slots. `probe_out` is set when the caller is a half-open probe.
  bool allow(bool* probe_out = nullptr) {
    if (probe_out != nullptr) *probe_out = false;
    if (!cfg_.enabled || state_ == BreakerState::kClosed) return true;
    const auto cooldown = std::chrono::milliseconds(cfg_.open_cooldown_ms);
    if (state_ == BreakerState::kOpen) {
      if (Clock::now() - opened_at_ < cooldown) return false;
      state_ = BreakerState::kHalfOpen;
      probes_left_ = cfg_.half_open_probes;
      probes_armed_at_ = Clock::now();
      ++half_open_count_;
    }
    if (probes_left_ <= 0) {
      // All probe slots are out but nothing has resolved half-open within
      // a cooldown: the probe's outcome was lost (report discarded after a
      // hot-swap, or a permanent client error reported without the probe
      // flag). Re-arm rather than refusing this name forever.
      if (Clock::now() - probes_armed_at_ < cooldown) return false;
      probes_left_ = cfg_.half_open_probes;
      probes_armed_at_ = Clock::now();
    }
    --probes_left_;
    if (probe_out != nullptr) *probe_out = true;
    return true;
  }

  /// Outcome report for a request served by the protected session.
  /// Permanent failures are the client's fault and leave the breaker alone;
  /// `probe` marks the report as the outcome of a half-open probe slot
  /// handed out by allow().
  void record(bool ok, bool transient_failure, bool probe = false) {
    if (!cfg_.enabled) return;
    if (ok) {
      consecutive_failures_ = 0;
      if (state_ != BreakerState::kClosed) {
        state_ = BreakerState::kClosed;
        ++close_count_;
      }
      return;
    }
    if (state_ == BreakerState::kHalfOpen) {
      if (transient_failure) {
        trip();  // failed probe: straight back to open, fresh cooldown
        return;
      }
      // A permanent failure (bad_request, unknown_pool, ...) says nothing
      // about session health — the probe was inconclusive. Hand the slot
      // back so the next request probes immediately instead of wedging
      // half-open until the lost-probe re-arm above kicks in.
      if (probe && probes_left_ < cfg_.half_open_probes) ++probes_left_;
      return;
    }
    if (!transient_failure) return;
    ++consecutive_failures_;
    if (state_ == BreakerState::kClosed &&
        consecutive_failures_ >= cfg_.failure_threshold) {
      trip();
    }
  }

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  std::uint64_t open_count() const { return open_count_; }
  std::uint64_t half_open_count() const { return half_open_count_; }
  std::uint64_t close_count() const { return close_count_; }

 private:
  void trip() {
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    consecutive_failures_ = 0;
    probes_left_ = 0;
    ++open_count_;
  }

  BreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probes_left_ = 0;
  Clock::time_point opened_at_{};
  Clock::time_point probes_armed_at_{};
  std::uint64_t open_count_ = 0;
  std::uint64_t half_open_count_ = 0;
  std::uint64_t close_count_ = 0;
};

// ---------------------------------------------------------------------------
// Health state machine

/// Service health, coarsest first: DOWN (no way to serve at all),
/// OVERLOADED (actively shedding load), DEGRADED (a breaker is open or
/// half-open — answers may come from fallback sessions or the stale
/// cache), OK.
enum class HealthState : std::uint8_t {
  kOk = 0,
  kDegraded = 1,
  kOverloaded = 2,
  kDown = 3,
};

const char* to_string(HealthState s);

struct HealthReport {
  HealthState state = HealthState::kOk;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t models = 0;
  std::size_t breakers_open = 0;      ///< open or half-open
  std::size_t models_unservable = 0;  ///< open breaker and no fallback
  std::uint64_t shed = 0;
  std::uint64_t degraded_served = 0;

  /// One line for the `HEALTH` protocol command / CLI dumps.
  std::string line() const;
};

/// Roll the inputs up into one state. DOWN dominates (nothing can be
/// served), then OVERLOADED (shedding now), then DEGRADED.
HealthState roll_up_health(const HealthReport& r,
                           const AdmissionConfig& admission);

}  // namespace moss::serve
