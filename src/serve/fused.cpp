#include "serve/fused.hpp"

#include <cstddef>

#include "core_util/check.hpp"
#include "core_util/fault.hpp"
#include "gnn/two_phase_gnn.hpp"
#include "tensor/kernels.hpp"

namespace moss::serve {

namespace {

using gnn::UpdateGroup;
using gnn::UpdateStep;

/// Append one unit's group to the merged step, offsetting node and edge ids
/// by the unit's row base. Groups are coalesced per aggregator cluster; the
/// unit's nodes land behind every node already in the merged group, so its
/// edge_dst_local values shift by the merged group's current node count.
/// Whole groups are appended in unit order, which keeps each destination
/// node's edges contiguous and in their original order — the invariant the
/// segment softmax/sum reductions key on.
void append_group(UpdateStep& step, const UpdateGroup& src, int base) {
  UpdateGroup* dst = nullptr;
  for (UpdateGroup& g : step.groups) {
    if (g.cluster == src.cluster) {
      dst = &g;
      break;
    }
  }
  if (dst == nullptr) {
    step.groups.emplace_back();
    dst = &step.groups.back();
    dst->cluster = src.cluster;
  }
  const int local_base = static_cast<int>(dst->nodes.size());
  dst->nodes.reserve(dst->nodes.size() + src.nodes.size());
  for (const int n : src.nodes) dst->nodes.push_back(n + base);
  dst->edge_src.reserve(dst->edge_src.size() + src.edge_src.size());
  for (const int e : src.edge_src) dst->edge_src.push_back(e + base);
  dst->edge_dst.reserve(dst->edge_dst.size() + src.edge_dst.size());
  for (const int e : src.edge_dst) dst->edge_dst.push_back(e + base);
  dst->edge_dst_local.reserve(dst->edge_dst_local.size() +
                              src.edge_dst_local.size());
  for (const int e : src.edge_dst_local) {
    dst->edge_dst_local.push_back(e + local_base);
  }
  dst->edge_pos.insert(dst->edge_pos.end(), src.edge_pos.begin(),
                       src.edge_pos.end());
}

/// Merge one unit's phase schedule into the running merged schedule,
/// aligned by level index.
void merge_phase(std::vector<UpdateStep>& merged,
                 const std::vector<UpdateStep>& steps, int base) {
  if (merged.size() < steps.size()) merged.resize(steps.size());
  for (std::size_t l = 0; l < steps.size(); ++l) {
    for (const UpdateGroup& g : steps[l].groups) {
      append_group(merged[l], g, base);
    }
  }
}

}  // namespace

MergedGraph merge_graphs(const std::vector<FusedUnit>& units) {
  MOSS_CHECK(!units.empty(), "merge_graphs: no units");
  MOSS_CHECK(units[0].batch != nullptr, "merge_graphs: null unit batch");
  const gnn::Graph& g0 = units[0].batch->graph;
  MOSS_CHECK(g0.features.defined(), "merge_graphs: unit graph has no features");

  MergedGraph m;
  m.row_offset.reserve(units.size() + 1);
  m.row_offset.push_back(0);
  std::vector<const tensor::Tensor*> features;
  features.reserve(units.size());
  std::size_t base = 0;
  for (const FusedUnit& u : units) {
    MOSS_CHECK(u.batch != nullptr, "merge_graphs: null unit batch");
    const gnn::Graph& g = u.batch->graph;
    MOSS_CHECK(g.features.defined() && g.features.rows() == g.num_nodes,
               "merge_graphs: unit features row count mismatch");
    MOSS_CHECK(g.features.cols() == g0.features.cols(),
               "merge_graphs: feature width mismatch across units");
    MOSS_CHECK(g.num_clusters == g0.num_clusters,
               "merge_graphs: cluster count mismatch across units");
    merge_phase(m.graph.forward_steps, g.forward_steps,
                static_cast<int>(base));
    merge_phase(m.graph.turnaround_steps, g.turnaround_steps,
                static_cast<int>(base));
    m.graph.readout_nodes.reserve(m.graph.readout_nodes.size() +
                                  g.readout_nodes.size());
    for (const int r : g.readout_nodes) {
      m.graph.readout_nodes.push_back(r + static_cast<int>(base));
    }
    features.push_back(&g.features);
    base += g.num_nodes;
    m.row_offset.push_back(base);
  }
  m.graph.num_nodes = base;
  m.graph.num_clusters = g0.num_clusters;
  m.graph.features = tensor::kernels::pack_rows(features);
  return m;
}

FusedForward fused_node_embeddings(const MossSession& s,
                                   const std::vector<FusedUnit>& units) {
  MOSS_FAULT_POINT("serve.session.forward");
  const MergedGraph m = merge_graphs(units);
  const tensor::Tensor h = s.model().gnn().run(m.graph).detach();
  FusedForward out;
  out.rows = m.graph.num_nodes;
  out.node_h.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    out.node_h.push_back(tensor::kernels::slice_rows(
        h, m.row_offset[i], m.row_offset[i + 1] - m.row_offset[i]));
  }
  return out;
}

}  // namespace moss::serve
