#include "serve/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "core_util/error.hpp"
#include "core_util/fault.hpp"

namespace moss::serve {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Map a failure to "ERR <code> <message>". ContextError's reason frame
/// becomes the code, so scripted clients can dispatch without parsing
/// prose.
std::string err_line(const std::exception& e) {
  std::string code = "internal";
  if (const auto* ce = dynamic_cast<const ContextError*>(&e)) {
    const std::string reason = ce->context_value("reason");
    if (!reason.empty()) code = reason;
  } else if (dynamic_cast<const testing::InjectedFault*>(&e) != nullptr) {
    code = "injected_fault";
  }
  std::string msg = e.what();
  std::replace(msg.begin(), msg.end(), '\n', ' ');
  return "ERR " + code + " " + msg;
}

constexpr const char* kHelp =
    "ATP <design>      per-DFF arrival times (ps)\n"
    "TRP <design>      per-cell toggle rates + power\n"
    "EMBED <design>    netlist + RTL embeddings\n"
    "RANK <design>     rank registered pool against the design's RTL\n"
    "VERIFY <a> <b>    exact SAT equivalence check of two designs\n"
    "METRICS [json]    serving metrics\n"
    "HEALTH            one-line health report\n"
    "FLUSH             persist cache segments now (when configured)\n"
    "HELP              this text\n"
    "QUIT              close the stream\n"
    ".";

}  // namespace

ProtocolHandler::ProtocolHandler(InferenceEngine& engine, ProtocolConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)) {
  MOSS_CHECK(static_cast<bool>(cfg_.load_design),
             "ProtocolConfig needs a design loader");
  if (!cfg_.retry_budget) {
    cfg_.retry_budget = std::make_shared<RetryBudget>();
  }
}

Response ProtocolHandler::call_with_retry(Request req) {
  const std::uint64_t token = token_seq_++;
  std::uint64_t retries = 0;
  try {
    Response r = with_retry(
        cfg_.retry, cfg_.retry_budget.get(), token,
        [&] {
          Request attempt = req;  // shallow shared_ptr copies; cheap
          return engine_.call(std::move(attempt));
        },
        &retries);
    for (std::uint64_t i = 0; i < retries; ++i) engine_.metrics().record_retry();
    return r;
  } catch (...) {
    for (std::uint64_t i = 0; i < retries; ++i) engine_.metrics().record_retry();
    throw;
  }
}

std::shared_ptr<const data::LabeledCircuit> ProtocolHandler::circuit_for(
    const std::string& token) {
  const auto it = circuits_.find(token);
  if (it != circuits_.end()) return it->second;
  std::shared_ptr<const data::LabeledCircuit> lc = cfg_.load_design(token);
  if (!lc) {
    ErrorContext ctx;
    ctx.add("reason", "unknown_design");
    ctx.add("design", token);
    ctx.fail("cannot load design");
  }
  circuits_.emplace(token, lc);
  return lc;
}

std::string ProtocolHandler::handle_line(const std::string& line,
                                         bool* quit) {
  if (quit != nullptr) *quit = false;
  const std::vector<std::string> tok = split_ws(line);
  if (tok.empty()) return "ERR bad_request empty line";
  const std::string cmd = upper(tok[0]);
  try {
    if (cmd == "QUIT") {
      if (quit != nullptr) *quit = true;
      return "OK BYE";
    }
    if (cmd == "HELP") return std::string("OK HELP\n") + kHelp;
    if (cmd == "METRICS") {
      const bool json = tok.size() > 1 && upper(tok[1]) == "JSON";
      return "OK METRICS\n" +
             (json ? engine_.metrics_json() + "\n."
                   : engine_.metrics_text() + ".");
    }
    if (cmd == "HEALTH") {
      std::string out = "OK HEALTH " + engine_.health().line();
      // Cache occupancy travels on the health line so fleet tooling (and
      // the warm-restart CI check) can see a shard came up warm without a
      // full METRICS round-trip.
      if (const EmbeddingCache* cache = engine_.cache()) {
        const CacheStats cs = cache->stats();
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      " cache_entries=%zu cache_hits=%llu", cs.entries,
                      static_cast<unsigned long long>(cs.hits));
        out += buf;
      }
      if (!cfg_.shard_name.empty()) out += " shard=" + cfg_.shard_name;
      return out;
    }
    if (cmd == "FLUSH") {
      if (!cfg_.flush) {
        return "ERR bad_request this server has no persistent cache to "
               "flush";
      }
      return "OK FLUSH " + cfg_.flush();
    }

    if (tok.size() < 2) return "ERR bad_request missing <design> operand";
    const std::string& design = tok[1];
    char buf[160];

    if (cmd == "ATP" || cmd == "TRP" || cmd == "EMBED") {
      Request req;
      req.kind = cmd == "ATP"   ? RequestKind::kAtp
                 : cmd == "TRP" ? RequestKind::kTrpPp
                                : RequestKind::kEmbed;
      req.circuit = circuit_for(design);
      req.model = cfg_.model_name;
      req.deadline_ms = cfg_.deadline_ms;
      const Response r = call_with_retry(std::move(req));
      std::string out;
      if (r.kind == RequestKind::kAtp) {
        std::snprintf(buf, sizeof(buf), "OK ATP n=%zu", r.values.size());
        out = buf;
        for (const double v : r.values) {
          std::snprintf(buf, sizeof(buf), " %.1f", v);
          out += buf;
        }
      } else if (r.kind == RequestKind::kTrpPp) {
        double mean = 0.0;
        for (const double v : r.values) mean += v;
        if (!r.values.empty()) mean /= static_cast<double>(r.values.size());
        std::snprintf(buf, sizeof(buf),
                      "OK TRP n=%zu mean_toggle=%.4f power_uw=%.2f",
                      r.values.size(), mean, r.power_uw);
        out = buf;
      } else {
        std::snprintf(buf, sizeof(buf), "OK EMBED dim=%zu",
                      r.embedding.size());
        out = buf;
        const std::size_t show = std::min<std::size_t>(8, r.embedding.size());
        for (std::size_t i = 0; i < show; ++i) {
          std::snprintf(buf, sizeof(buf), " %.4f",
                        static_cast<double>(r.embedding[i]));
          out += buf;
        }
      }
      std::snprintf(buf, sizeof(buf), " latency_us=%.0f", r.latency_us);
      out += buf;
      if (r.degraded) out += " degraded=1";
      return out;
    }

    if (cmd == "VERIFY") {
      if (tok.size() < 3) {
        return "ERR bad_request VERIFY needs two design operands";
      }
      Request req;
      req.kind = RequestKind::kVerify;
      req.circuit = circuit_for(design);
      req.circuit_b = circuit_for(tok[2]);
      req.model = cfg_.model_name;
      req.deadline_ms = cfg_.deadline_ms;
      const Response r = call_with_retry(std::move(req));
      std::snprintf(buf, sizeof(buf),
                    "OK VERIFY %s conflicts=%llu frames=%d", r.verdict.c_str(),
                    static_cast<unsigned long long>(r.verify_conflicts),
                    r.verify_frames);
      std::string out = buf;
      if (!r.verify_cex.empty()) out += " cex: " + r.verify_cex;
      std::snprintf(buf, sizeof(buf), " latency_us=%.0f", r.latency_us);
      out += buf;
      return out;
    }

    if (cmd == "RANK") {
      Request req;
      req.kind = RequestKind::kFepRank;
      req.circuit = circuit_for(design);
      req.pool = cfg_.pool_name;
      req.model = cfg_.model_name;
      req.deadline_ms = cfg_.deadline_ms;
      const Response r = call_with_retry(std::move(req));
      if (r.ranking.empty()) return "ERR internal empty ranking";
      std::snprintf(buf, sizeof(buf), "OK RANK pool=%zu top=%s score=%.4f",
                    r.ranking.size(), r.ranking[0].name.c_str(),
                    static_cast<double>(r.ranking[0].score));
      std::string out = buf;
      const std::size_t show =
          std::min<std::size_t>(cfg_.rank_top, r.ranking.size());
      for (std::size_t i = 0; i < show; ++i) {
        std::snprintf(buf, sizeof(buf), " %zu:%s:%.4f", i + 1,
                      r.ranking[i].name.c_str(),
                      static_cast<double>(r.ranking[i].score));
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), " latency_us=%.0f", r.latency_us);
      out += buf;
      if (r.degraded) out += " degraded=1";
      return out;
    }

    return "ERR bad_request unknown command " + cmd;
  } catch (const std::exception& e) {
    return err_line(e);
  }
}

std::size_t ProtocolHandler::run(std::istream& in, std::ostream& out) {
  // Bounded reads: istream::getline into a fixed buffer instead of
  // std::getline into a growing string, so a client streaming an endless
  // line costs max_line_bytes of memory, not all of it. The oversize line
  // is answered typed and its excess discarded without buffering.
  const std::size_t cap = std::max<std::size_t>(16, cfg_.max_line_bytes);
  std::vector<char> buf(cap + 1);
  std::size_t handled = 0;
  bool quit = false;
  while (!quit && in) {
    in.getline(buf.data(), static_cast<std::streamsize>(buf.size()));
    const std::size_t n = static_cast<std::size_t>(in.gcount());
    if (in.fail() && !in.eof()) {
      if (n == buf.size() - 1) {  // line longer than the buffer
        out << "ERR bad_request line exceeds " << cap
            << " byte limit\n";
        out.flush();
        ++handled;
        in.clear();
        in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
        continue;
      }
      break;  // stream is broken, not oversized
    }
    if (n == 0 && in.eof()) break;
    std::string line(buf.data());
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    out << handle_line(line, &quit) << "\n";
    out.flush();
    ++handled;
  }
  return handled;
}

}  // namespace moss::serve
