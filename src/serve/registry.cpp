#include "serve/registry.hpp"

#include <algorithm>
#include <atomic>

#include "core_util/error.hpp"
#include "core_util/hash.hpp"
#include "tensor/serialize.hpp"

namespace moss::serve {

namespace {
std::uint64_t next_session_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

MossSession::MossSession() : uid_(next_session_uid()) {}

void MossSession::seal() {
  // Everything a deterministic forward pass reads: parameter tensors (with
  // names and shapes — a renamed or reshaped head must not collide), the
  // frozen encoder's table/pooling weights/centering vector, and the config
  // fields that steer propagation (rounds changes outputs at identical
  // parameters). Batch-side inputs (features, schedule) are hashed
  // separately into each cache key's batch content hash.
  HashBuilder hb;
  hb.mix(std::string_view("MOSSFPR1"));
  const core::MossConfig& mc = model_->config();
  hb.mix(static_cast<std::uint64_t>(mc.hidden));
  hb.mix(static_cast<std::int64_t>(mc.rounds));
  hb.mix(static_cast<std::uint64_t>(mc.alignment ? 1 : 0));
  hb.mix(static_cast<std::uint64_t>(mc.attention ? 1 : 0));
  const tensor::ParameterSet& ps = model_->params();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    hb.mix(ps.names()[i]);
    const tensor::Tensor& t = ps.tensors()[i];
    hb.mix(static_cast<std::uint64_t>(t.rows()));
    hb.mix(static_cast<std::uint64_t>(t.cols()));
    hb.mix(t.data());
  }
  const lm::TextEncoder& enc = *encoder_;
  hb.mix(static_cast<std::uint64_t>(enc.config().vocab_size));
  hb.mix(static_cast<std::uint64_t>(enc.dim()));
  hb.mix(enc.table().data());
  hb.mix(enc.token_weights());
  hb.mix(enc.center());
  fingerprint_ = hb.digest();
}

std::shared_ptr<const MossSession> MossSession::load(
    const core::WorkflowConfig& cfg, const std::vector<std::string>& corpus,
    const std::string& ckpt_path) {
  auto s = std::shared_ptr<MossSession>(new MossSession());
  s->owned_encoder_ = std::make_unique<lm::TextEncoder>(cfg.encoder);
  // Mirror MossWorkflow::fine_tune_encoder exactly (same rng derivation),
  // so `train --save` followed by a session load over the same corpus gets
  // the same encoder geometry — and therefore the same aggregator
  // clustering and parameter shapes as the saved checkpoint.
  Rng rng(cfg.seed ^ 0xF17E);
  lm::fine_tune(*s->owned_encoder_, corpus, cfg.fine_tune, rng);
  s->owned_model_ = std::make_unique<core::MossModel>(
      cfg.model, cell::standard_library(), *s->owned_encoder_);
  if (!ckpt_path.empty()) {
    tensor::load_parameters_file(ckpt_path, s->owned_model_->params());
  }
  s->encoder_ = s->owned_encoder_.get();
  s->model_ = s->owned_model_.get();
  s->seal();
  return s;
}

std::shared_ptr<const MossSession> MossSession::adopt(
    const core::MossModel& model, const lm::TextEncoder& encoder) {
  auto s = std::shared_ptr<MossSession>(new MossSession());
  s->encoder_ = &encoder;
  s->model_ = &model;
  s->seal();
  return s;
}

core::CircuitBatch MossSession::build(const data::LabeledCircuit& lc) const {
  return core::build_batch(lc, *encoder_, model_->config().features);
}

void ModelRegistry::set_breaker_config(const BreakerConfig& cfg) {
  const std::lock_guard<std::mutex> lock(mu_);
  breaker_cfg_ = cfg;
  for (auto& [name, slot] : slots_) slot.breaker = CircuitBreaker(cfg);
}

std::uint64_t ModelRegistry::install(
    const std::string& name, std::shared_ptr<const MossSession> session) {
  MOSS_CHECK(session != nullptr, "cannot install a null session");
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[name];
  slot.session = std::move(session);  // atomic publication point
  slot.breaker = CircuitBreaker(breaker_cfg_);
  slot.fallback_failures = 0;
  return ++slot.version;
}

std::shared_ptr<const MossSession> ModelRegistry::get(
    const std::string& name) const {
  std::shared_ptr<const MossSession> s = try_get(name);
  if (!s) {
    ErrorContext ctx;
    ctx.add("model", name);
    ctx.fail("model not registered");
  }
  return s;
}

std::shared_ptr<const MossSession> ModelRegistry::try_get(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.session;
}

ModelRegistry::Acquired ModelRegistry::acquire(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  if (it == slots_.end() || !it->second.session) {
    lock.unlock();
    ErrorContext ctx;
    ctx.add("model", name);
    ctx.fail("model not registered");
  }
  Slot& slot = it->second;
  Acquired out;
  if (slot.breaker.allow(&out.probe)) {
    out.session = slot.session;
    return out;
  }
  // Breaker open: route around the broken session if we can.
  if (slot.last_good != nullptr &&
      slot.last_good->uid() != slot.session->uid()) {
    out.session = slot.last_good;
    out.fallback = true;
    return out;
  }
  lock.unlock();
  ErrorContext ctx;
  ctx.add("reason", "breaker_open");
  ctx.add("model", name);
  ctx.transient();
  ctx.fail("circuit breaker open and no fallback session");
}

void ModelRegistry::report(const std::string& name, std::uint64_t uid,
                           bool ok, bool transient_failure, bool probe) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  if (it == slots_.end() || !it->second.session) return;
  Slot& slot = it->second;
  const bool is_current = slot.session->uid() == uid;
  if (!is_current) {
    // A report against the fallback session tracks fallback health: demote
    // a last-known-good that keeps failing transiently, so a broken
    // fallback stops being served for the breaker's whole cooldown.
    if (slot.last_good != nullptr && slot.last_good->uid() == uid) {
      if (ok) {
        slot.fallback_failures = 0;
      } else if (transient_failure &&
                 ++slot.fallback_failures >=
                     std::max(1, breaker_cfg_.failure_threshold)) {
        slot.last_good = nullptr;
        slot.fallback_failures = 0;
      }
    }
    return;  // stale/fallback uids never move the current session's breaker
  }
  if (ok) {
    // Any session that just served correctly is a valid fallback target —
    // including the current one (the common case).
    slot.last_good = slot.session;
    slot.fallback_failures = 0;
  }
  slot.breaker.record(ok, transient_failure, probe);
}

BreakerState ModelRegistry::breaker_state(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  return it == slots_.end() ? BreakerState::kClosed : it->second.breaker.state();
}

ModelRegistry::BreakerStats ModelRegistry::breaker_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  BreakerStats st;
  st.models = slots_.size();
  for (const auto& [name, slot] : slots_) {
    const BreakerState s = slot.breaker.state();
    if (s != BreakerState::kClosed) {
      ++st.open;
      const bool has_fallback =
          slot.last_good != nullptr && slot.session != nullptr &&
          slot.last_good->uid() != slot.session->uid();
      if (!has_fallback) ++st.unservable;
    }
    st.open_events += slot.breaker.open_count();
    st.half_open_events += slot.breaker.half_open_count();
    st.close_events += slot.breaker.close_count();
  }
  return st;
}

bool ModelRegistry::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.erase(name) > 0;
}

std::vector<ModelRegistry::Info> ModelRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    out.push_back(Info{name, slot.session->uid(), slot.version,
                       slot.breaker.state()});
  }
  return out;
}

}  // namespace moss::serve
