#include "serve/registry.hpp"

#include <atomic>

#include "core_util/error.hpp"
#include "tensor/serialize.hpp"

namespace moss::serve {

namespace {
std::uint64_t next_session_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

MossSession::MossSession() : uid_(next_session_uid()) {}

std::shared_ptr<const MossSession> MossSession::load(
    const core::WorkflowConfig& cfg, const std::vector<std::string>& corpus,
    const std::string& ckpt_path) {
  auto s = std::shared_ptr<MossSession>(new MossSession());
  s->owned_encoder_ = std::make_unique<lm::TextEncoder>(cfg.encoder);
  // Mirror MossWorkflow::fine_tune_encoder exactly (same rng derivation),
  // so `train --save` followed by a session load over the same corpus gets
  // the same encoder geometry — and therefore the same aggregator
  // clustering and parameter shapes as the saved checkpoint.
  Rng rng(cfg.seed ^ 0xF17E);
  lm::fine_tune(*s->owned_encoder_, corpus, cfg.fine_tune, rng);
  s->owned_model_ = std::make_unique<core::MossModel>(
      cfg.model, cell::standard_library(), *s->owned_encoder_);
  if (!ckpt_path.empty()) {
    tensor::load_parameters_file(ckpt_path, s->owned_model_->params());
  }
  s->encoder_ = s->owned_encoder_.get();
  s->model_ = s->owned_model_.get();
  return s;
}

std::shared_ptr<const MossSession> MossSession::adopt(
    const core::MossModel& model, const lm::TextEncoder& encoder) {
  auto s = std::shared_ptr<MossSession>(new MossSession());
  s->encoder_ = &encoder;
  s->model_ = &model;
  return s;
}

core::CircuitBatch MossSession::build(const data::LabeledCircuit& lc) const {
  return core::build_batch(lc, *encoder_, model_->config().features);
}

std::uint64_t ModelRegistry::install(
    const std::string& name, std::shared_ptr<const MossSession> session) {
  MOSS_CHECK(session != nullptr, "cannot install a null session");
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[name];
  slot.session = std::move(session);  // atomic publication point
  return ++slot.version;
}

std::shared_ptr<const MossSession> ModelRegistry::get(
    const std::string& name) const {
  std::shared_ptr<const MossSession> s = try_get(name);
  if (!s) {
    ErrorContext ctx;
    ctx.add("model", name);
    ctx.fail("model not registered");
  }
  return s;
}

std::shared_ptr<const MossSession> ModelRegistry::try_get(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second.session;
}

bool ModelRegistry::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.erase(name) > 0;
}

std::vector<ModelRegistry::Info> ModelRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    out.push_back(Info{name, slot.session->uid(), slot.version});
  }
  return out;
}

}  // namespace moss::serve
