#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>

#include "serve/engine.hpp"

namespace moss::serve {

/// Line-oriented request protocol spoken by `moss_serve` and
/// `moss_cli serve` over stdin or a Unix socket. One request per line:
///
///   ATP <design>          per-DFF arrival times (ps)
///   TRP <design>          per-cell toggle rates + derived power
///   EMBED <design>        netlist + RTL embeddings
///   RANK <design>         rank the registered pool against the design's RTL
///   METRICS [json]        serving metrics dump
///   HEALTH                one-line health report (OK/DEGRADED/...)
///   FLUSH                 persist cache segments now (when configured)
///   HELP                  command summary
///   QUIT                  close the stream
///
/// <design> is a Verilog path (*.v) or "family:size" like the CLI. Every
/// response is a single line starting with "OK" or "ERR <code>"; METRICS
/// and HELP respond with a block terminated by a lone "." line. A response
/// served from a fallback session or the stale cache carries an explicit
/// ` degraded=1` marker after its latency field.
struct ProtocolConfig {
  /// Resolve a design token to a labeled circuit. Results are cached per
  /// token inside the handler, so repeat requests skip labeling entirely.
  std::function<std::shared_ptr<const data::LabeledCircuit>(
      const std::string&)>
      load_design;
  std::string pool_name = "pool";
  std::string model_name = "default";
  int deadline_ms = 0;       ///< applied to every submitted request
  std::size_t rank_top = 3;  ///< ranking entries echoed per RANK response
  /// Transient engine failures (queue_full, shed, breaker_open, injected
  /// faults) are retried here, at the protocol layer, with deterministic
  /// jittered backoff. max_attempts = 1 disables retries.
  RetryConfig retry;
  /// Retry budget shared by every handler of one server process; when
  /// null the handler makes a private one in its constructor.
  std::shared_ptr<RetryBudget> retry_budget;
  /// Hard bound on one request line. run() refuses longer lines with a
  /// typed "ERR bad_request ..." and discards the excess instead of
  /// buffering it — a hostile or broken client can no longer grow a
  /// server-side string without limit. Protocol commands are tens of bytes;
  /// 1 MiB leaves room for absurd-but-honest design paths.
  std::size_t max_line_bytes = 1u << 20;
  /// Shard identity echoed in HEALTH responses (" shard=<name>") so fleet
  /// tooling can attribute a multiplexed health line. Empty = omitted.
  std::string shard_name;
  /// FLUSH hook: persist server state (moss::cluster cache segments) on
  /// demand. Returns a short status fragment for the "OK FLUSH <...>"
  /// response line. Unset = FLUSH answers ERR bad_request.
  std::function<std::string()> flush;
};

/// Stateful protocol handler: owns the per-token circuit cache and turns
/// request lines into engine calls. Thread-compatible (one handler per
/// connection/stream).
class ProtocolHandler {
 public:
  ProtocolHandler(InferenceEngine& engine, ProtocolConfig cfg);

  /// Handle one request line; never throws. Returns the full response
  /// (single line, or "."-terminated block) without a trailing newline.
  /// Sets `quit` when the line was QUIT.
  std::string handle_line(const std::string& line, bool* quit = nullptr);

  /// Serve `in` line-by-line until QUIT or EOF, writing responses (and a
  /// newline) to `out`, flushing after each. Returns requests handled.
  std::size_t run(std::istream& in, std::ostream& out);

 private:
  std::shared_ptr<const data::LabeledCircuit> circuit_for(
      const std::string& token);
  /// engine_.call wrapped in the retry policy; counts retries into metrics.
  Response call_with_retry(Request req);

  InferenceEngine& engine_;
  ProtocolConfig cfg_;
  std::uint64_t token_seq_ = 0;  ///< per-handler retry-jitter token
  std::unordered_map<std::string,
                     std::shared_ptr<const data::LabeledCircuit>>
      circuits_;
};

}  // namespace moss::serve
