#include "serve/engine.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core_util/error.hpp"
#include "core_util/fault.hpp"
#include "plan/plan.hpp"
#include "power/power.hpp"
#include "sat/oracle.hpp"
#include "serve/fused.hpp"

namespace moss::serve {

using Clock = std::chrono::steady_clock;
using tensor::Tensor;

namespace {

[[noreturn]] void fail_typed(const std::string& reason,
                             const std::string& msg,
                             std::vector<ContextError::Frame> extra = {},
                             ErrorClass cls = ErrorClass::kPermanent) {
  ErrorContext ctx;
  ctx.add("reason", reason);
  for (auto& f : extra) ctx.add(f.first, f.second);
  if (cls == ErrorClass::kTransient) ctx.transient();
  ctx.fail(msg);
}

// Validate before the scheduler thread exists, so a bad config cannot
// leave a running thread behind a throwing constructor.
EngineConfig validated(EngineConfig cfg) {
  MOSS_CHECK(cfg.max_batch > 0, "max_batch must be positive");
  MOSS_CHECK(cfg.queue_capacity > 0, "queue_capacity must be positive");
  MOSS_CHECK(cfg.max_delay_ms >= 0, "max_delay_ms must be nonnegative");
  return cfg;
}

/// Bridges plan::hashcons_node_embeddings onto the serve EmbeddingCache:
/// cone rows live in the same byte budget as the other embeddings, keyed by
/// cone_key(session fingerprint, cone hash) so a model with different
/// parameters never reuses a predecessor's rows.
class ConeCacheAdapter : public plan::ConeRowCache {
 public:
  ConeCacheAdapter(EmbeddingCache& cache, std::uint64_t session_uid)
      : cache_(&cache), uid_(session_uid) {}

  std::optional<Tensor> get(std::uint64_t cone_hash) override {
    return cache_->get(cone_key(uid_, cone_hash));
  }
  void put(std::uint64_t cone_hash, const Tensor& row) override {
    cache_->put(cone_key(uid_, cone_hash), row);
  }

 private:
  EmbeddingCache* cache_;
  std::uint64_t uid_;
};

}  // namespace

InferenceEngine::InferenceEngine(ModelRegistry& registry,
                                 EmbeddingCache* cache, EngineConfig cfg)
    : registry_(registry),
      cache_(cache),
      cfg_(validated(cfg)),
      admission_(cfg_.admission),
      workers_(cfg.threads),
      scheduler_([this] { scheduler_loop(); }) {}

InferenceEngine::~InferenceEngine() { stop(); }

double InferenceEngine::worst_p95_us() {
  // The latency trigger is a threshold heuristic, so a p95 refreshed every
  // 64 submissions (rather than a full histogram walk per submit) is fine.
  if (cfg_.admission.shed_p95_us <= 0.0) return 0.0;
  if (submit_seq_.fetch_add(1, std::memory_order_relaxed) % 64 == 0) {
    const MetricsSnapshot s = metrics_.snapshot();
    double worst = 0.0;
    for (const EndpointSnapshot& e : s.endpoints) {
      worst = std::max(worst, e.p95_us);
    }
    cached_p95_us_.store(worst, std::memory_order_relaxed);
  }
  return cached_p95_us_.load(std::memory_order_relaxed);
}

std::future<Response> InferenceEngine::submit(Request req) {
  Pending p;
  p.req = std::move(req);
  p.enqueued = Clock::now();
  std::future<Response> fut = p.promise.get_future();
  // Admission control in front of the queue. Depth is read without holding
  // the queue lock across the decision — shedding is a threshold heuristic
  // and a one-request race cannot breach the hard capacity bound below.
  const AdmissionController::Decision decision = admission_.admit(
      p.req.kind, queue_depth(), cfg_.queue_capacity, worst_p95_us());
  if (decision == AdmissionController::Decision::kShed) {
    metrics_.record_shed();
    if (cfg_.allow_stale) {
      if (std::optional<Response> stale = try_serve_stale(p.req)) {
        stale->latency_us = std::chrono::duration<double, std::micro>(
                                Clock::now() - p.enqueued)
                                .count();
        metrics_.record(p.req.kind, stale->latency_us, /*ok=*/true);
        metrics_.record_degraded();
        p.promise.set_value(std::move(*stale));
        return fut;
      }
    }
    fail_typed("shed", "low-priority request shed under load",
               {{"kind", to_string(p.req.kind)}}, ErrorClass::kTransient);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      fail_typed("stopped", "inference engine is stopped");
    }
    if (queue_.size() >= cfg_.queue_capacity) {
      metrics_.record_rejected();
      fail_typed("queue_full", "serve queue full — request rejected",
                 {{"capacity", std::to_string(cfg_.queue_capacity)}},
                 ErrorClass::kTransient);
    }
    if (p.req.kind == RequestKind::kVerify) {
      // VERIFY latency class: admission is capped by summed conflict
      // budgets, not request count — one huge check and many small ones
      // load the solver the same way. Reserved here (under mu_, so
      // concurrent submits serialize against the cap) and released by the
      // dispatch worker once the promise settles.
      const std::uint64_t budget = verify_budget(p.req);
      const std::uint64_t inflight =
          verify_inflight_.load(std::memory_order_relaxed);
      if (inflight + budget > cfg_.verify_inflight_budget) {
        metrics_.record_verify_shed();
        fail_typed("verify_capacity",
                   "VERIFY conflict budget in flight exceeds engine cap",
                   {{"inflight", std::to_string(inflight)},
                    {"requested", std::to_string(budget)},
                    {"cap", std::to_string(cfg_.verify_inflight_budget)}},
                   ErrorClass::kTransient);
      }
      verify_inflight_.fetch_add(budget, std::memory_order_relaxed);
    }
    queue_.push_back(std::move(p));
    metrics_.set_queue_depth(queue_.size());
  }
  cv_.notify_all();
  return fut;
}

Response InferenceEngine::call(Request req) {
  return submit(std::move(req)).get();
}

void InferenceEngine::register_pool(
    const std::string& name,
    std::vector<std::shared_ptr<const core::CircuitBatch>> members) {
  auto pool = std::make_shared<Pool>();
  pool->hashes.reserve(members.size());
  for (const auto& m : members) {
    MOSS_CHECK(m != nullptr, "pool member must not be null");
    // content_hash() reuses the hash build_batch/to_batch already computed,
    // so registering a pool does not re-walk every member graph.
    pool->hashes.push_back(core::content_hash(*m));
  }
  pool->members = std::move(members);
  const std::lock_guard<std::mutex> lock(pools_mu_);
  pools_[name] = std::move(pool);  // atomic replacement, like the registry
}

std::size_t InferenceEngine::pool_size(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(pools_mu_);
  const auto it = pools_.find(name);
  return it == pools_.end() ? 0 : it->second->members.size();
}

std::size_t InferenceEngine::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

HealthReport InferenceEngine::health() const {
  HealthReport r;
  r.queue_depth = queue_depth();
  r.queue_capacity = cfg_.queue_capacity;
  const ModelRegistry::BreakerStats bs = registry_.breaker_stats();
  r.models = bs.models;
  r.breakers_open = bs.open;
  r.models_unservable = bs.unservable;
  r.shed = metrics_.shed_count();
  r.degraded_served = metrics_.degraded_count();
  r.state = roll_up_health(r, cfg_.admission);
  return r;
}

void InferenceEngine::refresh_gauges() {
  if (cache_) {
    const CacheStats cs = cache_->stats();
    metrics_.set_cache_counters(cs.hits, cs.misses, cs.evictions, cs.bytes,
                                cs.entries, cs.oversize_rejections);
  }
  const ModelRegistry::BreakerStats bs = registry_.breaker_stats();
  metrics_.set_resilience(to_string(health().state), bs.open, bs.open_events,
                          bs.half_open_events, bs.close_events);
}

std::string InferenceEngine::metrics_text() {
  refresh_gauges();
  return metrics_.text();
}

std::string InferenceEngine::metrics_json() {
  refresh_gauges();
  return metrics_.json();
}

void InferenceEngine::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

void InferenceEngine::scheduler_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping and fully drained
      // Micro-batching: give late arrivals up to max_delay to join, but
      // never hold a full batch back.
      const auto wait_until =
          Clock::now() + std::chrono::milliseconds(cfg_.max_delay_ms);
      cv_.wait_until(lk, wait_until, [&] {
        return queue_.size() >= cfg_.max_batch || stopping_;
      });
      const std::size_t take = std::min(queue_.size(), cfg_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics_.set_queue_depth(queue_.size());
    }
    dispatch(batch);
  }
}

namespace {

/// Dispatch order of fusable groups within a window: alignment-facing kinds
/// (EMBED, FEP-rank) first, then the timing/power kinds.
int fused_priority(RequestKind kind) {
  switch (kind) {
    case RequestKind::kEmbed: return 0;
    case RequestKind::kFepRank: return 1;
    case RequestKind::kAtp: return 2;
    case RequestKind::kTrpPp: return 3;
    case RequestKind::kVerify: break;
  }
  return 4;
}

}  // namespace

void InferenceEngine::dispatch(std::vector<Pending>& batch) {
  metrics_.record_batch(batch.size());
  const auto dispatch_time = Clock::now();
  // Partition the window: model-backed requests of one (kind, model) form a
  // fusable group; VERIFY and singleton non-rank groups take the sequential
  // path unchanged. A singleton FEP-rank request still fuses — its pool
  // members stack into one propagation.
  std::vector<std::vector<Pending*>> groups;
  std::vector<std::pair<RequestKind, std::string>> keys;
  std::vector<Pending*> solo;
  for (Pending& p : batch) {
    if (!cfg_.fused_batching || p.req.kind == RequestKind::kVerify) {
      solo.push_back(&p);
      continue;
    }
    std::size_t gi = groups.size();
    for (std::size_t k = 0; k < keys.size(); ++k) {
      if (keys[k].first == p.req.kind && keys[k].second == p.req.model) {
        gi = k;
        break;
      }
    }
    if (gi == groups.size()) {
      keys.emplace_back(p.req.kind, p.req.model);
      groups.emplace_back();
    }
    groups[gi].push_back(&p);
  }
  for (std::size_t k = 0; k < groups.size();) {
    if (groups[k].size() == 1 && keys[k].first != RequestKind::kFepRank) {
      solo.push_back(groups[k][0]);  // nothing to stack for a lone circuit
      groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(k));
      keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      ++k;
    }
  }
  std::vector<std::size_t> order(groups.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return fused_priority(keys[a].first) <
                            fused_priority(keys[b].first);
                   });
  // One work item per solo request and per fused group. Request isolation
  // is unchanged: every failure mode — bad request, missing model, injected
  // fault, deadline — is captured into that request's promise; the worker,
  // the rest of the batch and the scheduler keep going.
  const std::size_t n_solo = solo.size();
  workers_.parallel_for(0, n_solo + order.size(), [&](std::size_t i) {
    // Route the worker's intermediate tensor allocations through the
    // engine-lifetime arena so steady-state inference stops hitting the
    // allocator. Response tensors keep the pool alive past the scope.
    const tensor::kernels::ScratchArena::Scope scratch_scope(arena_);
    if (i < n_solo) {
      dispatch_one(*solo[i], dispatch_time);
    } else {
      dispatch_fused(groups[order[i - n_solo]], dispatch_time);
    }
  });
}

void InferenceEngine::dispatch_one(Pending& p,
                                   Clock::time_point dispatch_time) {
  const auto deadline =
      p.enqueued + std::chrono::milliseconds(p.req.deadline_ms);
  try {
    // Deadline expiry is permanent by design: re-submitting a request
    // whose deadline already passed can never succeed, and the retries
    // would land exactly when the queue is congested. The caller gets
    // the timeout immediately and decides itself whether to try again.
    if (p.req.deadline_ms > 0 && dispatch_time >= deadline) {
      metrics_.record_deadline_expired();
      fail_typed("deadline_expired", "request deadline expired in queue",
                 {{"deadline_ms", std::to_string(p.req.deadline_ms)},
                  {"stage", "queue"}});
    }
    MOSS_FAULT_POINT("serve.engine.dispatch");
    Response r = process(p.req);
    // Deadline covers dispatch too: a request that finished computing
    // after its deadline must fail typed, not return a stale success the
    // caller has already given up on.
    if (p.req.deadline_ms > 0 && Clock::now() >= deadline) {
      metrics_.record_deadline_expired();
      fail_typed("deadline_expired",
                 "request deadline expired during dispatch",
                 {{"deadline_ms", std::to_string(p.req.deadline_ms)},
                  {"stage", "dispatch"}});
    }
    r.latency_us =
        std::chrono::duration<double, std::micro>(Clock::now() - p.enqueued)
            .count();
    metrics_.record(p.req.kind, r.latency_us, /*ok=*/true);
    p.promise.set_value(std::move(r));
  } catch (...) {
    metrics_.record(p.req.kind, 0.0, /*ok=*/false);
    p.promise.set_exception(std::current_exception());
  }
  // Release the conflict budget submit() reserved — on every outcome
  // (success, typed failure, deadline), or the cap would leak shut.
  if (p.req.kind == RequestKind::kVerify) {
    verify_inflight_.fetch_sub(verify_budget(p.req),
                               std::memory_order_relaxed);
  }
}

void InferenceEngine::dispatch_fused(std::vector<Pending*>& group,
                                     Clock::time_point dispatch_time) {
  // Pre-checks mirror the sequential path exactly: a queue-expired deadline
  // or a firing dispatch fault fails that request alone, up front, before
  // it can occupy rows in the stacked batch.
  std::vector<Pending*> live;
  live.reserve(group.size());
  for (Pending* p : group) {
    try {
      const auto deadline =
          p->enqueued + std::chrono::milliseconds(p->req.deadline_ms);
      if (p->req.deadline_ms > 0 && dispatch_time >= deadline) {
        metrics_.record_deadline_expired();
        fail_typed("deadline_expired", "request deadline expired in queue",
                   {{"deadline_ms", std::to_string(p->req.deadline_ms)},
                    {"stage", "queue"}});
      }
      MOSS_FAULT_POINT("serve.engine.dispatch");
      live.push_back(p);
    } catch (...) {
      metrics_.record(p->req.kind, 0.0, /*ok=*/false);
      p->promise.set_exception(std::current_exception());
    }
  }
  if (live.empty()) return;
  std::vector<char> settled(live.size(), 0);
  try {
    fused_group(live, settled);
  } catch (...) {
    // The stacked compute failed as a whole (injected forward fault,
    // breaker-open acquire, cache-insert fault, ...). Degrade gracefully:
    // every member not yet settled is retried solo below, so one poisoned
    // unit never takes its batchmates down with it.
  }
  // Count retries BEFORE settling them solo, so the counter is already
  // visible when the retried requests' futures resolve.
  std::size_t retried = 0;
  for (const char f : settled) retried += static_cast<std::size_t>(f == 0);
  if (retried > 0) metrics_.record_fused_retries(retried);
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!settled[i]) dispatch_one(*live[i], dispatch_time);
  }
}

void InferenceEngine::fused_group(std::vector<Pending*>& group,
                                  std::vector<char>& settled) {
  const RequestKind kind = group[0]->req.kind;
  const std::string& model = group[0]->req.model;
  // One session acquisition serves the whole group; an acquire failure
  // (unknown model, breaker open) sends every member to the solo path,
  // which owns the stale-fallback and error-reporting logic.
  ModelRegistry::Acquired acq = registry_.acquire(model);
  const MossSession& s = *acq.session;

  // Per-request preparation. Requests this stage cannot prepare (bad
  // request, unknown pool, resolve failure) are left unsettled for the solo
  // retry, which reproduces the identical typed error with the sequential
  // path's breaker accounting.
  struct Slot {
    ResolvedBatch rb;                      // circuit-bound kinds
    std::shared_ptr<const Pool> pool;      // FEP-rank
    std::string text;                      // FEP-rank query RTL
    std::vector<std::size_t> member_unit;  // FEP-rank: pool member -> unit
    std::size_t unit = 0;                  // circuit-bound kinds
    bool ok = false;
  };
  std::vector<Slot> slots(group.size());
  std::vector<FusedUnit> units;
  std::unordered_map<std::uint64_t, std::size_t> unit_index;
  const auto intern_unit = [&](std::shared_ptr<const core::CircuitBatch> b,
                               std::uint64_t h) {
    const auto [it, fresh] = unit_index.try_emplace(h, units.size());
    if (fresh) units.push_back(FusedUnit{std::move(b), h});
    return it->second;
  };
  for (std::size_t i = 0; i < group.size(); ++i) {
    const Request& req = group[i]->req;
    Slot& sl = slots[i];
    if (kind == RequestKind::kFepRank) {
      {
        const std::lock_guard<std::mutex> lock(pools_mu_);
        const auto it = pools_.find(req.pool);
        if (it != pools_.end()) sl.pool = it->second;
      }
      sl.text = !req.rtl_text.empty()
                    ? req.rtl_text
                    : (req.circuit ? req.circuit->module_text : req.rtl_text);
      if (!sl.pool || sl.text.empty()) continue;  // solo retry -> typed error
      sl.member_unit.reserve(sl.pool->members.size());
      for (std::size_t j = 0; j < sl.pool->members.size(); ++j) {
        sl.member_unit.push_back(
            intern_unit(sl.pool->members[j], sl.pool->hashes[j]));
      }
      sl.ok = true;
    } else {
      if (kind == RequestKind::kTrpPp && !req.circuit) continue;
      try {
        sl.rb = resolve_batch(s, req);
      } catch (...) {
        continue;  // solo retry reproduces the typed resolve error
      }
      sl.unit = intern_unit(sl.rb.batch, sl.rb.hash);
      sl.ok = true;
    }
  }
  if (units.empty()) return;  // nothing fusable: everyone retries solo

  // Cache probe per unit: a warm unit skips propagation entirely (and for
  // the embedding kinds even the netlist head), exactly like the
  // sequential get_or_compute path. Only misses are fused.
  const bool want_netlist =
      kind == RequestKind::kEmbed || kind == RequestKind::kFepRank;
  const std::size_t U = units.size();
  std::vector<Tensor> node_h(U), netlist_e(U);
  std::vector<std::size_t> need;
  for (std::size_t u = 0; u < U; ++u) {
    if (cache_ != nullptr) {
      if (want_netlist) {
        if (std::optional<Tensor> e =
                cache_->get(netlist_key(s.fingerprint(), units[u].hash))) {
          netlist_e[u] = std::move(*e);
          continue;
        }
      }
      if (std::optional<Tensor> h = cache_->get(
              node_embedding_key(s.fingerprint(), units[u].hash))) {
        node_h[u] = std::move(*h);
        continue;
      }
    }
    need.push_back(u);
  }

  // Stacked propagation over the misses, chunked by the row cap. Computed
  // rows are inserted under the same keys the sequential path uses, so the
  // warm path stays bit-identical whichever path filled the cache.
  std::size_t begin = 0;
  while (begin < need.size()) {
    std::vector<FusedUnit> chunk;
    std::vector<std::size_t> chunk_ids;
    std::size_t rows = 0;
    std::size_t end = begin;
    while (end < need.size()) {
      const std::size_t r = units[need[end]].batch->graph.num_nodes;
      if (!chunk.empty() && rows + r > cfg_.fused_max_rows) break;
      chunk.push_back(units[need[end]]);
      chunk_ids.push_back(need[end]);
      rows += r;
      ++end;
    }
    const FusedForward ff = fused_node_embeddings(s, chunk);
    metrics_.record_fused_batch(chunk.size(), ff.rows);
    for (std::size_t k = 0; k < chunk_ids.size(); ++k) {
      node_h[chunk_ids[k]] = ff.node_h[k];
      if (cache_ != nullptr) {
        cache_->put(node_embedding_key(s.fingerprint(),
                                       units[chunk_ids[k]].hash),
                    node_h[chunk_ids[k]]);
      }
    }
    begin = end;
  }

  if (want_netlist) {
    for (std::size_t u = 0; u < U; ++u) {
      if (netlist_e[u].defined()) continue;
      MOSS_FAULT_POINT("serve.session.forward");
      netlist_e[u] =
          s.model().netlist_embedding(*units[u].batch, node_h[u]).detach();
      if (cache_ != nullptr) {
        cache_->put(netlist_key(s.fingerprint(), units[u].hash),
                    netlist_e[u]);
      }
    }
  }

  // Per-request heads + settlement. A head failure leaves that request
  // unsettled for the solo retry; everything else in the group still
  // settles here.
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (settled[i] != 0 || !slots[i].ok) continue;
    Pending& p = *group[i];
    const Request& req = p.req;
    try {
      Response r;
      r.kind = kind;
      r.model = req.model;
      r.session_uid = s.uid();
      switch (kind) {
        case RequestKind::kFepRank: {
          const Tensor r_e = rtl_embedding(s, slots[i].text);
          r.ranking.reserve(slots[i].member_unit.size());
          for (std::size_t j = 0; j < slots[i].member_unit.size(); ++j) {
            const std::size_t u = slots[i].member_unit[j];
            r.ranking.push_back(RankEntry{
                j, units[u].batch->name,
                s.model().pair_score(r_e, netlist_e[u])});
          }
          std::sort(r.ranking.begin(), r.ranking.end(),
                    [](const RankEntry& a, const RankEntry& b) {
                      return a.score != b.score ? a.score > b.score
                                                : a.index < b.index;
                    });
          break;
        }
        case RequestKind::kAtp: {
          const core::CircuitBatch& batch = *units[slots[i].unit].batch;
          MOSS_FAULT_POINT("serve.session.forward");
          const Tensor flop = s.model().predict_arrival(
              batch, node_h[slots[i].unit], batch.flop_rows);
          r.values.reserve(batch.flop_rows.size());
          for (std::size_t k = 0; k < batch.flop_rows.size(); ++k) {
            r.values.push_back(static_cast<double>(flop.at(k, 0)) *
                               core::kArrivalScale);
          }
          break;
        }
        case RequestKind::kTrpPp: {
          const core::CircuitBatch& batch = *units[slots[i].unit].batch;
          MOSS_FAULT_POINT("serve.session.forward");
          const core::LocalPredictions pred =
              s.model().predict_local(batch, node_h[slots[i].unit]);
          r.values.reserve(batch.cell_rows.size());
          std::vector<double> rates(req.circuit->netlist.num_nodes(), 0.0);
          for (std::size_t k = 0; k < batch.cell_rows.size(); ++k) {
            const double t = static_cast<double>(pred.toggle.at(k, 0));
            r.values.push_back(t);
            rates[static_cast<std::size_t>(batch.cell_rows[k])] = t;
          }
          r.power_uw =
              power::analyze_power(req.circuit->netlist, rates).total_uw;
          break;
        }
        case RequestKind::kEmbed: {
          r.embedding = netlist_e[slots[i].unit].data();
          const std::string& text =
              !req.rtl_text.empty() ? req.rtl_text
                                    : units[slots[i].unit].batch->module_text;
          if (!text.empty()) {
            r.rtl_embedding = rtl_embedding(s, text).data();
          }
          break;
        }
        case RequestKind::kVerify:
          break;  // never grouped
      }
      // Breaker accounting first (a successful forward is a successful
      // forward even if the caller's deadline then expires — the
      // sequential path reports from inside process() the same way).
      registry_.report(model, s.uid(), /*ok=*/true,
                       /*transient_failure=*/false, acq.probe);
      if (acq.fallback) {
        r.degraded = true;
        metrics_.record_degraded();
      }
      // Deadline re-check *after* the fused compute and split: a slow
      // mega-batch must yield a typed expiry per victim, not a late
      // success the caller has already abandoned. Permanent and never
      // solo-retried — a retry could only finish even later.
      // Counters are bumped BEFORE the promise settles: a caller that reads
      // the metrics right after its future resolves must see its own
      // request accounted for.
      if (req.deadline_ms > 0 &&
          Clock::now() >=
              p.enqueued + std::chrono::milliseconds(req.deadline_ms)) {
        metrics_.record_deadline_expired();
        try {
          fail_typed("deadline_expired",
                     "request deadline expired during fused dispatch",
                     {{"deadline_ms", std::to_string(req.deadline_ms)},
                      {"stage", "dispatch"}});
        } catch (...) {
          metrics_.record(req.kind, 0.0, /*ok=*/false);
          metrics_.record_fused_requests(1);
          settled[i] = 1;
          p.promise.set_exception(std::current_exception());
        }
        continue;
      }
      r.latency_us =
          std::chrono::duration<double, std::micro>(Clock::now() - p.enqueued)
              .count();
      metrics_.record(req.kind, r.latency_us, /*ok=*/true);
      metrics_.record_fused_requests(1);
      settled[i] = 1;
      p.promise.set_value(std::move(r));
    } catch (...) {
      // Head computation failed for this request alone: leave it for the
      // solo retry.
    }
  }
}

Tensor InferenceEngine::node_embeddings(const MossSession& s,
                                        const core::CircuitBatch& batch,
                                        std::uint64_t batch_hash,
                                        const plan::ExecutionPlan* plan) const {
  const auto compute = [&] {
    MOSS_FAULT_POINT("serve.session.forward");
    // The hash-consed cone path needs somewhere to store per-cone rows and a
    // plan whose cones describe *this* batch; it is bit-identical to the
    // packaged forward (and falls back to it internally for rounds != 1).
    if (plan != nullptr && cache_ != nullptr &&
        plan->batch_hash == batch_hash) {
      ConeCacheAdapter cones(*cache_, s.fingerprint());
      return plan::hashcons_node_embeddings(s.model().gnn(), *plan, batch,
                                            cones);
    }
    return s.model().node_embeddings(batch).detach();
  };
  if (!cache_) return compute();
  return cache_->get_or_compute(node_embedding_key(s.fingerprint(), batch_hash),
                                compute);
}

Tensor InferenceEngine::netlist_embedding(const MossSession& s,
                                          const core::CircuitBatch& batch,
                                          std::uint64_t batch_hash,
                                          const plan::ExecutionPlan* plan) const {
  const auto compute = [&] {
    const Tensor h = node_embeddings(s, batch, batch_hash, plan);
    MOSS_FAULT_POINT("serve.session.forward");
    return s.model().netlist_embedding(batch, h).detach();
  };
  if (!cache_) return compute();
  return cache_->get_or_compute(netlist_key(s.fingerprint(), batch_hash), compute);
}

Tensor InferenceEngine::rtl_embedding(const MossSession& s,
                                      const std::string& text) const {
  const auto compute = [&] {
    MOSS_FAULT_POINT("serve.session.forward");
    return s.model().rtl_embedding(text).detach();
  };
  if (!cache_) return compute();
  return cache_->get_or_compute(rtl_key(s.fingerprint(), text), compute);
}

InferenceEngine::ResolvedBatch InferenceEngine::resolve_batch(
    const MossSession& s, const Request& req) const {
  ResolvedBatch rb;
  if (req.kind == RequestKind::kFepRank) return rb;  // pool-driven, no batch
  rb.plan = req.plan;
  if (req.batch) {
    rb.batch = req.batch;
    rb.hash = core::content_hash(*req.batch);
  } else if (req.plan) {
    rb.batch =
        std::make_shared<core::CircuitBatch>(plan::to_batch(*req.plan));
    rb.hash = req.plan->batch_hash;
  } else if (req.circuit) {
    // Batch construction is encoder-side tokenization against this
    // session's encoder, so the result is only valid for sessions sharing
    // its fingerprint — recorded so fallback paths know.
    rb.batch = std::make_shared<core::CircuitBatch>(s.build(*req.circuit));
    rb.hash = core::content_hash(*rb.batch);
    rb.built_uid = s.fingerprint();
  } else {
    fail_typed("bad_request", "request needs a circuit or a prebuilt batch");
  }
  return rb;
}

std::uint64_t InferenceEngine::verify_budget(const Request& req) const {
  if (req.verify_conflict_budget == 0) return cfg_.verify_conflict_limit;
  return std::min(req.verify_conflict_budget, cfg_.verify_conflict_limit);
}

Response InferenceEngine::process_verify(const Request& req) {
  if (!req.circuit || !req.circuit_b) {
    fail_typed("bad_request",
               "VERIFY needs two circuits (circuit and circuit_b)");
  }
  sat::OracleConfig ocfg;
  ocfg.seed = cfg_.verify_seed;
  ocfg.conflict_budget = verify_budget(req);
  ocfg.max_frames = cfg_.verify_max_frames;
  const sat::EquivOracle oracle(ocfg);
  const sat::OracleResult res =
      oracle.check(req.circuit->netlist, req.circuit_b->netlist);
  if (res.verdict == sat::Verdict::kUnknown &&
      res.unknown_reason == sat::UnknownReason::kConflictBudget) {
    // Budget exhaustion is the VERIFY analogue of a deadline: permanent,
    // because retrying the identical budget re-runs the identical
    // (deterministic) search. The caller must raise the budget to make
    // progress.
    metrics_.record_verify_timeout();
    fail_typed("verify_timeout",
               "SAT conflict budget exhausted before a verdict",
               {{"conflicts", std::to_string(res.stats.conflicts)},
                {"budget", std::to_string(ocfg.conflict_budget)}});
  }
  Response r;
  r.kind = RequestKind::kVerify;
  r.model = req.model;
  r.verdict = sat::to_string(res.verdict);
  r.verify_detail = res.detail;
  r.verify_conflicts = res.stats.conflicts;
  r.verify_frames = res.frames_checked;
  if (res.verdict == sat::Verdict::kNotEquivalent &&
      !res.cex.inputs.empty()) {
    // Render the sim-confirmed counterexample compactly: one `fN` group
    // per frame, inputs in the oracle's sorted order.
    std::string cex;
    for (std::size_t f = 0; f < res.cex.frames.size(); ++f) {
      if (f > 0) cex += " | ";
      cex += "f" + std::to_string(f) + ":";
      for (std::size_t i = 0; i < res.cex.inputs.size(); ++i) {
        cex += " " + res.cex.inputs[i] + "=" +
               (res.cex.frames[f][i] != 0 ? "1" : "0");
      }
    }
    if (!res.cex.mismatch_output.empty()) {
      cex += " -> " + res.cex.mismatch_output;
    }
    r.verify_cex = std::move(cex);
  }
  return r;
}

Response InferenceEngine::process(const Request& req) {
  // VERIFY never touches a model session, the cache or the breaker: it is
  // a pure solver call with its own admission cap and failure taxonomy.
  if (req.kind == RequestKind::kVerify) return process_verify(req);
  ModelRegistry::Acquired acq;
  try {
    acq = registry_.acquire(req.model);
  } catch (const std::exception& e) {
    // Breaker open with no fallback session: the healthy path is gone, but
    // a stale cached answer may still be acceptable for low-priority kinds.
    if (is_transient(e) && cfg_.allow_stale && low_priority(req.kind)) {
      if (std::optional<Response> stale = try_serve_stale(req)) {
        metrics_.record_degraded();
        return std::move(*stale);
      }
    }
    throw;
  }
  const MossSession& s = *acq.session;
  // One batch resolution (and one content hash) per request — every
  // downstream consumer, including the stale fallback below, reuses it.
  ResolvedBatch rb;
  try {
    rb = resolve_batch(s, req);
    Response r = process_with(s, req, rb);
    registry_.report(req.model, s.uid(), /*ok=*/true,
                     /*transient_failure=*/false, acq.probe);
    if (acq.fallback) {
      // Served by the last-known-good session while the breaker is open.
      r.degraded = true;
      metrics_.record_degraded();
    }
    return r;
  } catch (const std::exception& e) {
    const bool transient = is_transient(e);
    registry_.report(req.model, s.uid(), /*ok=*/false, transient, acq.probe);
    if (transient && cfg_.allow_stale && low_priority(req.kind)) {
      if (std::optional<Response> stale = try_serve_stale(req, &rb)) {
        metrics_.record_degraded();
        return std::move(*stale);
      }
    }
    throw;
  }
}

std::optional<Response> InferenceEngine::try_serve_stale(
    const Request& req, const ResolvedBatch* rb) {
  if (cache_ == nullptr || !low_priority(req.kind)) return std::nullopt;
  const std::shared_ptr<const MossSession> session =
      registry_.try_get(req.model);
  if (!session) return std::nullopt;
  const MossSession& s = *session;
  try {
    Response r;
    r.kind = req.kind;
    r.model = req.model;
    r.session_uid = s.uid();
    r.degraded = true;
    if (req.kind == RequestKind::kFepRank) {
      std::shared_ptr<const Pool> pool;
      {
        const std::lock_guard<std::mutex> lock(pools_mu_);
        const auto it = pools_.find(req.pool);
        if (it != pools_.end()) pool = it->second;
      }
      const std::string& text =
          !req.rtl_text.empty()
              ? req.rtl_text
              : (req.circuit ? req.circuit->module_text : req.rtl_text);
      if (!pool || text.empty()) return std::nullopt;
      const std::optional<Tensor> r_e =
          cache_->get(rtl_key(s.fingerprint(), text));
      if (!r_e) return std::nullopt;
      r.ranking.reserve(pool->members.size());
      for (std::size_t j = 0; j < pool->members.size(); ++j) {
        const std::optional<Tensor> n_e =
            cache_->get(netlist_key(s.fingerprint(), pool->hashes[j]));
        if (!n_e) return std::nullopt;  // partial rankings would mislead
        r.ranking.push_back(RankEntry{j, pool->members[j]->name,
                                      s.model().pair_score(*r_e, *n_e)});
      }
      std::sort(r.ranking.begin(), r.ranking.end(),
                [](const RankEntry& a, const RankEntry& b) {
                  return a.score != b.score ? a.score > b.score
                                            : a.index < b.index;
                });
      return r;
    }
    // kEmbed. Reuse the dispatcher's resolved batch when it is usable here
    // (caller-provided, or built by this very session); otherwise resolve
    // once ourselves. Batch construction is encoder-side tokenization, not
    // a model forward pass, so it is safe even when the session's forwards
    // fail.
    std::shared_ptr<const core::CircuitBatch> batch;
    std::uint64_t bh = 0;
    if (rb != nullptr && rb->batch &&
        (rb->built_uid == 0 || rb->built_uid == s.fingerprint())) {
      batch = rb->batch;
      bh = rb->hash;
    } else if (req.batch) {
      batch = req.batch;
      bh = core::content_hash(*batch);
    } else if (req.plan) {
      batch = std::make_shared<core::CircuitBatch>(plan::to_batch(*req.plan));
      bh = req.plan->batch_hash;
    } else if (req.circuit) {
      batch = std::make_shared<core::CircuitBatch>(s.build(*req.circuit));
      bh = core::content_hash(*batch);
    } else {
      return std::nullopt;
    }
    const std::optional<Tensor> n_e =
        cache_->get(netlist_key(s.fingerprint(), bh));
    if (!n_e) return std::nullopt;
    r.embedding = n_e->data();
    const std::string& text =
        !req.rtl_text.empty() ? req.rtl_text : batch->module_text;
    if (!text.empty()) {
      const std::optional<Tensor> r_e =
          cache_->get(rtl_key(s.fingerprint(), text));
      if (!r_e) return std::nullopt;  // keep the response shape consistent
      r.rtl_embedding = r_e->data();
    }
    return r;
  } catch (...) {
    // Degraded serving is best-effort; the caller reports the real failure.
    return std::nullopt;
  }
}

Response InferenceEngine::process_with(const MossSession& s,
                                       const Request& req,
                                       const ResolvedBatch& rb) {
  Response r;
  r.kind = req.kind;
  r.model = req.model;
  r.session_uid = s.uid();

  if (req.kind == RequestKind::kFepRank) {
    std::shared_ptr<const Pool> pool;
    {
      const std::lock_guard<std::mutex> lock(pools_mu_);
      const auto it = pools_.find(req.pool);
      if (it != pools_.end()) pool = it->second;
    }
    if (!pool) {
      fail_typed("unknown_pool", "FEP-rank pool not registered",
                 {{"pool", req.pool}});
    }
    const std::string& text =
        !req.rtl_text.empty()
            ? req.rtl_text
            : (req.circuit ? req.circuit->module_text : req.rtl_text);
    if (text.empty()) {
      fail_typed("bad_request", "FEP-rank needs query RTL text");
    }
    const Tensor r_e = rtl_embedding(s, text);
    r.ranking.reserve(pool->members.size());
    for (std::size_t j = 0; j < pool->members.size(); ++j) {
      const core::CircuitBatch& member = *pool->members[j];
      const Tensor n_e = netlist_embedding(s, member, pool->hashes[j],
                                           /*plan=*/nullptr);
      r.ranking.push_back(
          RankEntry{j, member.name, s.model().pair_score(r_e, n_e)});
    }
    std::sort(r.ranking.begin(), r.ranking.end(),
              [](const RankEntry& a, const RankEntry& b) {
                return a.score != b.score ? a.score > b.score
                                          : a.index < b.index;
              });
    return r;
  }

  // Circuit-bound kinds: ATP, TRP+PP, EMBED. The batch and its content hash
  // were resolved exactly once in process().
  const std::shared_ptr<const core::CircuitBatch>& batch = rb.batch;
  const std::uint64_t bh = rb.hash;
  const plan::ExecutionPlan* pl = rb.plan.get();

  switch (req.kind) {
    case RequestKind::kAtp: {
      const Tensor h = node_embeddings(s, *batch, bh, pl);
      MOSS_FAULT_POINT("serve.session.forward");
      const Tensor flop =
          s.model().predict_arrival(*batch, h, batch->flop_rows);
      r.values.reserve(batch->flop_rows.size());
      for (std::size_t i = 0; i < batch->flop_rows.size(); ++i) {
        r.values.push_back(static_cast<double>(flop.at(i, 0)) *
                           core::kArrivalScale);
      }
      return r;
    }
    case RequestKind::kTrpPp: {
      if (!req.circuit) {
        fail_typed("bad_request",
                   "TRP+PP needs the circuit (power model reads the "
                   "netlist)");
      }
      const Tensor h = node_embeddings(s, *batch, bh, pl);
      MOSS_FAULT_POINT("serve.session.forward");
      const core::LocalPredictions pred = s.model().predict_local(*batch, h);
      r.values.reserve(batch->cell_rows.size());
      std::vector<double> rates(req.circuit->netlist.num_nodes(), 0.0);
      for (std::size_t i = 0; i < batch->cell_rows.size(); ++i) {
        const double t = static_cast<double>(pred.toggle.at(i, 0));
        r.values.push_back(t);
        rates[static_cast<std::size_t>(batch->cell_rows[i])] = t;
      }
      r.power_uw =
          power::analyze_power(req.circuit->netlist, rates).total_uw;
      return r;
    }
    case RequestKind::kEmbed: {
      const Tensor n_e = netlist_embedding(s, *batch, bh, pl);
      r.embedding = n_e.data();
      const std::string& text = !req.rtl_text.empty()
                                    ? req.rtl_text
                                    : batch->module_text;
      if (!text.empty()) {
        r.rtl_embedding = rtl_embedding(s, text).data();
      }
      return r;
    }
    case RequestKind::kFepRank:
      break;  // handled above
    case RequestKind::kVerify:
      break;  // never reaches a session: process() routed it already
  }
  fail_typed("bad_request", "unknown request kind");
}

}  // namespace moss::serve
