#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace moss::serve {

/// Request kinds the inference engine serves. kMetrics-style admin traffic
/// is not counted here — only model work.
enum class RequestKind : std::uint8_t {
  kAtp = 0,     ///< per-DFF arrival-time prediction
  kTrpPp = 1,   ///< per-cell toggle rates + derived circuit power
  kEmbed = 2,   ///< netlist + RTL embeddings
  kFepRank = 3, ///< rank a registered pool against a query RTL
  kVerify = 4,  ///< exact SAT equivalence check (no model session)
};
inline constexpr std::size_t kNumRequestKinds = 5;

const char* to_string(RequestKind kind);

/// Fixed-bucket log2 latency histogram (microseconds). Bucket i covers
/// [2^i, 2^{i+1}) us, so 32 buckets span 1 us .. ~71 min — no allocation,
/// O(1) record, and quantiles read directly off the cumulative counts.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(double micros);
  std::uint64_t count() const { return count_; }
  double mean_us() const {
    return count_ == 0 ? 0.0 : sum_us_ / static_cast<double>(count_);
  }
  double max_us() const { return max_us_; }
  /// Quantile `q` in [0,1] (0 when empty), linearly interpolated within the
  /// holding bucket and clamped to max_us() — so the unbounded last bucket
  /// never reports a latency larger than anything observed. Still coarse
  /// (log2 buckets), but no longer biased to bucket upper edges.
  double quantile_us(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

/// Counter snapshot of one endpoint (request kind).
struct EndpointSnapshot {
  std::uint64_t requests = 0;  ///< completed OK
  std::uint64_t errors = 0;    ///< failed (exception set on the future)
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double mean_us = 0.0, max_us = 0.0;
};

/// Everything ServeMetrics knows, copied out under one lock.
struct MetricsSnapshot {
  std::array<EndpointSnapshot, kNumRequestKinds> endpoints{};
  std::uint64_t total_ok = 0;
  std::uint64_t total_errors = 0;
  std::uint64_t rejected = 0;          ///< queue-full rejections
  std::uint64_t deadline_expired = 0;  ///< dropped before or during dispatch
  std::uint64_t shed = 0;              ///< admission-control load shedding
  std::uint64_t degraded = 0;          ///< responses served degraded/stale
  std::uint64_t retries = 0;           ///< retry attempts (protocol layer)
  std::uint64_t verify_timeouts = 0;   ///< VERIFY conflict budgets exhausted
  std::uint64_t verify_shed = 0;       ///< VERIFY admission-cap rejections
  std::uint64_t batches = 0;           ///< micro-batches dispatched
  double mean_batch_size = 0.0;
  // Cross-request fused batching.
  std::uint64_t fused_batches = 0;   ///< stacked propagations run
  std::uint64_t fused_rows = 0;      ///< feature rows propagated fused
  std::uint64_t fused_requests = 0;  ///< requests served via the fused path
  std::uint64_t fused_retries = 0;   ///< fused members retried solo
  /// Batch-occupancy histogram: circuits stacked per fused propagation.
  /// Bucket i counts propagations of exactly i+1 units; the last bucket
  /// collects >= kFusedOccupancyBuckets units.
  static constexpr std::size_t kFusedOccupancyBuckets = 16;
  std::array<std::uint64_t, kFusedOccupancyBuckets> fused_occupancy{};
  std::size_t queue_depth = 0;   ///< at snapshot time
  std::size_t queue_peak = 0;    ///< high-water mark
  double uptime_s = 0.0;
  double qps = 0.0;  ///< completed requests / uptime
  // Cache counters (zero when the engine runs cache-less).
  std::uint64_t cache_hits = 0, cache_misses = 0, cache_evictions = 0;
  std::uint64_t cache_oversize_rejections = 0;  ///< entries too big to admit
  std::size_t cache_bytes = 0, cache_entries = 0;
  // Resilience state (pushed by the engine at snapshot time, like the
  // cache counters).
  std::string health = "ok";
  std::size_t breakers_open = 0;  ///< breakers currently open/half-open
  std::uint64_t breaker_open_events = 0;
  std::uint64_t breaker_half_open_events = 0;
  std::uint64_t breaker_close_events = 0;
};

/// Thread-safe serving metrics: per-endpoint latency histograms, queue
/// gauges and overload counters. The engine owns one; dump as aligned text
/// for humans or single-line JSON for scrapers.
class ServeMetrics {
 public:
  ServeMetrics();

  void record(RequestKind kind, double micros, bool ok);
  void record_rejected();
  void record_deadline_expired();
  void record_shed();
  void record_degraded();
  void record_retry();
  void record_verify_timeout();
  void record_verify_shed();
  void record_batch(std::size_t batch_size);
  /// One stacked propagation: `units` circuits packed into `rows` feature
  /// rows. Feeds the batch-occupancy histogram.
  void record_fused_batch(std::size_t units, std::size_t rows);
  /// Requests settled through the fused path (per group, whether their
  /// units were propagated or came warm from the cache).
  void record_fused_requests(std::size_t n);
  /// Fused-group members that fell back to a solo dispatch.
  void record_fused_retries(std::size_t n);
  void set_queue_depth(std::size_t depth);
  /// Cache counters are pushed by the engine at snapshot time (the cache
  /// keeps its own atomics; metrics just report them).
  void set_cache_counters(std::uint64_t hits, std::uint64_t misses,
                          std::uint64_t evictions, std::size_t bytes,
                          std::size_t entries,
                          std::uint64_t oversize_rejections = 0);
  /// Health + breaker roll-up, pushed by the engine at snapshot time.
  void set_resilience(const std::string& health, std::size_t breakers_open,
                      std::uint64_t open_events,
                      std::uint64_t half_open_events,
                      std::uint64_t close_events);
  std::uint64_t shed_count() const;
  std::uint64_t degraded_count() const;

  MetricsSnapshot snapshot() const;
  std::string text() const;
  std::string json() const;

 private:
  mutable std::mutex mu_;
  std::array<LatencyHistogram, kNumRequestKinds> hist_;
  std::array<std::uint64_t, kNumRequestKinds> errors_{};
  std::uint64_t rejected_ = 0;
  std::uint64_t deadline_expired_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t verify_timeouts_ = 0;
  std::uint64_t verify_shed_ = 0;
  std::string health_ = "ok";
  std::size_t breakers_open_ = 0;
  std::uint64_t breaker_open_events_ = 0;
  std::uint64_t breaker_half_open_events_ = 0;
  std::uint64_t breaker_close_events_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_requests_ = 0;
  std::uint64_t fused_batches_ = 0;
  std::uint64_t fused_rows_ = 0;
  std::uint64_t fused_requests_ = 0;
  std::uint64_t fused_retries_ = 0;
  std::array<std::uint64_t, MetricsSnapshot::kFusedOccupancyBuckets>
      fused_occupancy_{};
  std::size_t queue_depth_ = 0;
  std::size_t queue_peak_ = 0;
  std::uint64_t cache_hits_ = 0, cache_misses_ = 0, cache_evictions_ = 0;
  std::uint64_t cache_oversize_rejections_ = 0;
  std::size_t cache_bytes_ = 0, cache_entries_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace moss::serve
