#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core_util/thread_pool.hpp"
#include "data/dataset.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "serve/resilience.hpp"
#include "tensor/kernels.hpp"

namespace moss::plan {
struct ExecutionPlan;
}

namespace moss::serve {

/// One inference request. ATP/TRP+PP/EMBED need a circuit (and use `batch`
/// when the caller prebuilt it against the target session's encoder —
/// otherwise the engine builds one); FEP-rank needs only `rtl_text` (or
/// takes it from the circuit) plus the name of a registered pool.
struct Request {
  RequestKind kind = RequestKind::kAtp;
  std::shared_ptr<const data::LabeledCircuit> circuit;
  std::shared_ptr<const core::CircuitBatch> batch;
  /// Precompiled execution plan for the same circuit (moss::plan). Stands in
  /// for `batch` (the engine reconstructs one via plan::to_batch) and, when a
  /// cache is attached and the serving model runs one GNN round, switches
  /// node embeddings to the hash-consed cone path: cones shared with earlier
  /// requests are copied from the cache instead of re-propagated, with
  /// bit-identical results.
  std::shared_ptr<const plan::ExecutionPlan> plan;
  std::string rtl_text;             ///< FEP-rank query RTL
  std::string pool;                 ///< FEP-rank target pool name
  /// VERIFY: the second circuit of the equivalence pair (`circuit` is the
  /// first). Both must carry netlists; anything else is a typed
  /// bad_request.
  std::shared_ptr<const data::LabeledCircuit> circuit_b;
  /// VERIFY: per-request CDCL conflict budget. 0 = the engine's
  /// verify_conflict_limit. Values above the engine limit are clamped —
  /// a client cannot buy more solver time than the operator configured.
  std::uint64_t verify_conflict_budget = 0;
  std::string model = "default";    ///< registry name to serve with
  /// Soft deadline from submit time; 0 = none. A request still queued when
  /// its deadline passes is failed with a typed ContextError instead of
  /// occupying a batch slot.
  int deadline_ms = 0;
};

struct RankEntry {
  std::size_t index = 0;  ///< pool member index
  std::string name;       ///< pool member circuit name
  float score = 0.0f;
};

struct Response {
  RequestKind kind = RequestKind::kAtp;
  /// ATP: per-flop arrival times (ps, netlist flop order).
  /// TRP+PP: per-cell predicted toggle rates (cell_rows order).
  std::vector<double> values;
  double power_uw = 0.0;               ///< TRP+PP: power at predicted rates
  std::vector<float> embedding;        ///< EMBED: pooled netlist embedding
  std::vector<float> rtl_embedding;    ///< EMBED: RTL text embedding
  std::vector<RankEntry> ranking;      ///< FEP-rank: pool sorted by score
  /// VERIFY: "EQUIVALENT", "NOT_EQUIVALENT" or "UNKNOWN" (depth bound hit
  /// with no counterexample — the answer is typed, not an error; conflict
  /// budget exhaustion IS an error, reason=verify_timeout). Empty for every
  /// other request kind.
  std::string verdict;
  std::string verify_detail;           ///< VERIFY: human-readable one-liner
  std::uint64_t verify_conflicts = 0;  ///< VERIFY: CDCL conflicts spent
  int verify_frames = 0;               ///< VERIFY: time frames checked
  /// VERIFY: rendered counterexample ("f0 a=1 b=0 ... out=<name>"), empty
  /// unless NOT_EQUIVALENT. Every counterexample was replayed through
  /// aig_sim before it got here.
  std::string verify_cex;
  std::string model;                   ///< session name that served it
  std::uint64_t session_uid = 0;
  double latency_us = 0.0;             ///< queue wait + compute
  /// Set when the answer did not come from a healthy forward pass of the
  /// current session: served by the last-known-good fallback session while
  /// the breaker is open, or straight from stale EmbeddingCache entries.
  /// Degraded responses are NOT guaranteed bit-identical to the current
  /// model's output; non-degraded ones are.
  bool degraded = false;
};

struct EngineConfig {
  /// Micro-batching: dispatch when `max_batch` requests are queued or the
  /// oldest has waited `max_delay_ms`, whichever comes first.
  std::size_t max_batch = 8;
  int max_delay_ms = 2;
  /// Bounded admission queue; submit() beyond this throws a typed
  /// ContextError (reason=queue_full) instead of blocking the caller.
  std::size_t queue_capacity = 64;
  /// Worker threads for fanning a batch out (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Utilization-based load shedding in front of the queue: low-priority
  /// kinds (EMBED, FEP-rank) are refused with a typed transient
  /// `reason=shed` error before the hard queue_full bound is reached.
  AdmissionConfig admission;
  /// Degraded mode: when the model's breaker is open (or a shed would
  /// reject the request), EMBED and FEP-rank answers may be served from
  /// stale EmbeddingCache entries with Response::degraded set.
  bool allow_stale = false;
  /// VERIFY latency class. SAT checks are orders of magnitude more
  /// expensive than a forward pass, so they get their own admission cap:
  /// the summed conflict budgets of in-flight VERIFY requests may not
  /// exceed verify_inflight_budget — beyond that, submits are refused with
  /// a typed transient `verify_capacity` error (counted as verify_shed)
  /// instead of wedging the batch pipeline behind solver calls.
  std::uint64_t verify_conflict_limit = 50000;   ///< per-request default/cap
  std::uint64_t verify_inflight_budget = 200000; ///< summed in-flight cap
  int verify_max_frames = 8;                     ///< BMC unroll depth
  std::uint64_t verify_seed = 1;                 ///< solver determinism seed
  /// Cross-request fused batching: model-backed requests of the same kind
  /// and model within one dispatch window are packed into a single stacked
  /// two-phase propagation — one GEMM per layer per cluster across all
  /// grouped circuits (FEP-rank additionally dedupes pool members shared
  /// between concurrent requests, so a pool is propagated once per window,
  /// not once per request). Responses are bit-identical to the sequential
  /// per-request path; a request that fails inside a fused batch is retried
  /// solo, so it can never poison its batchmates.
  bool fused_batching = true;
  /// Stacked-row cap per fused propagation; unit sets beyond it run in
  /// chunks (bounds peak ScratchArena growth for mega-batches).
  std::size_t fused_max_rows = 1u << 20;
};

/// Batched inference engine over registered MossSessions.
///
///   ModelRegistry reg;                      // name -> warm session
///   EmbeddingCache cache(64 << 20);         // content-addressed LRU
///   InferenceEngine eng(reg, &cache, {});
///   eng.register_pool("pool", batches);     // FEP-rank corpus
///   auto f = eng.submit({.kind = RequestKind::kAtp, .circuit = lc});
///   Response r = f.get();                   // throws what the request threw
///
/// A scheduler thread collects submissions into micro-batches (max_batch /
/// max_delay) and fans each batch out on a moss::ThreadPool. Every request
/// is isolated: a throwing request (including injected faults) fails only
/// its own future — the scheduler and queue keep running. All embedding
/// reuse goes through the content-addressed cache when one is attached, so
/// cached responses are bit-identical to direct MossModel calls.
///
/// Resilience: an AdmissionController sheds low-priority load before the
/// queue fills, the ModelRegistry's per-session circuit breakers route
/// around (or refuse) a failing session, and with `allow_stale` the engine
/// answers EMBED/FEP-rank from stale cache entries (marked degraded) when
/// the healthy path is unavailable. health() rolls the whole picture into
/// one OK/DEGRADED/OVERLOADED/DOWN state.
///
/// MOSS_FAULT sites: "serve.engine.dispatch" (per request, at batch
/// dispatch), "serve.session.forward" (inside every model forward, skipped
/// on cache hits), "serve.admission.enqueue" (inside admission control),
/// "serve.cache.insert" (inside EmbeddingCache::put).
class InferenceEngine {
 public:
  InferenceEngine(ModelRegistry& registry, EmbeddingCache* cache,
                  EngineConfig cfg = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueue a request. Throws ContextError (reason=queue_full) when the
  /// bounded queue is at capacity and (reason=stopped) after stop().
  std::future<Response> submit(Request req);
  /// submit + wait. Rethrows the request's failure.
  Response call(Request req);

  /// Register (or atomically replace) a named FEP-rank pool. Member
  /// content hashes are precomputed here so ranking requests only pay for
  /// cache lookups on the warm path.
  void register_pool(const std::string& name,
                     std::vector<std::shared_ptr<const core::CircuitBatch>>
                         members);
  std::size_t pool_size(const std::string& name) const;

  std::size_t queue_depth() const;
  ServeMetrics& metrics() { return metrics_; }
  EmbeddingCache* cache() { return cache_; }
  /// Current service health (queue utilization + breaker roll-up).
  HealthReport health() const;
  /// Refresh cache/resilience gauges into the metrics and return the dump.
  std::string metrics_text();
  std::string metrics_json();

  /// Drain the queue and stop the scheduler. Queued requests still get
  /// served; new submissions are rejected. Idempotent; the destructor
  /// calls it.
  void stop();

 private:
  struct Pending {
    Request req;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Pool {
    std::vector<std::shared_ptr<const core::CircuitBatch>> members;
    std::vector<std::uint64_t> hashes;  ///< content hash per member
  };
  /// A request's circuit batch resolved exactly once per dispatch: the
  /// batch, its content hash (the cache key for every embedding derived
  /// from it) and — when the batch was built by a session rather than
  /// provided by the caller — that session's fingerprint, so fallback paths
  /// know whether they may reuse it.
  struct ResolvedBatch {
    std::shared_ptr<const core::CircuitBatch> batch;
    std::shared_ptr<const plan::ExecutionPlan> plan;
    std::uint64_t hash = 0;
    std::uint64_t built_uid = 0;  ///< 0 = caller-provided / session-agnostic
  };

  void scheduler_loop();
  void dispatch(std::vector<Pending>& batch);
  /// Sequential per-request dispatch body: deadline checks, the
  /// "serve.engine.dispatch" fault site, process(), metrics, promise
  /// settlement. Also the solo-retry path for members of a fused group
  /// that could not be served fused.
  void dispatch_one(Pending& p,
                    std::chrono::steady_clock::time_point dispatch_time);
  /// Fused path for one same-kind/same-model group: per-request pre-checks
  /// (queue deadline, dispatch fault site) with the same isolation as the
  /// sequential path, then one stacked propagation; members the fused pass
  /// cannot settle fall back to dispatch_one individually.
  void dispatch_fused(std::vector<Pending*>& group,
                      std::chrono::steady_clock::time_point dispatch_time);
  /// The fused compute. Settles the promises it can serve (marking
  /// `settled`); throws only for group-wide failures, leaving every
  /// unsettled member for the caller's solo retry.
  void fused_group(std::vector<Pending*>& group, std::vector<char>& settled);
  Response process(const Request& req);
  /// VERIFY path: no model session, no cache — a seeded EquivOracle run.
  /// Depth-bound UNKNOWN is a normal response; conflict-budget exhaustion
  /// throws typed `verify_timeout` (permanent: retrying the same budget
  /// cannot succeed).
  Response process_verify(const Request& req);
  /// The effective conflict budget of a VERIFY request (request override
  /// clamped to the engine limit).
  std::uint64_t verify_budget(const Request& req) const;
  Response process_with(const MossSession& s, const Request& req,
                        const ResolvedBatch& rb);
  ResolvedBatch resolve_batch(const MossSession& s, const Request& req) const;
  /// Degraded path: answer EMBED/FEP-rank purely from cached embeddings of
  /// the *current* session (no forward passes). Empty when anything needed
  /// is missing from the cache. `rb` (when non-null) carries the already
  /// resolved batch+hash so the stale path never re-hashes.
  std::optional<Response> try_serve_stale(const Request& req,
                                          const ResolvedBatch* rb = nullptr);
  void refresh_gauges();
  double worst_p95_us();
  tensor::Tensor node_embeddings(const MossSession& s,
                                 const core::CircuitBatch& batch,
                                 std::uint64_t batch_hash,
                                 const plan::ExecutionPlan* plan) const;
  tensor::Tensor netlist_embedding(const MossSession& s,
                                   const core::CircuitBatch& batch,
                                   std::uint64_t batch_hash,
                                   const plan::ExecutionPlan* plan) const;
  tensor::Tensor rtl_embedding(const MossSession& s,
                               const std::string& text) const;

  ModelRegistry& registry_;
  EmbeddingCache* cache_;  ///< may be null (compute-always mode)
  EngineConfig cfg_;
  ServeMetrics metrics_;
  AdmissionController admission_;
  std::atomic<std::uint64_t> submit_seq_{0};
  std::atomic<double> cached_p95_us_{0.0};
  /// Summed conflict budgets of admitted-but-unfinished VERIFY requests.
  /// Reserved in submit(), released when dispatch settles the promise.
  std::atomic<std::uint64_t> verify_inflight_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  mutable std::mutex pools_mu_;
  std::unordered_map<std::string, std::shared_ptr<const Pool>> pools_;

  ThreadPool workers_;
  // Reusable scratch buffers for dispatch workers; lives as long as the
  // engine so warm batches recycle instead of reallocating.
  tensor::kernels::ScratchArena arena_;
  std::thread scheduler_;
};

}  // namespace moss::serve
