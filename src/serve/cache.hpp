#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace moss::serve {

/// Strip comments and collapse whitespace runs, so formatting-only variants
/// of the same RTL content-address to the same cache entry.
std::string canonical_rtl(std::string_view text);

/// Cache key constructors. Every key mixes the owning session's content
/// fingerprint (see MossSession::fingerprint) so a model with different
/// parameters can never serve a predecessor's embeddings — while a
/// respawned process that reloads the same checkpoint reproduces the same
/// keys, which is what lets moss::cluster persist this cache across
/// restarts. A per-embedding-type tag keeps an RTL key from ever colliding
/// with a netlist key for the same content. (Parameter names below say
/// `session_uid` for history; the serve engine passes the fingerprint.)
std::uint64_t rtl_key(std::uint64_t session_uid, std::string_view rtl_text);
std::uint64_t node_embedding_key(std::uint64_t session_uid,
                                 std::uint64_t batch_hash);
std::uint64_t netlist_key(std::uint64_t session_uid,
                          std::uint64_t batch_hash);
/// Key of one hash-consed cone embedding row (moss::plan cone hashes).
std::uint64_t cone_key(std::uint64_t session_uid, std::uint64_t cone_hash);

/// Aggregate counters; `hits + misses` equals the number of lookups.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  /// puts refused because the value exceeds one shard's budget. Counted
  /// (and surfaced through metrics) rather than silently dropped: a nonzero
  /// rate means the budget is too small for the workload's tensors and the
  /// "cache" is doing nothing for them.
  std::uint64_t oversize_rejections = 0;
  std::size_t bytes = 0;    ///< accounted payload currently resident
  std::size_t entries = 0;
};

/// Content-addressed, byte-budgeted LRU cache for embedding tensors (RTL
/// embeddings, pooled netlist embeddings, per-node GNN embeddings).
///
/// The key space is split across `shards` independent shards (key low bits
/// pick the shard), each with its own mutex, LRU list and byte budget of
/// total/shards — concurrent requests for different keys rarely contend.
/// Values are detached tensor handles treated as immutable: a get returns
/// the same storage put stored, so cached results are bit-identical to the
/// first computation by construction.
///
/// Overweight values (bigger than one shard's budget) are not admitted;
/// the cache never exceeds its budget.
class EmbeddingCache {
 public:
  explicit EmbeddingCache(std::size_t byte_budget, std::size_t shards = 8);

  /// Look up `key`, refreshing its LRU position on hit.
  std::optional<tensor::Tensor> get(std::uint64_t key);
  /// Insert (or refresh) `key`. Counts one insert; evicts LRU entries of
  /// the shard until the value fits. MOSS_FAULT site "serve.cache.insert".
  void put(std::uint64_t key, const tensor::Tensor& value);
  /// get, else compute(), put, return. Concurrent callers may both compute
  /// (deterministically identical) values; one wins the slot.
  tensor::Tensor get_or_compute(
      std::uint64_t key, const std::function<tensor::Tensor()>& compute);

  /// Snapshot every resident entry for persistence (moss::cluster segment
  /// files). Entries come out coldest-first per shard, shards in index
  /// order — re-inserting them through put() in this order rebuilds the
  /// same relative LRU recency (hottest entries end up most recent again).
  /// Tensors are the cache's immutable stored handles; callers must not
  /// mutate them.
  std::vector<std::pair<std::uint64_t, tensor::Tensor>> export_entries() const;

  CacheStats stats() const;
  void clear();
  std::size_t byte_budget() const { return budget_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Bytes one tensor occupies in the accounting (payload + fixed
  /// bookkeeping overhead per entry).
  static std::size_t entry_bytes(const tensor::Tensor& t);
  static constexpr std::size_t kEntryOverhead = 64;

 private:
  struct Entry {
    tensor::Tensor value;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> lru;  ///< front = most recent
    std::size_t bytes = 0;
    std::uint64_t hits = 0, misses = 0, evictions = 0, inserts = 0;
    std::uint64_t oversize_rejections = 0;
  };

  Shard& shard_for(std::uint64_t key) {
    return shards_[key & (shards_.size() - 1)];
  }

  std::size_t budget_;
  std::size_t shard_budget_;
  std::vector<Shard> shards_;
};

}  // namespace moss::serve
