#include "serve/resilience.hpp"

#include <cstdio>

namespace moss::serve {

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kOverloaded: return "overloaded";
    case HealthState::kDown: return "down";
  }
  return "unknown";
}

std::string HealthReport::line() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "state=%s models=%zu breakers_open=%zu unservable=%zu "
                "queue=%zu/%zu shed=%llu degraded_served=%llu",
                to_string(state), models, breakers_open, models_unservable,
                queue_depth, queue_capacity,
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(degraded_served));
  return buf;
}

HealthState roll_up_health(const HealthReport& r,
                           const AdmissionConfig& admission) {
  if (r.models == 0 || r.models_unservable == r.models) {
    return HealthState::kDown;
  }
  if (admission.enabled && r.queue_capacity > 0) {
    const double util = static_cast<double>(r.queue_depth) /
                        static_cast<double>(r.queue_capacity);
    if (util >= admission.shed_queue_fraction) return HealthState::kOverloaded;
  }
  if (r.breakers_open > 0) return HealthState::kDegraded;
  return HealthState::kOk;
}

}  // namespace moss::serve
