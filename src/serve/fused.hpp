#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/features.hpp"
#include "gnn/graph.hpp"
#include "serve/registry.hpp"

namespace moss::serve {

/// One circuit inside a fused cross-request batch: the resolved batch plus
/// its content hash (the cache key every embedding derived from it uses).
/// Units are deduplicated by hash before merging, so pool members shared
/// between concurrent FEP-rank requests are propagated exactly once.
struct FusedUnit {
  std::shared_ptr<const core::CircuitBatch> batch;
  std::uint64_t hash = 0;
};

/// A stacked multi-circuit graph. Unit i's nodes occupy rows
/// [row_offset[i], row_offset[i+1]) of the merged feature matrix and of
/// every hidden state derived from it.
struct MergedGraph {
  gnn::Graph graph;
  std::vector<std::size_t> row_offset;  ///< units + 1 entries
};

/// Level-align and merge the units' update schedules into one graph: merged
/// forward (turnaround) step l holds every unit's forward (turnaround) step
/// l — units with shallower schedules simply sit out the deeper steps —
/// groups with the same aggregator cluster are coalesced, and all node /
/// edge ids are offset by the unit's row base. One TwoPhaseGnn pass over
/// the result costs one GEMM per layer per cluster across *all* units,
/// which is where the kernels' large-M advantage lives.
///
/// Bit-identity: every op in TwoPhaseGnn::apply_step is row- or
/// segment-local — gather_matmul and the update GEMMs accumulate each
/// output element as one serial chain over its own inputs, and the segment
/// softmax/sum reduce per destination node over that node's contiguous,
/// order-preserved edge run — so a unit's rows evolve exactly as in its
/// solo run no matter which other units share the stacked matrix.
MergedGraph merge_graphs(const std::vector<FusedUnit>& units);

/// Result of one fused propagation.
struct FusedForward {
  std::vector<tensor::Tensor> node_h;  ///< per unit, in unit order
  std::size_t rows = 0;                ///< stacked feature rows propagated
};

/// Run one fused propagation over `units` and split the stacked hidden
/// state back per unit. Each returned matrix is bit-identical to
/// s.model().node_embeddings(*units[i].batch). Fires the
/// "serve.session.forward" fault site once per call, like a solo forward.
FusedForward fused_node_embeddings(const MossSession& s,
                                   const std::vector<FusedUnit>& units);

}  // namespace moss::serve
