#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "core/workflow.hpp"
#include "serve/resilience.hpp"

namespace moss::serve {

/// A warm, immutable inference session: the fine-tuned text encoder plus a
/// MossModel with loaded parameters, ready to answer requests without any
/// per-request setup. Sessions are shared between the registry and every
/// in-flight request via shared_ptr<const>, so a hot-swap never invalidates
/// work already dispatched.
///
/// Each session carries a process-unique `uid` (registry bookkeeping: swap
/// observability, outcome-report guards) and a content-derived
/// `fingerprint` — a hash of every model parameter, the encoder state and
/// the forward-pass config. The *fingerprint* is what embedding-cache keys
/// mix in: sessions with different parameters can never alias each other's
/// cached embeddings, while a respawned process that loads the same
/// checkpoint over the same corpus reproduces the same fingerprint — the
/// property that makes an on-disk embedding cache (moss::cluster) sound
/// across restarts. Inference is deterministic, so two sessions sharing a
/// fingerprint produce bit-identical embeddings by construction.
class MossSession {
 public:
  /// Owning load: construct the encoder from `cfg.encoder`, fine-tune it on
  /// `corpus` (seeded exactly like MossWorkflow, so a session loading a
  /// workflow-trained checkpoint reproduces the training-time encoder
  /// geometry bit-for-bit), build the model, then load `ckpt_path` through
  /// the verified MOSSCKP1 loader. An empty `ckpt_path` keeps the fresh
  /// initialization (useful for tests). Throws ContextError on a missing or
  /// corrupt checkpoint — the registry entry being replaced stays live.
  static std::shared_ptr<const MossSession> load(
      const core::WorkflowConfig& cfg, const std::vector<std::string>& corpus,
      const std::string& ckpt_path);

  /// Non-owning adoption of an externally trained model + encoder (the
  /// caller keeps both alive for the session's lifetime). Used to serve a
  /// model straight out of a training run without a checkpoint round-trip.
  static std::shared_ptr<const MossSession> adopt(
      const core::MossModel& model, const lm::TextEncoder& encoder);

  const core::MossModel& model() const { return *model_; }
  const lm::TextEncoder& encoder() const { return *encoder_; }
  const core::MossConfig& config() const { return model_->config(); }
  std::uint64_t uid() const { return uid_; }
  /// Content hash of everything a forward pass depends on: model parameter
  /// tensors (names, shapes, values), encoder table/token-weights/center,
  /// and the config fields that steer propagation. Computed once at
  /// load()/adopt() — sessions are immutable afterwards. Equal fingerprints
  /// ⇒ bit-identical outputs for equal inputs.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Build a model-ready batch for a labeled circuit with this session's
  /// encoder and feature config.
  core::CircuitBatch build(const data::LabeledCircuit& lc) const;

 private:
  MossSession();
  void seal();  ///< compute fingerprint_ once encoder_/model_ are final

  std::uint64_t uid_;
  std::uint64_t fingerprint_ = 0;
  std::unique_ptr<lm::TextEncoder> owned_encoder_;
  std::unique_ptr<core::MossModel> owned_model_;
  const lm::TextEncoder* encoder_ = nullptr;
  const core::MossModel* model_ = nullptr;
};

/// Name → session map with atomic hot-swap. install() publishes a new
/// session for a name in one shared_ptr store; readers that already hold a
/// session pointer keep using it (immutable), new requests see the new one.
/// Per-name version counters make swaps observable.
///
/// Every name also carries a CircuitBreaker guarding its *current* session:
/// the engine reports each request outcome back via report(), and acquire()
/// routes around an open breaker — to the last-known-good session (the most
/// recent session that completed a request successfully) when one differs
/// from the current install, else by failing typed `reason=breaker_open`
/// (transient) so the caller can serve stale or retry.
class ModelRegistry {
 public:
  struct Info {
    std::string name;
    std::uint64_t uid = 0;
    std::uint64_t version = 0;  ///< how many installs this name has seen
    BreakerState breaker = BreakerState::kClosed;
  };

  /// A session checked out for serving one request. `fallback` is set when
  /// the breaker was open and the last-known-good session was substituted
  /// (the response must be marked degraded); `probe` when this request is a
  /// half-open breaker probe.
  struct Acquired {
    std::shared_ptr<const MossSession> session;
    bool fallback = false;
    bool probe = false;
  };

  /// Breaker policy for sessions installed from now on (existing breakers
  /// keep their config). Call once at boot, before traffic.
  void set_breaker_config(const BreakerConfig& cfg);

  /// Publish `session` under `name`, replacing any previous session
  /// atomically. Returns the new version number (1 for a first install).
  /// The name's breaker resets to closed — a fresh install deserves a
  /// fresh chance.
  std::uint64_t install(const std::string& name,
                        std::shared_ptr<const MossSession> session);

  /// Session for `name`; throws ContextError("model not registered",
  /// model=<name>) when absent.
  std::shared_ptr<const MossSession> get(const std::string& name) const;
  std::shared_ptr<const MossSession> try_get(const std::string& name) const;

  /// Breaker-aware checkout. Closed/half-open(probe): the current session.
  /// Open: the last-known-good session when it differs from the current
  /// one, else a typed transient ContextError (reason=breaker_open).
  Acquired acquire(const std::string& name);

  /// Outcome of a request served by session `uid` of `name`. `probe` is
  /// Acquired.probe handed back — it lets the breaker resolve half-open
  /// even when the probe hits a permanent (client-fault) error. Reports
  /// against the last-known-good session track fallback health (a fallback
  /// that keeps failing transiently is demoted, see below); reports from
  /// any other stale uid are ignored (in-flight work after a hot-swap must
  /// not move the new session's breaker).
  void report(const std::string& name, std::uint64_t uid, bool ok,
              bool transient_failure = false, bool probe = false);

  BreakerState breaker_state(const std::string& name) const;

  /// Aggregate breaker counters across all names (for metrics/health).
  struct BreakerStats {
    std::size_t models = 0;
    std::size_t open = 0;         ///< open or half-open right now
    std::size_t unservable = 0;   ///< open with no distinct fallback
    std::uint64_t open_events = 0;
    std::uint64_t half_open_events = 0;
    std::uint64_t close_events = 0;
  };
  BreakerStats breaker_stats() const;

  bool remove(const std::string& name);
  std::vector<Info> list() const;

 private:
  struct Slot {
    std::shared_ptr<const MossSession> session;
    std::shared_ptr<const MossSession> last_good;  ///< last session to succeed
    /// Consecutive transient failures reported against last_good while it
    /// was serving as the fallback; at failure_threshold the fallback is
    /// demoted (last_good cleared) so a broken fallback stops being offered
    /// and callers get the faster typed breaker_open instead.
    int fallback_failures = 0;
    std::uint64_t version = 0;
    CircuitBreaker breaker;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> slots_;
  BreakerConfig breaker_cfg_;
};

}  // namespace moss::serve
