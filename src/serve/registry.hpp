#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "core/workflow.hpp"

namespace moss::serve {

/// A warm, immutable inference session: the fine-tuned text encoder plus a
/// MossModel with loaded parameters, ready to answer requests without any
/// per-request setup. Sessions are shared between the registry and every
/// in-flight request via shared_ptr<const>, so a hot-swap never invalidates
/// work already dispatched.
///
/// Each session carries a process-unique `uid` that is mixed into every
/// embedding-cache key: after a reload/hot-swap, the new session's results
/// can never alias the old session's cached embeddings.
class MossSession {
 public:
  /// Owning load: construct the encoder from `cfg.encoder`, fine-tune it on
  /// `corpus` (seeded exactly like MossWorkflow, so a session loading a
  /// workflow-trained checkpoint reproduces the training-time encoder
  /// geometry bit-for-bit), build the model, then load `ckpt_path` through
  /// the verified MOSSCKP1 loader. An empty `ckpt_path` keeps the fresh
  /// initialization (useful for tests). Throws ContextError on a missing or
  /// corrupt checkpoint — the registry entry being replaced stays live.
  static std::shared_ptr<const MossSession> load(
      const core::WorkflowConfig& cfg, const std::vector<std::string>& corpus,
      const std::string& ckpt_path);

  /// Non-owning adoption of an externally trained model + encoder (the
  /// caller keeps both alive for the session's lifetime). Used to serve a
  /// model straight out of a training run without a checkpoint round-trip.
  static std::shared_ptr<const MossSession> adopt(
      const core::MossModel& model, const lm::TextEncoder& encoder);

  const core::MossModel& model() const { return *model_; }
  const lm::TextEncoder& encoder() const { return *encoder_; }
  const core::MossConfig& config() const { return model_->config(); }
  std::uint64_t uid() const { return uid_; }

  /// Build a model-ready batch for a labeled circuit with this session's
  /// encoder and feature config.
  core::CircuitBatch build(const data::LabeledCircuit& lc) const;

 private:
  MossSession();

  std::uint64_t uid_;
  std::unique_ptr<lm::TextEncoder> owned_encoder_;
  std::unique_ptr<core::MossModel> owned_model_;
  const lm::TextEncoder* encoder_ = nullptr;
  const core::MossModel* model_ = nullptr;
};

/// Name → session map with atomic hot-swap. install() publishes a new
/// session for a name in one shared_ptr store; readers that already hold a
/// session pointer keep using it (immutable), new requests see the new one.
/// Per-name version counters make swaps observable.
class ModelRegistry {
 public:
  struct Info {
    std::string name;
    std::uint64_t uid = 0;
    std::uint64_t version = 0;  ///< how many installs this name has seen
  };

  /// Publish `session` under `name`, replacing any previous session
  /// atomically. Returns the new version number (1 for a first install).
  std::uint64_t install(const std::string& name,
                        std::shared_ptr<const MossSession> session);

  /// Session for `name`; throws ContextError("model not registered",
  /// model=<name>) when absent.
  std::shared_ptr<const MossSession> get(const std::string& name) const;
  std::shared_ptr<const MossSession> try_get(const std::string& name) const;
  bool remove(const std::string& name);
  std::vector<Info> list() const;

 private:
  struct Slot {
    std::shared_ptr<const MossSession> session;
    std::uint64_t version = 0;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> slots_;
};

}  // namespace moss::serve
