#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace moss::serve {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kAtp: return "atp";
    case RequestKind::kTrpPp: return "trp_pp";
    case RequestKind::kEmbed: return "embed";
    case RequestKind::kFepRank: return "fep_rank";
    case RequestKind::kVerify: return "verify";
  }
  return "unknown";
}

void LatencyHistogram::record(double micros) {
  const double us = std::max(micros, 0.0);
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
  std::size_t bucket = 0;
  for (double edge = 2.0; bucket + 1 < kBuckets && us >= edge; edge *= 2.0) {
    ++bucket;
  }
  ++buckets_[bucket];
}

double LatencyHistogram::quantile_us(double q) const {
  if (count_ == 0) return 0.0;
  const double rank = std::clamp(q, 0.0, 1.0) * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    cum += buckets_[i];
    if (static_cast<double>(cum) >= rank) {
      // Interpolate within the bucket instead of reporting its upper edge
      // (which over-reported mid-bucket quantiles by up to 2x), and clamp to
      // the observed maximum so the unbounded last bucket never fabricates a
      // latency larger than anything actually recorded.
      const double lower = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double upper = std::ldexp(1.0, static_cast<int>(i + 1));
      const double frac =
          (rank - static_cast<double>(cum - buckets_[i])) /
          static_cast<double>(buckets_[i]);
      return std::min(lower + frac * (upper - lower), max_us_);
    }
  }
  return max_us_;
}

ServeMetrics::ServeMetrics() : start_(std::chrono::steady_clock::now()) {}

void ServeMetrics::record(RequestKind kind, double micros, bool ok) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto k = static_cast<std::size_t>(kind);
  if (ok) {
    hist_[k].record(micros);
  } else {
    ++errors_[k];
  }
}

void ServeMetrics::record_rejected() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServeMetrics::record_deadline_expired() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++deadline_expired_;
}

void ServeMetrics::record_shed() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++shed_;
}

void ServeMetrics::record_degraded() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++degraded_;
}

void ServeMetrics::record_retry() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++retries_;
}

void ServeMetrics::record_verify_timeout() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++verify_timeouts_;
}

void ServeMetrics::record_verify_shed() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++verify_shed_;
}

void ServeMetrics::set_resilience(const std::string& health,
                                  std::size_t breakers_open,
                                  std::uint64_t open_events,
                                  std::uint64_t half_open_events,
                                  std::uint64_t close_events) {
  const std::lock_guard<std::mutex> lock(mu_);
  health_ = health;
  breakers_open_ = breakers_open;
  breaker_open_events_ = open_events;
  breaker_half_open_events_ = half_open_events;
  breaker_close_events_ = close_events;
}

std::uint64_t ServeMetrics::shed_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

std::uint64_t ServeMetrics::degraded_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

void ServeMetrics::record_batch(std::size_t batch_size) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batched_requests_ += batch_size;
}

void ServeMetrics::record_fused_batch(std::size_t units, std::size_t rows) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++fused_batches_;
  fused_rows_ += rows;
  const std::size_t bucket =
      units == 0 ? 0
                 : std::min(units - 1,
                            MetricsSnapshot::kFusedOccupancyBuckets - 1);
  ++fused_occupancy_[bucket];
}

void ServeMetrics::record_fused_requests(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  fused_requests_ += n;
}

void ServeMetrics::record_fused_retries(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mu_);
  fused_retries_ += n;
}

void ServeMetrics::set_queue_depth(std::size_t depth) {
  const std::lock_guard<std::mutex> lock(mu_);
  queue_depth_ = depth;
  queue_peak_ = std::max(queue_peak_, depth);
}

void ServeMetrics::set_cache_counters(std::uint64_t hits, std::uint64_t misses,
                                      std::uint64_t evictions,
                                      std::size_t bytes, std::size_t entries,
                                      std::uint64_t oversize_rejections) {
  const std::lock_guard<std::mutex> lock(mu_);
  cache_hits_ = hits;
  cache_misses_ = misses;
  cache_evictions_ = evictions;
  cache_bytes_ = bytes;
  cache_entries_ = entries;
  cache_oversize_rejections_ = oversize_rejections;
}

MetricsSnapshot ServeMetrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (std::size_t k = 0; k < kNumRequestKinds; ++k) {
    EndpointSnapshot& e = s.endpoints[k];
    e.requests = hist_[k].count();
    e.errors = errors_[k];
    e.p50_us = hist_[k].quantile_us(0.50);
    e.p95_us = hist_[k].quantile_us(0.95);
    e.p99_us = hist_[k].quantile_us(0.99);
    e.mean_us = hist_[k].mean_us();
    e.max_us = hist_[k].max_us();
    s.total_ok += e.requests;
    s.total_errors += e.errors;
  }
  s.rejected = rejected_;
  s.deadline_expired = deadline_expired_;
  s.shed = shed_;
  s.degraded = degraded_;
  s.retries = retries_;
  s.verify_timeouts = verify_timeouts_;
  s.verify_shed = verify_shed_;
  s.health = health_;
  s.breakers_open = breakers_open_;
  s.breaker_open_events = breaker_open_events_;
  s.breaker_half_open_events = breaker_half_open_events_;
  s.breaker_close_events = breaker_close_events_;
  s.batches = batches_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_requests_) /
                          static_cast<double>(batches_);
  s.fused_batches = fused_batches_;
  s.fused_rows = fused_rows_;
  s.fused_requests = fused_requests_;
  s.fused_retries = fused_retries_;
  s.fused_occupancy = fused_occupancy_;
  s.queue_depth = queue_depth_;
  s.queue_peak = queue_peak_;
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
  s.qps = s.uptime_s > 0.0 ? static_cast<double>(s.total_ok) / s.uptime_s
                           : 0.0;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  s.cache_evictions = cache_evictions_;
  s.cache_bytes = cache_bytes_;
  s.cache_entries = cache_entries_;
  s.cache_oversize_rejections = cache_oversize_rejections_;
  return s;
}

std::string ServeMetrics::text() const {
  const MetricsSnapshot s = snapshot();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "serve: %llu ok, %llu err, %llu rejected, %llu expired, "
                "%.1f qps, uptime %.1fs\n",
                static_cast<unsigned long long>(s.total_ok),
                static_cast<unsigned long long>(s.total_errors),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.deadline_expired), s.qps,
                s.uptime_s);
  out += line;
  std::snprintf(line, sizeof(line),
                "queue: depth %zu, peak %zu; batches %llu (mean size %.2f)\n",
                s.queue_depth, s.queue_peak,
                static_cast<unsigned long long>(s.batches),
                s.mean_batch_size);
  out += line;
  std::snprintf(line, sizeof(line),
                "health: %s; %llu shed, %llu degraded, %llu retries; "
                "breakers %zu open (events: %llu open, %llu half-open, "
                "%llu close)\n",
                s.health.c_str(), static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.degraded),
                static_cast<unsigned long long>(s.retries), s.breakers_open,
                static_cast<unsigned long long>(s.breaker_open_events),
                static_cast<unsigned long long>(s.breaker_half_open_events),
                static_cast<unsigned long long>(s.breaker_close_events));
  out += line;
  {
    double mean_occ = 0.0;
    std::uint64_t occ_total = 0;
    for (std::size_t i = 0; i < MetricsSnapshot::kFusedOccupancyBuckets;
         ++i) {
      occ_total += s.fused_occupancy[i];
      mean_occ += static_cast<double>(s.fused_occupancy[i]) *
                  static_cast<double>(i + 1);
    }
    if (occ_total > 0) mean_occ /= static_cast<double>(occ_total);
    std::snprintf(line, sizeof(line),
                  "fused: %llu batches, %llu rows, %llu requests, "
                  "%llu retries (mean occupancy %.2f)\n",
                  static_cast<unsigned long long>(s.fused_batches),
                  static_cast<unsigned long long>(s.fused_rows),
                  static_cast<unsigned long long>(s.fused_requests),
                  static_cast<unsigned long long>(s.fused_retries), mean_occ);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "verify: %llu timeouts, %llu shed\n",
                static_cast<unsigned long long>(s.verify_timeouts),
                static_cast<unsigned long long>(s.verify_shed));
  out += line;
  std::snprintf(line, sizeof(line),
                "cache: %llu hits, %llu misses, %llu evictions, "
                "%llu oversize, %zu entries, %zu bytes\n",
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.cache_evictions),
                static_cast<unsigned long long>(s.cache_oversize_rejections),
                s.cache_entries, s.cache_bytes);
  out += line;
  std::snprintf(line, sizeof(line), "%-10s %10s %8s %10s %10s %10s %10s\n",
                "endpoint", "requests", "errors", "p50_us", "p95_us",
                "p99_us", "mean_us");
  out += line;
  for (std::size_t k = 0; k < kNumRequestKinds; ++k) {
    const EndpointSnapshot& e = s.endpoints[k];
    std::snprintf(line, sizeof(line),
                  "%-10s %10llu %8llu %10.0f %10.0f %10.0f %10.1f\n",
                  to_string(static_cast<RequestKind>(k)),
                  static_cast<unsigned long long>(e.requests),
                  static_cast<unsigned long long>(e.errors), e.p50_us,
                  e.p95_us, e.p99_us, e.mean_us);
    out += line;
  }
  return out;
}

std::string ServeMetrics::json() const {
  const MetricsSnapshot s = snapshot();
  std::string out = "{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"total_ok\":%llu,\"total_errors\":%llu,\"rejected\":%llu,"
                "\"deadline_expired\":%llu,\"qps\":%.3f,\"uptime_s\":%.3f,"
                "\"queue_depth\":%zu,\"queue_peak\":%zu,\"batches\":%llu,"
                "\"mean_batch_size\":%.3f,",
                static_cast<unsigned long long>(s.total_ok),
                static_cast<unsigned long long>(s.total_errors),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.deadline_expired), s.qps,
                s.uptime_s, s.queue_depth, s.queue_peak,
                static_cast<unsigned long long>(s.batches),
                s.mean_batch_size);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"health\":\"%s\",\"shed\":%llu,\"degraded\":%llu,"
                "\"retries\":%llu,\"breakers\":{\"open\":%zu,"
                "\"open_events\":%llu,\"half_open_events\":%llu,"
                "\"close_events\":%llu},",
                s.health.c_str(), static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.degraded),
                static_cast<unsigned long long>(s.retries), s.breakers_open,
                static_cast<unsigned long long>(s.breaker_open_events),
                static_cast<unsigned long long>(s.breaker_half_open_events),
                static_cast<unsigned long long>(s.breaker_close_events));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"verify\":{\"timeouts\":%llu,\"shed\":%llu},",
                static_cast<unsigned long long>(s.verify_timeouts),
                static_cast<unsigned long long>(s.verify_shed));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"fused\":{\"fused_batches\":%llu,\"fused_rows\":%llu,"
                "\"fused_requests\":%llu,\"fused_retries\":%llu,"
                "\"occupancy\":[",
                static_cast<unsigned long long>(s.fused_batches),
                static_cast<unsigned long long>(s.fused_rows),
                static_cast<unsigned long long>(s.fused_requests),
                static_cast<unsigned long long>(s.fused_retries));
  out += buf;
  for (std::size_t i = 0; i < MetricsSnapshot::kFusedOccupancyBuckets; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(s.fused_occupancy[i]));
    out += buf;
  }
  out += "]},";
  std::snprintf(buf, sizeof(buf),
                "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
                "\"oversize_rejections\":%llu,\"entries\":%zu,\"bytes\":%zu},"
                "\"endpoints\":{",
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.cache_evictions),
                static_cast<unsigned long long>(s.cache_oversize_rejections),
                s.cache_entries, s.cache_bytes);
  out += buf;
  for (std::size_t k = 0; k < kNumRequestKinds; ++k) {
    const EndpointSnapshot& e = s.endpoints[k];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"requests\":%llu,\"errors\":%llu,"
                  "\"p50_us\":%.0f,\"p95_us\":%.0f,\"p99_us\":%.0f,"
                  "\"mean_us\":%.1f,\"max_us\":%.1f}",
                  k == 0 ? "" : ",", to_string(static_cast<RequestKind>(k)),
                  static_cast<unsigned long long>(e.requests),
                  static_cast<unsigned long long>(e.errors), e.p50_us,
                  e.p95_us, e.p99_us, e.mean_us, e.max_us);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace moss::serve
