#include "serve/cache.hpp"

#include <algorithm>
#include <cctype>

#include "core_util/fault.hpp"
#include "core_util/hash.hpp"

namespace moss::serve {

std::string canonical_rtl(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_space = true;  // swallow leading whitespace
  for (std::size_t i = 0; i < text.size(); ++i) {
    // Line comments.
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
      --i;  // the newline (if any) is handled as whitespace next round
      continue;
    }
    // Block comments.
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        ++i;
      }
      ++i;  // skip the '/'
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
      continue;
    }
    in_space = false;
    out.push_back(text[i]);
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

namespace {
// Per-embedding-type tags keep key spaces disjoint.
constexpr std::uint64_t kTagRtl = 0x52544C00;      // "RTL"
constexpr std::uint64_t kTagNode = 0x4E4F4445;     // "NODE"
constexpr std::uint64_t kTagNetlist = 0x4E455400;  // "NET"
constexpr std::uint64_t kTagCone = 0x434F4E45;     // "CONE"
}  // namespace

std::uint64_t rtl_key(std::uint64_t session_uid, std::string_view rtl_text) {
  return HashBuilder()
      .mix(kTagRtl)
      .mix(session_uid)
      .mix(canonical_rtl(rtl_text))
      .digest();
}

std::uint64_t node_embedding_key(std::uint64_t session_uid,
                                 std::uint64_t batch_hash) {
  return HashBuilder().mix(kTagNode).mix(session_uid).mix(batch_hash).digest();
}

std::uint64_t netlist_key(std::uint64_t session_uid,
                          std::uint64_t batch_hash) {
  return HashBuilder()
      .mix(kTagNetlist)
      .mix(session_uid)
      .mix(batch_hash)
      .digest();
}

std::uint64_t cone_key(std::uint64_t session_uid, std::uint64_t cone_hash) {
  return HashBuilder().mix(kTagCone).mix(session_uid).mix(cone_hash).digest();
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

EmbeddingCache::EmbeddingCache(std::size_t byte_budget, std::size_t shards)
    : budget_(byte_budget),
      shard_budget_(byte_budget / std::max<std::size_t>(
                                      1, round_up_pow2(std::max<std::size_t>(
                                             1, shards)))),
      shards_(round_up_pow2(std::max<std::size_t>(1, shards))) {}

std::size_t EmbeddingCache::entry_bytes(const tensor::Tensor& t) {
  return t.size() * sizeof(float) + kEntryOverhead;
}

std::optional<tensor::Tensor> EmbeddingCache::get(std::uint64_t key) {
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    ++s.misses;
    return std::nullopt;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);  // refresh
  return it->second.value;
}

void EmbeddingCache::put(std::uint64_t key, const tensor::Tensor& value) {
  MOSS_FAULT_POINT("serve.cache.insert");
  const tensor::Tensor stored = value.detach();
  const std::size_t bytes = entry_bytes(stored);
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  ++s.inserts;
  const auto it = s.map.find(key);
  if (it != s.map.end()) {
    // Refresh in place (identical content under a content address, but a
    // caller may re-put after a racing compute).
    s.bytes -= it->second.bytes;
    s.lru.erase(it->second.lru_it);
    s.map.erase(it);
  }
  if (bytes > shard_budget_) {
    // Never admit overweight values — but count the refusal so operators can
    // see a budget that is too small for the workload's tensors.
    ++s.oversize_rejections;
    return;
  }
  while (s.bytes + bytes > shard_budget_ && !s.lru.empty()) {
    const std::uint64_t victim = s.lru.back();
    s.lru.pop_back();
    const auto vit = s.map.find(victim);
    s.bytes -= vit->second.bytes;
    s.map.erase(vit);
    ++s.evictions;
  }
  s.lru.push_front(key);
  Entry e;
  e.value = stored;
  e.bytes = bytes;
  e.lru_it = s.lru.begin();
  s.map.emplace(key, std::move(e));
  s.bytes += bytes;
}

tensor::Tensor EmbeddingCache::get_or_compute(
    std::uint64_t key, const std::function<tensor::Tensor()>& compute) {
  if (std::optional<tensor::Tensor> hit = get(key)) return *hit;
  const tensor::Tensor value = compute().detach();
  put(key, value);
  return value;
}

std::vector<std::pair<std::uint64_t, tensor::Tensor>>
EmbeddingCache::export_entries() const {
  std::vector<std::pair<std::uint64_t, tensor::Tensor>> out;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    // lru lists front = most recent; walk back-to-front for coldest-first.
    for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
      const auto e = s.map.find(*it);
      out.emplace_back(*it, e->second.value);
    }
  }
  return out;
}

CacheStats EmbeddingCache::stats() const {
  CacheStats out;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.inserts += s.inserts;
    out.oversize_rejections += s.oversize_rejections;
    out.bytes += s.bytes;
    out.entries += s.map.size();
  }
  return out;
}

void EmbeddingCache::clear() {
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.lru.clear();
    s.bytes = 0;
  }
}

}  // namespace moss::serve
