// Noise-tolerant alignment (core::AlignNoise + HardNegative): the rejection
// terms must actually train, stay bit-deterministic at any thread count,
// round-trip through checkpoints, and — crucially — leave the default
// (noise-off) path op-for-op identical whether or not corrupted views are
// attached to the batches.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/evaluate.hpp"
#include "core/features.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/corrupt.hpp"
#include "data/mutate.hpp"

namespace moss::core {
namespace {

using cell::standard_library;

const lm::TextEncoder& enc() {
  static lm::TextEncoder e({2048, 16, 13});
  return e;
}

struct Fixture {
  std::vector<data::LabeledCircuit> circuits;
  std::vector<CircuitBatch> batches;
};

Fixture make_fixture(const FeatureConfig& fcfg, int n = 4) {
  Fixture f;
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 300;
  const auto specs = data::corpus_specs(static_cast<std::size_t>(n), 21, 1, 1);
  for (const auto& s : specs) {
    f.circuits.push_back(data::label_circuit(s, standard_library(), dcfg));
    f.batches.push_back(build_batch(f.circuits.back(), enc(), fcfg));
  }
  return f;
}

MossConfig small_config() {
  MossConfig cfg;
  cfg.hidden = 16;
  cfg.rounds = 1;
  return cfg;
}

void attach_views(Fixture& f, std::uint64_t seed = 0x5EED) {
  for (std::size_t i = 0; i < f.batches.size(); ++i) {
    attach_corrupt_views(f.batches[i], f.circuits[i], /*count=*/2, seed + i);
  }
}

bool params_identical(MossModel& a, MossModel& b) {
  const auto& ta = a.params().tensors();
  const auto& tb = b.params().tensors();
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].size() != tb[i].size()) return false;
    if (std::memcmp(ta[i].data().data(), tb[i].data().data(),
                    ta[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

AlignConfig small_align(int epochs = 3) {
  AlignConfig acfg;
  acfg.epochs = epochs;
  acfg.batch_size = 2;
  acfg.lr = 2e-3f;
  return acfg;
}

/// One oracle-style hard negative for circuit `owner`: a single-site
/// mutation of its netlist, labeled and batched like the bench does.
HardNegative make_negative(const Fixture& f, std::size_t owner,
                           const FeatureConfig& fcfg) {
  const netlist::Netlist& golden = f.circuits[owner].netlist;
  Rng rng(7);
  const auto muts = data::sample_mutations(golden, 1, rng);
  EXPECT_FALSE(muts.empty());
  const netlist::Netlist mutant =
      data::apply_mutation(golden, muts[0], "__hn");
  data::DatasetConfig dcfg;
  dcfg.sim_cycles = 300;
  const data::LabeledCircuit lc = data::label_netlist(mutant, dcfg);
  return {owner, build_batch(lc, enc(), fcfg)};
}

TEST(RobustAlign, NoiseOffIgnoresAttachedCorruptViews) {
  const MossConfig cfg = small_config();
  Fixture plain = make_fixture(cfg.features);
  Fixture noisy = make_fixture(cfg.features);
  attach_views(noisy);

  MossModel a(cfg, standard_library(), enc());
  MossModel b(cfg, standard_library(), enc());
  const AlignConfig acfg = small_align();  // noise defaults off
  Rng ra(3), rb(3);
  const AlignReport rep_a = align(a, plain.batches, acfg, ra);
  const AlignReport rep_b = align(b, noisy.batches, acfg, rb);

  EXPECT_TRUE(params_identical(a, b));
  ASSERT_EQ(rep_a.total.size(), rep_b.total.size());
  ASSERT_EQ(rep_b.reject.size(), rep_b.total.size());
  for (std::size_t e = 0; e < rep_a.total.size(); ++e) {
    EXPECT_EQ(rep_a.total[e], rep_b.total[e]);
    EXPECT_EQ(rep_b.reject[e], 0.0);
  }
}

TEST(RobustAlign, NoiseEnabledTrainsTheRejectionTerms) {
  const MossConfig cfg = small_config();
  Fixture clean = make_fixture(cfg.features);
  Fixture noisy = make_fixture(cfg.features);
  attach_views(noisy);

  MossModel a(cfg, standard_library(), enc());
  MossModel b(cfg, standard_library(), enc());
  AlignConfig acfg = small_align();
  AlignConfig ncfg = acfg;
  ncfg.noise.enabled = true;
  ncfg.noise.corrupt_fraction = 1.0f;  // every circuit contributes a view
  Rng ra(3), rb(3);
  align(a, clean.batches, acfg, ra);
  const AlignReport rep = align(b, noisy.batches, ncfg, rb);

  ASSERT_EQ(rep.reject.size(), rep.total.size());
  double max_rej = 0.0;
  for (const double r : rep.reject) {
    EXPECT_TRUE(std::isfinite(r));
    max_rej = std::max(max_rej, r);
  }
  EXPECT_GT(max_rej, 0.0);
  for (const double t : rep.total) EXPECT_TRUE(std::isfinite(t));
  // The extra loss terms must actually reach the weights.
  EXPECT_FALSE(params_identical(a, b));
}

TEST(RobustAlign, HardNegativesJoinTheirOwnersMinibatch) {
  const MossConfig cfg = small_config();
  Fixture f = make_fixture(cfg.features);
  std::vector<HardNegative> negs;
  negs.push_back(make_negative(f, 0, cfg.features));
  negs.push_back(make_negative(f, 2, cfg.features));

  MossModel a(cfg, standard_library(), enc());
  MossModel b(cfg, standard_library(), enc());
  const AlignConfig acfg = small_align();
  Rng ra(3), rb(3);
  align(a, f.batches, acfg, ra);
  const AlignReport rep = align(b, f.batches, acfg, rb, &negs);

  double max_rej = 0.0;
  for (const double r : rep.reject) {
    EXPECT_TRUE(std::isfinite(r));
    max_rej = std::max(max_rej, r);
  }
  EXPECT_GT(max_rej, 0.0);
  EXPECT_FALSE(params_identical(a, b));
}

TEST(RobustAlign, BitIdenticalAtAnyThreadCount) {
  const MossConfig cfg = small_config();
  Fixture f1 = make_fixture(cfg.features);
  Fixture f3 = make_fixture(cfg.features);
  attach_views(f1);
  attach_views(f3);
  std::vector<HardNegative> negs1, negs3;
  negs1.push_back(make_negative(f1, 1, cfg.features));
  negs3.push_back(make_negative(f3, 1, cfg.features));

  AlignConfig acfg = small_align();
  acfg.noise.enabled = true;
  acfg.grad_accum = 2;  // give the pool concurrent spans to race on
  MossModel a(cfg, standard_library(), enc());
  MossModel b(cfg, standard_library(), enc());
  AlignConfig c1 = acfg, c3 = acfg;
  c1.threads = 1;
  c3.threads = 3;
  Rng ra(3), rb(3);
  const AlignReport rep1 = align(a, f1.batches, c1, ra, &negs1);
  const AlignReport rep3 = align(b, f3.batches, c3, rb, &negs3);

  EXPECT_TRUE(params_identical(a, b));
  ASSERT_EQ(rep1.reject.size(), rep3.reject.size());
  for (std::size_t e = 0; e < rep1.reject.size(); ++e) {
    EXPECT_EQ(rep1.reject[e], rep3.reject[e]);
    EXPECT_EQ(rep1.total[e], rep3.total[e]);
  }
}

TEST(RobustAlign, CheckpointResumeReproducesTheRejectCurve) {
  const MossConfig cfg = small_config();
  Fixture straight = make_fixture(cfg.features);
  Fixture resumed = make_fixture(cfg.features);
  attach_views(straight);
  attach_views(resumed);

  AlignConfig base = small_align(/*epochs=*/4);
  base.noise.enabled = true;
  base.noise.corrupt_fraction = 1.0f;

  MossModel a(cfg, standard_library(), enc());
  Rng ra(3);
  const AlignReport uninterrupted = align(a, straight.batches, base, ra);

  const std::string path = ::testing::TempDir() + "robust_align_ckpt_" +
                           std::to_string(::getpid()) + ".ckpt";
  MossModel b(cfg, standard_library(), enc());
  AlignConfig first = base;
  first.epochs = 2;
  first.checkpoint_every = 1;
  first.checkpoint_path = path;
  Rng rb(3);
  align(b, resumed.batches, first, rb);

  MossModel c(cfg, standard_library(), enc());
  AlignConfig second = base;
  second.checkpoint_every = 1;
  second.checkpoint_path = path;
  second.resume = true;
  Rng rc(3);
  const AlignReport continued = align(c, resumed.batches, second, rc);
  std::remove(path.c_str());
  std::remove((path + ".best").c_str());

  EXPECT_TRUE(params_identical(a, c));
  ASSERT_EQ(continued.reject.size(), uninterrupted.reject.size());
  for (std::size_t e = 0; e < continued.reject.size(); ++e) {
    EXPECT_EQ(continued.reject[e], uninterrupted.reject[e]);
  }
}

TEST(RobustAlign, EvaluateHelpersScoreTheNoisyPool) {
  const MossConfig cfg = small_config();
  Fixture f = make_fixture(cfg.features);
  attach_views(f, /*seed=*/0xE7A1);
  MossModel model(cfg, standard_library(), enc());

  const double rejection = evaluate_corrupt_rejection(model, f.batches);
  EXPECT_GE(rejection, 0.0);
  EXPECT_LE(rejection, 1.0);

  std::vector<CircuitBatch> mutants;
  std::vector<std::size_t> owners;
  mutants.push_back(make_negative(f, 0, cfg.features).batch);
  owners.push_back(0);
  const double auc = evaluate_detection_auc(model, f.batches, mutants, owners);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);

  // Degenerate AUC inputs take the documented fallbacks.
  EXPECT_EQ(detection_auc({}), 0.5);
  EXPECT_EQ(detection_auc({{1.0, true}}), 0.5);
  EXPECT_EQ(detection_auc({{1.0, true}, {0.0, false}}), 1.0);
  EXPECT_EQ(detection_auc({{1.0, true}, {1.0, false}}), 0.5);
}

}  // namespace
}  // namespace moss::core
