#include <gtest/gtest.h>

#include <sstream>

#include "core_util/check.hpp"
#include "core_util/rng.hpp"
#include "power/power.hpp"
#include "rtl/parser.hpp"
#include "sim/activity_io.hpp"
#include "synth/synthesize.hpp"

namespace moss::sim {
namespace {

using cell::standard_library;
using netlist::Netlist;

Netlist demo_netlist() {
  const rtl::Module m = rtl::parse_verilog(R"(
    module act (input clk, input rst, input [3:0] a, output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd0; else r <= r + a;
      end
      assign y = r;
    endmodule)");
  return synth::synthesize(m, standard_library());
}

TEST(ActivityIo, RoundTripPreservesRates) {
  const Netlist nl = demo_netlist();
  Simulator sim(nl);
  Rng rng(1);
  std::vector<std::uint8_t> pis(nl.inputs().size());
  for (int c = 0; c < 500; ++c) {
    for (auto& p : pis) p = rng.bernoulli(0.5) ? 1 : 0;
    sim.step(pis);
  }
  std::stringstream ss;
  write_activity(ss, nl, sim);
  const ActivityFile act = read_activity(ss, nl);
  EXPECT_EQ(act.cycles, 500u);
  for (std::size_t i = 0; i < nl.num_nodes(); ++i) {
    EXPECT_NEAR(act.toggle[i],
                sim.toggle_rate(static_cast<netlist::NodeId>(i)), 1e-9)
        << nl.node(static_cast<netlist::NodeId>(i)).name;
    EXPECT_NEAR(act.one_prob[i],
                sim.one_rate(static_cast<netlist::NodeId>(i)), 2e-3);
  }
}

TEST(ActivityIo, PowerFromFileMatchesDirect) {
  const Netlist nl = demo_netlist();
  Simulator sim(nl);
  Rng rng(2);
  std::vector<std::uint8_t> pis(nl.inputs().size());
  for (int c = 0; c < 400; ++c) {
    for (auto& p : pis) p = rng.bernoulli(0.5) ? 1 : 0;
    sim.step(pis);
  }
  std::stringstream ss;
  write_activity(ss, nl, sim);
  const ActivityFile act = read_activity(ss, nl);
  const double direct =
      power::analyze_power(nl, sim.toggle_rates()).total_uw;
  const double from_file = power::analyze_power(nl, act.toggle).total_uw;
  EXPECT_NEAR(from_file, direct, 1e-9 * direct);
}

TEST(ActivityIo, RejectsWrongDesign) {
  const Netlist nl = demo_netlist();
  Simulator sim(nl);
  sim.step(std::vector<std::uint8_t>(nl.inputs().size(), 0));
  sim.step(std::vector<std::uint8_t>(nl.inputs().size(), 0));
  std::stringstream ss;
  write_activity(ss, nl, sim);
  // Mutate the design name in the header.
  std::string text = ss.str();
  const auto pos = text.find("act");
  text.replace(pos, 3, "zzz");
  std::stringstream bad(text);
  EXPECT_THROW(read_activity(bad, nl), Error);
}

TEST(ActivityIo, RejectsUnknownNetAndGarbage) {
  const Netlist nl = demo_netlist();
  std::stringstream garbage("not an activity file");
  EXPECT_THROW(read_activity(garbage, nl), Error);
  std::stringstream unknown("MOSSACT v1 " + nl.name() +
                            " 100\nno_such_net 5 50\n");
  EXPECT_THROW(read_activity(unknown, nl), Error);
}

TEST(ActivityIo, WriteRequiresActivity) {
  const Netlist nl = demo_netlist();
  Simulator sim(nl);
  std::stringstream ss;
  EXPECT_THROW(write_activity(ss, nl, sim), Error);
}

}  // namespace
}  // namespace moss::sim
