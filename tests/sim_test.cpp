#include <gtest/gtest.h>

#include "core_util/check.hpp"
#include "core_util/rng.hpp"
#include "sim/simulator.hpp"

namespace moss::sim {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;

TEST(Simulator, CombinationalGate) {
  Netlist nl(standard_library(), "g");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_cell("XOR2", "x", {a, b});
  nl.add_output("y", g);
  nl.finalize();
  Simulator sim(nl);
  sim.step({1, 0});
  EXPECT_EQ(sim.output_values()[0], 1);
  sim.step({1, 1});
  EXPECT_EQ(sim.output_values()[0], 0);
}

TEST(Simulator, FlopDelaysByOneCycle) {
  Netlist nl(standard_library(), "dff");
  const NodeId d = nl.add_input("d");
  const NodeId q = nl.add_cell("DFF", "q", {d});
  nl.add_output("y", q);
  nl.finalize();
  Simulator sim(nl);
  sim.step({1});
  EXPECT_EQ(sim.output_values()[0], 0);  // pre-edge value
  sim.step({0});
  EXPECT_EQ(sim.output_values()[0], 1);  // captured last cycle's 1
  sim.step({0});
  EXPECT_EQ(sim.output_values()[0], 0);
}

TEST(Simulator, ToggleFlopOscillates) {
  // q <= ~q : toggles every cycle -> toggle rate ~1.
  Netlist nl(standard_library(), "tog");
  const NodeId q = nl.add_cell("DFF", "q", {netlist::kInvalidNode});
  const NodeId inv = nl.add_cell("INV", "n", {q});
  nl.connect(q, 0, inv);
  nl.add_output("y", q);
  nl.finalize();
  Simulator sim(nl);
  for (int i = 0; i < 101; ++i) sim.step({});
  EXPECT_NEAR(sim.toggle_rate(q), 1.0, 1e-9);
  EXPECT_NEAR(sim.toggle_rate(inv), 1.0, 1e-9);
}

TEST(Simulator, DffrResets) {
  Netlist nl(standard_library(), "dffr");
  const NodeId d = nl.add_input("d");
  const NodeId r = nl.add_input("r");
  const NodeId q = nl.add_cell("DFFR", "q", {d, r});
  nl.add_output("y", q);
  nl.finalize();
  Simulator sim(nl);
  sim.step({1, 0});
  sim.step({1, 1});  // captured 1, now reset
  sim.step({0, 0});
  EXPECT_EQ(sim.output_values()[0], 0);  // reset won
}

TEST(Simulator, DffeHolds) {
  Netlist nl(standard_library(), "dffe");
  const NodeId d = nl.add_input("d");
  const NodeId e = nl.add_input("e");
  const NodeId q = nl.add_cell("DFFE", "q", {d, e});
  nl.add_output("y", q);
  nl.finalize();
  Simulator sim(nl);
  sim.step({1, 1});  // capture 1
  sim.step({0, 0});  // disabled: hold 1
  sim.step({0, 0});
  EXPECT_EQ(sim.output_values()[0], 1);
}

TEST(Simulator, TieCellsConstant) {
  Netlist nl(standard_library(), "tie");
  const NodeId t1 = nl.add_cell("TIE1", "t1", {});
  const NodeId t0 = nl.add_cell("TIE0", "t0", {});
  const NodeId g = nl.add_cell("AND2", "g", {t1, t0});
  nl.add_output("y", g);
  nl.finalize();
  Simulator sim(nl);
  for (int i = 0; i < 10; ++i) sim.step({});
  EXPECT_EQ(sim.output_values()[0], 0);
  EXPECT_EQ(sim.transitions(t1), 0u);
  EXPECT_EQ(sim.transitions(g), 0u);
}

TEST(Simulator, WrongInputCountRejected) {
  Netlist nl(standard_library(), "x");
  nl.add_input("a");
  nl.add_output("y", nl.find("a"));
  nl.finalize();
  Simulator sim(nl);
  EXPECT_THROW(sim.step({1, 0}), Error);
}

TEST(RandomActivity, RatesInUnitRange) {
  // Small LFSR-ish circuit.
  Netlist nl(standard_library(), "act");
  const NodeId d = nl.add_input("d");
  const NodeId q0 = nl.add_cell("DFF", "q0", {d});
  const NodeId q1 = nl.add_cell("DFF", "q1", {q0});
  const NodeId x = nl.add_cell("XOR2", "x", {q0, q1});
  nl.add_output("y", x);
  nl.finalize();
  Rng rng(3);
  const auto rep = random_activity(nl, 500, rng);
  EXPECT_EQ(rep.cycles, 500u);
  for (const double t : rep.toggle) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
  // A DFF fed by random data toggles roughly half the time.
  EXPECT_NEAR(rep.toggle[static_cast<std::size_t>(q0)], 0.5, 0.1);
}

TEST(Simulator, OneRateTracksProbability) {
  // TIE1 has one-rate 1, TIE0 has 0; a toggle flop sits near 0.5.
  Netlist nl(standard_library(), "prob");
  const NodeId t1 = nl.add_cell("TIE1", "t1", {});
  const NodeId t0 = nl.add_cell("TIE0", "t0", {});
  const NodeId q = nl.add_cell("DFF", "q", {netlist::kInvalidNode});
  const NodeId inv = nl.add_cell("INV", "n", {q});
  nl.connect(q, 0, inv);
  const NodeId g = nl.add_cell("AND2", "g", {t1, t0});
  nl.add_output("y", g);
  nl.add_output("z", q);
  nl.finalize();
  Simulator sim(nl);
  for (int i = 0; i < 1000; ++i) sim.step({});
  EXPECT_NEAR(sim.one_rate(t1), 1.0, 1e-9);
  EXPECT_NEAR(sim.one_rate(t0), 0.0, 1e-9);
  EXPECT_NEAR(sim.one_rate(q), 0.5, 0.01);
}

TEST(RandomActivity, DeterministicForSeed) {
  Netlist nl(standard_library(), "det");
  const NodeId a = nl.add_input("a");
  const NodeId q = nl.add_cell("DFF", "q", {a});
  nl.add_output("y", q);
  nl.finalize();
  Rng r1(42), r2(42);
  const auto rep1 = random_activity(nl, 200, r1);
  const auto rep2 = random_activity(nl, 200, r2);
  EXPECT_EQ(rep1.toggle, rep2.toggle);
}

}  // namespace
}  // namespace moss::sim
