#include <gtest/gtest.h>

#include <cmath>

#include "core_util/check.hpp"
#include "core_util/rng.hpp"
#include "gnn/graph.hpp"
#include "gnn/two_phase_gnn.hpp"

namespace moss::gnn {
namespace {

using tensor::Tensor;

/// A 4-node toy circuit graph:
///   0 (PI) -> 2 (gate) -> 3 (DFF) -> back as input of 2? no: keep simple
///   0,1 PIs; 2 gate fed by 0,1; 3 DFF fed by 2.
Graph toy_graph(std::size_t feat_dim = 3, std::size_t clusters = 2) {
  GraphBuilder gb(4, clusters);
  gb.set_cluster(2, 0);
  gb.set_cluster(3, static_cast<int>(clusters) - 1);
  gb.set_fanins(2, {{0, 0}, {1, 1}});
  gb.set_fanins(3, {{2, 0}});
  Tensor f = Tensor::zeros(4, feat_dim);
  for (std::size_t i = 0; i < 4; ++i) f.at(i, i % feat_dim) = 1.0f;
  gb.set_features(f);
  gb.schedule_forward({2});
  gb.schedule_turnaround({3});
  return gb.build();
}

GnnConfig toy_cfg(std::size_t feat_dim = 3) {
  GnnConfig cfg;
  cfg.feature_dim = feat_dim;
  cfg.hidden = 8;
  cfg.num_aggregators = 2;
  cfg.rounds = 2;
  return cfg;
}

TEST(GraphBuilder, SplitsByCluster) {
  GraphBuilder gb(5, 2);
  gb.set_cluster(2, 0);
  gb.set_cluster(3, 1);
  gb.set_cluster(4, 1);
  gb.set_fanins(2, {{0, 0}});
  gb.set_fanins(3, {{0, 0}, {1, 1}});
  gb.set_fanins(4, {{1, 0}});
  gb.set_features(Tensor::zeros(5, 2));
  gb.schedule_forward({2, 3, 4});
  const Graph g = gb.build();
  ASSERT_EQ(g.forward_steps.size(), 1u);
  ASSERT_EQ(g.forward_steps[0].groups.size(), 2u);
  EXPECT_EQ(g.forward_steps[0].groups[0].nodes.size(), 1u);  // cluster 0
  EXPECT_EQ(g.forward_steps[0].groups[1].nodes.size(), 2u);  // cluster 1
  EXPECT_EQ(g.forward_steps[0].groups[1].edge_src.size(), 3u);
}

TEST(GraphBuilder, RejectsNodeWithoutFanins) {
  GraphBuilder gb(2, 1);
  gb.set_features(Tensor::zeros(2, 1));
  EXPECT_THROW(gb.schedule_forward({1}), Error);
}

TEST(GraphBuilder, DefaultReadoutIsAllNodes) {
  const Graph g = toy_graph();
  EXPECT_EQ(g.readout_nodes.size(), 4u);
}

TEST(TwoPhaseGnn, OutputShape) {
  Rng rng(1);
  tensor::ParameterSet params;
  TwoPhaseGnn gnn(toy_cfg(), rng, params);
  const Graph g = toy_graph();
  const Tensor h = gnn.run(g);
  EXPECT_EQ(h.rows(), 4u);
  EXPECT_EQ(h.cols(), 8u);
  const Tensor pooled = gnn.readout(g, h);
  EXPECT_EQ(pooled.rows(), 1u);
  EXPECT_EQ(pooled.cols(), 8u);
}

TEST(TwoPhaseGnn, Deterministic) {
  tensor::ParameterSet p1, p2;
  Rng r1(9), r2(9);
  TwoPhaseGnn g1(toy_cfg(), r1, p1), g2(toy_cfg(), r2, p2);
  const Graph g = toy_graph();
  EXPECT_EQ(g1.run(g).data(), g2.run(g).data());
}

TEST(TwoPhaseGnn, MessagesActuallyPropagate) {
  // Change a PI's features; downstream node embeddings must change.
  Rng rng(2);
  tensor::ParameterSet params;
  TwoPhaseGnn gnn(toy_cfg(), rng, params);
  Graph g = toy_graph();
  const Tensor h0 = gnn.run(g);
  g.features.at(0, 0) = 5.0f;  // perturb PI 0
  const Tensor h1 = gnn.run(g);
  // node 2 (direct consumer) and node 3 (through DFF) both change.
  float d2 = 0, d3 = 0;
  for (std::size_t c = 0; c < 8; ++c) {
    d2 += std::abs(h1.at(2, c) - h0.at(2, c));
    d3 += std::abs(h1.at(3, c) - h0.at(3, c));
  }
  EXPECT_GT(d2, 1e-6f);
  EXPECT_GT(d3, 1e-6f);
}

TEST(TwoPhaseGnn, TurnaroundFeedsBack) {
  // Cycle: DFF output feeds a gate that feeds the DFF. With rounds >= 2 a
  // perturbation of the DFF's *initial features* must influence the gate.
  GraphBuilder gb(3, 1);
  // node 0: PI; node 1: gate(PI, DFF); node 2: DFF(gate)
  gb.set_fanins(1, {{0, 0}, {2, 1}});
  gb.set_fanins(2, {{1, 0}});
  Tensor f = Tensor::zeros(3, 2);
  f.at(0, 0) = 1.0f;
  f.at(1, 1) = 1.0f;
  f.at(2, 0) = 0.5f;
  gb.set_features(f);
  gb.schedule_forward({1});
  gb.schedule_turnaround({2});
  Graph g = gb.build();

  GnnConfig cfg;
  cfg.feature_dim = 2;
  cfg.hidden = 8;
  cfg.num_aggregators = 1;
  cfg.rounds = 2;
  Rng rng(3);
  tensor::ParameterSet params;
  TwoPhaseGnn gnn(cfg, rng, params);
  const Tensor h0 = gnn.run(g);
  g.features.at(2, 0) = 3.0f;  // perturb DFF init
  const Tensor h1 = gnn.run(g);
  float d1 = 0;
  for (std::size_t c = 0; c < 8; ++c) d1 += std::abs(h1.at(1, c) - h0.at(1, c));
  EXPECT_GT(d1, 1e-6f);
}

TEST(TwoPhaseGnn, OutOfRangePinPositionsAreClamped) {
  // Malformed inputs (e.g. a failed pin lookup yielding -1, or a fanout
  // wider than max_pin_pos) must not index outside the positional table.
  GraphBuilder gb(4, 1);
  gb.set_fanins(2, {{0, -1}, {1, 999}});  // below and above the table
  gb.set_fanins(3, {{2, 0}});
  Tensor f = Tensor::zeros(4, 3);
  for (std::size_t i = 0; i < 4; ++i) f.at(i, i % 3) = 1.0f;
  gb.set_features(f);
  gb.schedule_forward({2});
  gb.schedule_turnaround({3});
  const Graph g = gb.build();

  Rng rng(5);
  tensor::ParameterSet params;
  TwoPhaseGnn gnn(toy_cfg(), rng, params);
  Tensor h;
  ASSERT_NO_THROW(h = gnn.run(g));
  EXPECT_EQ(h.rows(), 4u);
  for (const float v : h.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(TwoPhaseGnn, GradientsReachAllParameters) {
  Rng rng(4);
  tensor::ParameterSet params;
  TwoPhaseGnn gnn(toy_cfg(), rng, params);
  const Graph g = toy_graph();
  Tensor loss = tensor::mean_all(gnn.run(g));
  loss.backward();
  // All non-attention parameters must receive gradient. Attention vectors
  // can get (near-)zero gradient legitimately: a single-fanin segment has
  // softmax α ≡ 1, and within a segment the destination term is a constant
  // shift that softmax cancels wherever leaky-relu is locally linear.
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::string& name = params.names()[i];
    if (name.find(".a_") != std::string::npos) continue;
    float s = 0;
    for (const float v : params.tensors()[i].grad()) s += std::abs(v);
    EXPECT_GT(s, 0.0f) << name;
  }
}

TEST(TwoPhaseGnn, AttentionVsMeanDiffer) {
  Rng r1(5), r2(5);
  tensor::ParameterSet p1, p2;
  GnnConfig ca = toy_cfg();
  GnnConfig cm = toy_cfg();
  cm.attention = false;
  TwoPhaseGnn ga(ca, r1, p1), gm(cm, r2, p2);
  const Graph g = toy_graph();
  // Same init (same seed), different aggregation math.
  const auto ha = ga.run(g);
  const auto hm = gm.run(g);
  float diff = 0;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    diff += std::abs(ha.data()[i] - hm.data()[i]);
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST(TwoPhaseGnn, TrainsToSeparateTwoGraphLabels) {
  // Tiny sanity-training: two graphs with different PI features must map to
  // different pooled outputs fitting labels 0 and 1.
  Rng rng(6);
  tensor::ParameterSet params;
  GnnConfig cfg = toy_cfg();
  TwoPhaseGnn gnn(cfg, rng, params);
  tensor::Linear head(cfg.hidden, 1, rng, params, "head");

  Graph ga = toy_graph();
  Graph gb = toy_graph();
  gb.features.at(0, 0) = -2.0f;
  gb.features.at(1, 1) = 3.0f;

  tensor::Adam opt(params, 0.01f);
  float last = 1e9f;
  for (int step = 0; step < 300; ++step) {
    params.zero_grad();
    const Tensor pa = head(gnn.readout(ga, gnn.run(ga)));
    const Tensor pb = head(gnn.readout(gb, gnn.run(gb)));
    Tensor loss = tensor::add(
        tensor::mse_loss(pa, Tensor::scalar(0.0f)),
        tensor::mse_loss(pb, Tensor::scalar(1.0f)));
    last = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last, 0.05f);
}

TEST(TwoPhaseGnn, GruUpdateRunsAndTrains) {
  Rng rng(11);
  tensor::ParameterSet params;
  GnnConfig cfg = toy_cfg();
  cfg.gru_update = true;
  TwoPhaseGnn gnn(cfg, rng, params);
  const Graph g = toy_graph();
  const Tensor h = gnn.run(g);
  EXPECT_EQ(h.rows(), 4u);
  // GRU gate parameters exist and receive gradient.
  Tensor loss = tensor::mean_all(h * h);
  loss.backward();
  bool saw_gate_grad = false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params.names()[i].find(".w_z") == std::string::npos) continue;
    float s = 0;
    for (const float v : params.tensors()[i].grad()) s += std::abs(v);
    saw_gate_grad = saw_gate_grad || s > 0;
  }
  EXPECT_TRUE(saw_gate_grad);
}

TEST(TwoPhaseGnn, GruDiffersFromTanhUpdate) {
  Rng r1(12), r2(12);
  tensor::ParameterSet p1, p2;
  GnnConfig ca = toy_cfg();
  GnnConfig cg = toy_cfg();
  cg.gru_update = true;
  TwoPhaseGnn a(ca, r1, p1), g(cg, r2, p2);
  const Graph graph = toy_graph();
  const auto ha = a.run(graph);
  const auto hg = g.run(graph);
  float diff = 0;
  for (std::size_t i = 0; i < ha.size(); ++i) {
    diff += std::abs(ha.data()[i] - hg.data()[i]);
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST(TwoPhaseGnn, PinPositionClamped) {
  // Edge with a pin position beyond the table must not crash (clamped).
  GraphBuilder gb(2, 1);
  gb.set_fanins(1, {{0, 99}});
  gb.set_features(Tensor::zeros(2, 2));
  gb.schedule_forward({1});
  const Graph g = gb.build();
  GnnConfig cfg;
  cfg.feature_dim = 2;
  cfg.hidden = 4;
  Rng rng(7);
  tensor::ParameterSet params;
  TwoPhaseGnn gnn(cfg, rng, params);
  EXPECT_NO_THROW(gnn.run(g));
}

}  // namespace
}  // namespace moss::gnn
