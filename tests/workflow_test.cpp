#include <gtest/gtest.h>

#include <cstdio>

#include "core/workflow.hpp"
#include "core_util/check.hpp"
#include "rtl/parser.hpp"

namespace moss::core {
namespace {

WorkflowConfig tiny_config() {
  WorkflowConfig cfg;
  cfg.model.hidden = 12;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = 200;
  cfg.encoder = {1024, 12, 5};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 4000;
  cfg.pretrain.epochs = 4;
  cfg.pretrain.lr = 3e-3f;
  cfg.align.epochs = 4;
  cfg.align.batch_size = 3;
  return cfg;
}

TEST(Workflow, FitAndEvaluate) {
  MossWorkflow wf(tiny_config());
  wf.add_design({"alu", 1, 1, "wf_alu"});
  wf.add_design({"gray_counter", 1, 2, "wf_gc"});
  wf.add_design({"crc", 1, 3, "wf_crc"});
  EXPECT_EQ(wf.num_circuits(), 3u);
  wf.fit();
  const TaskAccuracy acc = wf.evaluate(0);
  EXPECT_GE(acc.atp, 0.0);
  EXPECT_LE(acc.atp, 1.0);
  EXPECT_GE(wf.fep(), 0.0);
}

TEST(Workflow, AcceptsParsedModules) {
  MossWorkflow wf(tiny_config());
  wf.add_module(rtl::parse_verilog(R"(
    module m (input clk, input rst, input [3:0] a, output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd0; else r <= r ^ a;
      end
      assign y = r;
    endmodule)"));
  wf.add_design({"fifo_ctrl", 1, 9, "wf_fifo"});
  wf.fit();
  const auto at = wf.predict_flop_arrivals(wf.circuit(0));
  EXPECT_EQ(at.size(), wf.circuit(0).netlist.flops().size());
  for (const double v : at) EXPECT_GE(v, 0.0);
}

TEST(Workflow, EvaluateUnseenCircuit) {
  MossWorkflow wf(tiny_config());
  wf.add_design({"alu", 1, 1, "wf_train"});
  wf.add_design({"arbiter", 1, 2, "wf_train2"});
  wf.pretrain_model();
  const auto unseen = data::label_circuit(
      {"alu", 1, 777, "wf_unseen"}, cell::standard_library(),
      tiny_config().dataset);
  const TaskAccuracy acc = wf.evaluate(unseen);
  EXPECT_GE(acc.trp, 0.0);
  EXPECT_LE(acc.trp, 1.0);
}

TEST(Workflow, CheckpointRoundTrip) {
  const std::string path = "/tmp/moss_wf_test.ckpt";
  WorkflowConfig cfg = tiny_config();
  MossWorkflow a(cfg);
  a.add_design({"alu", 1, 1, "wf_a"});
  a.add_design({"crc", 1, 2, "wf_b"});
  a.pretrain_model();
  const auto acc_a = a.evaluate(0);
  a.save_checkpoint(path);

  MossWorkflow b(cfg);
  b.add_design({"alu", 1, 1, "wf_a"});
  b.add_design({"crc", 1, 2, "wf_b"});
  b.load_checkpoint(path);
  const auto acc_b = b.evaluate(0);
  EXPECT_NEAR(acc_a.atp, acc_b.atp, 1e-6);
  EXPECT_NEAR(acc_a.trp, acc_b.trp, 1e-6);
  std::remove(path.c_str());
}

TEST(Workflow, AlignReportedWhenEnabled) {
  MossWorkflow wf(tiny_config());
  wf.add_design({"alu", 1, 5, "wf_m"});
  wf.add_design({"crc", 1, 6, "wf_n"});
  wf.add_design({"arbiter", 1, 7, "wf_o"});
  wf.pretrain_model();
  const auto rep = wf.align_model();
  ASSERT_FALSE(rep.total.empty());
  EXPECT_EQ(rep.total.size(), rep.rnc.size());
  EXPECT_EQ(rep.total.size(), rep.rnm.size());
}

TEST(Workflow, AlignVisitsEveryCircuitIncludingTail) {
  // 5 circuits with batch_size 3: the old loop dropped the 2-circuit tail
  // minibatch every epoch. circuits_seen must count all of them.
  WorkflowConfig cfg = tiny_config();
  cfg.align.epochs = 3;
  cfg.align.batch_size = 3;
  MossWorkflow wf(cfg);
  wf.add_design({"alu", 1, 11, "wf_t1"});
  wf.add_design({"crc", 1, 12, "wf_t2"});
  wf.add_design({"arbiter", 1, 13, "wf_t3"});
  wf.add_design({"gray_counter", 1, 14, "wf_t4"});
  wf.add_design({"fifo_ctrl", 1, 15, "wf_t5"});
  wf.pretrain_model();
  const AlignReport rep = wf.align_model();
  ASSERT_EQ(rep.circuits_seen.size(), 3u);
  for (const std::size_t seen : rep.circuits_seen) {
    EXPECT_EQ(seen, wf.num_circuits());
  }
}

TEST(Workflow, AddDesignsMatchesSerialAdds) {
  const std::vector<data::DesignSpec> specs{
      {"alu", 1, 31, "wf_p1"}, {"crc", 1, 32, "wf_p2"},
      {"arbiter", 1, 33, "wf_p3"}};
  WorkflowConfig cfg = tiny_config();
  cfg.threads = 4;
  MossWorkflow par(cfg);
  par.add_designs(specs);
  MossWorkflow ser(tiny_config());
  for (const auto& s : specs) ser.add_design(s);
  ASSERT_EQ(par.num_circuits(), ser.num_circuits());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(par.circuit(i).module_text, ser.circuit(i).module_text);
    EXPECT_EQ(par.circuit(i).toggle, ser.circuit(i).toggle);
    EXPECT_EQ(par.circuit(i).flop_arrival, ser.circuit(i).flop_arrival);
    EXPECT_EQ(par.circuit(i).power_uw, ser.circuit(i).power_uw);
  }
}

TEST(Workflow, FineTuneReportsLoss) {
  MossWorkflow wf(tiny_config());
  wf.add_design({"alu", 1, 8, "wf_ft"});
  wf.add_design({"crc", 1, 9, "wf_ft2"});
  const auto rep = wf.fine_tune_encoder();
  EXPECT_EQ(rep.epoch_loss.size(), 1u);
  EXPECT_GT(rep.epoch_loss[0], 0.0);
}

TEST(Workflow, AddAfterTrainingRejected) {
  MossWorkflow wf(tiny_config());
  wf.add_design({"alu", 1, 1, "wf_x"});
  wf.add_design({"crc", 1, 2, "wf_y"});
  wf.pretrain_model();
  EXPECT_THROW(wf.add_design({"arbiter", 1, 3, "wf_z"}), Error);
}

}  // namespace
}  // namespace moss::core
