#include <gtest/gtest.h>

#include "core_util/rng.hpp"
#include "rtl/eval.hpp"
#include "rtl/lint.hpp"
#include "rtl/parser.hpp"
#include "rtl/printer.hpp"
#include "rtl/prompts.hpp"

namespace moss::rtl {
namespace {

/// 8-bit counter with enable and reset; output q.
Module counter_module() {
  Module m;
  m.name = "counter8";
  m.add_input("rst", 1);
  const ExprId en = m.add_input("en", 1);
  const ExprId q = m.add_reg("count", 8, true, 0);
  m.set_next("count", m.arena.binary(ExprOp::kAdd, q, m.arena.constant(8, 1)),
             en);
  m.assign_output("q", 8, q);
  m.validate();
  return m;
}

TEST(Module, BuilderBasics) {
  const Module m = counter_module();
  EXPECT_EQ(m.inputs.size(), 2u);
  EXPECT_EQ(m.regs.size(), 1u);
  EXPECT_EQ(m.total_reg_bits(), 8);
  const Symbol* s = m.find_symbol("count");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, SymbolKind::kRegister);
  EXPECT_EQ(s->width, 8);
}

TEST(Module, DuplicateSymbolRejected) {
  Module m;
  m.add_input("a", 4);
  EXPECT_THROW(m.add_input("a", 4), Error);
  EXPECT_THROW(m.add_reg("a", 2), Error);
}

TEST(Module, WidthMismatchRejected) {
  Module m;
  const ExprId a = m.add_input("a", 4);
  const ExprId b = m.add_input("b", 5);
  EXPECT_THROW(m.arena.binary(ExprOp::kAdd, a, b), Error);
}

TEST(Module, MissingNextCaughtByValidate) {
  Module m;
  m.add_reg("r", 4, false);
  EXPECT_THROW(m.validate(), Error);
}

TEST(Module, WireCycleRejected) {
  Module m;
  const ExprId w1 = m.declare_wire("w1", 1);
  const ExprId w2 = m.declare_wire("w2", 1);
  m.set_wire_expr("w1", m.arena.unary(ExprOp::kNot, w2));
  m.set_wire_expr("w2", m.arena.unary(ExprOp::kNot, w1));
  EXPECT_THROW(m.validate(), Error);
}

TEST(Evaluator, CounterCounts) {
  const Module m = counter_module();
  Evaluator ev(m);
  // inputs: rst, en
  ev.step({0, 1});
  ev.step({0, 1});
  ev.step({0, 1});
  EXPECT_EQ(ev.state()[0], 3u);
  ev.step({0, 0});  // disabled: hold
  EXPECT_EQ(ev.state()[0], 3u);
  ev.step({1, 1});  // reset wins
  EXPECT_EQ(ev.state()[0], 0u);
}

TEST(Evaluator, CounterWraps) {
  const Module m = counter_module();
  Evaluator ev(m);
  for (int i = 0; i < 256; ++i) ev.step({0, 1});
  EXPECT_EQ(ev.state()[0], 0u);
}

TEST(Evaluator, OutputsSampledPreEdge) {
  const Module m = counter_module();
  Evaluator ev(m);
  ev.step({0, 1});
  // Output was computed from the pre-edge state (0).
  EXPECT_EQ(ev.outputs()[0], 0u);
  ev.step({0, 1});
  EXPECT_EQ(ev.outputs()[0], 1u);
}

TEST(Evaluator, ExprSemantics) {
  // Exercise every operator against hand-computed expectations.
  Module m;
  const ExprId a = m.add_input("a", 8);
  const ExprId b = m.add_input("b", 8);
  const ExprId s = m.add_input("s", 1);
  auto& ar = m.arena;
  m.assign_output("o_not", 8, ar.unary(ExprOp::kNot, a));
  m.assign_output("o_neg", 8, ar.unary(ExprOp::kNeg, a));
  m.assign_output("o_redand", 1, ar.unary(ExprOp::kRedAnd, a));
  m.assign_output("o_redor", 1, ar.unary(ExprOp::kRedOr, a));
  m.assign_output("o_redxor", 1, ar.unary(ExprOp::kRedXor, a));
  m.assign_output("o_and", 8, ar.binary(ExprOp::kAnd, a, b));
  m.assign_output("o_or", 8, ar.binary(ExprOp::kOr, a, b));
  m.assign_output("o_xor", 8, ar.binary(ExprOp::kXor, a, b));
  m.assign_output("o_add", 8, ar.binary(ExprOp::kAdd, a, b));
  m.assign_output("o_sub", 8, ar.binary(ExprOp::kSub, a, b));
  m.assign_output("o_mul", 8, ar.binary(ExprOp::kMul, a, b));
  m.assign_output("o_shl", 8, ar.binary(ExprOp::kShl, a, ar.constant(3, 2)));
  m.assign_output("o_shr", 8, ar.binary(ExprOp::kShr, a, ar.constant(3, 2)));
  m.assign_output("o_eq", 1, ar.binary(ExprOp::kEq, a, b));
  m.assign_output("o_lt", 1, ar.binary(ExprOp::kLt, a, b));
  m.assign_output("o_mux", 8, ar.mux(s, a, b));
  m.assign_output("o_bit", 1, ar.bit(a, 7));
  m.assign_output("o_slice", 4, ar.slice(a, 5, 2));
  m.assign_output("o_cat", 16, ar.concat({a, b}));
  m.assign_output("o_zext", 12, ar.zext(a, 12));
  m.assign_output("o_sext", 12, ar.sext(a, 12));
  m.validate();

  Evaluator ev(m);
  const std::uint64_t A = 0xB4, B = 0x2F;  // a=180, b=47
  const auto out = ev.outputs_now({A, B, 1});
  int i = 0;
  EXPECT_EQ(out[i++], (~A) & 0xFF);
  EXPECT_EQ(out[i++], (0x100 - A) & 0xFF);
  EXPECT_EQ(out[i++], 0u);                       // redand
  EXPECT_EQ(out[i++], 1u);                       // redor
  EXPECT_EQ(out[i++], static_cast<std::uint64_t>(__builtin_popcountll(A) & 1));
  EXPECT_EQ(out[i++], A & B);
  EXPECT_EQ(out[i++], A | B);
  EXPECT_EQ(out[i++], A ^ B);
  EXPECT_EQ(out[i++], (A + B) & 0xFF);
  EXPECT_EQ(out[i++], (A - B) & 0xFF);
  EXPECT_EQ(out[i++], (A * B) & 0xFF);
  EXPECT_EQ(out[i++], (A << 2) & 0xFF);
  EXPECT_EQ(out[i++], A >> 2);
  EXPECT_EQ(out[i++], 0u);  // eq
  EXPECT_EQ(out[i++], 0u);  // lt (180 < 47 false)
  EXPECT_EQ(out[i++], A);   // mux s=1 -> a
  EXPECT_EQ(out[i++], (A >> 7) & 1);
  EXPECT_EQ(out[i++], (A >> 2) & 0xF);
  EXPECT_EQ(out[i++], (A << 8) | B);
  EXPECT_EQ(out[i++], A);                  // zext
  EXPECT_EQ(out[i++], 0xF00 | A);          // sext of 0xB4 (negative)
}

TEST(Evaluator, ResetJumpsToResetValues) {
  Module m;
  m.name = "rv";
  m.add_input("rst", 1);
  m.add_reg("r", 8, true, 0xA5);
  m.set_next("r", m.arena.constant(8, 0));
  m.assign_output("q", 8, m.arena.var("r", 8));
  m.validate();
  Evaluator ev(m);
  EXPECT_EQ(ev.state()[0], 0u);  // power-on zero
  ev.reset();
  EXPECT_EQ(ev.state()[0], 0xA5u);
}

TEST(Printer, ExprToString) {
  Module m;
  const ExprId a = m.add_input("a", 4);
  const ExprId b = m.add_input("b", 4);
  auto& ar = m.arena;
  EXPECT_EQ(expr_to_string(m, ar.binary(ExprOp::kAdd, a, b)), "a + b");
  EXPECT_EQ(expr_to_string(
                m, ar.binary(ExprOp::kAnd, ar.binary(ExprOp::kOr, a, b), b)),
            "(a | b) & b");
  EXPECT_EQ(expr_to_string(m, ar.mux(ar.bit(a, 0), a, b)),
            "a[0] ? a : b");
  EXPECT_EQ(expr_to_string(m, ar.concat({a, b})), "{a, b}");
  EXPECT_EQ(expr_to_string(m, ar.constant(4, 9)), "4'd9");
}

TEST(Printer, EmitsWellFormedVerilog) {
  const Module m = counter_module();
  const std::string v = to_verilog(m);
  EXPECT_NE(v.find("module counter8"), std::string::npos);
  EXPECT_NE(v.find("input clk"), std::string::npos);
  EXPECT_NE(v.find("reg [7:0] count;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("if (rst) count <= 8'd0;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Parser, RoundTripCounter) {
  const Module m = counter_module();
  const std::string v = to_verilog(m);
  Module m2 = parse_verilog(v);
  EXPECT_EQ(m2.name, "counter8");
  ASSERT_EQ(m2.regs.size(), 1u);
  EXPECT_TRUE(m2.regs[0].has_reset);
  EXPECT_NE(m2.regs[0].enable, kInvalidExpr);

  // Functional equivalence over random stimulus.
  Evaluator e1(m), e2(m2);
  Rng rng(99);
  for (int cyc = 0; cyc < 200; ++cyc) {
    const std::uint64_t rst = rng.bernoulli(0.05) ? 1 : 0;
    const std::uint64_t en = rng.bernoulli(0.7) ? 1 : 0;
    e1.step({rst, en});
    e2.step({rst, en});
    ASSERT_EQ(e1.outputs()[0], e2.outputs()[0]) << "cycle " << cyc;
  }
}

TEST(Parser, ParsesHandwrittenAlu) {
  const char* src = R"(
    // tiny ALU with registered result
    module tiny_alu (
      input clk,
      input rst,
      input [1:0] op,
      input [7:0] a,
      input [7:0] b,
      output [7:0] y
    );
      wire [7:0] sum;
      wire [7:0] res;
      reg [7:0] acc;
      assign sum = a + b;
      assign res = op == 2'd0 ? sum
                 : op == 2'd1 ? (a & b)
                 : op == 2'd2 ? (a ^ b)
                 : a - b;
      always @(posedge clk) begin
        if (rst) acc <= 8'd0;
        else acc <= res;
      end
      assign y = acc;
    endmodule
  )";
  Module m = parse_verilog(src);
  EXPECT_EQ(m.inputs.size(), 4u);  // rst, op, a, b (clk implicit)
  Evaluator ev(m);
  ev.step({0, 0, 10, 20, });
  ev.step({0, 0, 0, 0});
  EXPECT_EQ(ev.outputs()[0], 30u);
  ev.step({0, 3, 50, 8});
  ev.step({0, 0, 0, 0});
  EXPECT_EQ(ev.outputs()[0], 42u);
}

TEST(Parser, SingleStatementAlwaysAndBlockComments) {
  const char* src = R"(
    module one (input clk, input [3:0] d, output [3:0] y);
      reg [3:0] r;
      /* a block
         comment */
      always @(posedge clk) r <= d;
      assign y = r;
    endmodule
  )";
  Module m = parse_verilog(src);
  Evaluator ev(m);
  ev.step({7});
  ev.step({0});
  EXPECT_EQ(ev.outputs()[0], 7u);
}

TEST(Parser, RstNRecognizedAsReset) {
  const char* src = R"(
    module rn (input clk, input rst_n, input [3:0] d, output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst_n) r <= 4'd0; else r <= d;
      end
      assign y = r;
    endmodule
  )";
  Module m = parse_verilog(src);
  EXPECT_EQ(m.reset_port, "rst_n");
  ASSERT_EQ(m.regs.size(), 1u);
  EXPECT_TRUE(m.regs[0].has_reset);
}

TEST(Parser, SizedLiteralBases) {
  const char* src = R"(
    module lits (input [7:0] a, output [7:0] y);
      assign y = a ^ 8'hA5 ^ 8'b0000_1111 ^ 8'd3;
    endmodule
  )";
  Module m = parse_verilog(src);
  Evaluator ev(m);
  const auto out = ev.outputs_now({0});
  EXPECT_EQ(out[0], (0xA5 ^ 0x0F ^ 0x03) & 0xFFu);
}

TEST(Parser, ReplicationAndConcat) {
  const char* src = R"(
    module cat (input [3:0] a, output [11:0] y);
      assign y = {2{a}, 4'd5};
    endmodule
  )";
  // Note: Verilog would need {{2{a}}, 4'd5}; accept both nestings.
  const char* src2 = R"(
    module cat (input [3:0] a, output [11:0] y);
      assign y = {{2{a}}, 4'd5};
    endmodule
  )";
  (void)src;
  Module m = parse_verilog(src2);
  Evaluator ev(m);
  EXPECT_EQ(ev.outputs_now({0x9})[0], 0x995u);
}

TEST(Parser, GreaterThanRewritten) {
  const char* src = R"(
    module cmp (input [3:0] a, input [3:0] b, output y, output z);
      assign y = a > b;
      assign z = a >= b;
    endmodule
  )";
  Module m = parse_verilog(src);
  Evaluator ev(m);
  auto out = ev.outputs_now({7, 3});
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 1u);
  out = ev.outputs_now({3, 3});
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 1u);
}

TEST(Parser, CaseStatementLowersToMuxChain) {
  const char* src = R"(
    module fsm (input clk, input rst, input [1:0] op, input [3:0] d,
                output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        case (op)
          2'd0: r <= d;
          2'd1: r <= r + 4'd1;
          2'd2: r <= 4'd0;
          default: r <= r ^ d;
        endcase
      end
      assign y = r;
    endmodule
  )";
  Module m = parse_verilog(src);
  Evaluator ev(m);
  ev.step({0, 0, 9});  // load 9
  ev.step({0, 1, 0});  // increment
  ev.step({0, 3, 5});  // default: xor 5 -> 10^5 = 15
  ev.step({0, 2, 0});  // clear
  ev.step({0, 1, 0});
  EXPECT_EQ(ev.outputs()[0], 0u);  // pre-edge of the clear result... next:
  ev.step({0, 0, 0});
  EXPECT_EQ(ev.outputs()[0], 1u);  // cleared then incremented once
}

TEST(Parser, CaseWithoutDefaultHolds) {
  const char* src = R"(
    module h (input clk, input [1:0] op, input [3:0] d, output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        case (op)
          2'd1: r <= d;
        endcase
      end
      assign y = r;
    endmodule
  )";
  Module m = parse_verilog(src);
  Evaluator ev(m);
  ev.step({1, 7});  // load 7
  ev.step({0, 3});  // op=0: hold
  ev.step({2, 3});  // op=2: hold
  ev.step({0, 0});
  EXPECT_EQ(ev.outputs()[0], 7u);
}

TEST(Parser, CaseErrors) {
  // label width mismatch
  EXPECT_THROW(parse_verilog(R"(
    module e1 (input clk, input [1:0] op, input [3:0] d, output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        case (op) 3'd0: r <= d; endcase
      end
      assign y = r;
    endmodule)"),
               ParseError);
  // arms assigning different registers
  EXPECT_THROW(parse_verilog(R"(
    module e2 (input clk, input [1:0] op, input [3:0] d, output [3:0] y);
      reg [3:0] r;
      reg [3:0] s;
      always @(posedge clk) begin
        case (op)
          2'd0: r <= d;
          2'd1: s <= d;
        endcase
      end
      assign y = r ^ s;
    endmodule)"),
               ParseError);
}

TEST(Parser, RejectsMalformed) {
  EXPECT_THROW(parse_verilog("modul x (); endmodule"), ParseError);
  EXPECT_THROW(parse_verilog("module x (input [3:0] a, output y); assign y = "
                             "a + 5'd1; endmodule"),
               Error);  // width mismatch
  EXPECT_THROW(
      parse_verilog("module x (output y); assign y = 1; endmodule"),
      ParseError);  // unsized literal
}

TEST(Parser, DiagnosticsCarryLineAndColumn) {
  try {
    parse_verilog("module x (output y);\n  assign y = @;\nendmodule");
    FAIL() << "stray @ parsed";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("col"), std::string::npos) << msg;
  }
}

TEST(Parser, NonRegisterAssignmentNamesSymbolAndKind) {
  // Non-blocking assignment to an input: the error must say which symbol
  // and what it actually is, not just "not a register".
  try {
    parse_verilog(R"(
      module x (input clk, input [1:0] a, output [1:0] y);
        reg [1:0] r;
        always @(posedge clk) begin
          a <= r;
        end
        assign y = r;
      endmodule)");
    FAIL() << "assignment to input parsed";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'a'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("input"), std::string::npos) << msg;
  }
}

TEST(Parser, UndeclaredAssignmentTargetNamed) {
  try {
    parse_verilog(R"(
      module x (input clk, output y);
        reg r;
        always @(posedge clk) begin
          ghost <= r;
        end
        assign y = r;
      endmodule)");
    FAIL() << "assignment to undeclared symbol parsed";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'ghost'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("undeclared"), std::string::npos) << msg;
  }
}

TEST(Lint, CleanModuleHasNoIssues) {
  const Module m = counter_module();
  EXPECT_TRUE(lint(m).empty());
}

TEST(Lint, FlagsUnusedInputAndWire) {
  Module m;
  m.name = "l";
  m.add_input("used", 4);
  m.add_input("unused", 4);
  const ExprId u = m.arena.var("used", 4);
  m.add_wire("dead", 4, m.arena.unary(ExprOp::kNot, u));
  m.assign_output("y", 4, u);
  const auto issues = lint(m);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].kind, LintIssue::Kind::kUnusedInput);
  EXPECT_EQ(issues[0].symbol, "unused");
  EXPECT_EQ(issues[1].kind, LintIssue::Kind::kUnreadWire);
  EXPECT_EQ(issues[1].symbol, "dead");
  EXPECT_NE(to_string(issues).find("warning: input 'unused'"),
            std::string::npos);
}

TEST(Lint, FlagsUnreadAndConstantRegisters) {
  Module m;
  m.name = "l2";
  m.add_input("rst", 1);
  const ExprId self = m.add_reg("self_only", 4);
  m.set_next("self_only",
             m.arena.binary(ExprOp::kAdd, self, m.arena.constant(4, 1)));
  m.add_reg("konst", 4);
  m.set_next("konst", m.arena.constant(4, 5));
  const ExprId k = m.arena.var("konst", 4);
  m.assign_output("y", 4, k);
  const auto issues = lint(m);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].kind, LintIssue::Kind::kUnreadRegister);
  EXPECT_EQ(issues[0].symbol, "self_only");
  EXPECT_EQ(issues[1].kind, LintIssue::Kind::kConstantRegister);
  EXPECT_EQ(issues[1].symbol, "konst");
}

TEST(Lint, FlagsNoOutputs) {
  Module m;
  m.name = "silent";
  m.add_input("a", 1);
  const auto issues = lint(m);
  // "a" unused + no outputs.
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[1].kind, LintIssue::Kind::kNoOutputs);
}

TEST(Prompts, RegisterPromptContent) {
  const Module m = counter_module();
  const auto prompts = register_prompts(m);
  ASSERT_EQ(prompts.size(), 1u);
  const std::string& t = prompts[0].text;
  EXPECT_NE(t.find("counter8"), std::string::npos);
  EXPECT_NE(t.find("'count'"), std::string::npos);
  EXPECT_NE(t.find("8 bits"), std::string::npos);
  EXPECT_NE(t.find("counter"), std::string::npos);  // inferred role
  EXPECT_NE(t.find("reset"), std::string::npos);
}

TEST(Prompts, RoleInference) {
  Module m;
  m.name = "roles";
  m.add_input("rst", 1);
  const ExprId d = m.add_input("d", 1);
  auto& ar = m.arena;

  const ExprId sh = m.add_reg("sh", 8, true, 0);
  m.set_next("sh", ar.concat({ar.slice(sh, 6, 0), d}));

  const ExprId acc = m.add_reg("acc", 8, true, 0);
  const ExprId inc = m.add_input("inc", 8);
  m.set_next("acc", ar.binary(ExprOp::kAdd, acc, inc));

  m.add_reg("stage", 8, true, 0);
  m.set_next("stage", acc);

  m.assign_output("o", 8, ar.binary(ExprOp::kXor, sh, acc));
  m.validate();

  EXPECT_EQ(infer_register_role(m, m.regs[0]), "shift register stage");
  EXPECT_EQ(infer_register_role(m, m.regs[1]), "accumulator");
  EXPECT_EQ(infer_register_role(m, m.regs[2]), "pipeline register");
}

TEST(Prompts, ModulePromptIncludesSource) {
  const Module m = counter_module();
  const std::string t = module_prompt(m);
  EXPECT_NE(t.find("Module 'counter8'"), std::string::npos);
  EXPECT_NE(t.find("module counter8"), std::string::npos);  // RTL source
  EXPECT_NE(t.find("8 state bits"), std::string::npos);
}

}  // namespace
}  // namespace moss::rtl
