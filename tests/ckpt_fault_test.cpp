// Crash-safety test suite: checkpoint corruption matrix, atomic-write fault
// injection, NaN hardening and bit-identical resume equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/workflow.hpp"
#include "core_util/error.hpp"
#include "core_util/fault.hpp"
#include "tensor/serialize.hpp"

namespace moss {
namespace {

using core::AlignConfig;
using core::AlignReport;
using core::MossWorkflow;
using core::PretrainConfig;
using core::PretrainReport;
using core::WorkflowConfig;
using tensor::CheckpointFile;
using tensor::ParameterSet;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// helpers

/// Guard that disarms every fault site on scope exit, so a failing
/// EXPECT_THROW cannot leak an armed fault into later tests.
struct FaultGuard {
  ~FaultGuard() { testing::disarm_all_faults(); }
};

void fill_params(ParameterSet& params, float base) {
  params.add("enc.w", Tensor::zeros(2, 3));
  params.add("head.b", Tensor::zeros(1, 4));
  std::vector<float>& a = params.tensors()[0].data();
  std::vector<float>& b = params.tensors()[1].data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = base + 0.25f * static_cast<float>(i);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = -base + 0.5f * static_cast<float>(i);
  }
}

std::vector<std::vector<float>> dump(const ParameterSet& params) {
  std::vector<std::vector<float>> out;
  for (const Tensor& t : params.tensors()) out.push_back(t.data());
  return out;
}

std::string save_to_string(const ParameterSet& params) {
  std::ostringstream out;
  tensor::save_parameters(out, params);
  return out.str();
}

void load_from_string(const std::string& bytes, ParameterSet& params) {
  std::istringstream in(bytes);
  tensor::load_parameters(in, params);
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f32(std::string& buf, float v) {
  char raw[4];
  std::memcpy(raw, &v, 4);
  buf.append(raw, 4);
}

/// Hand-rolled legacy v0 stream: magic "MOSSCKPT" | u64 count |
/// per param: u64 name_len, name, u64 rows, u64 cols, f32 data.
std::string v0_bytes(const ParameterSet& params) {
  std::string buf("MOSSCKPT");
  put_u64(buf, params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& t = params.tensors()[i];
    put_u64(buf, params.names()[i].size());
    buf += params.names()[i];
    put_u64(buf, t.rows());
    put_u64(buf, t.cols());
    for (const float v : t.data()) put_f32(buf, v);
  }
  return buf;
}

void remove_ckpt(const std::string& base) {
  for (const char* suffix : {"", ".best", ".tmp"}) {
    std::remove((base + suffix).c_str());
  }
}

WorkflowConfig tiny_config() {
  WorkflowConfig cfg;
  cfg.model.hidden = 12;
  cfg.model.rounds = 1;
  cfg.dataset.sim_cycles = 200;
  cfg.encoder = {1024, 12, 5};
  cfg.fine_tune.epochs = 1;
  cfg.fine_tune.max_pairs_per_epoch = 4000;
  cfg.pretrain.epochs = 4;
  cfg.pretrain.lr = 3e-3f;
  cfg.align.epochs = 4;
  cfg.align.batch_size = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// corruption matrix

TEST(CkptFormat, V1RoundTrip) {
  ParameterSet src;
  fill_params(src, 1.0f);
  ParameterSet dst;
  fill_params(dst, 9.0f);
  load_from_string(save_to_string(src), dst);
  EXPECT_EQ(dump(src), dump(dst));
}

TEST(CkptFormat, TruncationAtEveryByteDetected) {
  ParameterSet src;
  fill_params(src, 1.0f);
  const std::string bytes = save_to_string(src);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ParameterSet dst;
    fill_params(dst, 9.0f);
    const auto before = dump(dst);
    EXPECT_THROW(load_from_string(bytes.substr(0, len), dst), Error)
        << "truncation to " << len << " bytes loaded silently";
    EXPECT_EQ(dump(dst), before)
        << "truncation to " << len << " bytes partially overwrote params";
  }
}

TEST(CkptFormat, SingleBitFlipInEveryByteDetected) {
  ParameterSet src;
  fill_params(src, 1.0f);
  const std::string bytes = save_to_string(src);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const char mask : {char(0x01), char(0x80)}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ mask);
      ParameterSet dst;
      fill_params(dst, 9.0f);
      const auto before = dump(dst);
      EXPECT_THROW(load_from_string(corrupt, dst), Error)
          << "bit flip at byte " << i << " loaded silently";
      EXPECT_EQ(dump(dst), before)
          << "bit flip at byte " << i << " partially overwrote params";
    }
  }
}

TEST(CkptFormat, VersionMismatchNamesVersions) {
  ParameterSet src;
  fill_params(src, 1.0f);
  std::string bytes = save_to_string(src);
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = 99;  // u32 format_version field follows the 8-byte magic
  ParameterSet dst;
  fill_params(dst, 9.0f);
  try {
    load_from_string(bytes, dst);
    FAIL() << "version 99 checkpoint loaded";
  } catch (const ContextError& e) {
    EXPECT_NE(e.message().find("version"), std::string::npos) << e.what();
    EXPECT_NE(e.message().find("99"), std::string::npos) << e.what();
  }
}

TEST(CkptFormat, BadMagicRejected) {
  ParameterSet dst;
  fill_params(dst, 9.0f);
  try {
    load_from_string("GARBAGE!not a checkpoint at all........", dst);
    FAIL() << "garbage loaded";
  } catch (const ContextError& e) {
    EXPECT_NE(e.message().find("magic"), std::string::npos) << e.what();
  }
}

TEST(CkptFormat, ShapeMismatchNamesParam) {
  ParameterSet src;
  fill_params(src, 1.0f);
  ParameterSet dst;
  dst.add("enc.w", Tensor::zeros(3, 3));  // wrong shape for enc.w (2x3)
  dst.add("head.b", Tensor::zeros(1, 4));
  try {
    load_from_string(save_to_string(src), dst);
    FAIL() << "shape mismatch loaded";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("param"), "enc.w") << e.what();
  }
}

TEST(CkptFormat, MissingSectionNamed) {
  ParameterSet src;
  fill_params(src, 1.0f);
  const CheckpointFile full =
      CheckpointFile::read_string(save_to_string(src), ErrorContext());
  CheckpointFile pruned;
  for (const auto& [name, payload] : full.sections()) {
    if (name != "param:head.b") pruned.set(name, payload);
  }
  std::ostringstream out;
  pruned.write(out);
  ParameterSet dst;
  fill_params(dst, 9.0f);
  const auto before = dump(dst);
  try {
    load_from_string(out.str(), dst);
    FAIL() << "checkpoint with missing param section loaded";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("section"), "param:head.b") << e.what();
  }
  EXPECT_EQ(dump(dst), before);
}

TEST(CkptFormat, CountMismatchRejected) {
  ParameterSet src;
  fill_params(src, 1.0f);
  ParameterSet dst;  // fewer params than the checkpoint carries
  dst.add("enc.w", Tensor::zeros(2, 3));
  EXPECT_THROW(load_from_string(save_to_string(src), dst), ContextError);
}

// ---------------------------------------------------------------------------
// legacy v0 compatibility

TEST(CkptFormat, V0StillReadable) {
  ParameterSet src;
  fill_params(src, 1.0f);
  ParameterSet dst;
  fill_params(dst, 9.0f);
  load_from_string(v0_bytes(src), dst);
  EXPECT_EQ(dump(src), dump(dst));
}

TEST(CkptFormat, V0TruncationNeverPartiallyOverwrites) {
  ParameterSet src;
  fill_params(src, 1.0f);
  const std::string bytes = v0_bytes(src);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ParameterSet dst;
    fill_params(dst, 9.0f);
    const auto before = dump(dst);
    EXPECT_THROW(load_from_string(bytes.substr(0, len), dst), Error)
        << "v0 truncation to " << len << " bytes loaded silently";
    EXPECT_EQ(dump(dst), before)
        << "v0 truncation to " << len << " bytes partially overwrote params";
  }
}

// ---------------------------------------------------------------------------
// atomic writes under injected faults

TEST(CkptAtomic, RenameFaultLeavesOldFileIntact) {
  const std::string path = "/tmp/moss_ckpt_fault_rename.ckpt";
  remove_ckpt(path);
  FaultGuard guard;
  ParameterSet a;
  fill_params(a, 1.0f);
  tensor::save_parameters_file(path, a);

  ParameterSet b;
  fill_params(b, 5.0f);
  testing::arm_fault("serialize.rename");
  EXPECT_THROW(tensor::save_parameters_file(path, b), testing::InjectedFault);
  testing::disarm_all_faults();

  ParameterSet dst;
  fill_params(dst, 9.0f);
  tensor::load_parameters_file(path, dst);
  EXPECT_EQ(dump(dst), dump(a));
  remove_ckpt(path);
}

TEST(CkptAtomic, MidWriteFaultLeavesOldFileIntact) {
  const std::string path = "/tmp/moss_ckpt_fault_midwrite.ckpt";
  remove_ckpt(path);
  FaultGuard guard;
  ParameterSet a;
  fill_params(a, 1.0f);
  tensor::save_parameters_file(path, a);

  ParameterSet b;
  fill_params(b, 5.0f);
  testing::arm_fault("serialize.write_section", 2);  // die mid-stream
  EXPECT_THROW(tensor::save_parameters_file(path, b), testing::InjectedFault);
  testing::disarm_all_faults();

  ParameterSet dst;
  fill_params(dst, 9.0f);
  tensor::load_parameters_file(path, dst);
  EXPECT_EQ(dump(dst), dump(a));
  remove_ckpt(path);
}

TEST(CkptAtomic, ShortWriteDetectedOnSaveAndLoad) {
  ParameterSet src;
  fill_params(src, 1.0f);
  const std::string full = save_to_string(src);
  std::ostringstream sink;
  testing::ShortWriteBuf torn(sink.rdbuf(), full.size() / 2);
  std::ostream out(&torn);
  EXPECT_THROW(tensor::save_parameters(out, src), Error);
  // Whatever did land is a torn prefix — loading it must fail loudly too.
  ParameterSet dst;
  fill_params(dst, 9.0f);
  EXPECT_THROW(load_from_string(sink.str(), dst), Error);
}

// ---------------------------------------------------------------------------
// hardened training loop: non-finite losses

TEST(TrainerHardening, NanLabelSkipsStepKeepsParamsFinite) {
  WorkflowConfig cfg = tiny_config();
  MossWorkflow wf(cfg);
  wf.add_design({"alu", 1, 21, "ckf_nan1"});
  wf.add_design({"crc", 1, 22, "ckf_nan2"});
  core::MossModel& model = wf.model();
  std::vector<core::CircuitBatch> batches;
  for (std::size_t i = 0; i < wf.num_circuits(); ++i) {
    batches.push_back(
        core::build_batch(wf.circuit(i), wf.encoder(), cfg.model.features));
  }
  for (float& v : batches[0].toggle) {
    v = std::numeric_limits<float>::quiet_NaN();
  }
  PretrainConfig pc = cfg.pretrain;
  pc.epochs = 2;
  pc.max_bad_steps = 100;
  const PretrainReport rep = core::pretrain(model, batches, pc);
  EXPECT_GT(rep.bad_steps, 0u);
  for (const Tensor& t : model.params().tensors()) {
    for (const float v : t.data()) {
      ASSERT_TRUE(std::isfinite(v)) << "non-finite parameter after training";
    }
  }
}

TEST(TrainerHardening, TooManyBadStepsAbortsWithContext) {
  WorkflowConfig cfg = tiny_config();
  MossWorkflow wf(cfg);
  wf.add_design({"alu", 1, 23, "ckf_nan3"});
  wf.add_design({"crc", 1, 24, "ckf_nan4"});
  core::MossModel& model = wf.model();
  std::vector<core::CircuitBatch> batches;
  for (std::size_t i = 0; i < wf.num_circuits(); ++i) {
    batches.push_back(
        core::build_batch(wf.circuit(i), wf.encoder(), cfg.model.features));
  }
  for (auto& batch : batches) {
    for (float& v : batch.toggle) {
      v = std::numeric_limits<float>::quiet_NaN();
    }
  }
  PretrainConfig pc = cfg.pretrain;
  pc.max_bad_steps = 0;
  try {
    core::pretrain(model, batches, pc);
    FAIL() << "all-NaN training did not abort";
  } catch (const ContextError& e) {
    EXPECT_EQ(e.context_value("phase"), "pretrain") << e.what();
    EXPECT_FALSE(e.context_value("bad_steps").empty()) << e.what();
  }
}

// ---------------------------------------------------------------------------
// resume equivalence: train(N) == train(k) -> crash -> resume(N)

TEST(Resume, PretrainKilledMidEpochResumesBitIdentical) {
  const std::string base = "/tmp/moss_ckpt_fault_pretrain";
  remove_ckpt(base + ".pretrain.ckpt");
  remove_ckpt(base + ".align.ckpt");
  FaultGuard guard;
  const std::vector<data::DesignSpec> specs{{"alu", 1, 31, "ckf_r1"},
                                            {"crc", 1, 32, "ckf_r2"},
                                            {"arbiter", 1, 33, "ckf_r3"}};

  // Reference: uninterrupted run, no checkpointing at all.
  WorkflowConfig plain = tiny_config();
  MossWorkflow wfA(plain);
  for (const auto& s : specs) wfA.add_design(s);
  const PretrainReport repA = wfA.pretrain_model();
  const auto paramsA = dump(wfA.model().params());

  // Crashed run: dies on the 5th optimizer step = mid epoch 1, after the
  // epoch-0 snapshot landed (3 circuits -> 3 steps per epoch).
  WorkflowConfig ckpt_cfg = tiny_config();
  ckpt_cfg.pretrain.checkpoint_path = base + ".pretrain.ckpt";
  ckpt_cfg.pretrain.checkpoint_every = 1;
  ckpt_cfg.pretrain.resume = true;
  MossWorkflow wfB(ckpt_cfg);
  for (const auto& s : specs) wfB.add_design(s);
  testing::arm_fault("trainer.pretrain.step", 5);
  EXPECT_THROW(wfB.pretrain_model(), testing::InjectedFault);
  testing::disarm_all_faults();

  // Resumed run: fresh process state, picks up from the last snapshot.
  MossWorkflow wfC(ckpt_cfg);
  for (const auto& s : specs) wfC.add_design(s);
  const PretrainReport repC = wfC.pretrain_model();
  EXPECT_EQ(dump(wfC.model().params()), paramsA);
  EXPECT_EQ(repC.total, repA.total);
  EXPECT_EQ(repC.prob, repA.prob);
  EXPECT_EQ(repC.arrival, repA.arrival);
  remove_ckpt(base + ".pretrain.ckpt");
}

TEST(Resume, FitKilledMidAlignResumesBitIdentical) {
  const std::string base = "/tmp/moss_ckpt_fault_fit";
  remove_ckpt(base + ".pretrain.ckpt");
  remove_ckpt(base + ".align.ckpt");
  FaultGuard guard;
  const std::vector<data::DesignSpec> specs{{"alu", 1, 41, "ckf_f1"},
                                            {"crc", 1, 42, "ckf_f2"},
                                            {"arbiter", 1, 43, "ckf_f3"},
                                            {"gray_counter", 1, 44, "ckf_f4"}};

  WorkflowConfig plain = tiny_config();
  MossWorkflow wfA(plain);
  for (const auto& s : specs) wfA.add_design(s);
  wfA.fit();
  const auto paramsA = dump(wfA.model().params());

  // 4 circuits, batch_size 2 -> 2 align steps per epoch; the 3rd step is
  // mid epoch 1, after align's epoch-0 snapshot.
  WorkflowConfig ckpt_cfg = tiny_config();
  ckpt_cfg.enable_checkpointing(base);
  MossWorkflow wfB(ckpt_cfg);
  for (const auto& s : specs) wfB.add_design(s);
  testing::arm_fault("trainer.align.step", 3);
  EXPECT_THROW(wfB.fit(), testing::InjectedFault);
  testing::disarm_all_faults();

  // Resume skips pre-training entirely (the align snapshot embeds it).
  MossWorkflow wfC(ckpt_cfg);
  for (const auto& s : specs) wfC.add_design(s);
  wfC.fit();
  EXPECT_EQ(dump(wfC.model().params()), paramsA);

  // The best-epoch rotation produced a loadable, integrity-checked sibling.
  EXPECT_NO_THROW(tensor::read_checkpoint_file(base + ".align.ckpt.best"));
  remove_ckpt(base + ".pretrain.ckpt");
  remove_ckpt(base + ".align.ckpt");
}

TEST(Resume, CheckpointingItselfDoesNotPerturbTraining) {
  const std::string base = "/tmp/moss_ckpt_fault_noperturb";
  remove_ckpt(base + ".pretrain.ckpt");
  const std::vector<data::DesignSpec> specs{{"alu", 1, 51, "ckf_n1"},
                                            {"crc", 1, 52, "ckf_n2"}};
  WorkflowConfig plain = tiny_config();
  MossWorkflow wfA(plain);
  for (const auto& s : specs) wfA.add_design(s);
  wfA.pretrain_model();

  WorkflowConfig ckpt_cfg = tiny_config();
  ckpt_cfg.pretrain.checkpoint_path = base + ".pretrain.ckpt";
  ckpt_cfg.pretrain.checkpoint_every = 1;
  MossWorkflow wfB(ckpt_cfg);
  for (const auto& s : specs) wfB.add_design(s);
  wfB.pretrain_model();
  EXPECT_EQ(dump(wfA.model().params()), dump(wfB.model().params()));
  remove_ckpt(base + ".pretrain.ckpt");
}

// ---------------------------------------------------------------------------
// environment-armed faults (exercised by the CI fault-injection job, which
// runs this test with MOSS_FAULT=trainer.pretrain.step:<n> set)

TEST(FaultEnv, PretrainKilledByEnvFaultThenResumes) {
  const char* env = std::getenv("MOSS_FAULT");
  if (env == nullptr ||
      std::string(env).find("trainer.pretrain.step") == std::string::npos) {
    GTEST_SKIP() << "MOSS_FAULT not set for trainer.pretrain.step";
  }
  const std::string base = "/tmp/moss_ckpt_fault_env";
  remove_ckpt(base + ".pretrain.ckpt");
  WorkflowConfig cfg = tiny_config();
  cfg.pretrain.checkpoint_path = base + ".pretrain.ckpt";
  cfg.pretrain.checkpoint_every = 1;
  cfg.pretrain.resume = true;
  const std::vector<data::DesignSpec> specs{{"alu", 1, 61, "ckf_e1"},
                                            {"crc", 1, 62, "ckf_e2"}};
  MossWorkflow wfA(cfg);
  for (const auto& s : specs) wfA.add_design(s);
  EXPECT_THROW(wfA.pretrain_model(), testing::InjectedFault);

  // The env fault fires exactly once, so the resumed run completes.
  MossWorkflow wfB(cfg);
  for (const auto& s : specs) wfB.add_design(s);
  const PretrainReport rep = wfB.pretrain_model();
  EXPECT_EQ(rep.total.size(), static_cast<std::size_t>(cfg.pretrain.epochs));
  remove_ckpt(base + ".pretrain.ckpt");
}

}  // namespace
}  // namespace moss
