#include <gtest/gtest.h>

#include <map>

#include "core_util/rng.hpp"
#include "core_util/strings.hpp"
#include "rtl/parser.hpp"
#include "sim/equivalence.hpp"
#include "sim/simulator.hpp"
#include "synth/gate_builder.hpp"
#include "synth/synthesize.hpp"

namespace moss::synth {
namespace {

using cell::standard_library;
using netlist::Netlist;
using netlist::NodeId;

// ---------------------------------------------------------------------------
// GateBuilder unit tests
// ---------------------------------------------------------------------------

struct BuilderFixture {
  Netlist nl{standard_library(), "t"};
  GateBuilder gb{nl};
};

TEST(GateBuilder, ConstantFolding) {
  BuilderFixture f;
  const NodeId a = f.nl.add_input("a");
  const NodeId one = f.gb.bit_const(true);
  const NodeId zero = f.gb.bit_const(false);
  EXPECT_EQ(f.gb.and2(a, one), a);
  EXPECT_EQ(f.gb.and2(a, zero), zero);
  EXPECT_EQ(f.gb.or2(a, zero), a);
  EXPECT_EQ(f.gb.or2(a, one), one);
  EXPECT_EQ(f.gb.xor2(a, zero), a);
  EXPECT_EQ(f.gb.not_(f.gb.not_(a)), a);
  EXPECT_EQ(f.gb.and2(a, a), a);
  EXPECT_EQ(f.gb.xor2(a, a), zero);
  EXPECT_EQ(f.gb.mux2(one, a, zero), zero);  // sel=1 -> t
  EXPECT_EQ(f.gb.mux2(zero, a, one), a);     // sel=0 -> f
}

TEST(GateBuilder, StructuralHashing) {
  BuilderFixture f;
  const NodeId a = f.nl.add_input("a");
  const NodeId b = f.nl.add_input("b");
  const NodeId g1 = f.gb.and2(a, b);
  const NodeId g2 = f.gb.and2(b, a);  // commutative: same node
  EXPECT_EQ(g1, g2);
  const NodeId x1 = f.gb.xor2(a, b);
  const NodeId x2 = f.gb.xor2(a, b);
  EXPECT_EQ(x1, x2);
  EXPECT_NE(g1, x1);
}

TEST(GateBuilder, MuxNotHashedCommutatively) {
  BuilderFixture f;
  const NodeId a = f.nl.add_input("a");
  const NodeId b = f.nl.add_input("b");
  const NodeId s = f.nl.add_input("s");
  EXPECT_NE(f.gb.mux2(s, a, b), f.gb.mux2(s, b, a));
}

TEST(GateBuilder, WordConst) {
  BuilderFixture f;
  const auto w = f.gb.word_const(4, 0b1010);
  EXPECT_EQ(f.gb.const_value(w[0]), false);
  EXPECT_EQ(f.gb.const_value(w[1]), true);
  EXPECT_EQ(f.gb.const_value(w[2]), false);
  EXPECT_EQ(f.gb.const_value(w[3]), true);
}

// Exhaustive functional check of a builder-generated block against a
// software model, via the simulator.
class WordOpFunctional : public ::testing::TestWithParam<int> {};

TEST_P(WordOpFunctional, AdderMatches) {
  const int w = GetParam();
  Netlist nl(standard_library(), "add");
  GateBuilder gb(nl);
  std::vector<NodeId> a, b;
  for (int i = 0; i < w; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < w; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto s = gb.add(a, b);
  for (int i = 0; i < w; ++i) {
    nl.add_output("s" + std::to_string(i), s[static_cast<std::size_t>(i)]);
  }
  nl.finalize();
  sim::Simulator sim(nl);
  const std::uint64_t mask = rtl::width_mask(w);
  for (std::uint64_t av = 0; av <= mask; ++av) {
    for (std::uint64_t bv = 0; bv <= mask; ++bv) {
      std::vector<std::uint8_t> pis;
      for (int i = 0; i < w; ++i) pis.push_back((av >> i) & 1);
      for (int i = 0; i < w; ++i) pis.push_back((bv >> i) & 1);
      sim.step(pis);
      std::uint64_t got = 0;
      const auto out = sim.output_values();
      for (int i = 0; i < w; ++i) {
        got |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(i)])
               << i;
      }
      ASSERT_EQ(got, (av + bv) & mask) << "a=" << av << " b=" << bv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WordOpFunctional, ::testing::Values(1, 2, 3, 4));

TEST(GateBuilder, MultiplierExhaustive4bit) {
  const int w = 4;
  Netlist nl(standard_library(), "mul");
  GateBuilder gb(nl);
  std::vector<NodeId> a, b;
  for (int i = 0; i < w; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < w; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  const auto p = gb.mul(a, b);
  for (int i = 0; i < w; ++i) {
    nl.add_output("p" + std::to_string(i), p[static_cast<std::size_t>(i)]);
  }
  nl.finalize();
  sim::Simulator sim(nl);
  for (std::uint64_t av = 0; av < 16; ++av) {
    for (std::uint64_t bv = 0; bv < 16; ++bv) {
      std::vector<std::uint8_t> pis;
      for (int i = 0; i < w; ++i) pis.push_back((av >> i) & 1);
      for (int i = 0; i < w; ++i) pis.push_back((bv >> i) & 1);
      sim.step(pis);
      std::uint64_t got = 0;
      const auto out = sim.output_values();
      for (int i = 0; i < w; ++i) {
        got |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(i)]) << i;
      }
      ASSERT_EQ(got, (av * bv) & 0xF) << av << "*" << bv;
    }
  }
}

TEST(GateBuilder, ComparatorsExhaustive3bit) {
  Netlist nl(standard_library(), "cmp");
  GateBuilder gb(nl);
  std::vector<NodeId> a, b;
  for (int i = 0; i < 3; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) b.push_back(nl.add_input("b" + std::to_string(i)));
  nl.add_output("eq", gb.eq(a, b));
  nl.add_output("lt", gb.ult(a, b));
  nl.add_output("le", gb.ule(a, b));
  nl.finalize();
  sim::Simulator sim(nl);
  for (std::uint64_t av = 0; av < 8; ++av) {
    for (std::uint64_t bv = 0; bv < 8; ++bv) {
      std::vector<std::uint8_t> pis;
      for (int i = 0; i < 3; ++i) pis.push_back((av >> i) & 1);
      for (int i = 0; i < 3; ++i) pis.push_back((bv >> i) & 1);
      sim.step(pis);
      const auto out = sim.output_values();
      ASSERT_EQ(out[0], av == bv ? 1 : 0);
      ASSERT_EQ(out[1], av < bv ? 1 : 0);
      ASSERT_EQ(out[2], av <= bv ? 1 : 0);
    }
  }
}

TEST(GateBuilder, BarrelShiftersExhaustive) {
  const int w = 8;
  Netlist nl(standard_library(), "sh");
  GateBuilder gb(nl);
  std::vector<NodeId> a, k;
  for (int i = 0; i < w; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) k.push_back(nl.add_input("k" + std::to_string(i)));
  const auto l = gb.shl(a, k);
  const auto r = gb.shr(a, k);
  for (int i = 0; i < w; ++i) {
    nl.add_output("l" + std::to_string(i), l[static_cast<std::size_t>(i)]);
    nl.add_output("r" + std::to_string(i), r[static_cast<std::size_t>(i)]);
  }
  nl.finalize();
  sim::Simulator sim(nl);
  Rng rng(9);
  for (int trial = 0; trial < 64; ++trial) {
    const std::uint64_t av = rng() & 0xFF;
    const std::uint64_t kv = rng() & 0x7;
    std::vector<std::uint8_t> pis;
    for (int i = 0; i < w; ++i) pis.push_back((av >> i) & 1);
    for (int i = 0; i < 3; ++i) pis.push_back((kv >> i) & 1);
    sim.step(pis);
    const auto out = sim.output_values();
    std::uint64_t gl = 0, gr = 0;
    for (int i = 0; i < w; ++i) {
      gl |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(2 * i)]) << i;
      gr |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(2 * i + 1)]) << i;
    }
    ASSERT_EQ(gl, (av << kv) & 0xFF) << av << "<<" << kv;
    ASSERT_EQ(gr, av >> kv) << av << ">>" << kv;
  }
}

TEST(GateBuilder, ShiftAmountWiderThanWord) {
  // 4-bit amount on an 8-bit word: amounts >= 8 must produce zero.
  const int w = 8;
  Netlist nl(standard_library(), "wide_sh");
  GateBuilder gb(nl);
  std::vector<NodeId> a, k;
  for (int i = 0; i < w; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) k.push_back(nl.add_input("k" + std::to_string(i)));
  const auto l = gb.shl(a, k);
  const auto r = gb.shr(a, k);
  for (int i = 0; i < w; ++i) {
    nl.add_output("l" + std::to_string(i), l[static_cast<std::size_t>(i)]);
    nl.add_output("r" + std::to_string(i), r[static_cast<std::size_t>(i)]);
  }
  nl.finalize();
  sim::Simulator sim(nl);
  for (const std::uint64_t kv : {8ull, 12ull, 15ull, 3ull}) {
    std::vector<std::uint8_t> pis;
    for (int i = 0; i < w; ++i) pis.push_back(1);
    for (int i = 0; i < 4; ++i) pis.push_back((kv >> i) & 1);
    sim.step(pis);
    const auto out = sim.output_values();
    std::uint64_t gl = 0, gr = 0;
    for (int i = 0; i < w; ++i) {
      gl |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(2 * i)]) << i;
      gr |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(2 * i + 1)]) << i;
    }
    const std::uint64_t expect_l = kv >= 8 ? 0 : (0xFFull << kv) & 0xFF;
    const std::uint64_t expect_r = kv >= 8 ? 0 : 0xFFull >> kv;
    ASSERT_EQ(gl, expect_l) << "k=" << kv;
    ASSERT_EQ(gr, expect_r) << "k=" << kv;
  }
}

TEST(GateBuilder, NegateExhaustive) {
  const int w = 5;
  Netlist nl(standard_library(), "neg");
  GateBuilder gb(nl);
  std::vector<NodeId> a;
  for (int i = 0; i < w; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  const auto n = gb.neg(a);
  for (int i = 0; i < w; ++i) {
    nl.add_output("n" + std::to_string(i), n[static_cast<std::size_t>(i)]);
  }
  nl.finalize();
  sim::Simulator sim(nl);
  for (std::uint64_t av = 0; av < 32; ++av) {
    std::vector<std::uint8_t> pis;
    for (int i = 0; i < w; ++i) pis.push_back((av >> i) & 1);
    sim.step(pis);
    std::uint64_t got = 0;
    const auto out = sim.output_values();
    for (int i = 0; i < w; ++i) {
      got |= static_cast<std::uint64_t>(out[static_cast<std::size_t>(i)]) << i;
    }
    ASSERT_EQ(got, (32 - av) & 31);
  }
}

TEST(GateBuilder, ReductionTreesExhaustive) {
  const int w = 6;
  Netlist nl(standard_library(), "red");
  GateBuilder gb(nl);
  std::vector<NodeId> a;
  for (int i = 0; i < w; ++i) a.push_back(nl.add_input("a" + std::to_string(i)));
  nl.add_output("and", gb.and_n(a));
  nl.add_output("or", gb.or_n(a));
  nl.add_output("xor", gb.xor_n(a));
  nl.finalize();
  sim::Simulator sim(nl);
  for (std::uint64_t av = 0; av < 64; ++av) {
    std::vector<std::uint8_t> pis;
    for (int i = 0; i < w; ++i) pis.push_back((av >> i) & 1);
    sim.step(pis);
    const auto out = sim.output_values();
    ASSERT_EQ(out[0], av == 63 ? 1 : 0);
    ASSERT_EQ(out[1], av != 0 ? 1 : 0);
    ASSERT_EQ(out[2], __builtin_popcountll(av) & 1);
  }
}

// ---------------------------------------------------------------------------
// End-to-end synthesis: RTL -> netlist equivalence
// ---------------------------------------------------------------------------

void expect_equivalent(const rtl::Module& m, const SynthOptions& opts = {},
                       std::uint64_t cycles = 300) {
  const Netlist nl = synthesize(m, standard_library(), opts);
  Rng rng(fnv1a64(m.name));
  const auto res = sim::check_equivalence(m, nl, cycles, rng);
  EXPECT_TRUE(res.equivalent) << res.first_mismatch;
}

rtl::Module parse(const char* src) { return rtl::parse_verilog(src); }

TEST(Synthesize, Counter) {
  expect_equivalent(parse(R"(
    module ctr (input clk, input rst, input en, output [7:0] q);
      reg [7:0] c;
      always @(posedge clk) begin
        if (rst) c <= 8'd0;
        else if (en) c <= c + 8'd1;
      end
      assign q = c;
    endmodule)"));
}

TEST(Synthesize, ResetToOnesRegister) {
  expect_equivalent(parse(R"(
    module r1 (input clk, input rst, input [3:0] d, output [3:0] q);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd15;
        else r <= d;
      end
      assign q = r;
    endmodule)"));
}

TEST(Synthesize, ResetToOnesWithEnable) {
  expect_equivalent(parse(R"(
    module r2 (input clk, input rst, input en, input [3:0] d, output [3:0] q);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd9;
        else if (en) r <= d;
      end
      assign q = r;
    endmodule)"));
}

TEST(Synthesize, AluDatapath) {
  expect_equivalent(parse(R"(
    module alu (input clk, input rst, input [1:0] op,
                input [7:0] a, input [7:0] b, output [7:0] y);
      wire [7:0] r;
      reg [7:0] acc;
      assign r = op == 2'd0 ? a + b
               : op == 2'd1 ? a - b
               : op == 2'd2 ? (a & b)
               : a ^ b;
      always @(posedge clk) begin
        if (rst) acc <= 8'd0;
        else acc <= r;
      end
      assign y = acc;
    endmodule)"));
}

TEST(Synthesize, MultiplierWidening) {
  expect_equivalent(parse(R"(
    module mw (input [3:0] a, input [5:0] b, output [9:0] p);
      wire [9:0] ax;
      wire [9:0] bx;
      assign ax = {6'd0, a};
      assign bx = {4'd0, b};
      assign p = ax * bx;
    endmodule)"));
}

TEST(Synthesize, ShiftsAndReductions) {
  expect_equivalent(parse(R"(
    module sh (input [7:0] a, input [2:0] k, output [7:0] l,
               output [7:0] r, output pa, output po, output px)
;
      assign l = a << k;
      assign r = a >> k;
      assign pa = &a;
      assign po = |a;
      assign px = ^a;
    endmodule)"));
}

TEST(Synthesize, SignedMacViaSext) {
  expect_equivalent(parse(R"(
    module mac (input clk, input rst, input [7:0] a, input [7:0] b,
                output [15:0] acc_o);
      wire [15:0] ax;
      wire [15:0] bx;
      wire [15:0] p;
      reg [15:0] acc;
      assign ax = {{8{a[7]}}, a};
      assign bx = {{8{b[7]}}, b};
      assign p = ax * bx;
      always @(posedge clk) begin
        if (rst) acc <= 16'd0;
        else acc <= acc + p;
      end
      assign acc_o = acc;
    endmodule)"));
}

TEST(Synthesize, ShiftRegisterConcat) {
  expect_equivalent(parse(R"(
    module sr (input clk, input rst, input d, output [7:0] q);
      reg [7:0] s;
      always @(posedge clk) begin
        if (rst) s <= 8'd0;
        else s <= {s[6:0], d};
      end
      assign q = s;
    endmodule)"));
}

TEST(CheckEquivalence, DetectsMutatedNetlist) {
  // The golden checker must catch a real inequivalence, not just pass
  // everything: synthesize, then rebuild with one gate's function changed.
  const rtl::Module m = parse(R"(
    module mut (input clk, input rst, input [3:0] a, input [3:0] b,
                output [3:0] y);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd0;
        else r <= a ^ b;
      end
      assign y = r;
    endmodule)");
  const Netlist good = synthesize(m, standard_library());
  // Rebuild with an XOR2 swapped for XNOR2.
  Netlist bad(standard_library(), good.name());
  std::vector<NodeId> map(good.num_nodes(), netlist::kInvalidNode);
  bool mutated = false;
  for (const NodeId id : good.inputs()) {
    map[static_cast<std::size_t>(id)] = bad.add_input(good.node(id).name);
  }
  for (const NodeId id : good.flops()) {
    const auto& n = good.node(id);
    map[static_cast<std::size_t>(id)] = bad.add_cell(
        n.type, n.name, std::vector<NodeId>(n.fanin.size(),
                                            netlist::kInvalidNode));
  }
  for (const NodeId id : good.topo_order()) {
    const auto& n = good.node(id);
    if (n.kind != netlist::NodeKind::kCell || good.is_flop(id)) continue;
    std::vector<NodeId> fanins;
    for (const NodeId f : n.fanin) {
      fanins.push_back(map[static_cast<std::size_t>(f)]);
    }
    std::string type = good.library().type(n.type).name;
    if (!mutated && type == "XOR2") {
      type = "XNOR2";
      mutated = true;
    }
    map[static_cast<std::size_t>(id)] = bad.add_cell(type, n.name,
                                                     std::move(fanins));
  }
  ASSERT_TRUE(mutated);
  for (const NodeId id : good.flops()) {
    const auto& n = good.node(id);
    for (std::size_t p = 0; p < n.fanin.size(); ++p) {
      bad.connect(map[static_cast<std::size_t>(id)], static_cast<int>(p),
                  map[static_cast<std::size_t>(n.fanin[p])]);
    }
  }
  for (const NodeId id : good.outputs()) {
    bad.add_output(good.node(id).name,
                   map[static_cast<std::size_t>(good.node(id).fanin[0])]);
  }
  bad.finalize();
  Rng rng(1);
  const auto res = sim::check_equivalence(m, bad, 200, rng);
  EXPECT_FALSE(res.equivalent);
  EXPECT_FALSE(res.first_mismatch.empty());
}

TEST(Synthesize, ProvenanceRecorded) {
  const rtl::Module m = parse(R"(
    module p (input clk, input rst, input [3:0] d, output [3:0] q);
      reg [3:0] r;
      always @(posedge clk) begin
        if (rst) r <= 4'd0; else r <= d;
      end
      assign q = r;
    endmodule)");
  const Netlist nl = synthesize(m, standard_library());
  ASSERT_EQ(nl.flops().size(), 4u);
  std::map<std::string, int> regs;
  for (const NodeId f : nl.flops()) {
    regs[nl.node(f).rtl_register]++;
  }
  EXPECT_EQ(regs.at("r[0]"), 1);
  EXPECT_EQ(regs.at("r[3]"), 1);
}

TEST(Synthesize, DeadLogicSwept) {
  // wire computed but never used -> its gates must disappear.
  const rtl::Module m = parse(R"(
    module dead (input [7:0] a, input [7:0] b, output [7:0] y);
      wire [7:0] unused;
      assign unused = a * b;
      assign y = a ^ b;
    endmodule)");
  SynthOptions keep;
  keep.sweep_dead_logic = false;
  SynthOptions sweep;
  const auto nl_keep = synthesize(m, standard_library(), keep);
  const auto nl_sweep = synthesize(m, standard_library(), sweep);
  EXPECT_LT(nl_sweep.num_cells(), nl_keep.num_cells());
  // Only the XOR bits (plus possible remaps) remain.
  EXPECT_LE(nl_sweep.num_cells(), 8u);
}

TEST(Synthesize, PassesPreserveEquivalence) {
  const rtl::Module m = parse(R"(
    module mix (input clk, input rst, input [7:0] a, input [7:0] b,
                input [1:0] s, output [7:0] y);
      wire [7:0] f;
      reg [7:0] r;
      assign f = s == 2'd0 ? (a & b) : s == 2'd1 ? (a | b) : a + b;
      always @(posedge clk) begin
        if (rst) r <= 8'd0;
        else r <= f ^ r;
      end
      assign y = r;
    endmodule)");
  for (const bool merge : {false, true}) {
    for (const bool fuse : {false, true}) {
      for (const bool buffers : {false, true}) {
        SynthOptions o;
        o.merge_gate_trees = merge;
        o.fuse_inverters = fuse;
        o.insert_buffers = buffers;
        expect_equivalent(m, o, 200);
      }
    }
  }
}

TEST(Synthesize, FuseCreatesComplexCells) {
  const rtl::Module m = parse(R"(
    module cplx (input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);
      assign y = ~((a & b) | c);
    endmodule)");
  const Netlist nl = synthesize(m, standard_library());
  std::map<std::string, int> counts;
  for (const auto& n : nl.nodes()) {
    if (n.kind == netlist::NodeKind::kCell) {
      counts[nl.library().type(n.type).name]++;
    }
  }
  EXPECT_GT(counts["AOI21"], 0);
  expect_equivalent(m);
}

TEST(Synthesize, MergeCreatesWideGates) {
  const rtl::Module m = parse(R"(
    module wide (input [7:0] a, output y);
      assign y = &a;
    endmodule)");
  const Netlist nl = synthesize(m, standard_library());
  bool has_wide = false;
  for (const auto& n : nl.nodes()) {
    if (n.kind != netlist::NodeKind::kCell) continue;
    const std::string& t = nl.library().type(n.type).name;
    if (t == "AND3" || t == "AND4" || t == "NAND3" || t == "NAND4") {
      has_wide = true;
    }
  }
  EXPECT_TRUE(has_wide);
  expect_equivalent(m);
}

TEST(Synthesize, BufferInsertionFixesLoad) {
  // One input driving very many gates.
  rtl::Module m;
  m.name = "fan";
  const rtl::ExprId a = m.add_input("a", 1);
  const rtl::ExprId b = m.add_input("b", 64);
  std::vector<rtl::ExprId> bits;
  for (int i = 0; i < 64; ++i) {
    bits.push_back(m.arena.binary(rtl::ExprOp::kAnd, a, m.arena.bit(b, i)));
  }
  std::vector<rtl::ExprId> msb_first(bits.rbegin(), bits.rend());
  m.assign_output("y", 64, m.arena.concat(std::move(msb_first)));
  m.validate();

  SynthOptions no_buf;
  no_buf.insert_buffers = false;
  const Netlist raw = synthesize(m, standard_library(), no_buf);
  const Netlist buffered = synthesize(m, standard_library());
  EXPECT_GT(buffered.num_cells(), raw.num_cells());
  // After buffering, no driver exceeds its max load.
  for (std::size_t i = 0; i < buffered.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const auto& n = buffered.node(id);
    if (n.kind != netlist::NodeKind::kCell) continue;
    const auto& t = buffered.library().type(n.type);
    EXPECT_LE(buffered.output_load(id), t.max_load * 1.05) << n.name;
  }
  expect_equivalent(m);
}

}  // namespace
}  // namespace moss::synth
